// obs_json_check: validate an obs JSON document against its schema.
//
// Usage: obs_json_check FILE...
// Each file must parse as JSON and match one of the obs schemas
// ("evs.obs.snapshot" or "evs.obs.report"); exits non-zero on the first
// failure. The bench_smoke ctest targets run every bench binary on a tiny
// workload with EVS_OBS_OUT set and pass the result through this checker,
// so the exporters and the schema validators (obs/export.cpp) stay honest
// against each other in tier-1.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: obs_json_check FILE...\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const evs::Status st = evs::obs::validate_document(buf.str());
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i], st.message().c_str());
      return 1;
    }
    std::printf("%s: ok\n", argv[i]);
  }
  return 0;
}
