// Timing-robustness: aggressive or adversarial timer configurations must
// degrade performance, never correctness.
#include <gtest/gtest.h>

#include "testkit/cluster.hpp"
#include "testkit/workload.hpp"

namespace evs {
namespace {

TEST(TimingRobustnessTest, TightTokenTimeoutChurnsButStaysConformant) {
  // Timeout barely above one token rotation for an 8-ring: spurious
  // membership rounds are likely; the specification must survive them.
  Cluster::Options opts;
  opts.num_processes = 8;
  opts.seed = 5;
  opts.node.token_loss_timeout_us = 2'500;
  // Keep the retransmit budget inside the tightened loss timeout
  // (Options::validate() rejects limit * interval >= loss timeout).
  opts.node.token_retransmit_interval_us = 500;
  Cluster cluster(opts);
  Rng rng(5);
  cluster.run_for(300'000);
  send_random_burst(cluster, rng, 40, 0.5);
  ASSERT_TRUE(cluster.await_quiesce(60'000'000));
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(TimingRobustnessTest, SlowNetworkFastTimers) {
  // Network delays close to the protocol timers: detection and gather run
  // on stale information constantly.
  Cluster::Options opts;
  opts.num_processes = 4;
  opts.seed = 6;
  opts.net.min_delay_us = 500;
  opts.net.max_delay_us = 3'000;
  opts.node.join_interval_us = 2'000;
  opts.node.gather_fail_timeout_us = 12'000;
  Cluster cluster(opts);
  Rng rng(6);
  ASSERT_TRUE(cluster.await_stable(20'000'000));
  send_random_burst(cluster, rng, 30, 0.5);
  cluster.partition({{0, 1}, {2, 3}});
  cluster.run_for(200'000);
  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(120'000'000));
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(TimingRobustnessTest, InstantCrashRecoverIsHandled) {
  // The paper (Section 5.2): "We allow a process to fail and recover
  // sufficiently rapidly that it can be included in the next
  // configuration." Recover with zero delay: peers may never have noticed
  // the crash before the new incarnation's beacon arrives.
  Cluster cluster(Cluster::Options{.num_processes = 3, .seed = 7});
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  cluster.node(0u).send(Service::Safe, {1}).value();
  ASSERT_TRUE(cluster.await_quiesce(3'000'000));
  cluster.crash(cluster.pid(2));
  cluster.recover(cluster.pid(2));  // same event horizon, no detection gap
  ASSERT_TRUE(cluster.await_stable(6'000'000));
  EXPECT_EQ(cluster.node(0u).config().members.size(), 3u);
  auto id = cluster.node(2u).send(Service::Safe, {2}).value();
  ASSERT_TRUE(cluster.await_quiesce(3'000'000));
  EXPECT_TRUE(cluster.sink(0u).delivered(id));
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(TimingRobustnessTest, RapidPartitionFlapping) {
  Cluster cluster(Cluster::Options{.num_processes = 4, .seed = 8});
  Rng rng(8);
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  // Flap faster than the recovery can complete: the protocol restarts
  // membership over and over and must converge once the network calms.
  for (int i = 0; i < 12; ++i) {
    send_random_burst(cluster, rng, 5, 0.5);
    if (i % 2 == 0) {
      cluster.partition({{0, 1}, {2, 3}});
    } else {
      cluster.heal();
    }
    cluster.run_for(4'000);  // far below detection + recovery time
  }
  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(60'000'000));
  EXPECT_EQ(cluster.node(0u).config().members.size(), 4u);
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(TimingRobustnessTest, ZeroDelayNetwork) {
  Cluster::Options opts;
  opts.num_processes = 3;
  opts.seed = 9;
  opts.net.min_delay_us = 1;
  opts.net.max_delay_us = 1;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  for (int i = 0; i < 20; ++i) {
    cluster.node(static_cast<std::size_t>(i % 3)).send(Service::Safe, {1}).value();
  }
  ASSERT_TRUE(cluster.await_quiesce(3'000'000));
  EXPECT_EQ(cluster.sink(0u).deliveries.size(), 20u);
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
