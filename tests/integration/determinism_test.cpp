// Determinism: a run is a pure function of (seed, scenario). This is what
// makes every failing property test replayable, so it is guarded directly.
#include <gtest/gtest.h>

#include "testkit/cluster.hpp"
#include "testkit/workload.hpp"

namespace evs {
namespace {

std::string run_once(std::uint64_t seed) {
  Cluster::Options opts;
  opts.num_processes = 4;
  opts.seed = seed;
  opts.net.loss_probability = 0.02;  // loss decisions must be seeded too
  Cluster cluster(opts);
  Rng rng(seed + 1);
  RandomScheduleOptions schedule;
  schedule.rounds = 6;
  run_random_schedule(cluster, rng, schedule);
  return cluster.trace().dump();
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalTraces) {
  const std::string a = run_once(42);
  const std::string b = run_once(42);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  EXPECT_NE(run_once(1), run_once(2));
}

}  // namespace
}  // namespace evs
