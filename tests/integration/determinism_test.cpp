// Determinism: a run is a pure function of (seed, scenario). This is what
// makes every failing property test replayable, so it is guarded directly.
#include <gtest/gtest.h>

#include "testkit/cluster.hpp"
#include "testkit/workload.hpp"

namespace evs {
namespace {

std::string run_once(std::uint64_t seed) {
  Cluster::Options opts;
  opts.num_processes = 4;
  opts.seed = seed;
  opts.net.loss_probability = 0.02;  // loss decisions must be seeded too
  Cluster cluster(opts);
  Rng rng(seed + 1);
  RandomScheduleOptions schedule;
  schedule.rounds = 6;
  run_random_schedule(cluster, rng, schedule);
  return cluster.trace().dump();
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalTraces) {
  const std::string a = run_once(42);
  const std::string b = run_once(42);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  EXPECT_NE(run_once(1), run_once(2));
}

// With the fault injector active, a run is a pure function of
// (seed, scenario, fault plan): the injector draws from its own seeded
// stream, so duplication/reordering/corruption decisions replay exactly.
std::string run_with_faults(std::uint64_t seed, double corrupt) {
  Cluster::Options opts;
  opts.num_processes = 4;
  opts.seed = seed;
  opts.net.loss_probability = 0.01;
  opts.faults = FaultPlan::storm(0.04, 0.04, corrupt, 0, 400'000);
  Cluster cluster(opts);
  Rng rng(seed + 1);
  RandomScheduleOptions schedule;
  schedule.rounds = 4;
  run_random_schedule(cluster, rng, schedule);
  return cluster.trace().dump();
}

TEST(DeterminismTest, IdenticalSeedAndFaultPlanProduceIdenticalTraces) {
  const std::string a = run_with_faults(42, 0.02);
  const std::string b = run_with_faults(42, 0.02);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(DeterminismTest, DifferentFaultPlanDiverges) {
  EXPECT_NE(run_with_faults(42, 0.02), run_with_faults(42, 0.2));
}

TEST(DeterminismTest, DifferentSeedsDivergeUnderFaults) {
  EXPECT_NE(run_with_faults(1, 0.02), run_with_faults(2, 0.02));
}

}  // namespace
}  // namespace evs
