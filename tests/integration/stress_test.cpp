// Scale and endurance tests: larger rings, longer horizons, sustained
// churn. These keep the protocol honest where bookkeeping bugs hide —
// counters that drift, stores that leak, timers that stack up.
#include <gtest/gtest.h>

#include "evs/evs.hpp"
#include "testkit/cluster.hpp"
#include "testkit/workload.hpp"

namespace evs {
namespace {

TEST(StressTest, SixteenProcessRingFormsAndDelivers) {
  Cluster cluster(Cluster::Options{.num_processes = 16, .seed = 2024});
  ASSERT_TRUE(cluster.await_stable(10'000'000));
  EXPECT_EQ(cluster.node(0u).config().members.size(), 16u);
  for (int i = 0; i < 64; ++i) {
    cluster.node(static_cast<std::size_t>(i % 16))
        .send(i % 4 == 0 ? Service::Safe : Service::Agreed, {1});
  }
  ASSERT_TRUE(cluster.await_quiesce(20'000'000));
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(cluster.sink(i).deliveries.size(), 64u) << i;
  }
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(StressTest, ManyComponentsManyMerges) {
  Cluster cluster(Cluster::Options{.num_processes = 12, .seed = 7});
  ASSERT_TRUE(cluster.await_stable(8'000'000));
  // Shatter into singletons, then merge pairwise, then quads, then all.
  cluster.partition({{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}, {11}});
  ASSERT_TRUE(cluster.await_stable(8'000'000));
  cluster.partition({{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}});
  ASSERT_TRUE(cluster.await_stable(8'000'000));
  cluster.partition({{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}});
  ASSERT_TRUE(cluster.await_stable(8'000'000));
  cluster.heal();
  ASSERT_TRUE(cluster.await_stable(12'000'000));
  EXPECT_EQ(cluster.node(0u).config().members.size(), 12u);
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(StressTest, SustainedChurnTenSimSeconds) {
  Cluster cluster(Cluster::Options{.num_processes = 5, .seed = 99});
  Rng rng(4711);
  ASSERT_TRUE(cluster.await_stable(5'000'000));
  // ~10 simulated seconds of continuous operation with periodic faults.
  for (int epoch = 0; epoch < 40; ++epoch) {
    send_random_burst(cluster, rng, 15, 0.4);
    switch (epoch % 8) {
      case 2: random_partition(cluster, rng); break;
      case 5: cluster.heal(); break;
      case 7:
        if (cluster.node(4u).running()) {
          cluster.crash(cluster.pid(4));
        } else {
          cluster.recover(cluster.pid(4));
        }
        break;
      default: break;
    }
    cluster.run_for(250'000);
  }
  cluster.heal();
  if (!cluster.node(4u).running()) cluster.recover(cluster.pid(4));
  ASSERT_TRUE(cluster.await_quiesce(30'000'000));
  EXPECT_EQ(cluster.check_report(), "");
  // The trace grew to a respectable size and the checker still passes it.
  EXPECT_GT(cluster.trace().size(), 1000u);
}

TEST(StressTest, StableStoreDoesNotAccumulateGarbage) {
  Cluster cluster(Cluster::Options{.num_processes = 3, .seed = 3});
  Rng rng(3);
  ASSERT_TRUE(cluster.await_stable(5'000'000));
  send_random_burst(cluster, rng, 50, 0.5);
  ASSERT_TRUE(cluster.await_quiesce(10'000'000));
  const std::size_t keys_baseline = cluster.store(cluster.pid(0)).key_count();
  for (int round = 0; round < 6; ++round) {
    send_random_burst(cluster, rng, 30, 0.5);
    cluster.partition({{0}, {1, 2}});
    cluster.run_for(100'000);
    cluster.heal();
    ASSERT_TRUE(cluster.await_quiesce(20'000'000));
  }
  // Recovery-persisted message logs are garbage-collected at each install:
  // the store holds a bounded set of metadata keys, not a growing log.
  EXPECT_LE(cluster.store(cluster.pid(0)).key_count(), keys_baseline + 2);
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(StressTest, GatherTerminatesWithinBoundedTime) {
  // The paper's termination property: with unresponsive members, the
  // proposed membership shrinks (fail-set timeouts) and a configuration is
  // installed within a small multiple of the timeout constants.
  Cluster::Options opts;
  opts.num_processes = 5;
  opts.seed = 17;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.await_stable(5'000'000));
  // Kill three processes simultaneously; the survivors must converge.
  cluster.crash(cluster.pid(2));
  cluster.crash(cluster.pid(3));
  cluster.crash(cluster.pid(4));
  const SimTime start = cluster.now();
  ASSERT_TRUE(cluster.await(
      [&] {
        return cluster.node(0u).state() == EvsNode::State::Operational &&
               cluster.node(0u).config().members.size() == 2;
      },
      10'000'000));
  const SimTime took = cluster.now() - start;
  // Bound: token-loss detection + gather fail timeout + recovery rounds,
  // with generous slack — the point is "bounded", not "fast". Uses the
  // effective (size-scaled) timeouts for this 5-member ring.
  const SimTime bound = opts.node.token_loss_for(5) +
                        opts.node.gather_fail_for(5) +
                        opts.node.consensus_wait_for(5) + 20'000;
  EXPECT_LT(took, bound);
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
