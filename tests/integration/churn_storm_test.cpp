// Churn storms (run with `ctest -L churn`): the scenario engine's named
// storms — flapping links, rolling restarts, cascading partitions, merge
// waves and seeded random mixtures — each ending healed, recovered and
// spec-checked, plus the 100-node partition/re-merge scale run the
// membership protocol was re-tuned for (Options::scaled_for).
#include <gtest/gtest.h>

#include "testkit/churn.hpp"
#include "testkit/cluster.hpp"

namespace evs {
namespace {

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag}; }

Cluster::Options storm_options(std::size_t n, std::uint64_t seed) {
  Cluster::Options o;
  o.num_processes = n;
  o.seed = seed;
  o.node = EvsNode::Options::scaled_for(n);
  // A storm that stops making progress is a bug; fail fast with a liveness
  // report instead of burning the whole checkpoint budget.
  o.watchdog_window_us = 3'000'000;
  return o;
}

TEST(ChurnStormTest, FlappingLinks) {
  Cluster cluster(storm_options(8, 21));
  const ChurnReport report = run_churn(cluster, ChurnSchedule::flapping_links(8, 21));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ChurnStormTest, RollingRestart) {
  Cluster cluster(storm_options(8, 22));
  const ChurnReport report = run_churn(cluster, ChurnSchedule::rolling_restart(8, 22));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ChurnStormTest, CascadingPartition) {
  Cluster cluster(storm_options(12, 23));
  const ChurnReport report =
      run_churn(cluster, ChurnSchedule::cascading_partition(12, 23));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ChurnStormTest, MergeWave) {
  Cluster cluster(storm_options(12, 24));
  const ChurnReport report = run_churn(cluster, ChurnSchedule::merge_wave(12, 24));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// Storms stay delivering: traffic injected between steps must survive the
// churn spec-clean (delivery claims are what the checker verifies).
TEST(ChurnStormTest, StormWithTraffic) {
  Cluster cluster(storm_options(8, 25));
  ChurnSchedule schedule = ChurnSchedule::cascading_partition(8, 25, /*waves=*/2);
  schedule.at(15'000, "send burst", [](Cluster& c) {
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (c.node(i).running()) {
        (void)c.node(i).send(Service::Safe, payload(static_cast<std::uint8_t>(i)));
      }
    }
  });
  const ChurnReport report = run_churn(cluster, schedule);
  EXPECT_TRUE(report.ok()) << report.to_string();
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    delivered += cluster.node(i).stats().delivered;
  }
  EXPECT_GT(delivered, 0u);
}

class RandomStormTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomStormTest, SeededMixtureConvergesSpecClean) {
  const std::uint64_t seed = GetParam();
  Cluster cluster(storm_options(10, seed));
  const ChurnReport report =
      run_churn(cluster, ChurnSchedule::random_storm(10, seed, /*events=*/12));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStormTest, ::testing::Range<std::uint64_t>(1, 7));

// The headline scale run: 100 nodes form one ring, split into two large
// components that each reconverge and keep delivering, then re-merge into a
// single 100-member ring — all spec-clean. Uses the size-derived timeout
// profile; the flat n=5 defaults would false-positive token loss here.
TEST(ChurnStormTest, HundredNodePartitionRemerge) {
  const std::size_t n = 100;
  Cluster cluster(storm_options(n, 7));
  const SimTime budget = ChurnSchedule::quiesce_budget(n);
  ASSERT_TRUE(cluster.await_stable(budget)) << cluster.liveness_report();
  ASSERT_EQ(cluster.node(0u).config().members.size(), n);

  // 60/40 split.
  std::vector<std::size_t> left, right;
  for (std::size_t i = 0; i < n; ++i) (i < 60 ? left : right).push_back(i);
  cluster.partition({left, right});
  ASSERT_TRUE(cluster.await_stable(budget)) << cluster.liveness_report();
  EXPECT_EQ(cluster.node(0u).config().members.size(), 60u);
  EXPECT_EQ(cluster.node(99u).config().members.size(), 40u);

  // Both components deliver independently.
  ASSERT_TRUE(cluster.node(0u).send(Service::Safe, payload(1)).ok());
  ASSERT_TRUE(cluster.node(99u).send(Service::Safe, payload(2)).ok());
  cluster.run_for(2'000'000);

  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(budget)) << cluster.liveness_report();
  EXPECT_EQ(cluster.node(0u).config().members.size(), n);
  EXPECT_EQ(cluster.node(99u).config().members.size(), n);
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
