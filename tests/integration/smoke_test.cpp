// End-to-end smoke tests: nodes boot, merge into one configuration, send
// and deliver messages under all three service levels, and the resulting
// trace satisfies the full extended virtual synchrony specification.
#include <gtest/gtest.h>

#include "testkit/cluster.hpp"

namespace evs {
namespace {

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag}; }

TEST(SmokeTest, SingleNodeBootsAndSelfDelivers) {
  Cluster::Options opts;
  opts.num_processes = 1;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.await_stable(500'000)) << "node never became operational";
  auto id = cluster.node(0u).send(Service::Safe, payload(1)).value();
  ASSERT_TRUE(cluster.await_quiesce(500'000));
  EXPECT_TRUE(cluster.sink(0u).delivered(id));
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(SmokeTest, ThreeNodesMergeIntoOneConfiguration) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(2'000'000)) << "cluster never stabilized";
  EXPECT_EQ(cluster.node(0u).config().members.size(), 3u);
  EXPECT_EQ(cluster.node(0u).config().id, cluster.node(1u).config().id);
  EXPECT_EQ(cluster.node(1u).config().id, cluster.node(2u).config().id);
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(SmokeTest, AgreedMessagesDeliveredEverywhereInOrder) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  std::vector<MsgId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(cluster.node(static_cast<std::size_t>(i % 3))
                      .send(Service::Agreed, payload(static_cast<std::uint8_t>(i))).value());
  }
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));
  // Every node delivered every message, and in the same order.
  const auto order0 = cluster.sink(0u).delivered_ids();
  EXPECT_EQ(order0.size(), 10u);
  for (const auto& id : ids) EXPECT_TRUE(cluster.sink(0u).delivered(id));
  EXPECT_EQ(cluster.sink(1u).delivered_ids(), order0);
  EXPECT_EQ(cluster.sink(2u).delivered_ids(), order0);
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(SmokeTest, SafeMessagesDeliveredEverywhere) {
  Cluster cluster(Cluster::Options{.num_processes = 4});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  std::vector<MsgId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(cluster.node(0u).send(Service::Safe, payload(1)).value());
  }
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));
  for (std::size_t n = 0; n < 4; ++n) {
    for (const auto& id : ids) EXPECT_TRUE(cluster.sink(n).delivered(id)) << n;
  }
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(SmokeTest, MixedServicesRespectTotalOrder) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  for (int i = 0; i < 30; ++i) {
    const Service s = i % 3 == 0   ? Service::Safe
                      : i % 3 == 1 ? Service::Agreed
                                   : Service::Causal;
    cluster.node(static_cast<std::size_t>(i % 3)).send(s, payload(0)).value();
  }
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));
  EXPECT_EQ(cluster.sink(0u).deliveries.size(), 30u);
  EXPECT_EQ(cluster.sink(0u).delivered_ids(), cluster.sink(1u).delivered_ids());
  EXPECT_EQ(cluster.sink(1u).delivered_ids(), cluster.sink(2u).delivered_ids());
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(SmokeTest, TrafficWhileStabilizingIsEventuallyDelivered) {
  // Send before the cluster has merged: messages are stamped in whatever
  // configuration the sender is in at token time and must self-deliver.
  Cluster cluster(Cluster::Options{.num_processes = 3});
  auto id = cluster.node(0u).send(Service::Agreed, payload(7)).value();
  ASSERT_TRUE(cluster.await_quiesce(3'000'000));
  EXPECT_TRUE(cluster.sink(0u).delivered(id));
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
