// Frame packing is a wire-shape optimization, not a protocol change: with
// identical seeds and an identical send schedule, a cluster running packed
// datagrams (batch_max_frames = 16, token piggyback on) must deliver exactly
// the same messages in exactly the same order as one running the pre-batching
// one-frame-per-datagram shape (batch_max_frames = 1, piggyback off). The
// total order is fixed by token stamping, which batching does not touch —
// only how many datagrams carry the result.
#include <gtest/gtest.h>

#include <vector>

#include "testkit/cluster.hpp"

namespace evs {
namespace {

struct RunResult {
  // Per process: the (id, seq, service) sequence actually delivered.
  std::vector<std::vector<MsgId>> ids;
  std::vector<std::vector<SeqNum>> seqs;
};

RunResult run(int batch_max_frames) {
  Cluster::Options opts;
  opts.num_processes = 4;
  opts.seed = 42;
  opts.node.batch_max_frames = batch_max_frames;
  Cluster cluster(opts);
  EXPECT_TRUE(cluster.await_stable());

  // Load every node's pending queue in one virtual instant, then let the
  // token drain them. Stamping order is the token's visit order and the
  // per-visit budget, both independent of the wire shape.
  for (std::size_t p = 0; p < cluster.size(); ++p) {
    for (int i = 0; i < 30; ++i) {
      const Service service =
          i % 3 == 0 ? Service::Safe : (i % 3 == 1 ? Service::Agreed : Service::Causal);
      std::vector<std::uint8_t> payload(24, static_cast<std::uint8_t>(p * 31 + i));
      EXPECT_TRUE(cluster.node(p).send(service, std::move(payload)).ok());
    }
  }
  EXPECT_TRUE(cluster.await_quiesce(8'000'000));
  EXPECT_EQ(cluster.check_report(), "");

  RunResult result;
  for (std::size_t p = 0; p < cluster.size(); ++p) {
    result.ids.push_back(cluster.sink(p).delivered_ids());
    std::vector<SeqNum> seqs;
    for (const auto& d : cluster.sink(p).deliveries) seqs.push_back(d.seq);
    result.seqs.push_back(std::move(seqs));
  }
  return result;
}

TEST(BatchDeterminismTest, PackedAndUnpackedWireDeliverIdentically) {
  const RunResult packed = run(16);
  const RunResult unpacked = run(1);
  ASSERT_EQ(packed.ids.size(), unpacked.ids.size());
  for (std::size_t p = 0; p < packed.ids.size(); ++p) {
    EXPECT_EQ(packed.ids[p].size(), 120u) << "process " << p;
    EXPECT_EQ(packed.ids[p], unpacked.ids[p]) << "process " << p;
    EXPECT_EQ(packed.seqs[p], unpacked.seqs[p]) << "process " << p;
  }
}

TEST(BatchDeterminismTest, SameShapeIsBitwiseRepeatable) {
  // The baseline determinism property the comparison above relies on: the
  // same options run twice produce the same history.
  const RunResult a = run(16);
  const RunResult b = run(16);
  EXPECT_EQ(a.ids, b.ids);
  EXPECT_EQ(a.seqs, b.seqs);
}

}  // namespace
}  // namespace evs
