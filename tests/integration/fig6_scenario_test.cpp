// The paper's Figure 6 / Section 3.1 example.
//
// A regular configuration {p, q, r} partitions: p becomes isolated while q
// and r merge with {s, t} into {q, r, s, t}. Processes q and r deliver two
// configuration change messages: one for the transitional configuration
// {q, r} and one for the new regular configuration {q, r, s, t}.
//
// The message cases of Section 3.1:
//   l, m : p sends l then m; q and r received m but not l, so m follows a
//          hole in the total order and its sender p is not in {q, r}'s
//          transitional configuration — m must be discarded (it may be
//          causally dependent on l).
//   n    : r sends n for safe delivery; p never acknowledges, so n cannot
//          be delivered in {p, q, r}; but q acknowledged, so n is safe in
//          the transitional configuration {q, r} and delivered there.
#include <gtest/gtest.h>

#include "evs/recovery.hpp"
#include "testkit/cluster.hpp"

namespace evs {
namespace {

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag}; }

// Full-stack version: drive the actual protocol through the Figure 6
// configuration sequence and check the delivered configuration changes.
TEST(Fig6Scenario, ConfigurationSequenceMatchesThePaper) {
  Cluster cluster(Cluster::Options{.num_processes = 5});
  // p=0, q=1, r=2, s=3, t=4. Start split: {p,q,r} | {s,t}.
  cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  ASSERT_EQ(cluster.node(0u).config().members.size(), 3u);
  ASSERT_EQ(cluster.node(3u).config().members.size(), 2u);

  // Traffic inside {p,q,r} so the old configuration has a history.
  auto early = cluster.node(1u).send(Service::Agreed, payload(1)).value();
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));
  ASSERT_TRUE(cluster.sink(2u).delivered(early));

  const ConfigId old_pqr = cluster.node(0u).config().id;

  // The Figure 6 event: p isolated; q,r merge with s,t.
  std::size_t confs_before_q = cluster.sink(1u).configs.size();
  cluster.partition({{0}, {1, 2, 3, 4}});
  ASSERT_TRUE(cluster.await_stable(3'000'000));

  // q delivered exactly two configuration changes: transitional {q, r}
  // (same preceding regular configuration as r), then regular {q, r, s, t}.
  const auto& q_configs = cluster.sink(1u).configs;
  ASSERT_EQ(q_configs.size(), confs_before_q + 2);
  const Configuration& trans = q_configs[confs_before_q];
  const Configuration& next = q_configs[confs_before_q + 1];
  EXPECT_TRUE(trans.id.transitional);
  EXPECT_EQ(trans.id.prior_ring, old_pqr.ring);
  EXPECT_EQ(trans.members, (std::vector<ProcessId>{cluster.pid(1), cluster.pid(2)}));
  EXPECT_FALSE(next.id.transitional);
  EXPECT_EQ(next.members,
            (std::vector<ProcessId>{cluster.pid(1), cluster.pid(2), cluster.pid(3),
                                    cluster.pid(4)}));

  // r saw the identical pair (Spec 6.2: same logical time).
  const auto& r_configs = cluster.sink(2u).configs;
  ASSERT_GE(r_configs.size(), 2u);
  EXPECT_EQ(r_configs[r_configs.size() - 2].id, trans.id);
  EXPECT_EQ(r_configs.back().id, next.id);

  // p, isolated, installed its own transitional {p} and regular {p}.
  const auto& p_configs = cluster.sink(0u).configs;
  ASSERT_GE(p_configs.size(), 2u);
  const Configuration& p_trans = p_configs[p_configs.size() - 2];
  EXPECT_TRUE(p_trans.id.transitional);
  EXPECT_EQ(p_trans.id.prior_ring, old_pqr.ring);
  EXPECT_EQ(p_trans.members, std::vector<ProcessId>{cluster.pid(0)});

  EXPECT_EQ(cluster.check_report(), "");
}

// Plan-level version of the l/m message case: p's message m follows the
// unavailable l in the total order; {q, r} must discard it.
TEST(Fig6Scenario, CausallySuspectMessageDiscarded) {
  const ProcessId p{1}, q{2}, r{3};
  const RingId old_ring{10, p};

  std::map<SeqNum, RegularMsg> held;
  auto add = [&](SeqNum seq, ProcessId sender, Service svc) {
    RegularMsg msg;
    msg.ring = old_ring;
    msg.seq = seq;
    msg.id = MsgId{sender, seq};
    msg.service = svc;
    held[seq] = msg;
  };
  // seq 1: delivered history; seq 2 = l (lost, never held); seq 3 = m.
  add(1, q, Service::Agreed);
  add(3, p, Service::Agreed);

  SeqSet uni;
  uni.insert(1);
  uni.insert(3);  // l (seq 2) is unavailable in {q, r}

  auto lookup = [&](SeqNum s) -> const RegularMsg* {
    auto it = held.find(s);
    return it == held.end() ? nullptr : &it->second;
  };
  const auto plan = plan_step6({q, r}, uni, /*safe_upto=*/1, {q, r}, lookup,
                               /*delivered_upto=*/1, {});
  EXPECT_EQ(plan.cutoff, 1u);
  EXPECT_TRUE(plan.regular_seqs.empty());
  EXPECT_TRUE(plan.trans_seqs.empty());
  EXPECT_EQ(plan.discarded, std::vector<SeqNum>{3});  // m dropped: p not obligated
}

// Plan-level version of the n case: r's safe message, unacknowledged by p
// but held by q, is delivered in the transitional configuration {q, r}.
TEST(Fig6Scenario, PendingSafeMessageDeliveredInTransitional) {
  const ProcessId q{2}, r{3};
  const RingId old_ring{10, ProcessId{1}};

  std::map<SeqNum, RegularMsg> held;
  RegularMsg n;
  n.ring = old_ring;
  n.seq = 1;
  n.id = MsgId{r, 1};
  n.service = Service::Safe;
  held[1] = n;

  SeqSet uni;
  uni.insert(1);
  auto lookup = [&](SeqNum s) -> const RegularMsg* {
    auto it = held.find(s);
    return it == held.end() ? nullptr : &it->second;
  };
  // p never acknowledged: n is not safe in the old configuration
  // (global_safe_upto = 0), so it cannot be delivered in {p, q, r}...
  const auto plan = plan_step6({q, r}, uni, /*safe_upto=*/0, {q, r}, lookup, 0, {});
  EXPECT_TRUE(plan.regular_seqs.empty());
  // ...but q and r both hold it, so it is delivered as safe in the
  // transitional configuration {q, r}.
  EXPECT_EQ(plan.trans_seqs, std::vector<SeqNum>{1});
}

// Self-delivery through the partition (Section 3.1: "q and r must each
// deliver the messages they themselves sent in {p, q, r}").
TEST(Fig6Scenario, SendersDeliverTheirOwnPartitionEraMessages) {
  Cluster cluster(Cluster::Options{.num_processes = 5});
  cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(cluster.await_stable(3'000'000));

  // q and r send; then the configuration changes underneath them.
  auto from_q = cluster.node(1u).send(Service::Agreed, payload(2)).value();
  auto from_r = cluster.node(2u).send(Service::Safe, payload(3)).value();
  cluster.run_for(600);  // stamped, possibly not yet safe everywhere
  cluster.partition({{0}, {1, 2, 3, 4}});
  ASSERT_TRUE(cluster.await_quiesce(3'000'000));

  EXPECT_TRUE(cluster.sink(1u).delivered(from_q));
  EXPECT_TRUE(cluster.sink(2u).delivered(from_r));
  // And q/r agree with each other on both (failure atomicity within {q,r}).
  EXPECT_EQ(cluster.sink(1u).delivered(from_r), cluster.sink(2u).delivered(from_r));
  EXPECT_EQ(cluster.sink(1u).delivered(from_q), cluster.sink(2u).delivered(from_q));
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
