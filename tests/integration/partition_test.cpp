// Partition, merge, crash and recovery scenarios — the situations extended
// virtual synchrony exists for (Sections 1-3 of the paper).
#include <gtest/gtest.h>

#include "testkit/cluster.hpp"

namespace evs {
namespace {

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag}; }

TEST(PartitionTest, BothComponentsContinueOperating) {
  Cluster cluster(Cluster::Options{.num_processes = 4});
  ASSERT_TRUE(cluster.await_stable(2'000'000));

  cluster.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(cluster.await_stable(2'000'000)) << "components never reformed";

  // Each side has its own regular configuration with its own members.
  EXPECT_EQ(cluster.node(0u).config().members,
            (std::vector<ProcessId>{cluster.pid(0), cluster.pid(1)}));
  EXPECT_EQ(cluster.node(2u).config().members,
            (std::vector<ProcessId>{cluster.pid(2), cluster.pid(3)}));

  // Both components make progress — the whole point of EVS over VS.
  auto a = cluster.node(0u).send(Service::Safe, payload(1)).value();
  auto b = cluster.node(2u).send(Service::Safe, payload(2)).value();
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));
  EXPECT_TRUE(cluster.sink(1u).delivered(a));
  EXPECT_TRUE(cluster.sink(3u).delivered(b));
  EXPECT_FALSE(cluster.sink(3u).delivered(a));
  EXPECT_FALSE(cluster.sink(1u).delivered(b));
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(PartitionTest, TransitionalConfigurationDelivered) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  cluster.partition({{0}, {1, 2}});
  ASSERT_TRUE(cluster.await_stable(2'000'000));

  // Each surviving member saw: old regular, transitional, new regular.
  for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
    const auto& configs = cluster.sink(i).configs;
    ASSERT_GE(configs.size(), 3u);
    const auto& trans = configs[configs.size() - 2];
    const auto& next = configs.back();
    EXPECT_TRUE(trans.id.transitional);
    EXPECT_FALSE(next.id.transitional);
    EXPECT_EQ(trans.members,
              (std::vector<ProcessId>{cluster.pid(1), cluster.pid(2)}));
    EXPECT_EQ(trans.id.ring, next.id.ring);
  }
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(PartitionTest, MergeAfterPartition) {
  Cluster cluster(Cluster::Options{.num_processes = 4});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  cluster.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  auto a = cluster.node(0u).send(Service::Agreed, payload(1)).value();
  auto b = cluster.node(2u).send(Service::Agreed, payload(2)).value();
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));

  cluster.heal();
  ASSERT_TRUE(cluster.await_stable(3'000'000)) << "merge never completed";
  EXPECT_EQ(cluster.node(0u).config().members.size(), 4u);
  EXPECT_EQ(cluster.node(0u).config().id, cluster.node(3u).config().id);

  // Messages sent after the merge reach everyone.
  auto c = cluster.node(1u).send(Service::Safe, payload(3)).value();
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(cluster.sink(i).delivered(c)) << i;

  // Partition-era messages stayed local: per-component histories are
  // consistent but incomplete (Section 1).
  EXPECT_TRUE(cluster.sink(1u).delivered(a));
  EXPECT_FALSE(cluster.sink(2u).delivered(a));
  EXPECT_TRUE(cluster.sink(3u).delivered(b));
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(PartitionTest, IsolatedSingletonKeepsWorking) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  cluster.partition({{0}, {1, 2}});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  EXPECT_EQ(cluster.node(0u).config().members, std::vector<ProcessId>{cluster.pid(0)});
  auto a = cluster.node(0u).send(Service::Safe, payload(9)).value();
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));
  EXPECT_TRUE(cluster.sink(0u).delivered(a));  // self-delivery, Spec 3
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(PartitionTest, MessagesInFlightAtPartitionAreResolved) {
  // Send a burst and partition immediately: stragglers must either be
  // delivered consistently in the old configuration / transitional
  // configuration or discarded, never delivered inconsistently.
  Cluster cluster(Cluster::Options{.num_processes = 4});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  for (int i = 0; i < 20; ++i) {
    cluster.node(static_cast<std::size_t>(i % 4)).send(Service::Agreed, payload(0)).value();
  }
  cluster.run_for(400);  // a few packets leave, none fully ordered
  cluster.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(cluster.await_quiesce(3'000'000));
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(PartitionTest, SafeMessagePendingAtPartitionDeliveredInTransitional) {
  // The paper's example (Section 3.1, message n): r sends a safe message but
  // the configuration changes before every member acknowledges; if the
  // remaining members hold it, it is delivered in the *transitional*
  // configuration rather than the regular one.
  Cluster cluster(Cluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  auto n = cluster.node(1u).send(Service::Safe, payload(5)).value();
  // Give the message time to be stamped and broadcast but partition before
  // the safety horizon (two full token rotations) passes everywhere.
  cluster.run_for(700);
  cluster.partition({{0}, {1, 2}});
  ASSERT_TRUE(cluster.await_quiesce(3'000'000));

  const auto* d1 = cluster.sink(1u).find(n);
  const auto* d2 = cluster.sink(2u).find(n);
  ASSERT_NE(d1, nullptr);  // self-delivery at the sender is mandatory
  if (d2 != nullptr) {
    EXPECT_EQ(d1->config.id, d2->config.id);
  }
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(PartitionTest, CascadedPartitions) {
  Cluster cluster(Cluster::Options{.num_processes = 6});
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  cluster.partition({{0, 1, 2}, {3, 4, 5}});
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  cluster.node(0u).send(Service::Safe, payload(1)).value();
  cluster.node(3u).send(Service::Safe, payload(2)).value();
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));
  cluster.partition({{0}, {1, 2}, {3}, {4, 5}});
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  cluster.node(1u).send(Service::Agreed, payload(3)).value();
  cluster.node(4u).send(Service::Agreed, payload(4)).value();
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));
  cluster.heal();
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  EXPECT_EQ(cluster.node(0u).config().members.size(), 6u);
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(CrashTest, CrashDetectedAndConfigurationShrinks) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  cluster.crash(cluster.pid(2));
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  EXPECT_EQ(cluster.node(0u).config().members,
            (std::vector<ProcessId>{cluster.pid(0), cluster.pid(1)}));
  auto a = cluster.node(0u).send(Service::Safe, payload(1)).value();
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));
  EXPECT_TRUE(cluster.sink(1u).delivered(a));
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(CrashTest, RecoveredProcessKeepsIdentifierAndRejoins) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  const ProcessId victim = cluster.pid(2);
  cluster.crash(victim);
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  cluster.recover(victim);
  ASSERT_TRUE(cluster.await_stable(3'000'000)) << "recovered process never rejoined";
  EXPECT_EQ(cluster.node(0u).config().members.size(), 3u);
  EXPECT_TRUE(cluster.node(victim).config().contains(victim));
  auto a = cluster.node(victim).send(Service::Safe, payload(1)).value();
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));
  EXPECT_TRUE(cluster.sink(0u).delivered(a));
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(CrashTest, CrashDuringBurstStaysConsistent) {
  Cluster cluster(Cluster::Options{.num_processes = 4});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  for (int i = 0; i < 40; ++i) {
    cluster.node(static_cast<std::size_t>(i % 4))
        .send(i % 2 == 0 ? Service::Safe : Service::Agreed, payload(0)).value();
  }
  cluster.run_for(900);
  cluster.crash(cluster.pid(3));
  ASSERT_TRUE(cluster.await_quiesce(3'000'000));
  // Survivors delivered identical histories.
  EXPECT_EQ(cluster.sink(0u).delivered_ids(), cluster.sink(1u).delivered_ids());
  EXPECT_EQ(cluster.sink(1u).delivered_ids(), cluster.sink(2u).delivered_ids());
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(CrashTest, AllCrashAllRecover) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  for (std::size_t i = 0; i < 3; ++i) cluster.node(i).send(Service::Safe, payload(1)).value();
  ASSERT_TRUE(cluster.await_quiesce(2'000'000));
  for (std::size_t i = 0; i < 3; ++i) cluster.crash(cluster.pid(i));
  cluster.run_for(50'000);
  for (std::size_t i = 0; i < 3; ++i) cluster.recover(cluster.pid(i));
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  EXPECT_EQ(cluster.node(0u).config().members.size(), 3u);
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
