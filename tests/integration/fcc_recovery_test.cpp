// Flow-control recovery across configuration changes.
//
// The fcc satellite of the live-transport PR: the token's flow-control
// state must be demonstrably reset when a new regular configuration is
// installed, so the send budget after a partition/re-merge (or crash
// recovery) is the full window — never a leftover of the old ring's
// congestion, and never a pin-to-zero (see tests/totem/ordering_fcc_test.cpp
// for the token-level pin regression).
#include <gtest/gtest.h>

#include "testkit/cluster.hpp"

namespace evs {
namespace {

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag}; }

// Saturate the ring, partition it under load, re-merge, and require the
// merged configuration to move a full flow-control window of traffic from
// every member. If any fcc residue leaked across the install, the budget
// computation window - fcc_in would strangle (or freeze) the merged ring
// and the quiesce below would time out with undelivered messages.
TEST(FccRecoveryTest, SendBudgetRecoversToFullWindowAfterRemerge) {
  Cluster cluster(Cluster::Options{.num_processes = 5});
  ASSERT_TRUE(cluster.await_stable(2'000'000));

  // Phase 1: drive the ring hard so fcc is nonzero and the window is the
  // binding constraint when the partition hits.
  for (int i = 0; i < 200; ++i) {
    cluster.node(static_cast<std::size_t>(i % 5))
        .send(Service::Agreed, payload(1)).value();
  }
  cluster.run_for(1'000);  // mid-burst...
  cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(cluster.await_stable(3'000'000));

  // Phase 2: both components keep producing in their own configurations.
  for (int i = 0; i < 100; ++i) {
    cluster.node(static_cast<std::size_t>(i % 3)).send(Service::Agreed, payload(2)).value();
    cluster.node(static_cast<std::size_t>(3 + i % 2)).send(Service::Agreed, payload(3)).value();
  }
  ASSERT_TRUE(cluster.await_quiesce(4'000'000));

  cluster.heal();
  ASSERT_TRUE(cluster.await_stable(4'000'000)) << "merge never completed";
  ASSERT_EQ(cluster.node(0u).config().members.size(), 5u);

  // Phase 3: the merged ring must accept and deliver a full window of new
  // traffic from every member. Collect ids so delivery is asserted
  // per-message, not inferred from counts.
  const auto window = EvsNode::Options{}.ordering.flow_control_window;
  std::vector<MsgId> burst;
  for (std::uint32_t i = 0; i < window; ++i) {
    burst.push_back(cluster.node(static_cast<std::size_t>(i % 5))
                        .send(Service::Agreed, payload(4)).value());
  }
  ASSERT_TRUE(cluster.await_quiesce(8'000'000))
      << "post-merge ring failed to drain a full window: budget pinned?\n"
      << cluster.liveness_report();
  for (const MsgId& m : burst) {
    for (std::size_t p = 0; p < 5; ++p) {
      ASSERT_TRUE(cluster.sink(p).delivered(m)) << "process " << p;
    }
  }
  // Healthy rings never trip the corruption clamp.
  auto agg = cluster.aggregate_metrics();
  EXPECT_EQ(agg.counter("ordering.fcc_clamped").value(), 0u);
  EXPECT_EQ(cluster.check_report(), "");
}

// Crash recovery: the recovered member rejoins a configuration whose
// flow-control state starts from zero, and its own sends flow immediately.
TEST(FccRecoveryTest, RecoveredProcessSendsFullWindowImmediately) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  for (int i = 0; i < 120; ++i) {
    cluster.node(static_cast<std::size_t>(i % 3)).send(Service::Agreed, payload(1)).value();
  }
  cluster.run_for(800);
  const ProcessId victim = cluster.pid(2);
  ASSERT_TRUE(cluster.crash(victim).ok());
  ASSERT_TRUE(cluster.await_quiesce(4'000'000));
  ASSERT_TRUE(cluster.recover(victim).ok());
  ASSERT_TRUE(cluster.await_stable(4'000'000));

  const auto window = EvsNode::Options{}.ordering.flow_control_window;
  std::vector<MsgId> burst;
  for (std::uint32_t i = 0; i < window; ++i) {
    burst.push_back(cluster.node(victim).send(Service::Agreed, payload(2)).value());
    // Keep the pending queue below its own cap (max_pending_sends ==
    // window): this test is about the ring-wide budget, not send()'s local
    // backpressure guard.
    if (i % 64 == 63) cluster.run_for(2'000);
  }
  ASSERT_TRUE(cluster.await_quiesce(8'000'000))
      << "recovered sender starved: budget pinned?\n" << cluster.liveness_report();
  for (const MsgId& m : burst) EXPECT_TRUE(cluster.sink(0u).delivered(m));
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
