#include "member/membership.hpp"

#include <gtest/gtest.h>

namespace evs {
namespace {

const ProcessId P1{1};
const ProcessId P2{2};
const ProcessId P3{3};

JoinMsg join_from(ProcessId sender, std::vector<ProcessId> candidates,
                  std::vector<ProcessId> fails = {}, RingSeq max_ring = 0) {
  JoinMsg j;
  j.sender = sender;
  j.episode = 1;
  j.candidates = std::move(candidates);
  j.fail_set = std::move(fails);
  j.max_ring_seq = max_ring;
  return j;
}

TEST(MembershipTest, SingletonConsensusImmediately) {
  GatherState g(P1, 1, {}, 0);
  EXPECT_TRUE(g.consensus());
  EXPECT_EQ(g.proposed_membership(), std::vector<ProcessId>{P1});
  EXPECT_EQ(g.representative(), P1);
}

TEST(MembershipTest, ConsensusRequiresMatchingJoins) {
  GatherState g(P1, 1, {P2}, 0);
  EXPECT_FALSE(g.consensus());
  g.on_join(join_from(P2, {P1, P2}), 10);
  EXPECT_TRUE(g.consensus());
  EXPECT_EQ(g.proposed_membership(), (std::vector<ProcessId>{P1, P2}));
}

TEST(MembershipTest, MismatchedJoinBlocksConsensus) {
  GatherState g(P1, 1, {P2}, 0);
  g.on_join(join_from(P2, {P1, P2, P3}), 10);
  // P2 believes P3 is around; our candidate set grows, so no consensus until
  // P3 answers (or times out) and P2's view matches ours.
  EXPECT_FALSE(g.consensus());
  EXPECT_EQ(g.proposed_membership(), (std::vector<ProcessId>{P1, P2, P3}));
}

TEST(MembershipTest, TransitiveCandidateDiscovery) {
  GatherState g(P1, 1, {}, 0);
  g.on_join(join_from(P2, {P2, P3}), 5);
  auto prop = g.proposed_membership();
  EXPECT_EQ(prop, (std::vector<ProcessId>{P1, P2, P3}));
}

TEST(MembershipTest, SilentCandidateTimesOutIntoFailSet) {
  GatherState::Options opts;
  opts.fail_timeout_us = 100;
  GatherState g(P1, 1, {P2, P3}, 0, opts);
  g.on_join(join_from(P2, {P1, P2, P3}), 10);
  EXPECT_FALSE(g.check_timeouts(50));
  EXPECT_TRUE(g.check_timeouts(105));  // P3 never answered; P2 did at t=10
  EXPECT_EQ(g.fail_set(), std::vector<ProcessId>{P3});
  // After P2 re-joins with the shrunken view, consensus is reached.
  g.on_join(join_from(P2, {P1, P2, P3}, {P3}), 107);
  EXPECT_TRUE(g.consensus());
  EXPECT_EQ(g.proposed_membership(), (std::vector<ProcessId>{P1, P2}));
}

TEST(MembershipTest, FailedCandidateNotReadded) {
  GatherState::Options opts;
  opts.fail_timeout_us = 100;
  GatherState g(P1, 1, {P3}, 0, opts);
  g.check_timeouts(200);
  EXPECT_EQ(g.fail_set(), std::vector<ProcessId>{P3});
  g.on_join(join_from(P2, {P2, P3}), 210);
  EXPECT_EQ(g.proposed_membership(), (std::vector<ProcessId>{P1, P2}));
}

TEST(MembershipTest, AdoptsPeerFailSet) {
  GatherState g(P1, 1, {P2, P3}, 0);
  g.on_join(join_from(P2, {P1, P2}, {P3}), 10);
  EXPECT_EQ(g.fail_set(), std::vector<ProcessId>{P3});
  EXPECT_EQ(g.proposed_membership(), (std::vector<ProcessId>{P1, P2}));
}

TEST(MembershipTest, DivorceWhenPeerFailedUs) {
  GatherState g(P1, 1, {P2}, 0);
  g.on_join(join_from(P2, {P2, P3}, {P1}), 10);
  EXPECT_EQ(g.fail_set(), std::vector<ProcessId>{P2});
  EXPECT_EQ(g.proposed_membership(), std::vector<ProcessId>{P1});
}

TEST(MembershipTest, SelfNeverFailed) {
  GatherState g(P1, 1, {}, 0);
  g.adopt_fail_set({P1, P2}, 0);
  EXPECT_EQ(g.fail_set(), std::vector<ProcessId>{P2});
  auto prop = g.proposed_membership();
  EXPECT_TRUE(std::binary_search(prop.begin(), prop.end(), P1));
}

TEST(MembershipTest, MaxRingSeqTracked) {
  GatherState g(P1, 1, {P2}, 0);
  g.on_join(join_from(P2, {P1, P2}, {}, 41), 10);
  EXPECT_EQ(g.max_ring_seq_seen(), 41u);
  auto j = g.make_join(7);
  EXPECT_EQ(j.max_ring_seq, 41u);
  auto j2 = g.make_join(99);
  EXPECT_EQ(j2.max_ring_seq, 99u);
}

TEST(MembershipTest, MakeJoinReflectsState) {
  GatherState g(P1, 3, {P2}, 0);
  g.on_join(join_from(P2, {P1, P2, P3}, {P3}), 5);
  auto j = g.make_join(0);
  EXPECT_EQ(j.sender, P1);
  EXPECT_EQ(j.episode, 3u);
  EXPECT_EQ(j.candidates, (std::vector<ProcessId>{P1, P2}));
  EXPECT_EQ(j.fail_set, std::vector<ProcessId>{P3});
}

TEST(MembershipTest, JoinProposalHelper) {
  auto j = join_from(P2, {P3, P1, P2}, {P3});
  EXPECT_EQ(join_proposal(j), (std::vector<ProcessId>{P1, P2}));
}

TEST(MembershipTest, RepresentativeIsSmallestId) {
  GatherState g(P3, 1, {}, 0);
  g.on_join(join_from(P2, {P2, P3}), 1);
  EXPECT_EQ(g.representative(), P2);
}

TEST(MembershipTest, FreshJoinRefreshesTimeout) {
  GatherState::Options opts;
  opts.fail_timeout_us = 100;
  GatherState g(P1, 1, {P2}, 0, opts);
  g.on_join(join_from(P2, {P1, P2}), 80);
  EXPECT_FALSE(g.check_timeouts(150));  // heard at 80, deadline 180
  EXPECT_TRUE(g.check_timeouts(181));
}

}  // namespace
}  // namespace evs
