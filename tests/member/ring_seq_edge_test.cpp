// Ring-sequence counter edges: the kMaxRingSeq plausibility ceiling and the
// behavior of ring ids, join decoding and gather bookkeeping as the counter
// approaches UINT64_MAX. The protocol never legitimately gets near 2^62
// (one gather per microsecond for ~146k years), so anything beyond it is
// corruption by definition — these tests pin the boundary exactly.
#include <gtest/gtest.h>

#include <span>

#include <limits>

#include "evs/config.hpp"
#include "member/membership.hpp"
#include "totem/messages.hpp"

namespace evs {
namespace {

TEST(RingSeqEdgeTest, RingIdValidityBoundary) {
  EXPECT_FALSE((RingId{0, ProcessId{1}}.valid()));  // never assigned
  EXPECT_TRUE((RingId{1, ProcessId{1}}.valid()));
  EXPECT_TRUE((RingId{kMaxRingSeq - 1, ProcessId{1}}.valid()));
  EXPECT_TRUE((RingId{kMaxRingSeq, ProcessId{1}}.valid()));
  EXPECT_FALSE((RingId{kMaxRingSeq + 1, ProcessId{1}}.valid()));
  EXPECT_FALSE((RingId{std::numeric_limits<RingSeq>::max(), ProcessId{1}}.valid()));
}

TEST(RingSeqEdgeTest, JoinDecodeRejectsImplausibleMaxRingSeq) {
  JoinMsg join;
  join.sender = ProcessId{1};
  join.episode = 1;
  join.candidates = {ProcessId{1}, ProcessId{2}};
  join.fail_set = {};

  join.max_ring_seq = kMaxRingSeq;  // at the ceiling: plausible, accepted
  EXPECT_TRUE(try_decode(encode_msg(join)).has_value());

  join.max_ring_seq = kMaxRingSeq + 1;  // one past: rejected at the boundary
  EXPECT_FALSE(try_decode(encode_msg(join)).has_value());

  join.max_ring_seq = std::numeric_limits<RingSeq>::max();
  EXPECT_FALSE(try_decode(encode_msg(join)).has_value());
}

// checked_decode (own-storage path) applies the same validation, so a
// corrupted persisted join can never smuggle the counter back in via replay.
TEST(RingSeqEdgeTest, CheckedJoinRoundTripsAtTheCeiling) {
  JoinMsg join;
  join.sender = ProcessId{7};
  join.episode = 3;
  join.candidates = {ProcessId{7}};
  join.max_ring_seq = kMaxRingSeq;
  const auto jbuf = encode_msg(join);
  const JoinMsg back = decode_join(std::span(jbuf));
  EXPECT_EQ(back.max_ring_seq, kMaxRingSeq);
}

// Gather bookkeeping near the top of the range: max-tracking must not wrap,
// and values at the ceiling propagate exactly (the +1 that would overflow
// happens — guarded — in EvsNode::maybe_propose, not here).
TEST(RingSeqEdgeTest, GatherTracksMaxRingSeqWithoutOverflow) {
  GatherState::Options opts;
  opts.fail_timeout_us = 10'000;
  GatherState gather(ProcessId{1}, 1, {ProcessId{1}, ProcessId{2}}, 0, opts);
  EXPECT_EQ(gather.max_ring_seq_seen(), 0u);

  JoinMsg join;
  join.sender = ProcessId{2};
  join.episode = 1;
  join.candidates = {ProcessId{1}, ProcessId{2}};
  join.max_ring_seq = kMaxRingSeq;
  gather.on_join(join, 100);
  EXPECT_EQ(gather.max_ring_seq_seen(), kMaxRingSeq);

  // A smaller later value never regresses the max.
  join.max_ring_seq = 5;
  gather.on_join(join, 200);
  EXPECT_EQ(gather.max_ring_seq_seen(), kMaxRingSeq);

  // Our own join advertises the tracked max.
  EXPECT_EQ(gather.make_join(0).max_ring_seq, kMaxRingSeq);
}

// Ord blocks near the ceiling: ring seqs order lexicographically first, and
// the per-ring offset arithmetic (seq * kOrdGranule) stays inside the block
// for any plausible ring seq without overflowing the offset word.
TEST(RingSeqEdgeTest, OrdComparesAcrossTheTopPlausibleRings) {
  const RingId top{kMaxRingSeq, ProcessId{3}};
  const RingId prev{kMaxRingSeq - 1, ProcessId{3}};
  EXPECT_LT(ord_regular_conf(prev), ord_regular_conf(top));
  EXPECT_LT(ord_message_delivery(prev, 1'000'000), ord_regular_conf(top));
  EXPECT_LT(ord_regular_conf(top), ord_message_delivery(top, 1));
  EXPECT_LT(ord_message_delivery(top, 1), ord_transitional_conf(top, 1));
  EXPECT_LT(ord_transitional_conf(top, 1), ord_message_delivery(top, 2));
}

}  // namespace
}  // namespace evs
