// Adversarial TokenMsg bytes against the strict decoder.
//
// The decoder is the hostile-byte boundary: whatever a corrupted or forged
// packet claims, try_decode must terminate, never crash (run this under the
// asan-ubsan preset), and never allocate more than the buffer can justify.
// For tokens specifically the dangerous field is the rtr interval list — a
// few bytes can claim a set of 2^60 elements — so every successful decode is
// checked against the kMaxTokenRtr cardinality bound.
#include <gtest/gtest.h>

#include <variant>

#include "totem/messages.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

TokenMsg rich_token() {
  TokenMsg t;
  t.ring = RingId{9, ProcessId{2}};
  t.rotation = 31;
  t.seq = 5'000;
  t.aru = 4'900;
  t.aru_setter = ProcessId{3};
  for (SeqNum s = 4'901; s <= 4'950; s += 3) t.rtr.insert(s);
  t.rtr.insert_range(4'960, 4'980);
  t.fcc = 7;
  return t;
}

void check_decode_is_bounded(const std::vector<std::uint8_t>& buf) {
  const auto decoded = try_decode(buf);
  if (!decoded.has_value()) return;
  if (const auto* tok = std::get_if<TokenMsg>(&*decoded)) {
    EXPECT_LE(tok->rtr.size(), kMaxTokenRtr);
    EXPECT_LE(tok->aru, tok->seq);
  }
}

TEST(TokenFuzzTest, RandomBytesNeverCrashOrBalloon) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 20'000; ++trial) {
    std::vector<std::uint8_t> buf(rng.below(200));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    // Bias half the trials towards the token parser.
    if (!buf.empty() && rng.chance(0.5)) {
      buf[0] = static_cast<std::uint8_t>(MsgType::Token);
    }
    check_decode_is_bounded(buf);
  }
}

TEST(TokenFuzzTest, MutatedValidTokensNeverCrashOrBalloon) {
  Rng rng(0xBEEF);
  const auto pristine = encode_msg(rich_token());
  ASSERT_TRUE(try_decode(pristine).has_value());
  for (int trial = 0; trial < 20'000; ++trial) {
    auto buf = pristine;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      buf[rng.below(buf.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    check_decode_is_bounded(buf);
  }
}

TEST(TokenFuzzTest, EveryTruncationRejectsCleanly) {
  const auto pristine = encode_msg(rich_token());
  for (std::size_t len = 0; len < pristine.size(); ++len) {
    const std::vector<std::uint8_t> cut(pristine.begin(),
                                        pristine.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(try_decode(cut).has_value()) << "len=" << len;
  }
  EXPECT_TRUE(try_decode(pristine).has_value());
}

// A handcrafted interval-count bomb: the rtr length prefix claims far more
// intervals than the buffer carries. The reader must fail on bounds, not
// reserve memory for the claim.
TEST(TokenFuzzTest, DeclaredIntervalCountBombRejected) {
  const auto pristine = encode_msg(rich_token());
  // The rtr seq_set is the only variable-length field; find its count
  // prefix by re-encoding with an empty rtr and diffing lengths is fragile,
  // so instead splice a hostile count into a fresh encode: copy the bytes
  // up to the seq_set, then write a huge count with no interval data.
  TokenMsg bare = rich_token();
  bare.rtr = SeqSet();
  auto buf = encode_msg(bare);
  ASSERT_TRUE(try_decode(buf).has_value());
  // encode_msg(TokenMsg) writes the rtr seq_set, then fcc (u32). Rewrite
  // the tail: drop fcc, then append count=2^32-1 and a trailing fcc again.
  buf.resize(buf.size() - 4);       // strip fcc
  buf.resize(buf.size() - 4);       // strip empty seq_set count (0)
  wire::Writer w;
  w.u32(0xFFFF'FFFF);               // hostile interval count
  w.u32(0);                         // "fcc" / whatever bytes remain
  for (std::uint8_t b : w.take()) buf.push_back(b);
  EXPECT_FALSE(try_decode(buf).has_value());
}

}  // namespace
}  // namespace evs
