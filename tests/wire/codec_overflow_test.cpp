// Regression tests for the Writer length-prefix overflow fix.
//
// Container writers used to do `u32(static_cast<std::uint32_t>(size))`: a
// container with more than UINT32_MAX elements had its length silently
// truncated modulo 2^32, producing a frame that decoded cleanly to the
// wrong container (the worst kind of codec bug — no error anywhere). The
// fix checks the size BEFORE touching any element and poisons the writer,
// so an oversized container can never reach the wire.
//
// A real >4GiB container cannot be allocated in a unit test; instead we
// hand bytes() a span whose size() is forged (pointer to one byte, huge
// length). The fixed writer must reject on the size alone, without ever
// reading through the span — which is also what makes this test safe.
#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>

namespace evs {
namespace {

std::span<const std::uint8_t> forged_huge_span(std::size_t claimed_size) {
  static const std::uint8_t byte = 0x5A;
  // Never dereferenced past the first byte: the writer checks size() first.
  return {&byte, claimed_size};
}

TEST(CodecOverflowTest, OversizedBytesPoisonsWriterWithoutWriting) {
  wire::Writer w;
  w.u32(0xAABBCCDD);  // some valid prefix
  const std::size_t before = w.size();
  w.bytes(forged_huge_span(static_cast<std::size_t>(UINT32_MAX) + 1));
  EXPECT_FALSE(w.ok());
  // Nothing appended: no truncated length prefix, no partial payload.
  EXPECT_EQ(w.size(), before);
}

TEST(CodecOverflowTest, PoisonedWriterDropsAllSubsequentWrites) {
  wire::Writer w;
  w.bytes(forged_huge_span(static_cast<std::size_t>(UINT32_MAX) + 7));
  ASSERT_FALSE(w.ok());
  w.u8(1);
  w.u64(42);
  w.str("hello");
  w.pid(ProcessId{9});
  EXPECT_EQ(w.size(), 0u);
  EXPECT_FALSE(w.ok());
}

TEST(CodecOverflowTest, PoisonedWriterCannotProduceADecodableFrame) {
  // The end-to-end property the fix guarantees: no byte sequence produced
  // by a writer that saw an oversized container can reach seal_frame.
  // take() is the only way to get the buffer out, and it asserts ok().
  auto poison_and_take = [] {
    wire::Writer w;
    w.u32(123);
    w.bytes(forged_huge_span(static_cast<std::size_t>(UINT32_MAX) + 1));
    return w.take();  // must abort: the encoding is unrepresentable
  };
  EXPECT_DEATH(poison_and_take(), "Writer poisoned");
}

TEST(CodecOverflowTest, BoundarySizedContainersStillRoundTrip) {
  // Ordinary (and boundary-adjacent but allocatable) containers are
  // unaffected by the guard.
  wire::Writer w;
  std::vector<std::uint8_t> data(4096, 0xA5);
  w.bytes(data);
  std::vector<ProcessId> pids{ProcessId{1}, ProcessId{2}, ProcessId{3}};
  w.pid_vec(pids);
  EXPECT_TRUE(w.ok());
  auto buf = w.take();
  wire::Reader r(buf);
  EXPECT_EQ(r.bytes(), data);
  EXPECT_EQ(r.pid_vec(), pids);
  EXPECT_TRUE(r.done());
}

TEST(CodecOverflowTest, SealFrameStillRejectsOversizedBodies) {
  // The frame-level guard is independent of the writer-level one: a body
  // over kMaxFrameBody is refused with a Status even though every one of
  // its containers fit u32.
  std::vector<std::uint8_t> body(wire::kMaxFrameBody + 1, 0);
  auto sealed = wire::seal_frame(body);
  ASSERT_FALSE(sealed.ok());
  EXPECT_EQ(sealed.code(), Errc::payload_too_large);
}

}  // namespace
}  // namespace evs
