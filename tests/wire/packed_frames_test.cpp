// Packed datagrams: frames are self-delimiting, so a datagram carrying N
// messages is just N frames back to back, built with append_frame and walked
// on receipt by FrameCursor. This suite pins the contract at the hostile-byte
// boundary: round-trips for 0/1/N frames and bodies at the size cap, the
// torn-tail and mid-datagram corruption error taxonomy, the Reader/read-u32
// bounds fix that makes a truncated trailing frame reject instead of read
// past the buffer, and a deterministic fuzz sweep over mutated packed
// buffers (run under ASan/UBSan in the sanitizer configs).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"
#include "wire/codec.hpp"

namespace evs::wire {
namespace {

std::vector<std::uint8_t> body_of(std::uint8_t tag, std::size_t len) {
  std::vector<std::uint8_t> b(len);
  for (std::size_t i = 0; i < len; ++i) {
    b[i] = static_cast<std::uint8_t>(tag + i);
  }
  return b;
}

// Walk a datagram to completion, collecting bodies; returns the terminal
// status (OK when the datagram was consumed exactly).
Status walk(std::span<const std::uint8_t> datagram,
            std::vector<std::vector<std::uint8_t>>* out) {
  FrameCursor cursor(datagram);
  while (!cursor.done()) {
    auto body = cursor.next();
    if (!body.ok()) return body.status();
    out->emplace_back(body->begin(), body->end());
  }
  return Status::ok_status();
}

TEST(PackedFramesTest, EmptyDatagramIsZeroFrames) {
  std::vector<std::vector<std::uint8_t>> bodies;
  EXPECT_TRUE(walk({}, &bodies).ok());
  EXPECT_TRUE(bodies.empty());
}

TEST(PackedFramesTest, SingleFrameMatchesSealFrame) {
  const auto body = body_of(1, 100);
  std::vector<std::uint8_t> dgram;
  ASSERT_TRUE(append_frame(dgram, body).ok());
  // Packing one frame is byte-identical to the single-frame sealer: the
  // unbatched and batched wire shapes are the same format.
  auto sealed = seal_frame(body);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(dgram, *sealed);

  std::vector<std::vector<std::uint8_t>> bodies;
  ASSERT_TRUE(walk(dgram, &bodies).ok());
  ASSERT_EQ(bodies.size(), 1u);
  EXPECT_EQ(bodies[0], body);
}

TEST(PackedFramesTest, ManyFramesRoundTripInOrder) {
  std::vector<std::vector<std::uint8_t>> sent;
  std::vector<std::uint8_t> dgram;
  for (int i = 0; i < 64; ++i) {
    // Mix of sizes, including empty bodies, which are legal frames.
    sent.push_back(body_of(static_cast<std::uint8_t>(i), (i * 37) % 256));
    ASSERT_TRUE(append_frame(dgram, sent.back()).ok());
  }
  std::vector<std::vector<std::uint8_t>> bodies;
  ASSERT_TRUE(walk(dgram, &bodies).ok());
  EXPECT_EQ(bodies, sent);
}

TEST(PackedFramesTest, MaxSizeBodyRoundTripsAndOversizeRejected) {
  std::vector<std::uint8_t> dgram;
  ASSERT_TRUE(append_frame(dgram, body_of(7, kMaxFrameBody)).ok());
  std::vector<std::vector<std::uint8_t>> bodies;
  ASSERT_TRUE(walk(dgram, &bodies).ok());
  ASSERT_EQ(bodies.size(), 1u);
  EXPECT_EQ(bodies[0].size(), kMaxFrameBody);

  // One byte over the cap: append_frame refuses and leaves out untouched.
  std::vector<std::uint8_t> out{1, 2, 3};
  Status st = append_frame(out, body_of(7, kMaxFrameBody + 1));
  EXPECT_EQ(st.code(), Errc::payload_too_large);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 3}));

  // A forged header declaring an over-cap length is rejected as such, not
  // treated as a short read.
  Writer w;
  w.u32(static_cast<std::uint32_t>(kMaxFrameBody + 1));
  w.u32(0);
  auto forged = w.take();
  FrameCursor cursor(forged);
  auto body = cursor.next();
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.code(), Errc::payload_too_large);
}

TEST(PackedFramesTest, TornTailIsBadFrameNotSilentStop) {
  // Regression for the read_u32_le/Reader bounds fix: before it, a trailing
  // fragment shorter than a header could read past the end of the buffer
  // (or alias adjacent bytes) instead of rejecting. Every truncation point
  // of a two-frame datagram must now yield bad_frame after the first frame
  // decodes cleanly.
  const auto first = body_of(3, 40);
  const auto second = body_of(9, 40);
  std::vector<std::uint8_t> dgram;
  ASSERT_TRUE(append_frame(dgram, first).ok());
  const std::size_t boundary = dgram.size();
  ASSERT_TRUE(append_frame(dgram, second).ok());

  for (std::size_t cut = boundary + 1; cut < dgram.size(); ++cut) {
    std::vector<std::uint8_t> torn(dgram.begin(),
                                   dgram.begin() + static_cast<std::ptrdiff_t>(cut));
    FrameCursor cursor(torn);
    auto head = cursor.next();
    ASSERT_TRUE(head.ok()) << "cut=" << cut;
    EXPECT_EQ(std::vector<std::uint8_t>(head->begin(), head->end()), first);
    ASSERT_FALSE(cursor.done()) << "cut=" << cut;
    auto tail = cursor.next();
    ASSERT_FALSE(tail.ok()) << "cut=" << cut;
    EXPECT_EQ(tail.code(), Errc::bad_frame) << "cut=" << cut;
    // Poisoned cursor: done() stays false, next() repeats the error.
    EXPECT_FALSE(cursor.done());
    EXPECT_EQ(cursor.next().code(), Errc::bad_frame);
  }
}

TEST(PackedFramesTest, MidDatagramCorruptionAbandonsTheRest) {
  std::vector<std::uint8_t> dgram;
  ASSERT_TRUE(append_frame(dgram, body_of(1, 30)).ok());
  const std::size_t second_start = dgram.size();
  ASSERT_TRUE(append_frame(dgram, body_of(2, 30)).ok());
  ASSERT_TRUE(append_frame(dgram, body_of(3, 30)).ok());

  // Flip one body byte of the middle frame: its CRC fails, and the cursor
  // must not attempt to resynchronize on the third frame — a garbled length
  // field cannot be trusted to find the next boundary.
  auto corrupted = dgram;
  corrupted[second_start + kFrameHeaderBytes + 5] ^= 0x40;
  std::vector<std::vector<std::uint8_t>> bodies;
  Status st = walk(corrupted, &bodies);
  EXPECT_EQ(st.code(), Errc::crc_mismatch);
  EXPECT_EQ(bodies.size(), 1u);
}

TEST(PackedFramesTest, FuzzMutatedPackedBuffersNeverCrash) {
  // Deterministic fuzz: build a packed datagram, then hammer the cursor
  // with truncations, byte flips, splices and random garbage. The property
  // is memory safety plus the error taxonomy — every walk ends in OK,
  // bad_frame, payload_too_large or crc_mismatch, and bodies handed out
  // never exceed the remaining buffer (the sanitizer configs verify the
  // spans stay in bounds).
  Rng rng(20260808);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> dgram;
    const int frames = static_cast<int>(rng.below(6));
    for (int f = 0; f < frames; ++f) {
      ASSERT_TRUE(
          append_frame(dgram, body_of(static_cast<std::uint8_t>(rng()), rng.below(200)))
              .ok());
    }
    switch (rng.below(4)) {
      case 0:  // truncate
        if (!dgram.empty()) dgram.resize(rng.below(dgram.size()));
        break;
      case 1:  // flip bytes
        for (int flips = static_cast<int>(rng.below(4)); flips > 0 && !dgram.empty();
             --flips) {
          dgram[rng.below(dgram.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        }
        break;
      case 2: {  // splice random garbage into the tail
        const std::size_t garbage = rng.below(32);
        for (std::size_t g = 0; g < garbage; ++g) {
          dgram.push_back(static_cast<std::uint8_t>(rng()));
        }
        break;
      }
      default:  // leave intact: the clean walk must succeed
        break;
    }
    FrameCursor cursor(dgram);
    while (!cursor.done()) {
      auto body = cursor.next();
      if (!body.ok()) {
        const Errc code = body.code();
        EXPECT_TRUE(code == Errc::bad_frame || code == Errc::payload_too_large ||
                    code == Errc::crc_mismatch)
            << "trial=" << trial << " unexpected code " << static_cast<int>(code);
        break;
      }
      EXPECT_LE(body->size(), dgram.size());
    }
  }
}

}  // namespace
}  // namespace evs::wire
