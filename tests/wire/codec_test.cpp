#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include <span>

#include "evs/config.hpp"
#include "totem/messages.hpp"

namespace evs {
namespace {

TEST(CodecTest, ScalarsRoundTrip) {
  wire::Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.boolean(true);
  w.boolean(false);
  auto buf = w.take();
  wire::Reader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(CodecTest, LittleEndianLayout) {
  wire::Writer w;
  w.u32(0x01020304);
  auto buf = w.take();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(CodecTest, StringsAndBytes) {
  wire::Writer w;
  w.str("hello");
  w.str("");
  std::vector<std::uint8_t> blob{1, 2, 3};
  w.bytes(blob);
  auto buf = w.take();
  wire::Reader r(buf);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.done());
}

TEST(CodecTest, SeqSetRoundTrip) {
  SeqSet s;
  s.insert_range(1, 100);
  s.insert(200);
  s.insert_range(300, 301);
  wire::Writer w;
  w.seq_set(s);
  auto buf = w.take();
  wire::Reader r(buf);
  EXPECT_EQ(r.seq_set(), s);
  EXPECT_TRUE(r.done());
}

TEST(CodecTest, EmptySeqSetRoundTrip) {
  wire::Writer w;
  w.seq_set(SeqSet{});
  auto buf = w.take();
  wire::Reader r(buf);
  EXPECT_TRUE(r.seq_set().empty());
}

TEST(CodecTest, VectorsRoundTrip) {
  wire::Writer w;
  w.pid_vec({ProcessId{3}, ProcessId{1}, ProcessId{7}});
  w.seq_vec({10, 20, 30});
  auto buf = w.take();
  wire::Reader r(buf);
  EXPECT_EQ(r.pid_vec(), (std::vector<ProcessId>{ProcessId{3}, ProcessId{1}, ProcessId{7}}));
  EXPECT_EQ(r.seq_vec(), (std::vector<SeqNum>{10, 20, 30}));
}

TEST(CodecTest, TruncatedBufferSetsNotOk) {
  wire::Writer w;
  w.u64(12345);
  auto buf = w.take();
  buf.resize(3);
  wire::Reader r(buf);
  (void)r.u64();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
}

TEST(CodecTest, CorruptSeqSetRejected) {
  wire::Writer w;
  w.u32(2);
  w.u64(5);
  w.u64(3);  // hi < lo: invalid interval
  w.u64(10);
  w.u64(11);
  auto buf = w.take();
  wire::Reader r(buf);
  (void)r.seq_set();
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, ConfigIdRoundTrip) {
  ConfigId c = ConfigId::trans(RingId{5, ProcessId{2}}, RingId{9, ProcessId{1}});
  wire::Writer w;
  encode(w, c);
  auto buf = w.take();
  wire::Reader r(buf);
  EXPECT_EQ(decode_config_id(r), c);
}

TEST(CodecTest, RegularMsgRoundTrip) {
  RegularMsg m;
  m.ring = RingId{7, ProcessId{3}};
  m.seq = 42;
  m.id = MsgId{ProcessId{3}, 99};
  m.service = Service::Safe;
  m.payload = {9, 8, 7};
  auto buf = encode_msg(m);
  EXPECT_EQ(peek_type(std::span(buf)), MsgType::Regular);
  RegularMsg d = decode_regular(std::span(buf));
  EXPECT_EQ(d.ring, m.ring);
  EXPECT_EQ(d.seq, m.seq);
  EXPECT_EQ(d.id, m.id);
  EXPECT_EQ(d.service, m.service);
  EXPECT_EQ(d.payload, m.payload);
}

TEST(CodecTest, TokenRoundTrip) {
  TokenMsg t;
  t.ring = RingId{3, ProcessId{1}};
  t.rotation = 17;
  t.seq = 1000;
  t.aru = 990;
  t.aru_setter = ProcessId{4};
  t.rtr.insert_range(991, 995);
  auto buf = encode_msg(t);
  EXPECT_EQ(peek_type(std::span(buf)), MsgType::Token);
  TokenMsg d = decode_token(std::span(buf));
  EXPECT_EQ(d.ring, t.ring);
  EXPECT_EQ(d.rotation, t.rotation);
  EXPECT_EQ(d.seq, t.seq);
  EXPECT_EQ(d.aru, t.aru);
  EXPECT_EQ(d.aru_setter, t.aru_setter);
  EXPECT_EQ(d.rtr, t.rtr);
}

TEST(CodecTest, JoinRoundTrip) {
  JoinMsg j;
  j.sender = ProcessId{5};
  j.episode = 3;
  j.candidates = {ProcessId{1}, ProcessId{5}};
  j.fail_set = {ProcessId{9}};
  j.max_ring_seq = 77;
  auto buf = encode_msg(j);
  JoinMsg d = decode_join(std::span(buf));
  EXPECT_EQ(d.sender, j.sender);
  EXPECT_EQ(d.episode, j.episode);
  EXPECT_EQ(d.candidates, j.candidates);
  EXPECT_EQ(d.fail_set, j.fail_set);
  EXPECT_EQ(d.max_ring_seq, j.max_ring_seq);
}

TEST(CodecTest, ExchangeRoundTrip) {
  ExchangeMsg e;
  e.sender = ProcessId{2};
  e.proposed_ring = RingId{10, ProcessId{1}};
  e.old_ring = RingId{6, ProcessId{2}};
  e.received.insert_range(1, 50);
  e.old_safe_upto = 44;
  e.delivered_upto = 40;
  e.delivered_extra.insert(48);
  e.obligation_set = {ProcessId{2}, ProcessId{3}};
  auto buf = encode_msg(e);
  ExchangeMsg d = decode_exchange(std::span(buf));
  EXPECT_EQ(d.sender, e.sender);
  EXPECT_EQ(d.proposed_ring, e.proposed_ring);
  EXPECT_EQ(d.old_ring, e.old_ring);
  EXPECT_EQ(d.received, e.received);
  EXPECT_EQ(d.old_safe_upto, e.old_safe_upto);
  EXPECT_EQ(d.delivered_upto, e.delivered_upto);
  EXPECT_EQ(d.delivered_extra, e.delivered_extra);
  EXPECT_EQ(d.obligation_set, e.obligation_set);
}

TEST(CodecTest, RecoveryMsgRoundTrip) {
  RecoveryMsgMsg rm;
  rm.sender = ProcessId{1};
  rm.proposed_ring = RingId{4, ProcessId{1}};
  rm.inner.ring = RingId{2, ProcessId{1}};
  rm.inner.seq = 5;
  rm.inner.id = MsgId{ProcessId{2}, 11};
  rm.inner.service = Service::Agreed;
  rm.inner.payload = {1};
  auto buf = encode_msg(rm);
  RecoveryMsgMsg d = decode_recovery_msg(std::span(buf));
  EXPECT_EQ(d.sender, rm.sender);
  EXPECT_EQ(d.proposed_ring, rm.proposed_ring);
  EXPECT_EQ(d.inner.seq, rm.inner.seq);
  EXPECT_EQ(d.inner.id, rm.inner.id);
}

TEST(CodecTest, RecoveryAckAndBeaconAndFormRing) {
  RecoveryAckMsg a;
  a.sender = ProcessId{3};
  a.proposed_ring = RingId{8, ProcessId{1}};
  a.old_ring = RingId{5, ProcessId{3}};
  a.received.insert(1);
  a.complete = true;
  auto abuf = encode_msg(a);
  auto da = decode_recovery_ack(std::span(abuf));
  EXPECT_EQ(da.sender, a.sender);
  EXPECT_TRUE(da.complete);
  EXPECT_EQ(da.received, a.received);

  BeaconMsg b{ProcessId{4}, RingId{12, ProcessId{4}}};
  auto bbuf = encode_msg(b);
  auto db = decode_beacon(std::span(bbuf));
  EXPECT_EQ(db.sender, b.sender);
  EXPECT_EQ(db.ring, b.ring);

  FormRingMsg f{ProcessId{1}, RingId{20, ProcessId{1}}, {ProcessId{1}, ProcessId{2}}};
  auto fbuf = encode_msg(f);
  auto df = decode_form_ring(std::span(fbuf));
  EXPECT_EQ(df.ring, f.ring);
  EXPECT_EQ(df.members, f.members);
}

TEST(CodecTest, PeekTypeOnGarbage) {
  const std::vector<std::uint8_t> empty, zero{0}, unknown{99};
  EXPECT_EQ(peek_type(std::span(empty)), std::nullopt);
  EXPECT_EQ(peek_type(std::span(zero)), std::nullopt);
  EXPECT_EQ(peek_type(std::span(unknown)), std::nullopt);
}

}  // namespace
}  // namespace evs
