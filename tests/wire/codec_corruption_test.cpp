// Adversarial codec fuzzing: corrupted, truncated or extended frames must
// never crash, never over-allocate and never be silently mis-decoded.
//
// Defense is layered. The CRC-32 frame (wire::seal_frame/open_frame)
// detects every burst error of <= 32 bits — in particular every single-byte
// flip — so a flipped frame is rejected before the message codec ever runs.
// Behind it, try_decode validates structure and protocol invariants, so
// even a forged frame with a correct CRC cannot produce a message that
// violates downstream assumptions (unsorted member lists, aru > seq, ...).
#include <gtest/gtest.h>

#include <vector>

#include "totem/messages.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

std::vector<std::vector<std::uint8_t>> sample_bodies() {
  std::vector<std::vector<std::uint8_t>> bodies;

  RegularMsg reg;
  reg.ring = RingId{7, ProcessId{3}};
  reg.seq = 42;
  reg.id = MsgId{ProcessId{3}, 99};
  reg.service = Service::Safe;
  reg.payload = {9, 8, 7, 6, 5};
  bodies.push_back(encode_msg(reg));

  TokenMsg token;
  token.ring = RingId{3, ProcessId{1}};
  token.rotation = 17;
  token.seq = 1000;
  token.aru = 990;
  token.aru_setter = ProcessId{4};
  token.rtr.insert_range(991, 995);
  bodies.push_back(encode_msg(token));

  JoinMsg join;
  join.sender = ProcessId{5};
  join.episode = 3;
  join.candidates = {ProcessId{1}, ProcessId{5}};
  join.fail_set = {ProcessId{9}};
  join.max_ring_seq = 77;
  bodies.push_back(encode_msg(join));

  bodies.push_back(encode_msg(
      FormRingMsg{ProcessId{1}, RingId{20, ProcessId{1}}, {ProcessId{1}, ProcessId{2}}}));

  ExchangeMsg ex;
  ex.sender = ProcessId{2};
  ex.proposed_ring = RingId{10, ProcessId{1}};
  ex.old_ring = RingId{6, ProcessId{2}};
  ex.received.insert_range(1, 50);
  ex.old_safe_upto = 44;
  ex.delivered_upto = 40;
  ex.delivered_extra.insert(48);
  ex.obligation_set = {ProcessId{2}, ProcessId{3}};
  bodies.push_back(encode_msg(ex));

  RecoveryMsgMsg rm;
  rm.sender = ProcessId{1};
  rm.proposed_ring = RingId{4, ProcessId{1}};
  rm.inner = reg;
  rm.inner.ring = RingId{2, ProcessId{1}};
  bodies.push_back(encode_msg(rm));

  RecoveryAckMsg ack;
  ack.sender = ProcessId{3};
  ack.proposed_ring = RingId{8, ProcessId{1}};
  ack.old_ring = RingId{5, ProcessId{3}};
  ack.received.insert(1);
  ack.complete = true;
  bodies.push_back(encode_msg(ack));

  bodies.push_back(encode_msg(BeaconMsg{ProcessId{4}, RingId{12, ProcessId{4}}}));

  return bodies;
}

TEST(CodecCorruptionTest, SealOpenRoundTripsEveryMessageKind) {
  for (const auto& body : sample_bodies()) {
    const auto frame = wire::seal_frame(body).value();
    const auto opened = wire::open_frame(frame);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(std::vector<std::uint8_t>(opened->begin(), opened->end()), body);
    EXPECT_TRUE(try_decode(*opened).has_value());
  }
}

TEST(CodecCorruptionTest, EverySingleByteFlipIsRejected) {
  for (const auto& body : sample_bodies()) {
    const auto frame = wire::seal_frame(body).value();
    for (std::size_t pos = 0; pos < frame.size(); ++pos) {
      for (std::uint8_t mask : {std::uint8_t{0xFF}, std::uint8_t{0x01}}) {
        auto corrupted = frame;
        corrupted[pos] ^= mask;
        EXPECT_FALSE(wire::open_frame(corrupted).ok())
            << "flip at offset " << pos << " mask " << int(mask) << " accepted";
      }
    }
  }
}

TEST(CodecCorruptionTest, EveryTruncationAndExtensionIsRejected) {
  for (const auto& body : sample_bodies()) {
    const auto frame = wire::seal_frame(body).value();
    for (std::size_t len = 0; len < frame.size(); ++len) {
      std::vector<std::uint8_t> truncated(frame.begin(),
                                          frame.begin() + static_cast<long>(len));
      EXPECT_FALSE(wire::open_frame(truncated).ok()) << "len " << len;
    }
    auto extended = frame;
    extended.push_back(0);
    EXPECT_FALSE(wire::open_frame(extended).ok());
  }
}

TEST(CodecCorruptionTest, TryDecodeNeverCrashesOnFlippedBodies) {
  // Bypass the CRC frame and attack the message codec directly: no byte
  // flip may crash or abort it. (A flip in free-form fields — a payload
  // byte, a sequence number — can still decode to a structurally valid
  // message; catching that is exactly what the CRC frame layer is for.)
  for (const auto& body : sample_bodies()) {
    for (std::size_t pos = 0; pos < body.size(); ++pos) {
      for (std::uint8_t mask : {std::uint8_t{0xFF}, std::uint8_t{0x01}}) {
        auto corrupted = body;
        corrupted[pos] ^= mask;
        (void)try_decode(corrupted);  // must return; value irrelevant
      }
    }
    for (std::size_t len = 0; len < body.size(); ++len) {
      std::vector<std::uint8_t> truncated(body.begin(),
                                          body.begin() + static_cast<long>(len));
      (void)try_decode(truncated);
    }
  }
}

TEST(CodecCorruptionTest, TryDecodeRejectsTrailingGarbage) {
  for (const auto& body : sample_bodies()) {
    auto extended = body;
    extended.push_back(0);
    EXPECT_FALSE(try_decode(extended).has_value());
  }
}

TEST(CodecCorruptionTest, HugeSeqSetCountRejectedWithoutAllocating) {
  // A corrupted interval count must not make the reader reserve gigabytes.
  wire::Writer w;
  w.u32(0xFFFFFFFF);  // claims 4 billion intervals
  w.u64(1);
  w.u64(2);
  const auto buf = w.take();
  wire::Reader r(buf);
  const SeqSet s = r.seq_set();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(s.empty());
}

TEST(CodecCorruptionTest, RandomGarbageFuzz) {
  Rng rng(2026);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> garbage(rng.below(128));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    (void)wire::open_frame(garbage);  // must not crash
    (void)try_decode(garbage);        // must not crash
  }
}

TEST(CodecCorruptionTest, ProtocolInvariantsEnforcedByTryDecode) {
  // Forged frames with correct CRCs but invalid protocol fields must be
  // rejected by strict decoding.
  {
    TokenMsg t;  // aru above seq
    t.ring = RingId{1, ProcessId{1}};
    t.rotation = 1;
    t.seq = 5;
    t.aru = 9;
    auto buf = encode_msg(t);
    EXPECT_FALSE(try_decode(buf).has_value());
  }
  {
    JoinMsg j;  // unsorted candidate list
    j.sender = ProcessId{1};
    j.candidates = {ProcessId{5}, ProcessId{2}};
    auto buf = encode_msg(j);
    EXPECT_FALSE(try_decode(buf).has_value());
  }
  {
    FormRingMsg f;  // empty membership
    f.sender = ProcessId{1};
    f.ring = RingId{1, ProcessId{1}};
    auto buf = encode_msg(f);
    EXPECT_FALSE(try_decode(buf).has_value());
  }
  {
    BeaconMsg b;  // zero sender
    b.ring = RingId{1, ProcessId{1}};
    auto buf = encode_msg(b);
    EXPECT_FALSE(try_decode(buf).has_value());
  }
}

}  // namespace
}  // namespace evs
