// peek_type and the strict decoder across the full message surface: every
// MsgType must survive encode_msg -> peek_type -> try_decode with the peeked
// type agreeing with the decoded alternative, the type-byte range must be
// exactly [kMsgTypeMin, kMsgTypeMax], and the decode-time resource bounds
// (token rtr cardinality, exchange GC watermark consistency) must hold.
#include <gtest/gtest.h>

#include <span>
#include <variant>

#include "totem/messages.hpp"

namespace evs {
namespace {

RegularMsg sample_regular() {
  RegularMsg m;
  m.ring = RingId{7, ProcessId{3}};
  m.seq = 42;
  m.id = MsgId{ProcessId{3}, 99};
  m.service = Service::Safe;
  m.payload = {9, 8, 7};
  return m;
}

TokenMsg sample_token() {
  TokenMsg t;
  t.ring = RingId{3, ProcessId{1}};
  t.rotation = 17;
  t.seq = 1000;
  t.aru = 990;
  t.aru_setter = ProcessId{4};
  t.rtr.insert_range(991, 995);
  t.fcc = 12;
  return t;
}

ExchangeMsg sample_exchange() {
  ExchangeMsg e;
  e.sender = ProcessId{2};
  e.proposed_ring = RingId{10, ProcessId{1}};
  e.old_ring = RingId{6, ProcessId{2}};
  e.received.insert_range(1, 50);
  e.old_safe_upto = 44;
  e.delivered_upto = 40;
  e.delivered_extra.insert(48);
  e.gc_upto = 30;
  e.obligation_set = {ProcessId{2}, ProcessId{3}};
  return e;
}

// Every message kind, paired with the variant alternative try_decode must
// produce for it. A MsgType added without extending this list fails the
// exhaustiveness check below.
template <typename T>
void expect_round_trip(const T& msg, MsgType want) {
  const auto buf = encode_msg(msg);
  const auto peeked = peek_type(std::span(buf));
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(*peeked, want);
  const auto decoded = try_decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<T>(*decoded));
}

TEST(PeekTypeTest, EveryMsgTypeRoundTrips) {
  expect_round_trip(sample_regular(), MsgType::Regular);
  expect_round_trip(sample_token(), MsgType::Token);

  JoinMsg j;
  j.sender = ProcessId{5};
  j.episode = 3;
  j.candidates = {ProcessId{1}, ProcessId{5}};
  j.fail_set = {ProcessId{9}};
  j.max_ring_seq = 77;
  expect_round_trip(j, MsgType::Join);

  FormRingMsg f{ProcessId{1}, RingId{20, ProcessId{1}},
                {ProcessId{1}, ProcessId{2}}};
  expect_round_trip(f, MsgType::FormRing);

  expect_round_trip(sample_exchange(), MsgType::Exchange);

  RecoveryMsgMsg rm;
  rm.sender = ProcessId{1};
  rm.proposed_ring = RingId{4, ProcessId{1}};
  rm.inner = sample_regular();
  expect_round_trip(rm, MsgType::RecoveryMsg);

  RecoveryAckMsg a;
  a.sender = ProcessId{3};
  a.proposed_ring = RingId{8, ProcessId{1}};
  a.old_ring = RingId{5, ProcessId{3}};
  a.received.insert(1);
  a.complete = true;
  expect_round_trip(a, MsgType::RecoveryAck);

  expect_round_trip(BeaconMsg{ProcessId{4}, RingId{12, ProcessId{4}}},
                    MsgType::Beacon);

  // Exhaustiveness: the eight cases above are the whole enum. If a ninth
  // kind is added, kMsgTypeMax moves and this count fails loudly.
  EXPECT_EQ(kMsgTypeMax - kMsgTypeMin + 1, 8);
}

TEST(PeekTypeTest, TypeByteRangeIsDerivedFromEnum) {
  // Inside the valid range peek succeeds on a minimal buffer; one past
  // either end is rejected without touching the rest of the bytes.
  const std::vector<std::uint8_t> lo{kMsgTypeMin}, hi{kMsgTypeMax},
      below{static_cast<std::uint8_t>(kMsgTypeMin - 1)},
      above{static_cast<std::uint8_t>(kMsgTypeMax + 1)}, junk{0xFF};
  EXPECT_EQ(peek_type(std::span(lo)), MsgType::Regular);
  EXPECT_EQ(peek_type(std::span(hi)), MsgType::Beacon);
  EXPECT_EQ(peek_type(std::span(below)), std::nullopt);
  EXPECT_EQ(peek_type(std::span(above)), std::nullopt);
  EXPECT_EQ(peek_type(std::span(junk)), std::nullopt);
}

TEST(PeekTypeTest, NewTokenAndExchangeFieldsRoundTrip) {
  const TokenMsg t = sample_token();
  const auto tbuf = encode_msg(t);
  const TokenMsg dt = decode_token(std::span(tbuf));
  EXPECT_EQ(dt.fcc, t.fcc);

  const ExchangeMsg e = sample_exchange();
  const auto ebuf = encode_msg(e);
  const ExchangeMsg de = decode_exchange(std::span(ebuf));
  EXPECT_EQ(de.gc_upto, e.gc_upto);
}

TEST(PeekTypeTest, TokenRtrCardinalityBoundedAtDecode) {
  TokenMsg t = sample_token();
  t.seq = kMaxTokenRtr * 2;  // requests must stay <= seq; give them room
  t.rtr = SeqSet();
  t.rtr.insert_range(1, kMaxTokenRtr);  // exactly at the cap: fine
  EXPECT_TRUE(try_decode(encode_msg(t)).has_value());

  t.rtr.insert(kMaxTokenRtr + 2);  // one element over: rejected
  EXPECT_FALSE(try_decode(encode_msg(t)).has_value());

  // The classic OOM shape — one interval spanning nearly the whole u64
  // space — must be rejected outright, not materialized.
  t.seq = UINT64_MAX;
  t.rtr = SeqSet();
  t.rtr.insert_range(1, UINT64_MAX - 1);
  EXPECT_FALSE(try_decode(encode_msg(t)).has_value());
}

TEST(PeekTypeTest, ExchangeGcWatermarkValidatedAtDecode) {
  // gc_upto beyond delivered_upto: GC never outruns delivery.
  ExchangeMsg e = sample_exchange();
  e.gc_upto = e.delivered_upto + 1;
  EXPECT_FALSE(try_decode(encode_msg(e)).has_value());

  // received must still summarize the reclaimed prefix [1, gc_upto].
  e = sample_exchange();
  e.received = SeqSet();
  e.received.insert_range(5, 50);
  EXPECT_FALSE(try_decode(encode_msg(e)).has_value());

  // A process with no prior ring has nothing to have collected.
  e = sample_exchange();
  e.old_ring = RingId{};
  e.received = SeqSet();
  e.delivered_upto = 0;
  e.delivered_extra = SeqSet();
  e.old_safe_upto = 0;
  e.gc_upto = 1;
  EXPECT_FALSE(try_decode(encode_msg(e)).has_value());
}

}  // namespace
}  // namespace evs
