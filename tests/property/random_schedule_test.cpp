// Property tests: randomized fault schedules, parameterized over seeds,
// cluster sizes and message-loss rates. Every generated execution must
// satisfy the complete extended virtual synchrony specification — the
// checker (tests/spec/checker_test.cpp proves it can fail) is the oracle.
#include <gtest/gtest.h>

#include "testkit/cluster.hpp"
#include "testkit/workload.hpp"

namespace evs {
namespace {

struct Params {
  std::uint64_t seed;
  std::size_t processes;
  double loss;
  int rounds;
};

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.processes) +
         "_loss" + std::to_string(static_cast<int>(p.loss * 100)) + "_r" +
         std::to_string(p.rounds);
}

class RandomScheduleTest : public ::testing::TestWithParam<Params> {};

TEST_P(RandomScheduleTest, SatisfiesExtendedVirtualSynchrony) {
  const Params& p = GetParam();
  Cluster::Options opts;
  opts.num_processes = p.processes;
  opts.seed = p.seed;
  opts.net.loss_probability = p.loss;
  Cluster cluster(opts);
  Rng rng(p.seed * 7919 + 13);

  RandomScheduleOptions schedule;
  schedule.rounds = p.rounds;
  const auto stats = run_random_schedule(cluster, rng, schedule);
  EXPECT_GT(stats.messages_sent, 0);

  EXPECT_EQ(cluster.check_report(), "") << "schedule: partitions=" << stats.partitions
                                        << " heals=" << stats.heals
                                        << " crashes=" << stats.crashes
                                        << " recoveries=" << stats.recoveries;
}

std::vector<Params> make_params() {
  std::vector<Params> out;
  // Lossless, various sizes and seeds: exercises partition/merge/crash logic.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    out.push_back({seed, 3 + seed % 4, 0.0, 10});
  }
  // With message loss: exercises retransmission and recovery restarts.
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    out.push_back({seed, 4, 0.01, 8});
  }
  for (std::uint64_t seed = 21; seed <= 22; ++seed) {
    out.push_back({seed, 3, 0.05, 6});
  }
  // Larger systems, fewer rounds.
  out.push_back({31, 8, 0.0, 6});
  out.push_back({32, 10, 0.0, 5});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Schedules, RandomScheduleTest,
                         ::testing::ValuesIn(make_params()), param_name);

// Partition-only sweep: no crashes, heavier partitioning, checks that every
// component keeps making progress (the availability claim of Section 1).
class PartitionChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionChurnTest, EveryComponentKeepsDelivering) {
  Cluster::Options opts;
  opts.num_processes = 6;
  opts.seed = GetParam();
  Cluster cluster(opts);
  Rng rng(GetParam() * 31 + 7);

  ASSERT_TRUE(cluster.await_stable(3'000'000));
  std::uint64_t delivered_before = 0;
  for (int round = 0; round < 6; ++round) {
    random_partition(cluster, rng);
    send_random_burst(cluster, rng, 18, 0.5);
    cluster.run_for(150'000);
    std::uint64_t delivered_now = 0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      delivered_now += cluster.node(i).stats().delivered;
    }
    EXPECT_GT(delivered_now, delivered_before)
        << "no progress in round " << round;
    delivered_before = delivered_now;
  }
  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(20'000'000));
  EXPECT_EQ(cluster.check_report(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionChurnTest, ::testing::Range<std::uint64_t>(1, 7));

// Crash-churn sweep: repeated crash/recover of random processes under
// traffic; stable storage must keep histories consistent.
class CrashChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashChurnTest, RepeatedCrashRecoveryStaysConformant) {
  Cluster::Options opts;
  opts.num_processes = 4;
  opts.seed = GetParam();
  Cluster cluster(opts);
  Rng rng(GetParam() * 101 + 3);

  ASSERT_TRUE(cluster.await_stable(3'000'000));
  for (int round = 0; round < 8; ++round) {
    send_random_burst(cluster, rng, 10, 0.5);
    const ProcessId victim = cluster.pid(rng.below(cluster.size()));
    cluster.run_for(rng.between(500, 20'000));
    if (cluster.node(victim).running()) {
      cluster.crash(victim);
      cluster.run_for(rng.between(5'000, 60'000));
      cluster.recover(victim);
    }
    cluster.run_for(50'000);
  }
  ASSERT_TRUE(cluster.await_quiesce(20'000'000));
  EXPECT_EQ(cluster.check_report(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashChurnTest, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace evs
