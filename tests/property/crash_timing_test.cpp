// Crash-timing sweeps: crash a process at a controlled offset after a
// disruptive event so the failure lands in every phase of the protocol —
// regular operation, gather, exchange, rebroadcast, or just after install.
// The paper's hardest machinery (restart at step 2, obligation sets,
// Spec 7.1's proof) only engages on these interleavings.
#include <gtest/gtest.h>

#include "testkit/cluster.hpp"
#include "testkit/workload.hpp"

namespace evs {
namespace {

class CrashAfterPartitionTest : public ::testing::TestWithParam<SimTime> {};

TEST_P(CrashAfterPartitionTest, CrashDuringReconfigurationStaysConformant) {
  const SimTime crash_delay = GetParam();
  Cluster::Options opts;
  opts.num_processes = 5;
  opts.seed = 1000 + crash_delay;
  Cluster cluster(opts);
  Rng rng(crash_delay * 31 + 1);
  ASSERT_TRUE(cluster.await_stable(3'000'000));

  // Outstanding traffic, then a partition, then a crash `crash_delay` into
  // the resulting recovery.
  send_random_burst(cluster, rng, 30, 0.5);
  cluster.run_for(700);
  cluster.partition({{0, 1, 2}, {3, 4}});
  cluster.run_for(crash_delay);
  cluster.crash(cluster.pid(1));  // a member of the larger side
  cluster.run_for(60'000);
  cluster.recover(cluster.pid(1));
  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(30'000'000)) << "delay " << crash_delay;
  EXPECT_EQ(cluster.check_report(), "") << "crash delay " << crash_delay << "us";
}

// 0..2ms: inside gather/join. ~5-15ms: token-loss detection and exchange.
// ~20-40ms: rebroadcast/completion and just-installed windows.
INSTANTIATE_TEST_SUITE_P(Offsets, CrashAfterPartitionTest,
                         ::testing::Values(0, 200, 500, 1'000, 2'000, 5'000, 9'000,
                                           12'500, 13'000, 14'000, 16'000, 20'000,
                                           25'000, 30'000, 40'000));

class DoublePartitionTest : public ::testing::TestWithParam<SimTime> {};

TEST_P(DoublePartitionTest, RepartitionDuringRecoveryRestartsCleanly) {
  // A second partition lands while the first recovery is still running:
  // the paper's "if a failure occurs during execution of the recovery
  // algorithm ... the recovery algorithm is restarted at Step 2".
  const SimTime second_delay = GetParam();
  Cluster::Options opts;
  opts.num_processes = 6;
  opts.seed = 77 + second_delay;
  Cluster cluster(opts);
  Rng rng(second_delay * 13 + 3);
  ASSERT_TRUE(cluster.await_stable(3'000'000));

  send_random_burst(cluster, rng, 40, 0.5);
  cluster.run_for(600);
  cluster.partition({{0, 1, 2, 3}, {4, 5}});
  cluster.run_for(second_delay);
  cluster.partition({{0, 1}, {2, 3}, {4, 5}});  // cuts the first recovery apart
  cluster.run_for(100'000);
  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(30'000'000)) << "delay " << second_delay;
  EXPECT_EQ(cluster.check_report(), "") << "second partition at +" << second_delay
                                        << "us";
}

INSTANTIATE_TEST_SUITE_P(Offsets, DoublePartitionTest,
                         ::testing::Values(500, 2'000, 8'000, 12'500, 13'500, 15'000,
                                           18'000, 24'000, 35'000));

class CrashedRepCrashTest : public ::testing::TestWithParam<SimTime> {};

TEST_P(CrashedRepCrashTest, RepresentativeCrashMidRecovery) {
  // The representative (lowest id) drives ring formation; killing it at
  // various recovery offsets exercises the consensus-wait timeout and
  // proposal re-forming paths.
  const SimTime crash_delay = GetParam();
  Cluster::Options opts;
  opts.num_processes = 4;
  opts.seed = 9 + crash_delay;
  Cluster cluster(opts);
  Rng rng(crash_delay + 1);
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  send_random_burst(cluster, rng, 20, 0.5);
  cluster.run_for(500);
  cluster.partition({{0, 1, 2}, {3}});
  cluster.run_for(crash_delay);
  cluster.crash(cluster.pid(0));  // the representative of {0,1,2}
  cluster.run_for(80'000);
  cluster.recover(cluster.pid(0));
  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(30'000'000));
  EXPECT_EQ(cluster.check_report(), "") << "rep crash at +" << crash_delay << "us";
}

INSTANTIATE_TEST_SUITE_P(Offsets, CrashedRepCrashTest,
                         ::testing::Values(1'000, 12'000, 13'000, 14'500, 17'000,
                                           22'000, 30'000));

TEST(ObligationTest, CompletedAckerCrashAndRecoverDeliversObligatedMessages) {
  // The Spec 7.1 proof scenario: during recovery a process acknowledges
  // having received all rebroadcast messages (persisting them and the
  // merged obligation set first), then crashes before installing. Peers may
  // have relied on that acknowledgment to deliver messages as safe in the
  // transitional configuration. The recovered process must deliver them
  // too — from stable storage, via its obligation set.
  //
  // We sweep the crash offset across the recovery window; the spec checker
  // flags any execution in which the obligation machinery fails.
  for (SimTime crash_at : {SimTime{13'000}, SimTime{13'500}, SimTime{14'000},
                           SimTime{14'500}, SimTime{15'000}, SimTime{15'500},
                           SimTime{16'000}}) {
    Cluster::Options opts;
    opts.num_processes = 3;
    opts.seed = 4242 + crash_at;
    Cluster cluster(opts);
    ASSERT_TRUE(cluster.await_stable(3'000'000));
    // Safe traffic that will be mid-flight at the partition.
    for (int i = 0; i < 10; ++i) {
      cluster.node(static_cast<std::size_t>(i % 3)).send(Service::Safe, {1});
    }
    cluster.run_for(400);
    cluster.partition({{0, 1}, {2}});  // {0,1} must recover together
    cluster.run_for(crash_at);
    cluster.crash(cluster.pid(0));
    cluster.run_for(50'000);
    cluster.recover(cluster.pid(0));
    cluster.heal();
    ASSERT_TRUE(cluster.await_quiesce(30'000'000)) << crash_at;
    EXPECT_EQ(cluster.check_report(), "") << "crash at +" << crash_at << "us";
  }
}

TEST(LossyNetworkTest, HeavyLossLongRunStaysConformant) {
  Cluster::Options opts;
  opts.num_processes = 4;
  opts.seed = 31337;
  opts.net.loss_probability = 0.08;
  Cluster cluster(opts);
  Rng rng(99);
  for (int round = 0; round < 5; ++round) {
    send_random_burst(cluster, rng, 25, 0.5);
    cluster.run_for(150'000);
  }
  ASSERT_TRUE(cluster.await_quiesce(60'000'000));
  EXPECT_EQ(cluster.check_report(), "");
  // Retransmission actually happened (losses were real).
  EXPECT_GT(cluster.network().stats().dropped_loss, 100u);
}

TEST(LossyNetworkTest, LossDuringPartitionAndMerge) {
  Cluster::Options opts;
  opts.num_processes = 5;
  opts.seed = 555;
  opts.net.loss_probability = 0.03;
  Cluster cluster(opts);
  Rng rng(555);
  ASSERT_TRUE(cluster.await_stable(6'000'000));
  send_random_burst(cluster, rng, 40, 0.6);
  cluster.run_for(800);
  cluster.partition({{0, 1, 2}, {3, 4}});
  cluster.run_for(200'000);
  send_random_burst(cluster, rng, 40, 0.6);
  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(60'000'000));
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
