// Adversarial fault storms against the full protocol stack.
//
// The paper promises extended virtual synchrony under any network behaviour
// (Sections 1-2): partitions, remerges, loss, and — on a real LAN —
// duplication, reordering, corruption and asymmetric failures. These tests
// script exactly that through the deterministic FaultInjector and require
// the stack to (a) stay live (the testkit watchdog fails fast otherwise)
// and (b) stay conformant to Specifications 1-7 under the machine checker.
#include <gtest/gtest.h>

#include "testkit/cluster.hpp"
#include "testkit/metrics.hpp"
#include "testkit/workload.hpp"

namespace evs {
namespace {

Cluster::Options storm_options(std::size_t procs, std::uint64_t seed,
                               FaultPlan plan) {
  Cluster::Options opts;
  opts.num_processes = procs;
  opts.seed = seed;
  opts.faults = std::move(plan);
  opts.watchdog_window_us = 500'000;
  return opts;
}

// Partition/heal scripts with traffic under a sustained storm of
// duplication, reordering and corruption, across several seeds. After the
// storm window closes the cluster must quiesce and pass the full checker.
TEST(FaultInjectionTest, SeededStormsOverPartitionScriptsStayConformant) {
  for (std::uint64_t seed : {11ull, 23ull, 47ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const SimTime storm_until = 900'000;
    Cluster cluster(storm_options(
        5, seed, FaultPlan::storm(0.05, 0.05, 0.02, 0, storm_until)));
    Rng rng(seed * 1000 + 1);

    ASSERT_TRUE(cluster.await_stable(2'000'000)) << cluster.liveness_report();
    for (int round = 0; round < 4; ++round) {
      if (rng.chance(0.5)) {
        random_partition(cluster, rng);
      } else {
        cluster.heal();
      }
      send_random_burst(cluster, rng, 10);
      cluster.run_for(150'000);
    }
    cluster.heal();
    ASSERT_TRUE(cluster.await_quiesce(20'000'000)) << cluster.liveness_report();
    EXPECT_FALSE(cluster.watchdog_tripped());
    EXPECT_EQ(cluster.check_report(), "");

    // The storm actually happened, and the hardened layers caught it.
    const FaultCounters counters = collect_fault_counters(cluster);
    EXPECT_GT(counters.injected.injected_total, 0u);
    EXPECT_GT(counters.injected.corrupted, 0u);
    EXPECT_GT(counters.rejected_frames, 0u) << to_string(counters);
  }
}

// One-directional link failure: A->B traffic vanishes while B->A flows.
// The membership layer must resolve the asymmetry (both sides end up in a
// consistent configuration) and re-merge once the cut heals.
TEST(FaultInjectionTest, AsymmetricCutResolvesAndHeals) {
  const SimTime cut_from = 200'000;
  const SimTime cut_until = 700'000;
  Cluster::Options opts = storm_options(3, 5, FaultPlan{});
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.await_stable(2'000'000)) << cluster.liveness_report();

  cluster.run_for(cut_from);
  cluster.inject_faults(
      FaultPlan::asymmetric_cut(cluster.pid(0), cluster.pid(1), cut_from, cut_until));
  Rng rng(99);
  send_random_burst(cluster, rng, 6);
  cluster.run_for(cut_until - cut_from + 100'000);

  // The cut window is over; everything must converge back to one
  // configuration of all three processes and pass the checker.
  cluster.clear_faults();
  ASSERT_TRUE(cluster.await_quiesce(20'000'000)) << cluster.liveness_report();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.node(i).config().members.size(), 3u);
  }
  EXPECT_EQ(cluster.check_report(), "");
}

// Sustained token loss. Without token retransmission every loss would cost
// a full token-loss timeout and membership gather; with it the ring must
// keep ordering traffic and the retransmit counter must show it worked.
TEST(FaultInjectionTest, TokenLossStormSurvivesViaRetransmission) {
  const SimTime storm_until = 800'000;
  Cluster cluster(storm_options(5, 7, FaultPlan::token_loss(0.25, 0, storm_until)));
  Rng rng(701);

  ASSERT_TRUE(cluster.await_stable(3'000'000)) << cluster.liveness_report();
  for (int round = 0; round < 4; ++round) {
    send_random_burst(cluster, rng, 8);
    cluster.run_for(150'000);
  }
  cluster.clear_faults();
  ASSERT_TRUE(cluster.await_quiesce(20'000'000)) << cluster.liveness_report();
  EXPECT_EQ(cluster.check_report(), "");

  const FaultCounters counters = collect_fault_counters(cluster);
  EXPECT_GT(counters.injected.token_dropped, 0u) << to_string(counters);
  EXPECT_GT(counters.token_retransmits, 0u) << to_string(counters);
}

// Acceptance scenario from the issue: a 7-process cluster runs the paper's
// Figure 6 partition/remerge sequence with duplication=0.05, reorder=0.05
// and corruption=0.02 active throughout, stays conformant to Specs 1-7 and
// reaches a stable configuration.
TEST(FaultInjectionTest, Fig6PartitionRemergeUnderStorm) {
  FaultPlan plan = FaultPlan::storm(0.05, 0.05, 0.02);
  Cluster cluster(storm_options(7, 4242, std::move(plan)));
  Rng rng(4243);

  ASSERT_TRUE(cluster.await_stable(3'000'000)) << cluster.liveness_report();

  // Figure 6 phase 1: {p,q,r} | {s,t,u,v}, with traffic in both components.
  cluster.partition({{0, 1, 2}, {3, 4, 5, 6}});
  ASSERT_TRUE(cluster.await_stable(5'000'000)) << cluster.liveness_report();
  send_random_burst(cluster, rng, 12);
  cluster.run_for(200'000);

  // Figure 6 phase 2: p isolated; q,r remerge with the other side.
  cluster.partition({{0}, {1, 2, 3, 4, 5, 6}});
  ASSERT_TRUE(cluster.await_stable(5'000'000)) << cluster.liveness_report();
  send_random_burst(cluster, rng, 12);
  cluster.run_for(200'000);

  // Full heal, still under the storm: one configuration of all seven.
  cluster.heal();
  ASSERT_TRUE(cluster.await_stable(8'000'000)) << cluster.liveness_report();
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(cluster.node(i).config().members.size(), 7u);
  }

  // Quiesce without the storm so the full (quiescent) checker applies.
  cluster.clear_faults();
  ASSERT_TRUE(cluster.await_quiesce(20'000'000)) << cluster.liveness_report();
  EXPECT_FALSE(cluster.watchdog_tripped());
  EXPECT_EQ(cluster.check_report(), "");

  const FaultCounters counters = collect_fault_counters(cluster);
  EXPECT_GT(counters.injected.duplicated, 0u);
  EXPECT_GT(counters.injected.corrupted, 0u);
  EXPECT_GT(counters.injected.reordered, 0u);
  EXPECT_GT(counters.rejected_frames, 0u) << to_string(counters);
}

// The full random schedule generator (partitions, crashes, recoveries,
// traffic) under a storm window: the strongest end-to-end property we have.
TEST(FaultInjectionTest, RandomScheduleUnderStormRestabilizes) {
  Cluster cluster(storm_options(4, 31, FaultPlan::storm(0.03, 0.03, 0.01, 0, 500'000)));
  Rng rng(32);
  RandomScheduleOptions schedule;
  schedule.rounds = 5;
  const RandomScheduleStats stats = run_random_schedule(cluster, rng, schedule);
  EXPECT_GT(stats.messages_sent, 0);
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
