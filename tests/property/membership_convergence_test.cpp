// Membership convergence at the GatherState level: N gather instances
// exchanging joins through a randomly delaying, randomly dropping message
// soup must reach consensus on a common membership within bounded virtual
// time — the paper's termination property for the underlying membership
// algorithm, tested on the pure logic in isolation.
//
// Parameterized over ring size (3 to 100 members — the same scale span the
// node-level storms cover) crossed with churn seeds: every scenario's drops,
// delays and partition shapes derive from the seed, so a failure names the
// exact (n, seed) pair to replay.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <numeric>
#include <tuple>

#include "member/membership.hpp"
#include "util/rng.hpp"

namespace evs {
namespace {

struct Soup {
  struct InFlight {
    SimTime deliver_at;
    std::size_t to;
    JoinMsg join;
  };

  std::vector<std::unique_ptr<GatherState>> gathers;
  std::deque<InFlight> wire;
  Rng rng;
  SimTime now{0};
  // connectivity[i][j]: can i's joins reach j?
  std::vector<std::vector<bool>> reachable;

  Soup(std::size_t n, std::uint64_t seed) : rng(seed) {
    GatherState::Options opts;
    opts.fail_timeout_us = 10'000;
    // Exercise the size-derived slope: larger gathers wait longer per
    // candidate before declaring members failed (see DESIGN.md).
    opts.fail_per_candidate_us = 100;
    std::vector<ProcessId> all;
    for (std::size_t i = 1; i <= n; ++i) all.push_back(ProcessId{static_cast<std::uint32_t>(i)});
    for (std::size_t i = 0; i < n; ++i) {
      gathers.push_back(std::make_unique<GatherState>(
          ProcessId{static_cast<std::uint32_t>(i + 1)}, 1, all, now, opts));
    }
    reachable.assign(n, std::vector<bool>(n, true));
  }

  std::size_t size() const { return gathers.size(); }

  void set_partition(const std::vector<std::vector<std::size_t>>& groups) {
    const std::size_t n = gathers.size();
    reachable.assign(n, std::vector<bool>(n, false));
    for (const auto& g : groups) {
      for (std::size_t a : g) {
        for (std::size_t b : g) reachable[a][b] = true;
      }
    }
  }

  /// Seeded random split of [0, n) into two non-empty components,
  /// churn-style: the same shuffle the storm generators use.
  std::vector<std::vector<std::size_t>> random_split() {
    const std::size_t n = gathers.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.below(i)]);
    const std::size_t cut = 1 + rng.below(n - 1);
    std::vector<std::vector<std::size_t>> groups(2);
    for (std::size_t i = 0; i < n; ++i) groups[i < cut ? 0 : 1].push_back(order[i]);
    return groups;
  }

  void broadcast_joins(double drop) {
    for (std::size_t i = 0; i < gathers.size(); ++i) {
      const JoinMsg join = gathers[i]->make_join(0);
      for (std::size_t j = 0; j < gathers.size(); ++j) {
        if (i == j || !reachable[i][j]) continue;
        if (rng.chance(drop)) continue;
        wire.push_back({now + rng.between(50, 400), j, join});
      }
    }
  }

  void advance(SimTime dt) {
    const SimTime until = now + dt;
    while (now < until) {
      now += 100;
      // Single sweep per tick: at N=100 a round keeps ~10k joins in flight,
      // and erase-from-the-middle would make each tick quadratic.
      std::deque<InFlight> pending;
      for (auto& f : wire) {
        if (f.deliver_at <= now) {
          gathers[f.to]->on_join(f.join, now);
        } else {
          pending.push_back(std::move(f));
        }
      }
      wire.swap(pending);
      for (auto& g : gathers) g->check_timeouts(now);
    }
  }

  bool component_consensus(const std::vector<std::size_t>& group) {
    const std::vector<ProcessId> want = gathers[group[0]]->proposed_membership();
    for (std::size_t i : group) {
      if (!gathers[i]->consensus()) return false;
      if (gathers[i]->proposed_membership() != want) return false;
    }
    // Membership must be exactly the group (by pid).
    std::vector<ProcessId> expect;
    for (std::size_t i : group) expect.push_back(ProcessId{static_cast<std::uint32_t>(i + 1)});
    std::sort(expect.begin(), expect.end());
    return want == expect;
  }
};

std::vector<std::size_t> everyone(std::size_t n) {
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  return all;
}

// Param: (ring size, churn seed).
class MembershipConvergenceTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  std::size_t n() const { return std::get<0>(GetParam()); }
  std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(MembershipConvergenceTest, FullyConnectedConverges) {
  Soup soup(n(), seed());
  const std::vector<std::size_t> all = everyone(n());
  for (int round = 0; round < 60; ++round) {
    soup.broadcast_joins(/*drop=*/0.1);
    soup.advance(1'000);
    if (soup.component_consensus(all)) break;
  }
  EXPECT_TRUE(soup.component_consensus(all)) << "no consensus within 60 rounds";
}

TEST_P(MembershipConvergenceTest, PartitionedComponentsConvergeSeparately) {
  Soup soup(n(), seed() + 100);
  const std::vector<std::vector<std::size_t>> groups = soup.random_split();
  soup.set_partition(groups);
  for (int round = 0; round < 80; ++round) {
    soup.broadcast_joins(0.1);
    soup.advance(1'000);
    if (soup.component_consensus(groups[0]) && soup.component_consensus(groups[1])) {
      break;
    }
  }
  EXPECT_TRUE(soup.component_consensus(groups[0]));
  EXPECT_TRUE(soup.component_consensus(groups[1]));
}

// Churn: converge, then the partition deepens mid-episode — a link re-cuts
// one component while the gathers keep running. Within a single gather
// episode membership shrinks monotonically (fail sets never un-fail; a true
// re-*merge* starts a fresh episode after a ring installs, which the
// node-level churn storms cover), so the legal in-episode churn is a
// refinement of the split: each finer component must still reach consensus
// on exactly itself.
TEST_P(MembershipConvergenceTest, DeepeningPartitionReconverges) {
  if (n() < 4) GTEST_SKIP() << "needs two non-trivial components";
  Soup soup(n(), seed() + 300);
  const std::vector<std::vector<std::size_t>> first = soup.random_split();
  soup.set_partition(first);
  for (int round = 0; round < 80; ++round) {
    soup.broadcast_joins(0.1);
    soup.advance(1'000);
    if (soup.component_consensus(first[0]) && soup.component_consensus(first[1])) break;
  }
  ASSERT_TRUE(soup.component_consensus(first[0]) && soup.component_consensus(first[1]));

  // Refine: cut the larger component in two; the other survives unchanged.
  const std::size_t big = first[0].size() >= first[1].size() ? 0 : 1;
  std::vector<std::size_t> shuffled = first[big];
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[soup.rng.below(i)]);
  }
  const std::size_t cut = 1 + soup.rng.below(shuffled.size() - 1);
  std::vector<std::vector<std::size_t>> second{
      {shuffled.begin(), shuffled.begin() + static_cast<std::ptrdiff_t>(cut)},
      {shuffled.begin() + static_cast<std::ptrdiff_t>(cut), shuffled.end()},
      first[1 - big]};
  soup.set_partition(second);
  for (int round = 0; round < 120; ++round) {
    soup.broadcast_joins(0.1);
    soup.advance(1'000);
    if (soup.component_consensus(second[0]) && soup.component_consensus(second[1]) &&
        soup.component_consensus(second[2])) {
      break;
    }
  }
  EXPECT_TRUE(soup.component_consensus(second[0]));
  EXPECT_TRUE(soup.component_consensus(second[1]));
  EXPECT_TRUE(soup.component_consensus(second[2]));
}

TEST_P(MembershipConvergenceTest, SilentMembersGetExcludedWithinBound) {
  Soup soup(n(), seed() + 200);
  // The last two members never send joins (crashed before the gather).
  const std::size_t alive = n() - 2;
  if (alive < 1) GTEST_SKIP() << "ring too small for two silent members";
  for (int round = 0; round < 80; ++round) {
    for (std::size_t i = 0; i < alive; ++i) {
      const JoinMsg join = soup.gathers[i]->make_join(0);
      for (std::size_t j = 0; j < alive; ++j) {
        if (i != j && !soup.rng.chance(0.1)) {
          soup.wire.push_back({soup.now + soup.rng.between(50, 400), j, join});
        }
      }
    }
    soup.advance(1'000);
    if (soup.component_consensus(everyone(alive))) break;
  }
  EXPECT_TRUE(soup.component_consensus(everyone(alive)));
  // The silent members ended up in everyone's fail set.
  const std::vector<ProcessId> expect_failed{
      ProcessId{static_cast<std::uint32_t>(alive + 1)},
      ProcessId{static_cast<std::uint32_t>(alive + 2)}};
  for (std::size_t i = 0; i < alive; ++i) {
    EXPECT_EQ(soup.gathers[i]->fail_set(), expect_failed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, MembershipConvergenceTest,
    ::testing::Combine(::testing::Values<std::size_t>(3, 10, 50, 100),
                       ::testing::Range<std::uint64_t>(1, 5)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, std::uint64_t>>& info) {
      return "N" + std::to_string(std::get<0>(info.param)) + "Seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace evs
