// Membership convergence at the GatherState level: N gather instances
// exchanging joins through a randomly delaying, randomly dropping message
// soup must reach consensus on a common membership within bounded virtual
// time — the paper's termination property for the underlying membership
// algorithm, tested on the pure logic in isolation.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "member/membership.hpp"
#include "util/rng.hpp"

namespace evs {
namespace {

struct Soup {
  struct InFlight {
    SimTime deliver_at;
    std::size_t to;
    JoinMsg join;
  };

  std::vector<std::unique_ptr<GatherState>> gathers;
  std::deque<InFlight> wire;
  Rng rng;
  SimTime now{0};
  // connectivity[i][j]: can i's joins reach j?
  std::vector<std::vector<bool>> reachable;

  Soup(std::size_t n, std::uint64_t seed) : rng(seed) {
    GatherState::Options opts;
    opts.fail_timeout_us = 10'000;
    std::vector<ProcessId> all;
    for (std::size_t i = 1; i <= n; ++i) all.push_back(ProcessId{static_cast<std::uint32_t>(i)});
    for (std::size_t i = 0; i < n; ++i) {
      gathers.push_back(std::make_unique<GatherState>(
          ProcessId{static_cast<std::uint32_t>(i + 1)}, 1, all, now, opts));
    }
    reachable.assign(n, std::vector<bool>(n, true));
  }

  void set_partition(const std::vector<std::vector<std::size_t>>& groups) {
    const std::size_t n = gathers.size();
    reachable.assign(n, std::vector<bool>(n, false));
    for (const auto& g : groups) {
      for (std::size_t a : g) {
        for (std::size_t b : g) reachable[a][b] = true;
      }
    }
  }

  void broadcast_joins(double drop) {
    for (std::size_t i = 0; i < gathers.size(); ++i) {
      const JoinMsg join = gathers[i]->make_join(0);
      for (std::size_t j = 0; j < gathers.size(); ++j) {
        if (i == j || !reachable[i][j]) continue;
        if (rng.chance(drop)) continue;
        wire.push_back({now + rng.between(50, 400), j, join});
      }
    }
  }

  void advance(SimTime dt) {
    const SimTime until = now + dt;
    while (now < until) {
      now += 100;
      for (auto it = wire.begin(); it != wire.end();) {
        if (it->deliver_at <= now) {
          gathers[it->to]->on_join(it->join, now);
          it = wire.erase(it);
        } else {
          ++it;
        }
      }
      for (auto& g : gathers) g->check_timeouts(now);
    }
  }

  bool component_consensus(const std::vector<std::size_t>& group) {
    const auto want = gathers[group[0]]->proposed_membership();
    for (std::size_t i : group) {
      if (!gathers[i]->consensus()) return false;
      if (gathers[i]->proposed_membership() != want) return false;
    }
    // Membership must be exactly the group (by pid).
    std::vector<ProcessId> expect;
    for (std::size_t i : group) expect.push_back(ProcessId{static_cast<std::uint32_t>(i + 1)});
    std::sort(expect.begin(), expect.end());
    return want == expect;
  }
};

class MembershipConvergenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MembershipConvergenceTest, FullyConnectedConverges) {
  Soup soup(5, GetParam());
  for (int round = 0; round < 60; ++round) {
    soup.broadcast_joins(/*drop=*/0.1);
    soup.advance(1'000);
    if (soup.component_consensus({0, 1, 2, 3, 4})) break;
  }
  EXPECT_TRUE(soup.component_consensus({0, 1, 2, 3, 4}))
      << "no consensus within 60 rounds";
}

TEST_P(MembershipConvergenceTest, PartitionedComponentsConvergeSeparately) {
  Soup soup(6, GetParam() + 100);
  soup.set_partition({{0, 1, 2}, {3, 4, 5}});
  for (int round = 0; round < 80; ++round) {
    soup.broadcast_joins(0.1);
    soup.advance(1'000);
    if (soup.component_consensus({0, 1, 2}) && soup.component_consensus({3, 4, 5})) {
      break;
    }
  }
  EXPECT_TRUE(soup.component_consensus({0, 1, 2}));
  EXPECT_TRUE(soup.component_consensus({3, 4, 5}));
}

TEST_P(MembershipConvergenceTest, SilentMembersGetExcludedWithinBound) {
  Soup soup(5, GetParam() + 200);
  // Members 3 and 4 never send joins (crashed before the gather).
  for (int round = 0; round < 80; ++round) {
    for (std::size_t i = 0; i < 3; ++i) {
      const JoinMsg join = soup.gathers[i]->make_join(0);
      for (std::size_t j = 0; j < 3; ++j) {
        if (i != j && !soup.rng.chance(0.1)) {
          soup.wire.push_back({soup.now + soup.rng.between(50, 400), j, join});
        }
      }
    }
    soup.advance(1'000);
    if (soup.component_consensus({0, 1, 2})) break;
  }
  EXPECT_TRUE(soup.component_consensus({0, 1, 2}));
  // The silent members ended up in everyone's fail set.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(soup.gathers[i]->fail_set(),
              (std::vector<ProcessId>{ProcessId{4}, ProcessId{5}}));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MembershipConvergenceTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace evs
