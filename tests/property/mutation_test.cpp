// Mutation tests: deliberately corrupt a protocol step and require the
// specification checker to notice. This closes the loop on the whole
// verification pipeline — if these fail, the property tests' clean reports
// mean nothing.
//
// Each mutation disables one mechanism the paper's algorithm depends on:
//   skip_safe_horizon   — safe delivery without acknowledgments (step 1)
//   deliver_past_holes  — no causal-suspicion discard (step 6.a)
//   ignore_obligations  — no obligation sets (step 5.c)
#include <gtest/gtest.h>

#include "testkit/cluster.hpp"
#include "testkit/workload.hpp"

namespace evs {
namespace {

bool any_violation_across_seeds(EvsNode::FaultInjection faults, int max_seeds) {
  for (int seed = 1; seed <= max_seeds; ++seed) {
    Cluster::Options opts;
    opts.num_processes = 4;
    opts.seed = static_cast<std::uint64_t>(seed);
    opts.node.faults = faults;
    // One frame per datagram: each broadcast is cut or reordered
    // independently, which is what manufactures the holes and divergent
    // receive sets these mutations need to bite. Packed datagrams make a
    // token visit's frames atomic and would mask the corruption.
    opts.node.batch_max_frames = 1;
    Cluster cluster(opts);
    Rng rng(static_cast<std::uint64_t>(seed) * 7 + 3);
    if (!cluster.await_stable(3'000'000)) continue;
    // Traffic cut by a partition mid-flight: the scenario every mutated
    // mechanism exists for.
    send_random_burst(cluster, rng, 40, 0.6);
    cluster.run_for(400);
    cluster.partition({{0, 1}, {2, 3}});
    send_random_burst(cluster, rng, 20, 0.6);
    cluster.run_for(100'000);
    cluster.heal();
    if (!cluster.await_quiesce(30'000'000)) return true;  // stuck counts as caught
    if (!cluster.check(true).empty()) return true;
  }
  return false;
}

TEST(MutationTest, BaselineIsClean) {
  // Sanity: the identical schedule with no faults is conformant, so any
  // violation below is attributable to the injected corruption.
  EXPECT_FALSE(any_violation_across_seeds({}, 3))
      << "the unmutated protocol violated the specification";
}

TEST(MutationTest, SkippingSafeHorizonIsCaught) {
  EvsNode::FaultInjection faults;
  faults.skip_safe_horizon = true;
  EXPECT_TRUE(any_violation_across_seeds(faults, 10))
      << "delivering safe messages without acknowledgments went unnoticed";
}

TEST(MutationTest, DeliveringPastHolesIsCaught) {
  EvsNode::FaultInjection faults;
  faults.deliver_past_holes = true;
  EXPECT_TRUE(any_violation_across_seeds(faults, 10))
      << "omitting the step 6.a causal discard went unnoticed";
}

TEST(MutationTest, IgnoringObligationsIsCaught) {
  EvsNode::FaultInjection faults;
  faults.ignore_obligations = true;
  EXPECT_TRUE(any_violation_across_seeds(faults, 10))
      << "omitting the step 5.c obligation sets went unnoticed";
}

}  // namespace
}  // namespace evs
