// Randomized fuzz of the ordering core in isolation: a MiniRing with
// seeded random first-transmission drops. Invariants checked each step:
//   * the safety horizon never passes a sequence number some member lacks,
//   * deliveries are gapless prefixes of the total order,
//   * all members converge once drops stop.
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "totem/ordering.hpp"
#include "util/rng.hpp"

namespace evs {
namespace {

const RingId kRing{1, ProcessId{1}};

struct FuzzRing {
  std::vector<OrderingCore> cores;
  std::vector<std::deque<PendingSend>> pending;
  std::vector<SeqNum> delivered_upto;
  TokenMsg token;
  std::size_t holder{0};
  Rng rng;

  FuzzRing(std::size_t n, std::uint64_t seed) : rng(seed) {
    std::vector<ProcessId> members;
    for (std::size_t i = 1; i <= n; ++i) {
      members.push_back(ProcessId{static_cast<std::uint32_t>(i)});
    }
    for (std::size_t i = 0; i < n; ++i) cores.emplace_back(kRing, members, members[i]);
    pending.resize(n);
    delivered_upto.resize(n, 0);
    token.ring = kRing;
    token.rotation = 1;
  }

  void step(double drop_probability) {
    auto result = cores[holder].on_token(token, pending[holder]);
    for (const RegularMsgView& m : result.to_broadcast) {
      for (std::size_t r = 0; r < cores.size(); ++r) {
        if (r == holder) continue;
        if (rng.chance(drop_probability)) continue;
        cores[r].on_regular(m);
      }
    }
    token = result.token_out;
    holder = (holder + 1) % cores.size();
  }

  void drain_and_check() {
    for (std::size_t i = 0; i < cores.size(); ++i) {
      for (const RegularMsgView& m : cores[i].drain_deliverable()) {
        // Gapless, strictly increasing delivery per process.
        ASSERT_EQ(m.seq, delivered_upto[i] + 1)
            << "gap in delivery at core " << i;
        delivered_upto[i] = m.seq;
      }
    }
  }

  void check_safety_invariant() {
    // No core's safety horizon may exceed any member's received prefix at
    // the time it was computed. Receipt only grows, so checking against
    // current contigs is sound.
    SeqNum min_contig = UINT64_MAX;
    for (const auto& c : cores) min_contig = std::min(min_contig, c.contig());
    for (const auto& c : cores) {
      ASSERT_LE(c.safe_upto(), min_contig)
          << "safety horizon passed an unacknowledged message";
    }
  }
};

class OrderingFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingFuzzTest, InvariantsHoldUnderRandomLoss) {
  const std::uint64_t seed = GetParam();
  Rng control(seed * 13 + 1);
  FuzzRing ring(3 + seed % 3, seed);
  SeqNum counter = 0;

  for (int step = 0; step < 400; ++step) {
    if (control.chance(0.4)) {
      const std::size_t who = control.below(ring.cores.size());
      ring.pending[who].push_back(
          {MsgId{ring.cores[who].self(), ++counter},
           control.chance(0.5) ? Service::Safe : Service::Agreed,
           {}});
    }
    ring.step(/*drop_probability=*/0.15);
    ring.drain_and_check();
    ring.check_safety_invariant();
  }
  // Lossless tail: everyone converges and delivers everything stamped.
  for (int step = 0; step < 200; ++step) {
    ring.step(0.0);
    ring.drain_and_check();
    ring.check_safety_invariant();
  }
  const SeqNum total = ring.token.seq;
  for (std::size_t i = 0; i < ring.cores.size(); ++i) {
    EXPECT_EQ(ring.delivered_upto[i], total) << "core " << i << " did not converge";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingFuzzTest, ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace evs
