// Soak suite (ctest -L soak): bounded-memory acceptance for the token ring.
//
// The claim under test is the tentpole invariant: with safety-horizon GC and
// token flow control, every node's resident message store stays O(window)
// no matter how long traffic runs and no matter what churn (partitions,
// crashes, fault storms) does to the ring — memory is bounded by protocol
// state, not by uptime or message volume.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "testkit/cluster.hpp"
#include "testkit/workload.hpp"

namespace evs {
namespace {

// Generous but principled bound: seq - aru is kept <= window by the send
// budget, aru trails at most a rotation of progress behind seq, and the
// safety horizon trails aru by one more rotation — so the resident store
// (everything above min(safe, delivered)) is a few windows at worst. The
// constant gives slack for transitional configurations; what matters is
// that it does NOT scale with messages sent.
std::int64_t store_bound(std::uint32_t window) {
  return 4 * static_cast<std::int64_t>(window) + 64;
}

std::int64_t max_running_gauge(Cluster& cluster, const char* name) {
  std::int64_t worst = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (!cluster.node_ptr(i) || !cluster.node(i).running()) continue;
    worst = std::max(worst, cluster.node(i).metrics().gauge(name).value());
  }
  return worst;
}

TEST(SoakTest, SustainedTrafficKeepsStoreAtWindowScale) {
  Cluster::Options opts;
  opts.num_processes = 3;
  opts.seed = 42;
  opts.node.ordering.flow_control_window = 32;
  opts.node.ordering.max_new_per_token = 16;
  opts.node.max_pending_sends = 128;
  opts.watchdog_window_us = 500'000;
  Cluster cluster(opts);
  Rng rng(43);
  ASSERT_TRUE(cluster.await_stable()) << cluster.liveness_report();

  const std::int64_t bound = store_bound(32);
  int sent = 0;
  for (int round = 0; round < 200; ++round) {
    sent += static_cast<int>(send_random_burst(cluster, rng, 20, 0.2, 32).size());
    cluster.run_for(50'000);
    // The peak gauge is monotone and set at insert time, so it sees every
    // intra-round high, not just the state at the sampling instant.
    ASSERT_LE(max_running_gauge(cluster, "ordering.store_msgs_peak"), bound)
        << "round " << round << "\n"
        << cluster.liveness_report();
  }
  ASSERT_TRUE(cluster.await_quiesce(30'000'000)) << cluster.liveness_report();
  EXPECT_EQ(cluster.check_report(), "");
  EXPECT_GT(sent, 2'000);  // the soak actually pushed serious volume
  EXPECT_GT(max_running_gauge(cluster, "ordering.store_msgs_peak"), 0);

  // GC did the bounding: nearly everything delivered was also reclaimed,
  // and after quiescence the resident stores are back to the tail.
  auto agg = cluster.aggregate_metrics();
  EXPECT_GT(agg.counter("ordering.gc_reclaimed").value(),
            static_cast<std::uint64_t>(sent));  // ~sent * nodes, >> sent
  EXPECT_LE(max_running_gauge(cluster, "ordering.store_msgs"), bound);
}

TEST(SoakTest, ChurnAndFaultStormKeepStoreBounded) {
  Cluster::Options opts;
  opts.num_processes = 5;
  opts.seed = 2026;
  opts.node.ordering.flow_control_window = 64;
  opts.node.ordering.max_new_per_token = 16;
  opts.node.max_pending_sends = 64;
  opts.watchdog_window_us = 500'000;
  opts.faults = FaultPlan::storm(0.02, 0.02, 0.01, 0, 4'000'000);
  Cluster cluster(opts);
  Rng rng(9);
  ASSERT_TRUE(cluster.await_stable(3'000'000)) << cluster.liveness_report();

  const std::int64_t bound = store_bound(64);
  std::vector<ProcessId> down;
  for (int round = 0; round < 60; ++round) {
    if (rng.chance(0.15)) {
      random_partition(cluster, rng);
    } else if (rng.chance(0.30)) {
      cluster.heal();
    }
    if (down.empty() && rng.chance(0.10)) {
      const ProcessId victim = cluster.pid(rng.below(cluster.size()));
      if (cluster.node(victim).running()) {
        cluster.crash(victim);
        down.push_back(victim);
      }
    } else if (!down.empty() && rng.chance(0.40)) {
      cluster.recover(down.back());
      down.pop_back();
    }
    send_random_burst(cluster, rng, 30, 0.25, 64);
    cluster.run_for(100'000);
    ASSERT_LE(max_running_gauge(cluster, "ordering.store_msgs_peak"), bound)
        << "round " << round << "\n"
        << cluster.liveness_report();
  }

  cluster.heal();
  cluster.clear_faults();
  for (ProcessId p : down) cluster.recover(p);
  ASSERT_TRUE(cluster.await_quiesce(30'000'000)) << cluster.liveness_report();
  EXPECT_FALSE(cluster.watchdog_tripped());
  EXPECT_EQ(cluster.check_report(), "");
  EXPECT_GT(max_running_gauge(cluster, "ordering.store_msgs_peak"), 0);
  EXPECT_LE(max_running_gauge(cluster, "ordering.store_msgs"), bound);
}

}  // namespace
}  // namespace evs
