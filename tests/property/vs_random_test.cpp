// Randomized property tests for the virtual synchrony filter: random
// partition/merge/crash schedules under both primary-component policies
// must yield legal VS executions (and conformant EVS traces underneath).
#include <gtest/gtest.h>

#include "testkit/vs_cluster.hpp"
#include "util/rng.hpp"

namespace evs {
namespace {

struct VsParams {
  std::uint64_t seed;
  std::size_t processes;
  VsNode::Policy policy;
};

std::string vs_param_name(const ::testing::TestParamInfo<VsParams>& info) {
  const auto& p = info.param;
  return std::string(p.policy == VsNode::Policy::StaticMajority ? "static" : "dlv") +
         "_seed" + std::to_string(p.seed) + "_n" + std::to_string(p.processes);
}

class VsRandomTest : public ::testing::TestWithParam<VsParams> {};

TEST_P(VsRandomTest, FilteredRunsAreLegalVsExecutions) {
  const VsParams& p = GetParam();
  VsCluster::Options opts;
  opts.num_processes = p.processes;
  opts.seed = p.seed;
  opts.policy = p.policy;
  VsCluster cluster(opts);
  Rng rng(p.seed * 37 + 5);

  ASSERT_TRUE(cluster.await_stable(6'000'000));
  std::vector<ProcessId> down;
  for (int round = 0; round < 8; ++round) {
    // Random partitioning.
    if (rng.chance(0.4)) {
      const std::size_t groups = 1 + rng.below(3);
      std::vector<std::vector<std::size_t>> components(groups);
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        components[rng.below(groups)].push_back(i);
      }
      components.erase(std::remove_if(components.begin(), components.end(),
                                      [](const auto& g) { return g.empty(); }),
                       components.end());
      cluster.partition(components);
    } else if (rng.chance(0.5)) {
      cluster.heal();
    }
    // Occasional crash/recover.
    if (down.empty() && rng.chance(0.25)) {
      const ProcessId victim = cluster.pid(rng.below(cluster.size()));
      if (cluster.node(victim).running()) {
        cluster.crash(victim);
        down.push_back(victim);
      }
    } else if (!down.empty() && rng.chance(0.6)) {
      cluster.recover(down.back());
      down.pop_back();
    }
    // Traffic from whoever will accept it.
    for (int m = 0; m < 8; ++m) {
      const std::size_t who = rng.below(cluster.size());
      if (cluster.node(who).running()) {
        (void)cluster.node(who).send({static_cast<std::uint8_t>(m)},
                                     rng.chance(0.5) ? Service::Safe
                                                     : Service::Agreed);
      }
    }
    cluster.run_for(rng.between(30'000, 120'000));
  }
  cluster.heal();
  for (ProcessId p2 : down) cluster.recover(p2);
  ASSERT_TRUE(cluster.await_quiesce(30'000'000));
  EXPECT_EQ(cluster.check_report(), "") << "seed " << p.seed;
}

std::vector<VsParams> vs_params() {
  std::vector<VsParams> out;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    out.push_back({seed, 3 + seed % 3, VsNode::Policy::StaticMajority});
  }
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    out.push_back({seed, 3 + seed % 3, VsNode::Policy::DynamicLinearVoting});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Schedules, VsRandomTest, ::testing::ValuesIn(vs_params()),
                         vs_param_name);

}  // namespace
}  // namespace evs
