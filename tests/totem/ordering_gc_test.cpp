// Safety-horizon garbage collection and token flow control (fcc).
//
// The GC invariant under test: once min(safe_upto, delivered_upto) passes a
// sequence number, every ring member holds it and we delivered it, so its
// body can be freed — retransmission requests and recovery rebroadcasts can
// never legitimately need it again. The fcc tests pin the Totem-style send
// budget: new messages are budgeted against the ring-wide window minus both
// last-rotation broadcasts and the unacknowledged backlog.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "totem/ordering.hpp"

namespace evs {
namespace {

const RingId kRing{1, ProcessId{1}};
const std::vector<ProcessId> kThree{ProcessId{1}, ProcessId{2}, ProcessId{3}};

RegularMsg make_msg(SeqNum seq, ProcessId sender, std::size_t payload_bytes = 0,
                    Service service = Service::Agreed) {
  RegularMsg m;
  m.ring = kRing;
  m.seq = seq;
  m.id = MsgId{sender, seq};
  m.service = service;
  m.payload.assign(payload_bytes, 0xAB);
  return m;
}

TokenMsg fresh_token() {
  TokenMsg t;
  t.ring = kRing;
  t.rotation = 1;
  return t;
}

TEST(OrderingGcTest, SingletonRingReclaimsDeliveredBodies) {
  obs::MetricsRegistry reg;
  OrderingCore core(RingId{1, ProcessId{1}}, {ProcessId{1}}, ProcessId{1},
                    OrderingCore::Options{}, &reg);
  std::deque<PendingSend> pending;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    pending.push_back({MsgId{ProcessId{1}, i}, Service::Agreed,
                       std::vector<std::uint8_t>(100, 0x5A)});
  }
  TokenMsg t;
  t.ring = RingId{1, ProcessId{1}};
  t.rotation = 1;
  core.on_token(t, pending);
  EXPECT_EQ(core.store_bytes(), 300u);
  EXPECT_EQ(reg.gauge("ordering.store_bytes_peak").value(), 300);
  EXPECT_EQ(reg.gauge("ordering.store_msgs_peak").value(), 3);

  // Singleton: safe immediately; delivery completes the GC precondition.
  ASSERT_EQ(core.drain_deliverable().size(), 3u);
  EXPECT_EQ(core.gc_upto(), 3u);
  EXPECT_EQ(core.store_size(), 0u);
  EXPECT_EQ(core.store_bytes(), 0u);
  EXPECT_EQ(core.stats().gc_reclaimed, 3u);
  EXPECT_TRUE(core.all_messages().empty());
  // The interval summary of what we received survives the bodies.
  EXPECT_TRUE(core.received().contains(3));
  EXPECT_EQ(core.contig(), 3u);
  EXPECT_FALSE(core.has(1));
  // Current gauges dropped back to zero; peaks are monotone.
  EXPECT_EQ(reg.gauge("ordering.store_bytes").value(), 0);
  EXPECT_EQ(reg.gauge("ordering.store_bytes_peak").value(), 300);
}

TEST(OrderingGcTest, ThreeMemberRingGcAfterSafeRotation) {
  OrderingCore a(kRing, kThree, ProcessId{1});
  OrderingCore b(kRing, kThree, ProcessId{2});
  OrderingCore c(kRing, kThree, ProcessId{3});
  std::deque<PendingSend> pa;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    pa.push_back({MsgId{ProcessId{1}, i}, Service::Agreed,
                  std::vector<std::uint8_t>(8, 1)});
  }
  std::deque<PendingSend> none;

  TokenMsg t = fresh_token();
  auto ra = a.on_token(t, pa);
  for (auto* core : {&b, &c}) {
    for (const auto& m : ra.new_messages) core->on_regular(m);
  }
  // Two more full rotations: aru reaches 4 everywhere, then the two-visit
  // minimum makes [1,4] safe at every member.
  TokenMsg tok = ra.token_out;
  for (int hop = 0; hop < 6; ++hop) {
    OrderingCore* next = (hop % 3 == 0) ? &b : (hop % 3 == 1) ? &c : &a;
    tok = next->on_token(tok, none).token_out;
  }
  for (auto* core : {&a, &b, &c}) {
    EXPECT_EQ(core->safe_upto(), 4u);
    EXPECT_EQ(core->drain_deliverable().size(), 4u);
    // Delivery + safety ⇒ the horizon passed everything; bodies are gone.
    EXPECT_EQ(core->gc_upto(), 4u);
    EXPECT_EQ(core->store_size(), 0u);
    EXPECT_EQ(core->stats().gc_reclaimed, 4u);
  }
}

TEST(OrderingGcTest, UndeliveredSafeMessageBlocksGc) {
  OrderingCore core(kRing, kThree, ProcessId{2});
  core.on_regular(make_msg(1, ProcessId{1}, 16, Service::Safe));
  std::deque<PendingSend> none;
  TokenMsg t = fresh_token();
  t.seq = 1;
  core.on_token(t, none);
  // aru acknowledged once, not twice: not yet safe, not delivered — the
  // body must stay resident even though we received everything.
  EXPECT_TRUE(core.drain_deliverable().empty());
  EXPECT_EQ(core.gc_upto(), 0u);
  EXPECT_EQ(core.store_size(), 1u);
}

TEST(OrderingGcTest, RtrAtOrBelowHorizonIsScrubbedNotServed) {
  OrderingCore core(RingId{1, ProcessId{1}}, {ProcessId{1}}, ProcessId{1});
  std::deque<PendingSend> pending;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    pending.push_back({MsgId{ProcessId{1}, i}, Service::Agreed, {1, 2}});
  }
  TokenMsg t;
  t.ring = RingId{1, ProcessId{1}};
  t.rotation = 1;
  auto r1 = core.on_token(t, pending);
  core.drain_deliverable();
  ASSERT_EQ(core.gc_upto(), 3u);

  // A (necessarily forged/corrupt) token requesting seqs the whole ring
  // provably holds: nothing is rebroadcast, and the junk entries are
  // scrubbed from the forwarded token instead of circulating forever.
  TokenMsg bad = r1.token_out;
  bad.rtr.insert_range(1, 3);
  std::deque<PendingSend> none;
  auto r2 = core.on_token(bad, none);
  EXPECT_TRUE(r2.to_broadcast.empty());
  EXPECT_TRUE(r2.token_out.rtr.empty());
  EXPECT_EQ(core.stats().retransmits_sent, 0u);
}

TEST(OrderingFccTest, LastRotationBroadcastsShrinkBudget) {
  OrderingCore::Options opts;
  opts.max_new_per_token = 64;
  opts.flow_control_window = 8;
  OrderingCore core(kRing, kThree, ProcessId{1}, opts);
  std::deque<PendingSend> pending;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    pending.push_back({MsgId{ProcessId{1}, i}, Service::Agreed, {}});
  }
  // The ring reports 6 broadcasts last rotation: only window - 6 = 2 fit.
  TokenMsg t = fresh_token();
  t.fcc = 6;
  auto r = core.on_token(t, pending);
  EXPECT_EQ(r.new_messages.size(), 2u);
  // We add our own contribution on top of the unchanged remainder.
  EXPECT_EQ(r.token_out.fcc, 8u);
}

TEST(OrderingFccTest, OwnContributionSubtractedOnNextVisit) {
  OrderingCore::Options opts;
  opts.max_new_per_token = 64;
  opts.flow_control_window = 8;
  OrderingCore core(kRing, kThree, ProcessId{1}, opts);
  std::deque<PendingSend> pending;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    pending.push_back({MsgId{ProcessId{1}, i}, Service::Agreed, {}});
  }
  TokenMsg t = fresh_token();
  auto r1 = core.on_token(t, pending);  // window 8, no backlog: 8 sent
  EXPECT_EQ(r1.new_messages.size(), 8u);
  EXPECT_EQ(r1.token_out.fcc, 8u);

  // Token returns with fcc still 8 (nobody else sent). Subtracting our own
  // 8 leaves fcc_in = 0; we hold all 8 so aru caught up and the backlog
  // term is 0 too — the full window is available again.
  TokenMsg t2 = r1.token_out;
  t2.rotation += 1;
  auto r2 = core.on_token(t2, pending);
  EXPECT_EQ(r2.new_messages.size(), 8u);
  EXPECT_EQ(r2.token_out.fcc, 8u);
}

TEST(OrderingFccTest, UnackedBacklogShrinksBudget) {
  OrderingCore::Options opts;
  opts.max_new_per_token = 64;
  opts.flow_control_window = 8;
  OrderingCore core(kRing, kThree, ProcessId{1}, opts);
  std::deque<PendingSend> pending;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    pending.push_back({MsgId{ProcessId{1}, i}, Service::Agreed, {}});
  }
  // 6 assigned ring-wide, only 1 acknowledged by everyone: 5 in flight,
  // so only window - 5 = 3 new messages may join them.
  TokenMsg t = fresh_token();
  t.seq = 6;
  t.aru = 1;
  auto r = core.on_token(t, pending);
  EXPECT_EQ(r.new_messages.size(), 3u);
}

TEST(OrderingFccTest, ForgedHugeFccIsClampedNotHonored) {
  // A corrupt/hostile fcc used to be taken at face value: the budget pinned
  // to zero and the saturated counter circulated forever (the pass-through
  // even re-saturated to UINT32_MAX). The inbound value is now clamped to
  // the healthy-ring ceiling, so the forgery costs at most the clamp and
  // sending continues; tests/totem/ordering_fcc_test.cpp covers the full
  // pin-to-zero regression.
  OrderingCore core(kRing, kThree, ProcessId{1});
  std::deque<PendingSend> pending;
  pending.push_back({MsgId{ProcessId{1}, 1}, Service::Agreed, {}});
  TokenMsg t = fresh_token();
  t.fcc = UINT32_MAX;  // corrupt/hostile: claims a saturated ring
  auto r = core.on_token(t, pending);
  EXPECT_EQ(r.new_messages.size(), 1u);
  EXPECT_TRUE(pending.empty());
  EXPECT_EQ(core.stats().fcc_clamped, 1u);
  // The outbound token carries a sane count, not the forged saturation.
  EXPECT_LT(r.token_out.fcc, UINT32_MAX);
}

TEST(OrderingStaleTest, SeqRegressionIsStale) {
  OrderingCore core(kRing, kThree, ProcessId{1});
  std::deque<PendingSend> pending;
  pending.push_back({MsgId{ProcessId{1}, 1}, Service::Agreed, {}});
  pending.push_back({MsgId{ProcessId{1}, 2}, Service::Agreed, {}});
  auto r = core.on_token(fresh_token(), pending);
  ASSERT_EQ(core.highest_assigned(), 2u);

  // A "newer" rotation whose seq runs backwards can only be a stale
  // duplicate or forgery: legitimate token seq is monotone.
  TokenMsg regressed = r.token_out;
  regressed.rotation += 1;
  regressed.seq = 1;
  EXPECT_TRUE(core.token_is_stale(regressed));
  TokenMsg fine = r.token_out;
  fine.rotation += 1;
  EXPECT_FALSE(core.token_is_stale(fine));
}

}  // namespace
}  // namespace evs
