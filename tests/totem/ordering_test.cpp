#include "totem/ordering.hpp"

#include <gtest/gtest.h>

namespace evs {
namespace {

const RingId kRing{1, ProcessId{1}};
const std::vector<ProcessId> kThree{ProcessId{1}, ProcessId{2}, ProcessId{3}};

RegularMsg make_msg(SeqNum seq, ProcessId sender, Service service = Service::Agreed) {
  RegularMsg m;
  m.ring = kRing;
  m.seq = seq;
  m.id = MsgId{sender, seq};
  m.service = service;
  return m;
}

TokenMsg fresh_token() {
  TokenMsg t;
  t.ring = kRing;
  t.rotation = 1;
  return t;
}

TEST(OrderingTest, NextInRingWrapsAround) {
  OrderingCore a(kRing, kThree, ProcessId{1});
  OrderingCore b(kRing, kThree, ProcessId{2});
  OrderingCore c(kRing, kThree, ProcessId{3});
  EXPECT_EQ(a.next_in_ring(), ProcessId{2});
  EXPECT_EQ(b.next_in_ring(), ProcessId{3});
  EXPECT_EQ(c.next_in_ring(), ProcessId{1});
}

TEST(OrderingTest, StampsPendingMessagesOnToken) {
  OrderingCore core(kRing, kThree, ProcessId{1});
  std::deque<PendingSend> pending;
  pending.push_back({MsgId{ProcessId{1}, 1}, Service::Agreed, {1}});
  pending.push_back({MsgId{ProcessId{1}, 2}, Service::Agreed, {2}});
  auto result = core.on_token(fresh_token(), pending);
  ASSERT_EQ(result.new_messages.size(), 2u);
  EXPECT_EQ(result.new_messages[0].seq, 1u);
  EXPECT_EQ(result.new_messages[1].seq, 2u);
  EXPECT_EQ(result.token_out.seq, 2u);
  EXPECT_TRUE(pending.empty());
  EXPECT_TRUE(core.has(1));
  EXPECT_TRUE(core.has(2));
}

TEST(OrderingTest, FlowControlCapsNewMessagesPerToken) {
  OrderingCore::Options opts;
  opts.max_new_per_token = 3;
  OrderingCore core(kRing, kThree, ProcessId{1}, opts);
  std::deque<PendingSend> pending;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    pending.push_back({MsgId{ProcessId{1}, i}, Service::Agreed, {}});
  }
  auto result = core.on_token(fresh_token(), pending);
  EXPECT_EQ(result.new_messages.size(), 3u);
  EXPECT_EQ(pending.size(), 7u);
}

TEST(OrderingTest, AgreedDeliveryRequiresContiguity) {
  OrderingCore core(kRing, kThree, ProcessId{2});
  core.on_regular(make_msg(2, ProcessId{1}));
  EXPECT_TRUE(core.drain_deliverable().empty());  // missing seq 1
  core.on_regular(make_msg(1, ProcessId{1}));
  auto out = core.drain_deliverable();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 2u);
  EXPECT_EQ(core.delivered_upto(), 2u);
}

TEST(OrderingTest, DuplicateRegularIgnored) {
  OrderingCore core(kRing, kThree, ProcessId{2});
  EXPECT_TRUE(core.on_regular(make_msg(1, ProcessId{1})));
  EXPECT_FALSE(core.on_regular(make_msg(1, ProcessId{1})));
  EXPECT_EQ(core.drain_deliverable().size(), 1u);
  EXPECT_TRUE(core.drain_deliverable().empty());
}

TEST(OrderingTest, SafeMessageBlocksUntilSafeHorizon) {
  OrderingCore core(kRing, kThree, ProcessId{2});
  core.on_regular(make_msg(1, ProcessId{1}, Service::Safe));
  EXPECT_TRUE(core.drain_deliverable().empty());

  // First token visit: aru rises to 1 (we hold seq 1), but safety needs two
  // visits with aru >= 1.
  std::deque<PendingSend> none;
  TokenMsg t = fresh_token();
  t.seq = 1;
  auto r1 = core.on_token(t, none);
  EXPECT_EQ(r1.token_out.aru, 1u);
  EXPECT_TRUE(core.drain_deliverable().empty());

  TokenMsg t2 = r1.token_out;
  t2.rotation = 2;
  core.on_token(t2, none);
  EXPECT_EQ(core.safe_upto(), 1u);
  auto out = core.drain_deliverable();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].service, Service::Safe);
}

TEST(OrderingTest, SafeBlocksLaterAgreedInTotalOrder) {
  OrderingCore core(kRing, kThree, ProcessId{2});
  core.on_regular(make_msg(1, ProcessId{1}, Service::Safe));
  core.on_regular(make_msg(2, ProcessId{1}, Service::Agreed));
  // Seq 2 (agreed) must not jump ahead of the unsafe seq 1.
  EXPECT_TRUE(core.drain_deliverable().empty());
}

TEST(OrderingTest, AruLoweredWhenBehind) {
  OrderingCore core(kRing, kThree, ProcessId{2});
  // We hold nothing; the incoming token claims aru 5.
  std::deque<PendingSend> none;
  TokenMsg t = fresh_token();
  t.seq = 5;
  t.aru = 5;
  auto r = core.on_token(t, none);
  EXPECT_EQ(r.token_out.aru, 0u);
  EXPECT_EQ(r.token_out.aru_setter, ProcessId{2});
  // And our holes are requested for retransmission.
  EXPECT_EQ(r.token_out.rtr.size(), 5u);
}

TEST(OrderingTest, AruRaisedBySetterAfterCatchUp) {
  OrderingCore core(kRing, kThree, ProcessId{2});
  std::deque<PendingSend> none;
  TokenMsg t = fresh_token();
  t.seq = 2;
  t.aru = 2;
  auto r1 = core.on_token(t, none);  // we lower to 0, become setter
  EXPECT_EQ(r1.token_out.aru, 0u);
  core.on_regular(make_msg(1, ProcessId{1}));
  core.on_regular(make_msg(2, ProcessId{1}));
  TokenMsg t2 = r1.token_out;
  t2.rotation = 2;
  auto r2 = core.on_token(t2, none);
  EXPECT_EQ(r2.token_out.aru, 2u);  // setter raises after catching up
}

TEST(OrderingTest, RetransmissionServedFromStore) {
  OrderingCore core(kRing, kThree, ProcessId{2});
  core.on_regular(make_msg(1, ProcessId{2}));
  std::deque<PendingSend> none;
  TokenMsg t = fresh_token();
  t.seq = 1;
  t.rtr.insert(1);
  auto r = core.on_token(t, none);
  ASSERT_EQ(r.to_broadcast.size(), 1u);
  EXPECT_EQ(r.to_broadcast[0].seq, 1u);
  EXPECT_FALSE(r.token_out.rtr.contains(1));
  EXPECT_TRUE(r.new_messages.empty());
}

TEST(OrderingTest, RetransmissionRequestLeftWhenNotHeld) {
  OrderingCore core(kRing, kThree, ProcessId{2});
  std::deque<PendingSend> none;
  TokenMsg t = fresh_token();
  t.seq = 1;
  t.rtr.insert(1);
  auto r = core.on_token(t, none);
  EXPECT_TRUE(r.to_broadcast.empty());
  EXPECT_TRUE(r.token_out.rtr.contains(1));
}

TEST(OrderingTest, StaleTokenDetected) {
  OrderingCore core(kRing, kThree, ProcessId{1});
  std::deque<PendingSend> none;
  TokenMsg t = fresh_token();
  auto r = core.on_token(t, none);
  EXPECT_TRUE(core.token_is_stale(t));  // same rotation again
  EXPECT_FALSE(core.token_is_stale(r.token_out));
  TokenMsg foreign = fresh_token();
  foreign.ring = RingId{99, ProcessId{9}};
  EXPECT_TRUE(core.token_is_stale(foreign));
}

TEST(OrderingTest, SingletonRingIsImmediatelySafe) {
  OrderingCore core(RingId{1, ProcessId{1}}, {ProcessId{1}}, ProcessId{1});
  std::deque<PendingSend> pending;
  pending.push_back({MsgId{ProcessId{1}, 1}, Service::Safe, {}});
  TokenMsg t;
  t.ring = RingId{1, ProcessId{1}};
  t.rotation = 1;
  core.on_token(t, pending);
  auto out = core.drain_deliverable();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].service, Service::Safe);
}

TEST(OrderingTest, CausalOrderingViaSeqAssignment) {
  // A process that delivered seq 1..2 then sends: its message gets seq 3,
  // after everything it saw.
  OrderingCore core(kRing, kThree, ProcessId{2});
  core.on_regular(make_msg(1, ProcessId{1}));
  core.on_regular(make_msg(2, ProcessId{3}));
  core.drain_deliverable();
  std::deque<PendingSend> pending;
  pending.push_back({MsgId{ProcessId{2}, 1}, Service::Agreed, {}});
  TokenMsg t = fresh_token();
  t.seq = 2;
  t.aru = 2;
  auto r = core.on_token(t, pending);
  ASSERT_EQ(r.new_messages.size(), 1u);
  EXPECT_EQ(r.new_messages[0].seq, 3u);
}

TEST(OrderingTest, AllMessagesSortedBySeq) {
  OrderingCore core(kRing, kThree, ProcessId{2});
  core.on_regular(make_msg(3, ProcessId{1}));
  core.on_regular(make_msg(1, ProcessId{1}));
  auto all = core.all_messages();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].seq, 1u);
  EXPECT_EQ(all[1].seq, 3u);
}

// Simulate a full 3-member ring by hand and verify safe horizons advance for
// everyone after two rotations.
TEST(OrderingTest, ThreeMemberRingRotationMakesSafe) {
  OrderingCore a(kRing, kThree, ProcessId{1});
  OrderingCore b(kRing, kThree, ProcessId{2});
  OrderingCore c(kRing, kThree, ProcessId{3});
  std::deque<PendingSend> pa;
  pa.push_back({MsgId{ProcessId{1}, 1}, Service::Safe, {}});
  std::deque<PendingSend> none;

  TokenMsg t = fresh_token();
  auto ra = a.on_token(t, pa);
  // Broadcast reaches everyone.
  for (auto* core : {&b, &c}) core->on_regular(ra.new_messages[0]);
  auto rb = b.on_token(ra.token_out, none);
  auto rc = c.on_token(rb.token_out, none);
  auto ra2 = a.on_token(rc.token_out, none);
  auto rb2 = b.on_token(ra2.token_out, none);
  auto rc2 = c.on_token(rb2.token_out, none);
  (void)rc2;
  EXPECT_EQ(a.safe_upto(), 1u);
  EXPECT_EQ(b.safe_upto(), 1u);
  EXPECT_EQ(c.safe_upto(), 1u);
  EXPECT_EQ(a.drain_deliverable().size(), 1u);
  EXPECT_EQ(b.drain_deliverable().size(), 1u);
  EXPECT_EQ(c.drain_deliverable().size(), 1u);
}

}  // namespace
}  // namespace evs
