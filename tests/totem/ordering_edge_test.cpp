// Edge cases of the token-ring ordering core: laggards, retransmission
// convergence, aru ownership hand-off, flow-control backpressure, and the
// safety horizon under partial receipt.
#include <gtest/gtest.h>

#include <map>

#include "totem/ordering.hpp"

namespace evs {
namespace {

const RingId kRing{1, ProcessId{1}};

// A miniature in-memory ring: drives tokens around N cores and "broadcasts"
// with a per-receiver drop filter, so loss patterns are exact.
struct MiniRing {
  std::vector<OrderingCore> cores;
  std::vector<std::deque<PendingSend>> pending;
  TokenMsg token;
  std::size_t holder{0};
  // drop[receiver] = seqs that receiver must not get on first transmission.
  std::map<std::size_t, SeqSet> drop_first;

  explicit MiniRing(std::size_t n, OrderingCore::Options opts = {}) {
    std::vector<ProcessId> members;
    for (std::size_t i = 1; i <= n; ++i) members.push_back(ProcessId{static_cast<std::uint32_t>(i)});
    for (std::size_t i = 0; i < n; ++i) {
      cores.emplace_back(kRing, members, members[i], opts);
    }
    pending.resize(n);
    token.ring = kRing;
    token.rotation = 1;
  }

  void queue(std::size_t who, SeqNum counter, Service svc = Service::Agreed) {
    pending[who].push_back({MsgId{cores[who].self(), counter}, svc, {}});
  }

  // One token step at the current holder; returns messages broadcast.
  std::vector<RegularMsgView> step() {
    auto result = cores[holder].on_token(token, pending[holder]);
    for (const RegularMsgView& m : result.to_broadcast) {
      for (std::size_t r = 0; r < cores.size(); ++r) {
        if (r == holder) continue;
        auto it = drop_first.find(r);
        if (it != drop_first.end() && it->second.contains(m.seq)) {
          it->second.erase(m.seq);  // only the first transmission is lost
          continue;
        }
        cores[r].on_regular(m);
      }
    }
    token = result.token_out;
    holder = (holder + 1) % cores.size();
    return result.to_broadcast;
  }

  void rotate(int times = 1) {
    for (int i = 0; i < times * static_cast<int>(cores.size()); ++i) step();
  }
};

TEST(OrderingEdgeTest, LaggardCatchesUpViaRetransmission) {
  MiniRing ring(3);
  // Process 3 (index 2) misses seqs 1 and 2 on first transmission.
  ring.drop_first[2].insert(1);
  ring.drop_first[2].insert(2);
  ring.queue(0, 1);
  ring.queue(0, 2);
  ring.rotate(1);  // messages broadcast; index 2 missed them
  EXPECT_EQ(ring.cores[2].contig(), 0u);
  ring.rotate(2);  // rtr requested and served
  EXPECT_EQ(ring.cores[2].contig(), 2u);
  EXPECT_EQ(ring.cores[2].drain_deliverable().size(), 2u);
}

TEST(OrderingEdgeTest, SafetyWaitsForTheLaggard) {
  MiniRing ring(3);
  ring.drop_first[2].insert(1);
  ring.queue(0, 1, Service::Safe);
  ring.rotate(2);
  // Index 0 and 1 hold the message but the horizon cannot pass seq 1 until
  // index 2 has acknowledged receipt (via the aru).
  EXPECT_TRUE(ring.cores[0].has(1));
  EXPECT_EQ(ring.cores[0].drain_deliverable().size(), 0u);
  ring.rotate(2);  // retransmission + two clean rotations
  EXPECT_EQ(ring.cores[0].drain_deliverable().size(), 1u);
  EXPECT_EQ(ring.cores[1].drain_deliverable().size(), 1u);
  EXPECT_EQ(ring.cores[2].drain_deliverable().size(), 1u);
}

TEST(OrderingEdgeTest, AruSetterHandsOffBetweenLaggards) {
  MiniRing ring(3);
  ring.drop_first[1].insert(1);
  ring.drop_first[2].insert(2);
  ring.queue(0, 1);
  ring.queue(0, 2);
  ring.rotate(4);
  // Everyone eventually converges despite two different processes having
  // lowered the aru at different times.
  for (auto& core : ring.cores) {
    EXPECT_EQ(core.contig(), 2u);
    EXPECT_EQ(core.drain_deliverable().size(), 2u);
  }
  EXPECT_GE(ring.token.aru, 2u);
}

TEST(OrderingEdgeTest, InterleavedSendersKeepTotalOrder) {
  MiniRing ring(3);
  ring.queue(0, 1);
  ring.queue(1, 1);
  ring.queue(2, 1);
  ring.queue(0, 2);
  ring.rotate(2);
  // Total order = seq order, identical everywhere.
  std::vector<SeqNum> seqs0;
  for (const auto& m : ring.cores[0].drain_deliverable()) seqs0.push_back(m.seq);
  EXPECT_EQ(seqs0, (std::vector<SeqNum>{1, 2, 3, 4}));
  for (std::size_t i = 1; i < 3; ++i) {
    std::vector<SeqNum> seqs;
    for (const auto& m : ring.cores[i].drain_deliverable()) seqs.push_back(m.seq);
    EXPECT_EQ(seqs, seqs0);
  }
}

TEST(OrderingEdgeTest, FlowControlBackpressureDrainsOverVisits) {
  OrderingCore::Options tight;
  tight.max_new_per_token = 2;
  MiniRing ring(2, tight);
  for (SeqNum i = 1; i <= 7; ++i) ring.queue(0, i);
  ring.step();  // visit 1: 2 stamped
  EXPECT_EQ(ring.pending[0].size(), 5u);
  ring.step();  // other member
  ring.step();  // visit 2: 2 more
  EXPECT_EQ(ring.pending[0].size(), 3u);
  ring.rotate(3);
  EXPECT_TRUE(ring.pending[0].empty());
  EXPECT_EQ(ring.cores[1].contig(), 7u);
}

TEST(OrderingEdgeTest, RetransmitCapLimitsPerVisitWork) {
  OrderingCore::Options opts;
  opts.max_retransmit_per_token = 2;
  OrderingCore core(kRing, {ProcessId{1}, ProcessId{2}}, ProcessId{1}, opts);
  for (SeqNum s = 1; s <= 5; ++s) {
    RegularMsg m;
    m.ring = kRing;
    m.seq = s;
    m.id = MsgId{ProcessId{1}, s};
    core.on_regular(m);
  }
  std::deque<PendingSend> none;
  TokenMsg t;
  t.ring = kRing;
  t.rotation = 1;
  t.seq = 5;
  t.rtr.insert_range(1, 5);
  auto r = core.on_token(t, none);
  EXPECT_EQ(r.to_broadcast.size(), 2u);       // capped
  EXPECT_EQ(r.token_out.rtr.size(), 3u);      // remainder left for next holder
}

TEST(OrderingEdgeTest, TokenSeqNeverRegresses) {
  MiniRing ring(3);
  ring.queue(1, 1);
  SeqNum last = 0;
  for (int i = 0; i < 9; ++i) {
    ring.step();
    EXPECT_GE(ring.token.seq, last);
    last = ring.token.seq;
  }
  EXPECT_EQ(last, 1u);
}

TEST(OrderingEdgeTest, DrainAfterPartialReceiptIsIncremental) {
  OrderingCore core(kRing, {ProcessId{1}, ProcessId{2}}, ProcessId{2});
  auto msg = [&](SeqNum s) {
    RegularMsg m;
    m.ring = kRing;
    m.seq = s;
    m.id = MsgId{ProcessId{1}, s};
    return m;
  };
  core.on_regular(msg(1));
  EXPECT_EQ(core.drain_deliverable().size(), 1u);
  core.on_regular(msg(3));
  EXPECT_TRUE(core.drain_deliverable().empty());
  core.on_regular(msg(2));
  auto out = core.drain_deliverable();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 2u);
  EXPECT_EQ(out[1].seq, 3u);
}

}  // namespace
}  // namespace evs
