// Regression tests for the fcc flow-control pin-to-zero fix.
//
// The token's fcc field counts broadcasts during the last full rotation;
// each member decays it only by subtracting its own previous-visit
// contribution. Before the fix, a token arriving with a garbage fcc (bit
// corruption, a forgery, or stale state leaking across a configuration
// change) was taken at face value: the budget computed as
// window - (fcc - prev_visit) pinned to zero, the member therefore
// broadcast nothing, its next-visit subtraction was zero, and the bogus
// value circulated forever — a silent, permanent send freeze that survived
// arbitrarily many rotations. The UINT32_MAX saturation on the outbound
// side made the terminal case (fcc == UINT32_MAX) explicitly unrecoverable.
//
// The fix clamps the inbound count to the largest value a healthy ring can
// produce (members * (max_new_per_token + max_retransmit_per_token)) and
// counts the event (ordering.fcc_clamped). These tests fail on the pre-fix
// code: the forged token yields new_messages.empty() there.
#include "totem/ordering.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>

namespace evs {
namespace {

const RingId kRing{1, ProcessId{1}};
const std::vector<ProcessId> kThree{ProcessId{1}, ProcessId{2}, ProcessId{3}};

std::deque<PendingSend> make_pending(std::uint64_t n) {
  std::deque<PendingSend> pending;
  for (std::uint64_t i = 1; i <= n; ++i) {
    pending.push_back({MsgId{ProcessId{1}, i}, Service::Agreed, {}});
  }
  return pending;
}

TokenMsg fresh_token() {
  TokenMsg t;
  t.ring = kRing;
  t.rotation = 1;
  return t;
}

TEST(OrderingFccTest, ForgedHugeFccCannotPinTheSendBudget) {
  OrderingCore core(kRing, kThree, ProcessId{1});
  auto pending = make_pending(100);

  TokenMsg t = fresh_token();
  t.fcc = UINT32_MAX;  // the terminal pre-fix pin: saturated and sticky

  auto result = core.on_token(t, pending);
  // Pre-fix: budget = min(64, window - UINT32_MAX -> 0, ...) = 0 and the
  // outbound fcc stays UINT32_MAX forever. Post-fix the inbound count is
  // clamped to 3 members * (64 new + 64 rtr) = 384 < window 1024, so the
  // full per-visit allowance goes out on this very visit.
  EXPECT_EQ(result.new_messages.size(), 64u);
  EXPECT_EQ(core.stats().fcc_clamped, 1u);
  // And the outbound token no longer carries the poison: its fcc is the
  // clamped ceiling plus this visit's broadcasts, far below saturation.
  EXPECT_LE(result.token_out.fcc, 384u + 64u);
}

TEST(OrderingFccTest, CorruptFccDrainsWithinOneRotationAcrossVisits) {
  OrderingCore core(kRing, kThree, ProcessId{1});
  auto pending = make_pending(1000);

  TokenMsg t = fresh_token();
  t.fcc = 2'000'000'000;  // plausible-looking garbage, far above any window

  auto result = core.on_token(t, pending);
  EXPECT_EQ(result.new_messages.size(), 64u);

  // Keep circulating the (now sane) token; budget stays at the per-visit
  // cap on every subsequent visit instead of decaying into a freeze.
  for (int visit = 0; visit < 5 && !pending.empty(); ++visit) {
    TokenMsg next = result.token_out;
    next.rotation += 2;  // as if the other members forwarded it around
    result = core.on_token(next, pending);
    EXPECT_GT(result.new_messages.size(), 0u) << "visit " << visit;
  }
  EXPECT_EQ(core.stats().fcc_clamped, 1u);  // only the first token was bad
}

TEST(OrderingFccTest, LegitimateFccValuesAreNeverClamped) {
  OrderingCore core(kRing, kThree, ProcessId{1});
  auto pending = make_pending(500);

  TokenMsg t = fresh_token();
  auto result = core.on_token(t, pending);
  std::uint32_t max_fcc_seen = result.token_out.fcc;
  for (int visit = 0; visit < 20; ++visit) {
    TokenMsg next = result.token_out;
    next.rotation += 2;
    result = core.on_token(next, pending);
    max_fcc_seen = std::max(max_fcc_seen, result.token_out.fcc);
  }
  // A single-sender full-tilt run keeps fcc well inside the healthy-ring
  // ceiling, so the clamp never engages and throughput is untouched.
  EXPECT_EQ(core.stats().fcc_clamped, 0u);
  EXPECT_LE(max_fcc_seen, 3u * (64u + 64u));
  EXPECT_TRUE(pending.empty());  // 500 msgs drained at 64/visit over 20+1 visits
}

TEST(OrderingFccTest, FreshConfigurationStartsWithFullBudget) {
  // Configuration installs construct a fresh OrderingCore and the
  // representative originates a token with fcc = 0: the first visit of a
  // new ring must have the whole window available no matter what the old
  // ring's flow-control state looked like.
  OrderingCore old_core(kRing, kThree, ProcessId{1});
  auto old_pending = make_pending(64);
  TokenMsg poisoned = fresh_token();
  poisoned.fcc = UINT32_MAX;
  (void)old_core.on_token(poisoned, old_pending);

  const RingId new_ring{2, ProcessId{1}};
  OrderingCore fresh(new_ring, kThree, ProcessId{1});
  auto pending = make_pending(100);
  TokenMsg t;
  t.ring = new_ring;
  t.rotation = 1;  // fcc defaults to 0, as the rep originates it
  auto result = fresh.on_token(t, pending);
  EXPECT_EQ(result.new_messages.size(), 64u);
  EXPECT_EQ(fresh.stats().fcc_clamped, 0u);
}

}  // namespace
}  // namespace evs
