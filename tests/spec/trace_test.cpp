#include "spec/trace.hpp"

#include <gtest/gtest.h>

namespace evs {
namespace {

const ProcessId P1{1};
const ProcessId P2{2};

TraceEvent make(EventType type, ProcessId p, SimTime t) {
  TraceEvent e;
  e.type = type;
  e.process = p;
  e.time = t;
  e.config = ConfigId::regular(RingId{1, P1});
  return e;
}

TEST(TraceLogTest, AssignsPerProcessProgramOrder) {
  TraceLog log;
  log.record(make(EventType::Send, P1, 1));
  log.record(make(EventType::Send, P2, 2));
  log.record(make(EventType::Deliver, P1, 3));
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.events()[0].pindex, 0u);
  EXPECT_EQ(log.events()[1].pindex, 0u);  // P2's first
  EXPECT_EQ(log.events()[2].pindex, 1u);  // P1's second
}

TEST(TraceLogTest, OfProcessFiltersInOrder) {
  TraceLog log;
  log.record(make(EventType::Send, P1, 1));
  log.record(make(EventType::Send, P2, 2));
  log.record(make(EventType::Fail, P1, 3));
  auto events = log.of_process(P1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0]->type, EventType::Send);
  EXPECT_EQ(events[1]->type, EventType::Fail);
}

TEST(TraceLogTest, ProcessesListsDistinctSorted) {
  TraceLog log;
  log.record(make(EventType::Send, P2, 1));
  log.record(make(EventType::Send, P1, 2));
  log.record(make(EventType::Send, P2, 3));
  EXPECT_EQ(log.processes(), (std::vector<ProcessId>{P1, P2}));
}

TEST(TraceLogTest, ClearResetsIndexes) {
  TraceLog log;
  log.record(make(EventType::Send, P1, 1));
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  log.record(make(EventType::Send, P1, 2));
  EXPECT_EQ(log.events()[0].pindex, 0u);
}

TEST(TraceEventTest, DescribeForms) {
  TraceEvent send = make(EventType::Send, P1, 5);
  send.msg = MsgId{P1, 3};
  send.service = Service::Safe;
  send.seq = 7;
  EXPECT_NE(send.describe().find("send_P1"), std::string::npos);
  EXPECT_NE(send.describe().find("P1#3"), std::string::npos);
  EXPECT_NE(send.describe().find("safe"), std::string::npos);

  TraceEvent conf = make(EventType::DeliverConf, P2, 6);
  conf.members = {P1, P2};
  EXPECT_NE(conf.describe().find("deliver_conf_P2"), std::string::npos);
  EXPECT_NE(conf.describe().find("{P1,P2}"), std::string::npos);

  TraceEvent fail = make(EventType::Fail, P1, 7);
  EXPECT_NE(fail.describe().find("fail_P1"), std::string::npos);
}

TEST(TraceLogTest, DumpContainsEveryEvent) {
  TraceLog log;
  log.record(make(EventType::Send, P1, 1));
  log.record(make(EventType::Fail, P2, 2));
  const std::string dump = log.dump();
  EXPECT_NE(dump.find("send_P1"), std::string::npos);
  EXPECT_NE(dump.find("fail_P2"), std::string::npos);
}

}  // namespace
}  // namespace evs
