// Self-tests for the specification checker: hand-crafted traces with known
// violations must be flagged, and minimal correct traces must pass. A
// verifier that cannot fail is worthless — these tests keep it honest.
#include "spec/checker.hpp"

#include <gtest/gtest.h>

namespace evs {
namespace {

const ProcessId P1{1};
const ProcessId P2{2};
const RingId R1{1, P1};
const RingId R2{2, P1};

struct TraceBuilder {
  TraceLog log;
  SimTime t{0};

  void conf(ProcessId p, ConfigId c, std::vector<ProcessId> members, Ord ord) {
    TraceEvent e;
    e.type = EventType::DeliverConf;
    e.process = p;
    e.time = ++t;
    e.config = c;
    e.members = std::move(members);
    e.ord = ord;
    log.record(std::move(e));
  }

  void send(ProcessId p, MsgId m, ConfigId c, SeqNum seq, Ord ord,
            Service svc = Service::Agreed) {
    TraceEvent e;
    e.type = EventType::Send;
    e.process = p;
    e.time = ++t;
    e.msg = m;
    e.service = svc;
    e.seq = seq;
    e.config = c;
    e.ord = ord;
    log.record(std::move(e));
  }

  void deliver(ProcessId p, MsgId m, ConfigId c, SeqNum seq, Ord ord,
               Service svc = Service::Agreed) {
    TraceEvent e;
    e.type = EventType::Deliver;
    e.process = p;
    e.time = ++t;
    e.msg = m;
    e.service = svc;
    e.seq = seq;
    e.config = c;
    e.ord = ord;
    log.record(std::move(e));
  }

  void fail(ProcessId p, ConfigId c) {
    TraceEvent e;
    e.type = EventType::Fail;
    e.process = p;
    e.time = ++t;
    e.config = c;
    log.record(std::move(e));
  }

  std::vector<Violation> check(bool quiescent = true) {
    SpecChecker checker(log, SpecChecker::Options{quiescent});
    return checker.check_all();
  }

  bool has(const std::vector<Violation>& vs, const std::string& spec) {
    for (const auto& v : vs) {
      if (v.spec == spec) return true;
    }
    return false;
  }
};

const ConfigId C1 = ConfigId::regular(R1);
const Ord kConfOrd = ord_regular_conf(R1);
const MsgId M1{P1, 1};
const MsgId M2{P1, 2};

Ord dord(SeqNum seq) { return ord_message_delivery(R1, seq); }
Ord sord(SeqNum slot) { return Ord{R1.seq, R1.rep, slot}; }

TEST(CheckerTest, MinimalCorrectTracePasses) {
  TraceBuilder b;
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P1, P2}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1));
  b.deliver(P1, M1, C1, 1, dord(1));
  b.deliver(P2, M1, C1, 1, dord(1));
  EXPECT_TRUE(b.check().empty()) << b.log.dump();
}

TEST(CheckerTest, DeliveryWithoutSendFlagged) {
  TraceBuilder b;
  b.conf(P1, C1, {P1}, kConfOrd);
  b.deliver(P1, M1, C1, 1, dord(1));
  EXPECT_TRUE(b.has(b.check(false), "1.3"));
}

TEST(CheckerTest, DeliveryInWrongRingFlagged) {
  TraceBuilder b;
  const ConfigId c2 = ConfigId::regular(R2);
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, c2, {P2}, ord_regular_conf(R2));
  b.send(P1, M1, C1, 1, sord(1));
  b.deliver(P1, M1, C1, 1, dord(1));
  // P2 delivers the message in an unrelated configuration.
  b.deliver(P2, M1, c2, 1, ord_message_delivery(R2, 1));
  EXPECT_TRUE(b.has(b.check(false), "1.3"));
}

TEST(CheckerTest, DoubleSendFlagged) {
  TraceBuilder b;
  b.conf(P1, C1, {P1}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1));
  b.send(P1, M1, C1, 2, sord(2));
  b.deliver(P1, M1, C1, 1, dord(1));
  EXPECT_TRUE(b.has(b.check(false), "1.4"));
}

TEST(CheckerTest, SendInTransitionalConfigFlagged) {
  TraceBuilder b;
  const ConfigId trans = ConfigId::trans(R1, R2);
  b.conf(P1, C1, {P1}, kConfOrd);
  b.conf(P1, trans, {P1}, ord_transitional_conf(R1, 0));
  b.send(P1, M1, trans, 1, Ord{R1.seq, R1.rep, kOrdGranule / 2 + 1});
  b.deliver(P1, M1, trans, 1, dord(1));
  auto vs = b.check(false);
  EXPECT_TRUE(b.has(vs, "1.4"));
}

TEST(CheckerTest, DoubleDeliveryFlagged) {
  TraceBuilder b;
  b.conf(P1, C1, {P1}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1));
  b.deliver(P1, M1, C1, 1, dord(1));
  b.deliver(P1, M1, C1, 1, dord(1));
  EXPECT_TRUE(b.has(b.check(false), "1.4"));
}

TEST(CheckerTest, EventOutsideConfigurationFlagged) {
  TraceBuilder b;
  b.send(P1, M1, C1, 1, sord(1));  // no deliver_conf first
  EXPECT_TRUE(b.has(b.check(false), "2.2"));
}

TEST(CheckerTest, EventTaggedWithWrongConfigurationFlagged) {
  TraceBuilder b;
  const ConfigId c2 = ConfigId::regular(R2);
  b.conf(P1, C1, {P1}, kConfOrd);
  b.conf(P1, c2, {P1}, ord_regular_conf(R2));
  // P1 claims to send in C1 although it installed c2 since.
  b.send(P1, M1, C1, 1, sord(1));
  EXPECT_TRUE(b.has(b.check(false), "2.2"));
}

TEST(CheckerTest, FinalConfigDisagreementFlaggedWhenQuiescent) {
  TraceBuilder b;
  b.conf(P1, C1, {P1, P2}, kConfOrd);  // P2 never installs C1
  auto vs = b.check(true);
  EXPECT_TRUE(b.has(vs, "2.1"));
}

TEST(CheckerTest, InconsistentConfOrdFlagged) {
  TraceBuilder b;
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P1, P2}, Ord{R1.seq, R1.rep, 5});
  EXPECT_TRUE(b.has(b.check(false), "2.3"));
}

TEST(CheckerTest, ConfigCutCycleFlagged) {
  // P1 installs C2, then sends m; P2 delivers m and only afterwards
  // installs C2. Identifying the two installs of C2 (logically
  // simultaneous, Spec 6.2/L3) makes the precedes relation cyclic:
  // conf(C2)@P1 -> send(m) -> deliver(m)@P2 -> conf(C2)@P2 == conf(C2)@P1.
  TraceBuilder b;
  const ConfigId c2 = ConfigId::regular(R2);
  const Ord c2ord = ord_regular_conf(R2);
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P1, P2}, kConfOrd);
  b.conf(P1, c2, {P1, P2}, c2ord);
  b.send(P1, M1, c2, 1, Ord{R2.seq, R2.rep, 1});
  b.deliver(P1, M1, c2, 1, ord_message_delivery(R2, 1));
  b.deliver(P2, M1, C1, 1, ord_message_delivery(R2, 1));  // before installing c2!
  b.conf(P2, c2, {P1, P2}, c2ord);
  EXPECT_TRUE(b.has(b.check(false), "2.3"));
}

TEST(CheckerTest, NoFalseCycleOnCleanInstalls) {
  TraceBuilder b;
  const ConfigId c2 = ConfigId::regular(R2);
  const Ord c2ord = ord_regular_conf(R2);
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P1, P2}, kConfOrd);
  b.conf(P1, c2, {P1, P2}, c2ord);
  b.conf(P2, c2, {P1, P2}, c2ord);
  b.send(P1, M1, c2, 1, Ord{R2.seq, R2.rep, 1});
  b.deliver(P1, M1, c2, 1, ord_message_delivery(R2, 1));
  b.deliver(P2, M1, c2, 1, ord_message_delivery(R2, 1));
  EXPECT_FALSE(b.has(b.check(false), "2.3")) << b.log.dump();
}

TEST(CheckerTest, MissingSelfDeliveryFlagged) {
  TraceBuilder b;
  const ConfigId c2 = ConfigId::regular(R2);
  b.conf(P1, C1, {P1}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1));
  b.conf(P1, c2, {P1}, ord_regular_conf(R2));  // moved on without delivering
  EXPECT_TRUE(b.has(b.check(false), "3"));
}

TEST(CheckerTest, SelfDeliveryExemptOnFailure) {
  TraceBuilder b;
  b.conf(P1, C1, {P1}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1));
  b.fail(P1, C1);
  EXPECT_FALSE(b.has(b.check(false), "3"));
}

TEST(CheckerTest, FailureAtomicityViolationFlagged) {
  TraceBuilder b;
  const ConfigId c2 = ConfigId::regular(R2);
  const Ord c2ord = ord_regular_conf(R2);
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P1, P2}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1));
  b.deliver(P1, M1, C1, 1, dord(1));  // P2 skips it
  b.conf(P1, c2, {P1, P2}, c2ord);
  b.conf(P2, c2, {P1, P2}, c2ord);  // both proceed together to c2
  EXPECT_TRUE(b.has(b.check(false), "4"));
}

TEST(CheckerTest, CausalViolationFlagged) {
  TraceBuilder b;
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P1, P2}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1));
  b.deliver(P1, M1, C1, 1, dord(1));
  b.send(P1, M2, C1, 2, Ord{R1.seq, R1.rep, kOrdGranule + 1});
  b.deliver(P1, M2, C1, 2, dord(2));
  // P2 delivers m2 but never m1 = m2's causal predecessor.
  b.deliver(P2, M2, C1, 2, dord(2));
  EXPECT_TRUE(b.has(b.check(false), "5"));
}

TEST(CheckerTest, TransitiveCausalViolationFlagged) {
  const MsgId M3{P2, 1};
  TraceBuilder b;
  const ProcessId P3{3};
  b.conf(P1, C1, {P1, P2, P3}, kConfOrd);
  b.conf(P2, C1, {P1, P2, P3}, kConfOrd);
  b.conf(P3, C1, {P1, P2, P3}, kConfOrd);
  // P1 sends m1 and m2; P2 delivers m2 then sends m3; so send(m1) ->
  // send(m3) transitively even though P2 never delivered m1.
  b.send(P1, M1, C1, 1, sord(1));
  b.send(P1, M2, C1, 2, sord(2));
  b.deliver(P1, M1, C1, 1, dord(1));
  b.deliver(P1, M2, C1, 2, dord(2));
  b.deliver(P2, M1, C1, 1, dord(1));
  b.deliver(P2, M2, C1, 2, dord(2));
  b.send(P2, M3, C1, 3, Ord{R1.seq, R1.rep, 2 * kOrdGranule + 1});
  b.deliver(P2, M3, C1, 3, dord(3));
  b.deliver(P1, M3, C1, 3, dord(3));
  // P3 delivers only m3: misses both causal predecessors.
  b.deliver(P3, M3, C1, 3, dord(3));
  auto vs = b.check(false);
  EXPECT_TRUE(b.has(vs, "5"));
}

TEST(CheckerTest, OrdInversionAcrossSendDeliverFlagged) {
  TraceBuilder b;
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P1, P2}, kConfOrd);
  b.send(P1, M1, C1, 1, Ord{R1.seq, R1.rep, 2 * kOrdGranule});  // too late
  b.deliver(P1, M1, C1, 1, dord(1));
  EXPECT_TRUE(b.has(b.check(false), "6.1"));
}

TEST(CheckerTest, DifferentDeliveryOrdsFlagged) {
  TraceBuilder b;
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P1, P2}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1));
  b.deliver(P1, M1, C1, 1, dord(1));
  b.deliver(P2, M1, C1, 1, dord(2));  // different logical time
  EXPECT_TRUE(b.has(b.check(false), "6.2"));
}

TEST(CheckerTest, OrderGapAgainstPeerFlagged) {
  TraceBuilder b;
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P1, P2}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1));
  b.send(P1, M2, C1, 2, sord(2));
  b.deliver(P1, M1, C1, 1, dord(1));
  b.deliver(P1, M2, C1, 2, dord(2));
  // P2 delivers seq 2 but skips seq 1 although P1 (its sender) is a member
  // of P2's configuration.
  b.deliver(P2, M2, C1, 2, dord(2));
  EXPECT_TRUE(b.has(b.check(false), "6.3"));
}

TEST(CheckerTest, SafeDeliveryGapFlagged) {
  TraceBuilder b;
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P1, P2}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1), Service::Safe);
  b.deliver(P1, M1, C1, 1, dord(1), Service::Safe);
  // P2 neither delivers nor fails: Spec 7.1 violation (quiescent trace).
  EXPECT_TRUE(b.has(b.check(true), "7.1"));
}

TEST(CheckerTest, SafeDeliveryExemptOnFail) {
  TraceBuilder b;
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P1, P2}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1), Service::Safe);
  b.deliver(P1, M1, C1, 1, dord(1), Service::Safe);
  b.fail(P2, C1);
  auto vs = b.check(true);
  EXPECT_FALSE(b.has(vs, "7.1"));
}

TEST(CheckerTest, SafeInRegularRequiresInstallationEverywhere) {
  TraceBuilder b;
  // P2 appears in C1's membership but never installs it; P1 delivers a safe
  // message in regular C1.
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1), Service::Safe);
  b.deliver(P1, M1, C1, 1, dord(1), Service::Safe);
  b.fail(P2, C1);  // irrelevant: 7.2 has no failure exemption
  EXPECT_TRUE(b.has(b.check(false), "7.2"));
}

TEST(CheckerTest, MembershipMismatchFlagged) {
  TraceBuilder b;
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P2}, kConfOrd);  // same id, different membership
  EXPECT_TRUE(b.has(b.check(false), "2.x"));
}

TEST(CheckerTest, SafeDeliveredInTransitionalSatisfies71) {
  // The EVS resolution: the safe message is delivered by P1 in the regular
  // configuration and by P2 in its transitional configuration — no
  // violation.
  TraceBuilder b;
  const ConfigId trans = ConfigId::trans(R1, R2);
  const ConfigId c2 = ConfigId::regular(R2);
  b.conf(P1, C1, {P1, P2}, kConfOrd);
  b.conf(P2, C1, {P1, P2}, kConfOrd);
  b.send(P1, M1, C1, 1, sord(1), Service::Safe);
  b.deliver(P1, M1, C1, 1, dord(1), Service::Safe);
  b.conf(P1, trans, {P1, P2}, ord_transitional_conf(R1, 0));
  b.conf(P2, trans, {P1, P2}, ord_transitional_conf(R1, 0));
  b.deliver(P2, M1, trans, 1, dord(1), Service::Safe);
  b.conf(P1, c2, {P1, P2}, ord_regular_conf(R2));
  b.conf(P2, c2, {P1, P2}, ord_regular_conf(R2));
  auto vs = b.check(true);
  EXPECT_FALSE(b.has(vs, "7.1")) << b.log.dump();
}

}  // namespace
}  // namespace evs
