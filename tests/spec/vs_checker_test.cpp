// Self-tests for the virtual synchrony legality checker.
#include "spec/vs_checker.hpp"

#include <gtest/gtest.h>

namespace evs {
namespace {

const ProcessId P1{1};
const ProcessId P2{2};
const RingId R1{1, P1};

VsOrd vord(std::uint64_t offset, std::uint32_t sub = 0) {
  return VsOrd{Ord{R1.seq, R1.rep, offset}, sub};
}

struct VsTraceBuilder {
  VsTraceLog log;
  SimTime t{0};

  void view(ProcessId p, std::uint64_t id, std::vector<ProcessId> members, VsOrd ord) {
    VsEvent e;
    e.type = VsEventType::View;
    e.process = p;
    e.time = ++t;
    e.view_id = id;
    e.members = std::move(members);
    e.ord = ord;
    log.record(std::move(e));
  }

  void send(ProcessId p, MsgId m, std::uint64_t view) {
    VsEvent e;
    e.type = VsEventType::Send;
    e.process = p;
    e.time = ++t;
    e.msg = m;
    e.view_id = view;
    log.record(std::move(e));
  }

  void deliver(ProcessId p, MsgId m, std::uint64_t view, VsOrd ord) {
    VsEvent e;
    e.type = VsEventType::Deliver;
    e.process = p;
    e.time = ++t;
    e.msg = m;
    e.view_id = view;
    e.ord = ord;
    log.record(std::move(e));
  }

  void stop(ProcessId p) {
    VsEvent e;
    e.type = VsEventType::Stop;
    e.process = p;
    e.time = ++t;
    log.record(std::move(e));
  }

  bool has(const std::string& what, bool quiescent = true) {
    VsChecker checker(log, VsChecker::Options{quiescent});
    for (const auto& v : checker.check_all()) {
      if (v.spec == what) return true;
    }
    return false;
  }

  std::vector<Violation> all(bool quiescent = true) {
    VsChecker checker(log, VsChecker::Options{quiescent});
    return checker.check_all();
  }
};

const MsgId M1{P1, 1};

TEST(VsCheckerTest, MinimalLegalRunPasses) {
  VsTraceBuilder b;
  b.view(P1, 1, {P1, P2}, vord(0, 1));
  b.view(P2, 1, {P1, P2}, vord(0, 1));
  b.send(P1, M1, 1);
  b.deliver(P1, M1, 1, vord(100));
  b.deliver(P2, M1, 1, vord(100));
  EXPECT_TRUE(b.all().empty()) << b.log.dump();
}

TEST(VsCheckerTest, ViewMembershipMismatchFlagged) {
  VsTraceBuilder b;
  b.view(P1, 1, {P1, P2}, vord(0, 1));
  b.view(P2, 1, {P2}, vord(0, 1));
  EXPECT_TRUE(b.has("VS-view", false));
}

TEST(VsCheckerTest, ViewTimeMismatchFlaggedL3) {
  VsTraceBuilder b;
  b.view(P1, 1, {P1, P2}, vord(0, 1));
  b.view(P2, 1, {P1, P2}, vord(0, 2));
  EXPECT_TRUE(b.has("L3", false));
}

TEST(VsCheckerTest, NonMemberInstallFlagged) {
  VsTraceBuilder b;
  b.view(P1, 1, {P2}, vord(0, 1));
  EXPECT_TRUE(b.has("VS-view", false));
}

TEST(VsCheckerTest, ViewIdRegressionFlagged) {
  VsTraceBuilder b;
  b.view(P1, 2, {P1}, vord(0, 1));
  b.view(P1, 1, {P1}, vord(0, 2));
  EXPECT_TRUE(b.has("VS-unique", false));
}

TEST(VsCheckerTest, ContinuityBreakFlagged) {
  VsTraceBuilder b;
  b.view(P1, 1, {P1}, vord(0, 1));
  b.view(P2, 2, {P2}, vord(0, 2));
  EXPECT_TRUE(b.has("VS-continuity", false));
}

TEST(VsCheckerTest, RenamedIncarnationPreservesContinuity) {
  VsTraceBuilder b;
  const ProcessId p1_inc1 = vs_synth_id(P1, 1);
  b.view(P1, 1, {P1}, vord(0, 1));
  b.stop(P1);
  b.view(p1_inc1, 2, {p1_inc1}, vord(0, 2));
  EXPECT_FALSE(b.has("VS-continuity", false)) << b.log.dump();
}

TEST(VsCheckerTest, DeliveryInTwoViewsFlaggedL4) {
  VsTraceBuilder b;
  b.view(P1, 1, {P1, P2}, vord(0, 1));
  b.view(P2, 1, {P1, P2}, vord(0, 1));
  b.view(P1, 2, {P1, P2}, vord(1, 1));
  b.view(P2, 2, {P1, P2}, vord(1, 1));
  b.send(P1, M1, 1);
  b.deliver(P1, M1, 1, vord(100));
  b.deliver(P2, M1, 2, vord(100));
  EXPECT_TRUE(b.has("L4", false));
}

TEST(VsCheckerTest, DifferentDeliveryTimesFlaggedL5) {
  VsTraceBuilder b;
  b.view(P1, 1, {P1, P2}, vord(0, 1));
  b.view(P2, 1, {P1, P2}, vord(0, 1));
  b.send(P1, M1, 1);
  b.deliver(P1, M1, 1, vord(100));
  b.deliver(P2, M1, 1, vord(101));
  EXPECT_TRUE(b.has("L5", false));
}

TEST(VsCheckerTest, LocalTimeInversionFlaggedL1) {
  VsTraceBuilder b;
  b.view(P1, 1, {P1}, vord(5, 1));
  b.send(P1, M1, 1);
  b.deliver(P1, M1, 1, vord(2));  // before the view's logical time
  EXPECT_TRUE(b.has("L1", false));
}

TEST(VsCheckerTest, MissingMemberDeliveryFlaggedC3) {
  VsTraceBuilder b;
  b.view(P1, 1, {P1, P2}, vord(0, 1));
  b.view(P2, 1, {P1, P2}, vord(0, 1));
  b.send(P1, M1, 1);
  b.deliver(P1, M1, 1, vord(100));
  // P2 never delivers and never stops.
  EXPECT_TRUE(b.has("C3", true));
}

TEST(VsCheckerTest, StoppedMemberExemptFromC3) {
  VsTraceBuilder b;
  b.view(P1, 1, {P1, P2}, vord(0, 1));
  b.view(P2, 1, {P1, P2}, vord(0, 1));
  b.send(P1, M1, 1);
  b.deliver(P1, M1, 1, vord(100));
  b.stop(P2);
  EXPECT_FALSE(b.has("C3", true));
}

TEST(VsCheckerTest, SelfDeliveryMissingFlaggedC2) {
  VsTraceBuilder b;
  b.view(P1, 1, {P1, P2}, vord(0, 1));
  b.view(P2, 1, {P1, P2}, vord(0, 1));
  b.send(P1, M1, 1);
  b.deliver(P2, M1, 1, vord(100));
  EXPECT_TRUE(b.has("C2", true));
}

TEST(VsCheckerTest, DoubleDeliveryFlagged) {
  VsTraceBuilder b;
  b.view(P1, 1, {P1}, vord(0, 1));
  b.send(P1, M1, 1);
  b.deliver(P1, M1, 1, vord(100));
  b.deliver(P1, M1, 1, vord(100));
  EXPECT_TRUE(b.has("C1", false));
}

TEST(VsCheckerTest, IdentityHelpersRoundTrip) {
  const ProcessId synth = vs_synth_id(ProcessId{7}, 3);
  EXPECT_EQ(vs_base_pid(synth), ProcessId{7});
  EXPECT_EQ(vs_incarnation_of(synth), 3u);
  EXPECT_EQ(vs_incarnation_of(ProcessId{7}), 0u);
}

}  // namespace
}  // namespace evs
