// The paper's Figures 1-5 illustrate Specifications 1-5 with little event
// diagrams: an assumed pattern of events forces (star) or forbids (cross)
// another. Each test here encodes one figure twice — the conforming shape
// must pass the checker, the crossed-out shape must be flagged. This is the
// executable rendering of the specification figures (experiment E1).
#include <gtest/gtest.h>

#include "spec/checker.hpp"

namespace evs {
namespace {

const ProcessId P{1};
const ProcessId Q{2};
const ProcessId R{3};
const RingId RingA{1, P};
const RingId RingB{2, P};
const ConfigId CfgA = ConfigId::regular(RingA);
const ConfigId CfgB = ConfigId::regular(RingB);
const ConfigId TransAB = ConfigId::trans(RingA, RingB);

struct Fig {
  TraceLog log;
  SimTime t{0};

  void conf(ProcessId p, ConfigId c, std::vector<ProcessId> members) {
    TraceEvent e;
    e.type = EventType::DeliverConf;
    e.process = p;
    e.time = ++t;
    e.config = c;
    e.members = std::move(members);
    e.ord = c.transitional ? ord_transitional_conf(c.prior_ring, 1000)
                           : ord_regular_conf(c.ring);
    log.record(std::move(e));
  }

  void send(ProcessId p, MsgId m, ConfigId c, SeqNum seq,
            Service svc = Service::Agreed) {
    TraceEvent e;
    e.type = EventType::Send;
    e.process = p;
    e.time = ++t;
    e.msg = m;
    e.service = svc;
    e.seq = seq;
    e.config = c;
    e.ord = Ord{c.ring.seq, c.ring.rep, (seq - 1) * kOrdGranule + 1};
    log.record(std::move(e));
  }

  void deliver(ProcessId p, MsgId m, ConfigId c, SeqNum seq,
               Service svc = Service::Agreed) {
    TraceEvent e;
    e.type = EventType::Deliver;
    e.process = p;
    e.time = ++t;
    e.msg = m;
    e.service = svc;
    e.seq = seq;
    e.config = c;
    const RingId origin = c.transitional ? c.prior_ring : c.ring;
    e.ord = ord_message_delivery(origin, seq);
    log.record(std::move(e));
  }

  void fail(ProcessId p, ConfigId c) {
    TraceEvent e;
    e.type = EventType::Fail;
    e.process = p;
    e.time = ++t;
    e.config = c;
    log.record(std::move(e));
  }

  bool flags(const std::string& spec, bool quiescent = false) {
    SpecChecker checker(log, SpecChecker::Options{quiescent});
    for (const auto& v : checker.check_all()) {
      if (v.spec == spec) return true;
    }
    return false;
  }

  std::size_t total(bool quiescent = false) {
    SpecChecker checker(log, SpecChecker::Options{quiescent});
    return checker.check_all().size();
  }
};

const MsgId M1{P, 1};

// --- Figure 1: basic delivery -----------------------------------------------

TEST(Figure1, DeliveryInSendConfigurationConforms) {
  Fig f;
  f.conf(P, CfgA, {P, Q});
  f.conf(Q, CfgA, {P, Q});
  f.send(P, M1, CfgA, 1);
  f.deliver(P, M1, CfgA, 1);
  f.deliver(Q, M1, CfgA, 1);
  EXPECT_EQ(f.total(), 0u) << f.log.dump();
}

TEST(Figure1, DeliveryInFollowingTransitionalConforms) {
  Fig f;
  f.conf(P, CfgA, {P, Q});
  f.conf(Q, CfgA, {P, Q});
  f.send(P, M1, CfgA, 1);
  f.deliver(P, M1, CfgA, 1);
  f.conf(Q, TransAB, {P, Q});
  f.deliver(Q, M1, TransAB, 1);
  f.conf(Q, CfgB, {P, Q});
  // Not quiescent: P has not moved yet; structure alone must conform.
  EXPECT_FALSE(f.flags("1.3")) << f.log.dump();
}

TEST(Figure1, DeliveryInUnrelatedConfigurationFlagged) {
  Fig f;
  const RingId foreign{9, R};
  f.conf(P, CfgA, {P, Q});
  f.conf(R, ConfigId::regular(foreign), {R});
  f.send(P, M1, CfgA, 1);
  f.deliver(P, M1, CfgA, 1);
  TraceEvent bad;
  bad.type = EventType::Deliver;
  bad.process = R;
  bad.time = 999;
  bad.msg = M1;
  bad.seq = 1;
  bad.config = ConfigId::regular(foreign);
  bad.ord = ord_message_delivery(foreign, 1);
  f.log.record(std::move(bad));
  EXPECT_TRUE(f.flags("1.3"));
}

TEST(Figure1, SameMessageSentTwiceFlagged) {
  Fig f;
  f.conf(P, CfgA, {P});
  f.send(P, M1, CfgA, 1);
  f.send(P, M1, CfgA, 2);
  EXPECT_TRUE(f.flags("1.4"));
}

// --- Figure 2: configuration changes ----------------------------------------

TEST(Figure2, AgreedConfigurationSequenceConforms) {
  Fig f;
  f.conf(P, CfgA, {P, Q});
  f.conf(Q, CfgA, {P, Q});
  f.conf(P, CfgB, {P, Q});
  f.conf(Q, CfgB, {P, Q});
  EXPECT_EQ(f.total(), 0u);
}

TEST(Figure2, EventBetweenConfigurationsMustBelongToCurrent) {
  Fig f;
  f.conf(P, CfgA, {P, Q});
  f.conf(P, CfgB, {P, Q});
  // P "delivers in CfgA" after installing CfgB: crossed out in the figure.
  f.send(P, M1, CfgA, 1);
  EXPECT_TRUE(f.flags("2.2"));
}

TEST(Figure2, InstallingAConfigYouAreNotInFlagged) {
  Fig f;
  f.conf(P, CfgA, {Q});  // P not a member
  EXPECT_TRUE(f.flags("2.x"));
}

// --- Figure 3: self delivery -------------------------------------------------

TEST(Figure3, SenderDeliversOwnMessageConforms) {
  Fig f;
  f.conf(P, CfgA, {P});
  f.send(P, M1, CfgA, 1);
  f.deliver(P, M1, CfgA, 1);
  f.conf(P, CfgB, {P});
  EXPECT_EQ(f.total(), 0u);
}

TEST(Figure3, MovingOnWithoutSelfDeliveryFlagged) {
  Fig f;
  f.conf(P, CfgA, {P});
  f.send(P, M1, CfgA, 1);
  f.conf(P, CfgB, {P});  // next regular config, message never delivered
  EXPECT_TRUE(f.flags("3"));
}

TEST(Figure3, FailureExemptsSelfDelivery) {
  Fig f;
  f.conf(P, CfgA, {P});
  f.send(P, M1, CfgA, 1);
  f.fail(P, CfgA);
  EXPECT_FALSE(f.flags("3", true));
}

// --- Figure 4: failure atomicity ---------------------------------------------

TEST(Figure4, SameDeliveriesWhenProceedingTogetherConforms) {
  Fig f;
  f.conf(P, CfgA, {P, Q});
  f.conf(Q, CfgA, {P, Q});
  f.send(P, M1, CfgA, 1);
  f.deliver(P, M1, CfgA, 1);
  f.deliver(Q, M1, CfgA, 1);
  f.conf(P, CfgB, {P, Q});
  f.conf(Q, CfgB, {P, Q});
  EXPECT_EQ(f.total(), 0u);
}

TEST(Figure4, DifferentDeliveriesWhenProceedingTogetherFlagged) {
  Fig f;
  f.conf(P, CfgA, {P, Q});
  f.conf(Q, CfgA, {P, Q});
  f.send(P, M1, CfgA, 1);
  f.deliver(P, M1, CfgA, 1);  // Q misses it
  f.conf(P, CfgB, {P, Q});
  f.conf(Q, CfgB, {P, Q});
  EXPECT_TRUE(f.flags("4"));
}

TEST(Figure4, DifferentNextConfigurationsNotBound) {
  // The two components of a partition deliver different sets — allowed,
  // because they proceed to different configurations. This is exactly what
  // EVS permits that VS does not.
  Fig f;
  const RingId ringC{3, Q};
  f.conf(P, CfgA, {P, Q});
  f.conf(Q, CfgA, {P, Q});
  f.send(P, M1, CfgA, 1);
  f.deliver(P, M1, CfgA, 1);  // Q misses it
  f.conf(P, CfgB, {P});
  f.conf(Q, ConfigId::regular(ringC), {Q});
  EXPECT_FALSE(f.flags("4"));
}

// --- Figure 5: causal delivery -----------------------------------------------

TEST(Figure5, CausalPairDeliveredInOrderConforms) {
  const MsgId M2{Q, 1};
  Fig f;
  f.conf(P, CfgA, {P, Q, R});
  f.conf(Q, CfgA, {P, Q, R});
  f.conf(R, CfgA, {P, Q, R});
  f.send(P, M1, CfgA, 1);
  f.deliver(P, M1, CfgA, 1);
  f.deliver(Q, M1, CfgA, 1);
  f.send(Q, M2, CfgA, 2);  // causally after M1
  f.deliver(Q, M2, CfgA, 2);
  f.deliver(P, M2, CfgA, 2);
  f.deliver(R, M1, CfgA, 1);
  f.deliver(R, M2, CfgA, 2);
  EXPECT_EQ(f.total(), 0u) << f.log.dump();
}

TEST(Figure5, EffectWithoutCauseFlagged) {
  const MsgId M2{Q, 1};
  Fig f;
  f.conf(P, CfgA, {P, Q, R});
  f.conf(Q, CfgA, {P, Q, R});
  f.conf(R, CfgA, {P, Q, R});
  f.send(P, M1, CfgA, 1);
  f.deliver(P, M1, CfgA, 1);
  f.deliver(Q, M1, CfgA, 1);
  f.send(Q, M2, CfgA, 2);
  f.deliver(Q, M2, CfgA, 2);
  // R delivers the effect but never the cause.
  f.deliver(R, M2, CfgA, 2);
  EXPECT_TRUE(f.flags("5"));
}

TEST(Figure5, ConcurrentMessagesUnordered) {
  // M1 and M2 are concurrent (Q never delivered M1 before sending): a
  // receiver may deliver either one alone.
  const MsgId M2{Q, 1};
  Fig f;
  f.conf(P, CfgA, {P, Q, R});
  f.conf(Q, CfgA, {P, Q, R});
  f.conf(R, CfgA, {P, Q, R});
  f.send(P, M1, CfgA, 1);
  f.send(Q, M2, CfgA, 2);
  f.deliver(P, M1, CfgA, 1);
  f.deliver(P, M2, CfgA, 2);
  f.deliver(Q, M1, CfgA, 1);
  f.deliver(Q, M2, CfgA, 2);
  f.deliver(R, M2, CfgA, 2);  // only the concurrent M2: no causal violation
  EXPECT_FALSE(f.flags("5"));
}

}  // namespace
}  // namespace evs
