// Model-based property tests for SeqSet: random operation sequences are
// mirrored into a std::set<SeqNum> reference model and every query the
// protocol relies on is cross-checked against it, including the saturating
// and wrap-prone edges at UINT64_MAX that the interval representation must
// get right without ever materializing elements.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/seq_set.hpp"

namespace evs {
namespace {

std::vector<SeqNum> model_missing_in(const std::set<SeqNum>& model, SeqNum lo,
                                     SeqNum hi) {
  std::vector<SeqNum> out;
  for (SeqNum s = lo;; ++s) {
    if (model.count(s) == 0) out.push_back(s);
    if (s == hi) break;
  }
  return out;
}

std::vector<SeqNum> expand(const std::vector<SeqSet::Interval>& ivs) {
  std::vector<SeqNum> out;
  for (const auto& iv : ivs) {
    for (SeqNum s = iv.lo;; ++s) {
      out.push_back(s);
      if (s == iv.hi) break;
    }
  }
  return out;
}

void check_against_model(const SeqSet& set, const std::set<SeqNum>& model,
                         SeqNum universe_hi, Rng& rng) {
  ASSERT_EQ(set.size(), model.size());
  ASSERT_EQ(set.empty(), model.empty());
  ASSERT_EQ(set.to_vector(), std::vector<SeqNum>(model.begin(), model.end()));
  if (!model.empty()) {
    ASSERT_EQ(set.min(), *model.begin());
    ASSERT_EQ(set.max(), *model.rbegin());
  }

  // The invariant the whole representation hangs on: sorted, disjoint,
  // non-adjacent intervals.
  const auto& ivs = set.intervals();
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    ASSERT_LE(ivs[i].lo, ivs[i].hi);
    if (i > 0) {
      ASSERT_GT(ivs[i].lo, ivs[i - 1].hi + 1);
    }
  }

  // Membership at every universe point plus a few random probes outside.
  for (SeqNum s = 0; s <= universe_hi; ++s) {
    ASSERT_EQ(set.contains(s), model.count(s) == 1) << "s=" << s;
  }

  // contiguous_from from random starting points.
  for (int probe = 0; probe < 8; ++probe) {
    const SeqNum from = rng.below(universe_hi + 2);
    SeqNum expect = from;
    while (expect < universe_hi + 2 && model.count(expect + 1) == 1) ++expect;
    ASSERT_EQ(set.contiguous_from(from), expect) << "from=" << from;
  }

  // Range queries against brute force over random windows.
  for (int probe = 0; probe < 8; ++probe) {
    const SeqNum lo = rng.below(universe_hi + 1);
    const SeqNum hi = lo + rng.below(universe_hi + 1 - lo);
    const auto holes = model_missing_in(model, lo, hi);
    ASSERT_EQ(set.missing_in(lo, hi), holes) << "[" << lo << "," << hi << "]";
    ASSERT_EQ(expand(set.missing_intervals(lo, hi)), holes);
    std::vector<SeqNum> present;
    for (SeqNum s = lo;; ++s) {
      if (model.count(s) == 1) present.push_back(s);
      if (s == hi) break;
    }
    ASSERT_EQ(expand(set.intersection_intervals(lo, hi)), present);
  }
}

TEST(SeqSetProperty, RandomOpsMatchReferenceModel) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const SeqNum universe_hi = 96;
    SeqSet set;
    std::set<SeqNum> model;
    for (int op = 0; op < 400; ++op) {
      const double pick = rng.uniform();
      if (pick < 0.40) {
        const SeqNum s = rng.below(universe_hi + 1);
        ASSERT_EQ(set.insert(s), model.insert(s).second);
      } else if (pick < 0.60) {
        const SeqNum lo = rng.below(universe_hi + 1);
        const SeqNum hi = std::min<SeqNum>(lo + rng.below(16), universe_hi);
        set.insert_range(lo, hi);
        for (SeqNum s = lo; s <= hi; ++s) model.insert(s);
      } else if (pick < 0.85) {
        const SeqNum s = rng.below(universe_hi + 1);
        set.erase(s);
        model.erase(s);
      } else {
        // Merge in an independently built set, mirroring recovery's
        // union_received.
        SeqSet other;
        const int n = static_cast<int>(rng.below(6));
        for (int i = 0; i < n; ++i) {
          const SeqNum lo = rng.below(universe_hi + 1);
          const SeqNum hi = std::min<SeqNum>(lo + rng.below(8), universe_hi);
          other.insert_range(lo, hi);
          for (SeqNum s = lo; s <= hi; ++s) model.insert(s);
        }
        set.merge(other);
      }
      if (op % 40 == 0 || op == 399) {
        check_against_model(set, model, universe_hi, rng);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(SeqSetProperty, RoundTripsThroughFromIntervals) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    SeqSet set;
    for (int i = 0; i < 20; ++i) set.insert(rng.below(200));
    ASSERT_EQ(SeqSet::from_intervals(set.intervals()), set);
  }
}

// The edges that used to overflow: ranges touching UINT64_MAX must work
// interval-wise, with size() saturating rather than wrapping, and none of
// the interval queries may try to materialize the elements.
TEST(SeqSetProperty, HandlesUint64MaxBoundaries) {
  const SeqNum top = UINT64_MAX;
  SeqSet set;
  set.insert_range(1, top);
  EXPECT_EQ(set.size(), top);  // exactly 2^64 - 1 elements
  EXPECT_TRUE(set.contains(top));
  EXPECT_EQ(set.max(), top);
  EXPECT_EQ(set.contiguous_from(0), top);
  EXPECT_EQ(set.contiguous_from(top), top);  // [top+1, ...] is vacuous
  EXPECT_TRUE(set.missing_intervals(1, top).empty());

  set.insert(0);
  EXPECT_EQ(set.size(), top);  // 2^64 elements: saturates
  EXPECT_EQ(set.interval_count(), 1u);

  SeqSet sparse;
  sparse.insert(top);
  sparse.insert(top - 2);
  EXPECT_EQ(sparse.contiguous_from(top - 1), top);
  const auto holes = sparse.missing_intervals(top - 3, top);
  ASSERT_EQ(holes.size(), 2u);
  EXPECT_EQ(holes[0], (SeqSet::Interval{top - 3, top - 3}));
  EXPECT_EQ(holes[1], (SeqSet::Interval{top - 1, top - 1}));
  const auto runs = sparse.intersection_intervals(0, top);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[1], (SeqSet::Interval{top, top}));
  sparse.erase(top);
  EXPECT_EQ(sparse.max(), top - 2);
}

// A hostile range endpoint must cost work proportional to the set's interval
// count, never to the range width — this is what keeps a forged token's rtr
// from turning into per-element work.
TEST(SeqSetProperty, HugeRangeQueriesStayIntervalSized) {
  SeqSet set;
  set.insert_range(10, 20);
  set.insert_range(1'000'000, 1'000'010);
  const auto holes = set.missing_intervals(1, UINT64_MAX);
  ASSERT_EQ(holes.size(), 3u);
  EXPECT_EQ(holes[0], (SeqSet::Interval{1, 9}));
  EXPECT_EQ(holes[1], (SeqSet::Interval{21, 999'999}));
  EXPECT_EQ(holes[2], (SeqSet::Interval{1'000'011, UINT64_MAX}));
  const auto runs = set.intersection_intervals(0, UINT64_MAX);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (SeqSet::Interval{10, 20}));
  EXPECT_EQ(runs[1], (SeqSet::Interval{1'000'000, 1'000'010}));
}

}  // namespace
}  // namespace evs
