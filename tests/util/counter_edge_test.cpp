// Sequence-counter edges at the top of the 64-bit range (run with
// `ctest -L util`): the corruption fuzzer throws ring and message counters
// to ~UINT64_MAX, so the container and RNG arithmetic underneath must be
// exact there — no wraparound, no off-by-one at the saturating boundary.
#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"
#include "util/seq_set.hpp"

namespace evs {
namespace {

constexpr SeqNum kTop = std::numeric_limits<SeqNum>::max();

TEST(CounterEdgeTest, SeqSetHoldsTheMaximumValue) {
  SeqSet s;
  EXPECT_TRUE(s.insert(kTop));
  EXPECT_TRUE(s.contains(kTop));
  EXPECT_FALSE(s.insert(kTop));  // already present, no wrap to 0
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.max(), kTop);
  EXPECT_EQ(s.size(), 1u);

  s.erase(kTop);
  EXPECT_TRUE(s.empty());
}

TEST(CounterEdgeTest, SeqSetRangeEndingAtTheMaximum) {
  SeqSet s;
  s.insert_range(kTop - 5, kTop);
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.contains(kTop - 5));
  EXPECT_TRUE(s.contains(kTop));
  EXPECT_FALSE(s.contains(kTop - 6));

  // Adjacent insert coalesces instead of wrapping.
  EXPECT_TRUE(s.insert(kTop - 6));
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.size(), 7u);
}

TEST(CounterEdgeTest, ContiguousFromSaturatesAtTheMaximum) {
  SeqSet s;
  s.insert_range(kTop - 3, kTop);
  // The run [from+1, hi] reaches the top exactly.
  EXPECT_EQ(s.contiguous_from(kTop - 4), kTop);
  EXPECT_EQ(s.contiguous_from(kTop - 1), kTop);
  // from == UINT64_MAX: from+1 would wrap; the scan must saturate, not
  // report a run that starts at 0.
  s.insert(0);
  EXPECT_EQ(s.contiguous_from(kTop), kTop);
}

TEST(CounterEdgeTest, HolesAndIntersectionAtTheTop) {
  SeqSet s;
  s.insert(kTop - 4);
  s.insert(kTop - 2);
  s.insert(kTop);

  const auto holes = s.missing_intervals(kTop - 4, kTop);
  ASSERT_EQ(holes.size(), 2u);
  EXPECT_EQ(holes[0], (SeqSet::Interval{kTop - 3, kTop - 3}));
  EXPECT_EQ(holes[1], (SeqSet::Interval{kTop - 1, kTop - 1}));

  const auto runs = s.intersection_intervals(kTop - 2, kTop);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (SeqSet::Interval{kTop - 2, kTop - 2}));
  EXPECT_EQ(runs[1], (SeqSet::Interval{kTop, kTop}));
}

TEST(CounterEdgeTest, MergeAtTheTopStaysCanonical) {
  SeqSet a, b;
  a.insert_range(kTop - 7, kTop - 4);
  b.insert_range(kTop - 3, kTop);  // adjacent: must coalesce into one run
  a.merge(b);
  EXPECT_EQ(a.interval_count(), 1u);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a.max(), kTop);
  EXPECT_EQ(a, SeqSet::from_intervals({{kTop - 7, kTop}}));
}

// The fuzzer draws corruption magnitudes with between() right at the top of
// the range; the inclusive-bounds arithmetic must not overflow.
TEST(CounterEdgeTest, RngBetweenAtTheTopOfTheRange) {
  Rng rng(42);
  for (int i = 0; i < 1'000; ++i) {
    const std::uint64_t v = rng.between(kTop - 3, kTop);
    EXPECT_GE(v, kTop - 3);  // also implies no wrap to small values
  }
}

}  // namespace
}  // namespace evs
