#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace evs {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, SplitStreamsIndependent) {
  Rng parent(5);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace evs
