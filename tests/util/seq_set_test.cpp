#include "util/seq_set.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

#include <set>

namespace evs {
namespace {

TEST(SeqSetTest, EmptyBasics) {
  SeqSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.contiguous_from(0), 0u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 0u);
}

TEST(SeqSetTest, InsertSingle) {
  SeqSet s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 1u);
}

TEST(SeqSetTest, AdjacentInsertsCoalesce) {
  SeqSet s;
  s.insert(1);
  s.insert(2);
  s.insert(3);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.contiguous_from(0), 3u);
}

TEST(SeqSetTest, GapThenFill) {
  SeqSet s;
  s.insert(1);
  s.insert(3);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_EQ(s.contiguous_from(0), 1u);
  s.insert(2);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.contiguous_from(0), 3u);
}

TEST(SeqSetTest, InsertRangeMergesOverlapping) {
  SeqSet s;
  s.insert_range(1, 5);
  s.insert_range(10, 15);
  s.insert_range(4, 11);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.size(), 15u);
  EXPECT_TRUE(s.contains(7));
}

TEST(SeqSetTest, InsertRangeAdjacency) {
  SeqSet s;
  s.insert_range(1, 5);
  s.insert_range(6, 9);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.max(), 9u);
}

TEST(SeqSetTest, EraseSplitsInterval) {
  SeqSet s;
  s.insert_range(1, 5);
  s.erase(3);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(4));
  EXPECT_EQ(s.size(), 4u);
}

TEST(SeqSetTest, EraseEdges) {
  SeqSet s;
  s.insert_range(1, 3);
  s.erase(1);
  EXPECT_FALSE(s.contains(1));
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.contains(2));
  s.erase(2);
  EXPECT_TRUE(s.empty());
  s.erase(2);  // erasing from empty is a no-op
  EXPECT_TRUE(s.empty());
}

TEST(SeqSetTest, MissingIn) {
  SeqSet s;
  s.insert_range(2, 4);
  s.insert(7);
  auto holes = s.missing_in(1, 8);
  EXPECT_EQ(holes, (std::vector<SeqNum>{1, 5, 6, 8}));
  EXPECT_TRUE(s.missing_in(2, 4).empty());
}

TEST(SeqSetTest, MissingInOutsideRange) {
  SeqSet s;
  s.insert_range(10, 12);
  auto holes = s.missing_in(1, 3);
  EXPECT_EQ(holes, (std::vector<SeqNum>{1, 2, 3}));
}

TEST(SeqSetTest, ContiguousFromMidpoint) {
  SeqSet s;
  s.insert_range(5, 9);
  EXPECT_EQ(s.contiguous_from(4), 9u);
  EXPECT_EQ(s.contiguous_from(6), 9u);
  EXPECT_EQ(s.contiguous_from(9), 9u);
  EXPECT_EQ(s.contiguous_from(10), 10u);
  EXPECT_EQ(s.contiguous_from(0), 0u);
}

TEST(SeqSetTest, MergeUnion) {
  SeqSet a;
  a.insert_range(1, 3);
  a.insert(10);
  SeqSet b;
  b.insert_range(2, 6);
  b.insert(8);
  a.merge(b);
  EXPECT_TRUE(a.contains(1));
  EXPECT_TRUE(a.contains(6));
  EXPECT_TRUE(a.contains(8));
  EXPECT_TRUE(a.contains(10));
  EXPECT_FALSE(a.contains(7));
  EXPECT_FALSE(a.contains(9));
  EXPECT_EQ(a.size(), 8u);  // {1..6, 8, 10}
}

TEST(SeqSetTest, ToVectorOrdered) {
  SeqSet s;
  s.insert(9);
  s.insert(1);
  s.insert_range(4, 5);
  EXPECT_EQ(s.to_vector(), (std::vector<SeqNum>{1, 4, 5, 9}));
}

TEST(SeqSetTest, FromIntervalsRoundTrip) {
  SeqSet s;
  s.insert_range(3, 8);
  s.insert_range(11, 11);
  SeqSet t = SeqSet::from_intervals(s.intervals());
  EXPECT_EQ(s, t);
}

TEST(SeqSetTest, ToStringFormat) {
  SeqSet s;
  s.insert_range(1, 3);
  s.insert(7);
  EXPECT_EQ(s.to_string(), "{1-3,7}");
}

TEST(SeqSetTest, RandomizedAgainstStdSet) {
  Rng rng(1234);
  for (int round = 0; round < 20; ++round) {
    SeqSet s;
    std::set<SeqNum> model;
    for (int i = 0; i < 500; ++i) {
      const SeqNum v = rng.between(1, 80);
      if (rng.chance(0.3)) {
        s.erase(v);
        model.erase(v);
      } else if (rng.chance(0.2)) {
        SeqNum hi = v + rng.below(10);
        s.insert_range(v, hi);
        for (SeqNum x = v; x <= hi; ++x) model.insert(x);
      } else {
        s.insert(v);
        model.insert(v);
      }
    }
    ASSERT_EQ(s.size(), model.size());
    ASSERT_EQ(s.to_vector(), std::vector<SeqNum>(model.begin(), model.end()));
    // contiguous_from agrees with a linear scan.
    for (SeqNum from : {SeqNum{0}, SeqNum{5}, SeqNum{40}}) {
      SeqNum expect = from;
      while (model.count(expect + 1) > 0) ++expect;
      ASSERT_EQ(s.contiguous_from(from), expect);
    }
  }
}

}  // namespace
}  // namespace evs
