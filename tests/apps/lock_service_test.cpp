#include "apps/lock_service.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "testkit/vs_cluster.hpp"

namespace evs {
namespace {

using apps::LockService;

constexpr apps::LockId kLock = 1;

struct LockRig {
  VsCluster cluster;
  std::vector<std::unique_ptr<LockService>> locks;
  std::vector<std::vector<apps::LockId>> grants;

  explicit LockRig(std::size_t n, VsNode::Policy policy = VsNode::Policy::StaticMajority)
      : cluster([&] {
          VsCluster::Options o;
          o.num_processes = n;
          o.policy = policy;
          return o;
        }()) {
    grants.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      locks.push_back(std::make_unique<LockService>(cluster.node(i)));
      auto* g = &grants[i];
      locks[i]->set_grant_handler([g](apps::LockId l) { g->push_back(l); });
    }
  }
};

TEST(LockServiceTest, FirstRequesterGetsTheLock) {
  LockRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(6'000'000));
  EXPECT_TRUE(rig.locks[0]->acquire(kLock));
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  EXPECT_TRUE(rig.locks[0]->holds(kLock));
  // Everyone agrees on the holder.
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(rig.locks[i]->holder(kLock).has_value());
    EXPECT_EQ(*rig.locks[i]->holder(kLock), rig.cluster.node(0u).vs_identity());
  }
  EXPECT_EQ(rig.grants[0], std::vector<apps::LockId>{kLock});
}

TEST(LockServiceTest, FifoHandoffOnRelease) {
  LockRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(6'000'000));
  rig.locks[0]->acquire(kLock);
  rig.locks[1]->acquire(kLock);
  rig.locks[2]->acquire(kLock);
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  // Three concurrent requests queue in agreed-delivery order. Which request
  // the token stamped first depends on the ring phase at send time, so
  // follow the grant chain instead of hard-coding it: each release must hand
  // the lock to exactly one new holder, every node agreeing, until each
  // requester has held it once.
  EXPECT_EQ(rig.locks[1]->queue_length(kLock), 3u);
  std::vector<bool> held(3, false);
  for (int round = 0; round < 3; ++round) {
    std::size_t holder = 3;
    for (std::size_t i = 0; i < 3; ++i) {
      if (rig.locks[i]->holds(kLock)) {
        ASSERT_EQ(holder, 3u) << "two holders in round " << round;
        holder = i;
      }
    }
    ASSERT_LT(holder, 3u) << "no holder in round " << round;
    EXPECT_FALSE(held[holder]) << "lock returned to a released requester";
    held[holder] = true;
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(rig.locks[i]->holder(kLock).has_value());
      EXPECT_EQ(*rig.locks[i]->holder(kLock),
                rig.cluster.node(holder).vs_identity());
    }
    rig.locks[holder]->release(kLock);
    ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
    EXPECT_FALSE(rig.locks[holder]->holds(kLock));
  }
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(LockServiceTest, MutualExclusionAlways) {
  LockRig rig(4);
  ASSERT_TRUE(rig.cluster.await_stable(6'000'000));
  for (std::size_t i = 0; i < 4; ++i) rig.locks[i]->acquire(kLock);
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  int holders = 0;
  for (std::size_t i = 0; i < 4; ++i) holders += rig.locks[i]->holds(kLock) ? 1 : 0;
  EXPECT_EQ(holders, 1);
}

TEST(LockServiceTest, HolderCrashRevokesLock) {
  LockRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(6'000'000));
  rig.locks[0]->acquire(kLock);
  rig.locks[1]->acquire(kLock);
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  // Agreed order picked one of the two concurrent requesters; the other is
  // first in the wait queue.
  const std::size_t holder = rig.locks[0]->holds(kLock) ? 0u : 1u;
  const std::size_t waiter = 1u - holder;
  ASSERT_TRUE(rig.locks[holder]->holds(kLock));

  rig.cluster.crash(rig.cluster.pid(holder));
  ASSERT_TRUE(rig.cluster.await_stable(6'000'000));
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  // The view change revoked the dead holder's lock and granted the waiter.
  EXPECT_TRUE(rig.locks[waiter]->holds(kLock));
  EXPECT_GT(rig.locks[waiter]->stats().revoked_on_failure, 0u);
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(LockServiceTest, MinorityCannotAcquire) {
  LockRig rig(5);
  ASSERT_TRUE(rig.cluster.await_stable(6'000'000));
  rig.cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(rig.cluster.await_stable(6'000'000));
  EXPECT_FALSE(rig.locks[3]->acquire(kLock));  // blocked: rejected immediately
  EXPECT_TRUE(rig.locks[0]->acquire(kLock));   // primary side proceeds
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  EXPECT_TRUE(rig.locks[0]->holds(kLock));
  EXPECT_GT(rig.locks[3]->stats().rejected_blocked, 0u);
}

TEST(LockServiceTest, PartitionedHolderLosesLockToPrimary) {
  LockRig rig(5);
  ASSERT_TRUE(rig.cluster.await_stable(6'000'000));
  rig.locks[4]->acquire(kLock);
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  rig.locks[0]->acquire(kLock);
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  ASSERT_TRUE(rig.locks[4]->holds(kLock));
  // The holder is cut off into a minority: the primary's view change
  // removes it and hands the lock to the next waiter.
  rig.cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(rig.cluster.await_stable(6'000'000));
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  EXPECT_TRUE(rig.locks[0]->holds(kLock));
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(LockServiceTest, JoinerLearnsLockTableViaStateTransfer) {
  LockRig rig(5);
  ASSERT_TRUE(rig.cluster.await_stable(6'000'000));
  rig.locks[1]->acquire(kLock);
  rig.locks[2]->acquire(kLock);
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));

  // Isolate P5 (it leaves the primary), keep the lock busy, then remerge.
  rig.cluster.partition({{0, 1, 2, 3}, {4}});
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  rig.cluster.heal();
  ASSERT_TRUE(rig.cluster.await_quiesce(8'000'000));

  // The rejoined member adopted the snapshot: it knows the holder and the
  // queue without having observed the original acquires.
  ASSERT_TRUE(rig.locks[4]->synchronized());
  ASSERT_TRUE(rig.locks[4]->holder(kLock).has_value());
  EXPECT_EQ(*rig.locks[4]->holder(kLock), rig.cluster.node(1u).vs_identity());
  EXPECT_EQ(rig.locks[4]->queue_length(kLock), 2u);
  EXPECT_GT(rig.locks[4]->stats().snapshots_adopted, 0u);

  // And it can operate on the transferred state.
  rig.locks[1]->release(kLock);
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  EXPECT_EQ(*rig.locks[4]->holder(kLock), rig.cluster.node(2u).vs_identity());
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(LockServiceTest, IndependentLocksDoNotInterfere) {
  LockRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(6'000'000));
  rig.locks[0]->acquire(1);
  rig.locks[1]->acquire(2);
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  EXPECT_TRUE(rig.locks[0]->holds(1));
  EXPECT_TRUE(rig.locks[1]->holds(2));
  EXPECT_FALSE(rig.locks[0]->holds(2));
}

}  // namespace
}  // namespace evs
