// Application-level convergence properties under randomized fault
// schedules: whatever the partition/crash history, once the network heals
// and traffic drains, replicas agree.
#include <gtest/gtest.h>

#include <memory>

#include "apps/airline.hpp"
#include "apps/atm.hpp"
#include "testkit/cluster.hpp"
#include "util/rng.hpp"

namespace evs {
namespace {

using apps::AirlineAgent;
using apps::AtmAgent;

class AirlineChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AirlineChurnTest, LedgersConvergeAfterAnySchedule) {
  const std::uint64_t seed = GetParam();
  Cluster::Options opts;
  opts.num_processes = 4;
  opts.seed = seed;
  Cluster cluster(opts);
  std::vector<std::unique_ptr<AirlineAgent>> offices;
  for (std::size_t i = 0; i < 4; ++i) {
    offices.push_back(std::make_unique<AirlineAgent>(
        cluster.node(i), AirlineAgent::Options{100'000, 4, 1.0}));
  }
  Rng rng(seed * 3 + 1);
  ASSERT_TRUE(cluster.await_stable(5'000'000));

  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 10; ++i) {
      offices[rng.below(4)]->request_sale(static_cast<std::uint32_t>(1 + rng.below(3)));
    }
    if (rng.chance(0.5)) {
      cluster.partition({{0, 1}, {2, 3}});
    } else {
      cluster.heal();
    }
    cluster.run_for(80'000);
  }
  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(30'000'000));
  // One more sync round so late counters propagate (state sync happens on
  // configuration changes; after the last merge all replicas exchanged).
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(offices[i]->counters(), offices[0]->counters()) << "office " << i;
    EXPECT_EQ(offices[i]->sold(), offices[0]->sold());
  }
  EXPECT_EQ(cluster.check_report(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, AirlineChurnTest, ::testing::Range<std::uint64_t>(1, 7));

class AtmChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AtmChurnTest, BalancesConvergeAfterAnySchedule) {
  const std::uint64_t seed = GetParam();
  Cluster::Options opts;
  opts.num_processes = 4;
  opts.seed = seed;
  Cluster cluster(opts);
  std::vector<std::unique_ptr<AtmAgent>> atms;
  for (std::size_t i = 0; i < 4; ++i) {
    atms.push_back(std::make_unique<AtmAgent>(cluster.node(i),
                                              cluster.store(cluster.pid(i)),
                                              AtmAgent::Options{4, 1'000'000}));
  }
  Rng rng(seed * 5 + 2);
  ASSERT_TRUE(cluster.await_stable(5'000'000));
  atms[0]->open_account(1, 1'000'000'000);
  ASSERT_TRUE(cluster.await_quiesce(10'000'000));

  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 8; ++i) {
      const std::size_t who = rng.below(4);
      if (rng.chance(0.5)) {
        atms[who]->deposit(1, static_cast<std::int64_t>(rng.below(50)));
      } else {
        atms[who]->withdraw(1, static_cast<std::int64_t>(rng.below(50)));
      }
    }
    if (rng.chance(0.5)) {
      cluster.partition({{0, 1, 2}, {3}});
    } else {
      cluster.heal();
    }
    cluster.run_for(100'000);
  }
  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(30'000'000));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(atms[i]->balance(1), atms[0]->balance(1)) << "atm " << i;
    EXPECT_EQ(atms[i]->unposted_count(), 0u) << "atm " << i;
  }
  EXPECT_EQ(cluster.check_report(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtmChurnTest, ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace evs
