// Tests for the three motivating applications of Section 1: continued,
// consistent operation through partitions is the behaviour the paper
// motivates extended virtual synchrony with.
#include <gtest/gtest.h>

#include <memory>

#include "apps/airline.hpp"
#include "apps/atm.hpp"
#include "apps/radar.hpp"
#include "testkit/cluster.hpp"

namespace evs {
namespace {

using apps::AirlineAgent;
using apps::AtmAgent;
using apps::RadarAgent;

// --- airline ----------------------------------------------------------------

struct AirlineRig {
  Cluster cluster;
  std::vector<std::unique_ptr<AirlineAgent>> agents;

  explicit AirlineRig(std::size_t n, std::uint32_t capacity, double risk = 1.0)
      : cluster(Cluster::Options{.num_processes = n}) {
    for (std::size_t i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<AirlineAgent>(
          cluster.node(i), AirlineAgent::Options{capacity, n, risk}));
    }
  }
};

TEST(AirlineTest, SellsUpToCapacityWhenConnected) {
  AirlineRig rig(3, 10);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  for (int i = 0; i < 12; ++i) rig.agents[static_cast<std::size_t>(i % 3)]->request_sale(1);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  for (const auto& agent : rig.agents) {
    EXPECT_EQ(agent->sold(), 10u);
    EXPECT_FALSE(agent->overbooked());
  }
  EXPECT_GT(rig.agents[0]->stats().rejected, 0u);
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(AirlineTest, ReplicasAgreeOnEveryOutcome) {
  AirlineRig rig(3, 50);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  for (int i = 0; i < 30; ++i) {
    rig.agents[static_cast<std::size_t>(i % 3)]->request_sale(1 + i % 4);
  }
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  EXPECT_EQ(rig.agents[0]->outcomes(), rig.agents[1]->outcomes());
  EXPECT_EQ(rig.agents[1]->outcomes(), rig.agents[2]->outcomes());
}

TEST(AirlineTest, PartitionedComponentsKeepSellingWithinQuota) {
  AirlineRig rig(4, 100);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.cluster.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  // Each half may sell half of the 100 free seats.
  EXPECT_EQ(rig.agents[0]->partition_allowance(), 50u);
  EXPECT_EQ(rig.agents[2]->partition_allowance(), 50u);
  for (int i = 0; i < 60; ++i) {
    rig.agents[0]->request_sale(1);
    rig.agents[2]->request_sale(1);
  }
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  EXPECT_EQ(rig.agents[0]->sold(), 50u);
  EXPECT_EQ(rig.agents[2]->sold(), 50u);
  EXPECT_GT(rig.agents[0]->stats().sold_while_partitioned, 0u);
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(AirlineTest, MergeReconcilesLedgersByCounterMax) {
  AirlineRig rig(4, 100);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.cluster.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  for (int i = 0; i < 20; ++i) {
    rig.agents[0]->request_sale(1);
    rig.agents[3]->request_sale(1);
  }
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  rig.cluster.heal();
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  // After the merge every replica holds the union of both components' sales.
  for (const auto& agent : rig.agents) {
    EXPECT_EQ(agent->sold(), 40u);
    EXPECT_EQ(agent->counters(), rig.agents[0]->counters());
  }
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(AirlineTest, AggressiveRiskFactorCanOverbook) {
  // With risk_factor 1.0 and proportional quotas, the halves sell exactly
  // capacity. A risk factor above 1 deliberately overbooks — the airline's
  // gamble — and the merge exposes it.
  AirlineRig rig(4, 40, /*risk=*/1.5);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.cluster.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  for (int i = 0; i < 40; ++i) {
    rig.agents[0]->request_sale(1);
    rig.agents[2]->request_sale(1);
  }
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  rig.cluster.heal();
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  EXPECT_TRUE(rig.agents[0]->overbooked());
  EXPECT_EQ(rig.agents[0]->sold(), 60u);  // 2 * (20 free/2 * 1.5)
  EXPECT_EQ(rig.cluster.check_report(), "");
}

// --- ATM --------------------------------------------------------------------

struct AtmRig {
  Cluster cluster;
  std::vector<std::unique_ptr<AtmAgent>> agents;

  explicit AtmRig(std::size_t n, std::int64_t offline_limit = 200)
      : cluster(Cluster::Options{.num_processes = n}) {
    for (std::size_t i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<AtmAgent>(
          cluster.node(i), cluster.store(cluster.pid(i)),
          AtmAgent::Options{n, offline_limit}));
    }
  }
  void reattach(std::size_t i) {
    agents[i] = std::make_unique<AtmAgent>(
        cluster.node(i), cluster.store(cluster.pid(i)),
        agents[i] ? AtmAgent::Options{cluster.size(), 200} : AtmAgent::Options{});
  }
};

TEST(AtmTest, DepositsAndWithdrawalsReplicate) {
  AtmRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.agents[0]->open_account(1, 1000);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  rig.agents[1]->deposit(1, 500);
  rig.agents[2]->withdraw(1, 300);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  for (const auto& agent : rig.agents) EXPECT_EQ(agent->balance(1), 1200);
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(AtmTest, ConnectedWithdrawalsCheckBalance) {
  AtmRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.agents[0]->open_account(1, 100);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  auto id = rig.agents[1]->withdraw(1, 500);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  EXPECT_EQ(rig.agents[0]->balance(1), 100);
  EXPECT_FALSE(rig.agents[1]->outcomes().at(id));
  EXPECT_GT(rig.agents[1]->stats().denied, 0u);
}

TEST(AtmTest, OfflineWithdrawalsUseLimitAndPostAfterMerge) {
  AtmRig rig(4, /*offline_limit=*/200);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.agents[0]->open_account(1, 1000);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));

  rig.cluster.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  // Offline: authorized against the limit, not the balance.
  rig.agents[0]->withdraw(1, 150);
  auto too_big = rig.agents[2]->withdraw(1, 250);  // above offline limit
  rig.agents[3]->withdraw(1, 100);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  EXPECT_FALSE(rig.agents[2]->outcomes().at(too_big));
  EXPECT_GT(rig.agents[0]->unposted_count(), 0u);
  // The components see different balances: consistent but incomplete
  // histories (Section 1).
  EXPECT_EQ(rig.agents[0]->balance(1), 850);
  EXPECT_EQ(rig.agents[2]->balance(1), 900);

  rig.cluster.heal();
  ASSERT_TRUE(rig.cluster.await_quiesce(8'000'000));
  // Delayed posting reconciles both components' withdrawals everywhere.
  for (const auto& agent : rig.agents) {
    EXPECT_EQ(agent->balance(1), 750) << "1000 - 150 - 100";
    EXPECT_EQ(agent->unposted_count(), 0u);
  }
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(AtmTest, CumulativeOfflineWithdrawalsCanOverdraw) {
  AtmRig rig(4, /*offline_limit=*/200);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.agents[0]->open_account(1, 300);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  rig.cluster.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.agents[0]->withdraw(1, 200);
  rig.agents[2]->withdraw(1, 200);  // both sides within the offline limit
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  rig.cluster.heal();
  ASSERT_TRUE(rig.cluster.await_quiesce(8'000'000));
  for (const auto& agent : rig.agents) {
    EXPECT_EQ(agent->balance(1), -100);
    EXPECT_TRUE(agent->overdrawn(1));
  }
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(AtmTest, DatabaseSurvivesCrash) {
  AtmRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.agents[0]->open_account(7, 400);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  rig.cluster.crash(rig.cluster.pid(2));
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.cluster.recover(rig.cluster.pid(2));
  rig.agents[2] = std::make_unique<AtmAgent>(rig.cluster.node(2u),
                                             rig.cluster.store(rig.cluster.pid(2)),
                                             AtmAgent::Options{3, 200});
  ASSERT_TRUE(rig.cluster.await_stable(4'000'000));
  EXPECT_EQ(rig.agents[2]->balance(7), 400);  // database intact across the crash
  EXPECT_EQ(rig.cluster.check_report(), "");
}

// --- radar ------------------------------------------------------------------

struct RadarRig {
  Cluster cluster;
  std::vector<std::unique_ptr<RadarAgent>> agents;

  explicit RadarRig(std::size_t n) : cluster(Cluster::Options{.num_processes = n}) {
    for (std::size_t i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<RadarAgent>(cluster.node(i)));
    }
  }
};

TEST(RadarTest, DisplaysShowBestQualitySensor) {
  RadarRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.agents[0]->publish(1, 1, 0.5);
  rig.agents[1]->publish(2, 2, 0.9);
  rig.agents[2]->publish(3, 3, 0.2);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  for (const auto& agent : rig.agents) {
    auto best = agent->best();
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->sensor, rig.cluster.pid(1));
    EXPECT_DOUBLE_EQ(best->quality, 0.9);
  }
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(RadarTest, PartitionFallsBackToConnectedSensors) {
  RadarRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.agents[0]->publish(1, 1, 0.5);
  rig.agents[1]->publish(2, 2, 0.9);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  // The best sensor (index 1) becomes unreachable from index 0.
  rig.cluster.partition({{0, 2}, {1}});
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.agents[2]->publish(3, 3, 0.3);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  auto best = rig.agents[0]->best();
  ASSERT_TRUE(best.has_value());
  // Lower quality than the lost sensor, but live — better than nothing.
  EXPECT_EQ(best->sensor, rig.cluster.pid(0));
  EXPECT_DOUBLE_EQ(best->quality, 0.5);
  EXPECT_GT(rig.agents[0]->stats().pruned_sensors, 0u);
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(RadarTest, RemergeRestoresBestSensor) {
  RadarRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.cluster.partition({{0, 2}, {1}});
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.agents[0]->publish(1, 1, 0.5);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  rig.cluster.heal();
  ASSERT_TRUE(rig.cluster.await_stable(4'000'000));
  rig.agents[1]->publish(2, 2, 0.9);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  auto best = rig.agents[0]->best();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->sensor, rig.cluster.pid(1));
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(RadarTest, StaleReadingsDoNotOvertakeNewer) {
  RadarRig rig(2);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.agents[0]->publish(1, 1, 0.5);
  rig.agents[0]->publish(5, 5, 0.7);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  const auto& r = rig.agents[1]->readings().at(rig.cluster.pid(0));
  EXPECT_DOUBLE_EQ(r.x, 5);
  EXPECT_EQ(r.sequence, 2u);
}

}  // namespace
}  // namespace evs
