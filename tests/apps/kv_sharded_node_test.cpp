// KvShardedNode behaviour at the API boundary: put_batch's per-shard
// partial-failure contract, the degraded-read escape hatch during a
// minority partition, and the scalar-delivery-path regression — writes in
// flight across a configuration change are delivered one-at-a-time through
// recovery configurations, and hooking only the batch path would silently
// lose them (the bug class the datagram-batching PR fixed).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "testkit/kv_cluster.hpp"

namespace evs {
namespace {

using shard::ShardId;

/// A key routed to `shard` (deterministic: scans a counter namespace).
std::string key_on(const shard::ShardRouter& router, ShardId shard, int salt) {
  for (int i = 0;; ++i) {
    std::string k = "k" + std::to_string(salt) + "-" + std::to_string(i);
    if (router.shard_of_key(k) == shard) return k;
  }
}

TEST(KvShardedNodeTest, PutBatchReportsPerShardOutcomes) {
  KvCluster::Options o;
  o.num_processes = 5;
  o.router.num_shards = 4;
  o.router.replication = 3;
  o.watchdog_window_us = 2'000'000;
  KvCluster kc(o);
  ASSERT_TRUE(kc.await_quiesce());

  // Find a process that replicates one shard but not another — guaranteed
  // to exist with 4 groups of 3 replicas over 5 processes.
  std::size_t who = kc.size();
  ShardId held = 0, missing = 0;
  for (std::size_t i = 0; i < kc.size() && who == kc.size(); ++i) {
    for (ShardId a = 0; a < kc.num_shards(); ++a) {
      if (!kc.router().is_replica(a, kc.pid(i))) continue;
      for (ShardId b = 0; b < kc.num_shards(); ++b) {
        if (kc.router().is_replica(b, kc.pid(i))) continue;
        who = i;
        held = a;
        missing = b;
        break;
      }
      if (who != kc.size()) break;
    }
  }
  ASSERT_LT(who, kc.size()) << "router maps every process to every shard";

  const std::string good1 = key_on(kc.router(), held, 1);
  const std::string good2 = key_on(kc.router(), held, 2);
  const std::string bad = key_on(kc.router(), missing, 3);
  const auto result = kc.agent(who).put_batch(
      {{good1, "a"}, {bad, "x"}, {good2, "b"}});

  // Two shard groups: the held one accepted (2 ops), the missing one
  // refused — and the result names which is which.
  ASSERT_EQ(result.shards.size(), 2u);
  EXPECT_FALSE(result.all_ok());
  EXPECT_EQ(result.first_error().code(), Errc::invalid_argument);
  for (const auto& out : result.shards) {
    if (out.shard == held) {
      EXPECT_EQ(out.ops, 2u);
      EXPECT_TRUE(out.status.ok()) << out.status.message();
    } else {
      EXPECT_EQ(out.shard, missing);
      EXPECT_EQ(out.ops, 1u);
      EXPECT_EQ(out.status.code(), Errc::invalid_argument);
    }
  }

  // The accepted group really was accepted: it converges on its replicas.
  ASSERT_TRUE(kc.await_quiesce());
  for (const ProcessId p : kc.router().replicas(held)) {
    auto got = kc.agent(p).get(good1);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, "a");
  }
  // The refused key was never applied anywhere.
  for (const ProcessId p : kc.router().replicas(missing)) {
    auto got = kc.agent(p).get(bad);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(got->has_value());
  }
  EXPECT_EQ(kc.check_report(), "");
}

TEST(KvShardedNodeTest, GetStaleServesMinorityReplica) {
  KvCluster::Options o;
  o.num_processes = 4;
  o.router.num_shards = 1;
  o.router.replication = 3;
  o.watchdog_window_us = 2'000'000;
  KvCluster kc(o);
  ASSERT_TRUE(kc.await_quiesce());

  const ShardId s = 0;
  const std::string k = key_on(kc.router(), s, 1);
  apps::KvShardedNode* w = kc.writer(s);
  ASSERT_NE(w, nullptr);
  ASSERT_TRUE(w->put(k, "committed").ok());
  ASSERT_TRUE(kc.await_quiesce());

  const std::size_t lone = kc.router().replicas(s).at(2).value - 1;
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < kc.size(); ++i) {
    if (i != lone) rest.push_back(i);
  }
  kc.partition_shard(s, {{lone}, rest});
  ASSERT_TRUE(kc.await([&] { return !kc.agent(lone).in_primary(s); },
                       4'000'000));

  // Serving read refused in the minority; the escape hatch still answers
  // from the local store and is counted.
  EXPECT_EQ(kc.agent(lone).get(k).code(), Errc::blocked_not_primary);
  auto stale = kc.agent(lone).get_stale(k);
  ASSERT_TRUE(stale.ok());
  ASSERT_TRUE(stale->has_value());
  EXPECT_EQ(**stale, "committed");
  EXPECT_GE(kc.agent(lone).stats().stale_reads, 1u);
  EXPECT_GE(kc.agent(lone).stats().reads_blocked, 1u);

  // A non-replica gets invalid_argument even from get_stale.
  for (std::size_t i = 0; i < kc.size(); ++i) {
    if (kc.router().is_replica(s, kc.pid(i))) continue;
    EXPECT_EQ(kc.agent(i).get_stale(k).code(), Errc::invalid_argument);
  }
}

// Regression for the recovery-time delivery path: ops still in flight when
// a partition hits are delivered through transitional/recovery
// configurations ONE AT A TIME (the scalar handler), not via the batch
// path. If the shard layer hooked only batch delivery, these writes would
// vanish at the surviving majority.
TEST(KvShardedNodeTest, InFlightWritesSurvivePartitionViaScalarPath) {
  KvCluster::Options o;
  o.num_processes = 3;
  o.router.num_shards = 1;
  o.router.replication = 3;
  o.watchdog_window_us = 2'000'000;
  KvCluster kc(o);
  ASSERT_TRUE(kc.await_quiesce());

  const ShardId s = 0;
  std::map<std::string, std::string> expected;
  // Submit at a replica that stays in the majority, then cut the network
  // before a single one is delivered: every op rides the membership
  // change's recovery machinery.
  for (int i = 0; i < 20; ++i) {
    const std::string k = "inflight-" + std::to_string(i);
    ASSERT_TRUE(kc.agent(std::size_t{1}).put(k, "v" + std::to_string(i)).ok());
    expected[k] = "v" + std::to_string(i);
  }
  kc.partition_shard(s, {{0}, {1, 2}});

  // The majority notices the partition (token loss -> membership change),
  // walks recovery, and must deliver and apply every in-flight write.
  const auto majority_has_all = [&] {
    for (const auto& [k, v] : expected) {
      for (const std::size_t i : {std::size_t{1}, std::size_t{2}}) {
        auto got = kc.agent(i).get(k);
        if (!got.ok() || !got->has_value() || **got != v) return false;
      }
    }
    return true;
  };
  ASSERT_TRUE(kc.await(majority_has_all, 8'000'000));

  // After the heal, state transfer hands them to the minority replica too.
  kc.heal_shard(s);
  ASSERT_TRUE(kc.await_quiesce(12'000'000));
  for (const auto& [k, v] : expected) {
    auto got = kc.agent(std::size_t{0}).get(k);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value()) << "key " << k;
    EXPECT_EQ(**got, v);
  }
  EXPECT_TRUE(kc.replicas_agree(s)) << kc.divergence(s);
  EXPECT_EQ(kc.check_report(), "");
}

}  // namespace
}  // namespace evs
