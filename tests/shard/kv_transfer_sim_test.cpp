// State-transfer and anti-entropy integration over the sim harness: a
// re-merged minority replica catches up a four-digit write backlog and
// re-opens its read gate; transfers survive donor crash, re-partition,
// re-sealed chunk corruption and flapping links with bounded retries; a
// full-group app restart elects the most-caught-up replica via ServeClaim
// instead of losing data; and background anti-entropy detects and repairs
// silently injected divergence. Every run must stay spec-clean — transfer
// traffic rides the shard ring as ordinary SAFE messages and may not
// perturb the EVS guarantees it is built on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "sim/faults.hpp"
#include "testkit/kv_cluster.hpp"

namespace evs {
namespace {

using shard::ShardId;

KvCluster::Options base_opts(std::size_t processes, std::uint32_t shards = 1,
                             std::uint32_t replication = 3) {
  KvCluster::Options o;
  o.num_processes = processes;
  o.router.num_shards = shards;
  o.router.replication = replication;
  o.watchdog_window_us = 2'000'000;
  return o;
}

/// Process index (0-based) of the nth replica of `shard`.
std::size_t replica_index(const shard::ShardRouter& router, ShardId shard,
                          std::size_t nth = 0) {
  return router.replicas(shard).at(nth).value - 1;
}

/// All process indexes except `out`.
std::vector<std::size_t> everyone_but(const KvCluster& kc, std::size_t out) {
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < kc.size(); ++i) {
    if (i != out) rest.push_back(i);
  }
  return rest;
}

/// Write `count` keys through whichever replica currently accepts writes,
/// pacing the ring so max_pending_sends backpressure stays transient.
void write_backlog(KvCluster& kc, ShardId shard, const std::string& prefix,
                   int count, std::map<std::string, std::string>& expected) {
  for (int i = 0; i < count; ++i) {
    const std::string k = prefix + std::to_string(i);
    const std::string v = "v-" + k;
    apps::KvShardedNode* w = kc.writer(shard);
    ASSERT_NE(w, nullptr) << "no writer at op " << i;
    Status st = w->put(k, v);
    for (int spin = 0; st.code() == Errc::backpressure && spin < 200; ++spin) {
      kc.run_for(10'000);
      w = kc.writer(shard);
      ASSERT_NE(w, nullptr);
      st = w->put(k, v);
    }
    ASSERT_TRUE(st.ok()) << "op " << i << ": " << st.message();
    expected[k] = v;
    if (i % 50 == 49) kc.run_for(20'000);
  }
}

/// Every expected key readable at every current replica of `shard`.
void expect_all_values(KvCluster& kc, ShardId shard,
                       const std::map<std::string, std::string>& expected) {
  for (const ProcessId p : kc.router().replicas(shard)) {
    apps::KvShardedNode& a = kc.agent(p);
    for (const auto& [k, v] : expected) {
      auto got = a.get(k);
      ASSERT_TRUE(got.ok()) << "pid " << p.value << " key " << k << ": "
                            << got.status().message();
      ASSERT_TRUE(got->has_value()) << "pid " << p.value << " key " << k;
      EXPECT_EQ(**got, v) << "pid " << p.value << " key " << k;
    }
  }
}

// The acceptance scenario: a minority replica misses >= 1k committed writes
// across a partition, then catches up through chunked state transfer — and
// while it reconciles, its read gate refuses with catching_up while
// get_stale still serves.
TEST(KvTransferSimTest, CatchUp1kWritesAfterRemerge) {
  KvCluster kc(base_opts(4));
  ASSERT_TRUE(kc.await_quiesce());

  const ShardId s = 0;
  std::map<std::string, std::string> expected;
  // A pre-partition key the lone replica can serve stale reads from.
  write_backlog(kc, s, "pre-", 1, expected);
  ASSERT_TRUE(kc.await_quiesce());

  const std::size_t lone = replica_index(kc.router(), s, 2);
  kc.partition_shard(s, {{lone}, everyone_but(kc, lone)});
  ASSERT_TRUE(kc.await([&] { return kc.shard_cluster(s).stable(); },
                       4'000'000));

  write_backlog(kc, s, "miss-", 1000, expected);
  ASSERT_GE(expected.size(), 1001u);

  kc.heal_shard(s);
  // The moment the merged configuration lands, the rejoiner is in primary
  // but has not reconciled yet: gets bounce with catching_up, get_stale
  // serves the pre-partition value regardless.
  ASSERT_TRUE(kc.await([&] { return kc.agent(lone).in_primary(s); },
                       4'000'000, /*step_us=*/100));
  ASSERT_TRUE(kc.agent(lone).catching_up(s));
  EXPECT_EQ(kc.agent(lone).get("pre-0").code(), Errc::catching_up);
  auto stale = kc.agent(lone).get_stale("pre-0");
  ASSERT_TRUE(stale.ok());
  ASSERT_TRUE(stale->has_value());
  EXPECT_EQ(**stale, "v-pre-0");

  ASSERT_TRUE(kc.await_quiesce(12'000'000));
  EXPECT_TRUE(kc.agent(lone).serving(s));
  expect_all_values(kc, s, expected);
  EXPECT_TRUE(kc.replicas_agree(s)) << kc.divergence(s);

  const auto agg = kc.aggregate_metrics();
  EXPECT_GE(agg.counter_value("kv.transfer.sessions"), 1u);
  EXPECT_GE(agg.counter_value("kv.transfer.completed"), 1u);
  EXPECT_GT(agg.counter_value("kv.transfer.bytes_sent"), 0u);
  EXPECT_GE(agg.counter_value("kv.reads_catching_up"), 1u);
  EXPECT_GE(agg.counter_value("kv.stale_reads"), 1u);
  EXPECT_EQ(kc.check_report(), "");
}

// Crash the donor (lowest-id serving replica) while the rejoiner is still
// reconciling: the attempt aborts, the joiner retries against the post-
// remap group, and every surviving replica still converges.
TEST(KvTransferSimTest, DonorCrashMidTransferRecovers) {
  KvCluster kc(base_opts(4));
  ASSERT_TRUE(kc.await_quiesce());

  const ShardId s = 0;
  const std::size_t lone = replica_index(kc.router(), s, 2);
  std::map<std::string, std::string> expected;
  kc.partition_shard(s, {{lone}, everyone_but(kc, lone)});
  ASSERT_TRUE(kc.await([&] { return kc.shard_cluster(s).stable(); },
                       4'000'000));
  write_backlog(kc, s, "w-", 400, expected);

  // The donor-to-be: the lowest-id replica that stayed in the majority.
  ProcessId donor{0};
  for (const ProcessId p : kc.router().replicas(s)) {
    if (p.value - 1 == lone) continue;
    if (donor.value == 0 || p.value < donor.value) donor = p;
  }

  kc.heal_shard(s);
  ASSERT_TRUE(kc.await([&] { return kc.agent(lone).in_primary(s); },
                       4'000'000, /*step_us=*/100));
  // Strike while the rejoiner is still mid-catch-up.
  ASSERT_TRUE(kc.agent(lone).catching_up(s));
  ASSERT_TRUE(kc.crash(donor).ok());
  ASSERT_TRUE(kc.await_quiesce(12'000'000));
  EXPECT_TRUE(kc.replicas_agree(s)) << kc.divergence(s);
  expect_all_values(kc, s, expected);

  ASSERT_TRUE(kc.recover(donor).ok());
  ASSERT_TRUE(kc.await_quiesce(12'000'000));
  EXPECT_TRUE(kc.replicas_agree(s)) << kc.divergence(s);
  expect_all_values(kc, s, expected);
  EXPECT_EQ(kc.check_report(), "");
}

// Re-partition while a transfer is in flight: the joiner's attempt dies
// with the configuration, and the second heal completes the catch-up.
TEST(KvTransferSimTest, RepartitionMidTransferRestartsCleanly) {
  KvCluster kc(base_opts(4));
  ASSERT_TRUE(kc.await_quiesce());

  const ShardId s = 0;
  const std::size_t lone = replica_index(kc.router(), s, 2);
  std::map<std::string, std::string> expected;
  kc.partition_shard(s, {{lone}, everyone_but(kc, lone)});
  ASSERT_TRUE(kc.await([&] { return kc.shard_cluster(s).stable(); },
                       4'000'000));
  write_backlog(kc, s, "w-", 600, expected);

  kc.heal_shard(s);
  ASSERT_TRUE(kc.await([&] { return kc.agent(lone).in_primary(s); },
                       4'000'000, /*step_us=*/100));
  ASSERT_TRUE(kc.agent(lone).catching_up(s));
  // Yank the link again before the stream can finish, then heal for good.
  kc.partition_shard(s, {{lone}, everyone_but(kc, lone)});
  kc.run_for(1'000'000);
  kc.heal_shard(s);

  ASSERT_TRUE(kc.await_quiesce(12'000'000));
  EXPECT_TRUE(kc.agent(lone).serving(s));
  expect_all_values(kc, s, expected);
  EXPECT_TRUE(kc.replicas_agree(s)) << kc.divergence(s);
  EXPECT_EQ(kc.check_report(), "");
}

// Re-sealed corruption: byte flips in application payload with the frame
// CRC recomputed, so the wire layer accepts the bytes. Only the chunk's
// own CRC trailer can catch the damage; the transfer must reject the torn
// chunks, retry with backoff, and converge once the fault window closes.
TEST(KvTransferSimTest, CorruptSealedChunksAreRejectedAndRetried) {
  KvCluster kc(base_opts(4));
  ASSERT_TRUE(kc.await_quiesce());

  const ShardId s = 0;
  const std::size_t lone = replica_index(kc.router(), s, 2);
  std::map<std::string, std::string> expected;
  kc.partition_shard(s, {{lone}, everyone_but(kc, lone)});
  ASSERT_TRUE(kc.await([&] { return kc.shard_cluster(s).stable(); },
                       4'000'000));
  write_backlog(kc, s, "w-", 1200, expected);

  // Half of all data datagrams get a payload-tail flip under a fresh seal
  // for the two seconds spanning the re-merge and first transfer attempts.
  const SimTime from = kc.now();
  kc.shard_cluster(s).inject_faults(
      FaultPlan::sealed_corruption(0.5, from, from + 2'000'000));
  kc.heal_shard(s);
  kc.run_for(2'100'000);
  kc.shard_cluster(s).clear_faults();

  ASSERT_TRUE(kc.await_quiesce(20'000'000));
  EXPECT_TRUE(kc.agent(lone).serving(s));
  expect_all_values(kc, s, expected);
  EXPECT_TRUE(kc.replicas_agree(s)) << kc.divergence(s);

  const auto agg = kc.aggregate_metrics();
  // The fault fired and at least one torn chunk was caught by the trailer.
  EXPECT_GE(kc.shard_cluster(s).fault_stats().sealed_corrupted, 1u);
  EXPECT_GE(agg.counter_value("kv.transfer.chunk_crc_rejects"), 1u);
  EXPECT_GE(agg.counter_value("kv.transfer.retries"), 1u);
  EXPECT_EQ(kc.check_report(), "");
}

// Link flaps: partition/heal several times in quick succession, writing
// through every majority window. Retries are bounded by backoff, nothing
// wedges, and the final heal converges every replica.
TEST(KvTransferSimTest, FlappingLinksEventuallyConverge) {
  KvCluster kc(base_opts(4));
  ASSERT_TRUE(kc.await_quiesce());

  const ShardId s = 0;
  const std::size_t lone = replica_index(kc.router(), s, 2);
  std::map<std::string, std::string> expected;
  for (int cycle = 0; cycle < 4; ++cycle) {
    kc.partition_shard(s, {{lone}, everyone_but(kc, lone)});
    ASSERT_TRUE(kc.await([&] { return kc.shard_cluster(s).stable(); },
                         4'000'000));
    write_backlog(kc, s, "c" + std::to_string(cycle) + "-", 60, expected);
    kc.heal_shard(s);
    // Not long enough to finish a catch-up before the next flap.
    kc.run_for(120'000);
  }

  ASSERT_TRUE(kc.await_quiesce(20'000'000));
  EXPECT_TRUE(kc.agent(lone).serving(s));
  expect_all_values(kc, s, expected);
  EXPECT_TRUE(kc.replicas_agree(s)) << kc.divergence(s);
  EXPECT_EQ(kc.check_report(), "");
}

// Full-group app restart: every replica leaves primary, two of three lose
// their volatile stores, and on re-merge nobody is serving — the clearing
// rules cannot fire. The replica with the highest applied count must win
// the ServeClaim election so the surviving data seeds everyone else,
// rather than the group resurrecting empty.
TEST(KvTransferSimTest, ServeClaimElectsMostCaughtUpReplica) {
  KvCluster kc(base_opts(3));
  ASSERT_TRUE(kc.await_quiesce());

  const ShardId s = 0;
  std::map<std::string, std::string> expected;
  write_backlog(kc, s, "w-", 50, expected);
  ASSERT_TRUE(kc.await_quiesce());

  // Isolate everyone (no majority anywhere, so the harness does not remap),
  // then restart the application process on two of the three replicas —
  // their stores wipe, while process 1 keeps all 50 writes.
  kc.partition_shard(s, {{0}, {1}, {2}});
  ASSERT_TRUE(kc.await([&] { return kc.shard_cluster(s).stable(); },
                       4'000'000));
  kc.agent(std::size_t{1}).on_process_crash();
  kc.agent(std::size_t{2}).on_process_crash();

  kc.heal_shard(s);
  ASSERT_TRUE(kc.await_quiesce(12'000'000));
  EXPECT_TRUE(kc.all_serving());
  expect_all_values(kc, s, expected);
  EXPECT_TRUE(kc.replicas_agree(s)) << kc.divergence(s);

  const auto agg = kc.aggregate_metrics();
  EXPECT_GE(agg.counter_value("kv.transfer.claims"), 1u);
  EXPECT_EQ(kc.check_report(), "");
}

// Background anti-entropy: silently corrupt one serving replica's store —
// a change one no message ever carried, which digest exchange at config
// changes can never see — and the periodic digest announce must detect
// the divergence and repair exactly that replica back to agreement.
TEST(KvTransferSimTest, AntiEntropyRepairsInjectedDivergence) {
  KvCluster kc(base_opts(3));
  ASSERT_TRUE(kc.await_quiesce());

  const ShardId s = 0;
  std::map<std::string, std::string> expected;
  write_backlog(kc, s, "w-", 40, expected);
  ASSERT_TRUE(kc.await_quiesce());
  ASSERT_TRUE(kc.replicas_agree(s)) << kc.divergence(s);

  // Corrupt the HIGHEST-id replica: the announce authority is the lowest-id
  // serving replica, and repairs flow authority -> divergent. (Corrupting
  // the authority would "repair" everyone TO the corruption — that is the
  // documented trust model, not a detection gap.)
  ProcessId victim{0};
  for (const ProcessId p : kc.router().replicas(s)) {
    victim = std::max(victim, p, [](ProcessId a, ProcessId b) {
      return a.value < b.value;
    });
  }
  kc.agent(victim).corrupt_for_test(s, "w-7", "bit-rotted");
  kc.agent(victim).corrupt_for_test(s, "w-23", std::nullopt);
  ASSERT_FALSE(kc.replicas_agree(s));
  ASSERT_NE(kc.divergence(s), "");

  ASSERT_TRUE(kc.await(
      [&] {
        return kc.replicas_agree(s) &&
               kc.aggregate_metrics().counter_value("kv.antientropy_repairs") >=
                   1u;
      },
      8'000'000, /*step_us=*/10'000))
      << kc.divergence(s);
  expect_all_values(kc, s, expected);

  const auto agg = kc.aggregate_metrics();
  EXPECT_GE(agg.counter_value("kv.antientropy_rounds"), 1u);
  EXPECT_GE(agg.counter_value("kv.antientropy_repairs"), 1u);
  EXPECT_EQ(kc.check_report(), "");
}

}  // namespace
}  // namespace evs
