// HashRing units: determinism, order-insensitivity, successor semantics,
// and the smoothing/remap properties the shard layer leans on.
#include "shard/hash_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace evs::shard {
namespace {

std::vector<ProcessId> members(std::initializer_list<std::uint32_t> ids) {
  std::vector<ProcessId> out;
  for (const auto id : ids) out.push_back(ProcessId{id});
  return out;
}

TEST(HashRingTest, Mix64IsStableAcrossCalls) {
  EXPECT_EQ(mix64(0x1234), mix64(0x1234));
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_EQ(hash_bytes(7, "alpha"), hash_bytes(7, "alpha"));
  EXPECT_NE(hash_bytes(7, "alpha"), hash_bytes(8, "alpha"));
  EXPECT_NE(hash_bytes(7, "alpha"), hash_bytes(7, "beta"));
}

TEST(HashRingTest, RebuildIsOrderInsensitive) {
  HashRing a, b;
  a.rebuild(members({1, 2, 3, 4, 5}), 42);
  b.rebuild(members({5, 3, 1, 4, 2}), 42);
  for (std::uint64_t probe = 0; probe < 64; ++probe) {
    const std::uint64_t point = mix64(probe * 0x9e3779b97f4a7c15ull);
    EXPECT_EQ(a.successor(point).value, b.successor(point).value);
  }
}

TEST(HashRingTest, DuplicateMembersCollapse) {
  HashRing a, b;
  a.rebuild(members({1, 2, 2, 3, 3, 3}), 42);
  b.rebuild(members({1, 2, 3}), 42);
  EXPECT_EQ(a.member_count(), 3u);
  for (std::uint64_t probe = 0; probe < 32; ++probe) {
    const std::uint64_t point = mix64(probe);
    EXPECT_EQ(a.successor(point).value, b.successor(point).value);
  }
}

TEST(HashRingTest, SuccessorsAreDistinctAndCapped) {
  HashRing ring;
  ring.rebuild(members({1, 2, 3, 4}), 7);
  const auto group = ring.successors(mix64(99), 3);
  ASSERT_EQ(group.size(), 3u);
  auto sorted = group;
  std::sort(sorted.begin(), sorted.end(),
            [](ProcessId a, ProcessId b) { return a.value < b.value; });
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end(),
                               [](ProcessId a, ProcessId b) {
                                 return a.value == b.value;
                               }),
            sorted.end());
  // Asking for more members than exist returns them all, once each.
  EXPECT_EQ(ring.successors(mix64(99), 10).size(), 4u);
}

TEST(HashRingTest, KeyDistributionIsRoughlyBalanced) {
  HashRing ring;
  ring.rebuild(members({1, 2, 3, 4, 5, 6, 7, 8}), 1234);
  std::map<std::uint32_t, int> owned;
  const int kKeys = 8000;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key-" + std::to_string(i);
    owned[ring.successor(hash_bytes(1234, key)).value]++;
  }
  ASSERT_EQ(owned.size(), 8u);
  for (const auto& [id, count] : owned) {
    // 64 vids/member keeps the spread well inside 2x of fair share.
    EXPECT_GT(count, kKeys / 8 / 2) << "member " << id;
    EXPECT_LT(count, kKeys / 8 * 2) << "member " << id;
  }
}

TEST(HashRingTest, MemberLossOnlyMovesThatMembersKeys) {
  HashRing before, after;
  before.rebuild(members({1, 2, 3, 4, 5, 6}), 99);
  after.rebuild(members({1, 2, 3, 5, 6}), 99);  // member 4 gone
  int moved = 0, total = 4000;
  for (int i = 0; i < total; ++i) {
    const std::uint64_t point = hash_bytes(99, "k" + std::to_string(i));
    const ProcessId a = before.successor(point);
    const ProcessId b = after.successor(point);
    if (a.value != b.value) {
      // Every moved key must have been owned by the departed member.
      EXPECT_EQ(a.value, 4u);
      ++moved;
    }
  }
  // ~1/6 of the keyspace belonged to member 4; nothing else moved.
  EXPECT_GT(moved, total / 12);
  EXPECT_LT(moved, total / 3);
}

}  // namespace
}  // namespace evs::shard
