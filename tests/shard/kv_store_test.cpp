// KvStore / op-codec units: roundtrip, strict decode, deterministic apply.
#include "shard/kv_store.hpp"

#include <gtest/gtest.h>

#include <string>

namespace evs::shard {
namespace {

TEST(KvCodecTest, PutRoundtrips) {
  const auto buf = encode_op(KvOp::Put, "user:17", "alice");
  const auto d = decode_op(buf);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->op, KvOp::Put);
  EXPECT_EQ(d->key, "user:17");
  EXPECT_EQ(d->value, "alice");
}

TEST(KvCodecTest, DelDropsValueAndRoundtrips) {
  const auto buf = encode_op(KvOp::Del, "user:17", "ignored");
  const auto d = decode_op(buf);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->op, KvOp::Del);
  EXPECT_EQ(d->key, "user:17");
  EXPECT_TRUE(d->value.empty());
}

TEST(KvCodecTest, EmptyKeyAndValueAreLegal) {
  const auto d = decode_op(encode_op(KvOp::Put, "", ""));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->key.empty());
  EXPECT_TRUE(d->value.empty());
}

TEST(KvCodecTest, StrictDecodeRejectsDamage) {
  auto buf = encode_op(KvOp::Put, "key", "value");
  EXPECT_FALSE(decode_op({}).has_value());
  EXPECT_FALSE(decode_op({buf.data(), 3}).has_value());  // truncated header
  auto truncated = buf;
  truncated.pop_back();  // value shorter than vlen
  EXPECT_FALSE(decode_op(truncated).has_value());
  auto slack = buf;
  slack.push_back(0x00);  // trailing garbage after the value
  EXPECT_FALSE(decode_op(slack).has_value());
  auto bad_op = buf;
  bad_op[0] = 0x7f;
  EXPECT_FALSE(decode_op(bad_op).has_value());
}

TEST(KvStoreTest, AppliesInOrderAndCountsRejects) {
  KvStore store;
  store.apply(encode_op(KvOp::Put, "a", "1"));
  store.apply(encode_op(KvOp::Put, "b", "2"));
  store.apply(encode_op(KvOp::Put, "a", "3"));  // overwrite wins
  store.apply(encode_op(KvOp::Del, "b", ""));
  const std::vector<std::uint8_t> garbage{0xde, 0xad};
  store.apply(garbage);
  EXPECT_EQ(store.get("a"), "3");
  EXPECT_FALSE(store.get("b").has_value());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().applied, 4u);
  EXPECT_EQ(store.stats().rejected_decode, 1u);
}

TEST(KvStoreTest, SameSequenceSameContents) {
  KvStore a, b;
  for (int i = 0; i < 50; ++i) {
    const auto op = encode_op(i % 7 == 0 ? KvOp::Del : KvOp::Put,
                              "k" + std::to_string(i % 10),
                              "v" + std::to_string(i));
    a.apply(op);
    b.apply(op);
  }
  EXPECT_EQ(a.contents(), b.contents());
}

}  // namespace
}  // namespace evs::shard
