// Sharded KV integration over the sim harness: multi-shard put/get and
// replica convergence, cross-shard isolation under a single-shard
// partition, per-key linearizability across partition/re-merge, and
// deterministic remap on crash/recover.
#include "testkit/kv_cluster.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace evs {
namespace {

using shard::ShardId;

KvCluster::Options base_opts(std::size_t processes, std::uint32_t shards,
                             std::uint32_t replication = 3) {
  KvCluster::Options o;
  o.num_processes = processes;
  o.router.num_shards = shards;
  o.router.replication = replication;
  o.watchdog_window_us = 2'000'000;
  return o;
}

/// A key routed to `shard` (deterministic: scans a counter namespace).
std::string key_on(const shard::ShardRouter& router, ShardId shard, int salt) {
  for (int i = 0;; ++i) {
    std::string k = "k" + std::to_string(salt) + "-" + std::to_string(i);
    if (router.shard_of_key(k) == shard) return k;
  }
}

/// Process index (0-based) of the first replica of `shard`.
std::size_t replica_index(const shard::ShardRouter& router, ShardId shard,
                          std::size_t nth = 0) {
  return router.replicas(shard).at(nth).value - 1;
}

TEST(KvClusterTest, PutGetAcrossShardsAndReplicasConverge) {
  KvCluster kc(base_opts(5, 4));
  ASSERT_TRUE(kc.await_stable());

  std::map<std::string, std::string> expected;
  for (ShardId s = 0; s < kc.num_shards(); ++s) {
    apps::KvShardedNode* w = kc.writer(s);
    ASSERT_NE(w, nullptr) << "shard " << s;
    for (int i = 0; i < 8; ++i) {
      const std::string k = key_on(kc.router(), s, i);
      const std::string v = "v" + std::to_string(s) + "-" + std::to_string(i);
      ASSERT_TRUE(w->put(k, v).ok()) << "shard " << s << " key " << k;
      expected[k] = v;
    }
  }
  ASSERT_TRUE(kc.await_quiesce());

  // Every replica of every shard serves every acked write.
  for (ShardId s = 0; s < kc.num_shards(); ++s) {
    EXPECT_TRUE(kc.replicas_agree(s)) << "shard " << s;
    for (const ProcessId p : kc.router().replicas(s)) {
      apps::KvShardedNode& a = kc.agent(p);
      EXPECT_TRUE(a.in_primary(s));
      for (const auto& [k, v] : expected) {
        if (kc.router().shard_of_key(k) != s) continue;
        auto got = a.get(k);
        ASSERT_TRUE(got.ok());
        ASSERT_TRUE(got->has_value());
        EXPECT_EQ(**got, v);
      }
    }
  }

  // A non-replica process refuses writes and reads for the shard.
  for (ShardId s = 0; s < kc.num_shards(); ++s) {
    for (std::size_t i = 0; i < kc.size(); ++i) {
      if (kc.router().is_replica(s, kc.pid(i))) continue;
      const std::string k = key_on(kc.router(), s, 777);
      EXPECT_EQ(kc.agent(i).put(k, "x").code(), Errc::invalid_argument);
      EXPECT_EQ(kc.agent(i).get(k).code(), Errc::invalid_argument);
    }
  }

  const auto agg = kc.aggregate_metrics();
  EXPECT_EQ(agg.counter_value("kv.puts"), 4u * 8u);
  // Each write applies once per replica of its shard.
  EXPECT_EQ(agg.counter_value("kv.applied"),
            4u * 8u * kc.router().replicas(0).size());
  EXPECT_EQ(agg.counter_value("kv.rejected_decode"), 0u);
  EXPECT_EQ(kc.check_report(), "");
}

TEST(KvClusterTest, PartitionOfOneShardLeavesOthersWritable) {
  KvCluster kc(base_opts(4, 2));
  ASSERT_TRUE(kc.await_stable());

  const ShardId hit = 0, spared = 1;
  // Cut one replica of shard `hit` away from everyone else — only on that
  // shard's network.
  const std::size_t lone = replica_index(kc.router(), hit);
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < kc.size(); ++i) {
    if (i != lone) rest.push_back(i);
  }
  kc.partition_shard(hit, {{lone}, rest});
  ASSERT_TRUE(kc.await(
      [&] { return kc.shard_cluster(hit).stable(); }, 4'000'000));

  // The spared shard accepts and converges writes as if nothing happened.
  apps::KvShardedNode* w = kc.writer(spared);
  ASSERT_NE(w, nullptr);
  const std::string k = key_on(kc.router(), spared, 1);
  ASSERT_TRUE(w->put(k, "during-partition").ok());
  ASSERT_TRUE(kc.await(
      [&] {
        for (const ProcessId p : kc.router().replicas(spared)) {
          auto got = kc.agent(p).get(k);
          if (!got.ok() || !got->has_value()) return false;
        }
        return true;
      },
      4'000'000));

  // The lone replica of the hit shard is out of primary: blocked, not wrong.
  apps::KvShardedNode& cut = kc.agent(lone);
  EXPECT_FALSE(cut.in_primary(hit));
  const std::string hk = key_on(kc.router(), hit, 2);
  EXPECT_EQ(cut.put(hk, "x").code(), Errc::blocked_not_primary);
  EXPECT_EQ(cut.get(hk).code(), Errc::blocked_not_primary);
  EXPECT_GE(cut.stats().writes_blocked, 1u);
  EXPECT_GE(cut.stats().reads_blocked, 1u);

  // The hit shard's majority side still takes writes.
  apps::KvShardedNode* mw = kc.writer(hit);
  ASSERT_NE(mw, nullptr);
  EXPECT_TRUE(mw->put(hk, "majority").ok());

  kc.heal_shard(hit);
  ASSERT_TRUE(kc.await_quiesce(8'000'000));
  EXPECT_TRUE(kc.replicas_agree(spared));
  EXPECT_EQ(kc.check_report(), "");
}

TEST(KvClusterTest, PartitionRemergeKeepsPerKeyLinearizability) {
  KvCluster kc(base_opts(4, 2));
  ASSERT_TRUE(kc.await_stable());
  const ShardId s = 0;
  std::vector<std::string> keys;
  for (int i = 0; i < 6; ++i) keys.push_back(key_on(kc.router(), s, i));
  std::map<std::string, std::string> acked;  // last acknowledged value

  auto write_all = [&](const std::string& tag) {
    apps::KvShardedNode* w = kc.writer(s);
    ASSERT_NE(w, nullptr);
    for (const auto& k : keys) {
      ASSERT_TRUE(w->put(k, tag + "/" + k).ok());
      acked[k] = tag + "/" + k;
    }
  };

  write_all("pre");
  ASSERT_TRUE(kc.await_quiesce());

  // Cut one replica off; the remaining majority keeps accepting writes.
  const std::size_t lone = replica_index(kc.router(), s);
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < kc.size(); ++i) {
    if (i != lone) rest.push_back(i);
  }
  kc.partition_shard(s, {{lone}, rest});
  ASSERT_TRUE(
      kc.await([&] { return kc.shard_cluster(s).stable(); }, 4'000'000));
  write_all("mid");
  ASSERT_TRUE(kc.await_quiesce(8'000'000));

  // In-primary reads see the latest acked value; the minority replica is
  // blocked rather than serving the stale "pre" values it still holds.
  for (const ProcessId p : kc.router().replicas(s)) {
    apps::KvShardedNode& a = kc.agent(p);
    if (p.value - 1 == lone) {
      EXPECT_EQ(a.get(keys[0]).code(), Errc::blocked_not_primary);
      continue;
    }
    for (const auto& k : keys) {
      auto got = a.get(k);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->value_or("<missing>"), acked[k]);
    }
  }

  // Re-merge, then overwrite every key in the merged configuration: all
  // replicas converge on the post-merge order regardless of what the
  // minority missed during the cut.
  kc.heal_shard(s);
  ASSERT_TRUE(kc.await_stable(8'000'000));
  write_all("post");
  ASSERT_TRUE(kc.await_quiesce(8'000'000));
  EXPECT_TRUE(kc.replicas_agree(s));
  for (const ProcessId p : kc.router().replicas(s)) {
    apps::KvShardedNode& a = kc.agent(p);
    ASSERT_TRUE(a.in_primary(s));
    for (const auto& k : keys) {
      auto got = a.get(k);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->value_or("<missing>"), acked[k]);
    }
  }
  EXPECT_EQ(kc.check_report(), "");
}

TEST(KvClusterTest, CrashRemapsDeterministicallyAndRecoverRestores) {
  KvCluster kc(base_opts(5, 4));
  ASSERT_TRUE(kc.await_stable());
  const std::uint64_t fp_before = kc.router().assignment_fingerprint();

  const ProcessId victim = kc.pid(1);
  ASSERT_TRUE(kc.crash(victim).ok());

  // The harness remap equals what any process would derive independently
  // from the surviving member set — the coordination-free contract.
  shard::ShardRouter independent(kc.router().options());
  std::vector<ProcessId> survivors;
  for (std::size_t i = 0; i < kc.size(); ++i) {
    if (!(kc.pid(i) == victim)) survivors.push_back(kc.pid(i));
  }
  independent.update_members(survivors);
  EXPECT_EQ(kc.router().assignment_fingerprint(),
            independent.assignment_fingerprint());
  for (ShardId s = 0; s < kc.num_shards(); ++s) {
    for (const ProcessId p : kc.router().replicas(s)) {
      EXPECT_FALSE(p == victim) << "crashed process still assigned";
    }
  }

  // Every shard still has an in-primary writer and accepts writes.
  ASSERT_TRUE(kc.await_stable(6'000'000));
  for (ShardId s = 0; s < kc.num_shards(); ++s) {
    apps::KvShardedNode* w = kc.writer(s);
    ASSERT_NE(w, nullptr) << "shard " << s;
    ASSERT_TRUE(w->put(key_on(kc.router(), s, 9), "after-crash").ok());
  }
  ASSERT_TRUE(kc.await_quiesce(8'000'000));

  ASSERT_TRUE(kc.recover(victim).ok());
  // Quiesce, not just stabilise: the recovered replica re-enters its shards
  // as a catching-up joiner, and the quiescent spec check must not observe
  // its state-transfer traffic mid-flight.
  ASSERT_TRUE(kc.await_quiesce(12'000'000));
  EXPECT_EQ(kc.router().assignment_fingerprint(), fp_before);
  for (ShardId s = 0; s < kc.num_shards(); ++s) {
    EXPECT_TRUE(kc.replicas_agree(s)) << kc.divergence(s);
  }
  EXPECT_EQ(kc.check_report(), "");
}

}  // namespace
}  // namespace evs
