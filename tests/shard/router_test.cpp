// ShardRouter units: the determinism contract (every process with the same
// member set derives the identical assignment), key->shard membership
// independence, and bounded remap churn.
#include "shard/router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace evs::shard {
namespace {

std::vector<ProcessId> members(std::initializer_list<std::uint32_t> ids) {
  std::vector<ProcessId> out;
  for (const auto id : ids) out.push_back(ProcessId{id});
  return out;
}

ShardRouter::Options opts(std::uint32_t shards, std::uint32_t repl = 3) {
  ShardRouter::Options o;
  o.num_shards = shards;
  o.replication = repl;
  return o;
}

TEST(ShardRouterTest, RemapIsDeterministicAcrossProcesses) {
  // Two independent routers (as on two processes), member lists permuted:
  // identical groups and fingerprints.
  ShardRouter a(opts(8)), b(opts(8));
  a.update_members(members({1, 2, 3, 4, 5, 6}));
  b.update_members(members({6, 4, 2, 5, 3, 1}));
  EXPECT_EQ(a.assignment_fingerprint(), b.assignment_fingerprint());
  for (ShardId s = 0; s < 8; ++s) {
    ASSERT_EQ(a.replicas(s).size(), 3u);
    EXPECT_EQ(a.replicas(s), b.replicas(s)) << "shard " << s;
  }
}

TEST(ShardRouterTest, KeyToShardIgnoresMembership) {
  ShardRouter r(opts(4));
  r.update_members(members({1, 2, 3, 4, 5}));
  std::vector<ShardId> before;
  for (int i = 0; i < 200; ++i) {
    before.push_back(r.shard_of_key("key-" + std::to_string(i)));
  }
  r.update_members(members({2, 4, 5}));  // members 1 and 3 departed
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(r.shard_of_key("key-" + std::to_string(i)), before[i])
        << "keys must never migrate between shards on membership change";
  }
}

TEST(ShardRouterTest, EveryShardGetsKeysAndEveryKeyOneShard) {
  ShardRouter r(opts(4));
  std::set<ShardId> hit;
  for (int i = 0; i < 1000; ++i) {
    const ShardId s = r.shard_of_key("k" + std::to_string(i));
    ASSERT_LT(s, 4u);
    hit.insert(s);
  }
  EXPECT_EQ(hit.size(), 4u);
}

TEST(ShardRouterTest, KeyLoadIsBalancedAcrossShards) {
  // The reason shard anchors are virtualized: with one anchor per shard the
  // arc lengths are exponential and one shard can own most of the keyspace,
  // which caps the throughput scaling the layer exists to buy.
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    ShardRouter r(opts(shards));
    std::vector<int> load(shards, 0);
    const int kKeys = 8000;
    for (int i = 0; i < kKeys; ++i) {
      load[r.shard_of_key("balance-" + std::to_string(i))]++;
    }
    const int fair = kKeys / static_cast<int>(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      EXPECT_GT(load[s], fair / 2) << shards << " shards, shard " << s;
      EXPECT_LT(load[s], fair * 2) << shards << " shards, shard " << s;
    }
  }
}

TEST(ShardRouterTest, UpdateMembersReportsChange) {
  ShardRouter r(opts(4));
  EXPECT_TRUE(r.update_members(members({1, 2, 3, 4})));
  EXPECT_FALSE(r.update_members(members({4, 3, 2, 1})));  // same set
  EXPECT_TRUE(r.update_members(members({1, 2, 3})));
}

TEST(ShardRouterTest, ReplicationCappedByMemberCount) {
  ShardRouter r(opts(2, 3));
  r.update_members(members({1, 2}));
  for (ShardId s = 0; s < 2; ++s) {
    EXPECT_EQ(r.replicas(s).size(), 2u);
  }
}

TEST(ShardRouterTest, SingleMemberLossOnlyTouchesItsShards) {
  ShardRouter before(opts(16)), after(opts(16));
  before.update_members(members({1, 2, 3, 4, 5, 6, 7, 8}));
  after.update_members(members({1, 2, 3, 4, 6, 7, 8}));  // 5 departed
  for (ShardId s = 0; s < 16; ++s) {
    const auto& was = before.replicas(s);
    const auto& now = after.replicas(s);
    const bool had_5 = std::find_if(was.begin(), was.end(), [](ProcessId p) {
                         return p.value == 5;
                       }) != was.end();
    if (!had_5) {
      EXPECT_EQ(was, now) << "shard " << s
                          << " lost no replica but its group changed";
    } else {
      // Exactly the departed member is replaced; survivors keep their spot.
      for (const ProcessId p : was) {
        if (p.value == 5) continue;
        EXPECT_NE(std::find_if(now.begin(), now.end(),
                               [&](ProcessId q) { return q.value == p.value; }),
                  now.end());
      }
    }
  }
}

TEST(ShardRouterTest, ShardsOfInvertsReplicas) {
  ShardRouter r(opts(8));
  r.update_members(members({1, 2, 3, 4, 5}));
  for (std::uint32_t id = 1; id <= 5; ++id) {
    for (const ShardId s : r.shards_of(ProcessId{id})) {
      EXPECT_TRUE(r.is_replica(s, ProcessId{id}));
    }
  }
  std::size_t total = 0;
  for (std::uint32_t id = 1; id <= 5; ++id) {
    total += r.shards_of(ProcessId{id}).size();
  }
  EXPECT_EQ(total, 8u * 3u);  // every shard appears replication times
}

}  // namespace
}  // namespace evs::shard
