// Units for the state-transfer building blocks: store digests (bucketed
// content fingerprints), the transfer message codecs, and the TransferChunk
// CRC-32 trailer that guards application state against corruption the
// frame layer missed (or that was re-sealed over — see
// FaultRule::corrupt_sealed).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "shard/digest.hpp"
#include "shard/kv_store.hpp"
#include "shard/transfer.hpp"

namespace evs::shard {
namespace {

KvStore store_with(const std::vector<std::pair<std::string, std::string>>& kv) {
  KvStore s;
  for (const auto& [k, v] : kv) {
    const auto op = encode_op(KvOp::Put, k, v);
    EXPECT_TRUE(s.apply(op).has_value());
  }
  return s;
}

TEST(DigestTest, SameContentsDigestEquallyRegardlessOfHistory) {
  // Same final contents via different op sequences: digests content-equal,
  // applied counts differ — and same_content must ignore applied.
  KvStore a = store_with({{"alpha", "1"}, {"beta", "2"}});
  KvStore b = store_with({{"beta", "x"}, {"alpha", "1"}, {"beta", "2"}});
  const StoreDigest da = compute_digest(a, 16);
  const StoreDigest db = compute_digest(b, 16);
  EXPECT_TRUE(same_content(da, db));
  EXPECT_NE(da.applied, db.applied);
  EXPECT_EQ(da.fingerprint, a.fingerprint());
  EXPECT_TRUE(diff_buckets(da, db).empty());
}

TEST(DigestTest, DiffBucketsFlagsExactlyTheChangedKeysBuckets) {
  KvStore a = store_with({{"k1", "v"}, {"k2", "v"}, {"k3", "v"}});
  KvStore b = store_with({{"k1", "v"}, {"k2", "CHANGED"}, {"k3", "v"}});
  constexpr std::uint32_t kB = 64;
  const auto diff = diff_buckets(compute_digest(a, kB), compute_digest(b, kB));
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], bucket_of("k2", kB));

  // A missing key diffs its bucket too.
  KvStore c = store_with({{"k1", "v"}, {"k3", "v"}});
  const auto gone = diff_buckets(compute_digest(a, kB), compute_digest(c, kB));
  ASSERT_EQ(gone.size(), 1u);
  EXPECT_EQ(gone[0], bucket_of("k2", kB));
}

TEST(DigestTest, MismatchedBucketCountsAreIncomparable) {
  KvStore a = store_with({{"k", "v"}});
  EXPECT_TRUE(diff_buckets(compute_digest(a, 8), compute_digest(a, 16)).empty());
  EXPECT_FALSE(same_content(compute_digest(a, 8), compute_digest(a, 16)));
}

TEST(DigestTest, BucketOfIsValueIndependent) {
  // The bucket must depend on the key alone: a value change may not move
  // the entry to another bucket, or deltas would be undetectable.
  for (std::uint32_t n : {1u, 7u, 1024u}) {
    EXPECT_LT(bucket_of("some-key", n), n);
  }
}

TEST(DigestTest, WireRoundTripAndStrictDecode) {
  KvStore a = store_with({{"k1", "v1"}, {"k2", "v2"}});
  const StoreDigest d = compute_digest(a, 32);
  std::vector<std::uint8_t> buf;
  encode_digest(buf, d);

  std::size_t off = 0;
  const auto back = decode_digest(buf, off);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(back->applied, d.applied);
  EXPECT_EQ(back->fingerprint, d.fingerprint);
  EXPECT_EQ(back->buckets, d.buckets);

  // Truncation anywhere fails cleanly.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::size_t o = 0;
    EXPECT_FALSE(
        decode_digest(std::span(buf.data(), cut), o).has_value())
        << "cut=" << cut;
  }
}

TEST(TransferCodecTest, AnnounceAndRequestRoundTrip) {
  KvStore s = store_with({{"a", "1"}});
  DigestAnnounceMsg ann{ProcessId{3}, 17, compute_digest(s, 8)};
  const auto ab = encode_announce(ann);
  ASSERT_FALSE(ab.empty());
  EXPECT_EQ(ab[0], static_cast<std::uint8_t>(TransferOp::DigestAnnounce));
  const auto a2 = decode_announce(ab);
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a2->sender, ann.sender);
  EXPECT_EQ(a2->round, ann.round);
  EXPECT_TRUE(same_content(a2->digest, ann.digest));

  TransferRequestMsg req{ProcessId{5}, 99, compute_digest(s, 8)};
  for (const TransferOp op :
       {TransferOp::TransferRequest, TransferOp::ServeClaim}) {
    const auto rb = encode_request(req, op);
    EXPECT_EQ(rb[0], static_cast<std::uint8_t>(op));
    const auto r2 = decode_request(rb);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->sender, req.sender);
    EXPECT_EQ(r2->session, req.session);
  }

  // Cross-decoding is rejected: an announce is not a request.
  EXPECT_FALSE(decode_request(ab).has_value());
}

TEST(TransferCodecTest, RepairRequestRoundTrip) {
  RepairRequestMsg m;
  m.requester = ProcessId{2};
  m.authority = ProcessId{1};
  m.session = 7;
  m.round = 3;
  m.buckets = {0, 5, 1023};
  const auto b = encode_repair_request(m);
  const auto back = decode_repair_request(b);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->requester, m.requester);
  EXPECT_EQ(back->authority, m.authority);
  EXPECT_EQ(back->session, m.session);
  EXPECT_EQ(back->round, m.round);
  EXPECT_EQ(back->buckets, m.buckets);
}

TransferChunkMsg sample_chunk() {
  TransferChunkMsg m;
  m.donor = ProcessId{1};
  m.joiner = ProcessId{4};
  m.session = 42;
  m.flags = kChunkFlagRepair;
  m.index = 2;
  m.count = 5;
  ChunkBucket full;
  full.bucket = 9;
  full.complete = true;
  full.entries = {{"key-a", "value-a"}, {"key-b", std::string(100, 'x')}};
  ChunkBucket part;
  part.bucket = 10;
  part.complete = false;
  part.entries = {{"key-c", ""}};
  ChunkBucket empty;  // erase-extras signal: bucket present, no entries
  empty.bucket = 11;
  empty.complete = true;
  m.buckets = {full, part, empty};
  return m;
}

TEST(TransferCodecTest, ChunkRoundTripWithCrcTrailer) {
  const TransferChunkMsg m = sample_chunk();
  const auto b = encode_chunk(m);
  ASSERT_TRUE(chunk_crc_ok(b));
  const auto back = decode_chunk(b);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->donor, m.donor);
  EXPECT_EQ(back->joiner, m.joiner);
  EXPECT_EQ(back->session, m.session);
  EXPECT_EQ(back->flags, m.flags);
  EXPECT_EQ(back->index, m.index);
  EXPECT_EQ(back->count, m.count);
  ASSERT_EQ(back->buckets.size(), m.buckets.size());
  for (std::size_t i = 0; i < m.buckets.size(); ++i) {
    EXPECT_EQ(back->buckets[i].bucket, m.buckets[i].bucket);
    EXPECT_EQ(back->buckets[i].complete, m.buckets[i].complete);
    ASSERT_EQ(back->buckets[i].entries.size(), m.buckets[i].entries.size());
    for (std::size_t j = 0; j < m.buckets[i].entries.size(); ++j) {
      EXPECT_EQ(back->buckets[i].entries[j].key, m.buckets[i].entries[j].key);
      EXPECT_EQ(back->buckets[i].entries[j].value,
                m.buckets[i].entries[j].value);
    }
  }
}

TEST(TransferCodecTest, ChunkCrcCatchesEveryFlippedByte) {
  const auto b = encode_chunk(sample_chunk());
  for (std::size_t pos = 0; pos < b.size(); ++pos) {
    auto bad = b;
    bad[pos] ^= 0x40;
    EXPECT_FALSE(chunk_crc_ok(bad)) << "pos=" << pos;
  }
}

TEST(TransferCodecTest, ChunkDecodeIsStrict) {
  const auto b = encode_chunk(sample_chunk());
  // Truncation at every boundary fails cleanly (never asserts/overflows).
  for (std::size_t cut = 0; cut < b.size(); ++cut) {
    EXPECT_FALSE(decode_chunk(std::span(b.data(), cut)).has_value())
        << "cut=" << cut;
  }
  // Trailing slack is rejected too — the codec is exact-length.
  auto slack = b;
  slack.push_back(0);
  EXPECT_FALSE(decode_chunk(slack).has_value());
  // count == 0 and index >= count are structurally invalid.
  TransferChunkMsg zero = sample_chunk();
  zero.count = 0;
  zero.index = 0;
  EXPECT_FALSE(decode_chunk(encode_chunk(zero)).has_value());
  TransferChunkMsg oob = sample_chunk();
  oob.index = oob.count;
  EXPECT_FALSE(decode_chunk(encode_chunk(oob)).has_value());
}

TEST(TransferCodecTest, CompletionChunkIsMinimal) {
  // The "nothing to transfer" completion: one chunk, zero buckets.
  TransferChunkMsg done;
  done.donor = ProcessId{1};
  done.joiner = ProcessId{2};
  done.session = 1;
  done.index = 0;
  done.count = 1;
  const auto b = encode_chunk(done);
  ASSERT_TRUE(chunk_crc_ok(b));
  const auto back = decode_chunk(b);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->buckets.empty());
}

}  // namespace
}  // namespace evs::shard
