#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace evs {
namespace {

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30, [&] { order.push_back(3); });
  sched.schedule_at(10, [&] { order.push_back(1); });
  sched.schedule_at(20, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30u);
}

TEST(SchedulerTest, FifoAmongEqualTimes) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, ScheduleAfterIsRelative) {
  Scheduler sched;
  SimTime fired_at = 0;
  sched.schedule_at(100, [&] {
    sched.schedule_after(50, [&] { fired_at = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  auto h = sched.schedule_at(10, [&] { fired = true; });
  sched.cancel(h);
  sched.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(SchedulerTest, CancelInvalidHandleIsNoop) {
  Scheduler sched;
  sched.cancel(Scheduler::Handle{});
  sched.cancel(Scheduler::Handle{999});
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(SchedulerTest, CancelAfterFireIsNoop) {
  Scheduler sched;
  auto h = sched.schedule_at(1, [] {});
  sched.run();
  sched.cancel(h);  // must not disturb later scheduling
  bool fired = false;
  sched.schedule_at(2, [&] { fired = true; });
  sched.run();
  EXPECT_TRUE(fired);
}

TEST(SchedulerTest, PendingCountsLiveEventsAcrossCancelPatterns) {
  Scheduler sched;
  auto a = sched.schedule_at(10, [] {});
  auto b = sched.schedule_at(20, [] {});
  auto c = sched.schedule_at(30, [] {});
  EXPECT_EQ(sched.pending(), 3u);
  sched.cancel(b);
  EXPECT_EQ(sched.pending(), 2u);
  sched.cancel(b);  // double-cancel: no change
  EXPECT_EQ(sched.pending(), 2u);
  EXPECT_TRUE(sched.step());  // fires a
  EXPECT_EQ(sched.pending(), 1u);
  // Cancel after fire: the id is gone; pending must not underflow or drift.
  sched.cancel(a);
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_TRUE(sched.step());  // skips b's tombstone, fires c
  EXPECT_EQ(sched.pending(), 0u);
  sched.cancel(c);  // cancel after everything fired
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_FALSE(sched.step());
}

TEST(SchedulerTest, PendingZeroAfterCancellingEverything) {
  Scheduler sched;
  std::vector<Scheduler::Handle> handles;
  for (int i = 0; i < 8; ++i) handles.push_back(sched.schedule_at(i + 1, [] {}));
  for (auto h : handles) sched.cancel(h);
  // Repeat cancels of already-cancelled handles must stay no-ops.
  for (auto h : handles) sched.cancel(h);
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(sched.executed(), 0u);
}

TEST(SchedulerTest, RunUntilAdvancesClockEvenWhenIdle) {
  Scheduler sched;
  sched.run_until(500);
  EXPECT_EQ(sched.now(), 500u);
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  Scheduler sched;
  std::vector<SimTime> fired;
  sched.schedule_at(10, [&] { fired.push_back(sched.now()); });
  sched.schedule_at(20, [&] { fired.push_back(sched.now()); });
  sched.schedule_at(30, [&] { fired.push_back(sched.now()); });
  sched.run_until(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sched.now(), 20u);
  sched.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sched.schedule_after(1, chain);
  };
  sched.schedule_at(0, chain);
  sched.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sched.now(), 99u);
}

TEST(SchedulerTest, RunMaxEventsBounds) {
  Scheduler sched;
  for (int i = 0; i < 10; ++i) sched.schedule_at(i, [] {});
  EXPECT_EQ(sched.run(4), 4u);
  EXPECT_EQ(sched.pending(), 6u);
  EXPECT_EQ(sched.run(), 6u);
}

TEST(SchedulerTest, ExecutedCounter) {
  Scheduler sched;
  for (int i = 0; i < 5; ++i) sched.schedule_at(i, [] {});
  sched.run();
  EXPECT_EQ(sched.executed(), 5u);
}

}  // namespace
}  // namespace evs
