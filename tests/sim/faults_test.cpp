// FaultInjector unit tests: rule matching, determinism, and the Network
// integration points (drop/duplicate/corrupt/delay observable at endpoints).
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <map>

#include "net/network.hpp"
#include "totem/messages.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

TEST(FaultRuleTest, MatchesTimeWindow) {
  FaultRule rule;
  rule.from_us = 100;
  rule.until_us = 200;
  EXPECT_FALSE(rule.matches(ProcessId{1}, ProcessId{2}, 99, false));
  EXPECT_TRUE(rule.matches(ProcessId{1}, ProcessId{2}, 100, false));
  EXPECT_TRUE(rule.matches(ProcessId{1}, ProcessId{2}, 199, false));
  EXPECT_FALSE(rule.matches(ProcessId{1}, ProcessId{2}, 200, false));
}

TEST(FaultRuleTest, MatchesDirection) {
  FaultRule rule;
  rule.src = ProcessId{1};
  rule.dst = ProcessId{2};
  EXPECT_TRUE(rule.matches(ProcessId{1}, ProcessId{2}, 0, false));
  EXPECT_FALSE(rule.matches(ProcessId{2}, ProcessId{1}, 0, false));
  EXPECT_FALSE(rule.matches(ProcessId{1}, ProcessId{3}, 0, false));

  FaultRule any_dst;
  any_dst.src = ProcessId{1};
  EXPECT_TRUE(any_dst.matches(ProcessId{1}, ProcessId{9}, 0, false));
  EXPECT_FALSE(any_dst.matches(ProcessId{9}, ProcessId{1}, 0, false));
}

TEST(FaultRuleTest, TokensOnlyFiltersNonTokens) {
  FaultRule rule;
  rule.tokens_only = true;
  EXPECT_FALSE(rule.matches(ProcessId{1}, ProcessId{2}, 0, false));
  EXPECT_TRUE(rule.matches(ProcessId{1}, ProcessId{2}, 0, true));
}

TEST(FaultInjectorTest, DeterministicGivenSeed) {
  const FaultPlan plan = FaultPlan::storm(0.3, 0.3, 0.2);
  auto run = [&plan] {
    FaultInjector inj(plan, Rng(7));
    std::vector<std::uint8_t> results;
    for (int i = 0; i < 200; ++i) {
      std::vector<std::uint8_t> payload(16, static_cast<std::uint8_t>(i));
      const auto action = inj.apply(ProcessId{1}, ProcessId{2},
                                    static_cast<SimTime>(i * 10), payload);
      results.push_back(static_cast<std::uint8_t>(action.drop));
      results.push_back(static_cast<std::uint8_t>(action.duplicate_extra_delays.size()));
      results.push_back(static_cast<std::uint8_t>(action.extra_delay_us & 0xFF));
      results.insert(results.end(), payload.begin(), payload.end());
    }
    return results;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjectorTest, CorruptionFlipsBytesInPlace) {
  FaultRule rule;
  rule.corrupt = 1.0;
  FaultPlan plan = FaultPlan{}.add(rule);
  FaultInjector inj(plan, Rng(3));
  const std::vector<std::uint8_t> original(32, 0xAA);
  std::vector<std::uint8_t> payload = original;
  const auto action = inj.apply(ProcessId{1}, ProcessId{2}, 0, payload);
  EXPECT_TRUE(action.corrupted);
  EXPECT_EQ(payload.size(), original.size());
  EXPECT_NE(payload, original);  // xor with a nonzero mask always changes bytes
  EXPECT_GE(inj.stats().corrupted, 1u);
}

TEST(FaultInjectorTest, DropWinsAndStopsFurtherFaults) {
  FaultRule rule;
  rule.drop = 1.0;
  rule.duplicate = 1.0;
  rule.corrupt = 1.0;
  FaultInjector inj(FaultPlan{}.add(rule), Rng(5));
  std::vector<std::uint8_t> payload{1, 2, 3};
  const auto action = inj.apply(ProcessId{1}, ProcessId{2}, 0, payload);
  EXPECT_TRUE(action.drop);
  EXPECT_TRUE(action.duplicate_extra_delays.empty());
  EXPECT_EQ(inj.stats().dropped, 1u);
  EXPECT_EQ(inj.stats().duplicated, 0u);
  EXPECT_EQ(inj.stats().corrupted, 0u);
}

TEST(FaultInjectorTest, TokenLossPlanTargetsOnlyTokenFrames) {
  FaultInjector inj(FaultPlan::token_loss(1.0), Rng(11));

  TokenMsg token;
  token.ring = RingId{1, ProcessId{1}};
  token.rotation = 1;
  std::vector<std::uint8_t> token_frame = wire::seal_frame(encode_msg(token)).value();
  const auto token_action = inj.apply(ProcessId{1}, ProcessId{2}, 0, token_frame);
  EXPECT_TRUE(token_action.drop);
  EXPECT_EQ(inj.stats().token_dropped, 1u);

  std::vector<std::uint8_t> beacon_frame =
      wire::seal_frame(encode_msg(BeaconMsg{ProcessId{1}, RingId{1, ProcessId{1}}})).value();
  const auto beacon_action = inj.apply(ProcessId{1}, ProcessId{2}, 0, beacon_frame);
  EXPECT_FALSE(beacon_action.drop);
}

TEST(FaultInjectorTest, LogIsBoundedAndFormats) {
  FaultRule rule;
  rule.drop = 1.0;
  FaultInjector inj(FaultPlan{}.add(rule), Rng(1));
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> payload{9};
    inj.apply(ProcessId{1}, ProcessId{2}, static_cast<SimTime>(i), payload);
  }
  EXPECT_LE(inj.log().size(), 64u);
  EXPECT_EQ(inj.log().back().time, 199u);
  EXPECT_NE(inj.format_log().find("drop"), std::string::npos);
}

// --- Network integration ---

class Recorder : public Endpoint {
 public:
  void on_packet(const Packet& packet) override { packets.push_back(packet); }
  std::vector<Packet> packets;
};

struct FaultNetworkTest : ::testing::Test {
  Scheduler sched;
  Network::Options opts{/*min*/ 10, /*max*/ 10, /*loss*/ 0.0};
  Network net{sched, Rng(1), opts};
  std::map<std::uint32_t, Recorder> recorders;

  ProcessId attach(std::uint32_t id) {
    ProcessId p{id};
    net.attach(p, &recorders[id]);
    return p;
  }
};

TEST_F(FaultNetworkTest, AsymmetricCutDropsOneDirectionOnly) {
  auto a = attach(1);
  auto b = attach(2);
  net.set_fault_plan(FaultPlan::asymmetric_cut(a, b, 0, ~0ull));
  net.unicast(a, b, {1});
  net.unicast(b, a, {2});
  sched.run();
  EXPECT_EQ(recorders[2].packets.size(), 0u);  // a->b cut
  ASSERT_EQ(recorders[1].packets.size(), 1u);  // b->a untouched
  EXPECT_EQ(net.stats().dropped_fault, 1u);
}

TEST_F(FaultNetworkTest, DuplicationDeliversExtraCopies) {
  auto a = attach(1);
  auto b = attach(2);
  FaultRule rule;
  rule.duplicate = 1.0;
  FaultPlan plan = FaultPlan{}.add(rule);
  net.set_fault_plan(plan);
  net.unicast(a, b, {42});
  sched.run();
  EXPECT_EQ(recorders[2].packets.size(), 2u);  // original + one copy
  EXPECT_EQ(net.stats().duplicated_fault, 1u);
}

TEST_F(FaultNetworkTest, LoopbackIsExemptFromFaults) {
  auto a = attach(1);
  attach(2);
  FaultRule rule;
  rule.drop = 1.0;
  net.set_fault_plan(FaultPlan{}.add(rule));
  net.broadcast(a, {5});
  sched.run();
  ASSERT_EQ(recorders[1].packets.size(), 1u);  // own copy always arrives
  EXPECT_EQ(std::vector<std::uint8_t>(recorders[1].packets[0].payload().begin(), recorders[1].packets[0].payload().end()), std::vector<std::uint8_t>{5});
  EXPECT_EQ(recorders[2].packets.size(), 0u);
}

TEST_F(FaultNetworkTest, WindowExpiryStopsInjection) {
  auto a = attach(1);
  auto b = attach(2);
  FaultRule rule;
  rule.drop = 1.0;
  rule.until_us = 100;
  net.set_fault_plan(FaultPlan{}.add(rule));
  net.unicast(a, b, {1});  // t=0: dropped
  sched.run();
  sched.run_until(200);
  net.unicast(a, b, {2});  // t=200: rule expired
  sched.run();
  ASSERT_EQ(recorders[2].packets.size(), 1u);
  EXPECT_EQ(std::vector<std::uint8_t>(recorders[2].packets[0].payload().begin(), recorders[2].packets[0].payload().end()), std::vector<std::uint8_t>{2});
}

TEST_F(FaultNetworkTest, ClearFaultsRestoresCleanDelivery) {
  auto a = attach(1);
  auto b = attach(2);
  FaultRule rule;
  rule.drop = 1.0;
  net.set_fault_plan(FaultPlan{}.add(rule));
  net.unicast(a, b, {1});
  sched.run();
  EXPECT_EQ(recorders[2].packets.size(), 0u);
  net.clear_faults();
  net.unicast(a, b, {2});
  sched.run();
  ASSERT_EQ(recorders[2].packets.size(), 1u);
}

// ---------------------------------------------------------------------------
// stable-storage fault rules

TEST(StorageFaultRuleTest, MatchesProcessAndWindow) {
  StorageFaultRule rule;
  rule.process = ProcessId{2};
  rule.from_us = 100;
  rule.until_us = 200;
  EXPECT_FALSE(rule.matches(ProcessId{1}, 150));
  EXPECT_TRUE(rule.matches(ProcessId{2}, 150));
  EXPECT_FALSE(rule.matches(ProcessId{2}, 99));
  EXPECT_FALSE(rule.matches(ProcessId{2}, 200));

  StorageFaultRule any;
  EXPECT_TRUE(any.matches(ProcessId{7}, 0));
}

TEST(StorageFaultInjectorTest, CertainFaultsMapToWriteFaultKinds) {
  using Kind = StableStore::WriteFault::Kind;
  const auto verdict = [](double fail, double torn, double rot) {
    StorageFaultRule rule;
    rule.write_fail = fail;
    rule.torn = torn;
    rule.rot = rot;
    FaultInjector inj(FaultPlan{}.add(rule), Rng(1));
    return inj.apply_storage(ProcessId{1}, 0, 64);
  };
  EXPECT_EQ(verdict(1, 0, 0).kind, Kind::Fail);
  EXPECT_EQ(verdict(0, 1, 0).kind, Kind::Torn);
  EXPECT_EQ(verdict(0, 0, 1).kind, Kind::Rot);
  EXPECT_EQ(verdict(0, 0, 0).kind, Kind::None);
}

TEST(StorageFaultInjectorTest, TornVerdictKeepsAStrictPrefix) {
  StorageFaultRule rule;
  rule.torn = 1.0;
  FaultInjector inj(FaultPlan{}.add(rule), Rng(7));
  for (int i = 0; i < 100; ++i) {
    const auto f = inj.apply_storage(ProcessId{1}, 0, 64);
    ASSERT_EQ(f.kind, StableStore::WriteFault::Kind::Torn);
    EXPECT_LT(f.keep_bytes, 64u);
  }
  EXPECT_EQ(inj.stats().write_torn, 100u);
  EXPECT_EQ(inj.stats().writes_considered, 100u);
}

TEST(StorageFaultInjectorTest, StatsCountEachFate) {
  FaultInjector inj(FaultPlan::disk_faults(1.0, 0, 0), Rng(3));
  (void)inj.apply_storage(ProcessId{1}, 0, 16);
  (void)inj.apply_storage(ProcessId{2}, 0, 16);
  EXPECT_EQ(inj.stats().write_failed, 2u);
  EXPECT_EQ(inj.stats().writes_considered, 2u);
  EXPECT_EQ(inj.stats().injected_total, 2u);
}

TEST(StorageFaultInjectorTest, NetworkOnlyPlanDrawsNoStorageRandomness) {
  // A plan without storage rules must leave the shared RNG stream untouched
  // when the store consults the injector, or adding a storage hook would
  // perturb every network fault decision and break replay determinism.
  FaultPlan plan = FaultPlan::storm(0.3, 0.3, 0.1);
  plan.seed = 42;
  FaultInjector with_queries(plan, Rng(42));
  FaultInjector without_queries(plan, Rng(42));

  std::vector<std::uint8_t> payload_a{1, 2, 3, 4};
  std::vector<std::uint8_t> payload_b{1, 2, 3, 4};
  for (int i = 0; i < 50; ++i) {
    // Interleave storage queries on one injector only.
    (void)with_queries.apply_storage(ProcessId{1}, 0, 64);
    const auto a = with_queries.apply(ProcessId{1}, ProcessId{2}, 0, payload_a);
    const auto b = without_queries.apply(ProcessId{1}, ProcessId{2}, 0, payload_b);
    EXPECT_EQ(a.drop, b.drop);
    EXPECT_EQ(a.extra_delay_us, b.extra_delay_us);
    EXPECT_EQ(a.duplicate_extra_delays, b.duplicate_extra_delays);
    EXPECT_EQ(payload_a, payload_b);
  }
  EXPECT_EQ(with_queries.stats().writes_considered, 0u);
}

TEST(StorageFaultInjectorTest, DeterministicStorageFaultSequence) {
  const FaultPlan plan = FaultPlan::disk_faults(0.2, 0.2, 0.2);
  FaultInjector a(plan, Rng(9));
  FaultInjector b(plan, Rng(9));
  for (int i = 0; i < 200; ++i) {
    const auto fa = a.apply_storage(ProcessId{1}, 0, 32);
    const auto fb = b.apply_storage(ProcessId{1}, 0, 32);
    ASSERT_EQ(fa.kind, fb.kind);
    ASSERT_EQ(fa.keep_bytes, fb.keep_bytes);
    ASSERT_EQ(fa.rot_offset, fb.rot_offset);
  }
}

TEST(StorageFaultInjectorTest, DiskFaultsWindowGatesInjection) {
  FaultInjector inj(FaultPlan::disk_faults(1.0, 0, 0, 100, 200), Rng(5));
  EXPECT_EQ(inj.apply_storage(ProcessId{1}, 50, 16).kind,
            StableStore::WriteFault::Kind::None);
  EXPECT_EQ(inj.apply_storage(ProcessId{1}, 150, 16).kind,
            StableStore::WriteFault::Kind::Fail);
  EXPECT_EQ(inj.apply_storage(ProcessId{1}, 250, 16).kind,
            StableStore::WriteFault::Kind::None);
}

}  // namespace
}  // namespace evs
