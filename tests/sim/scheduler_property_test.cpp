// Property tests for the Scheduler's equal-time tie-break and handle
// lifecycle, checked against a reference model.
//
// The tie-break (events at equal virtual times fire in insertion order) is
// the foundation of run-for-run determinism: every protocol timer and packet
// delivery rides on it, and the live UDP transport additionally relies on
// next_time() pruning cancelled tombstones so poll() timeouts are never
// bounded by dead timers. These tests drive random schedule / cancel /
// reschedule interleavings and require the firing order to match a stable
// sort by (time, insertion index).
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.hpp"

namespace evs {
namespace {

// Reference model: a scheduled event is (time, insertion index); live events
// fire in lexicographic (time, insertion) order.
struct ModelEvent {
  SimTime time;
  std::uint64_t insertion;
  int tag;
  bool cancelled{false};
};

std::vector<int> model_order(std::vector<ModelEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const ModelEvent& a, const ModelEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.insertion < b.insertion;
                   });
  std::vector<int> out;
  for (const ModelEvent& e : events) {
    if (!e.cancelled) out.push_back(e.tag);
  }
  return out;
}

TEST(SchedulerPropertyTest, TieOrderMatchesInsertionOrderUnderRandomTimes) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    Scheduler sched;
    std::vector<ModelEvent> model;
    std::vector<int> fired;
    const int n = 1 + static_cast<int>(rng.below(200));
    for (int i = 0; i < n; ++i) {
      // Few distinct times => dense ties.
      const SimTime t = rng.below(8);
      sched.schedule_at(t, [&fired, i] { fired.push_back(i); });
      model.push_back({t, static_cast<std::uint64_t>(i), i});
    }
    sched.run();
    EXPECT_EQ(fired, model_order(model)) << "seed " << seed;
  }
}

TEST(SchedulerPropertyTest, RandomCancelInterleavingsPreserveTieOrder) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    Scheduler sched;
    std::vector<ModelEvent> model;
    std::vector<Scheduler::Handle> handles;
    std::vector<int> fired;
    std::uint64_t insertion = 0;
    int tag = 0;
    const int ops = 1 + static_cast<int>(rng.below(300));
    for (int op = 0; op < ops; ++op) {
      if (!handles.empty() && rng.below(3) == 0) {
        // Cancel a random still-tracked event (may already be cancelled:
        // double-cancel must be a no-op).
        const std::size_t victim = rng.below(handles.size());
        sched.cancel(handles[victim]);
        model[victim].cancelled = true;
      } else {
        const SimTime t = rng.below(6);
        const int this_tag = tag++;
        handles.push_back(
            sched.schedule_at(t, [&fired, this_tag] { fired.push_back(this_tag); }));
        model.push_back({t, insertion++, this_tag});
      }
    }
    sched.run();
    EXPECT_EQ(fired, model_order(model)) << "seed " << seed;
    EXPECT_EQ(sched.pending(), 0u) << "seed " << seed;
  }
}

TEST(SchedulerPropertyTest, CancelThenRescheduleGetsFreshHandle) {
  Scheduler sched;
  bool old_fired = false;
  bool new_fired = false;
  auto h1 = sched.schedule_at(10, [&] { old_fired = true; });
  sched.cancel(h1);
  auto h2 = sched.schedule_at(10, [&] { new_fired = true; });
  // Handles are never reused: the tombstone for h1 must not be able to
  // shadow (or be confused with) the replacement event.
  EXPECT_NE(h1.id, h2.id);
  // Cancelling the dead handle again must not touch the new event.
  sched.cancel(h1);
  sched.run();
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
}

TEST(SchedulerPropertyTest, RepeatedCancelRescheduleCyclesStayLeakFree) {
  Scheduler sched;
  int fired = 0;
  Scheduler::Handle h{};
  for (int cycle = 0; cycle < 1000; ++cycle) {
    sched.cancel(h);
    h = sched.schedule_at(5, [&] { ++fired; });
    EXPECT_EQ(sched.pending(), 1u);
  }
  sched.run();
  // Only the survivor of the last cycle fires, even though 999 tombstones
  // went through the queue.
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(SchedulerPropertyTest, NextTimeTracksEarliestLiveEvent) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    Scheduler sched;
    std::vector<ModelEvent> model;
    std::vector<Scheduler::Handle> handles;
    const int n = 1 + static_cast<int>(rng.below(50));
    for (int i = 0; i < n; ++i) {
      const SimTime t = 1 + rng.below(20);
      handles.push_back(sched.schedule_at(t, [] {}));
      model.push_back({t, static_cast<std::uint64_t>(i), i});
    }
    // Cancel a random subset — including, sometimes, the earliest events,
    // which is the case next_time() must prune through.
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (rng.below(2) == 0) {
        sched.cancel(handles[i]);
        model[i].cancelled = true;
      }
    }
    std::optional<SimTime> expected;
    for (const ModelEvent& e : model) {
      if (!e.cancelled && (!expected || e.time < *expected)) expected = e.time;
    }
    EXPECT_EQ(sched.next_time(), expected) << "seed " << seed;
  }
}

TEST(SchedulerPropertyTest, NextTimeEmptyAndAfterDrain) {
  Scheduler sched;
  EXPECT_EQ(sched.next_time(), std::nullopt);
  auto h = sched.schedule_at(7, [] {});
  EXPECT_EQ(sched.next_time(), std::optional<SimTime>{7});
  sched.cancel(h);
  EXPECT_EQ(sched.next_time(), std::nullopt);
  sched.schedule_at(9, [] {});
  sched.run();
  EXPECT_EQ(sched.next_time(), std::nullopt);
}

}  // namespace
}  // namespace evs
