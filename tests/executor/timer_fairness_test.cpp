// Wall-clock timer mapping under sharding (ISSUE 10 satellite): a worker
// multiplexing K transports must not let node 1's heavy delivery starve
// node K's timers. The guarantee rests on the per-pass dispatch budget
// (Options::max_recv_per_poll bounds service()), which caps the time any
// single member can hold the worker before every other member's
// Scheduler::run_until(wall_now) runs again.
//
// Token-loss retransmission rides exactly this machinery — a token timer is
// just a Scheduler entry on the node's transport — so the lateness bound
// here is the retransmission-latency bound of the ring.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "net/executor.hpp"
#include "net/udp_transport.hpp"
#include "testkit/live_cluster.hpp"

namespace evs {
namespace {

#define SKIP_IF_NO_SOCKETS(st)                                                 \
  do {                                                                         \
    if (!(st).ok()) GTEST_SKIP() << "sockets unavailable: " << (st).message(); \
  } while (0)

/// Endpoint that burns real time per packet — a node with expensive
/// delivery handling.
struct SlowEndpoint : Endpoint {
  std::chrono::microseconds cost;
  std::atomic<std::uint64_t> received{0};
  explicit SlowEndpoint(std::chrono::microseconds c) : cost(c) {}
  void on_packet(const Packet&) override {
    std::this_thread::sleep_for(cost);
    received.fetch_add(1, std::memory_order_relaxed);
  }
};

TEST(TimerFairnessTest, TimerLatencyBoundedUnderBusyCoScheduledNeighbor) {
  // One worker, two transports: X floods with 500us-per-packet handling, Y
  // only runs a 10ms repeating timer. The budget (8 dispatches/pass) caps
  // X's slice at ~4ms, so Y's timer lateness stays far below the flood's
  // total work (hundreds of ms). Without the bounded budget, one service
  // pass would chew the whole socket queue and Y's timer would fire
  // that entire backlog late.
  UdpTransport::Options busy_opts;
  busy_opts.max_recv_per_poll = 8;
  UdpTransport busy(busy_opts);
  UdpTransport quiet;
  SKIP_IF_NO_SOCKETS(busy.open());
  SKIP_IF_NO_SOCKETS(quiet.open());
  UdpTransport feeder;
  SKIP_IF_NO_SOCKETS(feeder.open());

  const ProcessId p_busy{1}, p_feeder{2};
  ASSERT_TRUE(busy.add_peer(p_feeder, feeder.local_addr()).ok());
  ASSERT_TRUE(feeder.add_peer(p_busy, busy.local_addr()).ok());
  SlowEndpoint slow(std::chrono::microseconds(500));
  busy.attach(p_busy, &slow);

  // Y's repeating timer: records how late each firing is against its own
  // wall clock, then re-arms. All on the worker thread — no locking needed
  // beyond the atomics the harness reads.
  constexpr SimTime kPeriodUs = 10'000;
  std::atomic<std::uint64_t> max_late_us{0};
  std::atomic<std::uint64_t> fires{0};
  struct Rearm {
    UdpTransport* t;
    SimTime period;
    std::atomic<std::uint64_t>* max_late;
    std::atomic<std::uint64_t>* fires;
    SimTime due{0};
    void arm() {
      due = t->wall_now_us() + period;
      t->scheduler().schedule_at(due, [this] {
        const SimTime now = t->wall_now_us();
        const std::uint64_t late = now > due ? now - due : 0;
        std::uint64_t prev = max_late->load(std::memory_order_relaxed);
        while (late > prev &&
               !max_late->compare_exchange_weak(prev, late,
                                                std::memory_order_relaxed)) {
        }
        fires->fetch_add(1, std::memory_order_relaxed);
        arm();
      });
    }
  };
  Rearm rearm{&quiet, kPeriodUs, &max_late_us, &fires};
  rearm.arm();

  net::Executor::Options eo;
  eo.num_workers = 1;
  net::Executor ex(eo);
  ex.add(&busy);
  ex.add(&quiet);
  ASSERT_TRUE(ex.start().ok());

  // Flood X for ~600ms from the harness thread (the feeder drives itself).
  const auto flood_until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(600);
  while (std::chrono::steady_clock::now() < flood_until) {
    for (int i = 0; i < 16; ++i) feeder.unicast(p_feeder, p_busy, {0x1});
    feeder.poll_once(500);
  }
  ex.stop();

  EXPECT_GT(slow.received.load(), 100u) << "flood never reached the busy node";
  EXPECT_GE(fires.load(), 10u) << "quiet transport's timer barely ran";
  // The regression bound: lateness stays an order of magnitude below the
  // flood's total handling time (>= 50ms of 500us dispatches). An unbounded
  // drain would show up as a triple-digit-ms spike here.
  EXPECT_LT(max_late_us.load(), 100'000u)
      << "timer starved behind a busy co-scheduled neighbor";
}

TEST(TimerFairnessTest, RingStaysLiveBesideBusyNeighborOnOneWorker) {
  // The protocol-level version: a 2-node ring co-scheduled with a flooded
  // slow neighbor on a single worker keeps rotating its token and
  // delivering (token-loss timers, retransmissions, and deliveries all ride
  // the same budgeted service passes).
  LiveCluster::Options lo;
  lo.num_processes = 2;
  LiveCluster ring(lo);
  net::Executor::Options eo;
  eo.num_workers = 1;
  net::Executor ex(eo);
  SKIP_IF_NO_SOCKETS(ring.prepare(ex));

  UdpTransport::Options busy_opts;
  busy_opts.max_recv_per_poll = 8;
  UdpTransport busy(busy_opts);
  SKIP_IF_NO_SOCKETS(busy.open());
  UdpTransport feeder;
  SKIP_IF_NO_SOCKETS(feeder.open());
  const ProcessId p_busy{90}, p_feeder{91};
  ASSERT_TRUE(busy.add_peer(p_feeder, feeder.local_addr()).ok());
  ASSERT_TRUE(feeder.add_peer(p_busy, busy.local_addr()).ok());
  SlowEndpoint slow(std::chrono::microseconds(300));
  busy.attach(p_busy, &slow);
  ex.add(&busy);

  ASSERT_TRUE(ex.start().ok());
  ring.launch();
  ASSERT_TRUE(ring.await_stable()) << "2-ring never formed";

  std::atomic<bool> stop_flood{false};
  std::thread flooder([&] {
    while (!stop_flood.load(std::memory_order_acquire)) {
      for (int i = 0; i < 16; ++i) feeder.unicast(p_feeder, p_busy, {0x2});
      feeder.poll_once(500);
    }
  });

  // 20 messages through the ring while the neighbor is saturated.
  for (int i = 0; i < 20; ++i) {
    const auto r = ring.send(0, Service::Safe, {static_cast<std::uint8_t>(i)});
    ASSERT_TRUE(r.ok()) << r.status().message();
  }
  const bool delivered = ring.await(
      [&] { return ring.total_delivered() >= 40; }, 15'000'000);
  stop_flood.store(true, std::memory_order_release);
  flooder.join();
  EXPECT_TRUE(delivered)
      << "ring starved behind the busy neighbor: delivered only "
      << ring.total_delivered();
  ring.stop();
  EXPECT_EQ(ring.check_report(), "");
}

}  // namespace
}  // namespace evs
