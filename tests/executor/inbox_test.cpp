// TaskInbox units: the lock-free MPSC door the executor-era transports use
// in place of the mutex-guarded post queue. Pure in-memory — no sockets —
// so these run everywhere, unconditionally.
#include "net/inbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace evs::net {
namespace {

TEST(TaskInboxTest, DrainRunsTasksInPostOrder) {
  TaskInbox inbox;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(inbox.push([&order, i] { order.push_back(i); }));
  }
  EXPECT_EQ(inbox.depth(), 5u);
  const std::size_t ran = inbox.drain([](TaskInbox::Task&& t) { t(); });
  EXPECT_EQ(ran, 5u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(inbox.depth(), 0u);
  // Empty drain is a no-op.
  EXPECT_EQ(inbox.drain([](TaskInbox::Task&& t) { t(); }), 0u);
}

TEST(TaskInboxTest, ConcurrentPushersAllLand) {
  TaskInbox inbox;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<int> ran{0};
  std::vector<std::thread> pushers;
  std::atomic<bool> go{false};
  for (int t = 0; t < kThreads; ++t) {
    pushers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(inbox.push([&ran] { ran.fetch_add(1); }));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Drain concurrently with the pushes, like a live worker would.
  int total = 0;
  while (total < kThreads * kPerThread) {
    total += static_cast<int>(inbox.drain([](TaskInbox::Task&& t) { t(); }));
  }
  for (auto& th : pushers) th.join();
  total += static_cast<int>(inbox.drain([](TaskInbox::Task&& t) { t(); }));
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
  EXPECT_EQ(total, kThreads * kPerThread);
}

TEST(TaskInboxTest, CloseRunsAcceptedTasksAndFailsLaterPushes) {
  TaskInbox inbox;
  int ran = 0;
  ASSERT_TRUE(inbox.push([&ran] { ++ran; }));
  ASSERT_TRUE(inbox.push([&ran] { ++ran; }));
  // Close runs what was already in: a stop posted together with work does
  // not strand the work.
  EXPECT_EQ(inbox.close([](TaskInbox::Task&& t) { t(); }), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_TRUE(inbox.closed());
  // The fail-fast half of the lifecycle fix: a push into a closed inbox
  // reports failure instead of stranding the closure.
  EXPECT_FALSE(inbox.push([&ran] { ++ran; }));
  EXPECT_EQ(ran, 2);
  // Idempotent close; drain on a closed inbox is empty.
  EXPECT_EQ(inbox.close([](TaskInbox::Task&& t) { t(); }), 0u);
  EXPECT_EQ(inbox.drain([](TaskInbox::Task&& t) { t(); }), 0u);
}

TEST(TaskInboxTest, CloseRacingPushersNeverStrandsATask) {
  // Every push must either return true AND have its task run, or return
  // false and run nothing — across a racing close. Run several rounds to
  // give the race a chance to land in the close window.
  for (int round = 0; round < 50; ++round) {
    TaskInbox inbox;
    std::atomic<int> ran{0};
    std::atomic<int> accepted{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> pushers;
    for (int t = 0; t < 4; ++t) {
      pushers.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {}
        for (int i = 0; i < 100; ++i) {
          if (inbox.push([&ran] { ran.fetch_add(1); })) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    go.store(true, std::memory_order_release);
    std::size_t closed_ran = inbox.close([](TaskInbox::Task&& t) { t(); });
    for (auto& th : pushers) th.join();
    // Pushes that won the race after close() swapped the sentinel are not in
    // the closed chain; they must have been accepted before the swap — the
    // CAS in push re-checks the sentinel — so accepted == ran always.
    (void)closed_ran;
    EXPECT_EQ(ran.load(), accepted.load()) << "round " << round;
  }
}

TEST(TaskInboxTest, DestructorDiscardsWithoutRunning) {
  int ran = 0;
  {
    TaskInbox inbox;
    ASSERT_TRUE(inbox.push([&ran] { ++ran; }));
  }
  EXPECT_EQ(ran, 0);
}

}  // namespace
}  // namespace evs::net
