// Address-based peer configuration across REAL process boundaries: a
// 2-node EVS ring where the second member lives in a forked child process,
// peers wired by explicit PeerAddr {ip, port} — on a non-loopback interface
// when the host has one — rather than the single-process loopback port
// mesh. This is the deployment shape the paper assumes (processors
// connected by a network), minus the second machine.
//
// Fork discipline: the fork happens before any thread exists in the test
// process (no executor, no LiveCluster), and each process drives its own
// transport inline with poll_once() — single-threaded on both sides. The
// child never touches gtest; it reports through its exit code.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <ifaddrs.h>
#include <netinet/in.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "evs/node.hpp"
#include "net/udp_transport.hpp"
#include "spec/trace.hpp"
#include "storage/stable_store.hpp"
#include "testkit/live_cluster.hpp"

namespace evs {
namespace {

#define SKIP_IF_NO_SOCKETS(st)                                                 \
  do {                                                                         \
    if (!(st).ok()) GTEST_SKIP() << "sockets unavailable: " << (st).message(); \
  } while (0)

/// First non-loopback IPv4 on the host, else loopback: the test exercises
/// real address configuration either way, just with the most "networked"
/// interface available.
std::string pick_interface_ip() {
  std::string ip = "127.0.0.1";
  ifaddrs* addrs = nullptr;
  if (::getifaddrs(&addrs) != 0) return ip;
  for (ifaddrs* a = addrs; a != nullptr; a = a->ifa_next) {
    if (a->ifa_addr == nullptr || a->ifa_addr->sa_family != AF_INET) continue;
    const auto* sin = reinterpret_cast<const sockaddr_in*>(a->ifa_addr);
    const std::uint32_t host = ntohl(sin->sin_addr.s_addr);
    if ((host >> 24) == 127) continue;  // loopback
    char buf[INET_ADDRSTRLEN];
    if (::inet_ntop(AF_INET, &sin->sin_addr, buf, sizeof(buf)) != nullptr) {
      ip = buf;
      break;
    }
  }
  ::freeifaddrs(addrs);
  return ip;
}

/// Drive one ring member to completion: form {1,2}, broadcast one tagged
/// message, and see both tags delivered. Returns 0 on success, a distinct
/// failure code otherwise. Runs identically in parent and child.
int run_member(UdpTransport& transport, ProcessId self, std::uint8_t my_tag) {
  StableStore store;
  TraceLog trace;
  EvsNode node(self, transport, store, &trace, live_node_defaults());
  bool saw_mine = false;
  bool saw_theirs = false;
  node.set_on_deliver([&](const EvsNode::Delivery& d) {
    if (d.payload.empty()) return;
    if (d.payload[0] == my_tag) saw_mine = true;
    if (d.payload[0] != my_tag) saw_theirs = true;
  });
  node.start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool sent = false;
  while (std::chrono::steady_clock::now() < deadline) {
    transport.poll_once(10'000);
    if (!sent && node.state() == EvsNode::State::Operational &&
        node.config().members.size() == 2) {
      if (node.send(Service::Agreed, {my_tag}).ok()) sent = true;
    }
    if (saw_mine && saw_theirs) {
      // Let the final token rotations flush so the peer sees our tag too.
      const auto grace =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
      while (std::chrono::steady_clock::now() < grace) {
        transport.poll_once(10'000);
      }
      return 0;
    }
  }
  if (!sent) return 2;  // ring never formed
  return 3;             // ring formed but deliveries incomplete
}

TEST(CrossProcessLiveTest, TwoProcessRingOverConfiguredEndpoints) {
  const std::string ip = pick_interface_ip();

  UdpTransport::Options opts;
  opts.bind_ip = ip;
  UdpTransport parent_transport(opts);
  SKIP_IF_NO_SOCKETS(parent_transport.open());
  const PeerAddr parent_addr = parent_transport.local_addr();

  int ports[2];
  ASSERT_EQ(::pipe(ports), 0);
  const pid_t child = ::fork();
  if (child < 0) {
    GTEST_SKIP() << "fork unavailable";
  }

  const ProcessId p1{1}, p2{2};
  if (child == 0) {
    // ---- child: member 2, reports via exit code ----
    ::close(ports[0]);
    UdpTransport transport(opts);
    if (!transport.open().ok()) _exit(10);
    const std::uint16_t my_port = transport.port();
    if (::write(ports[1], &my_port, sizeof(my_port)) != sizeof(my_port)) {
      _exit(11);
    }
    ::close(ports[1]);
    if (!transport.add_peer(p1, parent_addr).ok()) _exit(12);
    if (!transport.add_peer(p2, transport.local_addr()).ok()) _exit(13);
    _exit(run_member(transport, p2, /*my_tag=*/0xB2));
  }

  // ---- parent: member 1 ----
  ::close(ports[1]);
  std::uint16_t child_port = 0;
  ASSERT_EQ(::read(ports[0], &child_port, sizeof(child_port)),
            static_cast<ssize_t>(sizeof(child_port)));
  ::close(ports[0]);
  ASSERT_TRUE(parent_transport.add_peer(p1, parent_addr).ok());
  ASSERT_TRUE(parent_transport.add_peer(p2, PeerAddr{ip, child_port}).ok());

  const int mine = run_member(parent_transport, p1, /*my_tag=*/0xA1);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child died abnormally";
  EXPECT_EQ(WEXITSTATUS(wstatus), 0)
      << "child failed with code " << WEXITSTATUS(wstatus) << " (ip " << ip
      << ")";
  EXPECT_EQ(mine, 0) << "parent member failed with code " << mine;
}

}  // namespace
}  // namespace evs
