// net::Executor tests: N transports multiplexed onto W worker threads —
// delivery, timers, post-wakeups, the per-pass dispatch budget, lifecycle
// misuse, and the net.executor.* instruments. Real loopback sockets, so the
// whole file follows the live-label skip contract.
#include "net/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/udp_transport.hpp"

namespace evs {
namespace {

#define SKIP_IF_NO_SOCKETS(st)                                                 \
  do {                                                                         \
    if (!(st).ok()) GTEST_SKIP() << "sockets unavailable: " << (st).message(); \
  } while (0)

struct CountingEndpoint : Endpoint {
  std::atomic<std::uint64_t> received{0};
  void on_packet(const Packet&) override {
    received.fetch_add(1, std::memory_order_relaxed);
  }
};

bool await_for(const std::function<bool()>& pred, int max_ms) {
  for (int i = 0; i < max_ms; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// A mesh of `n` transports with every peer registered (including self).
struct Mesh {
  std::vector<std::unique_ptr<UdpTransport>> transports;
  std::vector<std::unique_ptr<CountingEndpoint>> sinks;

  Status open(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      transports.push_back(std::make_unique<UdpTransport>());
      if (Status st = transports.back()->open(); !st.ok()) return st;
      sinks.push_back(std::make_unique<CountingEndpoint>());
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const Status st = transports[i]->add_peer(
            ProcessId{static_cast<std::uint32_t>(j + 1)},
            transports[j]->local_addr());
        if (!st.ok()) return st;
      }
      transports[i]->attach(ProcessId{static_cast<std::uint32_t>(i + 1)},
                            sinks[i].get());
    }
    return Status::ok_status();
  }
};

TEST(ExecutorTest, OneWorkerDrivesManyTransports) {
  Mesh mesh;
  SKIP_IF_NO_SOCKETS(mesh.open(4));
  net::Executor::Options opts;
  opts.num_workers = 1;  // force full multiplexing
  net::Executor ex(opts);
  for (auto& t : mesh.transports) ex.add(t.get());
  ASSERT_TRUE(ex.start().ok());
  EXPECT_EQ(ex.num_workers(), 1u);

  // A broadcast posted into each transport reaches every member including
  // the sender — all four sockets serviced by the single worker.
  for (std::size_t i = 0; i < 4; ++i) {
    UdpTransport* t = mesh.transports[i].get();
    const ProcessId self{static_cast<std::uint32_t>(i + 1)};
    ASSERT_TRUE(t->post([t, self] { t->broadcast(self, {0xAB}); }));
  }
  EXPECT_TRUE(await_for(
      [&] {
        for (auto& s : mesh.sinks) {
          if (s->received.load(std::memory_order_relaxed) < 4) return false;
        }
        return true;
      },
      2'000))
      << "broadcast mesh never completed on the shared worker";

  ex.stop();
  const obs::MetricsRegistry& m = ex.metrics();
  EXPECT_GT(m.counter_value("net.executor.polls"), 0u);
  const obs::Gauge* workers = m.find_gauge("net.executor.workers");
  ASSERT_NE(workers, nullptr);
  EXPECT_EQ(workers->value(), 1);
  const obs::Gauge* npw = m.find_gauge("net.executor.nodes_per_worker");
  ASSERT_NE(npw, nullptr);
  EXPECT_EQ(npw->value(), 4);
  EXPECT_NE(m.find_histogram("net.executor.inbox_depth"), nullptr);
  EXPECT_NE(m.find_histogram("net.executor.poll_batch"), nullptr);
}

TEST(ExecutorTest, TimersFireOnEveryMultiplexedTransport) {
  Mesh mesh;
  SKIP_IF_NO_SOCKETS(mesh.open(3));
  net::Executor::Options opts;
  opts.num_workers = 1;
  net::Executor ex(opts);
  for (auto& t : mesh.transports) ex.add(t.get());

  // Schedule before start: each transport's Scheduler is merged into the
  // worker's ppoll deadline, so all three fire without any traffic.
  std::atomic<int> fired{0};
  for (auto& t : mesh.transports) {
    t->scheduler().schedule_after(5'000, [&fired] { fired.fetch_add(1); });
  }
  ASSERT_TRUE(ex.start().ok());
  EXPECT_TRUE(await_for([&] { return fired.load() == 3; }, 2'000))
      << "only " << fired.load() << " of 3 timers fired";
  ex.stop();
}

TEST(ExecutorTest, WorkerCountDefaultsToCoresAndClampsToMembers) {
  Mesh mesh;
  SKIP_IF_NO_SOCKETS(mesh.open(2));
  net::Executor ex;  // num_workers = 0: min(cores, members)
  for (auto& t : mesh.transports) ex.add(t.get());
  ASSERT_TRUE(ex.start().ok());
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw == 0 ? 1 : hw;
  EXPECT_EQ(ex.num_workers(), std::min<std::size_t>(cores, 2));
  ex.stop();
}

TEST(ExecutorTest, StartMisuseIsAnError) {
  {
    net::Executor ex;
    const Status st = ex.start();
    EXPECT_EQ(st.code(), Errc::invalid_argument);  // no members
  }
  Mesh mesh;
  SKIP_IF_NO_SOCKETS(mesh.open(1));
  net::Executor ex;
  ex.add(mesh.transports[0].get());
  ASSERT_TRUE(ex.start().ok());
  EXPECT_EQ(ex.start().code(), Errc::invalid_argument);  // double start
  ex.stop();
  EXPECT_EQ(ex.start().code(), Errc::invalid_argument);  // restart unsupported
}

TEST(ExecutorTest, StopIsIdempotentAndFailsLaterPostsFast) {
  Mesh mesh;
  SKIP_IF_NO_SOCKETS(mesh.open(2));
  net::Executor ex;
  for (auto& t : mesh.transports) ex.add(t.get());
  ASSERT_TRUE(ex.start().ok());
  ex.stop();
  ex.stop();  // second stop is a no-op

  // The workers joined and the inboxes closed: post() must fail fast, not
  // hang or touch a dead loop.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(mesh.transports[0]->post([] {}));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            1'000);
  EXPECT_GE(mesh.transports[0]->stats().posts_rejected, 1u);
}

TEST(ExecutorTest, StopRunsTasksPostedWithTheStop) {
  // The close contract: work accepted before the inbox closes runs (on the
  // stopping thread), so a caller that posts work and immediately stops
  // does not lose it.
  Mesh mesh;
  SKIP_IF_NO_SOCKETS(mesh.open(1));
  net::Executor ex;
  ex.add(mesh.transports[0].get());
  ASSERT_TRUE(ex.start().ok());
  std::atomic<bool> ran{false};
  // Whether the worker or the stop path runs it, it must run exactly once.
  const bool posted = mesh.transports[0]->post([&ran] { ran.store(true); });
  ex.stop();
  if (posted) {
    EXPECT_TRUE(ran.load());
  }
}

TEST(ExecutorTest, ServiceBudgetBoundsDispatchesPerPass) {
  // The fairness primitive behind the timer-starvation fix: one service()
  // pass dispatches at most max_recv_per_poll datagrams no matter how deep
  // the socket queue is, so a worker multiplexing K nodes returns to the
  // other K-1 after a bounded slice. Pre-budget, a single pass would chew
  // the entire queue.
  UdpTransport::Options opts;
  opts.max_recv_per_poll = 4;
  UdpTransport receiver(opts);
  UdpTransport sender;
  SKIP_IF_NO_SOCKETS(receiver.open());
  SKIP_IF_NO_SOCKETS(sender.open());
  const ProcessId ps{1}, pr{2};
  ASSERT_TRUE(receiver.add_peer(ps, sender.local_addr()).ok());
  ASSERT_TRUE(sender.add_peer(pr, receiver.local_addr()).ok());
  CountingEndpoint sink;
  receiver.attach(pr, &sink);

  // Queue a pile of datagrams into the receiver's socket buffer.
  for (int i = 0; i < 32; ++i) sender.unicast(ps, pr, {static_cast<std::uint8_t>(i)});
  for (int i = 0; i < 20; ++i) sender.poll_once(1'000);  // flush them out
  ASSERT_TRUE([&] {
    // Wait until the kernel has them queued (received count is only bumped
    // by receiver.service, so probe via a bounded first pass).
    for (int spin = 0; spin < 200; ++spin) {
      if (sender.stats().datagrams_sent >= 32) return true;
      sender.poll_once(1'000);
    }
    return false;
  }()) << "sender never flushed the burst";

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const int first_pass = receiver.service();
  EXPECT_LE(first_pass, 4) << "service() dispatched past its budget";
  EXPECT_GT(first_pass, 0) << "burst never reached the receiver socket";
  // The remainder is still there; subsequent passes drain it budget by
  // budget rather than all at once.
  int total = first_pass;
  for (int i = 0; i < 200 && total < 32; ++i) {
    const int pass = receiver.service();
    EXPECT_LE(pass, 4);
    total += pass;
    if (pass == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(total, 32);
}

}  // namespace
}  // namespace evs
