// LiveCluster lifecycle-misuse suite (mirrors the PR 4 EvsNode misuse
// tests): the harness API must turn every out-of-order call into a fast,
// reportable outcome — never a deadlock, never a use-after-free, never an
// abort. The specific races fixed in ISSUE 10:
//   * call()/post() after stop(): the old mutex-door queue accepted the
//     closure, nobody drained it, and call() waited on the promise forever.
//     Now the closed inbox fails the post fast and call() runs inline.
//   * double open(): was an assert (process death); now invalid_argument.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "testkit/live_cluster.hpp"

namespace evs {
namespace {

#define SKIP_IF_NO_SOCKETS(st)                                                 \
  do {                                                                         \
    if (!(st).ok()) GTEST_SKIP() << "sockets unavailable: " << (st).message(); \
  } while (0)

TEST(LiveLifecycleTest, OpenTwiceIsAnErrorNotAnAbort) {
  LiveCluster cluster(LiveCluster::Options{.num_processes = 2});
  SKIP_IF_NO_SOCKETS(cluster.open());
  const Status st = cluster.open();
  EXPECT_EQ(st.code(), Errc::invalid_argument);
  // The first instance is untouched by the misuse: still running, still
  // able to form a ring.
  EXPECT_TRUE(cluster.running());
  EXPECT_TRUE(cluster.await_stable()) << "misuse broke the live cluster";
}

TEST(LiveLifecycleTest, CallAfterStopRunsInlineWithoutDeadlock) {
  LiveCluster cluster(LiveCluster::Options{.num_processes = 2});
  SKIP_IF_NO_SOCKETS(cluster.open());
  ASSERT_TRUE(cluster.await_stable());
  cluster.stop();

  // Pre-fix this posted into a queue no thread would ever drain and then
  // blocked on the promise: the test itself would hang (the ctest TIMEOUT
  // is the backstop). Post-fix the closure runs inline on this thread.
  std::atomic<bool> ran{false};
  const auto t0 = std::chrono::steady_clock::now();
  cluster.call(0, [&ran] { ran.store(true); });
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_TRUE(ran.load());
  EXPECT_LT(ms, 1'000);
}

TEST(LiveLifecycleTest, PostAfterStopFailsFast) {
  LiveCluster cluster(LiveCluster::Options{.num_processes = 2});
  SKIP_IF_NO_SOCKETS(cluster.open());
  cluster.stop();
  std::atomic<bool> ran{false};
  EXPECT_FALSE(cluster.transport(0).post([&ran] { ran.store(true); }));
  EXPECT_FALSE(ran.load());
  EXPECT_GE(cluster.transport(0).stats().posts_rejected, 1u);
}

TEST(LiveLifecycleTest, StopIsIdempotentAndSampleStillWorks) {
  LiveCluster cluster(LiveCluster::Options{.num_processes = 2});
  SKIP_IF_NO_SOCKETS(cluster.open());
  ASSERT_TRUE(cluster.await_stable());
  cluster.stop();
  cluster.stop();
  cluster.stop();
  // Post-stop inspection: sample() routes through call(), which now runs
  // inline; sinks and metrics stay readable.
  const auto s = cluster.sample(0);
  EXPECT_EQ(s.state, EvsNode::State::Operational);
  (void)cluster.sink(0);
  (void)cluster.aggregate_metrics();
}

TEST(LiveLifecycleTest, SendAfterStopReportsInsteadOfHanging) {
  LiveCluster cluster(LiveCluster::Options{.num_processes = 2});
  SKIP_IF_NO_SOCKETS(cluster.open());
  ASSERT_TRUE(cluster.await_stable());
  cluster.stop();
  // The node object is alive (inspection contract) and the call runs
  // inline; whatever the node answers, the harness returns — it must not
  // block.
  const auto t0 = std::chrono::steady_clock::now();
  (void)cluster.send(0, Service::Safe, {0x1});
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_LT(ms, 1'000);
}

TEST(LiveLifecycleTest, CallsRacingStopNeverDeadlock) {
  // Hammer call() from two harness threads while the main thread stops the
  // cluster: every call must complete (posted-and-run, close-drained, or
  // inline). Completion of this test IS the assertion; TSan builds also
  // check the memory orderings.
  LiveCluster cluster(LiveCluster::Options{.num_processes = 2});
  SKIP_IF_NO_SOCKETS(cluster.open());
  ASSERT_TRUE(cluster.await_stable());

  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> callers;
  for (int t = 0; t < 2; ++t) {
    callers.emplace_back([&cluster, &completed, &go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < 200; ++i) {
        cluster.call(static_cast<std::size_t>(t % 2), [&completed] {
          completed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  cluster.stop();
  for (auto& th : callers) th.join();
  EXPECT_EQ(completed.load(), 400u);
}

}  // namespace
}  // namespace evs
