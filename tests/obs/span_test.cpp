// Span tracing tests: SpanSink unit behaviour, then the nesting/closure
// invariants of the protocol instrumentation over the paper's Figure 6
// scenario (partition during flight, transitional install, remerge).
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "obs/json.hpp"
#include "testkit/cluster.hpp"

namespace evs::obs {
namespace {

constexpr ProcessId kP1{1};

TEST(SpanSink, BeginEndLifecycle) {
  SpanSink sink;
  const SpanId a = sink.begin(kP1, "outer", 100);
  ASSERT_NE(a, 0u);
  const SpanId b = sink.begin(kP1, "inner", 150, a);
  EXPECT_EQ(sink.open_count(), 2u);

  sink.end(b, 200);
  sink.end(a, 300);
  EXPECT_EQ(sink.open_count(), 0u);

  const Span* inner = sink.find(b);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->parent, a);
  EXPECT_TRUE(inner->closed);
  EXPECT_EQ(inner->duration_us(), 50u);
  EXPECT_EQ(sink.find(a)->duration_us(), 200u);
}

TEST(SpanSink, EndIsIdempotentAndIgnoresZero) {
  SpanSink sink;
  const SpanId a = sink.begin(kP1, "s", 10);
  sink.end(a, 20);
  sink.end(a, 99);  // second end must not move end_us
  sink.end(0, 50);  // "no span" id is a no-op
  EXPECT_EQ(sink.find(a)->end_us, 20u);
  EXPECT_EQ(sink.open_count(), 0u);
}

TEST(SpanSink, AttrsAccumulateInOrder) {
  SpanSink sink;
  const SpanId a = sink.begin(kP1, "s", 0);
  sink.attr(a, "ring", "R7");
  sink.attr(a, "members", "3");
  sink.attr(0, "ignored", "x");
  const Span* s = sink.find(a);
  ASSERT_EQ(s->attrs.size(), 2u);
  EXPECT_EQ(s->attrs[0], (std::pair<std::string, std::string>{"ring", "R7"}));
  EXPECT_EQ(s->attrs[1], (std::pair<std::string, std::string>{"members", "3"}));
}

TEST(SpanSink, InstantIsClosedAtCreation) {
  SpanSink sink;
  const SpanId a = sink.instant(kP1, "mark", 42);
  const Span* s = sink.find(a);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->closed);
  EXPECT_EQ(s->start_us, 42u);
  EXPECT_EQ(s->end_us, 42u);
  EXPECT_EQ(sink.open_count(), 0u);
}

TEST(SpanSink, CapacityCapDropsAndCounts) {
  SpanSink::Options opts;
  opts.max_spans = 2;
  SpanSink sink(opts);
  EXPECT_NE(sink.begin(kP1, "a", 0), 0u);
  EXPECT_NE(sink.begin(kP1, "b", 0), 0u);
  EXPECT_EQ(sink.begin(kP1, "c", 0), 0u);  // at capacity: dropped
  EXPECT_EQ(sink.instant(kP1, "d", 0), 0u);
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(sink.spans().size(), 2u);
}

TEST(SpanSink, ChromeTraceAndTimelineExports) {
  SpanSink sink;
  const SpanId a = sink.begin(kP1, "gather", 1'000);
  sink.attr(a, "episode", "1");
  sink.end(a, 3'000);
  sink.begin(kP1, "left.open", 5'000);

  const auto doc = JsonValue::parse(sink.chrome_trace_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_array());
  ASSERT_EQ(doc->array.size(), 2u);
  const JsonValue& ev = doc->array[0];
  EXPECT_EQ(ev.find("name")->string, "gather");
  EXPECT_EQ(ev.find("ph")->string, "X");
  EXPECT_EQ(ev.find("ts")->number, 1'000);
  EXPECT_EQ(ev.find("dur")->number, 2'000);

  const std::string tl = sink.timeline();
  EXPECT_NE(tl.find("gather"), std::string::npos);
  EXPECT_NE(tl.find("left.open"), std::string::npos);
}

// --- Protocol instrumentation invariants over a Fig. 6 run ---

struct Fig6Trace {
  Cluster cluster;
  Fig6Trace() : cluster(options()) {
    EXPECT_TRUE(cluster.await_stable());
    // Messages in flight when the partition hits, as in the paper's
    // Figure 6: some survive into the transitional configuration.
    for (int i = 0; i < 6; ++i) {
      cluster.node(static_cast<std::size_t>(i) % 5)
          .send(Service::Agreed, {static_cast<std::uint8_t>(i)})
          .value();
    }
    cluster.partition({{0, 1, 2}, {3, 4}});
    EXPECT_TRUE(cluster.await_stable());
    cluster.node(0).send(Service::Agreed, {100}).value();
    cluster.node(3).send(Service::Agreed, {101}).value();
    cluster.heal();
    EXPECT_TRUE(cluster.await_quiesce());
  }

  static Cluster::Options options() {
    Cluster::Options opts;
    opts.num_processes = 5;
    opts.seed = 66;
    opts.enable_spans = true;
    return opts;
  }
};

TEST(ProtocolSpans, EpisodeSpansCloseOnceTheClusterIsStable) {
  Fig6Trace t;
  const SpanSink* sink = t.cluster.spans();
  ASSERT_NE(sink, nullptr);
  ASSERT_FALSE(sink->spans().empty());

  std::size_t gathers = 0, recoveries = 0, exchanges = 0, rebroadcasts = 0;
  for (const Span& s : sink->spans()) {
    if (s.name == "gather") ++gathers;
    if (s.name == "recovery") ++recoveries;
    if (s.name == "recovery.exchange") ++exchanges;
    if (s.name == "recovery.rebroadcast") ++rebroadcasts;
    // Every episode span must be closed once the cluster has quiesced; only
    // a token rotation may legitimately be open (the token is in flight).
    if (s.name != "token.rotation") {
      EXPECT_TRUE(s.closed) << s.name << " #" << s.id << " left open";
      EXPECT_GE(s.end_us, s.start_us) << s.name;
    }
  }
  // Initial formation + partition + remerge: every process gathers and
  // recovers repeatedly, and each recovery walks exchange then rebroadcast.
  EXPECT_GE(gathers, 5u * 3u);
  EXPECT_GE(recoveries, 5u * 3u);
  EXPECT_GE(exchanges, recoveries);  // a regather can abandon an exchange
  EXPECT_GT(rebroadcasts, 0u);
}

TEST(ProtocolSpans, RecoveryStepsNestUnderTheirRecoverySpan) {
  Fig6Trace t;
  const SpanSink* sink = t.cluster.spans();
  for (const Span& s : sink->spans()) {
    if (s.name == "recovery.exchange" || s.name == "recovery.rebroadcast") {
      ASSERT_NE(s.parent, 0u) << s.name << " must have a parent";
      const Span* parent = sink->find(s.parent);
      ASSERT_NE(parent, nullptr);
      EXPECT_EQ(parent->name, "recovery");
      EXPECT_EQ(parent->process.value, s.process.value);
      EXPECT_GE(s.start_us, parent->start_us);
      if (s.closed && parent->closed) {
        EXPECT_LE(s.end_us, parent->end_us);
      }
    } else if (s.name == "gather" || s.name == "recovery" ||
               s.name == "config.install" || s.name == "token.rotation") {
      EXPECT_EQ(s.parent, 0u) << s.name << " must be a root span";
    }
  }
}

TEST(ProtocolSpans, ConfigInstallInstantsCarryMembershipAttrs) {
  Fig6Trace t;
  const SpanSink* sink = t.cluster.spans();
  std::size_t installs = 0, transitional_installs = 0;
  for (const Span& s : sink->spans()) {
    if (s.name != "config.install") continue;
    ++installs;
    std::map<std::string, std::string> attrs(s.attrs.begin(), s.attrs.end());
    EXPECT_TRUE(attrs.count("ring")) << "install without ring id";
    EXPECT_TRUE(attrs.count("members"));
    ASSERT_TRUE(attrs.count("transitional"));
    if (attrs["transitional"] == "1") {
      ++transitional_installs;
      // A transitional install reports its delivery plan (Fig. 6's split of
      // regular vs transitional deliveries and discards).
      EXPECT_TRUE(attrs.count("regular_deliveries"));
      EXPECT_TRUE(attrs.count("trans_deliveries"));
      EXPECT_TRUE(attrs.count("discarded"));
    }
  }
  // Every process installs at formation, after the partition and after the
  // remerge; the latter two follow a transitional configuration.
  EXPECT_GE(installs, 5u * 3u);
  EXPECT_GE(transitional_installs, 5u * 2u);
}

TEST(ProtocolSpans, GatherSpansRecordTheirEpisodeAndOutcome) {
  Fig6Trace t;
  const SpanSink* sink = t.cluster.spans();
  bool saw_adopted_gather = false;
  for (const Span& s : sink->spans()) {
    if (s.name != "gather") continue;
    std::map<std::string, std::string> attrs(s.attrs.begin(), s.attrs.end());
    EXPECT_TRUE(attrs.count("episode"));
    // Gathers that adopted a proposal also record the resulting ring.
    if (attrs.count("ring")) {
      saw_adopted_gather = true;
      EXPECT_TRUE(attrs.count("members"));
    }
  }
  EXPECT_TRUE(saw_adopted_gather);
}

TEST(ProtocolSpans, ChromeTraceOfARealRunParses) {
  Fig6Trace t;
  const SpanSink* sink = t.cluster.spans();
  const auto doc = JsonValue::parse(sink->chrome_trace_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_array());
  EXPECT_EQ(doc->array.size(), sink->spans().size());
  EXPECT_FALSE(sink->timeline().empty());
}

TEST(ProtocolSpans, DisabledByDefaultMeansNoSink) {
  Cluster cluster;  // Options::enable_spans defaults to false
  EXPECT_EQ(cluster.spans(), nullptr);
  ASSERT_TRUE(cluster.await_stable());  // nodes run fine with a null sink
}

}  // namespace
}  // namespace evs::obs
