// Unit tests for the typed metrics layer (obs/metrics.hpp) plus the
// determinism acceptance criterion: a fixed (seed, FaultPlan) run must
// serialize to byte-identical snapshot JSON every time.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "sim/faults.hpp"
#include "testkit/cluster.hpp"

namespace evs::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  MetricsRegistry r;
  Counter& c = r.counter("x");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(r.counter_value("x"), 42u);
  EXPECT_EQ(r.counter_value("never-created"), 0u);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry r;
  Gauge& g = r.gauge("depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(Histogram, Log2BucketBoundaries) {
  // Bucket i holds samples needing exactly i significant bits: bucket 0 is
  // {0}, bucket 1 is {1}, bucket 2 is {2,3}, bucket 3 is {4..7}, ...
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(~0ull), Histogram::kBuckets - 1);

  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);
  // Every sample lands inside its own bucket's bounds.
  for (std::uint64_t s : {0ull, 1ull, 5ull, 100ull, 65'536ull, ~0ull}) {
    const std::size_t b = Histogram::bucket_of(s);
    EXPECT_LE(s, Histogram::bucket_upper(b)) << s;
    if (b > 0) {
      EXPECT_GT(s, Histogram::bucket_upper(b - 1)) << s;
    }
  }
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty histogram reports 0, not ~0
  h.record(10);
  h.record(3);
  h.record(500);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 513u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 500u);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(10)), 1u);
}

TEST(Histogram, PercentileIsBucketUpperBound) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(4);  // bucket 3, upper 7
  h.record(1'000'000);                       // lone outlier
  EXPECT_EQ(h.percentile(50), 7u);
  EXPECT_GE(h.percentile(100), 1'000'000u / 2);  // outlier's bucket upper
  EXPECT_LE(h.percentile(0), 7u);
}

TEST(Histogram, MergeIsLossless) {
  Histogram a, b;
  a.record(5);
  a.record(9);
  b.record(1);
  b.record(1'000);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 1'015u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1'000u);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry r;
  Counter& a = r.counter("a");
  // Creating more instruments must not invalidate the earlier reference
  // (instrumented code caches handles at wiring time).
  for (int i = 0; i < 100; ++i) r.counter("c" + std::to_string(i));
  a.inc();
  EXPECT_EQ(&a, &r.counter("a"));
  EXPECT_EQ(r.counter_value("a"), 1u);
}

TEST(MetricsRegistry, FindReturnsNullWhenAbsent) {
  MetricsRegistry r;
  EXPECT_EQ(r.find_counter("x"), nullptr);
  EXPECT_EQ(r.find_gauge("x"), nullptr);
  EXPECT_EQ(r.find_histogram("x"), nullptr);
  r.counter("x").inc();
  ASSERT_NE(r.find_counter("x"), nullptr);
  EXPECT_EQ(r.find_counter("x")->value(), 1u);
}

TEST(MetricsRegistry, MergeFromAddsAllInstrumentKinds) {
  MetricsRegistry a, b;
  a.counter("c").inc(2);
  b.counter("c").inc(3);
  b.counter("only-b").inc(7);
  a.gauge("g").set(10);
  b.gauge("g").set(5);
  a.histogram("h").record(4);
  b.histogram("h").record(16);
  a.merge_from(b);
  EXPECT_EQ(a.counter_value("c"), 5u);
  EXPECT_EQ(a.counter_value("only-b"), 7u);
  EXPECT_EQ(a.find_gauge("g")->value(), 15);  // aggregated gauges are sums
  EXPECT_EQ(a.find_histogram("h")->count(), 2u);
  EXPECT_EQ(a.find_histogram("h")->sum(), 20u);
}

TEST(MetricsRegistry, EnumerationIsSorted) {
  MetricsRegistry r;
  r.counter("zebra").inc();
  r.counter("alpha").inc();
  r.counter("mid").inc();
  std::vector<std::string> names;
  for (const auto& [name, c] : r.counters()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zebra"}));
}

// --- Determinism acceptance: byte-identical snapshots across runs ---

// One scripted adversarial scenario: storm faults, a partition, traffic on
// both sides, a heal, more traffic. Returns the final snapshot JSON.
std::string run_scenario() {
  Cluster::Options opts;
  opts.num_processes = 5;
  opts.seed = 20'26;
  opts.faults = FaultPlan::storm(0.05, 0.05, 0.02);
  Cluster cluster(opts);
  EXPECT_TRUE(cluster.await_stable());
  cluster.node(0).send(Service::Agreed, {1, 2, 3}).value();
  cluster.partition({{0, 1, 2}, {3, 4}});
  EXPECT_TRUE(cluster.await_stable());
  cluster.node(1).send(Service::Safe, {4, 5}).value();
  cluster.node(3).send(Service::Agreed, {6}).value();
  cluster.run_for(100'000);
  cluster.heal();
  EXPECT_TRUE(cluster.await_stable());
  cluster.node(4).send(Service::Agreed, {7, 8}).value();
  EXPECT_TRUE(cluster.await_quiesce());
  return cluster.snapshot().to_json();
}

TEST(SnapshotDeterminism, FixedSeedAndFaultPlanGiveByteIdenticalJson) {
  // The two clusters must not coexist: Log::set_time_source binds to the
  // most recently constructed cluster, so each run lives in its own scope.
  const std::string first = run_scenario();
  const std::string second = run_scenario();
  EXPECT_EQ(first, second);
  // The snapshot is non-trivial: it must actually carry protocol metrics.
  EXPECT_NE(first.find("\"evs.delivered\""), std::string::npos);
  EXPECT_NE(first.find("\"evs.obs.snapshot\""), std::string::npos);
  EXPECT_NE(first.find("\"faults\""), std::string::npos);
}

TEST(SnapshotDeterminism, DifferentSeedsDiverge) {
  auto run_with_seed = [](std::uint64_t seed) {
    Cluster::Options opts;
    opts.num_processes = 4;
    opts.seed = seed;
    opts.net.loss_probability = 0.05;
    Cluster cluster(opts);
    EXPECT_TRUE(cluster.await_stable());
    for (int i = 0; i < 10; ++i) {
      cluster.node(static_cast<std::size_t>(i) % 4)
          .send(Service::Agreed, {static_cast<std::uint8_t>(i)})
          .value();
    }
    EXPECT_TRUE(cluster.await_quiesce());
    return cluster.snapshot().to_json();
  };
  // Sanity check that the byte-compare above is meaningful: under loss,
  // different seeds should take observably different paths.
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

TEST(ClusterMetrics, AggregateSumsNodeAndNetworkRegistries) {
  Cluster cluster;
  ASSERT_TRUE(cluster.await_stable());
  cluster.node(0).send(Service::Agreed, {1}).value();
  ASSERT_TRUE(cluster.await_quiesce());

  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    delivered += cluster.node(i).metrics().counter_value("evs.delivered");
  }
  const MetricsRegistry agg = cluster.aggregate_metrics();
  EXPECT_EQ(agg.counter_value("evs.delivered"), delivered);
  EXPECT_EQ(delivered, cluster.size());  // one agreed message, all deliver
  // The network's registry is folded in too.
  EXPECT_GT(agg.counter_value("net.deliveries"), 0u);
}

TEST(ClusterMetrics, NodeRegistryMatchesLegacyStats) {
  Cluster cluster;
  ASSERT_TRUE(cluster.await_stable());
  cluster.node(0).send(Service::Agreed, {9}).value();
  ASSERT_TRUE(cluster.await_quiesce());
  const EvsNode::Stats s = cluster.node(0).stats();
  const MetricsRegistry& m = cluster.node(0).metrics();
  EXPECT_EQ(m.counter_value("evs.sent"), s.sent);
  EXPECT_EQ(m.counter_value("evs.delivered"), s.delivered);
  EXPECT_EQ(m.counter_value("evs.conf_changes"), s.conf_changes);
  EXPECT_EQ(m.counter_value("evs.gathers"), s.gathers);
  EXPECT_EQ(m.counter_value("evs.tokens_handled"), s.tokens_handled);
}

}  // namespace
}  // namespace evs::obs
