// One test per EvsNode::Options::validate() rule: every inconsistent
// combination is rejected at construction time with Errc::invalid_options
// and a detail string naming the violated rule, instead of livelocking the
// simulation later.
#include <gtest/gtest.h>

#include "evs/node.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

void expect_rejected(const EvsNode::Options& opts, const char* rule_fragment) {
  const Status st = opts.validate();
  ASSERT_FALSE(st.ok()) << "expected rejection: " << rule_fragment;
  EXPECT_EQ(st.code(), Errc::invalid_options);
  EXPECT_NE(st.detail().find(rule_fragment), std::string::npos)
      << "detail '" << st.detail() << "' does not name '" << rule_fragment << "'";
}

TEST(OptionsValidate, DefaultsAreConsistent) {
  EXPECT_TRUE(EvsNode::Options{}.validate().ok());
}

TEST(OptionsValidate, TimeoutsMustBePositive) {
  EvsNode::Options o;
  o.token_loss_timeout_us = 0;
  expect_rejected(o, "token_loss_timeout_us");

  o = {};
  o.beacon_interval_us = 0;
  expect_rejected(o, "beacon_interval_us");

  o = {};
  o.join_interval_us = 0;
  expect_rejected(o, "join_interval_us");

  o = {};
  o.gather_fail_timeout_us = 0;
  expect_rejected(o, "gather_fail_timeout_us");

  o = {};
  o.consensus_wait_timeout_us = 0;
  expect_rejected(o, "consensus_wait_timeout_us");

  o = {};
  o.exchange_interval_us = 0;
  expect_rejected(o, "exchange_interval_us");

  o = {};
  o.recovery_timeout_us = 0;
  expect_rejected(o, "recovery_timeout_us");

  o = {};
  o.singleton_token_interval_us = 0;
  expect_rejected(o, "singleton_token_interval_us");

  o = {};
  o.token_retransmit_interval_us = 0;
  expect_rejected(o, "token_retransmit_interval_us");
}

TEST(OptionsValidate, RetransmitBurstMustStayBelowLossTimeout) {
  EvsNode::Options o;
  o.token_retransmit_limit = -1;
  expect_rejected(o, "token_retransmit_limit must be non-negative");

  // Exactly at the boundary (limit * interval == loss timeout) is rejected:
  // the guard would still be resending a dead token when the loss timer
  // fires, and the resulting gather races the resends.
  o = {};
  o.token_loss_timeout_us = 7'500;
  o.token_retransmit_interval_us = 2'500;
  o.token_retransmit_limit = 3;
  expect_rejected(o, "below token_loss_timeout_us");

  // Strictly below passes.
  o.token_loss_timeout_us = 7'501;
  EXPECT_TRUE(o.validate().ok());
}

TEST(OptionsValidate, JoinIntervalMustStayBelowGatherFailTimeout) {
  // A candidate needs several join broadcasts before it is failed for
  // silence, or every gather immediately shrinks to a singleton.
  EvsNode::Options o;
  o.join_interval_us = o.gather_fail_timeout_us;
  expect_rejected(o, "join_interval_us must stay below gather_fail_timeout_us");
  o.join_interval_us = o.gather_fail_timeout_us - 1;
  EXPECT_TRUE(o.validate().ok());
}

TEST(OptionsValidate, ExchangeIntervalMustStayBelowRecoveryTimeout) {
  EvsNode::Options o;
  o.exchange_interval_us = o.recovery_timeout_us;
  expect_rejected(o, "exchange_interval_us must stay below recovery_timeout_us");
}

TEST(OptionsValidate, PayloadLimitMustLeaveFrameHeadroom) {
  EvsNode::Options o;
  o.max_payload_bytes = 0;
  expect_rejected(o, "max_payload_bytes must be positive");

  o = {};
  o.max_payload_bytes = wire::kMaxFrameBody;
  expect_rejected(o, "frame headroom");

  o.max_payload_bytes = wire::kMaxFrameBody - 4096;
  EXPECT_TRUE(o.validate().ok());
}

TEST(OptionsValidate, OrderingLimitsAreChecked) {
  EvsNode::Options o;
  o.ordering.max_new_per_token = 0;
  expect_rejected(o, "ordering.max_new_per_token");

  o = {};
  o.ordering.max_retransmit_per_token = -1;
  expect_rejected(o, "ordering.max_retransmit_per_token");

  o = {};
  o.ordering.max_rtr_entries = 0;
  expect_rejected(o, "ordering.max_rtr_entries");

  // The ring must never grow a request set its own codec would reject.
  o = {};
  o.ordering.max_rtr_entries = kMaxTokenRtr + 1;
  expect_rejected(o, "kMaxTokenRtr");
}

TEST(OptionsValidate, FlowControlAndBackpressureLimitsAreChecked) {
  EvsNode::Options o;
  o.ordering.max_new_per_token = 64;
  o.ordering.flow_control_window = 32;
  expect_rejected(o, "flow_control_window");

  o = {};
  o.max_pending_sends = 0;
  expect_rejected(o, "max_pending_sends");

  o = {};
  o.ordering.flow_control_window = static_cast<std::uint32_t>(o.ordering.max_new_per_token);
  EXPECT_TRUE(o.validate().ok());
}

}  // namespace
}  // namespace evs
