// JSON layer tests: writer/parser round-trips (including escaping and
// member ordering), the metrics/snapshot/report validators on both valid
// and malformed documents, and the real exporters feeding the validators.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "testkit/cluster.hpp"
#include "testkit/report.hpp"

namespace evs::obs {
namespace {

TEST(JsonWriter, WritesNestedStructures) {
  JsonWriter w;
  w.begin_object();
  w.kv("a", std::uint64_t{1});
  w.key("b").begin_array();
  w.value(std::int64_t{-2});
  w.value("three");
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[-2,"three",true,null]})");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  JsonWriter w;
  w.begin_object();
  w.kv("k", "a\"b\\c\n\t\x01z");
  w.end_object();
  const std::string out = w.take();
  EXPECT_EQ(out, "{\"k\":\"a\\\"b\\\\c\\n\\t\\u0001z\"}");
  // And the parser undoes exactly that escaping.
  const auto v = JsonValue::parse(out);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("k")->string, "a\"b\\c\n\t\x01z");
}

TEST(JsonValue, RoundTripPreservesMemberOrder) {
  const auto v = JsonValue::parse(R"({"zebra":1,"alpha":2,"zebra":3})");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->object.size(), 3u);
  EXPECT_EQ(v->object[0].first, "zebra");  // source order, not sorted
  EXPECT_EQ(v->object[1].first, "alpha");
  EXPECT_EQ(v->find("zebra")->number, 1);  // find() = first occurrence
}

TEST(JsonValue, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::parse("").has_value());
  EXPECT_FALSE(JsonValue::parse("{").has_value());
  EXPECT_FALSE(JsonValue::parse("{}{}").has_value());  // trailing garbage
  EXPECT_FALSE(JsonValue::parse("{\"a\":}").has_value());
  EXPECT_FALSE(JsonValue::parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::parse("'single'").has_value());
}

MetricsRegistry sample_registry() {
  MetricsRegistry r;
  r.counter("evs.sent").inc(3);
  r.counter("evs.backpressure_rejections");
  r.counter("net.datagrams_packed").inc(2);
  r.counter("ordering.piggybacked_msgs").inc(4);
  r.counter("storage.writes").inc(5);
  r.counter("storage.bytes").inc(240);
  r.counter("storage.write_failures");
  r.counter("storage.torn_records");
  r.counter("storage.crc_failures");
  r.counter("storage.repairs");
  r.gauge("evs.pending_sends").set(2);
  r.gauge("ordering.store_bytes").set(48);
  r.gauge("ordering.store_msgs").set(3);
  r.histogram("evs.gather_us").record(1'500);
  r.histogram("evs.gather_us").record(40);
  r.histogram("evs.deliver_batch_size").record(8);
  return r;
}

TEST(MetricsJson, RoundTripsAndValidates) {
  const std::string doc = metrics_json(sample_registry());
  const auto v = JsonValue::parse(doc);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(validate_metrics_json(*v).ok());
  EXPECT_EQ(v->find("counters")->find("evs.sent")->number, 3);
  EXPECT_EQ(v->find("gauges")->find("evs.pending_sends")->number, 2);
  const JsonValue* h = v->find("histograms")->find("evs.gather_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->number, 2);
  EXPECT_EQ(h->find("sum")->number, 1'540);
  EXPECT_EQ(h->find("min")->number, 40);
  EXPECT_EQ(h->find("max")->number, 1'500);
  // Buckets are sparse: exactly the two non-empty ones appear.
  EXPECT_EQ(h->find("buckets")->object.size(), 2u);
}

TEST(MetricsJson, ValidatorRejectsShapeErrors) {
  auto check = [](const char* doc) {
    const auto v = JsonValue::parse(doc);
    EXPECT_TRUE(v.has_value()) << doc;
    return validate_metrics_json(*v);
  };
  EXPECT_FALSE(check(R"({"gauges":{},"histograms":{}})").ok());  // no counters
  EXPECT_FALSE(check(R"({"counters":[],"gauges":{},"histograms":{}})").ok());
  EXPECT_FALSE(  // counter member must be a number
      check(R"({"counters":{"x":"1"},"gauges":{},"histograms":{}})").ok());
  EXPECT_FALSE(  // histogram missing a required field (no "sum")
      check(R"({"counters":{},"gauges":{},"histograms":{"h":{"count":1,"min":0,"max":0,"p50":0,"p99":0,"buckets":{}}}})")
          .ok());
  EXPECT_FALSE(  // histogram bucket values must be numbers
      check(R"({"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":0,"min":0,"max":0,"p50":0,"p99":0,"buckets":{"3":[]}}}})")
          .ok());
  EXPECT_TRUE(check(R"({"counters":{},"gauges":{},"histograms":{}})").ok());
}

TEST(SnapshotJson, RealClusterSnapshotValidates) {
  Cluster cluster;
  ASSERT_TRUE(cluster.await_stable());
  cluster.node(0).send(Service::Agreed, {1}).value();
  ASSERT_TRUE(cluster.await_quiesce());
  const std::string doc = cluster.snapshot().to_json();
  EXPECT_TRUE(validate_document(doc).ok()) << validate_document(doc).message();

  const auto v = JsonValue::parse(doc);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("schema")->string, "evs.obs.snapshot");
  EXPECT_EQ(v->find("version")->number, 1);
  EXPECT_EQ(v->find("nodes")->array.size(), cluster.size());
  // The text report is the same snapshot, rendered for humans.
  const std::string text = cluster.snapshot().to_text();
  EXPECT_NE(text.find("delivered="), std::string::npos);
  EXPECT_NE(text.find("(no injector installed)"), std::string::npos);
}

TEST(SnapshotJson, ValidatorRejectsHeaderAndShapeErrors) {
  auto reject = [](const char* doc) {
    const auto v = JsonValue::parse(doc);
    ASSERT_TRUE(v.has_value()) << doc;
    EXPECT_FALSE(validate_snapshot_json(*v).ok()) << doc;
  };
  reject(R"({"version":1,"time_us":0,"nodes":[]})");  // missing schema
  reject(R"({"schema":"evs.obs.snapshot","version":2,"time_us":0,"nodes":[]})");
  reject(R"({"schema":"evs.obs.snapshot","version":1,"nodes":[]})");  // no time
  reject(R"({"schema":"evs.obs.snapshot","version":1,"time_us":0})");  // no nodes
  reject(  // node entry without a pid
      R"({"schema":"evs.obs.snapshot","version":1,"time_us":0,"nodes":[{"state":"Down"}]})");
}

TEST(ReportJson, BenchReportShapeValidates) {
  // The same document shape every bench_* binary emits via bench_report.hpp.
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "evs.obs.report");
  w.kv("version", 1);
  w.kv("source", "bench_unit_test");
  w.key("runs").begin_array();
  w.begin_object();
  w.kv("name", "BM_Sample/4");
  w.key("metrics");
  write_metrics(w, sample_registry());
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(validate_document(w.str()).ok())
      << validate_document(w.str()).message();
}

// Erase the first member named `name` from an object-valued JsonValue.
void erase_member(JsonValue& obj, std::string_view name) {
  for (auto it = obj.object.begin(); it != obj.object.end(); ++it) {
    if (it->first == name) {
      obj.object.erase(it);
      return;
    }
  }
  FAIL() << "member not present: " << name;
}

JsonValue* find_mutable(JsonValue& obj, std::string_view name) {
  for (auto& [k, v] : obj.object) {
    if (k == name) return &v;
  }
  return nullptr;
}

TEST(SnapshotJson, AggregateMustCarryMemoryInstruments) {
  Cluster cluster;
  ASSERT_TRUE(cluster.await_stable());
  auto v = JsonValue::parse(cluster.snapshot().to_json());
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(validate_snapshot_json(*v).ok());

  // Dropping any memory-bound instrument from the aggregate must fail
  // validation — that's the regression tripwire for the GC/backpressure
  // observability surface.
  for (const char* gauge :
       {"ordering.store_bytes", "ordering.store_msgs", "evs.pending_sends"}) {
    auto copy = *v;
    erase_member(*find_mutable(*find_mutable(copy, "aggregate"), "gauges"), gauge);
    const Status st = validate_snapshot_json(copy);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find(gauge), std::string::npos) << st.message();
  }
  auto copy = *v;
  erase_member(*find_mutable(*find_mutable(copy, "aggregate"), "counters"),
               "evs.backpressure_rejections");
  EXPECT_FALSE(validate_snapshot_json(copy).ok());
}

TEST(SnapshotJson, AggregateMustCarryStorageInstruments) {
  Cluster cluster;
  ASSERT_TRUE(cluster.await_stable());
  auto v = JsonValue::parse(cluster.snapshot().to_json());
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(validate_snapshot_json(*v).ok());

  // Dropping any storage counter from the aggregate must fail validation —
  // the tripwire for the crash-consistency observability surface.
  for (const char* counter :
       {"storage.writes", "storage.bytes", "storage.write_failures",
        "storage.torn_records", "storage.crc_failures", "storage.repairs"}) {
    auto copy = *v;
    erase_member(*find_mutable(*find_mutable(copy, "aggregate"), "counters"),
                 counter);
    const Status st = validate_snapshot_json(copy);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find(counter), std::string::npos) << st.message();
  }
}

TEST(ReportJson, EvsRunsMustCarryMemoryInstruments) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "evs.obs.report");
  w.kv("version", 1);
  w.kv("source", "bench_unit_test");
  w.key("runs").begin_array();
  w.begin_object();
  w.kv("name", "BM_Sample/4");
  w.key("metrics");
  write_metrics(w, sample_registry());
  w.end_object();
  w.end_array();
  w.end_object();
  auto v = JsonValue::parse(w.str());
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(validate_report_json(*v).ok());

  // An EVS-driven run (has evs.sent) missing a memory gauge is rejected...
  auto broken = *v;
  JsonValue& metrics = *find_mutable(find_mutable(broken, "runs")->array[0], "metrics");
  erase_member(*find_mutable(metrics, "gauges"), "ordering.store_bytes");
  EXPECT_FALSE(validate_report_json(broken).ok());

  // ...but a run with no EVS counters at all (e.g. a pure codec bench) is
  // exempt from the memory-instrument requirement.
  auto codec_only = *v;
  JsonValue& m2 = *find_mutable(find_mutable(codec_only, "runs")->array[0], "metrics");
  find_mutable(m2, "counters")->object.clear();
  find_mutable(m2, "gauges")->object.clear();
  EXPECT_TRUE(validate_report_json(codec_only).ok());
}

TEST(ReportJson, EvsRunsMustCarryBatchingInstruments) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "evs.obs.report");
  w.kv("version", 1);
  w.kv("source", "bench_unit_test");
  w.key("runs").begin_array();
  w.begin_object();
  w.kv("name", "BM_Sample/4");
  w.key("metrics");
  write_metrics(w, sample_registry());
  w.end_object();
  w.end_array();
  w.end_object();
  auto v = JsonValue::parse(w.str());
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(validate_report_json(*v).ok());

  // An EVS-driven run stripped of any of the datagram-batching instruments
  // (packing/piggyback counters, delivery-batch-size histogram) is rejected:
  // they are pre-created at node construction, so absence means the hot
  // path lost its instrumentation.
  for (const char* counter : {"net.datagrams_packed", "ordering.piggybacked_msgs"}) {
    auto broken = *v;
    JsonValue& metrics =
        *find_mutable(find_mutable(broken, "runs")->array[0], "metrics");
    erase_member(*find_mutable(metrics, "counters"), counter);
    EXPECT_FALSE(validate_report_json(broken).ok()) << counter;
  }
  auto broken = *v;
  JsonValue& metrics = *find_mutable(find_mutable(broken, "runs")->array[0], "metrics");
  erase_member(*find_mutable(metrics, "histograms"), "evs.deliver_batch_size");
  EXPECT_FALSE(validate_report_json(broken).ok());
}

TEST(ReportJson, KvRunsMustCarryShardInstruments) {
  // A sharded-KV run (marked by kv.puts) must carry the full kv.*/shard.*
  // surface — the tripwire for bench_kv_sharded's committed JSON.
  MetricsRegistry r = sample_registry();
  r.counter("kv.puts").inc(7);
  r.counter("kv.gets").inc(7);
  r.counter("kv.get_misses");
  r.counter("kv.applied").inc(21);
  r.counter("kv.rejected_not_replica");
  r.counter("kv.rejected_backpressure");
  r.counter("kv.reads_blocked");
  r.counter("kv.writes_blocked");
  r.counter("kv.rejected_decode");
  r.counter("kv.transfer.sessions").inc(1);
  r.counter("kv.transfer.completed").inc(1);
  r.counter("kv.transfer.aborted");
  r.counter("kv.transfer.retries");
  r.counter("kv.transfer.chunks_sent").inc(3);
  r.counter("kv.transfer.chunks_applied").inc(3);
  r.counter("kv.transfer.bytes_sent").inc(4096);
  r.counter("kv.transfer.bytes_applied").inc(4096);
  r.counter("kv.transfer.chunk_crc_rejects");
  r.counter("kv.transfer.claims");
  r.counter("kv.reads_catching_up");
  r.counter("kv.stale_reads");
  r.counter("kv.antientropy_rounds").inc(2);
  r.counter("kv.antientropy_repairs");
  r.gauge("shard.local_shards").set(4);
  r.histogram("kv.put_batch_size").record(1);
  r.histogram("kv.transfer.catch_up_us").record(1500);
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "evs.obs.report");
  w.kv("version", 1);
  w.kv("source", "bench_unit_test");
  w.key("runs").begin_array();
  w.begin_object();
  w.kv("name", "BM_KvShardedWrite/4/5/0");
  w.key("metrics");
  write_metrics(w, r);
  w.end_object();
  w.end_array();
  w.end_object();
  auto v = JsonValue::parse(w.str());
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(validate_report_json(*v).ok())
      << validate_report_json(*v).message();

  // Any missing kv counter fails validation — including the full
  // state-transfer / anti-entropy family...
  for (const char* counter :
       {"kv.gets", "kv.applied", "kv.rejected_not_replica",
        "kv.rejected_backpressure", "kv.reads_blocked", "kv.writes_blocked",
        "kv.rejected_decode", "kv.transfer.sessions", "kv.transfer.completed",
        "kv.transfer.aborted", "kv.transfer.retries",
        "kv.transfer.chunks_sent", "kv.transfer.chunks_applied",
        "kv.transfer.bytes_sent", "kv.transfer.bytes_applied",
        "kv.transfer.chunk_crc_rejects", "kv.transfer.claims",
        "kv.reads_catching_up", "kv.stale_reads", "kv.antientropy_rounds",
        "kv.antientropy_repairs"}) {
    auto broken = *v;
    JsonValue& metrics =
        *find_mutable(find_mutable(broken, "runs")->array[0], "metrics");
    erase_member(*find_mutable(metrics, "counters"), counter);
    const Status st = validate_report_json(broken);
    EXPECT_FALSE(st.ok()) << counter;
    EXPECT_NE(st.message().find(counter), std::string::npos) << st.message();
  }
  // ...as do the shard gauge and the batch-size histogram.
  auto no_gauge = *v;
  JsonValue& mg = *find_mutable(find_mutable(no_gauge, "runs")->array[0], "metrics");
  erase_member(*find_mutable(mg, "gauges"), "shard.local_shards");
  EXPECT_FALSE(validate_report_json(no_gauge).ok());
  for (const char* hist : {"kv.put_batch_size", "kv.transfer.catch_up_us"}) {
    auto no_hist = *v;
    JsonValue& mh =
        *find_mutable(find_mutable(no_hist, "runs")->array[0], "metrics");
    erase_member(*find_mutable(mh, "histograms"), hist);
    EXPECT_FALSE(validate_report_json(no_hist).ok()) << hist;
  }

  // A run with no kv.puts marker (plain EVS bench) is exempt.
  auto plain = *v;
  JsonValue& mp = *find_mutable(find_mutable(plain, "runs")->array[0], "metrics");
  erase_member(*find_mutable(mp, "counters"), "kv.puts");
  erase_member(*find_mutable(mp, "counters"), "kv.applied");
  EXPECT_TRUE(validate_report_json(plain).ok())
      << validate_report_json(plain).message();
}

TEST(ReportJson, ExecutorRunsMustCarryInstruments) {
  // An executor-driven run (marked by net.executor.polls) must carry the
  // full net.executor.* surface — the tripwire for bench_executor_scale's
  // committed JSON.
  MetricsRegistry r = sample_registry();
  r.counter("net.executor.polls").inc(100);
  r.counter("net.executor.wakeups").inc(12);
  r.gauge("net.executor.workers").set(2);
  r.gauge("net.executor.nodes_per_worker").set(3);
  r.histogram("net.executor.inbox_depth").record(0);
  r.histogram("net.executor.poll_batch").record(4);
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "evs.obs.report");
  w.kv("version", 1);
  w.kv("source", "bench_unit_test");
  w.key("runs").begin_array();
  w.begin_object();
  w.kv("name", "BM_ExecutorScale/16");
  w.key("metrics");
  write_metrics(w, r);
  w.end_object();
  w.end_array();
  w.end_object();
  auto v = JsonValue::parse(w.str());
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(validate_report_json(*v).ok())
      << validate_report_json(*v).message();

  auto no_counter = *v;
  JsonValue& mc =
      *find_mutable(find_mutable(no_counter, "runs")->array[0], "metrics");
  erase_member(*find_mutable(mc, "counters"), "net.executor.wakeups");
  EXPECT_FALSE(validate_report_json(no_counter).ok());
  for (const char* gauge :
       {"net.executor.workers", "net.executor.nodes_per_worker"}) {
    auto broken = *v;
    JsonValue& m =
        *find_mutable(find_mutable(broken, "runs")->array[0], "metrics");
    erase_member(*find_mutable(m, "gauges"), gauge);
    const Status st = validate_report_json(broken);
    EXPECT_FALSE(st.ok()) << gauge;
    EXPECT_NE(st.message().find(gauge), std::string::npos) << st.message();
  }
  for (const char* hist :
       {"net.executor.inbox_depth", "net.executor.poll_batch"}) {
    auto broken = *v;
    JsonValue& m =
        *find_mutable(find_mutable(broken, "runs")->array[0], "metrics");
    erase_member(*find_mutable(m, "histograms"), hist);
    EXPECT_FALSE(validate_report_json(broken).ok()) << hist;
  }

  // A run with no net.executor.polls marker (sim bench) is exempt.
  auto plain = *v;
  JsonValue& mp = *find_mutable(find_mutable(plain, "runs")->array[0], "metrics");
  erase_member(*find_mutable(mp, "counters"), "net.executor.polls");
  erase_member(*find_mutable(mp, "gauges"), "net.executor.workers");
  EXPECT_TRUE(validate_report_json(plain).ok())
      << validate_report_json(plain).message();
}

TEST(ReportJson, ValidatorRejectsIncompleteRuns) {
  auto reject = [](const char* doc) {
    const auto v = JsonValue::parse(doc);
    ASSERT_TRUE(v.has_value()) << doc;
    EXPECT_FALSE(validate_report_json(*v).ok()) << doc;
  };
  reject(R"({"schema":"evs.obs.report","version":1,"runs":[]})");  // no source
  reject(R"({"schema":"evs.obs.report","version":1,"source":"b"})");  // no runs
  reject(  // run without a name
      R"({"schema":"evs.obs.report","version":1,"source":"b","runs":[{"metrics":{"counters":{},"gauges":{},"histograms":{}}}]})");
  reject(  // run without metrics
      R"({"schema":"evs.obs.report","version":1,"source":"b","runs":[{"name":"r"}]})");
}

TEST(ValidateDocument, DispatchesOnSchemaTag) {
  EXPECT_FALSE(validate_document("not json at all").ok());
  EXPECT_FALSE(validate_document(R"({"no_schema":true})").ok());
  const Status unknown = validate_document(R"({"schema":"evs.obs.mystery"})");
  EXPECT_FALSE(unknown.ok());
  EXPECT_NE(unknown.message().find("unknown schema"), std::string::npos);
}

}  // namespace
}  // namespace evs::obs
