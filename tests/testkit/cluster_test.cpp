// The test harness is public API too: its helpers get their own tests.
#include "testkit/cluster.hpp"

#include <gtest/gtest.h>

namespace evs {
namespace {

TEST(ClusterTest, PidsAreOneBasedAndStable) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  EXPECT_EQ(cluster.pid(0), ProcessId{1});
  EXPECT_EQ(cluster.pid(2), ProcessId{3});
  EXPECT_EQ(cluster.pids(), (std::vector<ProcessId>{ProcessId{1}, ProcessId{2},
                                                    ProcessId{3}}));
  EXPECT_EQ(cluster.size(), 3u);
}

TEST(ClusterTest, AwaitTimesOutWhenPredicateNeverHolds) {
  Cluster cluster(Cluster::Options{.num_processes = 1});
  const SimTime before = cluster.now();
  EXPECT_FALSE(cluster.await([] { return false; }, 10'000, 1'000));
  EXPECT_GE(cluster.now(), before + 10'000);
}

TEST(ClusterTest, AwaitReturnsImmediatelyWhenAlreadyTrue) {
  Cluster cluster(Cluster::Options{.num_processes = 1});
  const SimTime before = cluster.now();
  EXPECT_TRUE(cluster.await([] { return true; }, 1'000'000));
  EXPECT_EQ(cluster.now(), before);
}

TEST(ClusterTest, StableFalseWhileMerging) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  // Right after construction the singletons have not merged yet.
  EXPECT_FALSE(cluster.stable());
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  EXPECT_TRUE(cluster.stable());
}

TEST(ClusterTest, StableIgnoresCrashedNodes) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  cluster.crash(cluster.pid(2));
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  EXPECT_TRUE(cluster.stable());  // survivors form their own configuration
}

TEST(ClusterTest, SinkHelpersFindDeliveries) {
  Cluster cluster(Cluster::Options{.num_processes = 2});
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  const MsgId id = cluster.node(0u).send(Service::Agreed, {1, 2}).value();
  ASSERT_TRUE(cluster.await_quiesce(3'000'000));
  const auto& sink = cluster.sink(1u);
  EXPECT_TRUE(sink.delivered(id));
  const auto* d = sink.find(id);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->payload, (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(sink.delivered_ids().size(), 1u);
  EXPECT_FALSE(sink.delivered(MsgId{ProcessId{9}, 99}));
  EXPECT_EQ(sink.find(MsgId{ProcessId{9}, 99}), nullptr);
}

TEST(ClusterTest, CheckReportFormatsViolations) {
  // A trace with a fabricated violation produces a "[spec ...]" line.
  Cluster cluster(Cluster::Options{.num_processes = 1});
  ASSERT_TRUE(cluster.await_stable(1'000'000));
  TraceEvent bogus;
  bogus.type = EventType::Deliver;
  bogus.process = cluster.pid(0);
  bogus.msg = MsgId{cluster.pid(0), 424242};  // never sent
  bogus.config = cluster.node(0u).config().id;
  bogus.seq = 999;
  bogus.ord = ord_message_delivery(cluster.node(0u).config().id.ring, 999);
  cluster.trace().record(std::move(bogus));
  const std::string report = cluster.check_report(false);
  EXPECT_NE(report.find("[spec 1.3]"), std::string::npos) << report;
}

TEST(ClusterTest, PartitionByIndexMatchesPids) {
  Cluster cluster(Cluster::Options{.num_processes = 4});
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  cluster.partition({{0, 3}, {1, 2}});
  EXPECT_TRUE(cluster.network().connected(cluster.pid(0), cluster.pid(3)));
  EXPECT_FALSE(cluster.network().connected(cluster.pid(0), cluster.pid(1)));
  EXPECT_TRUE(cluster.network().connected(cluster.pid(1), cluster.pid(2)));
}

TEST(ClusterLifecycle, UnknownPidIsRejectedEverywhere) {
  Cluster cluster(Cluster::Options{.num_processes = 2});
  const ProcessId bogus{9};
  EXPECT_EQ(cluster.start(bogus).code(), Errc::invalid_argument);
  EXPECT_EQ(cluster.crash(bogus).code(), Errc::invalid_argument);
  EXPECT_EQ(cluster.recover(bogus).code(), Errc::invalid_argument);
  EXPECT_EQ(cluster.arm_crash_point(bogus, 1, StableStore::TailFault::Clean).code(),
            Errc::invalid_argument);
  EXPECT_EQ(cluster.crash(ProcessId{0}).code(), Errc::invalid_argument);
}

TEST(ClusterLifecycle, DoubleCrashIsRejected) {
  Cluster cluster(Cluster::Options{.num_processes = 2});
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  EXPECT_TRUE(cluster.crash(cluster.pid(1)).ok());
  const Status st = cluster.crash(cluster.pid(1));
  EXPECT_EQ(st.code(), Errc::invalid_argument);
  EXPECT_NE(st.detail().find("not running"), std::string::npos);
}

TEST(ClusterLifecycle, RecoverWithoutCrashIsRejected) {
  Cluster cluster(Cluster::Options{.num_processes = 2});
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  const Status st = cluster.recover(cluster.pid(1));
  EXPECT_EQ(st.code(), Errc::invalid_argument);
  EXPECT_NE(st.detail().find("running"), std::string::npos);
}

TEST(ClusterLifecycle, RecoverBeforeAnyStartIsRejected) {
  Cluster::Options opts;
  opts.num_processes = 1;
  opts.auto_start = false;
  Cluster cluster(opts);
  EXPECT_EQ(cluster.recover(cluster.pid(0)).code(), Errc::invalid_argument);
}

TEST(ClusterLifecycle, StartOnRunningProcessIsRejected) {
  Cluster cluster(Cluster::Options{.num_processes = 1});
  EXPECT_EQ(cluster.start(cluster.pid(0)).code(), Errc::invalid_argument);
}

TEST(ClusterLifecycle, CrashDuringRecoveryInProgressSucceeds) {
  Cluster cluster(Cluster::Options{.num_processes = 2});
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  // Kill the peer; the survivor notices the token loss and re-enters the
  // membership machine. Crashing it *while* that episode is in flight must
  // be an ordinary, accepted lifecycle step.
  ASSERT_TRUE(cluster.crash(cluster.pid(1)).ok());
  ASSERT_TRUE(cluster.await(
      [&] { return cluster.node(0u).state() != EvsNode::State::Operational; },
      3'000'000));
  EXPECT_TRUE(cluster.crash(cluster.pid(0)).ok());
  EXPECT_FALSE(cluster.node(0u).running());
  // Both recover into a working configuration afterwards.
  EXPECT_TRUE(cluster.recover(cluster.pid(0)).ok());
  EXPECT_TRUE(cluster.recover(cluster.pid(1)).ok());
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  EXPECT_EQ(cluster.check_report(false), "");
}

TEST(ClusterLifecycle, RecoverReopensAndRepairsTheStore) {
  Cluster cluster(Cluster::Options{.num_processes = 2});
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  ASSERT_TRUE(cluster.crash(cluster.pid(1)).ok());
  cluster.store(cluster.pid(1)).damage_tail(StableStore::TailFault::Torn);
  ASSERT_TRUE(cluster.recover(cluster.pid(1)).ok());
  EXPECT_GT(cluster.store(cluster.pid(1)).last_open_report().torn_truncated, 0u);
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  EXPECT_EQ(cluster.check_report(false), "");
}

TEST(ClusterTest, AutoStartCanBeDisabled) {
  Cluster::Options opts;
  opts.num_processes = 2;
  opts.auto_start = false;
  Cluster cluster(opts);
  cluster.run_for(50'000);
  EXPECT_EQ(cluster.trace().size(), 0u);  // nothing ran
  cluster.start_all();
  ASSERT_TRUE(cluster.await_stable(3'000'000));
  EXPECT_GT(cluster.trace().size(), 0u);
}

}  // namespace
}  // namespace evs
