#include "testkit/metrics.hpp"

#include <gtest/gtest.h>

namespace evs {
namespace {

const ProcessId P1{1};
const ProcessId P2{2};
const RingId R1{1, P1};
const RingId R2{2, P1};

TraceEvent ev(EventType type, ProcessId p, SimTime t, MsgId m = {},
              bool transitional = false) {
  TraceEvent e;
  e.type = type;
  e.process = p;
  e.time = t;
  e.msg = m;
  e.config = transitional ? ConfigId::trans(R1, R2) : ConfigId::regular(R1);
  return e;
}

TEST(MetricsTest, SummarizeEmpty) {
  const LatencySummary s = summarize({});
  EXPECT_EQ(s.samples, 0u);
  EXPECT_EQ(s.avg_us, 0);
}

TEST(MetricsTest, SummarizePercentiles) {
  std::vector<SimTime> d;
  for (SimTime i = 1; i <= 100; ++i) d.push_back(i);
  const LatencySummary s = summarize(d);
  EXPECT_EQ(s.samples, 100u);
  EXPECT_EQ(s.min_us, 1u);
  EXPECT_EQ(s.max_us, 100u);
  EXPECT_EQ(s.p50_us, 51u);
  EXPECT_EQ(s.p99_us, 100u);
  EXPECT_DOUBLE_EQ(s.avg_us, 50.5);
}

TEST(MetricsTest, DeliveryLatencyFirstVsLast) {
  TraceLog log;
  const MsgId m{P1, 1};
  log.record(ev(EventType::Send, P1, 100, m));
  log.record(ev(EventType::Deliver, P1, 150, m));
  log.record(ev(EventType::Deliver, P2, 400, m));
  EXPECT_DOUBLE_EQ(delivery_latency(log, /*to_last=*/false).avg_us, 50);
  EXPECT_DOUBLE_EQ(delivery_latency(log, /*to_last=*/true).avg_us, 300);
}

TEST(MetricsTest, DeliveryLatencyServiceFilter) {
  TraceLog log;
  MsgId agreed{P1, 1};
  MsgId safe{P1, 2};
  auto mk = [&](MsgId m, Service s, SimTime sent, SimTime delivered) {
    auto e1 = ev(EventType::Send, P1, sent, m);
    e1.service = s;
    log.record(e1);
    auto e2 = ev(EventType::Deliver, P2, delivered, m);
    e2.service = s;
    log.record(e2);
  };
  mk(agreed, Service::Agreed, 0, 10);
  mk(safe, Service::Safe, 0, 90);
  const Service f = Service::Safe;
  EXPECT_DOUBLE_EQ(delivery_latency(log, true, &f).avg_us, 90);
  EXPECT_DOUBLE_EQ(delivery_latency(log, true).avg_us, 50);
}

TEST(MetricsTest, UndeliveredMessagesExcluded) {
  TraceLog log;
  log.record(ev(EventType::Send, P1, 10, MsgId{P1, 1}));
  EXPECT_EQ(delivery_latency(log, true).samples, 0u);
}

TEST(MetricsTest, RecoveryWindowSpansDisruption) {
  TraceLog log;
  // P1: regular config at t=0, delivery at t=100, then (disruption)
  // transitional + new regular at t=5000 in one atomic batch.
  log.record(ev(EventType::DeliverConf, P1, 0));
  log.record(ev(EventType::Deliver, P1, 100, MsgId{P1, 1}));
  log.record(ev(EventType::DeliverConf, P1, 5000, {}, /*transitional=*/true));
  auto reg2 = ev(EventType::DeliverConf, P1, 5000);
  reg2.config = ConfigId::regular(R2);
  log.record(reg2);
  const auto windows = recovery_windows(log);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].process, P1);
  EXPECT_EQ(windows[0].start_us, 100u);
  EXPECT_EQ(windows[0].end_us, 5000u);
  EXPECT_EQ(windows[0].duration_us(), 4900u);
}

TEST(MetricsTest, NoWindowOnFirstInstall) {
  TraceLog log;
  log.record(ev(EventType::DeliverConf, P1, 10));
  EXPECT_TRUE(recovery_windows(log).empty());
}

TEST(MetricsTest, FailResetsWindowTracking) {
  TraceLog log;
  log.record(ev(EventType::DeliverConf, P1, 0));
  log.record(ev(EventType::Fail, P1, 50));
  auto reg2 = ev(EventType::DeliverConf, P1, 900);
  reg2.config = ConfigId::regular(R2);
  log.record(reg2);
  // Recovery after a crash is not counted as a live-reconfiguration window.
  EXPECT_TRUE(recovery_windows(log).empty());
}

}  // namespace
}  // namespace evs
