#include "storage/stable_store.hpp"

#include <gtest/gtest.h>

namespace evs {
namespace {

TEST(StableStoreTest, PutGetRoundTrip) {
  StableStore store;
  store.put("k", {1, 2, 3});
  auto v = store.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, (StableStore::Blob{1, 2, 3}));
}

TEST(StableStoreTest, MissingKeyReturnsNullopt) {
  StableStore store;
  EXPECT_FALSE(store.get("nope").has_value());
  EXPECT_FALSE(store.contains("nope"));
}

TEST(StableStoreTest, OverwriteReplaces) {
  StableStore store;
  store.put("k", {1});
  store.put("k", {2});
  EXPECT_EQ(*store.get("k"), StableStore::Blob{2});
  EXPECT_EQ(store.key_count(), 1u);
}

TEST(StableStoreTest, EraseRemoves) {
  StableStore store;
  store.put("k", {1});
  store.erase("k");
  EXPECT_FALSE(store.contains("k"));
}

TEST(StableStoreTest, ErasePrefix) {
  StableStore store;
  store.put("msg/1", {1});
  store.put("msg/2", {2});
  store.put("meta", {3});
  store.erase_prefix("msg/");
  EXPECT_FALSE(store.contains("msg/1"));
  EXPECT_FALSE(store.contains("msg/2"));
  EXPECT_TRUE(store.contains("meta"));
}

TEST(StableStoreTest, KeysWithPrefixSorted) {
  StableStore store;
  store.put("m/b", {});
  store.put("m/a", {});
  store.put("x", {});
  auto keys = store.keys_with_prefix("m/");
  EXPECT_EQ(keys, (std::vector<std::string>{"m/a", "m/b"}));
}

TEST(StableStoreTest, WriteAccounting) {
  StableStore store;
  store.put("a", {1, 2});
  store.put("b", {3});
  EXPECT_EQ(store.writes(), 2u);
  EXPECT_EQ(store.bytes_written(), 3u);
}

TEST(StableStoreTest, ErasePrefixOnEmptyStore) {
  StableStore store;
  store.erase_prefix("m/");
  EXPECT_EQ(store.key_count(), 0u);
}

}  // namespace
}  // namespace evs
