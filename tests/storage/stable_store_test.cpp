#include "storage/stable_store.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "evs/node.hpp"
#include "util/rng.hpp"

namespace evs {
namespace {

using Blob = StableStore::Blob;
using TailFault = StableStore::TailFault;
using WriteFault = StableStore::WriteFault;

void must(Status st) { ASSERT_TRUE(st.ok()) << st.message(); }

std::uint64_t counter_of(const StableStore& store, const std::string& name) {
  const auto& counters = store.metrics().counters();
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second.value();
}

TEST(StableStoreTest, PutGetRoundTrip) {
  StableStore store;
  must(store.put("k", {1, 2, 3}));
  auto v = store.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, (Blob{1, 2, 3}));
}

TEST(StableStoreTest, MissingKeyReturnsNullopt) {
  StableStore store;
  EXPECT_FALSE(store.get("nope").has_value());
  EXPECT_FALSE(store.contains("nope"));
}

TEST(StableStoreTest, OverwriteReplaces) {
  StableStore store;
  must(store.put("k", {1}));
  must(store.put("k", {2}));
  EXPECT_EQ(*store.get("k"), Blob{2});
  EXPECT_EQ(store.key_count(), 1u);
}

TEST(StableStoreTest, EraseRemoves) {
  StableStore store;
  must(store.put("k", {1}));
  must(store.erase("k"));
  EXPECT_FALSE(store.contains("k"));
}

TEST(StableStoreTest, ErasePrefix) {
  StableStore store;
  must(store.put("msg/1", {1}));
  must(store.put("msg/2", {2}));
  must(store.put("meta", {3}));
  must(store.erase_prefix("msg/"));
  EXPECT_FALSE(store.contains("msg/1"));
  EXPECT_FALSE(store.contains("msg/2"));
  EXPECT_TRUE(store.contains("meta"));
}

TEST(StableStoreTest, KeysWithPrefixSorted) {
  StableStore store;
  must(store.put("m/b", {}));
  must(store.put("m/a", {}));
  must(store.put("x", {}));
  auto keys = store.keys_with_prefix("m/");
  EXPECT_EQ(keys, (std::vector<std::string>{"m/a", "m/b"}));
}

TEST(StableStoreTest, WriteAccounting) {
  StableStore store;
  must(store.put("a", {1, 2}));
  must(store.put("b", {3}));
  EXPECT_EQ(store.writes(), 2u);
  EXPECT_EQ(store.bytes_written(), 3u);
  EXPECT_EQ(store.appends_attempted(), 2u);
  EXPECT_EQ(counter_of(store, "storage.writes"), 2u);
  EXPECT_EQ(counter_of(store, "storage.bytes"), 3u);
}

TEST(StableStoreTest, ErasePrefixOnEmptyStore) {
  StableStore store;
  must(store.erase_prefix("m/"));
  EXPECT_EQ(store.key_count(), 0u);
}

// ---------------------------------------------------------------------------
// crash / open: the map is a replay of the log

TEST(StableStoreCrash, CrashThenOpenReplaysEveryMutation) {
  StableStore store;
  must(store.put("a", {1}));
  must(store.put("b", {2}));
  must(store.put("gc/1", {3}));
  must(store.put("gc/2", {4}));
  must(store.erase("b"));
  must(store.erase_prefix("gc/"));
  must(store.put("c", {5}));

  store.crash();
  EXPECT_EQ(store.key_count(), 0u);  // volatile view is gone...

  const auto rep = store.open();
  EXPECT_EQ(rep.records_kept, 7u);
  EXPECT_FALSE(rep.repaired());
  EXPECT_EQ(store.key_count(), 2u);  // ...and rebuilt exactly
  EXPECT_EQ(*store.get("a"), Blob{1});
  EXPECT_EQ(*store.get("c"), Blob{5});
  EXPECT_FALSE(store.contains("b"));
  EXPECT_FALSE(store.contains("gc/1"));
}

TEST(StableStoreCrash, OpenOnEmptyLogIsClean) {
  StableStore store;
  const auto rep = store.open();
  EXPECT_EQ(rep.records_kept, 0u);
  EXPECT_FALSE(rep.repaired());
}

TEST(StableStoreCrash, TornTailIsTruncatedAndOnlyTheTailIsLost) {
  StableStore store;
  must(store.put("a", {1}));
  must(store.put("b", {2}));
  store.damage_tail(TailFault::Torn);
  store.crash();

  const auto rep = store.open();
  EXPECT_EQ(rep.records_kept, 1u);
  EXPECT_EQ(rep.torn_truncated, 1u);
  EXPECT_EQ(rep.corrupt_quarantined, 0u);
  EXPECT_TRUE(rep.repaired());
  EXPECT_TRUE(store.contains("a"));
  EXPECT_FALSE(store.contains("b"));
  EXPECT_EQ(counter_of(store, "storage.repairs"), 1u);
}

TEST(StableStoreCrash, CorruptTailIsQuarantined) {
  StableStore store;
  must(store.put("a", {1}));
  must(store.put("b", {2}));
  store.damage_tail(TailFault::Corrupt);
  store.crash();

  const auto rep = store.open();
  EXPECT_EQ(rep.records_kept, 1u);
  EXPECT_EQ(rep.torn_truncated, 0u);
  EXPECT_EQ(rep.corrupt_quarantined, 1u);
  EXPECT_TRUE(store.contains("a"));
  EXPECT_FALSE(store.contains("b"));
  EXPECT_EQ(counter_of(store, "storage.crc_failures"), 1u);
}

TEST(StableStoreCrash, MidLogBitRotQuarantinesOnlyTheDamagedRecord) {
  StableStore store;
  must(store.put("a", {1}));
  const std::size_t first_record_end = store.log_bytes();
  must(store.put("b", {2}));
  must(store.put("c", {3}));
  // Rot a body byte of the *second* record (skip its 8-byte frame header).
  store.rot_log_byte(first_record_end + 8 + 2);
  store.crash();

  const auto rep = store.open();
  EXPECT_EQ(rep.records_kept, 2u);
  EXPECT_EQ(rep.corrupt_quarantined, 1u);
  EXPECT_TRUE(store.contains("a"));
  EXPECT_FALSE(store.contains("b"));
  EXPECT_TRUE(store.contains("c"));
}

TEST(StableStoreCrash, QuarantineRewritesTheDurableLog) {
  StableStore store;
  must(store.put("a", {1}));
  must(store.put("b", {2}));
  store.damage_tail(TailFault::Corrupt);
  store.crash();
  ASSERT_TRUE(store.open().repaired());

  // The damaged record was removed from the log itself, so a second
  // crash+open finds a fully clean log: repairs do not compound.
  store.crash();
  const auto rep = store.open();
  EXPECT_EQ(rep.records_kept, 1u);
  EXPECT_FALSE(rep.repaired());
  EXPECT_EQ(store.last_open_report().records_kept, 1u);
}

TEST(StableStoreCrash, OpenIsIdempotentWithoutCrash) {
  StableStore store;
  must(store.put("a", {1}));
  const auto rep1 = store.open();
  const auto rep2 = store.open();
  EXPECT_EQ(rep1.records_kept, 1u);
  EXPECT_EQ(rep2.records_kept, 1u);
  EXPECT_TRUE(store.contains("a"));
}

// ---------------------------------------------------------------------------
// fallible write path

TEST(StableStoreFaults, TransientFailPersistsNothingAndStoreStaysUsable) {
  StableStore store;
  bool fail_next = false;
  store.set_fault_hook([&fail_next](std::size_t) {
    WriteFault f;
    if (fail_next) f.kind = WriteFault::Kind::Fail;
    fail_next = false;
    return f;
  });

  must(store.put("a", {1}));
  fail_next = true;
  const Status st = store.put("b", {2});
  EXPECT_EQ(st.code(), Errc::storage_io);
  EXPECT_FALSE(store.contains("b"));  // the failed mutation never applied
  EXPECT_FALSE(store.wedged());
  must(store.put("b", {2}));  // retry succeeds
  EXPECT_EQ(counter_of(store, "storage.write_failures"), 1u);

  store.crash();
  EXPECT_EQ(store.open().records_kept, 2u);  // the failed write left no trace
}

TEST(StableStoreFaults, TornWriteWedgesUntilOpen) {
  StableStore store;
  must(store.put("a", {1}));
  WriteFault torn;
  torn.kind = WriteFault::Kind::Torn;
  torn.keep_bytes = 5;
  store.set_fault_hook([&torn](std::size_t) { return torn; });

  EXPECT_EQ(store.put("b", {2}).code(), Errc::storage_io);
  EXPECT_TRUE(store.wedged());
  EXPECT_FALSE(store.contains("b"));
  EXPECT_EQ(counter_of(store, "storage.torn_records"), 1u);

  // Every further write is rejected: the device never acknowledged.
  torn.kind = WriteFault::Kind::None;
  EXPECT_EQ(store.put("c", {3}).code(), Errc::storage_io);
  EXPECT_EQ(store.erase("a").code(), Errc::storage_io);

  const auto rep = store.open();  // recovery validates and truncates
  EXPECT_EQ(rep.records_kept, 1u);
  EXPECT_EQ(rep.torn_truncated, 1u);
  EXPECT_FALSE(store.wedged());
  must(store.put("c", {3}));
  EXPECT_TRUE(store.contains("c"));
}

TEST(StableStoreFaults, RottedWriteWedgesAndQuarantinesAtOpen) {
  StableStore store;
  must(store.put("a", {1}));
  store.set_fault_hook([](std::size_t) {
    WriteFault f;
    f.kind = WriteFault::Kind::Rot;
    f.rot_offset = 10;
    return f;
  });
  EXPECT_EQ(store.put("b", {2}).code(), Errc::storage_io);
  EXPECT_TRUE(store.wedged());
  store.set_fault_hook(nullptr);

  const auto rep = store.open();
  EXPECT_EQ(rep.records_kept, 1u);
  EXPECT_EQ(rep.corrupt_quarantined, 1u);
  EXPECT_TRUE(store.contains("a"));
  EXPECT_FALSE(store.contains("b"));
}

// ---------------------------------------------------------------------------
// write budget (the crash-point scheduler's lever)

TEST(StableStoreBudget, CleanBudgetTripsAfterTheNthWriteLands) {
  StableStore store;
  int trips = 0;
  store.arm_write_budget(2, TailFault::Clean, [&trips] { ++trips; });
  EXPECT_TRUE(store.write_budget_armed());

  must(store.put("a", {1}));
  EXPECT_EQ(trips, 0);
  must(store.put("b", {2}));  // nth write lands, then the trip fires
  EXPECT_EQ(trips, 1);
  EXPECT_FALSE(store.write_budget_armed());
  EXPECT_TRUE(store.contains("b"));

  must(store.put("c", {3}));  // one-shot: no further trips
  EXPECT_EQ(trips, 1);
}

TEST(StableStoreBudget, TornBudgetDamagesTheTrippingWrite) {
  StableStore store;
  int trips = 0;
  store.arm_write_budget(1, TailFault::Torn, [&trips] { ++trips; });
  EXPECT_EQ(store.put("a", {1}).code(), Errc::storage_io);
  EXPECT_EQ(trips, 1);
  EXPECT_TRUE(store.wedged());
  const auto rep = store.open();
  EXPECT_EQ(rep.records_kept, 0u);
  EXPECT_EQ(rep.torn_truncated, 1u);
}

TEST(StableStoreBudget, CorruptBudgetDamagesTheTrippingWrite) {
  StableStore store;
  store.arm_write_budget(1, TailFault::Corrupt, [] {});
  EXPECT_EQ(store.put("a", {1}).code(), Errc::storage_io);
  EXPECT_TRUE(store.wedged());
  const auto rep = store.open();
  EXPECT_EQ(rep.records_kept, 0u);
  EXPECT_EQ(rep.corrupt_quarantined, 1u);
}

TEST(StableStoreBudget, DisarmCancelsThePendingTrip) {
  StableStore store;
  int trips = 0;
  store.arm_write_budget(1, TailFault::Torn, [&trips] { ++trips; });
  store.disarm_write_budget();
  must(store.put("a", {1}));
  EXPECT_EQ(trips, 0);
  EXPECT_TRUE(store.contains("a"));
}

TEST(StableStoreBudget, BudgetOverridesTheFaultHook) {
  StableStore store;
  int hook_calls = 0;
  store.set_fault_hook([&hook_calls](std::size_t) {
    ++hook_calls;
    return WriteFault{};
  });
  store.arm_write_budget(1, TailFault::Clean, [] {});
  must(store.put("a", {1}));
  EXPECT_EQ(hook_calls, 0);  // armed budget owns the write verdict
  must(store.put("b", {2}));
  EXPECT_EQ(hook_calls, 1);  // hook resumes once the budget is spent
}

// ---------------------------------------------------------------------------
// compaction keeps the crash contract

TEST(StableStoreCompaction, CompactedLogStillReplays) {
  StableStore store;
  // Churn one hot key until the garbage ratio forces a compaction.
  const Blob big(1024, 0xAB);
  for (int i = 0; i < 400; ++i) must(store.put("hot", big));
  must(store.put("cold", {7}));
  ASSERT_GT(counter_of(store, "storage.compactions"), 0u);

  store.crash();
  (void)store.open();
  EXPECT_EQ(*store.get("hot"), big);
  EXPECT_EQ(*store.get("cold"), Blob{7});
  EXPECT_EQ(store.key_count(), 2u);
}

// ---------------------------------------------------------------------------
// backlog key discipline (regression: fixed-width, ring-scoped keys)

TEST(BacklogKeys, RingPrefixesArePrefixFree) {
  // With variable-width encoding, ring seq 1's prefix would be a string
  // prefix of ring seq 16's ("bmsg/1." vs "bmsg/16.") and GC of one
  // configuration's backlog could erase another's. Fixed-width padding makes
  // distinct rings' prefixes differ at some position within the padded field.
  const RingId r1{1, ProcessId{1}};
  const RingId r16{16, ProcessId{1}};
  const RingId r1_rep2{1, ProcessId{2}};
  const std::string p1 = backlog_prefix(r1);
  const std::string p16 = backlog_prefix(r16);
  const std::string p1b = backlog_prefix(r1_rep2);
  EXPECT_NE(p1, p16);
  EXPECT_NE(p1.compare(0, p1.size(), p16, 0, p1.size()), 0);
  EXPECT_NE(p16.compare(0, p16.size(), p1, 0, p16.size()), 0);
  EXPECT_NE(p1.compare(0, p1.size(), p1b, 0, p1.size()), 0);
  // And message keys sort numerically because the seq field is fixed-width.
  EXPECT_LT(backlog_msg_key(r1, 2), backlog_msg_key(r1, 10));
}

TEST(BacklogKeys, GcOfOneRingLeavesEveryOtherRingsLogIntact) {
  StableStore store;
  const RingId r1{1, ProcessId{1}};
  const RingId r16{16, ProcessId{1}};
  must(store.put(backlog_msg_key(r1, 1), {1}));
  must(store.put(backlog_msg_key(r1, 2), {2}));
  must(store.put(backlog_msg_key(r16, 1), {3}));

  // Garbage-collect configuration 1's backlog, as install_configuration does.
  must(store.erase_prefix(backlog_prefix(r1)));
  EXPECT_FALSE(store.contains(backlog_msg_key(r1, 1)));
  EXPECT_TRUE(store.contains(backlog_msg_key(r16, 1)));

  // And the same holds across a crash (the GC record replays identically).
  store.crash();
  (void)store.open();
  EXPECT_FALSE(store.contains(backlog_msg_key(r1, 2)));
  EXPECT_EQ(*store.get(backlog_msg_key(r16, 1)), Blob{3});
}

// ---------------------------------------------------------------------------
// randomized damage: open() must never crash and must always converge

TEST(StableStoreFuzz, RandomDamageAlwaysRepairsToAStableLog) {
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 200; ++trial) {
    StableStore store;
    const int records = 1 + static_cast<int>(rng.below(20));
    for (int i = 0; i < records; ++i) {
      Blob v(1 + rng.below(64));
      for (auto& b : v) b = static_cast<std::uint8_t>(rng());
      ASSERT_TRUE(store.put("k" + std::to_string(rng.below(8)), std::move(v)).ok());
    }
    const int damages = static_cast<int>(rng.below(4));
    for (int i = 0; i < damages; ++i) {
      switch (rng.below(3)) {
        case 0: store.damage_tail(TailFault::Torn); break;
        case 1: store.damage_tail(TailFault::Corrupt); break;
        default:
          store.rot_log_byte(rng.below(std::max<std::size_t>(store.log_bytes(), 1)),
                             static_cast<std::uint8_t>(1 + rng.below(255)));
      }
    }
    store.crash();
    const auto rep = store.open();
    EXPECT_LE(rep.records_kept, static_cast<std::size_t>(records));
    // A second open of the repaired log is always clean: repair converges.
    store.crash();
    const auto rep2 = store.open();
    EXPECT_EQ(rep2.records_kept, rep.records_kept);
    EXPECT_FALSE(rep2.repaired());
  }
}

}  // namespace
}  // namespace evs
