#include "net/network.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace evs {
namespace {

class Recorder : public Endpoint {
 public:
  void on_packet(const Packet& packet) override { packets.push_back(packet); }
  std::vector<Packet> packets;
};

struct NetworkTest : ::testing::Test {
  Scheduler sched;
  Network::Options opts{/*min*/ 10, /*max*/ 10, /*loss*/ 0.0};
  Network net{sched, Rng(1), opts};
  std::map<std::uint32_t, Recorder> recorders;

  ProcessId attach(std::uint32_t id) {
    ProcessId p{id};
    net.attach(p, &recorders[id]);
    return p;
  }
};

TEST_F(NetworkTest, BroadcastReachesAllIncludingSender) {
  auto a = attach(1);
  attach(2);
  attach(3);
  net.broadcast(a, {42});
  sched.run();
  for (auto id : {1u, 2u, 3u}) {
    ASSERT_EQ(recorders[id].packets.size(), 1u) << id;
    EXPECT_EQ(recorders[id].packets[0].src, a);
    EXPECT_EQ(std::vector<std::uint8_t>(recorders[id].packets[0].payload().begin(), recorders[id].packets[0].payload().end()), std::vector<std::uint8_t>{42});
  }
}

TEST_F(NetworkTest, UnicastReachesOnlyTarget) {
  auto a = attach(1);
  auto b = attach(2);
  attach(3);
  net.unicast(a, b, {7});
  sched.run();
  EXPECT_EQ(recorders[1].packets.size(), 0u);
  EXPECT_EQ(recorders[2].packets.size(), 1u);
  EXPECT_EQ(recorders[3].packets.size(), 0u);
}

TEST_F(NetworkTest, PartitionBlocksCrossTraffic) {
  auto a = attach(1);
  attach(2);
  attach(3);
  net.set_components({{ProcessId{1}, ProcessId{2}}, {ProcessId{3}}});
  net.broadcast(a, {1});
  sched.run();
  EXPECT_EQ(recorders[1].packets.size(), 1u);
  EXPECT_EQ(recorders[2].packets.size(), 1u);
  EXPECT_EQ(recorders[3].packets.size(), 0u);
  EXPECT_GT(net.stats().dropped_partition, 0u);
}

TEST_F(NetworkTest, MergeRestoresConnectivity) {
  auto a = attach(1);
  attach(2);
  net.set_components({{ProcessId{1}}, {ProcessId{2}}});
  EXPECT_FALSE(net.connected(ProcessId{1}, ProcessId{2}));
  net.merge_all();
  EXPECT_TRUE(net.connected(ProcessId{1}, ProcessId{2}));
  net.broadcast(a, {1});
  sched.run();
  EXPECT_EQ(recorders[2].packets.size(), 1u);
}

TEST_F(NetworkTest, InFlightPacketsCutByPartition) {
  auto a = attach(1);
  attach(2);
  net.broadcast(a, {1});
  // Partition before the 10us delivery delay elapses.
  net.set_components({{ProcessId{1}}, {ProcessId{2}}});
  sched.run();
  EXPECT_EQ(recorders[2].packets.size(), 0u);
}

TEST_F(NetworkTest, UnlistedProcessesBecomeIsolated) {
  attach(1);
  attach(2);
  auto c = attach(3);
  net.set_components({{ProcessId{1}, ProcessId{2}}});
  EXPECT_FALSE(net.connected(ProcessId{3}, ProcessId{1}));
  EXPECT_EQ(net.component_of(c), std::vector<ProcessId>{c});
}

TEST_F(NetworkTest, DetachedReceiverGetsNothing) {
  auto a = attach(1);
  attach(2);
  net.detach(ProcessId{2});
  net.broadcast(a, {1});
  sched.run();
  EXPECT_EQ(recorders[2].packets.size(), 0u);
}

TEST_F(NetworkTest, DetachMidFlightDropsPacket) {
  auto a = attach(1);
  attach(2);
  net.broadcast(a, {1});  // in flight for 10us
  net.detach(ProcessId{2});
  sched.run();
  EXPECT_EQ(recorders[2].packets.size(), 0u);
  EXPECT_GT(net.stats().dropped_detached, 0u);
}

TEST_F(NetworkTest, LossDropsApproximatelyAtRate) {
  opts.loss_probability = 0.5;
  Network lossy(sched, Rng(2), opts);
  Recorder ra, rb;
  lossy.attach(ProcessId{1}, &ra);
  lossy.attach(ProcessId{2}, &rb);
  for (int i = 0; i < 1000; ++i) lossy.unicast(ProcessId{1}, ProcessId{2}, {1});
  sched.run();
  EXPECT_GT(rb.packets.size(), 350u);
  EXPECT_LT(rb.packets.size(), 650u);
}

TEST_F(NetworkTest, LoopbackIsLossless) {
  opts.loss_probability = 1.0;  // drop everything that is not loopback
  Network lossy(sched, Rng(3), opts);
  Recorder ra, rb;
  lossy.attach(ProcessId{1}, &ra);
  lossy.attach(ProcessId{2}, &rb);
  lossy.broadcast(ProcessId{1}, {9});
  sched.run();
  EXPECT_EQ(ra.packets.size(), 1u);
  EXPECT_EQ(rb.packets.size(), 0u);
}

TEST_F(NetworkTest, ComponentOfListsAttachedMembers) {
  attach(1);
  attach(2);
  attach(3);
  net.set_components({{ProcessId{1}, ProcessId{3}}, {ProcessId{2}}});
  auto comp = net.component_of(ProcessId{1});
  EXPECT_EQ(comp, (std::vector<ProcessId>{ProcessId{1}, ProcessId{3}}));
}

TEST_F(NetworkTest, DeliveryDelaysRespectConfiguredBounds) {
  Network::Options o{/*min*/ 70, /*max*/ 240, /*loss*/ 0.0};
  Network bounded(sched, Rng(9), o);
  Recorder ra, rb;
  bounded.attach(ProcessId{1}, &ra);
  bounded.attach(ProcessId{2}, &rb);
  for (int i = 0; i < 200; ++i) {
    const SimTime sent_at = sched.now();
    bounded.unicast(ProcessId{1}, ProcessId{2}, {1});
    const std::size_t before = rb.packets.size();
    sched.run_until(sent_at + 240);
    ASSERT_EQ(rb.packets.size(), before + 1);
    // The packet must not have arrived before min_delay.
    // (run_until processed everything <= sent_at+240; check the earliest
    // possible arrival by replaying with a tighter horizon next round.)
  }
}

TEST_F(NetworkTest, MinDelayEnforced) {
  Network::Options o{100, 300, 0.0};
  Network bounded(sched, Rng(10), o);
  Recorder ra, rb;
  bounded.attach(ProcessId{1}, &ra);
  bounded.attach(ProcessId{2}, &rb);
  bounded.unicast(ProcessId{1}, ProcessId{2}, {1});
  sched.run_until(sched.now() + 99);
  EXPECT_TRUE(rb.packets.empty());  // nothing can arrive before min_delay
  sched.run_until(sched.now() + 300);
  EXPECT_EQ(rb.packets.size(), 1u);
}

TEST_F(NetworkTest, LossProbabilityAdjustableAtRuntime) {
  auto a = attach(1);
  attach(2);
  net.set_loss_probability(1.0);
  net.unicast(a, ProcessId{2}, {1});
  sched.run();
  EXPECT_TRUE(recorders[2].packets.empty());
  net.set_loss_probability(0.0);
  net.unicast(a, ProcessId{2}, {2});
  sched.run();
  EXPECT_EQ(recorders[2].packets.size(), 1u);
}

TEST_F(NetworkTest, ReattachAfterDetachRejoinsComponent) {
  attach(1);
  auto b = attach(2);
  net.detach(b);
  EXPECT_FALSE(net.attached(b));
  Recorder again;
  net.attach(b, &again);
  net.broadcast(ProcessId{1}, {5});
  sched.run();
  EXPECT_EQ(again.packets.size(), 1u);
}

TEST_F(NetworkTest, StatsCountDeliveries) {
  auto a = attach(1);
  attach(2);
  net.broadcast(a, {1, 2, 3});
  sched.run();
  EXPECT_EQ(net.stats().broadcasts, 1u);
  EXPECT_EQ(net.stats().deliveries, 2u);
  EXPECT_EQ(net.stats().bytes_delivered, 6u);
}

}  // namespace
}  // namespace evs
