// UdpTransport unit tests: real loopback sockets, driven single-threaded
// via poll_once() so every assertion is on the loop thread.
//
// Every test opens ephemeral-port sockets and skips cleanly (GTEST_SKIP)
// if the environment refuses them — the contract the `live` ctest label
// relies on.
#include "net/udp_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

namespace evs {
namespace {

/// Endpoint that records everything it receives.
struct CaptureEndpoint : Endpoint {
  std::vector<Packet> packets;
  void on_packet(const Packet& packet) override { packets.push_back(packet); }
};

/// Pump both transports until `pred` holds or `spins` iterations pass.
template <typename Pred>
bool pump(UdpTransport& a, UdpTransport& b, Pred pred, int spins = 200) {
  for (int i = 0; i < spins; ++i) {
    if (pred()) return true;
    a.poll_once(1'000);
    b.poll_once(1'000);
  }
  return pred();
}

#define SKIP_IF_NO_SOCKETS(st)                                       \
  do {                                                               \
    if (!(st).ok()) GTEST_SKIP() << "sockets unavailable: " << (st).message(); \
  } while (0)

TEST(UdpTransportTest, OpenBindsAnEphemeralPort) {
  UdpTransport t;
  SKIP_IF_NO_SOCKETS(t.open());
  EXPECT_TRUE(t.is_open());
  EXPECT_NE(t.port(), 0);
  // Idempotent: a second open is a no-op success.
  EXPECT_TRUE(t.open().ok());
}

TEST(UdpTransportTest, UnicastRoundTripBetweenTwoTransports) {
  UdpTransport a, b;
  SKIP_IF_NO_SOCKETS(a.open());
  SKIP_IF_NO_SOCKETS(b.open());
  const ProcessId pa{1}, pb{2};
  a.add_peer(pb, b.port());
  b.add_peer(pa, a.port());
  CaptureEndpoint sink;
  b.attach(pb, &sink);

  a.unicast(pa, pb, {1, 2, 3, 4});
  ASSERT_TRUE(pump(a, b, [&] { return !sink.packets.empty(); }));
  EXPECT_EQ(sink.packets[0].src, pa);
  EXPECT_EQ(sink.packets[0].dst, pb);
  EXPECT_EQ(std::vector<std::uint8_t>(sink.packets[0].payload().begin(), sink.packets[0].payload().end()), (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(UdpTransportTest, BroadcastIncludesLoopbackSelfDelivery) {
  UdpTransport a, b;
  SKIP_IF_NO_SOCKETS(a.open());
  SKIP_IF_NO_SOCKETS(b.open());
  const ProcessId pa{1}, pb{2};
  a.add_peer(pa, a.port());  // self-registration: the loopback path
  a.add_peer(pb, b.port());
  b.add_peer(pa, a.port());
  b.add_peer(pb, b.port());
  CaptureEndpoint sink_a, sink_b;
  a.attach(pa, &sink_a);
  b.attach(pb, &sink_b);

  a.broadcast(pa, {9});
  ASSERT_TRUE(pump(a, b, [&] {
    return !sink_a.packets.empty() && !sink_b.packets.empty();
  }));
  // The sender heard its own broadcast through the kernel, exactly like
  // broadcast hardware — what the token protocol's self-delivery expects.
  EXPECT_EQ(sink_a.packets[0].src, pa);
  EXPECT_EQ(sink_b.packets[0].src, pa);
}

TEST(UdpTransportTest, BlockPeerDropsBothDirections) {
  UdpTransport a, b;
  SKIP_IF_NO_SOCKETS(a.open());
  SKIP_IF_NO_SOCKETS(b.open());
  const ProcessId pa{1}, pb{2};
  a.add_peer(pb, b.port());
  b.add_peer(pa, a.port());
  CaptureEndpoint sink_a, sink_b;
  a.attach(pa, &sink_a);
  b.attach(pb, &sink_b);

  // Outbound filter at the sender.
  a.block_peer(pb);
  EXPECT_TRUE(a.peer_blocked(pb));
  a.unicast(pa, pb, {1});
  EXPECT_FALSE(pump(a, b, [&] { return !sink_b.packets.empty(); }, 20));
  EXPECT_GE(a.stats().dropped_filter, 1u);

  // Inbound filter at the receiver: the datagram crosses the kernel and
  // dies on arrival, like a packet in flight when the wire was cut.
  a.unblock_peer(pb);
  b.block_peer(pa);
  a.unicast(pa, pb, {2});
  EXPECT_FALSE(pump(a, b, [&] { return !sink_b.packets.empty(); }, 20));
  EXPECT_GE(b.stats().dropped_filter, 1u);

  // Healed: traffic flows again.
  b.unblock_peer(pa);
  a.unicast(pa, pb, {3});
  ASSERT_TRUE(pump(a, b, [&] { return !sink_b.packets.empty(); }));
  EXPECT_EQ(std::vector<std::uint8_t>(sink_b.packets[0].payload().begin(), sink_b.packets[0].payload().end()), (std::vector<std::uint8_t>{3}));
}

TEST(UdpTransportTest, UnknownSourcePortIsDropped) {
  UdpTransport a, b;
  SKIP_IF_NO_SOCKETS(a.open());
  SKIP_IF_NO_SOCKETS(b.open());
  const ProcessId pa{1}, pb{2};
  a.add_peer(pb, b.port());
  // b never registered a's port: a's datagrams are from an unknown peer.
  CaptureEndpoint sink_b;
  b.attach(pb, &sink_b);
  a.unicast(pa, pb, {1});
  EXPECT_FALSE(pump(a, b, [&] { return !sink_b.packets.empty(); }, 20));
  EXPECT_GE(b.stats().dropped_unknown_peer, 1u);
}

TEST(UdpTransportTest, DetachedEndpointCountsDrops) {
  UdpTransport a, b;
  SKIP_IF_NO_SOCKETS(a.open());
  SKIP_IF_NO_SOCKETS(b.open());
  const ProcessId pa{1}, pb{2};
  a.add_peer(pb, b.port());
  b.add_peer(pa, a.port());
  CaptureEndpoint sink_b;
  b.attach(pb, &sink_b);
  b.detach(pb);
  EXPECT_FALSE(b.attached(pb));
  a.unicast(pa, pb, {1});
  EXPECT_FALSE(pump(a, b, [&] { return !sink_b.packets.empty(); }, 20));
  EXPECT_GE(b.stats().dropped_detached, 1u);
}

TEST(UdpTransportTest, SchedulerTimersFireOnWallClock) {
  UdpTransport t;
  SKIP_IF_NO_SOCKETS(t.open());
  bool fired = false;
  t.scheduler().schedule_after(5'000, [&] { fired = true; });  // 5ms
  // The poll loop must wake for the timer even with no traffic at all.
  for (int i = 0; i < 100 && !fired; ++i) t.poll_once(10'000);
  EXPECT_TRUE(fired);
  EXPECT_GE(t.wall_now_us(), 5'000u);
  // And the scheduler's virtual now tracks the wall clock.
  EXPECT_LE(t.scheduler().now(), t.wall_now_us());
}

TEST(UdpTransportTest, PostFromAnotherThreadWakesTheLoop) {
  UdpTransport t;
  SKIP_IF_NO_SOCKETS(t.open());
  std::atomic<bool> ran{false};
  std::thread poster([&] { ASSERT_TRUE(t.post([&] { ran.store(true); })); });
  for (int i = 0; i < 100 && !ran.load(); ++i) t.poll_once(10'000);
  poster.join();
  EXPECT_TRUE(ran.load());
}

TEST(UdpTransportTest, AddPeerAliasingTwoPeersIsAnError) {
  // Regression (pre-fix: silent alias). Registering peer B at an address
  // already held by peer A overwrote the reverse map, so A's datagrams
  // resolved to B from then on — and if A was blocked, they sailed through
  // B's clean filter. The alias must be an explicit error that leaves the
  // peer table untouched.
  UdpTransport a, c;
  SKIP_IF_NO_SOCKETS(a.open());
  SKIP_IF_NO_SOCKETS(c.open());
  const ProcessId pa{1}, pb{2}, pc{3};
  ASSERT_TRUE(c.add_peer(pa, a.local_addr()).ok());
  const Status alias = c.add_peer(pb, a.local_addr());
  EXPECT_EQ(alias.code(), Errc::invalid_argument);

  // End-to-end: with A blocked, A's datagrams must still die in the filter
  // even after the attempted alias — pre-fix they arrived attributed to B.
  ASSERT_TRUE(a.add_peer(pc, c.local_addr()).ok());
  CaptureEndpoint sink_c;
  c.attach(pc, &sink_c);
  c.block_peer(pa);
  const auto filtered_before = c.stats().dropped_filter;
  a.unicast(pa, pc, {0x5a});
  EXPECT_FALSE(pump(a, c, [&] { return !sink_c.packets.empty(); }, 20));
  EXPECT_GT(c.stats().dropped_filter, filtered_before);
}

TEST(UdpTransportTest, ReAddPeerMovesAddressAndReleasesOldKey) {
  UdpTransport a, b, c;
  SKIP_IF_NO_SOCKETS(a.open());
  SKIP_IF_NO_SOCKETS(b.open());
  SKIP_IF_NO_SOCKETS(c.open());
  const ProcessId pa{1}, pb{2};
  ASSERT_TRUE(c.add_peer(pa, a.local_addr()).ok());
  // Same peer, new address: a legitimate remap (restarted node, fresh
  // ephemeral port).
  ASSERT_TRUE(c.add_peer(pa, b.local_addr()).ok());
  // The old key is free again, so another peer may claim it.
  EXPECT_TRUE(c.add_peer(pb, a.local_addr()).ok());
}

TEST(UdpTransportTest, BlockFilterSurvivesReAddPeer) {
  // Regression companion to the alias fix: a blocked peer that rebinds (new
  // ephemeral port, re-add_peer) must STAY blocked — the filter is on the
  // ProcessId, and re-registration must not reset it.
  UdpTransport a1, a2, c;
  SKIP_IF_NO_SOCKETS(a1.open());
  SKIP_IF_NO_SOCKETS(a2.open());
  SKIP_IF_NO_SOCKETS(c.open());
  const ProcessId pa{1}, pc{3};
  ASSERT_TRUE(c.add_peer(pa, a1.local_addr()).ok());
  c.block_peer(pa);

  // "Restart": the same peer re-registers from a different socket.
  ASSERT_TRUE(c.add_peer(pa, a2.local_addr()).ok());
  EXPECT_TRUE(c.peer_blocked(pa));
  ASSERT_TRUE(a2.add_peer(pc, c.local_addr()).ok());
  CaptureEndpoint sink_c;
  c.attach(pc, &sink_c);
  const auto filtered_before = c.stats().dropped_filter;
  a2.unicast(pa, pc, {0x7});
  EXPECT_FALSE(pump(a2, c, [&] { return !sink_c.packets.empty(); }, 20));
  EXPECT_GT(c.stats().dropped_filter, filtered_before);
}

TEST(UdpTransportTest, AddPeerRejectsMalformedAddress) {
  UdpTransport t;
  SKIP_IF_NO_SOCKETS(t.open());
  EXPECT_EQ(t.add_peer(ProcessId{1}, PeerAddr{"not-an-ip", 9}).code(),
            Errc::invalid_argument);
  EXPECT_EQ(t.add_peer(ProcessId{1}, PeerAddr{"256.1.1.1", 9}).code(),
            Errc::invalid_argument);
  EXPECT_EQ(t.block_peer(PeerAddr{"nope", 1}).code(), Errc::invalid_argument);
}

TEST(UdpTransportTest, BlockByAddressDropsUnresolvedSources) {
  // The PeerAddr filter form: drop traffic from an address that never
  // registered as a peer (it would otherwise count as unknown-peer, which
  // is not an intentional cut).
  UdpTransport a, c;
  SKIP_IF_NO_SOCKETS(a.open());
  SKIP_IF_NO_SOCKETS(c.open());
  const ProcessId pa{1}, pc{3};
  ASSERT_TRUE(a.add_peer(pc, c.local_addr()).ok());
  CaptureEndpoint sink_c;
  c.attach(pc, &sink_c);
  ASSERT_TRUE(c.block_peer(a.local_addr()).ok());
  const auto filtered_before = c.stats().dropped_filter;
  a.unicast(pa, pc, {1});
  EXPECT_FALSE(pump(a, c, [&] { return !sink_c.packets.empty(); }, 20));
  EXPECT_GT(c.stats().dropped_filter, filtered_before);
  // Unblock: now the source is merely unknown (never add_peer'd).
  ASSERT_TRUE(c.unblock_peer(a.local_addr()).ok());
  const auto unknown_before = c.stats().dropped_unknown_peer;
  a.unicast(pa, pc, {2});
  EXPECT_FALSE(pump(a, c, [&] { return !sink_c.packets.empty(); }, 20));
  EXPECT_GT(c.stats().dropped_unknown_peer, unknown_before);
}

TEST(UdpTransportTest, MulticastGroupSendIsOneDatagramFanOut) {
  // Real multicast wiring: the receiver joins 239.255.77.1 on loopback, the
  // sender targets the group — ONE datagram on the wire regardless of ring
  // size, with the source still resolved per-peer at the receiver. Group
  // routing depends on the environment, so no-arrival is a skip, not a
  // failure (the loopback fan-out default needs none of this).
  UdpTransport::Options recv_opts;
  recv_opts.multicast_group = "239.255.77.1";
  UdpTransport b(recv_opts);
  SKIP_IF_NO_SOCKETS(b.open());

  UdpTransport::Options send_opts;
  send_opts.multicast_group = "239.255.77.1";
  send_opts.multicast_port = b.port();
  UdpTransport a(send_opts);
  SKIP_IF_NO_SOCKETS(a.open());

  const ProcessId pa{1}, pb{2};
  // The sender's source address is its wildcard-bound port on the loopback
  // route; register it so the receiver can attribute the traffic.
  ASSERT_TRUE(b.add_peer(pa, PeerAddr{"127.0.0.1", a.port()}).ok());
  CaptureEndpoint sink_b;
  b.attach(pb, &sink_b);

  const auto sent_before = a.stats().datagrams_sent;
  a.broadcast(pa, {0x42});
  const bool arrived = pump(a, b, [&] { return !sink_b.packets.empty(); }, 100);
  if (!arrived) {
    GTEST_SKIP() << "multicast not routable over loopback here";
  }
  EXPECT_EQ(sink_b.packets[0].src, pa);
  // One group datagram, not one per registered peer.
  EXPECT_EQ(a.stats().datagrams_sent, sent_before + 1);
}

TEST(UdpTransportTest, MulticastGroupMustBeAMulticastAddress) {
  UdpTransport::Options opts;
  opts.multicast_group = "127.0.0.1";  // not in 224.0.0.0/4
  UdpTransport t(opts);
  const Status st = t.open();
  if (st.code() == Errc::transport_io) GTEST_SKIP() << st.message();
  EXPECT_EQ(st.code(), Errc::invalid_argument);
  EXPECT_FALSE(t.is_open());
}

TEST(UdpTransportTest, BroadcastSocketOptionSendsToBroadcastAddress) {
  // SO_BROADCAST wiring: the sender targets 127.255.255.255 (the loopback
  // subnet broadcast); a wildcard-bound receiver on that port gets it.
  // Delivery of subnet broadcasts varies by environment — skip on
  // no-arrival like the multicast case.
  UdpTransport::Options recv_opts;
  recv_opts.bind_ip = "0.0.0.0";
  UdpTransport b(recv_opts);
  SKIP_IF_NO_SOCKETS(b.open());

  UdpTransport::Options send_opts;
  send_opts.enable_broadcast = true;
  send_opts.broadcast_addr = "127.255.255.255";
  send_opts.multicast_port = b.port();
  UdpTransport a(send_opts);
  SKIP_IF_NO_SOCKETS(a.open());

  const ProcessId pa{1}, pb{2};
  ASSERT_TRUE(b.add_peer(pa, PeerAddr{"127.0.0.1", a.port()}).ok());
  CaptureEndpoint sink_b;
  b.attach(pb, &sink_b);
  const auto sent_before = a.stats().datagrams_sent;
  a.broadcast(pa, {0x43});
  const bool arrived = pump(a, b, [&] { return !sink_b.packets.empty(); }, 100);
  if (!arrived) {
    GTEST_SKIP() << "subnet broadcast not deliverable here";
  }
  EXPECT_EQ(sink_b.packets[0].src, pa);
  EXPECT_EQ(a.stats().datagrams_sent, sent_before + 1);
}

TEST(UdpTransportTest, OversizedDatagramIsASendError) {
  UdpTransport::Options opts;
  opts.max_datagram_bytes = 512;
  UdpTransport a;
  UdpTransport b(opts);
  SKIP_IF_NO_SOCKETS(a.open());
  SKIP_IF_NO_SOCKETS(b.open());
  const ProcessId pa{1}, pb{2};
  b.add_peer(pa, a.port());
  b.unicast(pb, pa, std::vector<std::uint8_t>(1024, 0));
  EXPECT_EQ(b.stats().send_errors, 1u);
  EXPECT_EQ(b.stats().datagrams_sent, 0u);
}

TEST(UdpTransportTest, SendAccountingIsConsistentUnderBursts) {
  // Loopback rarely produces genuine EAGAIN, so this is an accounting
  // invariant check rather than a forced-backpressure test: every send
  // attempt ends up exactly one of sent / parked-then-sent / dropped.
  UdpTransport::Options opts;
  opts.so_sndbuf = 4096;
  opts.send_backlog_datagrams = 8;
  UdpTransport a(opts), b;
  SKIP_IF_NO_SOCKETS(a.open());
  SKIP_IF_NO_SOCKETS(b.open());
  const ProcessId pa{1}, pb{2};
  a.add_peer(pb, b.port());
  const int kAttempts = 2'000;
  for (int i = 0; i < kAttempts; ++i) {
    a.unicast(pa, pb, std::vector<std::uint8_t>(1024, 0x77));
  }
  for (int i = 0; i < 50; ++i) a.poll_once(0);  // flush any parked backlog
  const auto s = a.stats();
  EXPECT_EQ(s.datagrams_sent + s.dropped_backpressure + s.send_errors,
            static_cast<std::uint64_t>(kAttempts));
  // Once the backlog drained, the backpressure flag must have cleared.
  EXPECT_FALSE(a.backpressured());
}

TEST(UdpTransportTest, CoalescedBatchFlushesWithinDeadlineWithNoTraffic) {
  // Regression: a frame enters the coalescing batch, nothing else arrives,
  // and the loop sits in one long-bounded poll. The wait must be bounded by
  // the batch deadline at MICROsecond resolution — ::poll's millisecond
  // timeout rounded a 200us window up to >= 1ms, so a quiet loop overshot
  // batch_flush_us several times over on every flush. Each trial is one
  // poll_once() call; the min over trials makes the wall-clock assertion
  // robust to scheduler noise.
  constexpr std::uint32_t kWindowUs = 200;
  UdpTransport::Options opts;
  opts.batch_flush_us = kWindowUs;
  UdpTransport a(opts), b;
  SKIP_IF_NO_SOCKETS(a.open());
  SKIP_IF_NO_SOCKETS(b.open());
  const ProcessId pa{1}, pb{2};
  a.add_peer(pb, b.port());

  std::int64_t min_us = std::numeric_limits<std::int64_t>::max();
  for (int trial = 0; trial < 5; ++trial) {
    const auto sent_before = a.stats().datagrams_sent;
    a.unicast(pa, pb, {0x42});
    ASSERT_EQ(a.stats().datagrams_sent, sent_before) << "expected coalescing";
    const auto t0 = std::chrono::steady_clock::now();
    a.poll_once(1'000'000);  // no inbound traffic: only the deadline ends this
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    ASSERT_EQ(a.stats().datagrams_sent, sent_before + 1)
        << "batch outlived its deadline inside a single quiet poll";
    min_us = std::min<std::int64_t>(min_us, us);
  }
  // Well under 1ms proves the wait was deadline-bounded, not poll-rounded:
  // the pre-fix loop cannot return from a quiet poll in less than 1000us.
  EXPECT_LT(min_us, 900) << "flush latency floor is above the 200us window";
}

}  // namespace
}  // namespace evs
