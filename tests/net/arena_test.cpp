// DatagramArena: the recycling pool anchoring the zero-copy receive path.
// The properties that matter are the lifetime rules — a buffer returns to
// the freelist when its last ref drops, steady state reuses storage instead
// of allocating, and a buffer whose arena died first is freed, not leaked
// or recycled into a dangling pool.
#include "net/arena.hpp"

#include <gtest/gtest.h>

#include "totem/messages.hpp"

namespace evs::net {
namespace {

TEST(DatagramArenaTest, BufferRecyclesWhenLastRefDrops) {
  auto arena = DatagramArena::create();
  EXPECT_EQ(arena->pooled(), 0u);
  {
    DatagramRef ref = arena->make({1, 2, 3});
    DatagramRef alias = ref;  // second ref: dropping one is not enough
    ref.reset();
    EXPECT_EQ(arena->pooled(), 0u);
    EXPECT_EQ(alias->size(), 3u);
  }
  EXPECT_EQ(arena->pooled(), 1u);
}

TEST(DatagramArenaTest, AcquireReusesRecycledStorage) {
  auto arena = DatagramArena::create();
  arena->make(std::vector<std::uint8_t>(1024, 0xEE)).reset();
  ASSERT_EQ(arena->pooled(), 1u);
  // acquire() takes the pooled buffer (capacity retained) instead of
  // allocating; recycling it by hand puts it straight back.
  std::vector<std::uint8_t> buf = arena->acquire(64);
  EXPECT_EQ(buf.size(), 64u);
  EXPECT_GE(buf.capacity(), 1024u);
  EXPECT_EQ(arena->pooled(), 0u);
  arena->recycle(std::move(buf));
  EXPECT_EQ(arena->pooled(), 1u);
}

TEST(DatagramArenaTest, PoolIsBounded) {
  auto arena = DatagramArena::create(/*max_pooled=*/2);
  std::vector<DatagramRef> refs;
  for (int i = 0; i < 5; ++i) refs.push_back(arena->make({std::uint8_t(i)}));
  refs.clear();
  EXPECT_EQ(arena->pooled(), 2u);  // the rest were freed, not hoarded
}

TEST(DatagramArenaTest, BufferOutlivesArena) {
  // The receive loop's arena can be torn down (transport stop) while a
  // delivered view still pins one of its datagrams. The deleter must notice
  // the arena is gone and free the buffer instead of recycling into freed
  // state.
  DatagramRef survivor;
  {
    auto arena = DatagramArena::create();
    survivor = arena->make({9, 9, 9});
  }
  ASSERT_TRUE(survivor);
  EXPECT_EQ(survivor->size(), 3u);
  EXPECT_EQ((*survivor)[0], 9);
  survivor.reset();  // frees; ASan would flag a recycle-into-dead-arena
}

TEST(DatagramArenaTest, ViewPinsDatagramThroughArena) {
  // End-to-end lifetime rule: a RegularMsgView decoded out of an arena
  // datagram keeps the bytes alive on its own, and GC-style release of the
  // view is what returns the buffer to the pool.
  auto arena = DatagramArena::create();
  RegularMsg m;
  m.ring = RingId{1, ProcessId{1}};
  m.seq = 7;
  m.id = MsgId{ProcessId{1}, 7};
  m.service = Service::Agreed;
  m.payload = {4, 5, 6};
  DatagramRef dgram = arena->make(encode_msg(m));

  auto view = try_decode_regular_view(std::span(*dgram), dgram);
  ASSERT_TRUE(view.has_value());
  dgram.reset();  // the view's owner ref is now the only pin
  EXPECT_EQ(arena->pooled(), 0u);
  EXPECT_EQ(view->seq, 7u);
  ASSERT_EQ(view->payload.size(), 3u);
  EXPECT_EQ(view->payload[2], 6);
  *view = RegularMsgView{};  // last ref drops -> buffer recycled
  EXPECT_EQ(arena->pooled(), 1u);
}

}  // namespace
}  // namespace evs::net
