// Node-level unit tests: lifecycle, identifiers, persistence, stats.
#include "evs/node.hpp"

#include <gtest/gtest.h>

#include "testkit/cluster.hpp"

namespace evs {
namespace {

TEST(NodeTest, StartInstallsSingletonRegularConfig) {
  Cluster cluster(Cluster::Options{.num_processes = 1});
  EvsNode& node = cluster.node(0u);
  EXPECT_EQ(node.state(), EvsNode::State::Operational);
  EXPECT_FALSE(node.config().id.transitional);
  EXPECT_EQ(node.config().members, std::vector<ProcessId>{cluster.pid(0)});
  EXPECT_EQ(node.config().id.ring.rep, cluster.pid(0));
}

TEST(NodeTest, MessageIdsAreUniqueAcrossIncarnations) {
  Cluster cluster(Cluster::Options{.num_processes = 1});
  cluster.await_stable(1'000'000);
  const MsgId first = cluster.node(0u).send(Service::Agreed, {1}).value();
  cluster.await_quiesce(1'000'000);
  cluster.crash(cluster.pid(0));
  cluster.recover(cluster.pid(0));
  cluster.await_stable(1'000'000);
  const MsgId second = cluster.node(0u).send(Service::Agreed, {2}).value();
  EXPECT_EQ(first.sender, second.sender);
  EXPECT_NE(first.counter, second.counter);
  // Incarnation is folded into the high bits of the counter.
  EXPECT_GT(second.counter >> 40, first.counter >> 40);
}

TEST(NodeTest, RingSeqMonotoneAcrossCrashes) {
  Cluster cluster(Cluster::Options{.num_processes = 1});
  cluster.await_stable(1'000'000);
  const RingSeq before = cluster.node(0u).config().id.ring.seq;
  cluster.crash(cluster.pid(0));
  cluster.recover(cluster.pid(0));
  cluster.await_stable(1'000'000);
  EXPECT_GT(cluster.node(0u).config().id.ring.seq, before);
}

TEST(NodeTest, CrashStopsActivityAndRecordsFail) {
  Cluster cluster(Cluster::Options{.num_processes = 2});
  cluster.await_stable(2'000'000);
  cluster.crash(cluster.pid(1));
  EXPECT_FALSE(cluster.node(1u).running());
  EXPECT_EQ(cluster.node(1u).state(), EvsNode::State::Down);
  bool saw_fail = false;
  for (const auto& e : cluster.trace().events()) {
    if (e.type == EventType::Fail && e.process == cluster.pid(1)) saw_fail = true;
  }
  EXPECT_TRUE(saw_fail);
  // Double crash is a no-op.
  cluster.crash(cluster.pid(1));
  EXPECT_FALSE(cluster.node(1u).running());
}

TEST(NodeTest, PendingSendsDrainInOrder) {
  Cluster cluster(Cluster::Options{.num_processes = 2});
  cluster.await_stable(2'000'000);
  std::vector<MsgId> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(cluster.node(0u).send(Service::Agreed, {static_cast<std::uint8_t>(i)}).value());
  }
  EXPECT_GT(cluster.node(0u).pending_sends(), 0u);
  cluster.await_quiesce(2'000'000);
  EXPECT_EQ(cluster.node(0u).pending_sends(), 0u);
  // Delivered in submission order (same sender, same token visit).
  const auto ids = cluster.sink(1u).delivered_ids();
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids, sent);
}

TEST(NodeTest, StatsReflectActivity) {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  cluster.await_stable(2'000'000);
  cluster.node(0u).send(Service::Safe, {1});
  cluster.await_quiesce(2'000'000);
  const auto& stats = cluster.node(0u).stats();
  EXPECT_EQ(stats.sent, 1u);
  EXPECT_GE(stats.delivered, 1u);
  EXPECT_GE(stats.conf_changes, 2u);  // singleton boot + merged config
  EXPECT_GE(stats.gathers, 1u);
  EXPECT_GT(stats.tokens_handled, 0u);
}

TEST(NodeTest, StableStorePopulatedByInstall) {
  Cluster cluster(Cluster::Options{.num_processes = 2});
  cluster.await_stable(2'000'000);
  StableStore& store = cluster.store(cluster.pid(0));
  EXPECT_TRUE(store.contains("ring_seq"));
  EXPECT_TRUE(store.contains("last_reg"));
  EXPECT_TRUE(store.contains("incarnation"));
}

TEST(NodeTest, ConfigMembersSortedAndContainSelf) {
  Cluster cluster(Cluster::Options{.num_processes = 4});
  cluster.await_stable(3'000'000);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& members = cluster.node(i).config().members;
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    EXPECT_TRUE(cluster.node(i).config().contains(cluster.pid(i)));
    EXPECT_EQ(members.size(), 4u);
  }
}

TEST(NodeTest, SingletonTokenIsPaced) {
  // An idle singleton must not spin the scheduler at link-delay frequency.
  Cluster::Options opts;
  opts.num_processes = 1;
  opts.node.singleton_token_interval_us = 1'000;
  Cluster cluster(opts);
  cluster.await_stable(1'000'000);
  const std::uint64_t before = cluster.node(0u).stats().tokens_handled;
  cluster.run_for(100'000);
  const std::uint64_t tokens = cluster.node(0u).stats().tokens_handled - before;
  EXPECT_LE(tokens, 110u);  // ~1 per ms, not ~1 per 50us
  EXPECT_GE(tokens, 50u);
}

TEST(NodeTest, LargePayloadRoundTrips) {
  Cluster cluster(Cluster::Options{.num_processes = 2});
  cluster.await_stable(2'000'000);
  std::vector<std::uint8_t> payload(64 * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  cluster.node(0u).send(Service::Safe, payload);
  cluster.await_quiesce(2'000'000);
  ASSERT_EQ(cluster.sink(1u).deliveries.size(), 1u);
  EXPECT_EQ(cluster.sink(1u).deliveries[0].payload, payload);
}

TEST(NodeTest, BurstBeyondFlowControlWindowDelivers) {
  Cluster::Options opts;
  opts.num_processes = 3;
  opts.node.ordering.max_new_per_token = 4;  // tiny window
  Cluster cluster(opts);
  cluster.await_stable(2'000'000);
  for (int i = 0; i < 100; ++i) cluster.node(0u).send(Service::Agreed, {1});
  ASSERT_TRUE(cluster.await_quiesce(5'000'000));
  EXPECT_EQ(cluster.sink(2u).deliveries.size(), 100u);
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
