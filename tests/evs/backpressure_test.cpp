// Sender backpressure: the pending-send queue is capped, overflow fails
// fast with Errc::backpressure instead of queueing without bound, and the
// drain callback fires once the token has worked the queue back below half
// the cap so the application knows when to resume.
#include <gtest/gtest.h>

#include "testkit/cluster.hpp"

namespace evs {
namespace {

Cluster::Options small_queue_options(std::size_t cap) {
  Cluster::Options opts;
  opts.node.max_pending_sends = cap;
  return opts;
}

TEST(BackpressureTest, SendFailsFastAtCapAndResumesAfterDrain) {
  Cluster cluster(small_queue_options(8));
  ASSERT_TRUE(cluster.await_stable()) << cluster.liveness_report();
  EvsNode& n0 = cluster.node(0);
  int drained = 0;
  n0.set_on_send_drain([&] { ++drained; });

  // Sends enqueue synchronously; the token only drains them in virtual
  // time, which we are not running — so the cap must bite exactly.
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 20; ++i) {
    auto sent = n0.send(Service::Agreed, {static_cast<std::uint8_t>(i)});
    if (sent.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(sent.code(), Errc::backpressure);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 8);
  EXPECT_EQ(rejected, 12);
  EXPECT_EQ(n0.stats().backpressure_rejections, 12u);
  EXPECT_EQ(n0.metrics().gauge("evs.pending_sends").value(), 8);
  EXPECT_EQ(drained, 0);

  // Let the ring work: the queue drains, the callback fires exactly once
  // (half-cap hysteresis, not once per send), and sending works again.
  ASSERT_TRUE(cluster.await_quiesce()) << cluster.liveness_report();
  EXPECT_EQ(drained, 1);
  EXPECT_EQ(n0.metrics().gauge("evs.pending_sends").value(), 0);
  EXPECT_TRUE(n0.send(Service::Agreed, {99}).ok());
  ASSERT_TRUE(cluster.await_quiesce()) << cluster.liveness_report();

  // Backpressure must not have cost ordering guarantees: everything that
  // was accepted is delivered everywhere, conformant.
  EXPECT_EQ(cluster.check_report(), "");
  EXPECT_EQ(cluster.sink(0).deliveries.size(), 9u);
}

TEST(BackpressureTest, CrashClearsBackpressureState) {
  Cluster cluster(small_queue_options(4));
  ASSERT_TRUE(cluster.await_stable()) << cluster.liveness_report();
  const ProcessId victim = cluster.pid(1);
  for (int i = 0; i < 6; ++i) {
    (void)cluster.node(victim).send(Service::Agreed, {static_cast<std::uint8_t>(i)});
  }
  EXPECT_EQ(cluster.node(victim).stats().backpressure_rejections, 2u);

  // The queue dies with the process (sends were never acknowledged to the
  // application as durable); the fresh incarnation starts unpressured.
  cluster.crash(victim);
  cluster.recover(victim);
  ASSERT_TRUE(cluster.await_stable(8'000'000)) << cluster.liveness_report();
  EXPECT_EQ(cluster.node(victim).stats().backpressure_rejections, 0u);
  EXPECT_EQ(cluster.node(victim).metrics().gauge("evs.pending_sends").value(), 0);
  EXPECT_TRUE(cluster.node(victim).send(Service::Agreed, {7}).ok());
  ASSERT_TRUE(cluster.await_quiesce()) << cluster.liveness_report();
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
