// Token piggyback semantics: a forwarded token re-carries the tail of the
// visit's data frames so the next holder can cover them this rotation even
// if the broadcast datagram races the token or is lost.
//
// Three properties pinned here:
//   1. ordering.piggybacked_msgs counts only ACCEPTED adoptions at the
//      receiver — a piggybacked copy whose broadcast already arrived is a
//      rejected duplicate and must not count (the sender-side carry count
//      lives in ordering.piggyback_carried).
//   2. The adoption path is real: with data broadcasts cut, delivery
//      survives on the piggyback alone and the adoption counter moves.
//   3. A piggybacked message from ring R is never adopted by a receiver
//      already operational in ring R' > R (cross-ring dedup).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/arena.hpp"
#include "sim/faults.hpp"
#include "testkit/cluster.hpp"
#include "totem/messages.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

std::vector<std::vector<std::uint8_t>> payloads_of(int n, std::size_t bytes) {
  std::vector<std::vector<std::uint8_t>> out;
  for (int i = 0; i < n; ++i) {
    out.emplace_back(bytes, static_cast<std::uint8_t>(i));
  }
  return out;
}

TEST(PiggybackTest, FifoNetworkAdoptsNothingButStillCarries) {
  // Regression (fail-on-pre-fix): with min_delay == max_delay the sim
  // network is FIFO (the scheduler breaks ties in insertion order), and the
  // broadcast is always handed to the network before the token it races.
  // Every piggybacked copy therefore arrives as a duplicate: the sender
  // carries frames (piggyback_carried > 0) but no receiver ever ADOPTS one
  // (piggybacked_msgs == 0). The pre-fix code incremented piggybacked_msgs
  // at the sender per carried frame, so it reads > 0 here.
  Cluster::Options opts;
  opts.net.min_delay_us = 100;
  opts.net.max_delay_us = 100;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.await_stable()) << cluster.liveness_report();
  ASSERT_TRUE(
      cluster.node(0u).send_batch(Service::Agreed, payloads_of(40, 16)).ok());
  ASSERT_TRUE(cluster.await_quiesce()) << cluster.liveness_report();

  std::uint64_t carried = 0, adopted = 0, duplicates = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto s = cluster.node(i).stats();
    carried += s.piggyback_carried;
    adopted += s.piggybacked_msgs;
    duplicates += s.duplicate_regulars;
  }
  EXPECT_GT(carried, 0u) << "burst should have ridden the token";
  EXPECT_GT(duplicates, 0u) << "carried copies must arrive as duplicates";
  EXPECT_EQ(adopted, 0u)
      << "piggybacked_msgs must count receiver adoptions, not sender carries";
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(PiggybackTest, DataCutDeliverySurvivesViaAdoption) {
  // Positive counterpart: cut every DATA datagram the sender emits (token
  // forwards, including the piggyback datagram, still pass) for a finite
  // window. The only way its messages reach the next token holder during
  // the window is adoption off the token, so the counter must move — and
  // the ring must still deliver everything spec-clean once the cut lifts.
  // The burst is kept under batch_max_frames - 1 so the WHOLE visit rides
  // one piggyback: the carry is a tail selection, so a larger burst would
  // starve its head frames for the duration of the cut.
  Cluster cluster;
  ASSERT_TRUE(cluster.await_stable()) << cluster.liveness_report();
  FaultRule rule;
  rule.src = ProcessId{1};  // cluster.node(0)
  rule.data_only = true;
  rule.drop = 1.0;
  rule.until_us = cluster.now() + 400'000;
  cluster.inject_faults(FaultPlan{}.add(rule));

  ASSERT_TRUE(
      cluster.node(0u).send_batch(Service::Agreed, payloads_of(10, 16)).ok());
  // Not await_quiesce: deliveries legitimately stall at the non-adjacent
  // member until the cut lifts (the sender serves — and erases — its rtr
  // requests first, and those rebroadcasts die on the cut), and a stalled
  // count looks "settled" to the quiesce heuristic.
  ASSERT_TRUE(cluster.await(
      [&] {
        for (std::size_t i = 0; i < cluster.size(); ++i) {
          if (cluster.sink(i).deliveries.size() < 10u) return false;
        }
        return true;
      },
      8'000'000))
      << cluster.liveness_report();

  std::uint64_t adopted = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    adopted += cluster.node(i).stats().piggybacked_msgs;
  }
  EXPECT_GT(adopted, 0u) << "delivery crossed the cut, so adoption happened";
  ASSERT_TRUE(cluster.await_quiesce(4'000'000)) << cluster.liveness_report();
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(PiggybackTest, CrossRingPiggybackIsNeverAdopted) {
  // A piggyback datagram from ring R arriving at a member already
  // operational in ring R' > R: the data frame is a stale duplicate from a
  // ring that preceded ours (ring seqs are monotone per process), so it is
  // rejected — never adopted, never counted, and the stale token behind it
  // is ignored. Crafted directly so the scenario is deterministic.
  Cluster cluster;
  ASSERT_TRUE(cluster.await_stable()) << cluster.liveness_report();
  const RingId r1 = cluster.node(0u).config().id.ring;

  // Split {1,2} | {3}: survivors install a higher-seq ring R2.
  cluster.partition({{0, 1}, {2}});
  ASSERT_TRUE(cluster.await([&] {
    const auto& c = cluster.node(0u).config();
    return c.id.ring.seq > r1.seq && c.members.size() == 2;
  }, 4'000'000)) << cluster.liveness_report();

  // Piggyback-shaped datagram from ring R1, "sent" by pid 2 — a CURRENT
  // member of node 1's new ring, so this is exactly the delayed-duplicate
  // shape (a current member cannot still be operational on a lower ring).
  RegularMsg stale;
  stale.ring = r1;
  stale.seq = 1'000;
  stale.id = MsgId{ProcessId{2}, 777};
  stale.service = Service::Agreed;
  stale.payload = {0xAB};
  TokenMsg stale_token;
  stale_token.ring = r1;
  stale_token.rotation = 999;
  stale_token.seq = 1'000;
  stale_token.aru = 0;
  std::vector<std::uint8_t> dgram;
  ASSERT_TRUE(wire::append_frame(dgram, encode_msg(stale)).ok());
  ASSERT_TRUE(wire::append_frame(dgram, encode_msg(stale_token)).ok());
  Packet p;
  p.src = ProcessId{2};
  p.dst = ProcessId{1};
  p.data = net::make_datagram(std::move(dgram));

  const auto before = cluster.node(0u).stats();
  cluster.node(0u).on_packet(p);
  const auto after = cluster.node(0u).stats();
  EXPECT_EQ(after.piggybacked_msgs, before.piggybacked_msgs)
      << "cross-ring piggyback must not be counted as an adoption";
  EXPECT_EQ(after.stale_rejected, before.stale_rejected + 1);
  EXPECT_EQ(after.delivered, before.delivered);
  EXPECT_EQ(after.gathers, before.gathers) << "not a merge signal";

  // Heal; the synthetic payload must never surface anywhere.
  cluster.partition({{0, 1, 2}});
  ASSERT_TRUE(cluster.await_quiesce(8'000'000)) << cluster.liveness_report();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    for (const auto& d : cluster.sink(i).deliveries) {
      EXPECT_NE(d.payload, std::vector<std::uint8_t>{0xAB});
    }
  }
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
