// send_batch / deliver-batch semantics: atomic admission on the send side,
// grouped zero-copy views on the delivery side, and the batching counters.
//
// send_batch is all-or-nothing: one oversized payload or a batch that does
// not fit under max_pending_sends rejects the whole call with nothing
// queued, so a producer never has to unpick a half-accepted burst. The
// delivery batch callback receives every regular-configuration message a
// deliver pass readied, with payload spans valid for the callback only, and
// takes precedence over the per-message handler for that path.
#include <gtest/gtest.h>

#include <numeric>
#include <span>

#include "testkit/cluster.hpp"

namespace evs {
namespace {

std::vector<std::vector<std::uint8_t>> payloads_of(int n, std::size_t bytes) {
  std::vector<std::vector<std::uint8_t>> out;
  for (int i = 0; i < n; ++i) {
    out.emplace_back(bytes, static_cast<std::uint8_t>(i));
  }
  return out;
}

TEST(SendBatchTest, BatchDeliversEverywhereInOrder) {
  Cluster cluster;
  ASSERT_TRUE(cluster.await_stable());
  auto sent = cluster.node(0u).send_batch(Service::Agreed, payloads_of(50, 16));
  ASSERT_TRUE(sent.ok());
  ASSERT_EQ(sent->size(), 50u);
  // Ids are consecutive: one bookkeeping pass, no interleaved admissions.
  for (std::size_t i = 1; i < sent->size(); ++i) {
    EXPECT_EQ((*sent)[i].counter, (*sent)[i - 1].counter + 1);
  }
  ASSERT_TRUE(cluster.await_quiesce());
  for (std::size_t p = 0; p < cluster.size(); ++p) {
    const auto ids = cluster.sink(p).delivered_ids();
    ASSERT_EQ(ids.size(), 50u) << "process " << p;
    EXPECT_EQ(ids, *sent) << "process " << p;
  }
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(SendBatchTest, OversizedPayloadRejectsWholeBatch) {
  Cluster cluster;
  ASSERT_TRUE(cluster.await_stable());
  EvsNode& n = cluster.node(0u);
  auto batch = payloads_of(3, 8);
  batch.push_back(
      std::vector<std::uint8_t>(EvsNode::Options{}.max_payload_bytes + 1, 0));
  auto sent = n.send_batch(Service::Agreed, std::move(batch));
  EXPECT_FALSE(sent.ok());
  EXPECT_EQ(sent.code(), Errc::payload_too_large);
  EXPECT_EQ(n.pending_sends(), 0u);  // nothing queued
}

TEST(SendBatchTest, BackpressureRejectsWholeBatchAtomically) {
  Cluster::Options opts;
  opts.node.max_pending_sends = 10;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.await_stable());
  EvsNode& n = cluster.node(0u);
  ASSERT_TRUE(n.send_batch(Service::Agreed, payloads_of(8, 4)).ok());
  // 8 queued + 3 > 10: rejected, and the 8 already queued are untouched.
  auto sent = n.send_batch(Service::Agreed, payloads_of(3, 4));
  EXPECT_FALSE(sent.ok());
  EXPECT_EQ(sent.code(), Errc::backpressure);
  EXPECT_EQ(n.pending_sends(), 8u);
  // Exactly at the cap fits.
  EXPECT_TRUE(n.send_batch(Service::Agreed, payloads_of(2, 4)).ok());
  EXPECT_EQ(n.pending_sends(), 10u);
  ASSERT_TRUE(cluster.await_quiesce());
  EXPECT_EQ(cluster.sink(2u).deliveries.size(), 10u);
}

TEST(SendBatchTest, RejectedBatchWithRoomAlreadyFreeFiresDrainImmediately) {
  // Regression: a batch rejected while pending_ is ALREADY at or below the
  // half-cap mark must fire the drain callback on the rejection path itself.
  // The single-send path never faces this (rejection implies pending == cap,
  // far above half-cap), so the hysteresis check only ran on token visits —
  // a batch-rejected sender could stall until unrelated ring traffic, or
  // forever on an idle ring.
  Cluster::Options opts;
  opts.node.max_pending_sends = 10;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.await_stable()) << cluster.liveness_report();
  EvsNode& n = cluster.node(0u);
  int drained = 0;
  n.set_on_send_drain([&] { ++drained; });
  ASSERT_TRUE(n.send_batch(Service::Agreed, payloads_of(3, 4)).ok());
  // 3 queued + 8 > 10: rejected. pending == 3 <= half-cap == 5, so the room
  // the callback advertises already exists.
  auto sent = n.send_batch(Service::Agreed, payloads_of(8, 4));
  ASSERT_FALSE(sent.ok());
  ASSERT_EQ(sent.code(), Errc::backpressure);
  // No virtual time has advanced since the rejection — no token visit can
  // have run the check for us. The rejection itself must have.
  EXPECT_EQ(drained, 1);
  // The flag cleared with the callback: the next fitting batch is accepted.
  EXPECT_TRUE(n.send_batch(Service::Agreed, payloads_of(7, 4)).ok());
  ASSERT_TRUE(cluster.await_quiesce()) << cluster.liveness_report();
  EXPECT_EQ(cluster.sink(1u).deliveries.size(), 10u);
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(SendBatchTest, BatchRejectedAtCapFiresDrainAfterTokenDrain) {
  // The classic shape: queue full, batch rejected, drain fires only after a
  // token visit actually empties pending_ below half-cap.
  Cluster::Options opts;
  opts.node.max_pending_sends = 8;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.await_stable()) << cluster.liveness_report();
  EvsNode& n = cluster.node(0u);
  int drained = 0;
  n.set_on_send_drain([&] { ++drained; });
  ASSERT_TRUE(n.send_batch(Service::Agreed, payloads_of(8, 4)).ok());
  auto sent = n.send_batch(Service::Agreed, payloads_of(1, 4));
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(drained, 0);  // queue still full: nothing to advertise yet
  ASSERT_TRUE(cluster.await_quiesce()) << cluster.liveness_report();
  EXPECT_EQ(drained, 1);
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(DeliverBatchTest, BatchHandlerSeesGroupedViewsAndSuppressesPerMessage) {
  Cluster cluster;
  ASSERT_TRUE(cluster.await_stable());

  // Re-register handlers on node 2: count per-message callbacks, collect
  // batch sizes and copy payloads out of the views (they are only valid for
  // the duration of the callback).
  int per_message = 0;
  std::vector<std::size_t> batch_sizes;
  std::vector<std::vector<std::uint8_t>> payloads;
  EvsNode& observer = cluster.node(2u);
  observer.set_on_deliver([&](const EvsNode::Delivery&) { ++per_message; });
  observer.set_on_deliver_batch([&](std::span<const EvsNode::DeliveryView> batch) {
    EXPECT_FALSE(batch.empty());
    batch_sizes.push_back(batch.size());
    for (const auto& v : batch) {
      ASSERT_NE(v.config, nullptr);
      EXPECT_FALSE(v.config->id.transitional);
      payloads.emplace_back(v.payload.begin(), v.payload.end());
    }
  });

  auto sent = cluster.node(0u).send_batch(Service::Agreed, payloads_of(40, 32));
  ASSERT_TRUE(sent.ok());
  ASSERT_TRUE(cluster.await_quiesce());

  EXPECT_EQ(per_message, 0) << "batch handler must preempt per-message path";
  EXPECT_EQ(payloads.size(), 40u);
  const std::size_t total =
      std::accumulate(batch_sizes.begin(), batch_sizes.end(), std::size_t{0});
  EXPECT_EQ(total, 40u);
  // Packing amortizes: a 40-message burst must not arrive one callback per
  // message (the whole point of the batch API).
  EXPECT_LT(batch_sizes.size(), 40u);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(payloads[i], std::vector<std::uint8_t>(32, static_cast<std::uint8_t>(i)));
  }

  // The batching counters moved: the sender packed multi-frame datagrams
  // and re-carried tail frames on the token. (piggybacked_msgs is the
  // RECEIVER-side adoption count and stays zero when every broadcast wins
  // the race with the token; piggyback_carried is the sender-side carry.)
  const auto stats = cluster.node(0u).stats();
  EXPECT_GT(stats.datagrams_packed, 0u);
  EXPECT_GT(stats.piggyback_carried, 0u);
  EXPECT_GT(cluster.node(2u).metrics().histogram("evs.deliver_batch_size").count(), 0u);
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
