#include "evs/fragment.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "testkit/cluster.hpp"

namespace evs {
namespace {

struct FragRig {
  Cluster cluster;
  std::vector<std::unique_ptr<FragmentNode>> nodes;
  std::vector<std::vector<FragmentNode::LargeDelivery>> delivered;

  FragRig(std::size_t n, std::size_t max_fragment)
      : cluster(Cluster::Options{.num_processes = n}) {
    delivered.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<FragmentNode>(
          cluster.node(i), FragmentNode::Options{max_fragment}));
      auto* dst = &delivered[i];
      nodes[i]->set_on_deliver(
          [dst](const FragmentNode::LargeDelivery& d) { dst->push_back(d); });
    }
  }
};

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i * 131 + 7);
  return out;
}

TEST(FragmentTest, SmallPayloadSingleFragment) {
  FragRig rig(2, 1024);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.nodes[0]->send_large(Service::Agreed, pattern(100)).value();
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  ASSERT_EQ(rig.delivered[1].size(), 1u);
  EXPECT_EQ(rig.delivered[1][0].fragments, 1u);
  EXPECT_EQ(rig.delivered[1][0].payload, pattern(100));
  EXPECT_EQ(rig.nodes[0]->stats().fragments_sent, 1u);
}

TEST(FragmentTest, LargePayloadSplitsAndReassembles) {
  FragRig rig(3, 256);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  const auto payload = pattern(10'000);  // 40 fragments
  const auto id = rig.nodes[0]->send_large(Service::Safe, payload).value();
  ASSERT_TRUE(rig.cluster.await_quiesce(5'000'000));
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(rig.delivered[i].size(), 1u) << i;
    EXPECT_EQ(rig.delivered[i][0].id, id);
    EXPECT_EQ(rig.delivered[i][0].fragments, 40u);
    EXPECT_EQ(rig.delivered[i][0].payload, payload);
    EXPECT_EQ(rig.delivered[i][0].service, Service::Safe);
  }
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(FragmentTest, ExactMultipleOfChunkSize) {
  FragRig rig(2, 100);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.nodes[0]->send_large(Service::Agreed, pattern(300)).value();
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  ASSERT_EQ(rig.delivered[1].size(), 1u);
  EXPECT_EQ(rig.delivered[1][0].fragments, 3u);
  EXPECT_EQ(rig.delivered[1][0].payload, pattern(300));
}

TEST(FragmentTest, EmptyPayloadStillDelivered) {
  FragRig rig(2, 64);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.nodes[1]->send_large(Service::Agreed, {}).value();
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  ASSERT_EQ(rig.delivered[0].size(), 1u);
  EXPECT_TRUE(rig.delivered[0][0].payload.empty());
}

TEST(FragmentTest, InterleavedSendersReassembleIndependently) {
  FragRig rig(3, 128);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  const auto a = pattern(1'000);
  auto b = pattern(2'000);
  for (auto& x : b) x ^= 0xFF;
  rig.nodes[0]->send_large(Service::Agreed, a).value();
  rig.nodes[1]->send_large(Service::Agreed, b).value();
  ASSERT_TRUE(rig.cluster.await_quiesce(4'000'000));
  ASSERT_EQ(rig.delivered[2].size(), 2u);
  // Reassembled payloads are intact regardless of fragment interleaving.
  for (const auto& d : rig.delivered[2]) {
    if (d.id.sender == rig.cluster.pid(0)) {
      EXPECT_EQ(d.payload, a);
    } else {
      EXPECT_EQ(d.payload, b);
    }
  }
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(FragmentTest, AllMembersAgreeOnLogicalDeliverySet) {
  FragRig rig(4, 200);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  for (int i = 0; i < 6; ++i) {
    rig.nodes[static_cast<std::size_t>(i % 4)]
        ->send_large(Service::Safe, pattern(500 + 100 * static_cast<std::size_t>(i)))
        .value();
  }
  ASSERT_TRUE(rig.cluster.await_quiesce(5'000'000));
  for (std::size_t i = 1; i < 4; ++i) {
    ASSERT_EQ(rig.delivered[i].size(), rig.delivered[0].size());
    for (std::size_t k = 0; k < rig.delivered[0].size(); ++k) {
      EXPECT_EQ(rig.delivered[i][k].id, rig.delivered[0][k].id);
      EXPECT_EQ(rig.delivered[i][k].payload, rig.delivered[0][k].payload);
    }
  }
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(FragmentTest, ReassemblySurvivesMessageLoss) {
  Cluster::Options copts;
  copts.num_processes = 3;
  copts.seed = 91;
  copts.net.loss_probability = 0.03;
  Cluster cluster(copts);
  std::vector<std::unique_ptr<FragmentNode>> nodes;
  std::vector<std::vector<FragmentNode::LargeDelivery>> got(3);
  for (std::size_t i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<FragmentNode>(cluster.node(i),
                                                   FragmentNode::Options{128}));
    auto* dst = &got[i];
    nodes[i]->set_on_deliver(
        [dst](const FragmentNode::LargeDelivery& d) { dst->push_back(d); });
  }
  ASSERT_TRUE(cluster.await_stable(10'000'000));
  const auto payload = pattern(4'000);  // 32 fragments, some will be lost+retx
  nodes[0]->send_large(Service::Safe, payload).value();
  ASSERT_TRUE(cluster.await_quiesce(30'000'000));
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(got[i].size(), 1u) << i;
    EXPECT_EQ(got[i][0].payload, payload);
  }
  EXPECT_GT(cluster.network().stats().dropped_loss, 0u);
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(FragmentTest, StrandedFragmentsPurgedConsistently) {
  FragRig rig(4, 64);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  // Flood with multi-fragment messages and cut the network mid-stream; some
  // logical messages will straddle the configuration change.
  for (int i = 0; i < 10; ++i) {
    rig.nodes[static_cast<std::size_t>(i % 4)]->send_large(Service::Agreed, pattern(2'000)).value();
  }
  rig.cluster.run_for(700);
  rig.cluster.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  // Within each component, the set of reassembled logical messages agrees.
  auto ids = [](const std::vector<FragmentNode::LargeDelivery>& v) {
    std::vector<FragmentNode::LargeId> out;
    for (const auto& d : v) out.push_back(d.id);
    return out;
  };
  EXPECT_EQ(ids(rig.delivered[0]), ids(rig.delivered[1]));
  EXPECT_EQ(ids(rig.delivered[2]), ids(rig.delivered[3]));
  EXPECT_EQ(rig.cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
