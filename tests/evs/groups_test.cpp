// Process-group addressing on top of the broadcast domain.
#include "evs/groups.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "testkit/cluster.hpp"

namespace evs {
namespace {

constexpr GroupId kChat = 1;
constexpr GroupId kLogs = 2;

struct GroupRig {
  Cluster cluster;
  std::vector<std::unique_ptr<GroupNode>> nodes;
  std::vector<std::vector<GroupNode::GroupDelivery>> delivered;
  std::vector<std::vector<GroupNode::GroupView>> views;

  explicit GroupRig(std::size_t n) : cluster(Cluster::Options{.num_processes = n}) {
    delivered.resize(n);
    views.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<GroupNode>(cluster.node(i)));
      auto* dst = &delivered[i];
      auto* vw = &views[i];
      nodes[i]->set_on_deliver(
          [dst](const GroupNode::GroupDelivery& d) { dst->push_back(d); });
      nodes[i]->set_on_view_change(
          [vw](const GroupNode::GroupView& v) { vw->push_back(v); });
    }
  }
};

TEST(GroupTest, OnlyMembersDeliver) {
  GroupRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.nodes[0]->join(kChat);
  rig.nodes[1]->join(kChat);
  // node 2 stays out of kChat
  rig.nodes[2]->join(kLogs);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));

  rig.nodes[0]->send(kChat, Service::Agreed, {'h', 'i'});
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));

  ASSERT_EQ(rig.delivered[0].size(), 1u);
  ASSERT_EQ(rig.delivered[1].size(), 1u);
  EXPECT_EQ(rig.delivered[1][0].group, kChat);
  EXPECT_EQ(rig.delivered[1][0].payload, (std::vector<std::uint8_t>{'h', 'i'}));
  EXPECT_TRUE(rig.delivered[2].empty());
  EXPECT_GT(rig.nodes[2]->stats().filtered_foreign, 0u);
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(GroupTest, ViewTracksJoinsAndLeaves) {
  GroupRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.nodes[0]->join(kChat);
  rig.nodes[1]->join(kChat);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  EXPECT_EQ(rig.nodes[0]->view(kChat),
            (std::vector<ProcessId>{rig.cluster.pid(0), rig.cluster.pid(1)}));

  rig.nodes[1]->leave(kChat);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  EXPECT_EQ(rig.nodes[0]->view(kChat), std::vector<ProcessId>{rig.cluster.pid(0)});
  EXPECT_FALSE(rig.nodes[1]->joined(kChat));
}

TEST(GroupTest, MembershipAgreedAcrossMembers) {
  GroupRig rig(4);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  for (std::size_t i = 0; i < 4; ++i) rig.nodes[i]->join(kChat);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(rig.nodes[i]->view(kChat), rig.nodes[0]->view(kChat));
  }
  EXPECT_EQ(rig.nodes[0]->view(kChat).size(), 4u);
}

TEST(GroupTest, PartitionShrinksViewMergeRestoresIt) {
  GroupRig rig(4);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  for (std::size_t i = 0; i < 4; ++i) rig.nodes[i]->join(kChat);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));

  rig.cluster.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  EXPECT_EQ(rig.nodes[0]->view(kChat),
            (std::vector<ProcessId>{rig.cluster.pid(0), rig.cluster.pid(1)}));
  EXPECT_EQ(rig.nodes[2]->view(kChat),
            (std::vector<ProcessId>{rig.cluster.pid(2), rig.cluster.pid(3)}));

  // Group multicast keeps flowing inside each component.
  rig.nodes[0]->send(kChat, Service::Safe, {1});
  rig.nodes[2]->send(kChat, Service::Safe, {2});
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  EXPECT_EQ(rig.delivered[1].back().payload, std::vector<std::uint8_t>{1});
  EXPECT_EQ(rig.delivered[3].back().payload, std::vector<std::uint8_t>{2});

  rig.cluster.heal();
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  EXPECT_EQ(rig.nodes[0]->view(kChat).size(), 4u);
  EXPECT_EQ(rig.nodes[3]->view(kChat).size(), 4u);
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(GroupTest, JoinerDoesNotSeeEarlierMessages) {
  GroupRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.nodes[0]->join(kChat);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  rig.nodes[0]->send(kChat, Service::Agreed, {1});
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  rig.nodes[1]->join(kChat);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  rig.nodes[0]->send(kChat, Service::Agreed, {2});
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  // The late joiner sees only the message ordered after its join.
  ASSERT_EQ(rig.delivered[1].size(), 1u);
  EXPECT_EQ(rig.delivered[1][0].payload, std::vector<std::uint8_t>{2});
}

TEST(GroupTest, MultipleGroupsIndependent) {
  GroupRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  rig.nodes[0]->join(kChat);
  rig.nodes[0]->join(kLogs);
  rig.nodes[1]->join(kChat);
  rig.nodes[2]->join(kLogs);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  rig.nodes[0]->send(kChat, Service::Agreed, {1});
  rig.nodes[0]->send(kLogs, Service::Agreed, {2});
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  ASSERT_EQ(rig.delivered[1].size(), 1u);
  EXPECT_EQ(rig.delivered[1][0].group, kChat);
  ASSERT_EQ(rig.delivered[2].size(), 1u);
  EXPECT_EQ(rig.delivered[2][0].group, kLogs);
  EXPECT_EQ(rig.nodes[0]->groups(), (std::vector<GroupId>{kChat, kLogs}));
}

TEST(GroupTest, LeaveWhilePartitionedPropagatesOnMerge) {
  GroupRig rig(4);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  for (std::size_t i = 0; i < 4; ++i) rig.nodes[i]->join(kChat);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));

  rig.cluster.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  // Index 3 leaves while its component is isolated; the other side cannot
  // know yet.
  rig.nodes[3]->leave(kChat);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  EXPECT_EQ(rig.nodes[2]->view(kChat), std::vector<ProcessId>{rig.cluster.pid(2)});
  EXPECT_EQ(rig.nodes[0]->view(kChat).size(), 2u);

  rig.cluster.heal();
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  // After the merge, announcements re-establish membership: index 3 stays
  // out (it never re-announces kChat), everyone else is back.
  EXPECT_EQ(rig.nodes[0]->view(kChat),
            (std::vector<ProcessId>{rig.cluster.pid(0), rig.cluster.pid(1),
                                    rig.cluster.pid(2)}));
  EXPECT_FALSE(rig.nodes[3]->joined(kChat));
  EXPECT_EQ(rig.cluster.check_report(), "");
}

TEST(GroupTest, CrashedMemberLeavesViewRecoveredRejoins) {
  GroupRig rig(3);
  ASSERT_TRUE(rig.cluster.await_stable(3'000'000));
  for (std::size_t i = 0; i < 3; ++i) rig.nodes[i]->join(kChat);
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  rig.cluster.crash(rig.cluster.pid(2));
  ASSERT_TRUE(rig.cluster.await_quiesce(3'000'000));
  EXPECT_EQ(rig.nodes[0]->view(kChat).size(), 2u);

  // A fresh incarnation wraps the recovered EvsNode and rejoins.
  rig.cluster.recover(rig.cluster.pid(2));
  rig.nodes[2] = std::make_unique<GroupNode>(rig.cluster.node(2u));
  rig.nodes[2]->join(kChat);
  ASSERT_TRUE(rig.cluster.await_quiesce(6'000'000));
  EXPECT_EQ(rig.nodes[0]->view(kChat).size(), 3u);
  EXPECT_EQ(rig.cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
