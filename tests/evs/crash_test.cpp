// Systematic crash-point exploration of the recovery protocol.
//
// The tentpole check of the crash-consistent storage work: enumerate every
// stable-storage append a victim process performs while the cluster runs a
// Figure-6-style partition/merge scenario, and for each append k re-run the
// scenario with the victim dying exactly at its kth write — with the write
// landing clean, torn, or corrupted, as a mid-write power cut would leave
// it. After every crash the victim recovers onto its repaired log and the
// whole history is machine-checked against the specification (Specs 1-7,
// including 7.1 safe delivery and 4 failure atomicity). Because the step
// 5.c persist precedes the complete-acknowledgment, and installs/deliveries
// persist before they act, no crash point may lose anything the protocol
// already promised.
//
// The ack_without_persist mutation closes the loop: skipping the 5.c
// persist while sweeping the same crash points must produce a violation (or
// a stuck cluster), proving the sweep can actually see the bug class it
// exists to prevent.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "evs/config.hpp"
#include "sim/faults.hpp"
#include "storage/stable_store.hpp"
#include "testkit/cluster.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

constexpr std::size_t kVictim = 1;  // q in the Figure 6 cast {p, q, r, s}

struct SweepRun {
  std::string report;        ///< "" = specification-conformant
  bool stabilized{false};    ///< the final configuration converged
  bool safe_msg_kept{true};  ///< the acknowledged safe message survived
  std::uint64_t writes_at_arm{0};
  std::uint64_t writes_total{0};
  bool crash_fired{false};
};

/// One Figure-6 partition/merge scenario with an optional armed crash point.
/// `nth_write` counts the victim's appends from the arm point (right after
/// the initial configuration stabilizes); 0 = no crash, used to measure the
/// sweep domain.
SweepRun run_scenario(std::uint64_t nth_write, StableStore::TailFault variant,
                      EvsNode::FaultInjection mutation = {}) {
  SweepRun out;
  Cluster::Options opts;
  opts.num_processes = 4;
  opts.seed = 20260806;
  opts.node.faults = mutation;
  Cluster cluster(opts);
  const ProcessId victim = cluster.pid(kVictim);

  // Phase A: {p, q, r} | {s}, with delivered (acknowledged) history.
  cluster.partition({{0, 1, 2}, {3}});
  if (!cluster.await_stable(4'000'000)) return out;
  const MsgId early_agreed = cluster.node(0u).send(Service::Agreed, {1}).value();
  const MsgId early_safe =
      cluster.node(kVictim).send(Service::Safe, {2}).value();
  if (!cluster.await_quiesce(4'000'000)) return out;
  if (!cluster.sink(2u).delivered(early_safe)) return out;

  out.writes_at_arm = cluster.store_writes(victim);
  if (nth_write > 0) {
    EXPECT_TRUE(cluster.arm_crash_point(victim, nth_write, variant).ok());
  }

  // Phase B: the Figure 6 event — p isolated, {q, r} merge with {s}. The
  // merge drives recovery steps 1-6 (exchange, rebroadcast, 5.c persist,
  // install) at every member including the victim.
  cluster.partition({{0}, {1, 2, 3}});
  (void)cluster.await_stable(4'000'000);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.node(i).running()) {
      (void)cluster.node(i).send(i % 2 ? Service::Safe : Service::Agreed,
                                 {static_cast<std::uint8_t>(0x10 + i)});
    }
  }
  cluster.run_for(150'000);

  // Phase C: remerge everyone; another full recovery episode.
  cluster.heal();
  (void)cluster.await_stable(4'000'000);

  // Recover the victim if (and wherever) the armed crash point fired.
  out.crash_fired = !cluster.node(kVictim).running();
  if (out.crash_fired) {
    EXPECT_TRUE(cluster.recover(victim).ok());
  }
  out.stabilized = cluster.await_stable(6'000'000);

  // Post-recovery traffic proves the configuration is live, then quiesce so
  // the strict (quiescent) specification check applies.
  if (out.stabilized) {
    (void)cluster.node(0u).send(Service::Safe, {0x77});
    out.stabilized = cluster.await_quiesce(8'000'000);
  }
  out.writes_total = cluster.store_writes(victim);
  out.report = cluster.check_report(out.stabilized);
  // The acknowledged safe message from phase A must still be part of the
  // survivors' history — a crash point that silently erased it would not
  // necessarily surface as an ordering violation.
  out.safe_msg_kept = cluster.sink(0u).delivered(early_safe) &&
                      cluster.sink(2u).delivered(early_safe) &&
                      cluster.sink(0u).delivered(early_agreed);
  return out;
}

TEST(CrashPointSweep, BaselineScenarioIsCleanAndHasCrashPoints) {
  const SweepRun base = run_scenario(0, StableStore::TailFault::Clean);
  EXPECT_TRUE(base.stabilized);
  EXPECT_EQ(base.report, "");
  EXPECT_TRUE(base.safe_msg_kept);
  // The scenario must actually exercise the persistence points of recovery
  // steps 1-6 at the victim (boot writes come before the arm point).
  EXPECT_GE(base.writes_total - base.writes_at_arm, 5u);
}

/// The sweep: every victim append in the scenario window x every way the
/// final write can land on the log. Every combination must recover to a
/// specification-conformant history with nothing acknowledged lost.
TEST(CrashPointSweep, EveryCrashPointRecoversClean) {
  const SweepRun base = run_scenario(0, StableStore::TailFault::Clean);
  ASSERT_TRUE(base.stabilized) << "baseline scenario did not stabilize";
  ASSERT_EQ(base.report, "");
  const std::uint64_t points = base.writes_total - base.writes_at_arm;
  ASSERT_GE(points, 5u);

  for (StableStore::TailFault variant :
       {StableStore::TailFault::Clean, StableStore::TailFault::Torn,
        StableStore::TailFault::Corrupt}) {
    for (std::uint64_t k = 1; k <= points; ++k) {
      const SweepRun run = run_scenario(k, variant);
      EXPECT_TRUE(run.stabilized)
          << "crash point " << k << " variant " << static_cast<int>(variant)
          << " did not restabilize";
      EXPECT_EQ(run.report, "")
          << "crash point " << k << " variant " << static_cast<int>(variant);
      EXPECT_TRUE(run.safe_msg_kept)
          << "crash point " << k << " variant " << static_cast<int>(variant)
          << " lost an acknowledged message";
    }
  }
}

// ---------------------------------------------------------------------------
// The persist-before-ack contract, checked directly.
//
// Spec 7.1 exempts failed processes, so a victim that crashes mid-recovery
// is never *obligated* by the black-box checker — which is exactly how an
// ack-without-persist bug would hide. The contract has a sharper observable
// consequence, though: when a surviving peer installs a transitional
// configuration that still CONTAINS the victim, that install is proof the
// victim sent its step 5.c complete-acknowledgment. If the victim's stable
// storage additionally still names the old ring as its last regular
// configuration (the install never began there), then the 5.c persist must
// have put the acknowledged backlog on disk — so the recovered incarnation
// resolves it at boot and delivers the peer's transitional safe messages.
// A victim that acked, kept its old-ring last_reg, and still lost the safe
// message has acknowledged something it never persisted.

struct AckRun {
  bool peer_delivered_with_victim{false};  ///< m safe-delivered in trans {B,C}
  bool applicable{false};  ///< ...and victim crashed with old-ring last_reg
  bool victim_delivered{false};
  bool stabilized{false};
  std::string report;
  std::uint64_t writes_at_arm{0};
  std::uint64_t writes_total{0};
};

/// One Fig.6 "message n" episode: A's safe message is cut off from its
/// acknowledgment horizon by a partition, so {B, C=victim} must deliver it
/// in their transitional configuration during recovery — the delivery whose
/// persistence the 5.c contract protects across a victim crash.
AckRun run_ack_scenario(SimTime cut_delay_us, std::uint64_t nth_write,
                        StableStore::TailFault variant,
                        EvsNode::FaultInjection mutation = {}) {
  AckRun out;
  Cluster::Options opts;
  opts.num_processes = 3;
  opts.seed = 77;
  opts.node.faults = mutation;
  Cluster cluster(opts);
  const ProcessId victim = cluster.pid(2);
  if (!cluster.await_stable(4'000'000)) return out;
  const RingId old_ring = cluster.node(2u).config().id.ring;

  const MsgId m = cluster.node(0u).send(Service::Safe, {0x5A}).value();
  cluster.run_for(cut_delay_us);  // m ordered + received, horizon incomplete

  out.writes_at_arm = cluster.store_writes(victim);
  if (nth_write > 0) {
    EXPECT_TRUE(cluster.arm_crash_point(victim, nth_write, variant).ok());
  }
  cluster.partition({{0}, {1, 2}});
  (void)cluster.await_stable(4'000'000);

  for (const auto& d : cluster.sink(1u).deliveries) {
    if (d.id == m && d.config.id.transitional &&
        std::find(d.config.members.begin(), d.config.members.end(), victim) !=
            d.config.members.end()) {
      out.peer_delivered_with_victim = true;
    }
  }

  if (!cluster.node(2u).running()) {
    StableStore& store = cluster.store(victim);
    (void)store.open();  // idempotent; recover() below opens again
    bool still_on_old_ring = false;
    if (auto blob = store.get("last_reg")) {
      wire::Reader r(*blob);
      const ConfigId last = decode_config_id(r);
      still_on_old_ring = (last.ring == old_ring);
    }
    out.applicable = out.peer_delivered_with_victim && still_on_old_ring;
    EXPECT_TRUE(cluster.recover(victim).ok());
  }

  cluster.heal();
  out.stabilized =
      cluster.await_stable(6'000'000) && cluster.await_quiesce(8'000'000);
  out.writes_total = cluster.store_writes(victim);
  out.report = cluster.check_report(out.stabilized);
  out.victim_delivered = cluster.sink(2u).delivered(m);
  return out;
}

/// The partition must hit between m's broadcast and its safe horizon; the
/// deterministic simulation makes this a fixed property of the delay, so
/// calibrate once and reuse.
SimTime calibrate_cut_delay() {
  for (SimTime d : {100, 200, 300, 500, 800, 1'200, 2'000}) {
    const AckRun probe = run_ack_scenario(d, 0, StableStore::TailFault::Clean);
    if (probe.stabilized && probe.peer_delivered_with_victim) return d;
  }
  return 0;
}

TEST(AckWithoutPersist, ContractHoldsAtEveryCrashPoint) {
  const SimTime cut = calibrate_cut_delay();
  ASSERT_GT(cut, 0u) << "no delay produced the transitional safe delivery";
  const AckRun base = run_ack_scenario(cut, 0, StableStore::TailFault::Clean);
  const std::uint64_t points = base.writes_total - base.writes_at_arm;
  ASSERT_GE(points, 3u);

  for (StableStore::TailFault variant :
       {StableStore::TailFault::Clean, StableStore::TailFault::Torn,
        StableStore::TailFault::Corrupt}) {
    for (std::uint64_t k = 1; k <= points; ++k) {
      const AckRun run = run_ack_scenario(cut, k, variant);
      EXPECT_TRUE(run.stabilized) << "crash point " << k;
      EXPECT_EQ(run.report, "") << "crash point " << k;
      if (run.applicable) {
        EXPECT_TRUE(run.victim_delivered)
            << "crash point " << k << " variant " << static_cast<int>(variant)
            << ": the victim acknowledged recovery completion, kept its "
               "old-ring last_reg, and still lost the safe message";
      }
    }
  }
}

/// Mutation closure: skip the 5.c persist (acknowledge without persisting)
/// and the sweep above must notice — some crash point yields a victim that
/// provably acked and still lost the message (or a violation / a stuck
/// cluster). If this fails, the contract check is toothless.
TEST(AckWithoutPersist, SkippingThePersistIsCaught) {
  const SimTime cut = calibrate_cut_delay();
  ASSERT_GT(cut, 0u);
  EvsNode::FaultInjection mutation;
  mutation.ack_without_persist = true;

  const AckRun base = run_ack_scenario(cut, 0, StableStore::TailFault::Clean);
  const std::uint64_t points = base.writes_total - base.writes_at_arm;

  bool caught = false;
  for (StableStore::TailFault variant :
       {StableStore::TailFault::Clean, StableStore::TailFault::Torn,
        StableStore::TailFault::Corrupt}) {
    for (std::uint64_t k = 1; k <= points && !caught; ++k) {
      const AckRun run = run_ack_scenario(cut, k, variant, mutation);
      caught = !run.stabilized || !run.report.empty() ||
               (run.applicable && !run.victim_delivered);
    }
  }
  EXPECT_TRUE(caught)
      << "acknowledging recovery completion without persisting went unnoticed "
         "at every crash point";
}

/// Random disk storms: under probabilistic write-fail/torn/rot faults the
/// fail-stop policy may kill processes, but it must never corrupt the
/// surviving history. Fail-stopped processes recover once the storm window
/// closes and the final history still checks clean.
TEST(CrashStorm, DiskFaultStormsNeverViolateTheSpec) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Cluster::Options opts;
    opts.num_processes = 3;
    opts.seed = seed;
    constexpr SimTime kStormEnd = 600'000;
    opts.faults = FaultPlan::disk_faults(0.02, 0.01, 0.01, 0, kStormEnd);
    Cluster cluster(opts);
    Rng rng(seed * 31 + 7);
    (void)cluster.await_stable(4'000'000);
    for (int round = 0; round < 4; ++round) {
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        if (cluster.node_ptr(i) != nullptr && cluster.node(i).running()) {
          (void)cluster.node(i).send(rng.chance(0.5) ? Service::Safe
                                                     : Service::Agreed,
                                     {static_cast<std::uint8_t>(round)});
        }
      }
      cluster.run_for(100'000);
      // Fail-stopped processes rejoin mid-storm; recovery itself may
      // fail-stop again under the storm, which is fine — try each round.
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        if (cluster.node_ptr(i) != nullptr && !cluster.node(i).running()) {
          (void)cluster.recover(cluster.pid(i));
        }
      }
    }
    // Past the storm window recovery is reliable: bring everyone back.
    if (cluster.now() <= kStormEnd) {
      cluster.run_for(kStormEnd - cluster.now() + 50'000);
    }
    ASSERT_GT(cluster.now(), kStormEnd);
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (cluster.node_ptr(i) != nullptr && !cluster.node(i).running()) {
        ASSERT_TRUE(cluster.recover(cluster.pid(i)).ok());
      }
    }
    const bool quiesced = cluster.await_quiesce(10'000'000);
    EXPECT_TRUE(quiesced) << "seed " << seed << " did not quiesce\n"
                          << cluster.liveness_report();
    EXPECT_EQ(cluster.check_report(quiesced), "") << "seed " << seed;
  }
}

/// Store-level fuzz at sanitizer scale: 20k randomized logs with randomized
/// tear/rot damage. open() must never crash, must converge (a second open
/// of a repaired log finds nothing left to repair), and every surviving
/// value must be one that was actually written.
TEST(CrashFuzz, TwentyThousandTornAndCorruptLogsRepairClean) {
  Rng rng(0xDEADBEA7);
  for (int trial = 0; trial < 20'000; ++trial) {
    StableStore store;
    const int records = 1 + static_cast<int>(rng.below(12));
    for (int i = 0; i < records; ++i) {
      StableStore::Blob v(1 + rng.below(48));
      for (auto& b : v) b = static_cast<std::uint8_t>(rng());
      ASSERT_TRUE(
          store.put("k" + std::to_string(rng.below(6)), std::move(v)).ok());
    }
    const int damages = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < damages; ++i) {
      switch (rng.below(3)) {
        case 0:
          store.damage_tail(StableStore::TailFault::Torn);
          break;
        case 1:
          store.damage_tail(StableStore::TailFault::Corrupt);
          break;
        default:
          store.rot_log_byte(
              rng.below(std::max<std::size_t>(store.log_bytes(), 1)),
              static_cast<std::uint8_t>(1 + rng.below(255)));
      }
    }
    store.crash();
    const auto rep = store.open();
    ASSERT_LE(rep.records_kept, static_cast<std::size_t>(records));
    store.crash();
    const auto rep2 = store.open();
    ASSERT_EQ(rep2.records_kept, rep.records_kept);
    ASSERT_FALSE(rep2.repaired());
  }
}

}  // namespace
}  // namespace evs
