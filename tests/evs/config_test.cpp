#include "evs/config.hpp"

#include <gtest/gtest.h>

namespace evs {
namespace {

const RingId R1{1, ProcessId{1}};
const RingId R2{2, ProcessId{1}};
const RingId R2b{2, ProcessId{3}};

TEST(ConfigIdTest, RingIdOrderingBySeqThenRep) {
  EXPECT_LT(R1, R2);
  EXPECT_LT(R2, R2b);
  EXPECT_EQ(R1, (RingId{1, ProcessId{1}}));
  EXPECT_FALSE(R1.valid() && R1 == RingId{});
  EXPECT_TRUE(R1.valid());
  EXPECT_FALSE(RingId{}.valid());
}

TEST(ConfigIdTest, RegularAndTransitionalConstruction) {
  const ConfigId reg = ConfigId::regular(R1);
  EXPECT_FALSE(reg.transitional);
  EXPECT_EQ(reg.ring, R1);
  EXPECT_TRUE(reg.valid());

  const ConfigId trans = ConfigId::trans(R1, R2);
  EXPECT_TRUE(trans.transitional);
  EXPECT_EQ(trans.prior_ring, R1);
  EXPECT_EQ(trans.ring, R2);
  EXPECT_NE(reg, trans);
}

TEST(ConfigIdTest, TransitionalConfigsOfSameRegularDiffer) {
  // Two components of one partitioned configuration install different next
  // rings, hence different transitional configuration identifiers.
  const ConfigId t1 = ConfigId::trans(R1, R2);
  const ConfigId t2 = ConfigId::trans(R1, R2b);
  EXPECT_NE(t1, t2);
}

TEST(ConfigurationTest, ContainsUsesBinarySearch) {
  Configuration c;
  c.id = ConfigId::regular(R1);
  c.members = {ProcessId{1}, ProcessId{3}, ProcessId{5}};
  EXPECT_TRUE(c.contains(ProcessId{3}));
  EXPECT_FALSE(c.contains(ProcessId{2}));
  EXPECT_FALSE(c.contains(ProcessId{6}));
}

TEST(OrdTest, DeliveryOrdsFollowSeqOrder) {
  EXPECT_LT(ord_message_delivery(R1, 1), ord_message_delivery(R1, 2));
  EXPECT_LT(ord_message_delivery(R1, 999), ord_message_delivery(R2, 1));
}

TEST(OrdTest, TransitionalConfBetweenCutoffAndNext) {
  const Ord cut3 = ord_transitional_conf(R1, 3);
  EXPECT_LT(ord_message_delivery(R1, 3), cut3);
  EXPECT_LT(cut3, ord_message_delivery(R1, 4));
  // And the next regular configuration follows everything in the old ring.
  EXPECT_LT(cut3, ord_regular_conf(R2));
  EXPECT_LT(ord_message_delivery(R1, 1'000'000), ord_regular_conf(R2));
}

TEST(OrdTest, SendSlotsSitBetweenDeliveries) {
  // A send right after delivering seq 2 must order before delivery of seq 3.
  Ord after_deliver_2 = ord_send_after(ord_message_delivery(R1, 2));
  EXPECT_LT(ord_message_delivery(R1, 2), after_deliver_2);
  EXPECT_LT(after_deliver_2, ord_message_delivery(R1, 3));
  // Consecutive sends remain ordered and below the next delivery.
  Ord second = ord_send_after(after_deliver_2);
  EXPECT_LT(after_deliver_2, second);
  EXPECT_LT(second, ord_message_delivery(R1, 3));
}

TEST(OrdTest, SendAfterRegularConfBeforeFirstDelivery) {
  Ord s = ord_send_after(ord_regular_conf(R1));
  EXPECT_LT(ord_regular_conf(R1), s);
  EXPECT_LT(s, ord_message_delivery(R1, 1));
}

TEST(ToStringTest, HumanReadableForms) {
  EXPECT_EQ(to_string(ProcessId{7}), "P7");
  EXPECT_EQ(to_string(R1), "ring(1,P1)");
  EXPECT_EQ(to_string(ConfigId::regular(R1)), "reg[ring(1,P1)]");
  EXPECT_EQ(to_string(ConfigId::trans(R1, R2)), "trans[ring(1,P1)->ring(2,P1)]");
  EXPECT_EQ(to_string(MsgId{ProcessId{2}, 9}), "P2#9");
  Configuration c;
  c.id = ConfigId::regular(R1);
  c.members = {ProcessId{1}, ProcessId{2}};
  EXPECT_EQ(to_string(c), "reg[ring(1,P1)]{P1,P2}");
  EXPECT_EQ(to_string(Service::Safe), std::string("safe"));
  EXPECT_EQ(to_string(Service::Agreed), std::string("agreed"));
  EXPECT_EQ(to_string(Service::Causal), std::string("causal"));
}

TEST(MsgIdTest, OrderingAndValidity) {
  EXPECT_LT((MsgId{ProcessId{1}, 5}), (MsgId{ProcessId{1}, 6}));
  EXPECT_LT((MsgId{ProcessId{1}, 9}), (MsgId{ProcessId{2}, 1}));
  EXPECT_FALSE(MsgId{}.valid());
  EXPECT_TRUE((MsgId{ProcessId{1}, 1}).valid());
}

}  // namespace
}  // namespace evs
