#include "evs/recovery.hpp"

#include <gtest/gtest.h>

#include <map>

namespace evs {
namespace {

const ProcessId P1{1};
const ProcessId P2{2};
const ProcessId P3{3};
const RingId kOldRing{5, P1};
const RingId kOtherRing{4, P3};
const RingId kProposed{9, P1};

ExchangeMsg exchange_for(ProcessId p, RingId old_ring, SeqSet received,
                         SeqNum safe_upto = 0, SeqNum delivered_upto = 0,
                         std::vector<ProcessId> obligations = {}) {
  ExchangeMsg e;
  e.sender = p;
  e.proposed_ring = kProposed;
  e.old_ring = old_ring;
  e.received = std::move(received);
  e.old_safe_upto = safe_upto;
  e.delivered_upto = delivered_upto;
  e.obligation_set = std::move(obligations);
  return e;
}

SeqSet seqs(std::initializer_list<SeqNum> list) {
  SeqSet s;
  for (SeqNum v : list) s.insert(v);
  return s;
}

RecoveryAckMsg ack_for(ProcessId p, SeqSet received, bool complete) {
  RecoveryAckMsg a;
  a.sender = p;
  a.proposed_ring = kProposed;
  a.old_ring = kOldRing;
  a.received = std::move(received);
  a.complete = complete;
  return a;
}

struct MsgStore {
  std::map<SeqNum, RegularMsg> msgs;

  void add(SeqNum seq, ProcessId sender, Service service = Service::Agreed) {
    RegularMsg m;
    m.ring = kOldRing;
    m.seq = seq;
    m.id = MsgId{sender, seq};
    m.service = service;
    msgs[seq] = m;
  }

  std::function<const RegularMsg*(SeqNum)> lookup() const {
    return [this](SeqNum s) -> const RegularMsg* {
      auto it = msgs.find(s);
      return it == msgs.end() ? nullptr : &it->second;
    };
  }
};

TEST(RecoveryEngineTest, CollectsExchangesUntilComplete) {
  RecoveryEngine eng(P1, kProposed, {P1, P2});
  EXPECT_FALSE(eng.have_all_exchanges());
  EXPECT_TRUE(eng.on_exchange(exchange_for(P1, kOldRing, seqs({1}))));
  EXPECT_FALSE(eng.on_exchange(exchange_for(P1, kOldRing, seqs({1}))));  // frozen
  EXPECT_FALSE(eng.have_all_exchanges());
  EXPECT_TRUE(eng.on_exchange(exchange_for(P2, kOldRing, seqs({2}))));
  EXPECT_TRUE(eng.have_all_exchanges());
}

TEST(RecoveryEngineTest, ExchangeFromNonMemberIgnored) {
  RecoveryEngine eng(P1, kProposed, {P1, P2});
  EXPECT_FALSE(eng.on_exchange(exchange_for(P3, kOldRing, seqs({1}))));
}

TEST(RecoveryEngineTest, TransitionalMembersShareOldRing) {
  RecoveryEngine eng(P1, kProposed, {P1, P2, P3});
  eng.on_exchange(exchange_for(P1, kOldRing, {}));
  eng.on_exchange(exchange_for(P2, kOldRing, {}));
  eng.on_exchange(exchange_for(P3, kOtherRing, {}));
  EXPECT_EQ(eng.transitional_members(kOldRing), (std::vector<ProcessId>{P1, P2}));
  EXPECT_EQ(eng.transitional_members(kOtherRing), std::vector<ProcessId>{P3});
}

TEST(RecoveryEngineTest, UnionReceivedMergesTransMembers) {
  RecoveryEngine eng(P1, kProposed, {P1, P2, P3});
  eng.on_exchange(exchange_for(P1, kOldRing, seqs({1, 2})));
  eng.on_exchange(exchange_for(P2, kOldRing, seqs({2, 4})));
  eng.on_exchange(exchange_for(P3, kOtherRing, seqs({99})));
  auto u = eng.union_received({P1, P2});
  EXPECT_EQ(u, seqs({1, 2, 4}));  // P3's messages belong to a different ring
}

TEST(RecoveryEngineTest, LowestHolderRebroadcasts) {
  RecoveryEngine eng1(P1, kProposed, {P1, P2});
  eng1.on_exchange(exchange_for(P1, kOldRing, seqs({1, 2})));
  eng1.on_exchange(exchange_for(P2, kOldRing, seqs({2, 3})));
  // P1 must send 1 and 2? No: 2 is held by both, nobody misses... P2 misses 1,
  // P1 misses 3. P1 is the lowest holder of seq 1.
  EXPECT_EQ(eng1.to_rebroadcast({P1, P2}, seqs({1, 2})), std::vector<SeqNum>{1});

  RecoveryEngine eng2(P2, kProposed, {P1, P2});
  eng2.on_exchange(exchange_for(P1, kOldRing, seqs({1, 2})));
  eng2.on_exchange(exchange_for(P2, kOldRing, seqs({2, 3})));
  EXPECT_EQ(eng2.to_rebroadcast({P1, P2}, seqs({2, 3})), std::vector<SeqNum>{3});
}

TEST(RecoveryEngineTest, AcksShrinkRebroadcastNeeds) {
  RecoveryEngine eng(P1, kProposed, {P1, P2});
  eng.on_exchange(exchange_for(P1, kOldRing, seqs({1})));
  eng.on_exchange(exchange_for(P2, kOldRing, seqs({2})));
  EXPECT_EQ(eng.to_rebroadcast({P1, P2}, seqs({1})), std::vector<SeqNum>{1});
  eng.on_ack(ack_for(P2, seqs({1, 2}), false));
  EXPECT_TRUE(eng.to_rebroadcast({P1, P2}, seqs({1, 2})).empty());
}

TEST(RecoveryEngineTest, SelfCompleteWhenCoveringUnion) {
  RecoveryEngine eng(P1, kProposed, {P1, P2});
  eng.on_exchange(exchange_for(P1, kOldRing, seqs({1})));
  eng.on_exchange(exchange_for(P2, kOldRing, seqs({2})));
  EXPECT_FALSE(eng.self_complete({P1, P2}, seqs({1})));
  EXPECT_TRUE(eng.self_complete({P1, P2}, seqs({1, 2})));
}

TEST(RecoveryEngineTest, AllCompleteNeedsEveryMember) {
  RecoveryEngine eng(P1, kProposed, {P1, P2});
  eng.on_ack(ack_for(P1, {}, true));
  EXPECT_FALSE(eng.all_complete());
  eng.on_ack(ack_for(P2, {}, false));
  EXPECT_FALSE(eng.all_complete());
  eng.on_ack(ack_for(P2, {}, true));
  EXPECT_TRUE(eng.all_complete());
}

TEST(RecoveryEngineTest, GlobalSafeUptoIsMax) {
  RecoveryEngine eng(P1, kProposed, {P1, P2});
  eng.on_exchange(exchange_for(P1, kOldRing, {}, 3));
  eng.on_exchange(exchange_for(P2, kOldRing, {}, 7));
  EXPECT_EQ(eng.global_safe_upto({P1, P2}), 7u);
}

TEST(RecoveryEngineTest, MergedObligationsIncludeTransAndTheirSets) {
  RecoveryEngine eng(P1, kProposed, {P1, P2});
  eng.on_exchange(exchange_for(P1, kOldRing, {}, 0, 0, {ProcessId{7}}));
  eng.on_exchange(exchange_for(P2, kOldRing, {}, 0, 0, {ProcessId{8}}));
  EXPECT_EQ(eng.merged_obligations({P1, P2}),
            (std::vector<ProcessId>{P1, P2, ProcessId{7}, ProcessId{8}}));
}

// --- plan_step6 -------------------------------------------------------------

TEST(PlanStep6Test, ContiguousAgreedPrefixDeliveredInRegular) {
  MsgStore store;
  store.add(1, P1);
  store.add(2, P2);
  store.add(3, P1);
  SeqSet uni = seqs({1, 2, 3});
  auto plan = plan_step6({P1, P2}, uni, 0, {P1, P2}, store.lookup(), 0, {});
  EXPECT_EQ(plan.regular_seqs, (std::vector<SeqNum>{1, 2, 3}));
  EXPECT_EQ(plan.cutoff, 3u);
  EXPECT_TRUE(plan.trans_seqs.empty());
  EXPECT_TRUE(plan.discarded.empty());
}

TEST(PlanStep6Test, AlreadyDeliveredPrefixSkipped) {
  MsgStore store;
  store.add(1, P1);
  store.add(2, P2);
  store.add(3, P1);
  auto plan = plan_step6({P1, P2}, seqs({1, 2, 3}), 0, {P1, P2}, store.lookup(), 2, {});
  EXPECT_EQ(plan.regular_seqs, std::vector<SeqNum>{3});
}

TEST(PlanStep6Test, UnsafeSafeMessageMovesToTransitional) {
  MsgStore store;
  store.add(1, P1);
  store.add(2, P2, Service::Safe);  // safe-requested, never acknowledged by all
  store.add(3, P1);
  auto plan = plan_step6({P1, P2}, seqs({1, 2, 3}), /*safe_upto=*/1, {P1, P2},
                         store.lookup(), 0, {});
  EXPECT_EQ(plan.cutoff, 1u);
  EXPECT_EQ(plan.regular_seqs, std::vector<SeqNum>{1});
  EXPECT_EQ(plan.trans_seqs, (std::vector<SeqNum>{2, 3}));
}

TEST(PlanStep6Test, SafeWithinHorizonStaysRegular) {
  MsgStore store;
  store.add(1, P1, Service::Safe);
  store.add(2, P2, Service::Safe);
  auto plan = plan_step6({P1, P2}, seqs({1, 2}), /*safe_upto=*/2, {P1, P2},
                         store.lookup(), 0, {});
  EXPECT_EQ(plan.cutoff, 2u);
  EXPECT_EQ(plan.regular_seqs, (std::vector<SeqNum>{1, 2}));
}

TEST(PlanStep6Test, HoleStopsRegularDelivery) {
  MsgStore store;
  store.add(1, P1);
  store.add(3, P2);
  auto plan = plan_step6({P1, P2}, seqs({1, 3}), 0, {P1, P2}, store.lookup(), 0, {});
  EXPECT_EQ(plan.cutoff, 1u);
  EXPECT_EQ(plan.regular_seqs, std::vector<SeqNum>{1});
  // Seq 3's sender P2 is obligated (a transitional member), so delivered.
  EXPECT_EQ(plan.trans_seqs, std::vector<SeqNum>{3});
}

TEST(PlanStep6Test, PastHoleNonObligatedDiscarded) {
  MsgStore store;
  store.add(1, P1);
  store.add(3, ProcessId{9});  // sender not in the transitional configuration
  auto plan = plan_step6({P1, P2}, seqs({1, 3}), 0, {P1, P2}, store.lookup(), 0, {});
  EXPECT_EQ(plan.trans_seqs, std::vector<SeqNum>{});
  EXPECT_EQ(plan.discarded, std::vector<SeqNum>{3});
}

TEST(PlanStep6Test, ObligatedSenderDeliveredPastHole) {
  MsgStore store;
  store.add(1, P1);
  store.add(3, ProcessId{9});
  auto plan = plan_step6({P1, P2}, seqs({1, 3}), 0, {P1, P2, ProcessId{9}},
                         store.lookup(), 0, {});
  EXPECT_EQ(plan.trans_seqs, std::vector<SeqNum>{3});
  EXPECT_TRUE(plan.discarded.empty());
}

TEST(PlanStep6Test, ContiguityResumesDontHappenAfterHole) {
  MsgStore store;
  store.add(1, P1);
  store.add(3, ProcessId{9});
  store.add(4, P2);
  // 4 is contiguous with 3 but 2 is missing: 4 only delivered because its
  // sender P2 is obligated; a non-obligated sender at 4 would be dropped.
  auto plan = plan_step6({P1, P2}, seqs({1, 3, 4}), 0, {P1, P2}, store.lookup(), 0, {});
  EXPECT_EQ(plan.trans_seqs, std::vector<SeqNum>{4});
  EXPECT_EQ(plan.discarded, std::vector<SeqNum>{3});
}

TEST(PlanStep6Test, TransDeliveriesInSeqOrder) {
  MsgStore store;
  store.add(1, P1, Service::Safe);
  store.add(2, P2);
  store.add(3, P1);
  auto plan = plan_step6({P1, P2}, seqs({1, 2, 3}), 0, {P1, P2}, store.lookup(), 0, {});
  EXPECT_EQ(plan.cutoff, 0u);
  EXPECT_TRUE(plan.regular_seqs.empty());
  EXPECT_EQ(plan.trans_seqs, (std::vector<SeqNum>{1, 2, 3}));
}

TEST(PlanStep6Test, DeliveredExtraNotRedelivered) {
  MsgStore store;
  store.add(1, P1);
  store.add(2, P2);
  store.add(3, P1);
  SeqSet extra;
  extra.insert(2);
  auto plan = plan_step6({P1, P2}, seqs({1, 2, 3}), 0, {P1, P2}, store.lookup(), 1, extra);
  EXPECT_EQ(plan.regular_seqs, std::vector<SeqNum>{3});
  EXPECT_EQ(plan.cutoff, 3u);
}

TEST(PlanStep6Test, EmptyUnionYieldsEmptyPlan) {
  MsgStore store;
  auto plan = plan_step6({P1}, {}, 0, {P1}, store.lookup(), 0, {});
  EXPECT_EQ(plan.cutoff, 0u);
  EXPECT_TRUE(plan.regular_seqs.empty());
  EXPECT_TRUE(plan.trans_seqs.empty());
}

}  // namespace
}  // namespace evs
