// Regression tests: a retransmitted FormRing from a superseded membership
// episode must not be adopted.
//
// Over real transports a FormRing can outlive its episode — the
// representative retransmits it until recovery completes, and a straggler
// can sit in a socket buffer across a regather. Before the fix,
// handle_form_ring in Gather state compared only the proposed membership, so
// a node that had already installed ring R, delivered in it, lost the token
// and regathered would adopt the stale proposal for R and re-run recovery
// for it — and, if the install completed, emit a configuration change whose
// ord does not advance past the deliveries already made in R (the
// EVS_ASSERT in emit_conf_change; the live UDP suite reproduced exactly
// that abort). The guard is that a current-episode proposal is always
// numbered past every member's advertised ring_seq_, so any FormRing at or
// below it is provably stale.
#include <gtest/gtest.h>

#include <vector>

#include "evs/node.hpp"
#include "testkit/cluster.hpp"
#include "totem/messages.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

TEST(StaleFormRingTest, ReplayedProposalForInstalledRingIsNotAdoptedInGather) {
  Cluster cluster(Cluster::Options{.num_processes = 2});
  ASSERT_TRUE(cluster.await_stable());
  const RingId old_ring = cluster.node(0u).config().id.ring;
  const std::vector<ProcessId> members = cluster.node(0u).config().members;
  ASSERT_EQ(members.size(), 2u);

  // Deliver something in the installed ring so last_ord_ sits inside R's ord
  // block — the precondition for the pre-fix ord regression.
  ASSERT_TRUE(cluster.node(0u).send(Service::Agreed, {1}).ok());
  ASSERT_TRUE(cluster.await_quiesce());

  // Crash the peer. The token dies, node 0 regathers, and until the gather
  // fail timeout removes the silent peer the proposed membership is still
  // the full old ring — exactly the window in which a replayed FormRing's
  // membership matches.
  ASSERT_TRUE(cluster.crash(cluster.pid(1)).ok());
  ASSERT_TRUE(cluster.await(
      [&] { return cluster.node(0u).state() == EvsNode::State::Gather; },
      1'000'000))
      << "node 0 never re-entered gather";

  // Replay the stale proposal for the ring node 0 already installed and
  // delivered in, exactly as a retransmission from the dead peer's socket
  // buffer would arrive (a node ignores FormRings whose packet source is
  // itself, so the replay must come from the peer).
  const FormRingMsg stale{old_ring.rep, old_ring, members};
  const auto stale_frame = wire::seal_frame(encode_msg(stale)).value();
  cluster.network().unicast(cluster.pid(1), cluster.pid(0), stale_frame);

  // Pre-fix node 0 adopts the proposal and moves to Recovery for the old
  // ring. Post-fix it must still be gathering once the frame has landed.
  cluster.run_for(2'000);
  EXPECT_EQ(cluster.node(0u).state(), EvsNode::State::Gather)
      << "stale FormRing was adopted";

  // The episode must still terminate correctly: node 0 forms a singleton
  // ring numbered past the old one, the recovered peer re-merges, and the
  // whole run stays spec-conformant.
  ASSERT_TRUE(cluster.await_stable()) << "surviving node never stabilized";
  EXPECT_GT(cluster.node(0u).config().id.ring.seq, old_ring.seq);
  ASSERT_TRUE(cluster.recover(cluster.pid(1)).ok());
  ASSERT_TRUE(cluster.await_stable()) << "recovered peer never re-merged";
  EXPECT_EQ(cluster.node(0u).config().id.ring, cluster.node(1u).config().id.ring);
  ASSERT_TRUE(cluster.node(0u).send(Service::Safe, {2}).ok());
  ASSERT_TRUE(cluster.await_quiesce());
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(StaleFormRingTest, StaleProposalDuringRecoveryIsIgnored) {
  Cluster cluster(Cluster::Options{.num_processes = 2});
  ASSERT_TRUE(cluster.await_stable());
  const RingId old_ring = cluster.node(0u).config().id.ring;
  const std::vector<ProcessId> members = cluster.node(0u).config().members;

  // Drive node 0 through gather into its singleton reform, then replay the
  // old proposal. Whatever state the replay lands in (Recovery while forming
  // the singleton, or Operational after), a proposal numbered at or below
  // the ring already left behind must not knock the node off course or
  // re-install the old ring.
  ASSERT_TRUE(cluster.crash(cluster.pid(1)).ok());
  ASSERT_TRUE(cluster.await(
      [&] {
        return cluster.node(0u).state() == EvsNode::State::Recovery ||
               (cluster.node(0u).state() == EvsNode::State::Operational &&
                cluster.node(0u).config().members.size() == 1);
      },
      1'000'000))
      << "node 0 never started reforming";

  const FormRingMsg stale{old_ring.rep, old_ring, members};
  const auto stale_frame = wire::seal_frame(encode_msg(stale)).value();
  cluster.network().unicast(cluster.pid(1), cluster.pid(0), stale_frame);

  ASSERT_TRUE(cluster.await_stable());
  EXPECT_GT(cluster.node(0u).config().id.ring.seq, old_ring.seq);
  ASSERT_TRUE(cluster.recover(cluster.pid(1)).ok());
  ASSERT_TRUE(cluster.await_stable());
  ASSERT_TRUE(cluster.await_quiesce());
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
