// Live datagram-batching tests (`ctest -L live-batch`): the zero-copy batch
// hot path — send_batch admission, frame packing, token piggyback, and
// sendmmsg/recvmmsg syscall batching — over real loopback UDP sockets.
//
// Like every live test these are wall-clock and non-deterministic, so the
// assertions are convergence properties plus the full specification check
// over whatever trace actually happened, and everything skips cleanly when
// the environment provides no sockets. The suite also runs under the
// sanitizer preset (live-batch-asan), which is what proves the view spans
// handed across the batch path never outlive their datagrams.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "testkit/live_cluster.hpp"

namespace evs {
namespace {

#define SKIP_IF_NO_SOCKETS(st)                                                 \
  do {                                                                         \
    if (!(st).ok()) GTEST_SKIP() << "sockets unavailable: " << (st).message(); \
  } while (0)

std::vector<std::vector<std::uint8_t>> burst(int n, std::size_t bytes,
                                             std::uint8_t tag) {
  std::vector<std::vector<std::uint8_t>> out;
  for (int i = 0; i < n; ++i) {
    out.emplace_back(bytes, static_cast<std::uint8_t>(tag + i));
  }
  return out;
}

TEST(UdpBatchLiveTest, SendBatchDeliversEverywhereOverRealSockets) {
  LiveCluster cluster(LiveCluster::Options{.num_processes = 3});
  SKIP_IF_NO_SOCKETS(cluster.open());
  ASSERT_TRUE(cluster.await_stable()) << "ring never formed over UDP";

  std::vector<MsgId> sent;
  for (std::size_t p = 0; p < 3; ++p) {
    auto r = cluster.send_batch(p, Service::Agreed,
                                burst(40, 64, static_cast<std::uint8_t>(p)));
    ASSERT_TRUE(r.ok()) << r.status().message();
    sent.insert(sent.end(), r->begin(), r->end());
  }
  ASSERT_TRUE(cluster.await(
      [&] { return cluster.total_delivered() >= sent.size() * 3; }, 20'000'000));
  ASSERT_TRUE(cluster.await_quiesce());
  cluster.stop();

  for (std::size_t p = 0; p < 3; ++p) {
    for (const MsgId& m : sent) {
      EXPECT_TRUE(cluster.sink(p).delivered(m)) << "process " << p;
    }
  }
  // The bursts actually took the packed path: multi-frame broadcast
  // datagrams and data frames re-carried with the token. (The sender-side
  // carry counter, not piggybacked_msgs: on fast loopback every broadcast
  // tends to win the race with the token, so receiver ADOPTIONS are
  // legitimately zero here.)
  std::uint64_t packed = 0, carried = 0;
  for (std::size_t p = 0; p < 3; ++p) {
    packed += cluster.node(p).stats().datagrams_packed;
    carried += cluster.node(p).stats().piggyback_carried;
  }
  EXPECT_GT(packed, 0u);
  EXPECT_GT(carried, 0u);
  EXPECT_EQ(cluster.check_report(), "") << cluster.merged_trace().dump();
}

TEST(UdpBatchLiveTest, CoalescedFlushSurvivesSustainedAsyncLoad) {
  // batch_flush_us > 0 parks outgoing datagrams briefly so a token visit's
  // fan-out leaves in one sendmmsg burst. Under sustained async bursts the
  // ring must stay live (no artificial token stalls) and conformant.
  LiveCluster::Options opts{.num_processes = 3};
  opts.transport.batch_flush_us = 200;
  LiveCluster cluster(opts);
  SKIP_IF_NO_SOCKETS(cluster.open());
  ASSERT_TRUE(cluster.await_stable()) << "ring never formed over UDP";

  constexpr int kRounds = 25;
  constexpr int kBurst = 16;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t p = 0; p < 3; ++p) {
      cluster.send_async_batch(p, Service::Agreed,
                               burst(kBurst, 32, static_cast<std::uint8_t>(round)));
    }
  }
  // Backpressure may shed some of the async load; what was admitted must
  // deliver everywhere. Quiesce first, then account exactly.
  ASSERT_TRUE(cluster.await_quiesce(30'000'000));
  std::uint64_t admitted = 0;
  for (std::size_t p = 0; p < 3; ++p) {
    admitted += cluster.sample(p).sent;
  }
  ASSERT_TRUE(cluster.await(
      [&] { return cluster.total_delivered() >= admitted * 3; }, 20'000'000));
  cluster.stop();

  EXPECT_GT(admitted, 0u);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(cluster.sink(p).deliveries.size(), admitted) << "process " << p;
  }
  EXPECT_EQ(cluster.check_report(), "") << cluster.merged_trace().dump();
}

}  // namespace
}  // namespace evs
