// Sharded KV over real loopback UDP (testkit::KvLiveCluster): writes fan
// into per-shard rings over real sockets, every replica converges on the
// identical store, in-primary reads return acked values, and each shard's
// live trace passes the full specification checker. Wall-clock like the
// rest of the live label; skips without sockets.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "testkit/kv_live.hpp"

namespace evs {
namespace {

#define SKIP_IF_NO_SOCKETS(st)                                                 \
  do {                                                                         \
    if (!(st).ok()) GTEST_SKIP() << "sockets unavailable: " << (st).message(); \
  } while (0)

TEST(KvLiveTest, ShardedWritesConvergeOverRealSockets) {
  KvLiveCluster::Options opts;
  opts.num_processes = 3;
  opts.router.num_shards = 2;
  opts.router.replication = 3;
  KvLiveCluster kc(opts);
  SKIP_IF_NO_SOCKETS(kc.open());
  ASSERT_TRUE(kc.await_stable()) << "shard rings never formed over UDP";

  // Writes submitted at different processes, routed to whichever shard owns
  // the key; reads answered by the submitting replica once applied.
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 12; ++i) {
    const std::string k = "live-key-" + std::to_string(i);
    const std::string v = "v" + std::to_string(i);
    ASSERT_TRUE(kc.put(i % kc.size(), k, v).ok()) << k;
    expected[k] = v;
  }
  ASSERT_TRUE(kc.await_quiesce()) << "shard rings never quiesced";

  for (std::size_t p = 0; p < kc.size(); ++p) {
    for (const auto& [k, v] : expected) {
      auto got = kc.get(p, k);
      ASSERT_TRUE(got.ok()) << "process " << p << " key " << k;
      ASSERT_TRUE(got->has_value()) << "process " << p << " key " << k;
      EXPECT_EQ(**got, v);
    }
  }

  kc.stop();
  for (shard::ShardId s = 0; s < kc.num_shards(); ++s) {
    EXPECT_TRUE(kc.replicas_agree(s)) << "shard " << s;
  }
  EXPECT_EQ(kc.check_report(), "");

  const auto agg = kc.aggregate_metrics();
  EXPECT_EQ(agg.counter_value("kv.puts"), expected.size());
  EXPECT_EQ(agg.counter_value("kv.applied"), expected.size() * 3u);
  EXPECT_EQ(agg.counter_value("kv.rejected_decode"), 0u);
}

}  // namespace
}  // namespace evs
