// Live-transport tests: the EVS protocol stack over real loopback UDP
// sockets (testkit::LiveCluster), including the paper's Fig. 6
// partition/re-merge scenario validated by the full specification checker.
//
// These are the only tests in the tree that are not deterministic: packets
// cross the kernel, timers are wall-clock, and thread scheduling is real.
// The assertions are therefore convergence properties (stability within a
// bound, zero spec violations over whatever trace actually happened), not
// exact event sequences. They carry the `live` ctest label with a bounded
// timeout, and skip cleanly when the environment provides no sockets.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "testkit/live_cluster.hpp"

namespace evs {
namespace {

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag}; }

#define SKIP_IF_NO_SOCKETS(st)                                                 \
  do {                                                                         \
    if (!(st).ok()) GTEST_SKIP() << "sockets unavailable: " << (st).message(); \
  } while (0)

TEST(UdpLiveTest, ThreeNodesConvergeAndDeliverOverRealSockets) {
  LiveCluster cluster(LiveCluster::Options{.num_processes = 3});
  SKIP_IF_NO_SOCKETS(cluster.open());
  ASSERT_TRUE(cluster.await_stable()) << "ring never formed over UDP";

  std::vector<MsgId> sent;
  for (std::size_t i = 0; i < 3; ++i) {
    auto r = cluster.send(i, Service::Safe, payload(static_cast<std::uint8_t>(i)));
    ASSERT_TRUE(r.ok()) << r.status().message();
    sent.push_back(*r);
  }
  // 3 messages x 3 receivers; atomic counters make this cheap to poll.
  ASSERT_TRUE(cluster.await([&] { return cluster.total_delivered() >= 9; },
                            10'000'000));
  ASSERT_TRUE(cluster.await_quiesce());
  cluster.stop();

  for (std::size_t p = 0; p < 3; ++p) {
    for (const MsgId& m : sent) {
      EXPECT_TRUE(cluster.sink(p).delivered(m)) << "process " << p;
    }
  }
  EXPECT_EQ(cluster.check_report(), "") << cluster.merged_trace().dump();
}

TEST(UdpLiveTest, Fig6PartitionAndRemergeOverUdp) {
  // The paper's Figure 6 scenario on real sockets: a 5-process ring
  // partitions into {q,r,s} | {t,u} via port-level drop filters, both
  // components keep operating, and the re-merged ring passes the complete
  // Specification 1-7 check over the live trace.
  LiveCluster cluster(LiveCluster::Options{.num_processes = 5});
  SKIP_IF_NO_SOCKETS(cluster.open());
  ASSERT_TRUE(cluster.await_stable()) << "initial 5-ring never formed";

  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.send(i, Service::Agreed, payload(1)).ok());
  }

  cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(cluster.await_stable()) << "components never re-formed";
  {
    const auto majority = cluster.sample(0);
    const auto minority = cluster.sample(3);
    EXPECT_EQ(majority.config.members.size(), 3u);
    EXPECT_EQ(minority.config.members.size(), 2u);
  }

  // Both sides make progress — the property EVS exists for.
  std::vector<MsgId> majority_msgs, minority_msgs;
  for (int i = 0; i < 10; ++i) {
    auto a = cluster.send(static_cast<std::size_t>(i % 3), Service::Safe, payload(2));
    ASSERT_TRUE(a.ok());
    majority_msgs.push_back(*a);
    auto b = cluster.send(3 + static_cast<std::size_t>(i % 2), Service::Safe, payload(3));
    ASSERT_TRUE(b.ok());
    minority_msgs.push_back(*b);
  }
  ASSERT_TRUE(cluster.await_quiesce());

  cluster.heal();
  ASSERT_TRUE(cluster.await_stable()) << "merge never completed over UDP";
  {
    const auto merged = cluster.sample(0);
    ASSERT_EQ(merged.config.members.size(), 5u);
    EXPECT_EQ(merged.config.id, cluster.sample(4).config.id);
  }

  // Post-merge traffic reaches everyone.
  auto after = cluster.send(1, Service::Safe, payload(4));
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(cluster.await_quiesce());
  cluster.stop();

  for (std::size_t p = 0; p < 5; ++p) {
    EXPECT_TRUE(cluster.sink(p).delivered(*after)) << "process " << p;
  }
  // Partition-era traffic stayed inside its component.
  for (const MsgId& m : majority_msgs) {
    EXPECT_TRUE(cluster.sink(1).delivered(m));
    EXPECT_FALSE(cluster.sink(4).delivered(m));
  }
  for (const MsgId& m : minority_msgs) {
    EXPECT_TRUE(cluster.sink(4).delivered(m));
    EXPECT_FALSE(cluster.sink(1).delivered(m));
  }
  // Transitional configurations were delivered where the membership shrank.
  bool saw_transitional = false;
  for (std::size_t p = 0; p < 5; ++p) {
    for (const Configuration& c : cluster.sink(p).configs) {
      saw_transitional = saw_transitional || c.id.transitional;
    }
  }
  EXPECT_TRUE(saw_transitional);

  // The acceptance bar: the full spec checker over the live trace.
  EXPECT_EQ(cluster.check_report(), "") << cluster.merged_trace().dump();
}

TEST(UdpLiveTest, BackpressureSurfacesThroughErrcOnLiveTransport) {
  // Outrun the token with a tiny send queue: the live path must surface
  // Errc::backpressure exactly like the simulator, and the ring must drain
  // and deliver everything it accepted.
  LiveCluster::Options opts;
  opts.num_processes = 3;
  opts.node.max_pending_sends = 8;
  LiveCluster cluster(opts);
  SKIP_IF_NO_SOCKETS(cluster.open());
  ASSERT_TRUE(cluster.await_stable());

  // Burst inside one posted closure: the loop thread cannot interleave
  // token visits, so the queue deterministically fills to its cap of 8 and
  // the rest must reject with Errc::backpressure.
  std::size_t accepted = 0, rejected = 0;
  bool wrong_code = false;
  std::vector<MsgId> ids;
  cluster.call(0, [&] {
    EvsNode& n = cluster.node(0);
    for (int i = 0; i < 200; ++i) {
      auto r = n.send(Service::Agreed, payload(0));
      if (r.ok()) {
        ++accepted;
        ids.push_back(*r);
      } else {
        wrong_code = wrong_code || r.code() != Errc::backpressure;
        ++rejected;
      }
    }
  });
  EXPECT_FALSE(wrong_code);
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(rejected, 192u);
  ASSERT_TRUE(cluster.await_quiesce());
  cluster.stop();
  for (const MsgId& m : ids) {
    EXPECT_TRUE(cluster.sink(1).delivered(m)) << "accepted send lost";
  }
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(UdpLiveTest, RealPacketLossIsAbsorbedByRetransmission) {
  // Shrink the kernel receive buffers so a traffic burst genuinely drops
  // datagrams inside the kernel; the token's rtr machinery must recover
  // every ordered message anyway. (If the kernel clamps the buffer above
  // the pressure point and nothing drops, the test still validates the
  // burst end-to-end.)
  LiveCluster::Options opts;
  opts.num_processes = 3;
  opts.transport.so_rcvbuf = 4096;
  // Generous wall-clock timers: data bursts must overflow the shrunken
  // kernel buffers (that is the point), but a dropped *token* retried 20ms
  // later lands in a long-drained buffer, so the membership holds and loss
  // recovery happens purely through the rtr machinery.
  opts.node.token_loss_timeout_us = 200'000;
  opts.node.token_retransmit_interval_us = 20'000;
  opts.node.beacon_interval_us = 50'000;
  opts.node.gather_fail_timeout_us = 150'000;
  opts.node.consensus_wait_timeout_us = 200'000;
  opts.node.recovery_timeout_us = 500'000;
  LiveCluster cluster(opts);
  SKIP_IF_NO_SOCKETS(cluster.open());
  ASSERT_TRUE(cluster.await_stable());

  std::size_t accepted = 0;
  for (int i = 0; i < 300; ++i) {
    auto r = cluster.send(static_cast<std::size_t>(i % 3), Service::Agreed,
                          std::vector<std::uint8_t>(512, 0x5C));
    if (r.ok()) ++accepted;
  }
  ASSERT_GT(accepted, 0u);
  ASSERT_TRUE(cluster.await_quiesce(30'000'000));
  cluster.stop();

  // If the membership never wavered (the overwhelmingly common case with
  // the timers above), every accepted message reached every member despite
  // kernel-level loss. If a rare churn did occur, EVS only promises
  // delivery within configurations — the spec check below still applies.
  bool churned = false;
  for (std::size_t p = 0; p < 3; ++p) {
    // One regular config delivered at formation; any further config event
    // means the ring wavered under the storm.
    std::size_t regulars = 0;
    for (const Configuration& c : cluster.sink(p).configs) {
      regulars += c.id.transitional ? 0 : 1;
    }
    churned = churned || regulars > 1;
  }
  const std::uint64_t expected = static_cast<std::uint64_t>(accepted) * 3;
  std::uint64_t delivered_payloads = 0;
  for (std::size_t p = 0; p < 3; ++p) {
    for (const auto& d : cluster.sink(p).deliveries) {
      if (d.payload.size() == 512) ++delivered_payloads;
    }
  }
  if (!churned) {
    EXPECT_EQ(delivered_payloads, expected);
  } else {
    EXPECT_GT(delivered_payloads, 0u);
  }
  EXPECT_EQ(cluster.check_report(), "") << cluster.merged_trace().dump();
}

}  // namespace
}  // namespace evs
