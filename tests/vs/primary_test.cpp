#include "vs/primary.hpp"

#include <gtest/gtest.h>

namespace evs {
namespace {

std::vector<ProcessId> pids(std::initializer_list<std::uint32_t> values) {
  std::vector<ProcessId> out;
  for (auto v : values) out.push_back(ProcessId{v});
  return out;
}

Configuration config_of(std::initializer_list<std::uint32_t> values) {
  Configuration c;
  c.id = ConfigId::regular(RingId{1, ProcessId{*values.begin()}});
  c.members = pids(values);
  return c;
}

TEST(MajorityTest, StrictMajorityRequired) {
  EXPECT_TRUE(has_majority_of(pids({1, 2}), pids({1, 2, 3})));
  EXPECT_FALSE(has_majority_of(pids({1}), pids({1, 2})));  // half is not enough
  EXPECT_TRUE(has_majority_of(pids({1, 2}), pids({1, 2})));
  EXPECT_FALSE(has_majority_of(pids({4, 5}), pids({1, 2, 3})));
  EXPECT_TRUE(has_majority_of(pids({1, 2, 3, 4, 5}), pids({3, 4, 5})));
}

TEST(StaticMajorityTest, DecidesFromUniverseSize) {
  StaticMajority policy(5);
  EXPECT_TRUE(policy.is_primary(config_of({1, 2, 3})));
  EXPECT_FALSE(policy.is_primary(config_of({1, 2})));
  StaticMajority even(4);
  EXPECT_FALSE(even.is_primary(config_of({1, 2})));  // 2 of 4 is not a majority
  EXPECT_TRUE(even.is_primary(config_of({1, 2, 3})));
}

TEST(DlvStateTest, BootstrapBasisIsInitialUniverse) {
  StableStore store;
  DlvState dlv(store, pids({1, 2, 3}));
  EXPECT_EQ(dlv.basis().epoch, 0u);
  EXPECT_EQ(dlv.basis().members, pids({1, 2, 3}));
  EXPECT_TRUE(dlv.decides_primary(config_of({1, 2})));
  EXPECT_FALSE(dlv.decides_primary(config_of({3})));
}

TEST(DlvStateTest, ConfirmAdvancesBasis) {
  StableStore store;
  DlvState dlv(store, pids({1, 2, 3, 4, 5}));
  // {1,2,3} is a majority of the universe: primary epoch 1.
  dlv.begin_attempt(config_of({1, 2, 3})).value();
  ASSERT_TRUE(dlv.confirm_attempt().ok());
  EXPECT_EQ(dlv.basis().epoch, 1u);
  EXPECT_EQ(dlv.basis().members, pids({1, 2, 3}));
  // Now {1,2} is a majority of {1,2,3} even though it is a minority of the
  // universe — the availability gain of dynamic linear voting.
  EXPECT_TRUE(dlv.decides_primary(config_of({1, 2})));
  EXPECT_FALSE(dlv.decides_primary(config_of({4, 5})));
}

TEST(DlvStateTest, PendingAttemptIsConservativeBasis) {
  StableStore store;
  DlvState dlv(store, pids({1, 2, 3}));
  dlv.begin_attempt(config_of({1, 2})).value();
  // Before confirmation the attempt is already the basis: a rival config
  // holding a majority of the OLD basis {1,2,3} but not of the attempt
  // {1,2} is refused (a 2-member basis needs both members).
  EXPECT_EQ(dlv.basis().epoch, 1u);
  EXPECT_FALSE(dlv.decides_primary(config_of({3})));
  EXPECT_FALSE(dlv.decides_primary(config_of({1, 3})));
  EXPECT_TRUE(dlv.decides_primary(config_of({1, 2, 3})));
}

TEST(DlvStateTest, StateSurvivesCrash) {
  StableStore store;
  {
    DlvState dlv(store, pids({1, 2, 3, 4, 5}));
    dlv.begin_attempt(config_of({1, 2, 3})).value();
    ASSERT_TRUE(dlv.confirm_attempt().ok());
  }
  DlvState recovered(store, pids({1, 2, 3, 4, 5}));
  EXPECT_EQ(recovered.basis().epoch, 1u);
  EXPECT_EQ(recovered.basis().members, pids({1, 2, 3}));
}

TEST(DlvStateTest, PendingAttemptSurvivesCrash) {
  StableStore store;
  {
    DlvState dlv(store, pids({1, 2, 3}));
    dlv.begin_attempt(config_of({1, 2})).value();
    // Crash before confirm.
  }
  DlvState recovered(store, pids({1, 2, 3}));
  EXPECT_EQ(recovered.basis().epoch, 1u);  // conservatively assumed succeeded
  EXPECT_TRUE(recovered.attempt().has_value());
}

TEST(DlvStateTest, MergePeerAdoptsNewerEpoch) {
  StableStore store;
  DlvState dlv(store, pids({1, 2, 3}));
  EXPECT_TRUE(dlv.merge_peer(PrimaryEpoch{4, pids({2, 3})}).value());
  EXPECT_EQ(dlv.basis().epoch, 4u);
  EXPECT_EQ(dlv.basis().members, pids({2, 3}));
  EXPECT_FALSE(dlv.merge_peer(PrimaryEpoch{2, pids({1})}).value());  // older: ignored
  EXPECT_EQ(dlv.basis().epoch, 4u);
}

TEST(DlvStateTest, RivalPrimariesImpossibleFromSameBasis) {
  // Classic scenario: primary {1,2,3} (epoch 1). Partition {1,2} | {3,4,5}.
  // {1,2} is a majority of epoch 1 -> becomes epoch 2. {3,4,5} holds only
  // one member of epoch 1 -> refused, even though it is a universe majority.
  StableStore s1, s3;
  DlvState dlv1(s1, pids({1, 2, 3, 4, 5}));
  DlvState dlv3(s3, pids({1, 2, 3, 4, 5}));
  dlv1.begin_attempt(config_of({1, 2, 3})).value();
  ASSERT_TRUE(dlv1.confirm_attempt().ok());
  dlv3.begin_attempt(config_of({1, 2, 3})).value();
  ASSERT_TRUE(dlv3.confirm_attempt().ok());

  EXPECT_TRUE(dlv1.decides_primary(config_of({1, 2})));
  EXPECT_FALSE(dlv3.decides_primary(config_of({3, 4, 5})));
}

TEST(DlvStateTest, IntersectionCarriesKnowledgeForward) {
  // Epoch 1 = {1,2,3}. {1,2} advances to epoch 2. Later {2,3} forms: 3 only
  // knows epoch 1 and {2,3} IS a majority of epoch 1 — but member 2 carries
  // epoch 2 knowledge, and after merging bases {2,3} is refused (only one
  // member of {1,2}).
  StableStore s2, s3;
  DlvState dlv2(s2, pids({1, 2, 3}));
  DlvState dlv3(s3, pids({1, 2, 3}));
  dlv2.begin_attempt(config_of({1, 2, 3})).value();
  ASSERT_TRUE(dlv2.confirm_attempt().ok());
  dlv3.begin_attempt(config_of({1, 2, 3})).value();
  ASSERT_TRUE(dlv3.confirm_attempt().ok());
  dlv2.begin_attempt(config_of({1, 2})).value();
  ASSERT_TRUE(dlv2.confirm_attempt().ok());  // epoch 2 = {1,2}

  // {2,3} forms; states merge.
  dlv3.merge_peer(dlv2.basis()).value();
  EXPECT_FALSE(dlv3.decides_primary(config_of({2, 3})));
  EXPECT_FALSE(dlv2.decides_primary(config_of({2, 3})));
}

}  // namespace
}  // namespace evs
