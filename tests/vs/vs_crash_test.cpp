// Primary-component Uniqueness across crashes.
//
// The VS filter persists its DLV attempt *before* acting as primary
// (two-phase: begin_attempt is durable before the view installs, and a
// pending attempt is resolved conservatively at recovery). This sweep
// crashes a member at every stable-storage append it performs around a
// block/merge/re-decision episode — with the final write landing clean,
// torn, or corrupted — recovers it, and machine-checks the view history:
// the installed primary views must still form a single totally-ordered
// lineage (paper Section 2.2 Uniqueness), and both layers' traces must stay
// specification-conformant.
#include <gtest/gtest.h>

#include <string>

#include "storage/stable_store.hpp"
#include "testkit/vs_cluster.hpp"

namespace evs {
namespace {

constexpr std::size_t kVictim = 1;

struct VsSweepRun {
  std::string report;
  bool stabilized{false};
  std::uint64_t writes_at_arm{0};
  std::uint64_t writes_total{0};
};

/// Block/merge episode: the victim is isolated (the surviving majority
/// re-forms the primary), then the components remerge and the primary is
/// re-decided — the window containing every vs/primary.* persistence point.
VsSweepRun run_vs_scenario(std::uint64_t nth_write,
                           StableStore::TailFault variant) {
  VsSweepRun out;
  VsCluster cluster(VsCluster::Options{.num_processes = 3, .seed = 4242});
  const ProcessId victim = cluster.pid(kVictim);

  if (!cluster.await_stable(4'000'000)) return out;
  auto first = cluster.node(0u).send({1});
  if (!first.ok() || !cluster.await_quiesce(4'000'000)) return out;

  out.writes_at_arm = cluster.store_writes(victim);
  if (nth_write > 0) {
    EXPECT_TRUE(cluster.arm_crash_point(victim, nth_write, variant).ok());
  }

  // Isolate the victim: {p, r} keep the primary (2 of 3), the victim blocks.
  cluster.partition({{0, 2}, {1}});
  (void)cluster.await_stable(4'000'000);
  if (cluster.node(0u).running() && cluster.node(0u).in_primary()) {
    (void)cluster.node(0u).send({2});
  }
  cluster.run_for(100'000);

  // Remerge: per-process joins into the primary lineage, new DLV attempt.
  cluster.heal();
  (void)cluster.await_stable(6'000'000);

  if (!cluster.node(kVictim).running()) {
    EXPECT_TRUE(cluster.recover(victim).ok());
  }
  out.stabilized = cluster.await_stable(8'000'000);
  if (out.stabilized && cluster.node(0u).in_primary()) {
    (void)cluster.node(0u).send({3});
    out.stabilized = cluster.await_quiesce(8'000'000);
  }
  out.writes_total = cluster.store_writes(victim);
  out.report = cluster.check_report(out.stabilized);
  return out;
}

TEST(VsCrashSweep, BaselineEpisodeIsCleanAndHasCrashPoints) {
  const VsSweepRun base = run_vs_scenario(0, StableStore::TailFault::Clean);
  EXPECT_TRUE(base.stabilized);
  EXPECT_EQ(base.report, "");
  EXPECT_GE(base.writes_total - base.writes_at_arm, 5u);
}

TEST(VsCrashSweep, UniquenessHoldsAtEveryCrashPoint) {
  const VsSweepRun base = run_vs_scenario(0, StableStore::TailFault::Clean);
  ASSERT_TRUE(base.stabilized) << "baseline VS episode did not stabilize";
  ASSERT_EQ(base.report, "");
  const std::uint64_t points = base.writes_total - base.writes_at_arm;
  ASSERT_GE(points, 5u);

  for (StableStore::TailFault variant :
       {StableStore::TailFault::Clean, StableStore::TailFault::Torn,
        StableStore::TailFault::Corrupt}) {
    for (std::uint64_t k = 1; k <= points; ++k) {
      const VsSweepRun run = run_vs_scenario(k, variant);
      EXPECT_TRUE(run.stabilized)
          << "crash point " << k << " variant " << static_cast<int>(variant)
          << " did not restabilize";
      EXPECT_EQ(run.report, "")
          << "crash point " << k << " variant " << static_cast<int>(variant);
    }
  }
}

}  // namespace
}  // namespace evs
