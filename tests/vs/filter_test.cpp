// Virtual synchrony filter tests (Section 5): filtered runs must be legal
// VS executions — the VsChecker validates C/L properties on every trace.
#include <gtest/gtest.h>

#include "testkit/vs_cluster.hpp"

namespace evs {
namespace {

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag}; }

TEST(VsFilterTest, BootstrapInstallsOneView) {
  VsCluster cluster(VsCluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(cluster.node(i).in_primary()) << i;
    ASSERT_FALSE(cluster.sink(i).views.empty());
    EXPECT_EQ(cluster.sink(i).views.back().members.size(), 3u);
  }
  // All processes installed the same final view.
  EXPECT_EQ(cluster.sink(0u).views.back().id, cluster.sink(1u).views.back().id);
  EXPECT_EQ(cluster.sink(1u).views.back().id, cluster.sink(2u).views.back().id);
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(VsFilterTest, MessagesDeliveredInSameViewEverywhere) {
  VsCluster cluster(VsCluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  auto id = cluster.node(0u).send(payload(1));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(cluster.await_quiesce(4'000'000));
  for (std::size_t i = 0; i < 3; ++i) {
    const VsDelivery* d = cluster.sink(i).find(*id);
    ASSERT_NE(d, nullptr) << i;
    EXPECT_EQ(d->view_id, cluster.sink(0u).find(*id)->view_id);
  }
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(VsFilterTest, MinorityComponentBlocks) {
  VsCluster cluster(VsCluster::Options{.num_processes = 5});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  EXPECT_TRUE(cluster.node(0u).in_primary());
  EXPECT_TRUE(cluster.node(2u).in_primary());
  EXPECT_FALSE(cluster.node(3u).in_primary());
  EXPECT_FALSE(cluster.node(4u).in_primary());
  // Rule 2: blocked processes do not accept sends.
  EXPECT_FALSE(cluster.node(3u).send(payload(1)).ok());
  // The majority side keeps delivering.
  auto id = cluster.node(0u).send(payload(2));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(cluster.await_quiesce(4'000'000));
  EXPECT_TRUE(cluster.sink(1u).delivered(*id));
  EXPECT_FALSE(cluster.sink(3u).delivered(*id));
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(VsFilterTest, MergeSplitsIntoPerProcessJoins) {
  VsCluster cluster(VsCluster::Options{.num_processes = 5});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  const std::size_t views_before = cluster.sink(0u).views.size();
  cluster.heal();
  ASSERT_TRUE(cluster.await_stable(6'000'000));
  // Rule 3: two processes rejoin -> two single-join views at the old members.
  const auto& views = cluster.sink(0u).views;
  ASSERT_EQ(views.size(), views_before + 2);
  EXPECT_EQ(views[views_before].members.size(), 4u);
  EXPECT_EQ(views[views_before + 1].members.size(), 5u);
  EXPECT_EQ(views[views_before + 1].id, views[views_before].id + 1);
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(VsFilterTest, RejoiningProcessGetsNewIdentity) {
  VsCluster cluster(VsCluster::Options{.num_processes = 5});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  const ProcessId p3 = cluster.pid(3);
  const ProcessId old_identity = cluster.node(3u).vs_identity();
  cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  EXPECT_FALSE(cluster.node(3u).in_primary());
  cluster.heal();
  ASSERT_TRUE(cluster.await_stable(6'000'000));
  EXPECT_TRUE(cluster.node(3u).in_primary());
  // Section 5.2: merged back under a fresh identity.
  EXPECT_NE(cluster.node(p3).vs_identity(), old_identity);
  EXPECT_EQ(vs_base_pid(cluster.node(p3).vs_identity()), p3);
  EXPECT_GT(vs_incarnation_of(cluster.node(p3).vs_identity()), 0u);
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(VsFilterTest, CrashedProcessStopsAndRejoins) {
  VsCluster cluster(VsCluster::Options{.num_processes = 3});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  cluster.crash(cluster.pid(2));
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  EXPECT_TRUE(cluster.node(0u).in_primary());  // 2 of 3 is a majority
  cluster.recover(cluster.pid(2));
  ASSERT_TRUE(cluster.await_stable(6'000'000));
  EXPECT_TRUE(cluster.node(2u).in_primary());
  EXPECT_GT(vs_incarnation_of(cluster.node(2u).vs_identity()), 0u);
  auto id = cluster.node(2u).send(payload(3));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(cluster.await_quiesce(4'000'000));
  EXPECT_TRUE(cluster.sink(0u).delivered(*id));
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(VsFilterTest, NoPrimaryWhenNoMajorityAnywhere) {
  VsCluster cluster(VsCluster::Options{.num_processes = 4});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  cluster.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  // 2 of 4 is not a strict majority: everyone blocks (the known cost of the
  // primary-component model that EVS applications can avoid).
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(cluster.node(i).in_primary()) << i;
  }
  cluster.heal();
  ASSERT_TRUE(cluster.await_stable(6'000'000));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(cluster.node(i).in_primary()) << i;
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(VsFilterTest, DlvKeepsMinorityOfUniversePrimary) {
  VsCluster::Options opts;
  opts.num_processes = 5;
  opts.policy = VsNode::Policy::DynamicLinearVoting;
  VsCluster cluster(opts);
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  // First shrink to {0,1,2} (majority of 5).
  cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  ASSERT_TRUE(cluster.node(0u).in_primary());
  ASSERT_TRUE(cluster.await_quiesce(4'000'000));
  // Then shrink to {0,1}: a minority of the universe but a majority of the
  // previous primary {0,1,2} — still primary under DLV, never under static.
  cluster.partition({{0, 1}, {2}, {3, 4}});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  EXPECT_TRUE(cluster.node(0u).in_primary());
  EXPECT_TRUE(cluster.node(1u).in_primary());
  EXPECT_FALSE(cluster.node(2u).in_primary());
  EXPECT_FALSE(cluster.node(3u).in_primary());
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(VsFilterTest, DlvRefusesRivalUniverseMajority) {
  VsCluster::Options opts;
  opts.num_processes = 5;
  opts.policy = VsNode::Policy::DynamicLinearVoting;
  VsCluster cluster(opts);
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  ASSERT_TRUE(cluster.node(0u).in_primary());  // epoch advanced to {0,1,2}
  cluster.partition({{0, 1}, {2, 3, 4}});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  // {2,3,4} is a universe majority but holds only one member of the last
  // primary {0,1,2}: member 2 carries that knowledge, so the component
  // blocks while {0,1} continues.
  EXPECT_TRUE(cluster.node(0u).in_primary());
  EXPECT_TRUE(cluster.node(1u).in_primary());
  EXPECT_FALSE(cluster.node(2u).in_primary());
  EXPECT_FALSE(cluster.node(3u).in_primary());
  EXPECT_FALSE(cluster.node(4u).in_primary());
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(VsFilterTest, DlvLockoutRecoversWhenLineageReunites) {
  VsCluster::Options opts;
  opts.num_processes = 5;
  opts.policy = VsNode::Policy::DynamicLinearVoting;
  VsCluster cluster(opts);
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  cluster.partition({{0, 1}, {2}, {3, 4}});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  ASSERT_TRUE(cluster.node(0u).in_primary());  // lineage is now {0,1}
  // Separate the lineage: NOBODY can be primary (not even a universe
  // majority), the DLV lock-out.
  cluster.partition({{0, 2, 3, 4}, {1}});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(cluster.node(i).in_primary()) << i;
  }
  // Reuniting the lineage members restores the primary.
  cluster.heal();
  ASSERT_TRUE(cluster.await_stable(6'000'000));
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(cluster.node(i).in_primary()) << i;
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(VsFilterTest, LossyNetworkStaysLegal) {
  VsCluster::Options opts;
  opts.num_processes = 4;
  opts.seed = 77;
  opts.net.loss_probability = 0.02;
  VsCluster cluster(opts);
  ASSERT_TRUE(cluster.await_stable(10'000'000));
  for (int i = 0; i < 30; ++i) {
    (void)cluster.node(static_cast<std::size_t>(i % 4)).send({1});
  }
  cluster.partition({{0, 1, 2}, {3}});
  cluster.run_for(150'000);
  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(60'000'000));
  EXPECT_EQ(cluster.check_report(), "");
}

TEST(VsFilterTest, MessagesAcrossPartitionCycleStayLegal) {
  VsCluster cluster(VsCluster::Options{.num_processes = 5});
  ASSERT_TRUE(cluster.await_stable(4'000'000));
  for (int i = 0; i < 5; ++i) cluster.node(0u).send(payload(0));
  cluster.run_for(800);
  cluster.partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(cluster.await_quiesce(6'000'000));
  for (int i = 0; i < 5; ++i) cluster.node(1u).send(payload(1));
  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(8'000'000));
  for (int i = 0; i < 5; ++i) cluster.node(3u).send(payload(2));
  ASSERT_TRUE(cluster.await_quiesce(6'000'000));
  EXPECT_EQ(cluster.check_report(), "");
}

}  // namespace
}  // namespace evs
