// Targeted state-corruption regressions (run with `ctest -L corrupt`): one
// deterministic scenario per CorruptionKind, pinning down the defense each
// class is supposed to hit — ring-seq repair, decode-time plausibility
// rejection + fail-stop, exchange normalization, the state_consistent()
// guards — per DESIGN.md "State-corruption fault model". The randomized
// 10k-trial sweep lives in corrupt_sweep_test.cpp; these are the shrunk,
// named witnesses.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "testkit/cluster.hpp"
#include "testkit/corrupt.hpp"

namespace evs {
namespace {

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag}; }

Cluster::Options corrupt_options(std::size_t n, std::uint64_t seed) {
  Cluster::Options o;
  o.num_processes = n;
  o.seed = seed;
  o.watchdog_window_us = 2'000'000;
  return o;
}

std::uint64_t total_state_fail_stops(Cluster& c) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < c.size(); ++i) total += c.node(i).stats().state_fail_stops;
  return total;
}

// A ring_seq_ that regressed below the installed ring's seq would, at the
// next gather, propose a ring ordered *before* the current one and abort on
// the configuration-change order regression. The defense re-derives the
// counter from the installed ring id at every gather entry (and counts the
// repair), so the victim reconfigures normally. This is the bugfix
// regression test: before repair_ring_seq() the scenario below died on the
// emit_conf_change ord assertion.
TEST(StateCorruptionTest, RingSeqRegressionIsRepairedInPlace) {
  Cluster cluster(corrupt_options(3, 31));
  ASSERT_TRUE(cluster.await_stable(2'000'000));

  EvsNode& victim = cluster.node(0u);
  RingSeq& seq = NodeIntrospect::ring_seq(victim);
  ASSERT_GE(seq, 2u);
  seq = 1;  // far below the installed ring's seq

  // Force the victim through a gather: alone, then merged back.
  cluster.partition({{0}, {1, 2}});
  ASSERT_TRUE(cluster.await_stable(4'000'000)) << cluster.liveness_report();
  EXPECT_TRUE(victim.running());
  EXPECT_GE(victim.stats().ring_seq_repairs, 1u);

  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(6'000'000)) << cluster.liveness_report();
  EXPECT_EQ(cluster.node(0u).config().members.size(), 3u);
  EXPECT_EQ(cluster.check_report(), "");
}

// A ring_seq_ thrown to ~UINT64_MAX is past the kMaxRingSeq plausibility
// ceiling: the victim must fail-stop at its next proposal instead of
// installing a ring the rest of the system would reject (and instead of
// silently wrapping to 0, which would regress the total order). Stable
// storage still holds the last legitimately persisted counter, so recovery
// rejoins cleanly.
TEST(StateCorruptionTest, RingSeqWraparoundFailStopsThenRecovers) {
  Cluster cluster(corrupt_options(3, 32));
  ASSERT_TRUE(cluster.await_stable(2'000'000));

  EvsNode& victim = cluster.node(0u);
  NodeIntrospect::ring_seq(victim) = std::numeric_limits<RingSeq>::max() - 1;

  cluster.partition({{0}, {1, 2}});
  ASSERT_TRUE(cluster.await([&] { return !cluster.node(0u).running(); }, 4'000'000))
      << cluster.liveness_report();
  EXPECT_GE(cluster.node(0u).stats().state_fail_stops, 1u);
  ASSERT_TRUE(cluster.await_stable(4'000'000)) << cluster.liveness_report();

  cluster.heal();
  ASSERT_TRUE(cluster.recover(cluster.pid(0)).ok());
  ASSERT_TRUE(cluster.await_quiesce(6'000'000)) << cluster.liveness_report();
  EXPECT_EQ(cluster.node(0u).config().members.size(), 3u);
  EXPECT_EQ(cluster.check_report(), "");
}

// max_ring_seq_seen_ poisoned past the bound mid-gather: the victim's joins
// advertise an implausible ring seq, so peers reject them at decode time and
// reconfigure around the victim; the victim itself fail-stops when its own
// proposal would cross kMaxRingSeq. Either way it leaves the system, and
// rejoins with sane state after recovery.
TEST(StateCorruptionTest, StaleMaxRingSeqGetsVictimEjected) {
  Cluster cluster(corrupt_options(3, 33));
  ASSERT_TRUE(cluster.await_stable(2'000'000));

  cluster.partition({{0, 1}, {2}});
  ASSERT_TRUE(cluster.await(
      [&] { return cluster.node(0u).state() == EvsNode::State::Gather; }, 2'000'000))
      << cluster.liveness_report();
  GatherState* gather = NodeIntrospect::gather(cluster.node(0u));
  ASSERT_NE(gather, nullptr);
  NodeIntrospect::max_ring_seq_seen(*gather) = kMaxRingSeq + 7;

  ASSERT_TRUE(cluster.await([&] { return !cluster.node(0u).running(); }, 6'000'000))
      << cluster.liveness_report();
  ASSERT_TRUE(cluster.await_stable(4'000'000)) << cluster.liveness_report();

  cluster.heal();
  ASSERT_TRUE(cluster.recover(cluster.pid(0)).ok());
  ASSERT_TRUE(cluster.await_quiesce(6'000'000)) << cluster.liveness_report();
  EXPECT_EQ(cluster.node(0u).config().members.size(), 3u);
  EXPECT_EQ(cluster.check_report(), "");
}

// An obligation set holding duplicates and out-of-order entries violates the
// wire invariant (strictly sorted), so an un-normalized exchange would be
// rejected by every peer's decoder and recovery would livelock — the victim
// retransmits the same bad exchange forever. make_exchange() normalizes
// (sort + unique) before encoding, so recovery completes and the merged
// obligations stay canonical.
TEST(StateCorruptionTest, PoisonedObligationsAreNormalizedOnExchange) {
  Cluster cluster(corrupt_options(3, 34));
  ASSERT_TRUE(cluster.await_stable(2'000'000));

  // Some traffic so the recovery exchange is not trivially empty.
  ASSERT_TRUE(cluster.node(1u).send(Service::Safe, payload(1)).ok());
  cluster.run_for(50'000);

  EvsNode& victim = cluster.node(0u);
  std::vector<ProcessId>& obl = NodeIntrospect::obligation_set(victim);
  obl = {cluster.pid(2), cluster.pid(1), cluster.pid(2)};  // unsorted + duplicate

  // Force a gather + recovery round among all three.
  cluster.partition({{0}, {1, 2}});
  cluster.run_for(100'000);
  cluster.heal();
  ASSERT_TRUE(cluster.await_quiesce(6'000'000)) << cluster.liveness_report();
  EXPECT_TRUE(victim.running());
  EXPECT_EQ(cluster.node(0u).config().members.size(), 3u);
  EXPECT_EQ(cluster.check_report(), "");

  // Whatever survived the round trips is canonical again.
  const std::vector<ProcessId>& after = NodeIntrospect::obligation_set(victim);
  EXPECT_TRUE(std::is_sorted(after.begin(), after.end()));
  EXPECT_EQ(std::adjacent_find(after.begin(), after.end()), after.end());
}

// Traffic pump: safe messages from every node until the victim's GC
// watermark advances past zero (GC needs full safe-horizon rotations).
void pump_until_gc(Cluster& cluster, EvsNode& victim) {
  OrderingCore* core = NodeIntrospect::core(victim);
  ASSERT_NE(core, nullptr);
  for (int round = 0; round < 50 && NodeIntrospect::gc_upto(*core) == 0; ++round) {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      (void)cluster.node(i).send(Service::Safe, payload(static_cast<std::uint8_t>(round)));
    }
    cluster.run_for(20'000);
    core = NodeIntrospect::core(victim);
    ASSERT_NE(core, nullptr);
  }
  ASSERT_GT(NodeIntrospect::gc_upto(*core), 0u);
}

// A GC watermark regressed below its true value claims bodies the store
// already discarded are still present; the body spot-check in
// state_consistent() catches the mismatch at the next token visit and the
// victim fail-stops rather than serve retransmission requests it cannot
// honor.
TEST(StateCorruptionTest, RegressedGcWatermarkFailStops) {
  Cluster cluster(corrupt_options(3, 35));
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  EvsNode& victim = cluster.node(1u);
  pump_until_gc(cluster, victim);

  NodeIntrospect::gc_upto(*NodeIntrospect::core(victim)) = 0;

  ASSERT_TRUE(cluster.await([&] { return !victim.running(); }, 4'000'000))
      << cluster.liveness_report();
  EXPECT_GE(victim.stats().state_fail_stops, 1u);
  ASSERT_TRUE(cluster.await_stable(4'000'000)) << cluster.liveness_report();

  ASSERT_TRUE(cluster.recover(cluster.pid(1)).ok());
  ASSERT_TRUE(cluster.await_quiesce(6'000'000)) << cluster.liveness_report();
  EXPECT_EQ(cluster.check_report(), "");
}

// A GC watermark pushed past the delivery frontier claims undelivered
// messages were garbage collected — delivering them later would violate the
// total order the watermark vouches for. Fail-stop, again at the next token
// visit.
TEST(StateCorruptionTest, AdvancedGcWatermarkFailStops) {
  Cluster cluster(corrupt_options(3, 36));
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  EvsNode& victim = cluster.node(2u);
  pump_until_gc(cluster, victim);

  OrderingCore* core = NodeIntrospect::core(victim);
  NodeIntrospect::gc_upto(*core) = core->delivered_upto() + 10;

  ASSERT_TRUE(cluster.await([&] { return !victim.running(); }, 4'000'000))
      << cluster.liveness_report();
  EXPECT_GE(victim.stats().state_fail_stops, 1u);

  ASSERT_TRUE(cluster.recover(cluster.pid(2)).ok());
  ASSERT_TRUE(cluster.await_quiesce(6'000'000)) << cluster.liveness_report();
  EXPECT_EQ(cluster.check_report(), "");
}

// The flow-control visit counter blown sky-high must degrade, not kill: the
// token's fcc arithmetic saturates/clamps, the window re-opens after a full
// rotation, and the ring keeps delivering with nobody ejected.
TEST(StateCorruptionTest, CorruptFccIsBenign) {
  Cluster cluster(corrupt_options(3, 37));
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  EvsNode& victim = cluster.node(0u);
  OrderingCore* core = NodeIntrospect::core(victim);
  ASSERT_NE(core, nullptr);
  NodeIntrospect::prev_visit_broadcasts(*core) = 0xdead'beefu;

  const std::uint64_t delivered_before = victim.stats().delivered;
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      (void)cluster.node(i).send(Service::Safe, payload(static_cast<std::uint8_t>(round)));
    }
    cluster.run_for(20'000);
  }
  ASSERT_TRUE(cluster.await_quiesce(4'000'000)) << cluster.liveness_report();
  EXPECT_TRUE(victim.running());
  EXPECT_EQ(total_state_fail_stops(cluster), 0u);
  EXPECT_GT(victim.stats().delivered, delivered_before);
  EXPECT_EQ(cluster.check_report(), "");
}

// apply_corruption() itself: every kind either declines (state offers
// nothing to corrupt) or leaves the victim holding state no correct
// execution produces — and says which it did.
TEST(StateCorruptionTest, ApplyCorruptionReportsApplicability) {
  Cluster cluster(corrupt_options(3, 38));
  ASSERT_TRUE(cluster.await_stable(2'000'000));
  Rng rng(38);

  // Operational: gather-targeting kinds must decline, core kinds must apply.
  EXPECT_FALSE(apply_corruption(cluster.node(0u), CorruptionKind::StaleMaxRingSeq, rng));
  EXPECT_TRUE(apply_corruption(cluster.node(0u), CorruptionKind::CorruptFcc, rng));
  EXPECT_TRUE(apply_corruption(cluster.node(1u), CorruptionKind::RingSeqWraparound, rng));

  // A down node offers nothing.
  ASSERT_TRUE(cluster.crash(cluster.pid(2)).ok());
  for (CorruptionKind kind : kAllCorruptionKinds) {
    EXPECT_FALSE(apply_corruption(cluster.node(2u), kind, rng)) << to_string(kind);
  }
}

}  // namespace
}  // namespace evs
