// The state-corruption fuzz sweep (run with `ctest -L corrupt`): thousands
// of randomized trials, each perturbing one victim's volatile state with a
// random CorruptionKind mid-execution, then requiring that the system either
// ejects the victim (fail-stop, or peers reconfigure around it) or
// reconverges — and that the whole trace stays spec-clean.
//
// The sweep is sharded into kShards ctest cases so `ctest -j` spreads it
// across cores, and every trial is deterministic in (shard, trial index):
// a failure message names the shard seed and trial, which replays
// bit-for-bit. Trial count: EVS_CORRUPT_TRIALS (total, across shards) when
// set; otherwise 10'000 plain, scaled down under ASan/TSan builds where
// each trial costs roughly an order of magnitude more.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "testkit/cluster.hpp"
#include "testkit/corrupt.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define EVS_CORRUPT_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define EVS_CORRUPT_SANITIZED 1
#endif
#endif

namespace evs {
namespace {

constexpr int kShards = 8;
constexpr std::size_t kNodes = 4;
constexpr int kTrialsPerCluster = 40;

int total_trials() {
  if (const char* env = std::getenv("EVS_CORRUPT_TRIALS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
#ifdef EVS_CORRUPT_SANITIZED
  return 1'600;
#else
  return 10'000;
#endif
}

Cluster::Options sweep_options(std::uint64_t seed) {
  Cluster::Options o;
  o.num_processes = kNodes;
  o.seed = seed;
  o.watchdog_window_us = 1'500'000;
  return o;
}

class CorruptSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(CorruptSweepTest, RandomizedCorruptionEitherEjectsOrReconverges) {
  const int shard = GetParam();
  const int trials = (total_trials() + kShards - 1) / kShards;
  const std::uint64_t shard_seed = 0xC0221107u + 977u * static_cast<std::uint64_t>(shard);
  Rng rng(shard_seed);

  int applied_total = 0;
  std::unique_ptr<Cluster> cluster;
  for (int trial = 0; trial < trials; ++trial) {
    // Fresh cluster every kTrialsPerCluster trials: bounds trace growth and
    // gives the quiescent end-of-batch check below a bounded window.
    if (trial % kTrialsPerCluster == 0) {
      cluster = std::make_unique<Cluster>(sweep_options(shard_seed + static_cast<std::uint64_t>(trial)));
      ASSERT_TRUE(cluster->await_stable(4'000'000)) << cluster->liveness_report();
    }
    Cluster& c = *cluster;
    const std::string ctx = "shard " + std::to_string(shard) + " trial " +
                            std::to_string(trial) + " (seed " +
                            std::to_string(shard_seed) + ")";

    // Background traffic so ordering/GC state is non-trivial when corrupted.
    for (int i = 0; i < 3; ++i) {
      const std::size_t s = rng.below(c.size());
      if (c.node(s).running()) {
        (void)c.node(s).send(rng.chance(0.5) ? Service::Safe : Service::Agreed,
                             {static_cast<std::uint8_t>(rng.below(256))});
      }
    }
    c.run_for(5'000 + rng.between(0, 15'000));

    // Corrupt one victim with a random kind; kinds inapplicable to the
    // victim's current state rotate to the next (a trial with nothing to
    // corrupt — e.g. everything gather-specific while Operational — still
    // runs its churn, which is a valid no-corruption control).
    const std::size_t victim_idx = rng.below(c.size());
    EvsNode& victim = c.node(victim_idx);
    CorruptionKind used = kAllCorruptionKinds[0];
    bool applied = false;
    const std::size_t start = rng.below(kAllCorruptionKinds.size());
    for (std::size_t k = 0; k < kAllCorruptionKinds.size() && !applied; ++k) {
      used = kAllCorruptionKinds[(start + k) % kAllCorruptionKinds.size()];
      applied = apply_corruption(victim, used, rng);
    }
    if (applied) ++applied_total;
    c.run_for(5'000);

    // Most trials force a reconfiguration afterwards: dormant corruption
    // (a wrapped ring counter, a poisoned obligation set) only bites when
    // the victim next gathers or recovers.
    if (rng.chance(0.7)) {
      std::vector<std::vector<std::size_t>> groups(2);
      for (std::size_t i = 0; i < c.size(); ++i) {
        groups[i == victim_idx ? 0 : 1].push_back(i);
      }
      c.partition(groups);
      c.run_for(30'000 + rng.between(0, 30'000));
      c.heal();
    }

    // Outcome: the components that exclude any fail-stopped victim converge
    // (stable() skips downed nodes), and recovery brings every casualty
    // back into one spec-clean ring.
    ASSERT_TRUE(c.await_stable(4'000'000))
        << ctx << " kind=" << to_string(used) << " applied=" << applied << "\n"
        << c.liveness_report();
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (!c.node(i).running()) {
        ASSERT_TRUE(c.recover(c.pid(i)).ok()) << ctx << " recovering node " << i;
      }
    }
    ASSERT_TRUE(c.await_stable(4'000'000))
        << ctx << " kind=" << to_string(used) << " (post-recovery)\n"
        << c.liveness_report();

    // End of batch: full quiescent spec check over everything this cluster
    // survived.
    if ((trial + 1) % kTrialsPerCluster == 0 || trial + 1 == trials) {
      ASSERT_TRUE(c.await_quiesce(6'000'000)) << ctx << "\n" << c.liveness_report();
      ASSERT_EQ(c.check_report(), "") << ctx;
    }
  }
  // The rotation fallback means most trials corrupt something; if nearly
  // none applied, the harness is broken (e.g. introspection always
  // declining), not the protocol.
  EXPECT_GT(applied_total, trials / 2)
      << "only " << applied_total << "/" << trials << " trials applied a corruption";
}

INSTANTIATE_TEST_SUITE_P(Shards, CorruptSweepTest, ::testing::Range(0, kShards));

}  // namespace
}  // namespace evs
