// E1 — Specification conformance under randomized fault schedules
// (DESIGN.md §5; Figures 1-5 of the paper as executable properties).
//
// Generates random partition/crash/traffic schedules, checks the complete
// extended virtual synchrony specification on every trace, and reports the
// violation count (must be 0) plus the checker's own cost per trace event —
// the machine-checkable stand-in for the paper's specification figures.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "testkit/cluster.hpp"
#include "testkit/workload.hpp"

namespace {

using namespace evs;

void BM_SpecConformance(benchmark::State& state) {
  const auto processes = static_cast<std::size_t>(state.range(0));
  const double loss = static_cast<double>(state.range(1)) / 100.0;

  std::uint64_t violations = 0;
  double events = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = processes;
    opts.seed = 555 + rounds;
    opts.net.loss_probability = loss;
    Cluster cluster(opts);
    Rng rng(777 + rounds);
    RandomScheduleOptions schedule;
    schedule.rounds = 8;
    run_random_schedule(cluster, rng, schedule);
    violations += cluster.check(true).size();
    events += static_cast<double>(cluster.trace().size());
    evs::bench::record(evs::bench::run_name("BM_SpecConformance", {state.range(0), state.range(1)}), cluster);
    ++rounds;
  }
  state.counters["violations"] = static_cast<double>(violations);
  state.counters["trace_events"] = events / static_cast<double>(rounds);
}

void BM_CheckerThroughput(benchmark::State& state) {
  // The checker's own speed: events verified per wall second.
  Cluster::Options opts;
  opts.num_processes = 6;
  opts.seed = 99;
  Cluster cluster(opts);
  Rng rng(99);
  RandomScheduleOptions schedule;
  schedule.rounds = 12;
  schedule.messages_per_round = 60;
  run_random_schedule(cluster, rng, schedule);

  std::size_t violations = 0;
  for (auto _ : state) {
    violations += cluster.check(true).size();
  }
  evs::bench::record(evs::bench::run_name("BM_CheckerThroughput"), cluster);
  state.counters["violations"] = static_cast<double>(violations);
  state.counters["events_per_check"] = static_cast<double>(cluster.trace().size());
  state.SetItemsProcessed(static_cast<std::int64_t>(
      static_cast<std::uint64_t>(state.iterations()) * cluster.trace().size()));
}

}  // namespace

// Args: {processes, loss_percent}
BENCHMARK(BM_SpecConformance)
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({4, 1})
    ->Args({4, 5})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckerThroughput)->Unit(benchmark::kMillisecond);

EVS_BENCH_MAIN("bench_spec_conformance");
