// Sharded-executor scaling (DESIGN.md "Sharded executor").
//
// The question this sweep answers: what does multiplexing N live nodes
// onto min(cores, N) worker threads cost against the old thread-per-node
// runtime, and does the executor keep a 64-node ring moving when the
// thread-per-node model would need 64 OS threads? Ordered-delivery
// throughput over real loopback sockets, same timed window as
// bench_udp_live (send -> delivered-at-every-member).
//
//   BM_ExecutorScale/N        — N nodes, min(cores, N) workers (default)
//   BM_ThreadPerNodeBaseline/N — N nodes, N workers (one poller per node,
//                                the pre-executor threading model emulated
//                                on the same code path)
//
// The acceptance gates: executor throughput at N=5 within 0.8x of the
// thread-per-node baseline, and the 64-node ring delivering on <= cores
// workers (not thread-limited). Both benchmarks skip (SkipWithError) when
// the environment provides no usable sockets, mirroring the `live` label.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_report.hpp"

#include "testkit/live_cluster.hpp"

namespace {

using namespace evs;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Messages per round, scaled down with ring size: every message is
/// delivered N times, so the delivery work grows linearly in N and the
/// send count shrinks to keep round wall-time bounded.
int messages_for(std::size_t ring) {
  if (ring <= 5) return 1'000;
  if (ring <= 16) return 400;
  return 128;
}

void run_scale(benchmark::State& state, const char* bench_name,
               std::size_t ring, std::size_t workers) {
  const int kMessages = messages_for(ring);
  constexpr int kChunk = 32;
  const std::vector<std::uint8_t> body(64, 0x42);

  double msgs_per_sec = 0;
  double actual_workers = 0;
  std::uint64_t rounds = 0;
  // Large rings need the dilated timer profile (see
  // live_node_defaults_scaled) and proportionally longer convergence
  // windows: a 64-member formation is several join/consensus rounds, each
  // stretched by the dilation factor.
  const SimTime stabilize_us = ring <= 16 ? 120'000'000 : 300'000'000;
  const SimTime deliver_us = ring <= 16 ? 120'000'000 : 300'000'000;
  for (auto _ : state) {
    LiveCluster cluster(
        LiveCluster::Options{.num_processes = ring,
                             .num_workers = workers,
                             .node = live_node_defaults_scaled(ring)});
    if (!cluster.open().ok()) {
      state.SkipWithError("sockets unavailable");
      return;
    }
    if (!cluster.await_stable(stabilize_us)) {
      state.SkipWithError("live ring failed to stabilize");
      return;
    }
    const std::uint64_t target =
        cluster.total_delivered() +
        static_cast<std::uint64_t>(kMessages) * ring;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kMessages;) {
      const int n = std::min(kChunk, kMessages - i);
      auto r = cluster.send_batch(
          static_cast<std::size_t>(i / kChunk) % ring, Service::Agreed,
          std::vector<std::vector<std::uint8_t>>(static_cast<std::size_t>(n),
                                                 body));
      if (r.ok()) {
        i += n;
      } else if (r.code() == Errc::backpressure) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      } else {
        state.SkipWithError("send failed");
        return;
      }
    }
    if (!cluster.await([&] { return cluster.total_delivered() >= target; },
                       deliver_us, 500)) {
      state.SkipWithError("live ring failed to deliver the burst");
      return;
    }
    msgs_per_sec += static_cast<double>(kMessages) / seconds_since(t0);
    if (!cluster.await_quiesce(120'000'000)) {
      state.SkipWithError("live ring failed to quiesce");
      return;
    }
    cluster.stop();
    auto agg = cluster.aggregate_metrics();
    actual_workers =
        static_cast<double>(agg.gauge("net.executor.workers").value());
    evs::bench::ObsReport::instance()
        .run(evs::bench::run_name(bench_name, {static_cast<int>(ring)}))
        .merge_from(agg);
    ++rounds;
  }
  state.counters["executor_msgs_per_sec"] =
      msgs_per_sec / static_cast<double>(rounds);
  state.counters["executor_deliveries_per_sec"] =
      msgs_per_sec * static_cast<double>(ring) / static_cast<double>(rounds);
  state.counters["executor_workers"] = actual_workers;
  state.counters["executor_messages"] = static_cast<double>(kMessages);
}

/// Default sharding: min(cores, N) workers — the production configuration.
void BM_ExecutorScale(benchmark::State& state) {
  run_scale(state, "BM_ExecutorScale",
            static_cast<std::size_t>(state.range(0)), /*workers=*/0);
}

/// One worker per node: the pre-executor thread-per-node model, emulated on
/// the identical code path so the comparison isolates the sharding.
void BM_ThreadPerNodeBaseline(benchmark::State& state) {
  const auto ring = static_cast<std::size_t>(state.range(0));
  run_scale(state, "BM_ThreadPerNodeBaseline", ring, /*workers=*/ring);
}

BENCHMARK(BM_ExecutorScale)->Arg(5)->Arg(16)->Arg(64)->Iterations(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ThreadPerNodeBaseline)->Arg(5)->Iterations(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

EVS_BENCH_MAIN("bench_executor_scale")
