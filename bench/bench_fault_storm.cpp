// Fault-storm benchmark (see sim/faults.hpp and DESIGN.md §"Fault model").
//
// A 7-process cluster runs the Figure 6 partition/remerge sequence while a
// deterministic fault storm (duplication + reordering + corruption) runs at
// increasing rates. Measures, in simulated time:
//   * ordering throughput: messages delivered per simulated second of the
//     traffic phase,
//   * recovery latency: remerge signal to the last process installing the
//     healed 7-member configuration,
// and reports the injector/rejection counters so the cost of each fault
// rate is visible. Fault level selects (duplicate, reorder, corrupt):
//   0: (0, 0, 0)          1: (0.01, 0.01, 0.005)   2: (0.03, 0.03, 0.01)
//   3: (0.05, 0.05, 0.02) 4: (0.08, 0.08, 0.03)
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "testkit/cluster.hpp"
#include "testkit/metrics.hpp"

namespace {

using namespace evs;

struct StormLevel {
  double duplicate;
  double reorder;
  double corrupt;
};

constexpr StormLevel kLevels[] = {
    {0.0, 0.0, 0.0},   {0.01, 0.01, 0.005}, {0.03, 0.03, 0.01},
    {0.05, 0.05, 0.02}, {0.08, 0.08, 0.03},
};

void BM_FaultStorm(benchmark::State& state) {
  const StormLevel level = kLevels[state.range(0)];

  double delivered_per_sim_s = 0;
  double recovery_us = 0;
  double injected = 0;
  double rejected = 0;
  double retransmits = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = 7;
    opts.seed = 7000 + rounds;
    opts.watchdog_window_us = 1'000'000;
    if (level.duplicate > 0 || level.reorder > 0 || level.corrupt > 0) {
      opts.faults = FaultPlan::storm(level.duplicate, level.reorder, level.corrupt);
    }
    Cluster cluster(opts);

    // Figure 6 starting point: {p,q,r} | {s,t,u,v}.
    cluster.partition({{0, 1, 2}, {3, 4, 5, 6}});
    if (!cluster.await_stable(30'000'000)) {
      state.SkipWithError("no stable start under storm");
      return;
    }

    // Traffic phase: sustained sends in both components.
    const SimTime traffic_start = cluster.now();
    std::uint64_t delivered_before = 0;
    for (std::size_t i = 0; i < 7; ++i) {
      delivered_before += cluster.node(i).stats().delivered;
    }
    for (int burst = 0; burst < 10; ++burst) {
      for (std::size_t i = 0; i < 7; ++i) {
        cluster.node(i).send(burst % 2 == 0 ? Service::Safe : Service::Agreed,
                             std::vector<std::uint8_t>(16, 0));
      }
      cluster.run_for(20'000);
    }
    const SimTime traffic_us = cluster.now() - traffic_start;
    std::uint64_t delivered_after = 0;
    for (std::size_t i = 0; i < 7; ++i) {
      delivered_after += cluster.node(i).stats().delivered;
    }

    // Remerge under the storm: recovery latency to the healed 7-member
    // configuration at every process.
    const SimTime heal_at = cluster.now();
    cluster.heal();
    const bool healed = cluster.await(
        [&] {
          for (std::size_t i = 0; i < 7; ++i) {
            if (cluster.node(i).state() != EvsNode::State::Operational ||
                cluster.node(i).config().members.size() != 7) {
              return false;
            }
          }
          return true;
        },
        60'000'000);
    if (!healed) {
      state.SkipWithError("remerge did not settle under storm");
      return;
    }
    recovery_us += static_cast<double>(cluster.now() - heal_at);
    delivered_per_sim_s += static_cast<double>(delivered_after - delivered_before) *
                           1e6 / static_cast<double>(traffic_us);

    const FaultCounters counters = collect_fault_counters(cluster);
    injected += static_cast<double>(counters.injected.injected_total);
    rejected += static_cast<double>(counters.rejected_frames +
                                    counters.rejected_decode +
                                    counters.stale_rejected);
    retransmits += static_cast<double>(counters.token_retransmits);
    evs::bench::record(evs::bench::run_name("BM_FaultStorm", {state.range(0)}), cluster);
    ++rounds;
  }
  const double n = static_cast<double>(rounds);
  state.counters["delivered_per_sim_s"] = delivered_per_sim_s / n;
  state.counters["sim_recovery_us"] = recovery_us / n;
  state.counters["faults_injected"] = injected / n;
  state.counters["packets_rejected"] = rejected / n;
  state.counters["token_retransmits"] = retransmits / n;
}

}  // namespace

BENCHMARK(BM_FaultStorm)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

EVS_BENCH_MAIN("bench_fault_storm");
