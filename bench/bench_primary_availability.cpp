// E6 — Primary-component availability: static majority vs dynamic linear
// voting (DESIGN.md §5).
//
// The paper (Section 5) mentions "an algorithm that has a greater
// probability of finding a primary component". This bench quantifies it:
// run random partition schedules and report the fraction of schedule steps
// in which SOME primary component exists, under both policies. Expected
// shape: DLV dominates static majority, most visibly under cascading
// shrinking partitions where the active majority walks down with the
// primary lineage.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <algorithm>

#include "testkit/vs_cluster.hpp"
#include "util/rng.hpp"

namespace {

using namespace evs;

double run_schedule(const std::string& run, VsNode::Policy policy,
                    std::uint64_t seed, int steps, bool shrinking) {
  VsCluster::Options opts;
  opts.num_processes = 7;
  opts.seed = seed;
  opts.policy = policy;
  VsCluster cluster(opts);
  Rng rng(seed * 97 + 1);
  if (!cluster.await_stable(30'000'000)) return 0.0;

  int primary_steps = 0;
  std::vector<std::size_t> core{0, 1, 2, 3, 4, 5, 6};
  for (int step = 0; step < steps; ++step) {
    if (shrinking && core.size() > 1) {
      // Cascading shrink: the connected core loses one process per step.
      core.pop_back();
      std::vector<std::vector<std::size_t>> groups;
      groups.push_back(core);
      for (std::size_t i = core.size(); i < 7; ++i) groups.push_back({i});
      cluster.partition(groups);
    } else {
      const std::size_t ngroups = 1 + rng.below(4);
      std::vector<std::vector<std::size_t>> groups(ngroups);
      for (std::size_t i = 0; i < 7; ++i) groups[rng.below(ngroups)].push_back(i);
      groups.erase(std::remove_if(groups.begin(), groups.end(),
                                  [](const auto& g) { return g.empty(); }),
                   groups.end());
      cluster.partition(groups);
    }
    cluster.await_stable(30'000'000);
    bool any_primary = false;
    for (std::size_t i = 0; i < 7; ++i) {
      if (cluster.node(i).in_primary()) any_primary = true;
    }
    if (any_primary) ++primary_steps;
  }
  evs::bench::record(run, cluster);
  return static_cast<double>(primary_steps) / static_cast<double>(steps);
}

void BM_PrimaryAvailability(benchmark::State& state) {
  const auto policy = state.range(0) == 0 ? VsNode::Policy::StaticMajority
                                          : VsNode::Policy::DynamicLinearVoting;
  const bool shrinking = state.range(1) == 1;
  double availability = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    availability += run_schedule(
        evs::bench::run_name("BM_PrimaryAvailability", {state.range(0), state.range(1)}),
        policy, 1000 + rounds, 12, shrinking);
    ++rounds;
  }
  state.counters["primary_availability"] = availability / static_cast<double>(rounds);
}

}  // namespace

// Args: {policy (0=static, 1=dlv), schedule (0=random, 1=cascading shrink)}
BENCHMARK(BM_PrimaryAvailability)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

EVS_BENCH_MAIN("bench_primary_availability");
