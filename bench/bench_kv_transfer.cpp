// State-transfer catch-up cost (DESIGN.md "State transfer & anti-entropy").
//
// A replica of a preloaded shard is isolated, the majority commits a delta
// of fresh writes, the partition heals, and the benchmark measures the
// virtual time from heal to the rejoiner re-opening its read gate plus the
// bytes the donor shipped to get it there:
//
//   BM_KvCatchUp/<delta_ops>
//
// The headline property is that transfer cost scales with the DELTA, not
// the store: the digest exchange narrows the stream to the buckets that
// actually changed, so catching up 128 missed writes over a 4096-key store
// must ship well under half the store's bytes. The run aborts
// (SkipWithError) if that bound fails — a regression to ship-everything is
// a correctness-of-purpose bug for this subsystem, not a slow day. Catch-up
// latency, shipped bytes and store size ride along as bench.* counters next
// to the kv.transfer.* instruments in BENCH_kv_transfer.json.
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "testkit/kv_cluster.hpp"

namespace {

using namespace evs;

constexpr int kPreloadOps = 4096;
constexpr std::size_t kValueBytes = 64;

/// Write one key through the shard's current writer, waiting out transient
/// backpressure; false only when the ring never admits it.
bool paced_put(KvCluster& kc, const std::string& key,
               const std::string& value) {
  for (int attempt = 0; attempt < 400; ++attempt) {
    apps::KvShardedNode* w = kc.writer(0);
    if (w == nullptr) {
      kc.run_for(2'000);
      continue;
    }
    const Status st = w->put(key, value);
    if (st.ok()) return true;
    kc.run_for(2'000);
  }
  return false;
}

void BM_KvCatchUp(benchmark::State& state) {
  const int delta_ops = static_cast<int>(state.range(0));

  double catch_up_us = 0;
  double shipped = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    KvCluster::Options opts;
    opts.num_processes = 4;
    opts.router.num_shards = 1;
    opts.router.replication = 3;
    opts.seed = 9000 + rounds;
    KvCluster kc(opts);
    if (!kc.await_quiesce(20'000'000)) {
      state.SkipWithError("shard ring never quiesced");
      return;
    }

    // Preload: a store much larger than any delta in the sweep.
    std::size_t store_bytes = 0;
    for (int i = 0; i < kPreloadOps; ++i) {
      const std::string key = "base-" + std::to_string(i);
      if (!paced_put(kc, key, std::string(kValueBytes, 'b'))) {
        state.SkipWithError("preload write never admitted");
        return;
      }
      store_bytes += key.size() + kValueBytes;
      if (i % 64 == 63) kc.run_for(10'000);
    }
    if (!kc.await_quiesce(60'000'000)) {
      state.SkipWithError("preload never drained");
      return;
    }

    // Isolate the LAST replica so the writer (the first) keeps accepting,
    // commit the delta on the majority side, then heal.
    const std::size_t lone = kc.router().replicas(0).back().value - 1;
    std::vector<std::size_t> rest;
    for (std::size_t p = 0; p < kc.size(); ++p) {
      if (p != lone) rest.push_back(p);
    }
    kc.partition_shard(0, {{lone}, rest});
    if (!kc.await([&] { return kc.shard_cluster(0).stable(); }, 20'000'000)) {
      state.SkipWithError("majority never re-stabilized");
      return;
    }
    for (int i = 0; i < delta_ops; ++i) {
      if (!paced_put(kc, "delta-" + std::to_string(i),
                     std::string(kValueBytes, 'd'))) {
        state.SkipWithError("delta write never admitted");
        return;
      }
      if (i % 64 == 63) kc.run_for(10'000);
    }

    const std::uint64_t bytes_before =
        kc.aggregate_metrics().counter_value("kv.transfer.bytes_sent");
    const SimTime heal_at = kc.now();
    kc.heal_shard(0);
    // The measured span: heal to the rejoiner serving reads again with the
    // full delta applied (fine 500us steps, so the makespan is the
    // transfer's, not the polling grid's).
    const std::string last_key = "delta-" + std::to_string(delta_ops - 1);
    const bool caught_up = kc.await(
        [&] {
          if (!kc.agent(lone).serving(0)) return false;
          auto got = kc.agent(lone).get(last_key);
          return got.ok() && got->has_value();
        },
        60'000'000);
    if (!caught_up) {
      state.SkipWithError("rejoiner never caught up");
      return;
    }
    const double elapsed = static_cast<double>(kc.now() - heal_at);
    const std::uint64_t bytes_sent =
        kc.aggregate_metrics().counter_value("kv.transfer.bytes_sent") -
        bytes_before;

    if (!kc.await_quiesce(60'000'000)) {
      state.SkipWithError("post-transfer quiesce failed");
      return;
    }
    if (!kc.replicas_agree(0)) {
      state.SkipWithError("replicas diverged after catch-up");
      return;
    }
    if (!kc.check_report().empty()) {
      state.SkipWithError("spec violation in the shard trace");
      return;
    }
    // The scaling gate: a SMALL delta over a big store must not ship the
    // store. Transfer granularity is the digest bucket, so each missed
    // write drags its bucket's resident entries along (~store/buckets
    // extra per touched bucket); once the delta touches most buckets —
    // 2048/4096 covers ~85% of them — shipping near the store is the
    // honest cost, not a regression, so the gate applies only while the
    // delta is a small fraction of the store. Half is a generous ceiling:
    // a digest-driven 128/4096 transfer sits far below it, while a
    // ship-everything regression always trips it.
    if (delta_ops <= kPreloadOps / 16 && bytes_sent >= store_bytes / 2) {
      state.SkipWithError("transfer bytes did not scale with the delta");
      return;
    }

    catch_up_us += elapsed;
    shipped += static_cast<double>(bytes_sent);
    const std::string run =
        evs::bench::run_name("BM_KvCatchUp", {state.range(0)});
    evs::bench::record(run, kc);
    auto& reg = evs::bench::ObsReport::instance().run(run);
    reg.counter("bench.delta_ops").inc(static_cast<std::uint64_t>(delta_ops));
    reg.counter("bench.catch_up_us").inc(static_cast<std::uint64_t>(elapsed));
    reg.counter("bench.transfer_bytes").inc(bytes_sent);
    reg.counter("bench.store_bytes")
        .inc(static_cast<std::uint64_t>(store_bytes));
    ++rounds;
  }
  state.counters["catch_up_sim_ms"] =
      catch_up_us / 1e3 / static_cast<double>(rounds);
  state.counters["transfer_bytes"] = shipped / static_cast<double>(rounds);
  state.counters["bytes_per_delta_op"] =
      shipped / static_cast<double>(rounds) / static_cast<double>(state.range(0));
}

}  // namespace

BENCHMARK(BM_KvCatchUp)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

EVS_BENCH_MAIN("bench_kv_transfer");
