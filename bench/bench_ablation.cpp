// E-ablation — design-choice sweeps called out in DESIGN.md §7.
//
// Three knobs of the implementation, each swept in isolation:
//   1. Flow control: messages stamped per token visit vs burst drain time.
//   2. Failure detection: token-loss timeout vs partition recovery window
//      (the dominant term measured in E5).
//   3. Loss tolerance: message-loss rate vs safe-delivery latency and
//      membership churn (each lost token costs a full membership round).
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "testkit/cluster.hpp"
#include "testkit/metrics.hpp"

namespace {

using namespace evs;

void BM_FlowControlWindow(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  double drain_us = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = 4;
    opts.seed = 1 + rounds;
    opts.node.ordering.max_new_per_token = window;
    Cluster cluster(opts);
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("no stable start");
      return;
    }
    const SimTime start = cluster.now();
    for (int i = 0; i < 400; ++i) {
      cluster.node(static_cast<std::size_t>(i % 4)).send(Service::Agreed, {1});
    }
    if (!cluster.await_quiesce(120'000'000)) {
      state.SkipWithError("no quiesce");
      return;
    }
    drain_us += static_cast<double>(cluster.now() - start);
    evs::bench::record(evs::bench::run_name("BM_FlowControlWindow", {state.range(0)}), cluster);
    ++rounds;
  }
  state.counters["sim_burst_drain_us"] = drain_us / static_cast<double>(rounds);
}

void BM_TokenLossTimeout(benchmark::State& state) {
  const SimTime timeout_us = static_cast<SimTime>(state.range(0));
  double recovery_us = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = 4;
    opts.seed = 5 + rounds;
    opts.node.token_loss_timeout_us = timeout_us;
    Cluster cluster(opts);
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("no stable start");
      return;
    }
    for (int i = 0; i < 50; ++i) {
      cluster.node(static_cast<std::size_t>(i % 4)).send(Service::Safe, {1});
    }
    cluster.run_for(400);
    cluster.partition({{0, 1}, {2, 3}});
    if (!cluster.await_quiesce(120'000'000)) {
      state.SkipWithError("no quiesce");
      return;
    }
    std::vector<SimTime> durations;
    for (const auto& w : recovery_windows(cluster.trace())) {
      durations.push_back(w.duration_us());
    }
    recovery_us += summarize(durations).avg_us;
    evs::bench::record(evs::bench::run_name("BM_TokenLossTimeout", {state.range(0)}), cluster);
    ++rounds;
  }
  state.counters["sim_avg_recovery_us"] = recovery_us / static_cast<double>(rounds);
}

void BM_LossSensitivity(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 1000.0;
  double latency_us = 0;
  double gathers = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = 4;
    opts.seed = 9 + rounds;
    opts.net.loss_probability = loss;
    Cluster cluster(opts);
    if (!cluster.await_stable(30'000'000)) {
      state.SkipWithError("no stable start");
      return;
    }
    std::uint64_t gathers_before = 0;
    for (std::size_t i = 0; i < 4; ++i) gathers_before += cluster.node(i).stats().gathers;
    for (int i = 0; i < 100; ++i) {
      cluster.node(static_cast<std::size_t>(i % 4)).send(Service::Safe, {1});
    }
    if (!cluster.await_quiesce(240'000'000)) {
      state.SkipWithError("no quiesce");
      return;
    }
    const Service safe = Service::Safe;
    latency_us += delivery_latency(cluster.trace(), true, &safe).avg_us;
    std::uint64_t gathers_after = 0;
    for (std::size_t i = 0; i < 4; ++i) gathers_after += cluster.node(i).stats().gathers;
    gathers += static_cast<double>(gathers_after - gathers_before);
    evs::bench::record(evs::bench::run_name("BM_LossSensitivity", {state.range(0)}), cluster);
    ++rounds;
  }
  state.counters["sim_safe_latency_us"] = latency_us / static_cast<double>(rounds);
  state.counters["membership_rounds"] = gathers / static_cast<double>(rounds);
}

}  // namespace

BENCHMARK(BM_FlowControlWindow)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TokenLossTimeout)->Arg(4'000)->Arg(8'000)->Arg(12'000)->Arg(24'000)->Arg(48'000)->Unit(benchmark::kMillisecond);
// Arg = loss in permille: 0, 5 (=0.5%), 10, 30, 60
BENCHMARK(BM_LossSensitivity)->Arg(0)->Arg(5)->Arg(10)->Arg(30)->Arg(60)->Unit(benchmark::kMillisecond);

EVS_BENCH_MAIN("bench_ablation");
