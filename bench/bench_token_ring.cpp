// E4 — Ordering substrate cost (DESIGN.md §5).
//
// Totem-style token-ring ordering: message delivery latency and throughput
// for agreed vs safe delivery across ring sizes. The paper's qualitative
// claim (and the companion Totem paper's measurement): safe delivery costs
// roughly one extra token rotation over agreed delivery, so the gap grows
// linearly with ring size.
//
// Reported counters are in *simulated* time (sim_* counters); the benchmark
// wall-clock additionally measures the simulator itself.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "testkit/cluster.hpp"
#include "testkit/metrics.hpp"

namespace {

using namespace evs;

void BM_DeliveryLatency(benchmark::State& state) {
  const auto ring_size = static_cast<std::size_t>(state.range(0));
  const Service service = static_cast<Service>(state.range(1));

  LatencySummary total;
  double sim_us_per_msg = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = ring_size;
    opts.seed = 42 + rounds;
    Cluster cluster(opts);
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("cluster failed to stabilize");
      return;
    }
    const SimTime start = cluster.now();
    constexpr int kMessages = 200;
    for (int i = 0; i < kMessages; ++i) {
      cluster.node(static_cast<std::size_t>(i) % ring_size).send(service, {1, 2, 3, 4});
    }
    if (!cluster.await_quiesce(60'000'000)) {
      state.SkipWithError("cluster failed to quiesce");
      return;
    }
    const SimTime elapsed = cluster.now() - start;
    sim_us_per_msg += static_cast<double>(elapsed) / kMessages;
    // Latency to the LAST receiver: the stabilization cost of the service.
    total = delivery_latency(cluster.trace(), /*to_last_delivery=*/true, &service);
    evs::bench::record(evs::bench::run_name("BM_DeliveryLatency", {state.range(0), state.range(1)}), cluster);
    ++rounds;
  }
  state.counters["sim_avg_latency_us"] = total.avg_us;
  state.counters["sim_p99_latency_us"] = static_cast<double>(total.p99_us);
  state.counters["sim_us_per_msg"] = sim_us_per_msg / static_cast<double>(rounds);
}

void BM_TokenRotation(benchmark::State& state) {
  // Raw token rotation rate on an idle ring: the fixed cost every delivery
  // guarantee ultimately rides on.
  const auto ring_size = static_cast<std::size_t>(state.range(0));
  double rotations_per_sim_sec = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = ring_size;
    opts.seed = 7 + rounds;
    Cluster cluster(opts);
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("cluster failed to stabilize");
      return;
    }
    const std::uint64_t tokens_before = cluster.node(0u).stats().tokens_handled;
    const SimTime start = cluster.now();
    cluster.run_for(1'000'000);  // one simulated second
    const SimTime elapsed = cluster.now() - start;
    const std::uint64_t tokens = cluster.node(0u).stats().tokens_handled - tokens_before;
    rotations_per_sim_sec +=
        static_cast<double>(tokens) * 1e6 / static_cast<double>(elapsed);
    evs::bench::record(evs::bench::run_name("BM_TokenRotation", {state.range(0)}), cluster);
    ++rounds;
  }
  state.counters["sim_rotations_per_sec"] =
      rotations_per_sim_sec / static_cast<double>(rounds);
}

void LatencyArgs(benchmark::internal::Benchmark* b) {
  for (int n : {2, 4, 8, 16, 32}) {
    b->Args({n, static_cast<int>(Service::Agreed)});
    b->Args({n, static_cast<int>(Service::Safe)});
  }
}

}  // namespace

BENCHMARK(BM_DeliveryLatency)->Apply(LatencyArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TokenRotation)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

EVS_BENCH_MAIN("bench_token_ring");
