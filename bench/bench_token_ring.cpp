// E4 — Ordering substrate cost (DESIGN.md §5).
//
// Totem-style token-ring ordering: message delivery latency and throughput
// for agreed vs safe delivery across ring sizes. The paper's qualitative
// claim (and the companion Totem paper's measurement): safe delivery costs
// roughly one extra token rotation over agreed delivery, so the gap grows
// linearly with ring size.
//
// Reported counters are in *simulated* time (sim_* counters); the benchmark
// wall-clock additionally measures the simulator itself.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_report.hpp"

#include "testkit/cluster.hpp"
#include "testkit/metrics.hpp"

namespace {

using namespace evs;

void BM_DeliveryLatency(benchmark::State& state) {
  const auto ring_size = static_cast<std::size_t>(state.range(0));
  const Service service = static_cast<Service>(state.range(1));

  LatencySummary total;
  double sim_us_per_msg = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = ring_size;
    opts.seed = 42 + rounds;
    Cluster cluster(opts);
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("cluster failed to stabilize");
      return;
    }
    const SimTime start = cluster.now();
    constexpr int kMessages = 200;
    for (int i = 0; i < kMessages; ++i) {
      cluster.node(static_cast<std::size_t>(i) % ring_size).send(service, {1, 2, 3, 4});
    }
    if (!cluster.await_quiesce(60'000'000)) {
      state.SkipWithError("cluster failed to quiesce");
      return;
    }
    const SimTime elapsed = cluster.now() - start;
    sim_us_per_msg += static_cast<double>(elapsed) / kMessages;
    // Latency to the LAST receiver: the stabilization cost of the service.
    total = delivery_latency(cluster.trace(), /*to_last_delivery=*/true, &service);
    evs::bench::record(evs::bench::run_name("BM_DeliveryLatency", {state.range(0), state.range(1)}), cluster);
    ++rounds;
  }
  state.counters["sim_avg_latency_us"] = total.avg_us;
  state.counters["sim_p99_latency_us"] = static_cast<double>(total.p99_us);
  state.counters["sim_us_per_msg"] = sim_us_per_msg / static_cast<double>(rounds);
}

void BM_TokenRotation(benchmark::State& state) {
  // Raw token rotation rate on an idle ring: the fixed cost every delivery
  // guarantee ultimately rides on.
  const auto ring_size = static_cast<std::size_t>(state.range(0));
  double rotations_per_sim_sec = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = ring_size;
    opts.seed = 7 + rounds;
    Cluster cluster(opts);
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("cluster failed to stabilize");
      return;
    }
    const std::uint64_t tokens_before = cluster.node(0u).stats().tokens_handled;
    const SimTime start = cluster.now();
    cluster.run_for(1'000'000);  // one simulated second
    const SimTime elapsed = cluster.now() - start;
    const std::uint64_t tokens = cluster.node(0u).stats().tokens_handled - tokens_before;
    rotations_per_sim_sec +=
        static_cast<double>(tokens) * 1e6 / static_cast<double>(elapsed);
    evs::bench::record(evs::bench::run_name("BM_TokenRotation", {state.range(0)}), cluster);
    ++rounds;
  }
  state.counters["sim_rotations_per_sec"] =
      rotations_per_sim_sec / static_cast<double>(rounds);
}

void BM_BoundedMemory(benchmark::State& state) {
  // Bounded-memory acceptance run: push state.range(0) messages through a
  // 3-node ring and report the peak resident store (messages and payload
  // bytes) alongside what safety-horizon GC reclaimed. The claim under test:
  // peak occupancy is a function of the flow-control window, not of the
  // message volume — memory is O(window) while 10^6 messages stream by.
  const auto total_messages = static_cast<int>(state.range(0));
  constexpr std::uint32_t kWindow = 1024;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = 3;
    opts.seed = 99;
    opts.node.ordering.flow_control_window = kWindow;
    opts.node.ordering.max_new_per_token = 256;
    opts.node.ordering.max_retransmit_per_token = 256;
    opts.node.max_pending_sends = 4096;
    Cluster cluster(opts);
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("cluster failed to stabilize");
      return;
    }
    int sent = 0;
    std::uint64_t rejected = 0;
    std::size_t who = 0;
    while (sent < total_messages) {
      // Offer aggressively; backpressure (not an unbounded queue) is the
      // designed answer when the ring lags the producer.
      for (int burst = 0; burst < 2048 && sent < total_messages; ++burst) {
        auto r = cluster.node(who++ % 3).send(Service::Agreed,
                                              {1, 2, 3, 4, 5, 6, 7, 8});
        if (r.ok()) {
          ++sent;
        } else {
          ++rejected;
        }
      }
      cluster.run_for(50'000);
    }
    if (!cluster.await_quiesce(120'000'000)) {
      state.SkipWithError("cluster failed to quiesce");
      return;
    }
    std::int64_t peak_msgs = 0;
    std::int64_t peak_bytes = 0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      auto& m = cluster.node(i).metrics();
      peak_msgs = std::max(peak_msgs, m.gauge("ordering.store_msgs_peak").value());
      peak_bytes = std::max(peak_bytes, m.gauge("ordering.store_bytes_peak").value());
    }
    if (peak_msgs > 4 * static_cast<std::int64_t>(kWindow) + 64) {
      state.SkipWithError("peak resident store exceeded the flow-control bound");
      return;
    }
    auto agg = cluster.aggregate_metrics();
    state.counters["messages"] = static_cast<double>(sent);
    state.counters["peak_store_msgs"] = static_cast<double>(peak_msgs);
    state.counters["peak_store_bytes"] = static_cast<double>(peak_bytes);
    state.counters["gc_reclaimed"] =
        static_cast<double>(agg.counter("ordering.gc_reclaimed").value());
    state.counters["backpressure_rejections"] = static_cast<double>(rejected);
    evs::bench::record(evs::bench::run_name("BM_BoundedMemory", {state.range(0)}),
                       cluster);
  }
}

void LatencyArgs(benchmark::internal::Benchmark* b) {
  for (int n : {2, 4, 8, 16, 32}) {
    b->Args({n, static_cast<int>(Service::Agreed)});
    b->Args({n, static_cast<int>(Service::Safe)});
  }
}

}  // namespace

BENCHMARK(BM_DeliveryLatency)->Apply(LatencyArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TokenRotation)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BoundedMemory)->Arg(1'000'000)->Unit(benchmark::kMillisecond)->Iterations(1);

EVS_BENCH_MAIN("bench_token_ring");
