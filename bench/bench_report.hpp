// Shared obs reporting for the bench_* binaries.
//
// Every benchmark merges each iteration's cluster-wide metrics into a run
// named after the benchmark instance (state.name(), which includes the arg
// suffix, e.g. "BM_FaultStorm/3"). EVS_BENCH_MAIN then writes the collected
// runs as one "evs.obs.report" v1 JSON document to the path in $EVS_OBS_OUT
// (no-op when unset), self-validating with obs::validate_document so a
// malformed report fails the bench run instead of poisoning downstream
// tooling. The bench_smoke ctest targets run each binary on a tiny workload
// and check the emitted document with tools/obs_json_check.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "testkit/cluster.hpp"
#include "testkit/kv_cluster.hpp"
#include "testkit/vs_cluster.hpp"

namespace evs::bench {

class ObsReport {
 public:
  /// Find-or-create the registry for a named run (insertion order kept, so
  /// the emitted document is deterministic for a fixed benchmark order).
  obs::MetricsRegistry& run(const std::string& name) {
    for (auto& [n, r] : runs_) {
      if (n == name) return r;
    }
    runs_.emplace_back(name, obs::MetricsRegistry{});
    return runs_.back().second;
  }

  std::string to_json(const std::string& source) const {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("schema", "evs.obs.report");
    w.kv("version", 1);
    w.kv("source", source);
    w.key("runs").begin_array();
    for (const auto& [name, reg] : runs_) {
      w.begin_object();
      w.kv("name", name);
      w.key("metrics");
      obs::write_metrics(w, reg);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.take();
  }

  static ObsReport& instance() {
    static ObsReport r;
    return r;
  }

 private:
  std::vector<std::pair<std::string, obs::MetricsRegistry>> runs_;
};

/// Benchmark-instance run name, e.g. run_name("BM_FaultStorm",
/// {state.range(0)}) -> "BM_FaultStorm/3". (This benchmark library version
/// has no State::name(), so instances self-describe.)
inline std::string run_name(const char* base,
                            std::initializer_list<std::int64_t> args = {}) {
  std::string n = base;
  for (std::int64_t a : args) n += "/" + std::to_string(a);
  return n;
}

/// Merge one iteration's cluster-wide metrics into the named run.
inline void record(const std::string& run, const Cluster& cluster) {
  ObsReport::instance().run(run).merge_from(cluster.aggregate_metrics());
}
inline void record(const std::string& run, const VsCluster& cluster) {
  ObsReport::instance().run(run).merge_from(cluster.aggregate_metrics());
}
inline void record(const std::string& run, const KvCluster& cluster) {
  ObsReport::instance().run(run).merge_from(cluster.aggregate_metrics());
}

/// Write the report to $EVS_OBS_OUT. Returns a process exit code: 0 on
/// success or when EVS_OBS_OUT is unset, 1 on I/O or schema failure.
inline int write_report(const char* source) {
  const char* path = std::getenv("EVS_OBS_OUT");
  if (path == nullptr || *path == '\0') return 0;
  const std::string doc = ObsReport::instance().to_json(source);
  if (Status st = obs::validate_document(doc); !st.ok()) {
    std::fprintf(stderr, "obs report failed validation: %s\n", st.message().c_str());
    return 1;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open EVS_OBS_OUT=%s\n", path);
    return 1;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return 0;
}

}  // namespace evs::bench

/// Drop-in replacement for BENCHMARK_MAIN() that also writes the obs report.
#define EVS_BENCH_MAIN(source_name)                                       \
  int main(int argc, char** argv) {                                       \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    return ::evs::bench::write_report(source_name);                       \
  }
