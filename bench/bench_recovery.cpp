// E5 — Recovery algorithm cost (DESIGN.md §5).
//
// How long does the Section 3 recovery take, and how much does it
// rebroadcast, as a function of the message backlog outstanding when the
// partition strikes and of the component shape? Expected shape: duration
// and rebroadcast volume grow linearly with the backlog; a lone singleton
// recovers fastest (nothing to exchange).
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <string>
#include <vector>

#include "storage/stable_store.hpp"
#include "testkit/cluster.hpp"
#include "testkit/metrics.hpp"

namespace {

using namespace evs;

void BM_PartitionRecovery(benchmark::State& state) {
  const int backlog = static_cast<int>(state.range(0));
  const bool even_split = state.range(1) == 1;
  constexpr std::size_t kProcesses = 6;

  double avg_recovery_us = 0;
  double max_recovery_us = 0;
  double rebroadcast_bytes = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = kProcesses;
    opts.seed = 11 + rounds;
    Cluster cluster(opts);
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("no stable start");
      return;
    }
    // Build up an in-flight backlog, then cut the network mid-stream.
    for (int i = 0; i < backlog; ++i) {
      cluster.node(static_cast<std::size_t>(i) % kProcesses)
          .send(i % 2 == 0 ? Service::Safe : Service::Agreed,
                std::vector<std::uint8_t>(32, 0));
    }
    cluster.run_for(500);  // messages stamped/in flight, not yet settled
    const std::uint64_t bytes_before = cluster.network().stats().bytes_delivered;
    if (even_split) {
      cluster.partition({{0, 1, 2}, {3, 4, 5}});
    } else {
      cluster.partition({{0, 1, 2, 3, 4}, {5}});
    }
    if (!cluster.await_quiesce(60'000'000)) {
      state.SkipWithError("no quiesce after partition");
      return;
    }
    const auto windows = recovery_windows(cluster.trace());
    std::vector<SimTime> durations;
    for (const auto& w : windows) durations.push_back(w.duration_us());
    const LatencySummary summary = summarize(durations);
    avg_recovery_us += summary.avg_us;
    max_recovery_us += static_cast<double>(summary.max_us);
    rebroadcast_bytes += static_cast<double>(
        cluster.network().stats().bytes_delivered - bytes_before);
    evs::bench::record(evs::bench::run_name("BM_PartitionRecovery", {state.range(0), state.range(1)}), cluster);
    ++rounds;
  }
  state.counters["sim_avg_recovery_us"] = avg_recovery_us / static_cast<double>(rounds);
  state.counters["sim_max_recovery_us"] = max_recovery_us / static_cast<double>(rounds);
  state.counters["recovery_bytes"] = rebroadcast_bytes / static_cast<double>(rounds);
}

void BM_CrashRecovery(benchmark::State& state) {
  // Crash + rejoin of one process under a given backlog: exercises the
  // stable-storage path and the obligation machinery.
  const int backlog = static_cast<int>(state.range(0));
  constexpr std::size_t kProcesses = 4;
  double avg_rejoin_us = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = kProcesses;
    opts.seed = 23 + rounds;
    Cluster cluster(opts);
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("no stable start");
      return;
    }
    for (int i = 0; i < backlog; ++i) {
      cluster.node(static_cast<std::size_t>(i) % kProcesses)
          .send(Service::Safe, std::vector<std::uint8_t>(32, 0));
    }
    cluster.run_for(500);
    cluster.crash(cluster.pid(3));
    if (!cluster.await_stable(60'000'000)) {
      state.SkipWithError("no stability after crash");
      return;
    }
    const SimTime recover_start = cluster.now();
    cluster.recover(cluster.pid(3));
    const bool joined = cluster.await(
        [&] {
          return cluster.node(3u).state() == EvsNode::State::Operational &&
                 cluster.node(3u).config().members.size() == kProcesses;
        },
        60'000'000);
    if (!joined) {
      state.SkipWithError("rejoin failed");
      return;
    }
    avg_rejoin_us += static_cast<double>(cluster.now() - recover_start);
    evs::bench::record(evs::bench::run_name("BM_CrashRecovery", {state.range(0)}), cluster);
    ++rounds;
  }
  state.counters["sim_rejoin_us"] = avg_rejoin_us / static_cast<double>(rounds);
}

void BM_StableStoreRecovery(benchmark::State& state) {
  // Cold-boot log replay: how long does StableStore::open() take to rebuild
  // the key-value image (validating every record's CRC on the way) from a
  // log of `records` appends? The log is built once with a realistic churn
  // mix — keys cycle so replay does real overwrite work, and a slice of
  // erases exercises the tombstone path — then each iteration crashes the
  // volatile image and replays the same durable bytes.
  const int records = static_cast<int>(state.range(0));
  StableStore store;
  for (int i = 0; i < records; ++i) {
    const std::string key = "key/" + std::to_string(i % (records / 4 + 1));
    if (i % 16 == 15) {
      (void)store.erase(key);
    } else {
      (void)store.put(key, std::vector<std::uint8_t>(64, static_cast<std::uint8_t>(i)));
    }
  }
  std::size_t kept = 0;
  for (auto _ : state) {
    store.crash();
    const StableStore::OpenReport rep = store.open();
    kept = rep.records_kept;
    benchmark::DoNotOptimize(kept);
  }
  state.counters["log_bytes"] = static_cast<double>(store.log_bytes());
  state.counters["records_kept"] = static_cast<double>(kept);
  state.counters["replay_rate_rec_per_s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsIterationInvariantRate);
  evs::bench::ObsReport::instance()
      .run(evs::bench::run_name("BM_StableStoreRecovery", {state.range(0)}))
      .merge_from(store.metrics());
}

}  // namespace

BENCHMARK(BM_PartitionRecovery)
    ->Args({10, 1})
    ->Args({100, 1})
    ->Args({500, 1})
    ->Args({2000, 1})
    ->Args({100, 0})
    ->Args({500, 0})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CrashRecovery)->Arg(10)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StableStoreRecovery)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

EVS_BENCH_MAIN("bench_recovery");
