// E7 — The Section 1 applications under partitions (DESIGN.md §5).
//
// Application-level availability: requests served per simulated second by
// the airline and ATM applications while connected, partitioned and after
// remerge. Expected shape: throughput survives the partition (that is the
// EVS pitch), with a dip bounded by the recovery window; the partitioned
// airline serves within its quota.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <memory>
#include <vector>

#include "apps/airline.hpp"
#include "apps/atm.hpp"
#include "testkit/cluster.hpp"

namespace {

using namespace evs;
using apps::AirlineAgent;
using apps::AtmAgent;

void BM_AirlineThroughPartitionCycle(benchmark::State& state) {
  const bool partitioned_phase = state.range(0) == 1;
  double accepted_per_sim_sec = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = 4;
    opts.seed = 31 + rounds;
    Cluster cluster(opts);
    std::vector<std::unique_ptr<AirlineAgent>> offices;
    for (std::size_t i = 0; i < 4; ++i) {
      offices.push_back(std::make_unique<AirlineAgent>(
          cluster.node(i), AirlineAgent::Options{100'000, 4, 1.0}));
    }
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("no stable start");
      return;
    }
    if (partitioned_phase) {
      cluster.partition({{0, 1}, {2, 3}});
      if (!cluster.await_stable(20'000'000)) {
        state.SkipWithError("no stability after partition");
        return;
      }
    }
    const SimTime start = cluster.now();
    const std::uint32_t before = offices[0]->stats().accepted +
                                 offices[2]->stats().accepted;
    for (int i = 0; i < 400; ++i) {
      offices[static_cast<std::size_t>(i % 4)]->request_sale(1);
    }
    if (!cluster.await_quiesce(60'000'000)) {
      state.SkipWithError("no quiesce");
      return;
    }
    const SimTime elapsed = cluster.now() - start;
    const std::uint32_t after = offices[0]->stats().accepted +
                                offices[2]->stats().accepted;
    accepted_per_sim_sec +=
        static_cast<double>(after - before) * 1e6 / static_cast<double>(elapsed);
    evs::bench::record(evs::bench::run_name("BM_AirlineThroughPartitionCycle", {state.range(0)}), cluster);
    ++rounds;
  }
  state.counters["sales_per_sim_sec"] = accepted_per_sim_sec / static_cast<double>(rounds);
}

void BM_AtmPostingBacklog(benchmark::State& state) {
  // Offline transactions accumulate while partitioned and drain at merge:
  // measures the posting backlog drain time as offline volume grows.
  const int offline_txns = static_cast<int>(state.range(0));
  double drain_us = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = 4;
    opts.seed = 41 + rounds;
    Cluster cluster(opts);
    std::vector<std::unique_ptr<AtmAgent>> atms;
    for (std::size_t i = 0; i < 4; ++i) {
      atms.push_back(std::make_unique<AtmAgent>(cluster.node(i),
                                                cluster.store(cluster.pid(i)),
                                                AtmAgent::Options{4, 1'000'000}));
    }
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("no stable start");
      return;
    }
    atms[0]->open_account(1, 1'000'000'000);
    if (!cluster.await_quiesce(30'000'000)) {
      state.SkipWithError("open failed");
      return;
    }
    cluster.partition({{0, 1}, {2, 3}});
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("no stability after partition");
      return;
    }
    for (int i = 0; i < offline_txns; ++i) {
      atms[0]->withdraw(1, 1);
      atms[2]->withdraw(1, 1);
    }
    if (!cluster.await_quiesce(60'000'000)) {
      state.SkipWithError("offline phase stuck");
      return;
    }
    const SimTime merge_at = cluster.now();
    cluster.heal();
    const bool drained = cluster.await(
        [&] {
          for (const auto& atm : atms) {
            if (atm->unposted_count() > 0) return false;
          }
          return true;
        },
        120'000'000);
    if (!drained) {
      state.SkipWithError("posting backlog never drained");
      return;
    }
    drain_us += static_cast<double>(cluster.now() - merge_at);
    evs::bench::record(evs::bench::run_name("BM_AtmPostingBacklog", {state.range(0)}), cluster);
    ++rounds;
  }
  state.counters["sim_drain_us"] = drain_us / static_cast<double>(rounds);
}

}  // namespace

// Arg: 0 = connected, 1 = partitioned
BENCHMARK(BM_AirlineThroughPartitionCycle)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AtmPostingBacklog)->Arg(10)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

EVS_BENCH_MAIN("bench_apps_partition");
