// E12 — Membership protocol at scale (DESIGN.md §5).
//
// One benchmark, swept over ring size N ∈ {10, 50, 100, 200}: form an
// N-member ring, pass a traffic burst, split it 60/40, let both components
// reconverge and deliver, then heal and re-merge into one ring. Counters
// report the protocol cost drivers versus N — network messages, token
// rotations, and virtual time — separately for the join (initial
// formation), partition, and re-merge phases. This is the workload the
// size-derived timeout profile (EvsNode::Options::scaled_for) and the
// O(N)-per-join gather bookkeeping were tuned against; a regression to
// quadratic behavior shows up here as a superlinear jump in messages or
// sim time between N=100 and N=200.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "testkit/cluster.hpp"
#include "testkit/metrics.hpp"

namespace {

using namespace evs;

std::uint64_t total_tokens(Cluster& c) {
  std::uint64_t tokens = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    tokens += c.node(i).stats().tokens_handled;
  }
  return tokens;
}

std::uint64_t net_deliveries(Cluster& c) {
  // Every packet the simulated network handed to a process, token or
  // broadcast alike — the wire cost of the protocol.
  return c.aggregate_metrics().counter_value("net.deliveries");
}

void BM_MembershipScale(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SimTime budget = 10'000'000 + 400'000 * static_cast<SimTime>(n);

  double join_us = 0, split_us = 0, merge_us = 0;
  double join_msgs = 0, split_msgs = 0, merge_msgs = 0;
  double join_tokens = 0, split_tokens = 0, merge_tokens = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = n;
    opts.seed = 800 + rounds;
    opts.node = EvsNode::Options::scaled_for(n);
    Cluster cluster(opts);

    // Phase 1: cold-start join — N singletons gather into one ring.
    const SimTime t0 = cluster.now();
    if (!cluster.await_stable(budget)) {
      state.SkipWithError("initial formation did not converge");
      return;
    }
    join_us += static_cast<double>(cluster.now() - t0);
    std::uint64_t msgs_mark = net_deliveries(cluster);
    std::uint64_t tokens_mark = total_tokens(cluster);
    join_msgs += static_cast<double>(msgs_mark);
    join_tokens += static_cast<double>(tokens_mark);

    // Phase 2: 60/40 partition; both components reconverge and deliver.
    std::vector<std::size_t> left, right;
    for (std::size_t i = 0; i < n; ++i) {
      ((i * 10) / n < 6 ? left : right).push_back(i);
    }
    const SimTime t1 = cluster.now();
    cluster.partition({left, right});
    if (!cluster.await_stable(budget)) {
      state.SkipWithError("partitioned components did not converge");
      return;
    }
    (void)cluster.node(left[0]).send(Service::Safe, {1});
    (void)cluster.node(right[0]).send(Service::Safe, {2});
    cluster.run_for(100'000);
    split_us += static_cast<double>(cluster.now() - t1);
    split_msgs += static_cast<double>(net_deliveries(cluster) - msgs_mark);
    split_tokens += static_cast<double>(total_tokens(cluster) - tokens_mark);
    msgs_mark = net_deliveries(cluster);
    tokens_mark = total_tokens(cluster);

    // Phase 3: heal and re-merge into one N-member ring.
    const SimTime t2 = cluster.now();
    cluster.heal();
    if (!cluster.await_quiesce(budget)) {
      state.SkipWithError("re-merge did not converge");
      return;
    }
    merge_us += static_cast<double>(cluster.now() - t2);
    merge_msgs += static_cast<double>(net_deliveries(cluster) - msgs_mark);
    merge_tokens += static_cast<double>(total_tokens(cluster) - tokens_mark);

    evs::bench::record(evs::bench::run_name("BM_MembershipScale", {state.range(0)}),
                       cluster);
    ++rounds;
  }
  const double r = static_cast<double>(rounds);
  state.counters["sim_join_us"] = join_us / r;
  state.counters["sim_split_us"] = split_us / r;
  state.counters["sim_merge_us"] = merge_us / r;
  state.counters["msgs_join"] = join_msgs / r;
  state.counters["msgs_split"] = split_msgs / r;
  state.counters["msgs_merge"] = merge_msgs / r;
  state.counters["tokens_join"] = join_tokens / r;
  state.counters["tokens_split"] = split_tokens / r;
  state.counters["tokens_merge"] = merge_tokens / r;
  state.counters["msgs_per_member"] =
      (join_msgs + split_msgs + merge_msgs) / (r * static_cast<double>(n));
}

}  // namespace

BENCHMARK(BM_MembershipScale)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

EVS_BENCH_MAIN("bench_membership_scale");
