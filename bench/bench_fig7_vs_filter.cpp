// E3 — Virtual synchrony on top of EVS (Figure 7; DESIGN.md §5).
//
// The cost of the Section 5 filter relative to raw extended virtual
// synchrony: end-to-end delivery latency with and without the filter, the
// view-agreement cost at each configuration change, and — the semantic
// price of the primary-partition model — the fraction of processes blocked
// during a partition episode that EVS would have kept serving.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "testkit/cluster.hpp"
#include "testkit/metrics.hpp"
#include "testkit/vs_cluster.hpp"

namespace {

using namespace evs;

void BM_RawEvsDelivery(benchmark::State& state) {
  double sim_latency = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = 5;
    opts.seed = 3 + rounds;
    Cluster cluster(opts);
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("no stable start");
      return;
    }
    for (int i = 0; i < 100; ++i) {
      cluster.node(static_cast<std::size_t>(i % 5)).send(Service::Safe, {1});
    }
    if (!cluster.await_quiesce(60'000'000)) {
      state.SkipWithError("no quiesce");
      return;
    }
    const Service safe = Service::Safe;
    sim_latency += delivery_latency(cluster.trace(), true, &safe).avg_us;
    evs::bench::record(evs::bench::run_name("BM_RawEvsDelivery"), cluster);
    ++rounds;
  }
  state.counters["sim_avg_latency_us"] = sim_latency / static_cast<double>(rounds);
}

void BM_VsFilteredDelivery(benchmark::State& state) {
  double sim_latency = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    VsCluster::Options opts;
    opts.num_processes = 5;
    opts.seed = 3 + rounds;
    VsCluster cluster(opts);
    if (!cluster.await_stable(30'000'000)) {
      state.SkipWithError("no stable start");
      return;
    }
    for (int i = 0; i < 100; ++i) {
      (void)cluster.node(static_cast<std::size_t>(i % 5)).send({1});
    }
    if (!cluster.await_quiesce(60'000'000)) {
      state.SkipWithError("no quiesce");
      return;
    }
    const Service safe = Service::Safe;
    sim_latency += delivery_latency(cluster.evs_trace(), true, &safe).avg_us;
    evs::bench::record(evs::bench::run_name("BM_VsFilteredDelivery"), cluster);
    ++rounds;
  }
  state.counters["sim_avg_latency_us"] = sim_latency / static_cast<double>(rounds);
}

void BM_VsAvailabilityUnderPartition(benchmark::State& state) {
  // A partition episode: with raw EVS every process keeps delivering; with
  // the VS filter the minority blocks. Report the serving fraction.
  const bool minority_exists = state.range(0) == 1;
  double serving_fraction = 0;
  double blocked_sends = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    VsCluster::Options opts;
    opts.num_processes = 5;
    opts.seed = 17 + rounds;
    VsCluster cluster(opts);
    if (!cluster.await_stable(30'000'000)) {
      state.SkipWithError("no stable start");
      return;
    }
    if (minority_exists) {
      cluster.partition({{0, 1, 2}, {3, 4}});
    } else {
      cluster.partition({{0, 1}, {2, 3}, {4}});  // nobody has a majority
    }
    if (!cluster.await_stable(30'000'000)) {
      state.SkipWithError("no stability after partition");
      return;
    }
    std::size_t serving = 0;
    std::uint64_t rejected = 0;
    for (std::size_t i = 0; i < 5; ++i) {
      if (cluster.node(i).in_primary()) ++serving;
      (void)cluster.node(i).send({0});
      rejected += cluster.node(i).stats().sends_rejected;
    }
    serving_fraction += static_cast<double>(serving) / 5.0;
    blocked_sends += static_cast<double>(rejected);
    evs::bench::record(evs::bench::run_name("BM_VsAvailabilityUnderPartition", {state.range(0)}), cluster);
    ++rounds;
  }
  state.counters["vs_serving_fraction"] = serving_fraction / static_cast<double>(rounds);
  state.counters["evs_serving_fraction"] = 1.0;  // EVS serves every component
  state.counters["rejected_sends"] = blocked_sends / static_cast<double>(rounds);
}

}  // namespace

BENCHMARK(BM_RawEvsDelivery)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VsFilteredDelivery)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VsAvailabilityUnderPartition)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

EVS_BENCH_MAIN("bench_fig7_vs_filter");
