// Live-transport cost (DESIGN.md "Transport abstraction").
//
// The same protocol stack the sim benchmarks measure, but over real
// loopback UDP via testkit::LiveCluster: ordered-delivery throughput under
// sustained load, and the raw wall-clock token rotation rate an idle ring
// sustains. Unlike every sim benchmark these numbers are wall-clock
// end-to-end — kernel syscalls, scheduler wakeups and real queueing
// included — so they are the repo's honest "what does EVS cost on a real
// socket" baseline rather than a simulator self-measurement.
//
// Both benchmarks skip (SkipWithError) when the environment provides no
// usable sockets, mirroring the `live` ctest label.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_report.hpp"

#include "testkit/live_cluster.hpp"

namespace {

using namespace evs;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Ordered (agreed) delivery throughput: how many messages per second a
/// ring moves from send to delivery-at-every-member over real sockets.
/// Producers feed the ring through send_batch in chunks: one admission pass
/// per chunk, drained as packed multi-frame datagrams at each token visit —
/// the hot path the zero-copy batching work targets. rotations_per_delivery
/// is the amortization signal: well under 1 means each token rotation moves
/// many messages instead of the pre-batching message-per-visit trickle.
void BM_LiveOrderedThroughput(benchmark::State& state) {
  const auto ring_size = static_cast<std::size_t>(state.range(0));
  constexpr int kMessages = 2'000;
  constexpr int kChunk = 64;
  const std::vector<std::uint8_t> body(64, 0x42);

  double msgs_per_sec = 0;
  double rotations_per_delivery = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    LiveCluster cluster(LiveCluster::Options{.num_processes = ring_size});
    if (!cluster.open().ok()) {
      state.SkipWithError("sockets unavailable");
      return;
    }
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("live ring failed to stabilize");
      return;
    }
    std::uint64_t tokens_before = 0;
    cluster.call(0, [&] { tokens_before = cluster.node(0).stats().tokens_handled; });
    // The timed window is send -> delivered-at-every-member (the atomic
    // delivery counter), not quiesce: settle detection polls wall-clock and
    // the ring keeps rotating idle underneath it, which would bill idle
    // rotations and poll latency to the protocol.
    const std::uint64_t target =
        cluster.total_delivered() +
        static_cast<std::uint64_t>(kMessages) * ring_size;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kMessages;) {
      const int n = std::min(kChunk, kMessages - i);
      auto r = cluster.send_batch(
          static_cast<std::size_t>(i / kChunk) % ring_size, Service::Agreed,
          std::vector<std::vector<std::uint8_t>>(static_cast<std::size_t>(n), body));
      if (r.ok()) {
        i += n;
      } else if (r.code() == Errc::backpressure) {
        // The app outran the token; yield and retry — the drain is what is
        // being measured. The whole chunk was refused, nothing partial.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      } else {
        state.SkipWithError("send failed");
        return;
      }
    }
    if (!cluster.await([&] { return cluster.total_delivered() >= target; },
                       60'000'000, 500)) {
      state.SkipWithError("live ring failed to deliver the burst");
      return;
    }
    msgs_per_sec += static_cast<double>(kMessages) / seconds_since(t0);
    std::uint64_t tokens_after = 0;
    cluster.call(0, [&] { tokens_after = cluster.node(0).stats().tokens_handled; });
    rotations_per_delivery += static_cast<double>(tokens_after - tokens_before) /
                              static_cast<double>(kMessages);
    if (!cluster.await_quiesce(60'000'000)) {
      state.SkipWithError("live ring failed to quiesce");
      return;
    }
    cluster.stop();
    evs::bench::ObsReport::instance()
        .run(evs::bench::run_name("BM_LiveOrderedThroughput", {state.range(0)}))
        .merge_from(cluster.aggregate_metrics());
    ++rounds;
  }
  state.counters["live_msgs_per_sec"] =
      msgs_per_sec / static_cast<double>(rounds);
  state.counters["live_deliveries_per_sec"] =
      msgs_per_sec * static_cast<double>(ring_size) / static_cast<double>(rounds);
  state.counters["live_rotations_per_delivery"] =
      rotations_per_delivery / static_cast<double>(rounds);
}

/// Raw token rotation on an idle live ring: the wall-clock floor under
/// every delivery guarantee. Latency percentiles come from the protocol's
/// own evs.token_rotation_us histogram (forward -> fresh return).
void BM_LiveTokenRotation(benchmark::State& state) {
  const auto ring_size = static_cast<std::size_t>(state.range(0));
  constexpr auto kWindow = std::chrono::milliseconds(500);

  double rotations_per_sec = 0;
  std::uint64_t p50 = 0, p99 = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    LiveCluster cluster(LiveCluster::Options{.num_processes = ring_size});
    if (!cluster.open().ok()) {
      state.SkipWithError("sockets unavailable");
      return;
    }
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("live ring failed to stabilize");
      return;
    }
    std::uint64_t before = 0;
    cluster.call(0, [&] { before = cluster.node(0).stats().tokens_handled; });
    const auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(kWindow);
    std::uint64_t after = 0;
    cluster.call(0, [&] { after = cluster.node(0).stats().tokens_handled; });
    rotations_per_sec += static_cast<double>(after - before) / seconds_since(t0);
    cluster.stop();
    auto agg = cluster.aggregate_metrics();
    const auto& rotation = agg.histogram("evs.token_rotation_us");
    p50 = rotation.percentile(50);
    p99 = rotation.percentile(99);
    evs::bench::ObsReport::instance()
        .run(evs::bench::run_name("BM_LiveTokenRotation", {state.range(0)}))
        .merge_from(agg);
    ++rounds;
  }
  state.counters["live_rotations_per_sec"] =
      rotations_per_sec / static_cast<double>(rounds);
  state.counters["live_rotation_p50_us"] = static_cast<double>(p50);
  state.counters["live_rotation_p99_us"] = static_cast<double>(p99);
}

BENCHMARK(BM_LiveOrderedThroughput)->Arg(2)->Arg(3)->Arg(5)->Iterations(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_LiveTokenRotation)->Arg(2)->Arg(3)->Arg(5)->Iterations(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

EVS_BENCH_MAIN("bench_udp_live")
