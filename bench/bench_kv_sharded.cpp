// Sharded KV throughput (DESIGN.md "Sharded dispatch").
//
// A YCSB-style keyed write workload over testkit::KvCluster: uniform keys,
// every write SAFE-ordered on its shard's own EVS ring, all shard clusters
// advanced in lockstep virtual time so cross-configuration comparisons are
// honest. Sweeps shard count x node count x partition schedule:
//
//   BM_KvShardedWrite/<shards>/<nodes>/<schedule>
//     schedule 0 — clean run
//     schedule 1 — Fig.6-style mid-run cut: one replica of shard 0 is
//                  isolated at the workload's midpoint and re-merged near
//                  the end; writes keep flowing through the majority side,
//                  and each shard's trace must stay spec-clean.
//
// The headline counter is ops_per_sim_sec — total acked ordered writes
// over the virtual makespan. One ring serializes everything; S rings
// order S key-disjoint streams concurrently, so throughput scales with
// the shard count (the acceptance gate for this layer is >= 3x from 1 to
// 4 shards). sim_us_per_op and blocked-write counts are reported
// alongside; each iteration's cluster metrics (kv.*, shard.*) merge into
// the obs report for BENCH_kv_sharded.json.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_report.hpp"
#include "testkit/kv_cluster.hpp"

namespace {

using namespace evs;

void BM_KvShardedWrite(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  const auto nodes = static_cast<std::size_t>(state.range(1));
  const bool partition_schedule = state.range(2) != 0;
  // Large enough that ring-serialized ordering dominates the virtual
  // makespan (the last few deliveries cost a constant couple of token
  // rotations regardless of shard count, which otherwise flattens the
  // scaling curve).
  const int kOps = 3200;

  double sim_us = 0;
  double ops = 0;
  double blocked = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    KvCluster::Options opts;
    opts.num_processes = nodes;
    opts.router.num_shards = shards;
    opts.router.replication = 3;
    opts.seed = 7000 + rounds;
    KvCluster kc(opts);
    if (!kc.await_stable(20'000'000)) {
      state.SkipWithError("shard rings never stabilized");
      return;
    }

    const SimTime start = kc.now();
    // The replica the Fig.6-style schedule isolates: the LAST replica of
    // shard 0, so the shard's writer (its first replica) stays on the
    // majority side and the write stream survives the cut.
    const std::size_t lone =
        kc.router().replicas(0).back().value - 1;
    bool cut = false, healed = false;
    int acked = 0;
    // Applied-count expectation per (shard, process): a replica cut away
    // when a write was ordered never applies it from the ring — it receives
    // the value later via state transfer, which reconciles the store
    // without touching the applied counter — so it is excluded from that
    // write's finish line.
    std::vector<std::vector<std::uint64_t>> expect_applied(
        shards, std::vector<std::uint64_t>(nodes, 0));
    for (int i = 0; i < kOps; ++i) {
      if (partition_schedule && !cut && i == kOps / 2) {
        // Fig.6-style event on shard 0's network only: one replica is
        // isolated; everyone else merges into the surviving component.
        std::vector<std::size_t> rest;
        for (std::size_t p = 0; p < kc.size(); ++p) {
          if (p != lone) rest.push_back(p);
        }
        kc.partition_shard(0, {{lone}, rest});
        cut = true;
      }
      if (partition_schedule && cut && !healed && i == kOps - kOps / 8) {
        kc.heal_shard(0);
        healed = true;
      }
      // Uniform keys over a keyspace much larger than the shard count, so
      // the per-shard load is balanced (a handful of hot keys would skew
      // one shard into the makespan).
      const std::string key = "ycsb-" + std::to_string(i);
      const std::string value(64, static_cast<char>('a' + i % 26));
      const shard::ShardId s = kc.router().shard_of_key(key);
      // Writes go to the shard's current in-primary writer; while a cut
      // shard regathers there may briefly be none — that wall is part of
      // the measured schedule, not an error.
      bool done = false;
      for (int attempt = 0; attempt < 400 && !done; ++attempt) {
        apps::KvShardedNode* w = kc.writer(s);
        if (w == nullptr) {
          kc.run_for(2'000);
          continue;
        }
        const Status st = w->put(key, value);
        if (st.ok()) {
          done = true;
        } else if (st.code() == Errc::invalid_argument) {
          state.SkipWithError("write routed to a non-replica");
          return;
        } else {
          // Backpressure, a mid-gather ring, a not-yet-primary replica —
          // all transient walls the schedule creates; wait them out.
          blocked += 1;
          kc.run_for(2'000);
        }
      }
      if (!done) {
        state.SkipWithError("write never admitted");
        return;
      }
      ++acked;
      for (const ProcessId p : kc.router().replicas(s)) {
        // Under the partition schedule the isolated replica is out of the
        // finish line for its shard entirely: writes in flight when the
        // cut lands end in a transitional configuration it is not part of,
        // and catch-up hands them to its store without bumping applied.
        const bool severed =
            partition_schedule && s == 0 && p.value - 1 == lone;
        if (!severed) expect_applied[s][p.value - 1] += 1;
      }
    }
    if (partition_schedule && !healed) kc.heal_shard(0);
    // The finish line is every replica having APPLIED every acked write —
    // measured on a fine step, so the makespan is the slowest shard's
    // drain, not the coarse quiesce slicing.
    const bool drained = kc.await(
        [&] {
          for (shard::ShardId s = 0; s < kc.num_shards(); ++s) {
            for (std::size_t p = 0; p < nodes; ++p) {
              if (expect_applied[s][p] == 0) continue;
              const shard::KvStore* st = kc.agent(p).store(s);
              if (st == nullptr ||
                  st->stats().applied < expect_applied[s][p]) {
                return false;
              }
            }
          }
          return true;
        },
        60'000'000);
    if (!drained) {
      state.SkipWithError("shard rings never drained");
      return;
    }
    const double elapsed = static_cast<double>(kc.now() - start);
    // Outside the measured window: settle and run the per-shard checkers.
    if (!kc.await_quiesce(60'000'000)) {
      state.SkipWithError("shard rings never quiesced");
      return;
    }
    for (shard::ShardId s = 0; s < kc.num_shards(); ++s) {
      // Every shard must agree exactly — including the cut shard, whose
      // isolated replica state-transfers its missed writes after the
      // re-merge (await_quiesce waits for the catch-up to finish).
      if (!kc.replicas_agree(s)) {
        state.SkipWithError("replicas diverged");
        return;
      }
    }
    if (!kc.check_report().empty()) {
      state.SkipWithError("spec violation in a shard trace");
      return;
    }

    sim_us += elapsed;
    ops += acked;
    const std::string run = evs::bench::run_name(
        "BM_KvShardedWrite",
        {state.range(0), state.range(1), state.range(2)});
    evs::bench::record(run, kc);
    // Derivable throughput for the committed JSON: acked ops and virtual
    // makespan ride along as counters next to the kv.* instruments.
    auto& reg = evs::bench::ObsReport::instance().run(run);
    reg.counter("bench.acked_ops").inc(static_cast<std::uint64_t>(acked));
    reg.counter("bench.sim_elapsed_us")
        .inc(static_cast<std::uint64_t>(elapsed));
    ++rounds;
  }
  state.counters["ops_per_sim_sec"] = ops / (sim_us / 1e6);
  state.counters["sim_us_per_op"] = sim_us / ops;
  state.counters["blocked_retries"] = blocked / static_cast<double>(rounds);
}

}  // namespace

BENCHMARK(BM_KvShardedWrite)
    // Shard sweep at fixed node count, clean: the scaling headline.
    ->Args({1, 5, 0})
    ->Args({2, 5, 0})
    ->Args({4, 5, 0})
    ->Args({8, 5, 0})
    // Node sweep at fixed shard count.
    ->Args({4, 7, 0})
    ->Args({4, 9, 0})
    // Fig.6-style partition schedule across the shard sweep.
    ->Args({1, 5, 1})
    ->Args({4, 5, 1})
    ->Unit(benchmark::kMillisecond);

EVS_BENCH_MAIN("bench_kv_sharded");
