# Smoke-run one bench binary on a tiny workload and validate its obs JSON
# output. Invoked by the bench_smoke.<name> ctest targets:
#   cmake -DBENCH=<binary> -DFILTER=<regex> -DOUT=<json> -DCHECK=<checker>
#         -P run_bench_smoke.cmake
# --benchmark_min_time=0.001 runs each selected benchmark for exactly one
# iteration, so the smoke pass stays fast while still exercising the full
# cluster + exporter code path.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env EVS_OBS_OUT=${OUT}
          ${BENCH} --benchmark_filter=${FILTER} --benchmark_min_time=0.001
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} failed (exit ${bench_rc})")
endif()
if(NOT EXISTS ${OUT})
  message(FATAL_ERROR "${BENCH} did not write ${OUT}")
endif()
execute_process(COMMAND ${CHECK} ${OUT} RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "obs_json_check rejected ${OUT} (exit ${check_rc})")
endif()
