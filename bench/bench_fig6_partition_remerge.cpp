// E2 — The Figure 6 scenario as a benchmark (DESIGN.md §5).
//
// {p,q,r} partitions: p isolated, q+r merge with {s,t}. Measures the
// configuration-change machinery end to end: how long each side takes to
// install its transitional + new regular configuration, how many messages
// are delivered in the transitional configuration, and how many are
// discarded as causally suspect, as the pre-partition traffic level varies.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "testkit/cluster.hpp"
#include "testkit/metrics.hpp"

namespace {

using namespace evs;

void BM_Fig6Scenario(benchmark::State& state) {
  const int traffic = static_cast<int>(state.range(0));

  double reconfig_us = 0;
  double trans_deliveries = 0;
  double discarded = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Cluster::Options opts;
    opts.num_processes = 5;
    opts.seed = 100 + rounds;
    Cluster cluster(opts);
    // p=0,q=1,r=2 | s=3,t=4 — the paper's starting point.
    cluster.partition({{0, 1, 2}, {3, 4}});
    if (!cluster.await_stable(20'000'000)) {
      state.SkipWithError("no stable start");
      return;
    }
    for (int i = 0; i < traffic; ++i) {
      cluster.node(static_cast<std::size_t>(i % 3))
          .send(i % 2 == 0 ? Service::Safe : Service::Agreed,
                std::vector<std::uint8_t>(16, 0));
    }
    cluster.run_for(500);

    // The Figure 6 event: p isolated; q,r merge with s,t.
    const SimTime change_at = cluster.now();
    cluster.partition({{0}, {1, 2, 3, 4}});
    const bool settled = cluster.await(
        [&] {
          return cluster.node(1u).state() == EvsNode::State::Operational &&
                 cluster.node(1u).config().members.size() == 4;
        },
        60'000'000);
    if (!settled || !cluster.await_quiesce(60'000'000)) {
      state.SkipWithError("figure-6 reconfiguration did not settle");
      return;
    }
    reconfig_us += static_cast<double>(cluster.now() - change_at);
    std::uint64_t trans = 0;
    std::uint64_t disc = 0;
    for (std::size_t i = 0; i < 5; ++i) {
      trans += cluster.node(i).stats().delivered_transitional;
      disc += cluster.node(i).stats().discarded;
    }
    trans_deliveries += static_cast<double>(trans);
    discarded += static_cast<double>(disc);
    evs::bench::record(evs::bench::run_name("BM_Fig6Scenario", {state.range(0)}), cluster);
    ++rounds;
  }
  state.counters["sim_reconfig_us"] = reconfig_us / static_cast<double>(rounds);
  state.counters["transitional_deliveries"] =
      trans_deliveries / static_cast<double>(rounds);
  state.counters["discarded_msgs"] = discarded / static_cast<double>(rounds);
}

}  // namespace

BENCHMARK(BM_Fig6Scenario)->Arg(0)->Arg(20)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

EVS_BENCH_MAIN("bench_fig6_partition_remerge");
