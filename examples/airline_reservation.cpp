// Airline reservations across a network partition (Section 1 of the paper).
//
// Four booking offices sell a 100-seat flight. The network splits into two
// halves; each half keeps selling under the proportional-quota heuristic.
// After the merge the per-office ledgers reconcile and the example reports
// whether the flight was overbooked.
//
// Run with an aggressive risk factor to see the airline's gamble go wrong:
//   ./build/examples/airline_reservation 1.5
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "apps/airline.hpp"
#include "testkit/cluster.hpp"

using namespace evs;
using apps::AirlineAgent;

int main(int argc, char** argv) {
  const double risk = argc > 1 ? std::atof(argv[1]) : 1.0;
  constexpr std::size_t kOffices = 4;
  constexpr std::uint32_t kCapacity = 100;

  Cluster cluster(Cluster::Options{.num_processes = kOffices});
  std::vector<std::unique_ptr<AirlineAgent>> offices;
  for (std::size_t i = 0; i < kOffices; ++i) {
    offices.push_back(std::make_unique<AirlineAgent>(
        cluster.node(i), AirlineAgent::Options{kCapacity, kOffices, risk}));
  }
  cluster.await_stable(3'000'000);
  std::printf("flight capacity %u seats, %zu offices, risk factor %.2f\n",
              kCapacity, kOffices, risk);

  // Normal connected selling.
  for (int i = 0; i < 30; ++i) {
    offices[static_cast<std::size_t>(i) % kOffices]->request_sale(1);
  }
  cluster.await_quiesce(3'000'000);
  std::printf("connected phase: sold %u, remaining %u\n", offices[0]->sold(),
              offices[0]->remaining());

  // Partition: two halves keep selling under the quota heuristic.
  std::printf("network partitions into {office1,office2} | {office3,office4}\n");
  cluster.partition({{0, 1}, {2, 3}});
  cluster.await_stable(3'000'000);
  std::printf("  left half allowance:  %u seats\n", offices[0]->partition_allowance());
  std::printf("  right half allowance: %u seats\n", offices[2]->partition_allowance());
  for (int i = 0; i < 60; ++i) {
    offices[0]->request_sale(1);
    offices[2]->request_sale(1);
  }
  cluster.await_quiesce(3'000'000);
  std::printf("  left half history: sold %u (%u rejected)\n", offices[0]->sold(),
              offices[0]->stats().rejected);
  std::printf("  right half history: sold %u (%u rejected)\n", offices[2]->sold(),
              offices[2]->stats().rejected);

  // Merge and reconcile.
  std::printf("network remerges; ledgers reconcile\n");
  cluster.heal();
  cluster.await_quiesce(6'000'000);
  std::printf("final: sold %u of %u — %s\n", offices[0]->sold(), kCapacity,
              offices[0]->overbooked() ? "OVERBOOKED" : "within capacity");
  for (const auto& [office, count] : offices[0]->counters()) {
    std::printf("  %s sold %u\n", to_string(office).c_str(), count);
  }

  const std::string report = cluster.check_report();
  std::printf("specification check: %s\n", report.empty() ? "conformant" : report.c_str());
  return report.empty() ? 0 : 1;
}
