// Virtual synchrony on top of EVS (Section 5 of the paper).
//
// Five processes run the VS filter. The minority side of a partition
// blocks (the Isis primary-partition model), the majority continues as the
// primary component; merges are split into per-process join views and a
// rejoining process comes back under a new identity (Section 5.2).
//
// Pass "dlv" to use dynamic linear voting, which keeps a majority OF THE
// PREVIOUS PRIMARY primary even when it is a minority of the universe:
//   ./build/examples/vs_primary dlv
#include <cstdio>
#include <cstring>

#include "testkit/vs_cluster.hpp"

using namespace evs;

namespace {

void show_modes(VsCluster& cluster, const char* when) {
  std::printf("%s\n", when);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const VsNode& node = cluster.node(i);
    std::printf("  P%zu: %-10s", i + 1, to_string(node.mode()));
    if (node.in_primary()) {
      std::printf(" view g^%llu (%zu members, identity inc %u)",
                  static_cast<unsigned long long>(node.view().id),
                  node.view().members.size(),
                  vs_incarnation_of(node.vs_identity()));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  VsCluster::Options opts;
  opts.num_processes = 5;
  const bool dlv = argc > 1 && std::strcmp(argv[1], "dlv") == 0;
  opts.policy = dlv ? VsNode::Policy::DynamicLinearVoting
                    : VsNode::Policy::StaticMajority;
  std::printf("primary-component policy: %s\n",
              dlv ? "dynamic linear voting" : "static majority");

  VsCluster cluster(opts);
  cluster.await_stable(6'000'000);
  show_modes(cluster, "== bootstrap: everyone in the primary ==");

  auto sent = cluster.node(0u).send({'a'});
  cluster.await_quiesce(6'000'000);
  std::printf("message %s delivered in view g^%llu at all members\n",
              sent ? to_string(*sent).c_str() : "(rejected)",
              static_cast<unsigned long long>(cluster.sink(1u).deliveries.back().view_id));

  std::printf("\npartition {P1,P2,P3} | {P4,P5}\n");
  cluster.partition({{0, 1, 2}, {3, 4}});
  cluster.await_stable(6'000'000);
  show_modes(cluster, "== majority continues, minority blocks ==");
  if (!cluster.node(3u).send({'x'}).ok()) {
    std::printf("P4's send was rejected: blocked processes do not accept messages\n");
  }

  if (dlv) {
    std::printf("\nfurther partition {P1,P2} | {P3} | {P4,P5}\n");
    cluster.partition({{0, 1}, {2}, {3, 4}});
    cluster.await_stable(6'000'000);
    show_modes(cluster,
               "== {P1,P2} is a minority of 5 but a majority of the previous "
               "primary {P1,P2,P3}: still primary under DLV ==");
  }

  std::printf("\nheal: everyone rejoins\n");
  cluster.heal();
  cluster.await_stable(8'000'000);
  show_modes(cluster, "== merged: rejoiners carry fresh incarnations ==");

  const std::string report = cluster.check_report();
  std::printf("\nEVS + VS legality check: %s\n",
              report.empty() ? "conformant" : report.c_str());
  return report.empty() ? 0 : 1;
}
