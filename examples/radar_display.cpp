// Radar sensor fusion through a partition (Section 1).
//
// Three sensor/display stations track a target. The best sensor becomes
// unreachable; the display degrades to the best *connected* sensor instead
// of going dark, and snaps back after the merge.
//
//   ./build/examples/radar_display
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/radar.hpp"
#include "testkit/cluster.hpp"

using namespace evs;
using apps::RadarAgent;

namespace {

void show(const char* when, const RadarAgent& display) {
  auto best = display.best();
  if (best.has_value()) {
    std::printf("%-28s best track from %s: (%.1f, %.1f) quality %.2f\n", when,
                to_string(best->sensor).c_str(), best->x, best->y, best->quality);
  } else {
    std::printf("%-28s no track available\n", when);
  }
}

}  // namespace

int main() {
  Cluster cluster(Cluster::Options{.num_processes = 3});
  std::vector<std::unique_ptr<RadarAgent>> stations;
  for (std::size_t i = 0; i < 3; ++i) {
    stations.push_back(std::make_unique<RadarAgent>(cluster.node(i)));
  }
  cluster.await_stable(3'000'000);

  // Station 2 has the best view of the target.
  stations[0]->publish(10.0, 20.0, 0.55);
  stations[1]->publish(10.2, 20.1, 0.92);
  stations[2]->publish(9.8, 19.9, 0.31);
  cluster.await_quiesce(3'000'000);
  show("connected:", *stations[0]);

  std::printf("partition: the best sensor (P2) is cut off\n");
  cluster.partition({{0, 2}, {1}});
  cluster.await_stable(3'000'000);
  stations[0]->publish(10.5, 20.6, 0.55);
  stations[2]->publish(10.4, 20.5, 0.33);
  cluster.await_quiesce(3'000'000);
  show("partitioned:", *stations[0]);
  std::printf("  (degraded quality, but live data — better than nothing)\n");

  std::printf("network heals\n");
  cluster.heal();
  cluster.await_stable(4'000'000);
  stations[1]->publish(11.0, 21.0, 0.93);
  cluster.await_quiesce(3'000'000);
  show("remerged:", *stations[0]);

  const std::string report = cluster.check_report();
  std::printf("specification check: %s\n", report.empty() ? "conformant" : report.c_str());
  return report.empty() ? 0 : 1;
}
