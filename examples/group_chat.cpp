// Process groups over the broadcast domain: a two-room chat that keeps
// working through a partition (the "process group paradigm" the paper's
// introduction builds on).
//
//   ./build/examples/group_chat
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "evs/groups.hpp"
#include "testkit/cluster.hpp"

using namespace evs;

namespace {

constexpr GroupId kOps = 1;
constexpr GroupId kDev = 2;

std::vector<std::uint8_t> text(const std::string& s) { return {s.begin(), s.end()}; }

void print_view(const char* who, const GroupNode::GroupView& v) {
  std::printf("  %s sees group %u = {", who, v.group);
  for (std::size_t i = 0; i < v.members.size(); ++i) {
    std::printf("%s%s", i ? "," : "", to_string(v.members[i]).c_str());
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  Cluster cluster(Cluster::Options{.num_processes = 4});
  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (std::size_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<GroupNode>(cluster.node(i)));
  }
  nodes[0]->set_on_deliver([](const GroupNode::GroupDelivery& d) {
    std::printf("  P1 <- group %u from %s: %.*s\n", d.group,
                to_string(d.id.sender).c_str(), static_cast<int>(d.payload.size()),
                reinterpret_cast<const char*>(d.payload.data()));
  });
  nodes[0]->set_on_view_change(
      [](const GroupNode::GroupView& v) { print_view("P1", v); });
  cluster.await_stable(3'000'000);

  std::printf("== join: P1,P2,P3 in #ops; P1,P4 in #dev ==\n");
  nodes[0]->join(kOps);
  nodes[1]->join(kOps);
  nodes[2]->join(kOps);
  nodes[0]->join(kDev);
  nodes[3]->join(kDev);
  cluster.await_quiesce(3'000'000);

  std::printf("== multicast to each room ==\n");
  nodes[1]->send(kOps, Service::Agreed, text("deploy finished"));
  nodes[3]->send(kDev, Service::Agreed, text("tests green"));
  cluster.await_quiesce(3'000'000);

  std::printf("== partition {P1,P2} | {P3,P4}: rooms shrink to reachable members ==\n");
  cluster.partition({{0, 1}, {2, 3}});
  cluster.await_quiesce(3'000'000);
  nodes[1]->send(kOps, Service::Agreed, text("still here"));
  cluster.await_quiesce(3'000'000);

  std::printf("== heal: rooms restore ==\n");
  cluster.heal();
  cluster.await_quiesce(6'000'000);

  const std::string report = cluster.check_report();
  std::printf("specification check: %s\n", report.empty() ? "conformant" : report.c_str());
  return report.empty() ? 0 : 1;
}
