// scenario_runner: drive the protocol from a tiny scenario script and dump
// the checked trace — a debugging/exploration tool for the library.
//
// Usage:
//   ./build/examples/scenario_runner [-n N] [-seed S] [-loss P] [-trace] CMD...
//
// Commands (executed in order):
//   run <ms>                advance simulated time
//   send <idx> <svc> [k]    queue k (default 1) messages at process idx;
//                           svc = causal | agreed | safe
//   part <g1|g2|...>        partition, groups are comma-separated indexes
//   heal                    merge all components
//   crash <idx>             crash a process
//   recover <idx>           recover a crashed process
//   stable                  run until every component stabilizes
//   quiesce                 run until traffic drains
//
// Example — the Figure 6 scenario:
//   scenario_runner -n 5 part 0,1,2|3,4 stable send 0 agreed 3 quiesce \
//                   part 0|1,2,3,4 quiesce -trace
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "evs/evs.hpp"
#include "testkit/cluster.hpp"

using namespace evs;

namespace {

int fail(const char* msg) {
  std::fprintf(stderr, "scenario_runner: %s\n", msg);
  return 2;
}

std::vector<std::vector<std::size_t>> parse_groups(const std::string& spec) {
  std::vector<std::vector<std::size_t>> groups(1);
  std::size_t value = 0;
  bool have = false;
  for (char c : spec) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      have = true;
    } else if (c == ',' || c == '|') {
      if (have) groups.back().push_back(value);
      value = 0;
      have = false;
      if (c == '|') groups.emplace_back();
    }
  }
  if (have) groups.back().push_back(value);
  return groups;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 3;
  std::uint64_t seed = 1;
  double loss = 0.0;
  bool dump_trace = false;

  std::vector<std::string> args(argv + 1, argv + argc);
  std::size_t i = 0;
  // Leading options.
  while (i < args.size() && args[i][0] == '-') {
    if (args[i] == "-n" && i + 1 < args.size()) {
      n = std::strtoul(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "-seed" && i + 1 < args.size()) {
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "-loss" && i + 1 < args.size()) {
      loss = std::atof(args[++i].c_str());
    } else if (args[i] == "-trace") {
      dump_trace = true;
    } else {
      return fail(("unknown option " + args[i]).c_str());
    }
    ++i;
  }

  Cluster::Options opts;
  opts.num_processes = n;
  opts.seed = seed;
  opts.net.loss_probability = loss;
  Cluster cluster(opts);
  std::printf("# %zu processes, seed %llu, loss %.3f\n", n,
              static_cast<unsigned long long>(seed), loss);

  for (; i < args.size(); ++i) {
    const std::string& cmd = args[i];
    if (cmd == "-trace") {
      dump_trace = true;
    } else if (cmd == "run" && i + 1 < args.size()) {
      const SimTime ms = std::strtoull(args[++i].c_str(), nullptr, 10);
      cluster.run_for(ms * 1000);
      std::printf("# t=%llu us after run %llu ms\n",
                  static_cast<unsigned long long>(cluster.now()),
                  static_cast<unsigned long long>(ms));
    } else if (cmd == "send" && i + 2 < args.size()) {
      const std::size_t idx = std::strtoul(args[++i].c_str(), nullptr, 10);
      const std::string svc = args[++i];
      int count = 1;
      if (i + 1 < args.size() && std::isdigit(args[i + 1][0])) {
        count = std::atoi(args[++i].c_str());
      }
      if (idx >= n) return fail("send: index out of range");
      const Service service = svc == "safe"     ? Service::Safe
                              : svc == "causal" ? Service::Causal
                                                : Service::Agreed;
      for (int k = 0; k < count; ++k) {
        cluster.node(idx).send(service, {static_cast<std::uint8_t>(k)});
      }
      std::printf("# queued %d %s message(s) at P%zu\n", count, svc.c_str(), idx + 1);
    } else if (cmd == "part" && i + 1 < args.size()) {
      cluster.partition(parse_groups(args[++i]));
      std::printf("# partition %s\n", args[i].c_str());
    } else if (cmd == "heal") {
      cluster.heal();
      std::printf("# heal\n");
    } else if (cmd == "crash" && i + 1 < args.size()) {
      const std::size_t idx = std::strtoul(args[++i].c_str(), nullptr, 10);
      if (idx >= n) return fail("crash: index out of range");
      cluster.crash(cluster.pid(idx));
      std::printf("# crash P%zu\n", idx + 1);
    } else if (cmd == "recover" && i + 1 < args.size()) {
      const std::size_t idx = std::strtoul(args[++i].c_str(), nullptr, 10);
      if (idx >= n) return fail("recover: index out of range");
      cluster.recover(cluster.pid(idx));
      std::printf("# recover P%zu\n", idx + 1);
    } else if (cmd == "stable") {
      std::printf("# stable: %s\n", cluster.await_stable() ? "ok" : "TIMEOUT");
    } else if (cmd == "quiesce") {
      std::printf("# quiesce: %s\n", cluster.await_quiesce() ? "ok" : "TIMEOUT");
    } else {
      return fail(("unknown command " + cmd).c_str());
    }
  }

  std::printf("# final configurations:\n");
  for (std::size_t p = 0; p < n; ++p) {
    if (!cluster.node(p).running()) {
      std::printf("#   P%zu: down\n", p + 1);
      continue;
    }
    std::printf("#   P%zu: %s (%llu delivered)\n", p + 1,
                to_string(cluster.node(p).config()).c_str(),
                static_cast<unsigned long long>(cluster.node(p).stats().delivered));
  }
  if (dump_trace) {
    std::printf("%s", cluster.trace().dump().c_str());
  }
  const std::string report = cluster.check_report();
  std::printf("# specification check: %s\n",
              report.empty() ? "conformant" : report.c_str());
  return report.empty() ? 0 : 1;
}
