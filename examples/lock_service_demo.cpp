// Distributed lock service on the virtual synchrony filter: mutual
// exclusion with view-driven failure recovery — the classic Isis-style
// application pattern, here running on EVS + the Section 5 filter.
//
//   ./build/examples/lock_service_demo
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/lock_service.hpp"
#include "testkit/vs_cluster.hpp"

using namespace evs;
using apps::LockService;

namespace {

constexpr apps::LockId kLease = 7;

void show_holder(VsCluster& cluster, std::vector<std::unique_ptr<LockService>>& locks) {
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (!cluster.node(i).in_primary()) continue;
    auto holder = locks[i]->holder(kLease);
    std::printf("  holder (as seen by P%zu): %s, queue length %zu\n", i + 1,
                holder ? to_string(vs_base_pid(*holder)).c_str() : "(none)",
                locks[i]->queue_length(kLease));
    return;
  }
  std::printf("  no primary component exists\n");
}

}  // namespace

int main() {
  VsCluster cluster(VsCluster::Options{.num_processes = 5});
  std::vector<std::unique_ptr<LockService>> locks;
  for (std::size_t i = 0; i < 5; ++i) {
    locks.push_back(std::make_unique<LockService>(cluster.node(i)));
    const std::size_t me = i;
    locks[i]->set_grant_handler([me](apps::LockId l) {
      std::printf("  -> P%zu granted lock %u\n", me + 1, l);
    });
  }
  cluster.await_stable(6'000'000);

  std::printf("== P1, P2, P3 contend for the lease ==\n");
  locks[0]->acquire(kLease);
  locks[1]->acquire(kLease);
  locks[2]->acquire(kLease);
  cluster.await_quiesce(6'000'000);
  show_holder(cluster, locks);

  std::printf("== the holder crashes; the view change revokes its lock ==\n");
  cluster.crash(cluster.pid(0));
  cluster.await_stable(6'000'000);
  cluster.await_quiesce(6'000'000);
  show_holder(cluster, locks);

  std::printf("== the new holder is partitioned into a minority ==\n");
  cluster.partition({{2, 3, 4}, {1}});
  cluster.await_stable(6'000'000);
  cluster.await_quiesce(6'000'000);
  show_holder(cluster, locks);
  std::printf("  (P2's lock evaporated with its primary membership; P3 holds)\n");

  std::printf("== heal; the minority rejoins renamed, mutual exclusion holds ==\n");
  cluster.heal();
  cluster.recover(cluster.pid(0));
  locks[0] = std::make_unique<LockService>(cluster.node(0u));
  cluster.await_stable(8'000'000);
  cluster.await_quiesce(8'000'000);
  show_holder(cluster, locks);

  const std::string report = cluster.check_report();
  std::printf("EVS + VS legality check: %s\n",
              report.empty() ? "conformant" : report.c_str());
  return report.empty() ? 0 : 1;
}
