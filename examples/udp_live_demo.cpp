// Live quickstart: the same partition/re-merge story as quickstart.cpp, but
// off the simulator — three processes on real loopback UDP sockets,
// multiplexed onto the sharded executor (min(cores, 3) worker threads),
// wall-clock timers, and an address-level drop filter standing in for the
// cut wire.
//
// Build & run:  ./build/examples/udp_live_demo
// Exits 77 ("skip") when the environment provides no usable sockets.
#include <cstdio>

#include "testkit/live_cluster.hpp"

using namespace evs;

int main() {
  LiveCluster cluster(LiveCluster::Options{.num_processes = 3});

  // No sockets (sandboxed build machine): skip, don't fail.
  if (Status st = cluster.open(); !st.ok()) {
    std::printf("skipping: %s\n", st.message().c_str());
    return 77;
  }

  std::printf("== boot: three UDP nodes on 127.0.0.1 merge into one ring ==\n");
  if (!cluster.await_stable(10'000'000)) {
    std::printf("live ring failed to form\n");
    return 1;
  }
  for (std::size_t i = 0; i < 3; ++i) {
    const auto s = cluster.sample(i);
    std::printf("  node %zu: port %u, %s\n", i, cluster.transport(i).port(),
                to_string(s.config).c_str());
  }

  std::printf("== multicast over real sockets ==\n");
  cluster.send(0, Service::Causal, {'c'}).value();
  cluster.send(1, Service::Agreed, {'a'}).value();
  cluster.send(2, Service::Safe, {'s'}).value();
  cluster.await_quiesce(10'000'000);

  std::printf("== partition {P1} | {P2,P3} via port-level drop filters ==\n");
  cluster.partition({{0}, {1, 2}});
  cluster.await_stable(10'000'000);
  cluster.send(0, Service::Safe, {'x'}).value();  // singleton still delivers
  cluster.send(1, Service::Safe, {'y'}).value();  // majority side too
  cluster.await_quiesce(10'000'000);

  std::printf("== heal: the filters drop and the rings merge back ==\n");
  cluster.heal();
  cluster.await_stable(15'000'000);
  cluster.send(2, Service::Safe, {'z'}).value();
  cluster.await_quiesce(10'000'000);
  cluster.stop();

  // The identical machine-check the simulator runs, over a live trace.
  const std::string report = cluster.check_report();
  std::printf("== specification check: %s ==\n",
              report.empty() ? "conformant" : report.c_str());
  std::printf("   (delivered %llu messages total across 3 nodes)\n",
              static_cast<unsigned long long>(cluster.total_delivered()));
  return report.empty() ? 0 : 1;
}
