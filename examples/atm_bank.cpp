// ATM banking with offline authorization and delayed posting (Section 1).
//
// Four ATMs replicate an account database. While partitioned, withdrawals
// are authorized against a per-transaction offline limit without a balance
// check and are posted only after the network reconnects — so cumulative
// withdrawals on both sides can overdraw the account, which the bank
// accepts as the price of availability.
//
//   ./build/examples/atm_bank
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/atm.hpp"
#include "testkit/cluster.hpp"

using namespace evs;
using apps::AtmAgent;

int main() {
  constexpr std::size_t kAtms = 4;
  Cluster cluster(Cluster::Options{.num_processes = kAtms});
  std::vector<std::unique_ptr<AtmAgent>> atms;
  for (std::size_t i = 0; i < kAtms; ++i) {
    atms.push_back(std::make_unique<AtmAgent>(cluster.node(i),
                                              cluster.store(cluster.pid(i)),
                                              AtmAgent::Options{kAtms, 200}));
  }
  cluster.await_stable(3'000'000);

  std::printf("opening account 42 with balance 500\n");
  atms[0]->open_account(42, 500);
  cluster.await_quiesce(3'000'000);

  std::printf("connected withdrawal of 100: checked against the balance\n");
  atms[1]->withdraw(42, 100);
  cluster.await_quiesce(3'000'000);
  std::printf("  balance everywhere: %lld\n",
              static_cast<long long>(atms[0]->balance(42)));

  std::printf("network partitions into {atm1,atm2} | {atm3,atm4}\n");
  cluster.partition({{0, 1}, {2, 3}});
  cluster.await_stable(3'000'000);

  std::printf("offline withdrawals: authorized by the 200 limit, not the balance\n");
  atms[0]->withdraw(42, 200);
  atms[2]->withdraw(42, 200);
  auto rejected = atms[3]->withdraw(42, 350);  // above the offline limit
  cluster.await_quiesce(3'000'000);
  std::printf("  left sees balance %lld, right sees %lld (consistent but incomplete)\n",
              static_cast<long long>(atms[0]->balance(42)),
              static_cast<long long>(atms[2]->balance(42)));
  std::printf("  350 withdrawal %s\n",
              atms[3]->outcomes().at(rejected) ? "authorized" : "DENIED (over limit)");
  std::printf("  unposted transactions waiting at atm1: %zu\n",
              atms[0]->unposted_count());

  std::printf("network reconnects; delayed transactions post\n");
  cluster.heal();
  cluster.await_quiesce(8'000'000);
  std::printf("  final balance everywhere: %lld%s\n",
              static_cast<long long>(atms[0]->balance(42)),
              atms[0]->overdrawn(42) ? "  (overdrawn: the accepted offline risk)"
                                     : "");
  std::printf("  unposted left anywhere: %zu\n", atms[0]->unposted_count());

  const std::string report = cluster.check_report();
  std::printf("specification check: %s\n", report.empty() ? "conformant" : report.c_str());
  return report.empty() ? 0 : 1;
}
