// Quickstart: three processes form a configuration, multicast messages with
// the three delivery guarantees, survive a partition and a remerge.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "testkit/cluster.hpp"

using namespace evs;

namespace {

void print_config(const char* who, const Configuration& c) {
  std::printf("  %s installed %s\n", who, to_string(c).c_str());
}

}  // namespace

int main() {
  // A Cluster owns the simulated network, one stable store per process and
  // the global specification trace. Three processes, default timing.
  Cluster cluster(Cluster::Options{.num_processes = 3});

  // Watch node 0's configuration changes and deliveries.
  cluster.node(0u).set_on_config_change(
      [](const Configuration& c) { print_config("P1", c); });
  cluster.node(0u).set_on_deliver([](const EvsNode::Delivery& d) {
    std::printf("  P1 delivered %s [%s] in %s\n", to_string(d.id).c_str(),
                to_string(d.service), to_string(d.config.id).c_str());
  });

  std::printf("== boot: three singletons merge into one configuration ==\n");
  cluster.await_stable(2'000'000);

  std::printf("== multicast: causal, agreed and safe delivery ==\n");
  cluster.node(1u).send(Service::Causal, {'c'});
  cluster.node(1u).send(Service::Agreed, {'a'});
  cluster.node(2u).send(Service::Safe, {'s'});
  cluster.await_quiesce(2'000'000);

  std::printf("== partition {P1} | {P2,P3}: both sides keep operating ==\n");
  cluster.partition({{0}, {1, 2}});
  cluster.await_stable(2'000'000);
  cluster.node(0u).send(Service::Safe, {'x'});  // singleton still delivers
  cluster.node(1u).send(Service::Safe, {'y'});  // majority side too
  cluster.await_quiesce(2'000'000);

  std::printf("== remerge ==\n");
  cluster.heal();
  cluster.await_stable(3'000'000);
  cluster.node(2u).send(Service::Safe, {'z'});
  cluster.await_quiesce(2'000'000);

  // Every run can be machine-checked against the paper's Specifications
  // 1.1-7.2.
  const std::string report = cluster.check_report();
  std::printf("== specification check: %s ==\n",
              report.empty() ? "conformant" : report.c_str());
  return report.empty() ? 0 : 1;
}
