// Span-style episode tracing for the protocol's recovery machinery.
//
// A Span is a named interval of *virtual* time at one process: a membership
// gather, a recovery episode (with one child span per paper step), a token
// rotation, a configuration install. Spans nest via parent ids, carry
// string attributes (ring ids, member counts, step outcomes) and are
// exported either as a chrome://tracing-compatible JSON array or as a
// compact text timeline.
//
// Instrumentation reads only virtual time and protocol state, so span
// streams are deterministic per (seed, FaultPlan): the sink assigns ids
// sequentially and never consults the wall clock. When no sink is attached
// (SpanSink* == nullptr at the instrumentation site) the cost is one
// pointer test — observability off means zero overhead.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace evs::obs {

class JsonWriter;

using SpanId = std::uint64_t;  ///< 0 = "no span"

struct Span {
  SpanId id{0};
  SpanId parent{0};  ///< 0 = root
  std::string name;
  ProcessId process;
  SimTime start_us{0};
  SimTime end_us{0};
  bool closed{false};
  std::vector<std::pair<std::string, std::string>> attrs;

  SimTime duration_us() const { return closed ? end_us - start_us : 0; }
};

class SpanSink {
 public:
  struct Options {
    /// Hard cap on retained spans; beyond it begin() drops (returns 0) and
    /// counts, so a runaway scenario degrades to counting instead of
    /// exhausting memory.
    std::size_t max_spans{1u << 20};
  };

  SpanSink() : SpanSink(Options{}) {}
  explicit SpanSink(Options options) : options_(options) {}

  /// Open a span. Returns its id, or 0 if the sink is at capacity.
  SpanId begin(ProcessId process, std::string_view name, SimTime now,
               SpanId parent = 0);

  /// Close a span. No-op for id 0 or an already-closed span.
  void end(SpanId id, SimTime now);

  /// Attach a key/value attribute. No-op for id 0.
  void attr(SpanId id, std::string_view key, std::string_view value);

  /// A zero-duration marker span (opened and closed at `now`).
  SpanId instant(ProcessId process, std::string_view name, SimTime now,
                 SpanId parent = 0);

  const std::vector<Span>& spans() const { return spans_; }
  const Span* find(SpanId id) const;
  std::size_t open_count() const { return open_count_; }
  std::uint64_t dropped() const { return dropped_; }

  /// chrome://tracing "trace events" JSON array (complete events, ph="X";
  /// still-open spans are emitted with dur=0 and an "open" arg).
  void write_chrome_trace(JsonWriter& w) const;
  std::string chrome_trace_json() const;

  /// Compact per-line timeline, sorted by (start, id), indented by nesting
  /// depth. For humans and for golden-ish test assertions.
  std::string timeline() const;

 private:
  Options options_;
  std::vector<Span> spans_;  ///< id == index + 1
  std::size_t open_count_{0};
  std::uint64_t dropped_{0};
};

}  // namespace evs::obs
