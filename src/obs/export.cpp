#include "obs/export.hpp"

namespace evs::obs {

void write_metrics(JsonWriter& w, const MetricsRegistry& registry) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : registry.counters()) w.kv(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : registry.gauges()) {
    w.kv(name, static_cast<std::int64_t>(g.value()));
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : registry.histograms()) {
    w.key(name).begin_object();
    w.kv("count", h.count());
    w.kv("sum", h.sum());
    w.kv("min", h.min());
    w.kv("max", h.max());
    w.kv("p50", h.percentile(50));
    w.kv("p99", h.percentile(99));
    w.key("buckets").begin_object();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) != 0) w.kv(std::to_string(i), h.bucket(i));
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string metrics_json(const MetricsRegistry& registry) {
  JsonWriter w;
  write_metrics(w, registry);
  return w.take();
}

// --------------------------------------------------------------------------
// validation

namespace {

Status shape_error(const std::string& where, const std::string& what) {
  return Status::error(Errc::decode_error, where + ": " + what);
}

Status check_int_members(const JsonValue& obj, const std::string& where) {
  for (const auto& [name, value] : obj.object) {
    if (!value.is_number()) {
      return shape_error(where, "member '" + name + "' is not a number");
    }
  }
  return Status::ok_status();
}

Status check_histogram(const JsonValue& h, const std::string& where) {
  if (!h.is_object()) return shape_error(where, "histogram is not an object");
  for (const char* field : {"count", "sum", "min", "max", "p50", "p99"}) {
    const JsonValue* v = h.find(field);
    if (v == nullptr || !v->is_number()) {
      return shape_error(where, std::string("missing numeric '") + field + "'");
    }
  }
  const JsonValue* buckets = h.find("buckets");
  if (buckets == nullptr || !buckets->is_object()) {
    return shape_error(where, "missing 'buckets' object");
  }
  return check_int_members(*buckets, where + ".buckets");
}

/// The bounded-memory surface: every EVS-driven metrics set must carry the
/// flow-control gauges and backpressure counter (EvsNode pre-creates them at
/// construction), so a refactor that silently drops them fails validation —
/// and with it bench_smoke and the obs tests under ctest.
Status check_memory_metrics(const JsonValue& metrics, const std::string& where) {
  const JsonValue* gauges = metrics.find("gauges");
  const JsonValue* counters = metrics.find("counters");
  for (const char* g :
       {"ordering.store_bytes", "ordering.store_msgs", "evs.pending_sends"}) {
    if (gauges == nullptr || gauges->find(g) == nullptr) {
      return shape_error(where, std::string("missing memory gauge '") + g + "'");
    }
  }
  if (counters == nullptr || counters->find("evs.backpressure_rejections") == nullptr) {
    return shape_error(where, "missing counter 'evs.backpressure_rejections'");
  }
  return Status::ok_status();
}

/// The datagram-batching surface: EvsNode pre-creates the packing and
/// piggyback counters plus the delivery-batch-size histogram, so any
/// EVS-driven metrics set missing them means the zero-copy hot path lost
/// its instrumentation — fail validation (this is what keeps
/// BENCH_udp_live.json honest about batching actually engaging).
Status check_batching_metrics(const JsonValue& metrics, const std::string& where) {
  const JsonValue* counters = metrics.find("counters");
  for (const char* c : {"net.datagrams_packed", "ordering.piggybacked_msgs"}) {
    if (counters == nullptr || counters->find(c) == nullptr) {
      return shape_error(where, std::string("missing batching counter '") + c + "'");
    }
  }
  const JsonValue* hists = metrics.find("histograms");
  if (hists == nullptr || hists->find("evs.deliver_batch_size") == nullptr) {
    return shape_error(where, "missing histogram 'evs.deliver_batch_size'");
  }
  return Status::ok_status();
}

/// The sharded-KV surface: every apps::KvShardedNode pre-creates the kv.*
/// counters — including the state-transfer / anti-entropy family its
/// per-shard TransferEngines bind — the shard.local_shards gauge and the
/// put-batch and catch-up histograms, so a metrics set that routed KV
/// traffic (marker: kv.puts) but lost any of them means the dispatch or
/// transfer layer's instrumentation regressed — fail validation (this
/// keeps BENCH_kv_sharded.json and BENCH_kv_transfer.json honest).
Status check_kv_metrics(const JsonValue& metrics, const std::string& where) {
  const JsonValue* counters = metrics.find("counters");
  for (const char* c :
       {"kv.gets", "kv.applied", "kv.rejected_not_replica",
        "kv.rejected_backpressure", "kv.reads_blocked", "kv.writes_blocked",
        "kv.rejected_decode", "kv.transfer.sessions", "kv.transfer.completed",
        "kv.transfer.aborted", "kv.transfer.retries",
        "kv.transfer.chunks_sent", "kv.transfer.chunks_applied",
        "kv.transfer.bytes_sent", "kv.transfer.bytes_applied",
        "kv.transfer.chunk_crc_rejects", "kv.transfer.claims",
        "kv.reads_catching_up", "kv.stale_reads", "kv.antientropy_rounds",
        "kv.antientropy_repairs"}) {
    if (counters == nullptr || counters->find(c) == nullptr) {
      return shape_error(where, std::string("missing kv counter '") + c + "'");
    }
  }
  const JsonValue* gauges = metrics.find("gauges");
  if (gauges == nullptr || gauges->find("shard.local_shards") == nullptr) {
    return shape_error(where, "missing gauge 'shard.local_shards'");
  }
  const JsonValue* hists = metrics.find("histograms");
  for (const char* h : {"kv.put_batch_size", "kv.transfer.catch_up_us"}) {
    if (hists == nullptr || hists->find(h) == nullptr) {
      return shape_error(where, std::string("missing histogram '") + h + "'");
    }
  }
  return Status::ok_status();
}

/// The sharded-executor surface: an Executor pre-creates the worker gauges
/// and the inbox-depth / poll-batch histograms alongside the polls counter,
/// so a metrics set whose run was executor-driven (marker: the
/// net.executor.polls counter) missing any of them means the scheduling
/// instrumentation regressed — fail validation (this keeps
/// BENCH_executor_scale.json honest about nodes-per-worker and batching).
Status check_executor_metrics(const JsonValue& metrics, const std::string& where) {
  const JsonValue* counters = metrics.find("counters");
  if (counters == nullptr || counters->find("net.executor.wakeups") == nullptr) {
    return shape_error(where, "missing counter 'net.executor.wakeups'");
  }
  const JsonValue* gauges = metrics.find("gauges");
  for (const char* g : {"net.executor.workers", "net.executor.nodes_per_worker"}) {
    if (gauges == nullptr || gauges->find(g) == nullptr) {
      return shape_error(where, std::string("missing executor gauge '") + g + "'");
    }
  }
  const JsonValue* hists = metrics.find("histograms");
  for (const char* h : {"net.executor.inbox_depth", "net.executor.poll_batch"}) {
    if (hists == nullptr || hists->find(h) == nullptr) {
      return shape_error(where, std::string("missing executor histogram '") + h + "'");
    }
  }
  return Status::ok_status();
}

/// The crash-consistency surface: every StableStore pre-creates the
/// "storage.*" counters, and every cluster aggregate folds its stores in,
/// so a snapshot (or a bench run that drove EVS nodes) missing them means
/// the fallible-storage instrumentation was dropped — fail validation.
Status check_storage_metrics(const JsonValue& metrics, const std::string& where) {
  const JsonValue* counters = metrics.find("counters");
  for (const char* c :
       {"storage.writes", "storage.bytes", "storage.write_failures",
        "storage.torn_records", "storage.crc_failures", "storage.repairs"}) {
    if (counters == nullptr || counters->find(c) == nullptr) {
      return shape_error(where, std::string("missing storage counter '") + c + "'");
    }
  }
  return Status::ok_status();
}

Status check_schema_header(const JsonValue& v, const std::string& expect_schema) {
  const JsonValue* schema = v.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->string != expect_schema) {
    return shape_error(expect_schema, "missing or wrong 'schema' tag");
  }
  const JsonValue* version = v.find("version");
  if (version == nullptr || !version->is_number() || version->number != 1) {
    return shape_error(expect_schema, "missing or unsupported 'version'");
  }
  return Status::ok_status();
}

}  // namespace

Status validate_metrics_json(const JsonValue& v) {
  if (!v.is_object()) return shape_error("metrics", "not an object");
  for (const char* section : {"counters", "gauges"}) {
    const JsonValue* s = v.find(section);
    if (s == nullptr || !s->is_object()) {
      return shape_error("metrics", std::string("missing '") + section + "' object");
    }
    if (Status st = check_int_members(*s, section); !st.ok()) return st;
  }
  const JsonValue* hists = v.find("histograms");
  if (hists == nullptr || !hists->is_object()) {
    return shape_error("metrics", "missing 'histograms' object");
  }
  for (const auto& [name, h] : hists->object) {
    if (Status st = check_histogram(h, "histograms." + name); !st.ok()) return st;
  }
  return Status::ok_status();
}

Status validate_snapshot_json(const JsonValue& v) {
  if (!v.is_object()) return shape_error("snapshot", "not an object");
  if (Status st = check_schema_header(v, "evs.obs.snapshot"); !st.ok()) return st;
  const JsonValue* time = v.find("time_us");
  if (time == nullptr || !time->is_number()) {
    return shape_error("snapshot", "missing numeric 'time_us'");
  }
  const JsonValue* nodes = v.find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    return shape_error("snapshot", "missing 'nodes' array");
  }
  for (const JsonValue& node : nodes->array) {
    if (!node.is_object()) return shape_error("snapshot.nodes", "entry not an object");
    const JsonValue* pid = node.find("pid");
    if (pid == nullptr || !pid->is_number()) {
      return shape_error("snapshot.nodes", "missing numeric 'pid'");
    }
    const JsonValue* state = node.find("state");
    if (state == nullptr || !state->is_string()) {
      return shape_error("snapshot.nodes", "missing string 'state'");
    }
    if (const JsonValue* metrics = node.find("metrics")) {
      if (Status st = validate_metrics_json(*metrics); !st.ok()) return st;
    }
  }
  for (const char* section : {"network", "aggregate"}) {
    const JsonValue* m = v.find(section);
    if (m == nullptr) return shape_error("snapshot", std::string("missing '") + section + "'");
    if (Status st = validate_metrics_json(*m); !st.ok()) return st;
  }
  // The aggregate folds in every node's registry, so the memory-bound
  // instruments must always be present there — and every store's registry,
  // so the storage instruments must be too.
  if (Status st = check_memory_metrics(*v.find("aggregate"), "snapshot.aggregate");
      !st.ok()) {
    return st;
  }
  if (Status st = check_storage_metrics(*v.find("aggregate"), "snapshot.aggregate");
      !st.ok()) {
    return st;
  }
  if (Status st = check_batching_metrics(*v.find("aggregate"), "snapshot.aggregate");
      !st.ok()) {
    return st;
  }
  // Aggregates from executor-driven runs (live clusters) fold the executor
  // registry in; sim aggregates have no net.executor.* marker and skip this.
  if (const JsonValue* agg_counters = v.find("aggregate")->find("counters");
      agg_counters != nullptr &&
      agg_counters->find("net.executor.polls") != nullptr) {
    if (Status st =
            check_executor_metrics(*v.find("aggregate"), "snapshot.aggregate");
        !st.ok()) {
      return st;
    }
  }
  const JsonValue* faults = v.find("faults");
  if (faults == nullptr || !faults->is_object()) {
    return shape_error("snapshot", "missing 'faults' object");
  }
  return check_int_members(*faults, "faults");
}

Status validate_report_json(const JsonValue& v) {
  if (!v.is_object()) return shape_error("report", "not an object");
  if (Status st = check_schema_header(v, "evs.obs.report"); !st.ok()) return st;
  const JsonValue* source = v.find("source");
  if (source == nullptr || !source->is_string() || source->string.empty()) {
    return shape_error("report", "missing string 'source'");
  }
  const JsonValue* runs = v.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    return shape_error("report", "missing 'runs' array");
  }
  for (const JsonValue& run : runs->array) {
    if (!run.is_object()) return shape_error("report.runs", "entry not an object");
    const JsonValue* name = run.find("name");
    if (name == nullptr || !name->is_string() || name->string.empty()) {
      return shape_error("report.runs", "missing string 'name'");
    }
    const JsonValue* metrics = run.find("metrics");
    if (metrics == nullptr) return shape_error("report.runs", "missing 'metrics'");
    if (Status st = validate_metrics_json(*metrics); !st.ok()) return st;
    // Runs that exercised EVS nodes (marker: the always-created evs.sent
    // counter) must carry the memory-bound and storage instruments too.
    const JsonValue* counters = metrics->find("counters");
    if (counters != nullptr && counters->find("evs.sent") != nullptr) {
      if (Status st = check_memory_metrics(*metrics, "report." + name->string);
          !st.ok()) {
        return st;
      }
      if (Status st = check_storage_metrics(*metrics, "report." + name->string);
          !st.ok()) {
        return st;
      }
      if (Status st = check_batching_metrics(*metrics, "report." + name->string);
          !st.ok()) {
        return st;
      }
    }
    // Runs that routed sharded-KV traffic must carry the full kv.* surface.
    if (counters != nullptr && counters->find("kv.puts") != nullptr) {
      if (Status st = check_kv_metrics(*metrics, "report." + name->string);
          !st.ok()) {
        return st;
      }
    }
    // Runs driven by the sharded executor must carry its full surface.
    if (counters != nullptr && counters->find("net.executor.polls") != nullptr) {
      if (Status st = check_executor_metrics(*metrics, "report." + name->string);
          !st.ok()) {
        return st;
      }
    }
  }
  return Status::ok_status();
}

Status validate_document(const std::string& text) {
  const auto parsed = JsonValue::parse(text);
  if (!parsed.has_value()) {
    return Status::error(Errc::decode_error, "not valid JSON");
  }
  const JsonValue* schema = parsed->find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return shape_error("document", "missing 'schema' tag");
  }
  if (schema->string == "evs.obs.snapshot") return validate_snapshot_json(*parsed);
  if (schema->string == "evs.obs.report") return validate_report_json(*parsed);
  return shape_error("document", "unknown schema '" + schema->string + "'");
}

}  // namespace evs::obs
