#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace evs::obs {

std::size_t Histogram::bucket_of(std::uint64_t sample) {
  return static_cast<std::size_t>(std::bit_width(sample));
}

std::uint64_t Histogram::bucket_upper(std::size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~0ull;
  return (1ull << bucket) - 1;
}

void Histogram::record(std::uint64_t sample) {
  ++buckets_[bucket_of(sample)];
  ++count_;
  sum_ += sample;
  min_ = std::min(min_, sample);
  max_ = std::max(max_, sample);
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the percentile sample, 1-based, rounding up (nearest-rank).
  const auto rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_));
  const std::uint64_t target = std::max<std::uint64_t>(1, rank);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c == nullptr ? 0 : c->value();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].value_ += c.value_;
  for (const auto& [name, g] : other.gauges_) gauges_[name].value_ += g.value_;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge_from(h);
}

}  // namespace evs::obs
