#include "obs/span.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace evs::obs {

SpanId SpanSink::begin(ProcessId process, std::string_view name, SimTime now,
                       SpanId parent) {
  if (spans_.size() >= options_.max_spans) {
    ++dropped_;
    return 0;
  }
  Span s;
  s.id = spans_.size() + 1;
  s.parent = parent;
  s.name = std::string(name);
  s.process = process;
  s.start_us = now;
  spans_.push_back(std::move(s));
  ++open_count_;
  return spans_.back().id;
}

void SpanSink::end(SpanId id, SimTime now) {
  if (id == 0 || id > spans_.size()) return;
  Span& s = spans_[id - 1];
  if (s.closed) return;
  s.end_us = std::max(now, s.start_us);
  s.closed = true;
  --open_count_;
}

void SpanSink::attr(SpanId id, std::string_view key, std::string_view value) {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(std::string(key), std::string(value));
}

SpanId SpanSink::instant(ProcessId process, std::string_view name, SimTime now,
                         SpanId parent) {
  const SpanId id = begin(process, name, now, parent);
  end(id, now);
  return id;
}

const Span* SpanSink::find(SpanId id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

void SpanSink::write_chrome_trace(JsonWriter& w) const {
  w.begin_array();
  for (const Span& s : spans_) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("cat", "evs");
    w.kv("ph", "X");
    w.kv("ts", s.start_us);
    w.kv("dur", s.duration_us());
    w.kv("pid", static_cast<std::uint64_t>(s.process.value));
    w.kv("tid", static_cast<std::uint64_t>(s.process.value));
    w.key("args").begin_object();
    w.kv("span_id", s.id);
    if (s.parent != 0) w.kv("parent", s.parent);
    if (!s.closed) w.kv("open", true);
    for (const auto& [key, value] : s.attrs) w.kv(key, value);
    w.end_object();
    w.end_object();
  }
  w.end_array();
}

std::string SpanSink::chrome_trace_json() const {
  JsonWriter w;
  write_chrome_trace(w);
  return w.take();
}

std::string SpanSink::timeline() const {
  // Sort by (start, id); id order breaks ties so parents precede children
  // opened at the same instant.
  std::vector<const Span*> order;
  order.reserve(spans_.size());
  for (const Span& s : spans_) order.push_back(&s);
  std::sort(order.begin(), order.end(), [](const Span* a, const Span* b) {
    if (a->start_us != b->start_us) return a->start_us < b->start_us;
    return a->id < b->id;
  });

  std::string out;
  for (const Span* s : order) {
    std::size_t depth = 0;
    for (const Span* p = s; p->parent != 0; p = &spans_[p->parent - 1]) ++depth;
    out += "[" + std::to_string(s->start_us) + "us";
    if (s->closed) {
      out += " +" + std::to_string(s->duration_us()) + "us";
    } else {
      out += " open";
    }
    out += "] " + to_string(s->process) + " ";
    out.append(2 * depth, ' ');
    out += s->name;
    for (const auto& [key, value] : s->attrs) {
      out += " " + key + "=" + value;
    }
    out += "\n";
  }
  return out;
}

}  // namespace evs::obs
