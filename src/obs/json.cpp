#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace evs::obs {

// --------------------------------------------------------------------------
// writer

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes the "key": prefix, no comma
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  EVS_ASSERT_MSG(!first_.empty() && !pending_key_, "unbalanced end_object");
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  EVS_ASSERT_MSG(!first_.empty() && !pending_key_, "unbalanced end_array");
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  EVS_ASSERT_MSG(!pending_key_, "key() twice without a value");
  comma();
  out_ += '"';
  escape_into(out_, k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  escape_into(out_, v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

void JsonWriter::escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// --------------------------------------------------------------------------
// parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool consume_lit(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (eof()) return false;
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.type = JsonValue::Type::String;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::Bool;
        out.boolean = true;
        return consume_lit("true");
      case 'f':
        out.type = JsonValue::Type::Bool;
        out.boolean = false;
        return consume_lit("false");
      case 'n':
        out.type = JsonValue::Type::Null;
        return consume_lit("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::Object;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue member;
      if (!parse_value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::Array;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (!eof()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (eof()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // The exporters only emit \u00XX control escapes; decode the
            // BMP code point as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string text(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return false;
    out.type = JsonValue::Type::Number;
    return true;
  }

  std::string_view text_;
  std::size_t pos_{0};
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view name) const {
  for (const auto& [key, value] : object) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace evs::obs
