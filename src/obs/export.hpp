// JSON exporters and schema checks for the observability layer.
//
// Everything that leaves the process as JSON goes through here: metrics
// registries, span sinks, and the two document schemas built on top of
// them —
//   * "evs.obs.snapshot" v1: one cluster's state at an instant (per-node
//     metrics, network metrics, cluster aggregate, fault counters). Emitted
//     by testkit::Cluster for the liveness watchdog and the obs tests.
//   * "evs.obs.report" v1: one benchmark binary's output (a list of named
//     runs, each carrying a metrics block). Emitted by every bench_* binary
//     when EVS_OBS_OUT is set; checked by the bench_smoke ctest targets.
//
// The validators are the same code for tests and tooling, so an exporter
// regression fails tier-1 instead of silently corrupting BENCH_*.json.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace evs::obs {

class SpanSink;

/// {"counters":{..},"gauges":{..},"histograms":{..}} — names sorted, integer
/// values, histogram buckets sparse ("bucket index" -> count).
void write_metrics(JsonWriter& w, const MetricsRegistry& registry);
std::string metrics_json(const MetricsRegistry& registry);

/// Strict shape check for a write_metrics() document.
Status validate_metrics_json(const JsonValue& v);

/// Shape check for a full "evs.obs.snapshot" document.
Status validate_snapshot_json(const JsonValue& v);

/// Shape check for a full "evs.obs.report" document.
Status validate_report_json(const JsonValue& v);

/// Parse + dispatch on "schema": accepts snapshot and report documents.
Status validate_document(const std::string& text);

}  // namespace evs::obs
