// Minimal JSON support for the observability layer: a streaming writer for
// the exporters and a strict little parser for round-trip tests and the
// bench-report schema check. Not a general-purpose JSON library — just the
// slice the obs layer needs, with deterministic output (integer counters
// stay integers; doubles use a fixed "%.6g" rendering).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace evs::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next member (only inside an object).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key(k) + value(v) in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

  static void escape_into(std::string& out, std::string_view s);

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_;  ///< per open scope: no member written yet
  bool pending_key_{false};
};

/// Parsed JSON document. Object members keep source order (so a round-trip
/// test can assert ordering) but also support by-name lookup.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type{Type::Null};
  bool boolean{false};
  double number{0};
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }

  /// First member with this name, or nullptr (objects only).
  const JsonValue* find(std::string_view name) const;

  /// Strict parse of a complete document; nullopt on any syntax error or
  /// trailing garbage.
  static std::optional<JsonValue> parse(std::string_view text);
};

}  // namespace evs::obs
