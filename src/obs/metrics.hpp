// Typed metrics for the protocol stack: counters, gauges and log2-bucket
// histograms behind one registry per EvsNode (the network and the harness
// own registries of their own, and a testkit::Cluster aggregates them all).
//
// Design constraints, in order:
//   * Determinism: a metrics snapshot is a pure function of protocol state —
//     instruments never read wall-clock time or allocate nondeterministically,
//     and every enumeration walks a sorted map, so a fixed (seed, FaultPlan)
//     run serializes to byte-identical JSON every time.
//   * Hot-path cost: instrumented code caches Instrument& handles once (map
//     nodes are pointer-stable), so an increment is one add on a u64 — no
//     hashing, no locking (the simulation is single-threaded by design).
//   * Aggregation: merge_from() folds another registry in name-by-name,
//     which is how per-node registries roll up into a cluster view.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace evs::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  std::int64_t value_{0};
};

/// Histogram with fixed log2 buckets: bucket i holds samples whose value
/// needs exactly i significant bits (bucket 0 is the value 0, bucket 1 is 1,
/// bucket 2 is 2..3, bucket 3 is 4..7, ...). 65 buckets cover all of u64.
/// Fixed buckets keep recording O(1), merging lossless and serialization
/// deterministic; the integer sum preserves the exact mean.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  static std::size_t bucket_of(std::uint64_t sample);
  /// Largest value the bucket covers (inclusive).
  static std::uint64_t bucket_upper(std::size_t bucket);

  void record(std::uint64_t sample);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

  /// Upper bound of the bucket containing the p-th percentile (p in [0,100]).
  /// A bucketed estimate, not an exact order statistic.
  std::uint64_t percentile(double p) const;

  void merge_from(const Histogram& other);

 private:
  std::uint64_t buckets_[kBuckets]{};
  std::uint64_t count_{0};
  std::uint64_t sum_{0};
  std::uint64_t min_{~0ull};
  std::uint64_t max_{0};
};

class MetricsRegistry {
 public:
  /// Find-or-create. The returned reference stays valid for the registry's
  /// lifetime (node-based map), so callers cache it at wiring time.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// Read-only lookup; nullptr when the instrument was never created.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Convenience for tests and exporters: 0 when absent.
  std::uint64_t counter_value(const std::string& name) const;

  /// Fold `other` in: counters and histogram buckets add, gauges add too
  /// (aggregated gauges are sums — e.g. pending send-queue depths).
  void merge_from(const MetricsRegistry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Sorted (map-order) enumeration, for exporters.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace evs::obs
