// Simulated stable storage.
//
// The paper's failure model lets a process "recover after an arbitrary
// amount of time with its stable storage intact" and with the same
// identifier. StableStore reproduces that contract: it is owned by the
// simulation harness (not by the process), so a crash destroys all volatile
// process state while the store survives for the recovered incarnation.
//
// Writes are synchronous: once put() returns, the value survives any crash.
// The protocol relies on this when it persists received messages and the
// obligation set *before* acknowledging in recovery step 5 (see
// evs/recovery.cpp) — that ordering is what makes safe delivery meaningful
// across crashes (Specification 7.1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace evs {

class StableStore {
 public:
  using Blob = std::vector<std::uint8_t>;

  void put(const std::string& key, Blob value) {
    ++writes_;
    bytes_written_ += value.size();
    data_[key] = std::move(value);
  }

  std::optional<Blob> get(const std::string& key) const {
    auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }

  bool contains(const std::string& key) const { return data_.count(key) > 0; }

  void erase(const std::string& key) { data_.erase(key); }

  /// Remove every key with the given prefix (used to garbage-collect the
  /// message log of a superseded configuration).
  void erase_prefix(const std::string& prefix);

  /// Keys with the given prefix, sorted.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  void clear() { data_.clear(); }

  std::size_t key_count() const { return data_.size(); }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::map<std::string, Blob> data_;
  std::uint64_t writes_{0};
  std::uint64_t bytes_written_{0};
};

}  // namespace evs
