// Simulated stable storage: a crash-consistent, checksummed record log.
//
// The paper's failure model lets a process "recover after an arbitrary
// amount of time with its stable storage intact" and with the same
// identifier. StableStore reproduces that contract — it is owned by the
// simulation harness (not by the process), so a crash destroys all volatile
// process state while the store survives for the recovered incarnation —
// but no longer pretends the disk is perfect.
//
// Durable truth is an append-only log of records, each wrapped in the same
// [u32 length][u32 CRC-32][body] frame as the wire protocol
// (wire::seal_frame / wire::open_frame). A record body is one mutation:
// put, erase, erase_prefix or clear. The key/value map every reader sees is
// the volatile replay of that log; crash() discards it and open() rebuilds
// it by validating the whole log:
//
//   * a torn tail (the final record persisted only as a prefix, or its
//     header promises more bytes than exist) is truncated — the write never
//     completed, so the mutation is simply absent;
//   * a mid-log record failing its CRC (bit rot, or an in-flight write that
//     was corrupted before the crash) is quarantined: skipped, counted, and
//     removed from the durable log so the damage cannot compound;
//   * everything that validates replays in order.
//
// The write path is fallible. put()/erase()/erase_prefix()/clear() return
// Status: a fault hook (driven by the FaultPlan/FaultInjector engine in
// src/sim/faults.*) or an armed write budget (the crash-point scheduler in
// testkit::Cluster) can make any append fail cleanly (Errc::storage_io,
// nothing persisted), tear (a prefix reaches the log, the error returns),
// or rot in flight (garbage reaches the log, the error returns). After a
// torn or corrupted append the store is *wedged* — the simulated device
// never acknowledged, so no further write is accepted until open() has
// re-validated the log. The protocol layers above treat any failed persist
// as grounds to abort the action it was meant to enable (recovery step 5.c:
// never acknowledge what is not on disk; see evs/node.cpp).
//
// Compaction: when the log grows well past the live data it encodes, it is
// rewritten from the replayed map. Compaction is internal bookkeeping — it
// is exempt from fault injection and does not advance the write budget, so
// crash-point enumeration stays stable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace evs {

class StableStore {
 public:
  using Blob = std::vector<std::uint8_t>;

  /// Verdict for one record append, injected by the fault hook (see
  /// FaultInjector::apply_storage in src/sim/faults.hpp).
  struct WriteFault {
    enum class Kind : std::uint8_t {
      None,  ///< the append succeeds
      Fail,  ///< transient I/O error: nothing persisted, store stays usable
      Torn,  ///< a prefix of the framed record persists; store wedges
      Rot,   ///< the framed record persists with a flipped byte; store wedges
    };
    Kind kind{Kind::None};
    std::size_t keep_bytes{0};   ///< Torn: bytes of the framed record kept
    std::size_t rot_offset{0};   ///< Rot: offset into the framed record
    std::uint8_t rot_xor{0x01};  ///< Rot: xor mask applied (must be nonzero)
  };
  using FaultHook = std::function<WriteFault(std::size_t record_bytes)>;

  /// How the write that exhausts an armed budget lands on the log.
  enum class TailFault : std::uint8_t { Clean, Torn, Corrupt };

  /// What open() found and repaired while validating the log.
  struct OpenReport {
    std::size_t records_kept{0};
    std::size_t torn_truncated{0};      ///< incomplete tail records dropped
    std::size_t corrupt_quarantined{0}; ///< CRC/decode-failing records skipped
    bool repaired() const { return torn_truncated + corrupt_quarantined > 0; }
  };

  StableStore();

  // --- fallible mutation API (each call appends one record to the log) ---
  [[nodiscard]] Status put(const std::string& key, Blob value);
  [[nodiscard]] Status erase(const std::string& key);
  /// Remove every key with the given prefix (used to garbage-collect the
  /// message log of a superseded configuration). One log record regardless
  /// of how many keys match.
  [[nodiscard]] Status erase_prefix(const std::string& prefix);
  [[nodiscard]] Status clear();

  // --- reads (the replayed view; unaffected by injected write faults that
  // were reported back to the caller, because a failed mutation is never
  // applied to the map either) ---
  std::optional<Blob> get(const std::string& key) const;
  bool contains(const std::string& key) const { return data_.count(key) > 0; }
  /// Keys with the given prefix, sorted.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;
  std::size_t key_count() const { return data_.size(); }

  // --- crash / recovery (driven by the harness) ---
  /// The process died: the volatile view vanishes, the durable log stays.
  void crash();
  /// Recovery-time validation: replay the log, truncate a torn tail,
  /// quarantine corrupt records, rebuild the view, un-wedge the store.
  OpenReport open();
  /// The report of the most recent open() (all-zero before the first).
  const OpenReport& last_open_report() const { return last_open_; }

  // --- fault injection & crash-point scheduling ---
  /// Consulted once per record append (compaction excluded). Replaces any
  /// previous hook; pass nullptr to remove.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  /// Arm a one-shot budget: the nth subsequent append (1-based, compaction
  /// excluded) lands as `tail` — Clean persists fully, Torn keeps a strict
  /// prefix, Corrupt persists with a flipped byte (Torn/Corrupt also return
  /// storage_io and wedge the store). `on_trip` fires right after, from
  /// inside the mutation call; it must not re-enter the store.
  void arm_write_budget(std::uint64_t nth, TailFault tail,
                        std::function<void()> on_trip);
  void disarm_write_budget();
  bool write_budget_armed() const { return budget_remaining_ > 0; }

  /// True after a torn/corrupted append until the next open().
  bool wedged() const { return wedged_; }

  // --- accounting ---
  /// Successful record appends / payload bytes durably written (the legacy
  /// counters, now backed by the storage.* instruments below).
  std::uint64_t writes() const;
  std::uint64_t bytes_written() const;
  /// Every record append attempted, including failed/torn/corrupted ones:
  /// the coordinate system of the crash-point sweep.
  std::uint64_t appends_attempted() const { return appends_attempted_; }
  std::size_t log_bytes() const { return log_.size(); }

  /// The store's own instruments (storage.writes, storage.bytes,
  /// storage.write_failures, storage.torn_records, storage.crc_failures,
  /// storage.repairs), merged into harness snapshots and reports.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // --- test hooks: deliberate damage to the durable log ---
  /// Tear (halve) or corrupt (flip a byte of) the last record in the log.
  /// No-op on an empty log.
  void damage_tail(TailFault v);
  /// Flip one byte of the raw log at `offset` (silent bit rot).
  void rot_log_byte(std::size_t offset, std::uint8_t mask = 0x01);

 private:
  enum class Op : std::uint8_t { Put = 1, Erase = 2, ErasePrefix = 3, Clear = 4 };

  /// Encode+frame one mutation record.
  static Blob make_record(Op op, const std::string& key, const Blob* value);
  /// Append one framed record subject to the fault hook and write budget;
  /// applies `apply` to the map only when the record landed intact.
  Status append_record(Blob framed, std::size_t payload_bytes,
                       const std::function<void()>& apply);
  /// Decode and apply one validated record body to `map`; false = malformed.
  static bool replay_into(std::map<std::string, Blob>& map,
                          std::span<const std::uint8_t> body);
  void maybe_compact();

  std::map<std::string, Blob> data_;  ///< volatile replayed view
  std::vector<std::uint8_t> log_;     ///< durable framed-record log
  bool wedged_{false};

  FaultHook fault_hook_;
  std::uint64_t budget_remaining_{0};  ///< 0 = disarmed
  TailFault budget_tail_{TailFault::Clean};
  std::function<void()> budget_trip_;

  std::uint64_t appends_attempted_{0};
  OpenReport last_open_;

  obs::MetricsRegistry metrics_;
  obs::Counter& met_writes_;
  obs::Counter& met_bytes_;
  obs::Counter& met_write_failures_;
  obs::Counter& met_torn_records_;
  obs::Counter& met_crc_failures_;
  obs::Counter& met_repairs_;
};

}  // namespace evs
