#include "storage/stable_store.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

constexpr std::size_t kFrameHeader = 8;  // [u32 length][u32 crc]

/// Compact once the log passes this size AND exceeds kCompactFactor times
/// the (estimated) framed size of the live map. Both thresholds are needed:
/// the first keeps tiny stores from churning, the second makes compaction a
/// function of garbage ratio, not absolute size.
constexpr std::size_t kCompactMinBytes = 64u * 1024;
constexpr std::size_t kCompactFactor = 3;

std::uint32_t frame_length_at(const std::vector<std::uint8_t>& log, std::size_t pos) {
  return static_cast<std::uint32_t>(log[pos]) |
         (static_cast<std::uint32_t>(log[pos + 1]) << 8) |
         (static_cast<std::uint32_t>(log[pos + 2]) << 16) |
         (static_cast<std::uint32_t>(log[pos + 3]) << 24);
}

}  // namespace

StableStore::StableStore()
    : met_writes_(metrics_.counter("storage.writes")),
      met_bytes_(metrics_.counter("storage.bytes")),
      met_write_failures_(metrics_.counter("storage.write_failures")),
      met_torn_records_(metrics_.counter("storage.torn_records")),
      met_crc_failures_(metrics_.counter("storage.crc_failures")),
      met_repairs_(metrics_.counter("storage.repairs")) {}

std::uint64_t StableStore::writes() const { return met_writes_.value(); }
std::uint64_t StableStore::bytes_written() const { return met_bytes_.value(); }

// --------------------------------------------------------------------------
// record encoding

StableStore::Blob StableStore::make_record(Op op, const std::string& key,
                                           const Blob* value) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  if (op != Op::Clear) w.str(key);
  if (op == Op::Put) w.bytes(*value);
  auto framed = wire::seal_frame(w.take());
  EVS_ASSERT_MSG(framed.ok(), "stable-store record exceeds the frame limit");
  return std::move(*framed);
}

bool StableStore::replay_into(std::map<std::string, Blob>& map,
                              std::span<const std::uint8_t> body) {
  wire::Reader r(body);
  const std::uint8_t op = r.u8();
  switch (static_cast<Op>(op)) {
    case Op::Put: {
      std::string key = r.str();
      Blob value = r.bytes();
      if (!r.done()) return false;
      map[std::move(key)] = std::move(value);
      return true;
    }
    case Op::Erase: {
      std::string key = r.str();
      if (!r.done()) return false;
      map.erase(key);
      return true;
    }
    case Op::ErasePrefix: {
      std::string prefix = r.str();
      if (!r.done()) return false;
      auto it = map.lower_bound(prefix);
      while (it != map.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
        it = map.erase(it);
      }
      return true;
    }
    case Op::Clear:
      if (!r.done()) return false;
      map.clear();
      return true;
  }
  return false;
}

// --------------------------------------------------------------------------
// write path

Status StableStore::append_record(Blob framed, std::size_t payload_bytes,
                                  const std::function<void()>& apply) {
  ++appends_attempted_;
  if (wedged_) {
    met_write_failures_.inc();
    return Status::error(Errc::storage_io,
                         "store wedged by a torn/corrupt write; open() required");
  }

  WriteFault fault;
  bool tripped = false;
  if (budget_remaining_ > 0) {
    if (--budget_remaining_ == 0) {
      tripped = true;
      switch (budget_tail_) {
        case TailFault::Clean:
          break;  // the write lands; the crash fires right after
        case TailFault::Torn:
          fault.kind = WriteFault::Kind::Torn;
          fault.keep_bytes = framed.size() / 2;
          break;
        case TailFault::Corrupt:
          fault.kind = WriteFault::Kind::Rot;
          // Flip a body byte (never the header), so the record reads as a
          // well-framed entry whose CRC check fails at open().
          fault.rot_offset = kFrameHeader + (framed.size() - kFrameHeader) / 2;
          break;
      }
    }
  } else if (fault_hook_) {
    fault = fault_hook_(framed.size());
  }

  Status result;
  switch (fault.kind) {
    case WriteFault::Kind::None:
      log_.insert(log_.end(), framed.begin(), framed.end());
      apply();
      met_writes_.inc();
      met_bytes_.inc(payload_bytes);
      maybe_compact();
      break;
    case WriteFault::Kind::Fail:
      // Transient EIO: the device rejected the write atomically. Nothing
      // reached the log, the store stays usable for a retry.
      met_write_failures_.inc();
      result = Status::error(Errc::storage_io, "injected write failure");
      break;
    case WriteFault::Kind::Torn: {
      const std::size_t keep = std::min(fault.keep_bytes, framed.size() - 1);
      log_.insert(log_.end(), framed.begin(),
                  framed.begin() + static_cast<std::ptrdiff_t>(keep));
      met_write_failures_.inc();
      met_torn_records_.inc();
      wedged_ = true;
      result = Status::error(Errc::storage_io, "injected torn write");
      break;
    }
    case WriteFault::Kind::Rot: {
      const std::size_t off = std::min(fault.rot_offset, framed.size() - 1);
      framed[off] ^= (fault.rot_xor != 0 ? fault.rot_xor : std::uint8_t{1});
      log_.insert(log_.end(), framed.begin(), framed.end());
      met_write_failures_.inc();
      wedged_ = true;
      result = Status::error(Errc::storage_io, "injected corrupted write");
      break;
    }
  }

  if (tripped) {
    // One-shot: hand the crash-point scheduler control *after* the log has
    // taken whatever damage the variant called for.
    auto trip = std::move(budget_trip_);
    budget_trip_ = nullptr;
    budget_tail_ = TailFault::Clean;
    if (trip) trip();
  }
  return result;
}

Status StableStore::put(const std::string& key, Blob value) {
  const std::size_t payload = value.size();
  Blob framed = make_record(Op::Put, key, &value);
  return append_record(std::move(framed), payload, [this, &key, &value] {
    data_[key] = std::move(value);
  });
}

Status StableStore::erase(const std::string& key) {
  return append_record(make_record(Op::Erase, key, nullptr), 0,
                       [this, &key] { data_.erase(key); });
}

Status StableStore::erase_prefix(const std::string& prefix) {
  return append_record(make_record(Op::ErasePrefix, prefix, nullptr), 0,
                       [this, &prefix] {
                         auto it = data_.lower_bound(prefix);
                         while (it != data_.end() &&
                                it->first.compare(0, prefix.size(), prefix) == 0) {
                           it = data_.erase(it);
                         }
                       });
}

Status StableStore::clear() {
  return append_record(make_record(Op::Clear, std::string{}, nullptr), 0,
                       [this] { data_.clear(); });
}

void StableStore::maybe_compact() {
  if (wedged_ || log_.size() < kCompactMinBytes) return;
  // Estimated framed size of a freshly compacted log: per entry, frame
  // header + op byte + two length-prefixed fields.
  std::size_t live = 0;
  for (const auto& [key, value] : data_) {
    live += kFrameHeader + 1 + 4 + key.size() + 4 + value.size();
  }
  if (log_.size() <= kCompactFactor * std::max<std::size_t>(live, 1)) return;
  std::vector<std::uint8_t> fresh;
  fresh.reserve(live);
  for (const auto& [key, value] : data_) {
    const Blob rec = make_record(Op::Put, key, &value);
    fresh.insert(fresh.end(), rec.begin(), rec.end());
  }
  log_ = std::move(fresh);
  metrics_.counter("storage.compactions").inc();
}

// --------------------------------------------------------------------------
// reads

std::optional<StableStore::Blob> StableStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> StableStore::keys_with_prefix(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = data_.lower_bound(prefix);
       it != data_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
    out.push_back(it->first);
  }
  return out;
}

// --------------------------------------------------------------------------
// crash / recovery

void StableStore::crash() { data_.clear(); }

StableStore::OpenReport StableStore::open() {
  OpenReport rep;
  std::map<std::string, Blob> data;
  std::vector<std::uint8_t> clean;
  clean.reserve(log_.size());

  std::size_t pos = 0;
  while (pos < log_.size()) {
    const std::size_t remaining = log_.size() - pos;
    if (remaining < kFrameHeader) {
      // Not even a whole header: the final append died mid-write.
      ++rep.torn_truncated;
      break;
    }
    const std::uint32_t length = frame_length_at(log_, pos);
    if (length > wire::kMaxFrameBody) {
      // A length field no seal_frame ever produced: the framing itself is
      // damaged, so nothing past this point can be trusted or re-synced.
      // Quarantine the rest of the log wholesale.
      ++rep.corrupt_quarantined;
      met_crc_failures_.inc();
      break;
    }
    const std::size_t record = kFrameHeader + length;
    if (record > remaining) {
      ++rep.torn_truncated;
      break;
    }
    const std::span<const std::uint8_t> frame(log_.data() + pos, record);
    const auto body = wire::open_frame(frame);
    if (!body.ok()) {
      ++rep.corrupt_quarantined;
      met_crc_failures_.inc();
      pos += record;
      continue;
    }
    if (!replay_into(data, *body)) {
      // Checksum fine but the body does not decode as any known op: treat
      // like corruption (a CRC collision, or damage to an unframed region).
      ++rep.corrupt_quarantined;
      pos += record;
      continue;
    }
    clean.insert(clean.end(), frame.begin(), frame.end());
    ++rep.records_kept;
    pos += record;
  }

  met_repairs_.inc(rep.torn_truncated + rep.corrupt_quarantined);
  log_ = std::move(clean);
  data_ = std::move(data);
  wedged_ = false;
  last_open_ = rep;
  return rep;
}

// --------------------------------------------------------------------------
// fault scheduling & test hooks

void StableStore::arm_write_budget(std::uint64_t nth, TailFault tail,
                                   std::function<void()> on_trip) {
  EVS_ASSERT_MSG(nth > 0, "write budget is 1-based");
  budget_remaining_ = nth;
  budget_tail_ = tail;
  budget_trip_ = std::move(on_trip);
}

void StableStore::disarm_write_budget() {
  budget_remaining_ = 0;
  budget_tail_ = TailFault::Clean;
  budget_trip_ = nullptr;
}

void StableStore::damage_tail(TailFault v) {
  if (log_.empty() || v == TailFault::Clean) return;
  // Find the final record's start by walking the frame chain.
  std::size_t pos = 0;
  std::size_t last = 0;
  while (pos < log_.size()) {
    const std::size_t remaining = log_.size() - pos;
    if (remaining < kFrameHeader) break;
    const std::uint32_t length = frame_length_at(log_, pos);
    const std::size_t record = kFrameHeader + length;
    if (length > wire::kMaxFrameBody || record > remaining) break;
    last = pos;
    pos += record;
  }
  const std::size_t len = log_.size() - last;
  if (v == TailFault::Torn) {
    log_.resize(last + len / 2);
  } else {
    // Flip a byte in the final record's body; a tail shorter than one frame
    // header (a stub left by an earlier tear) gets its middle byte flipped.
    const std::size_t at = len > kFrameHeader
                               ? last + kFrameHeader + (len - kFrameHeader) / 2
                               : last + len / 2;
    log_[at] ^= 0x01;
  }
}

void StableStore::rot_log_byte(std::size_t offset, std::uint8_t mask) {
  if (offset >= log_.size()) return;
  log_[offset] ^= (mask != 0 ? mask : std::uint8_t{1});
}

}  // namespace evs
