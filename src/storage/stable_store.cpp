#include "storage/stable_store.hpp"

namespace evs {

void StableStore::erase_prefix(const std::string& prefix) {
  auto it = data_.lower_bound(prefix);
  while (it != data_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = data_.erase(it);
  }
}

std::vector<std::string> StableStore::keys_with_prefix(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = data_.lower_bound(prefix);
       it != data_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
    out.push_back(it->first);
  }
  return out;
}

}  // namespace evs
