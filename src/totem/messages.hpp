// Wire-level protocol messages.
//
// Six message kinds cross the network:
//   Regular     - an application message with its ring sequence number
//   Token       - the circulating ordering token (unicast around the ring)
//   Join        - membership gather: sender's candidate and fail sets
//   FormRing    - representative's proposal of a new ring (membership consensus)
//   Exchange    - EVS recovery step 3: a member's old-ring state summary
//   RecoveryMsg - EVS recovery step 5: rebroadcast of an old-ring message
//   RecoveryAck - EVS recovery step 5: receiver's updated received-set
// Every kind serializes with a leading type byte; see totem/token.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "evs/config.hpp"
#include "util/seq_set.hpp"
#include "util/types.hpp"

namespace evs {

enum class MsgType : std::uint8_t {
  Regular = 1,
  Token = 2,
  Join = 3,
  FormRing = 4,
  Exchange = 5,
  RecoveryMsg = 6,
  RecoveryAck = 7,
  Beacon = 8,
};

/// Valid type-byte range, derived from the enum so peek_type and the fuzz
/// round-trip test cannot drift when a message kind is added. Keep kMsgTypeMax
/// pointing at the last enumerator.
inline constexpr std::uint8_t kMsgTypeMin = static_cast<std::uint8_t>(MsgType::Regular);
inline constexpr std::uint8_t kMsgTypeMax = static_cast<std::uint8_t>(MsgType::Beacon);

/// Decode-time bound on a token's retransmission-request set: total element
/// cardinality, not interval count. The ring itself caps the rtr set it
/// grows (OrderingCore::Options::max_rtr_entries, validated <= this), so any
/// CRC-valid token exceeding the bound — e.g. one interval {1..2^60} — is
/// corruption or forgery, and rejecting it at the codec boundary keeps a
/// single packet from ballooning into per-element work downstream.
inline constexpr std::uint64_t kMaxTokenRtr = 65536;

/// An application message stamped by the ordering substrate.
struct RegularMsg {
  RingId ring;          ///< ring (== regular configuration) it was sent in
  SeqNum seq{0};        ///< position in the ring's total order
  MsgId id;             ///< globally unique application identity
  Service service{Service::Agreed};
  std::vector<std::uint8_t> payload;
};

/// Type-erased shared ownership of the buffer a view's payload points into —
/// usually the ref-counted datagram the message arrived in (net::DatagramRef)
/// or the shared buffer make_view allocates for a locally-originated message.
/// Type-erasing here keeps wire/totem transport-agnostic.
using BufferRef = std::shared_ptr<const void>;

/// Non-owning variant of RegularMsg for the zero-copy hot path. The payload
/// is a borrowed span; `owner` pins the buffer it points into, so the view
/// (and any copy of it) stays valid for as long as someone holds it —
/// including across OrderingCore garbage collection, which erases its store
/// entry without touching the arena-owned bytes. Copying a view copies a
/// span and bumps a refcount; the payload bytes are never copied.
struct RegularMsgView {
  RingId ring;
  SeqNum seq{0};
  MsgId id;
  Service service{Service::Agreed};
  std::span<const std::uint8_t> payload;
  BufferRef owner;

  /// Materialize an owning copy (cold paths: recovery buffers, persistence).
  RegularMsg to_owned() const {
    return RegularMsg{ring, seq, id, service,
                      std::vector<std::uint8_t>(payload.begin(), payload.end())};
  }
};

/// Wrap an owned message as a self-owning view: the payload vector moves
/// into a shared buffer the returned view pins. One allocation, zero byte
/// copies.
RegularMsgView make_view(RegularMsg m);

/// The ordering token (Totem single-ring style).
struct TokenMsg {
  RingId ring;
  std::uint64_t rotation{0};  ///< increments every full hop; detects staleness
  SeqNum seq{0};              ///< highest sequence number assigned on this ring
  SeqNum aru{0};              ///< all-received-up-to over the whole ring
  ProcessId aru_setter{};     ///< who last lowered aru (0 value = unset)
  SeqSet rtr;                 ///< retransmission requests
  /// Flow-control count (Totem): broadcasts during the last full rotation.
  /// Each member subtracts what it added last visit and adds this visit's
  /// new + retransmitted messages; senders budget new messages against the
  /// ring-wide window minus fcc, so one congested member throttles everyone.
  std::uint32_t fcc{0};
};

/// Membership gather message.
struct JoinMsg {
  ProcessId sender;
  std::uint64_t episode{0};            ///< sender's gather episode counter
  std::vector<ProcessId> candidates;   ///< processes sender believes reachable
  std::vector<ProcessId> fail_set;     ///< processes sender has given up on
  RingSeq max_ring_seq{0};             ///< highest ring seq sender has seen
};

/// Ring formation proposal broadcast by the representative when its gather
/// view reached consensus.
struct FormRingMsg {
  ProcessId sender;
  RingId ring;                       ///< proposed new ring id
  std::vector<ProcessId> members;    ///< proposed membership, sorted
};

/// EVS recovery step 3: state exchange for the proposed ring.
struct ExchangeMsg {
  ProcessId sender;
  RingId proposed_ring;       ///< which proposal this exchange belongs to
  RingId old_ring;            ///< sender's last installed *regular* ring
  SeqSet received;            ///< old-ring sequence numbers sender holds
  SeqNum old_safe_upto{0};    ///< highest seq sender observed safe on old ring
  SeqNum delivered_upto{0};   ///< contiguous prefix sender already delivered
  SeqSet delivered_extra;     ///< non-contiguous old-ring seqs already delivered
  /// Safety-horizon GC watermark: bodies for seqs <= gc_upto were reclaimed
  /// after a fully-acknowledged rotation proved every old-ring member holds
  /// them, so the sender can vouch for (and has delivered) those seqs but
  /// cannot rebroadcast them. Always <= delivered_upto; `received` still
  /// covers [1, gc_upto] as an interval summary.
  SeqNum gc_upto{0};
  std::vector<ProcessId> obligation_set;
};

/// EVS recovery step 5: rebroadcast of an old-ring message, encapsulated.
struct RecoveryMsgMsg {
  ProcessId sender;
  RingId proposed_ring;
  RegularMsg inner;
};

/// EVS recovery step 5: ack carrying the updated received-set; `complete`
/// set once the sender holds every available old-ring message (step 5.c).
struct RecoveryAckMsg {
  ProcessId sender;
  RingId proposed_ring;
  RingId old_ring;
  SeqSet received;
  bool complete{false};
};

/// Periodic presence announcement by operational processes. A process that
/// hears a beacon for a ring other than its own knows the network has merged
/// (or that it missed a configuration change) and starts a membership gather.
struct BeaconMsg {
  ProcessId sender;
  RingId ring;
};

// --- codec -------------------------------------------------------------------

std::vector<std::uint8_t> encode_msg(const RegularMsg& m);
std::vector<std::uint8_t> encode_msg(const RegularMsgView& m);
std::vector<std::uint8_t> encode_msg(const TokenMsg& m);
std::vector<std::uint8_t> encode_msg(const JoinMsg& m);
std::vector<std::uint8_t> encode_msg(const FormRingMsg& m);
std::vector<std::uint8_t> encode_msg(const ExchangeMsg& m);
std::vector<std::uint8_t> encode_msg(const RecoveryMsgMsg& m);
std::vector<std::uint8_t> encode_msg(const RecoveryAckMsg& m);
std::vector<std::uint8_t> encode_msg(const BeaconMsg& m);

/// Type of an encoded packet, or nullopt if the buffer is empty/invalid.
std::optional<MsgType> peek_type(std::span<const std::uint8_t> buf);

/// Any protocol message, as produced by the strict decoder below.
using AnyMsg = std::variant<RegularMsg, TokenMsg, JoinMsg, FormRingMsg, ExchangeMsg,
                            RecoveryMsgMsg, RecoveryAckMsg, BeaconMsg>;

/// Strict, non-asserting decoder for untrusted bytes. Returns nullopt for
/// any buffer that is truncated, has trailing bytes, carries an unknown type
/// byte, or violates a protocol-level invariant (unsorted member lists,
/// sequence number 0, out-of-range service level, aru beyond seq, ...).
/// Never crashes and never allocates more than the buffer can justify, so it
/// is safe to call on arbitrarily corrupted input. This is the only decode
/// entry point protocol nodes use on packets from the network.
std::optional<AnyMsg> try_decode(std::span<const std::uint8_t> buf);

/// Strict, non-asserting zero-copy decode of a Regular message: same
/// validation as try_decode, but the payload borrows from `buf` and the
/// result pins `owner` (the ref-counted buffer `buf` points into). This is
/// the hot-path decode entry point; the returned view must not outlive its
/// owner's buffer, which holding the view guarantees.
std::optional<RegularMsgView> try_decode_regular_view(
    std::span<const std::uint8_t> buf, BufferRef owner);

// Decoders that assert on malformed input, for buffers we wrote ourselves
// (stable storage, tests). They apply the same strict validation as
// try_decode and abort instead of rejecting.
RegularMsg decode_regular(std::span<const std::uint8_t> buf);
TokenMsg decode_token(std::span<const std::uint8_t> buf);
JoinMsg decode_join(std::span<const std::uint8_t> buf);
FormRingMsg decode_form_ring(std::span<const std::uint8_t> buf);
ExchangeMsg decode_exchange(std::span<const std::uint8_t> buf);
RecoveryMsgMsg decode_recovery_msg(std::span<const std::uint8_t> buf);
RecoveryAckMsg decode_recovery_ack(std::span<const std::uint8_t> buf);
BeaconMsg decode_beacon(std::span<const std::uint8_t> buf);

// --- transitional shims ------------------------------------------------------
//
// The pre-span decode API took const std::vector&. A vector lvalue binds to
// these exact-match overloads (instead of converting to span), so unmigrated
// callers keep compiling and get a deprecation warning pointing at the span
// replacement. Remove after one release.

[[deprecated("pass std::span<const std::uint8_t>")]] inline std::optional<MsgType>
peek_type(const std::vector<std::uint8_t>& buf) {
  return peek_type(std::span<const std::uint8_t>(buf));
}
[[deprecated("pass std::span<const std::uint8_t>")]] inline RegularMsg
decode_regular(const std::vector<std::uint8_t>& buf) {
  return decode_regular(std::span<const std::uint8_t>(buf));
}
[[deprecated("pass std::span<const std::uint8_t>")]] inline TokenMsg
decode_token(const std::vector<std::uint8_t>& buf) {
  return decode_token(std::span<const std::uint8_t>(buf));
}
[[deprecated("pass std::span<const std::uint8_t>")]] inline JoinMsg
decode_join(const std::vector<std::uint8_t>& buf) {
  return decode_join(std::span<const std::uint8_t>(buf));
}
[[deprecated("pass std::span<const std::uint8_t>")]] inline FormRingMsg
decode_form_ring(const std::vector<std::uint8_t>& buf) {
  return decode_form_ring(std::span<const std::uint8_t>(buf));
}
[[deprecated("pass std::span<const std::uint8_t>")]] inline ExchangeMsg
decode_exchange(const std::vector<std::uint8_t>& buf) {
  return decode_exchange(std::span<const std::uint8_t>(buf));
}
[[deprecated("pass std::span<const std::uint8_t>")]] inline RecoveryMsgMsg
decode_recovery_msg(const std::vector<std::uint8_t>& buf) {
  return decode_recovery_msg(std::span<const std::uint8_t>(buf));
}
[[deprecated("pass std::span<const std::uint8_t>")]] inline RecoveryAckMsg
decode_recovery_ack(const std::vector<std::uint8_t>& buf) {
  return decode_recovery_ack(std::span<const std::uint8_t>(buf));
}
[[deprecated("pass std::span<const std::uint8_t>")]] inline BeaconMsg
decode_beacon(const std::vector<std::uint8_t>& buf) {
  return decode_beacon(std::span<const std::uint8_t>(buf));
}

}  // namespace evs
