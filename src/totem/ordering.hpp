// OrderingCore: per-ring total ordering at one process (Totem single-ring
// protocol, simplified but faithful).
//
// A token circulates around the ring members (sorted by process id). The
// token carries the highest assigned sequence number (`seq`), the
// all-received-up-to value (`aru`) and a retransmission request set (`rtr`).
// On each visit a process:
//   1. rebroadcasts requested messages it holds and removes them from rtr,
//   2. adds its own missing sequence numbers to rtr,
//   3. stamps pending application messages with seq+1.. and broadcasts them,
//   4. updates aru: lowers it to its own contiguous prefix if behind,
//      or raises it if it was the process that had lowered it (or no one had),
//   5. computes safety: seqs <= min(aru seen on this visit, aru seen on the
//      previous visit) have been received by *every* ring member — the token
//      made a full rotation in between without anyone lowering aru below it.
//      That "everyone acknowledged receipt" is the paper's condition for
//      safe delivery.
//
// Delivery is strictly in sequence order: an agreed message is deliverable
// when it heads the contiguous prefix; a safe message additionally waits for
// the safety horizon. Because a sender stamps new messages with sequence
// numbers above everything it has received, the total order preserves
// causality (Section 2: agreed delivery preserves causal order).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "evs/config.hpp"
#include "obs/metrics.hpp"
#include "totem/messages.hpp"
#include "util/seq_set.hpp"
#include "util/types.hpp"

namespace evs {

/// An application message queued while waiting for the token.
struct PendingSend {
  MsgId id;
  Service service{Service::Agreed};
  std::vector<std::uint8_t> payload;
};

class OrderingCore {
 public:
  /// Hot-path results are non-owning views: each pins the buffer its payload
  /// lives in (the received datagram, or the shared buffer make_view built
  /// for a locally-stamped message), so handing them around copies spans and
  /// refcounts, never payload bytes.
  struct TokenResult {
    std::vector<RegularMsgView> to_broadcast;  ///< retransmissions + new messages
    std::vector<RegularMsgView> new_messages;  ///< subset of to_broadcast that is new
    TokenMsg token_out;                        ///< forward this to the next member
  };

  struct Options {
    int max_new_per_token{64};
    int max_retransmit_per_token{64};
    /// Upper bound on the rtr set size. A corrupted-but-plausible token or
    /// a heavily lossy ring could otherwise grow the request set without
    /// bound; excess holes simply wait for a later rotation.
    std::size_t max_rtr_entries{1024};
    /// Ring-wide flow-control window (Totem fcc): new messages are budgeted
    /// against both `window - token.fcc` (broadcasts during the last
    /// rotation) and `window - (seq - aru)` (messages not yet acknowledged
    /// by everyone), so backlog anywhere on the ring throttles all senders.
    /// Must be >= max_new_per_token or the per-visit cap can never be met.
    std::uint32_t flow_control_window{1024};
    /// Fault injection (tests only): deliver safe messages without waiting
    /// for the acknowledgment horizon.
    bool deliver_unsafe{false};
  };

  /// Snapshot of the "ordering.*" counters (assembled from the registry).
  struct Stats {
    std::uint64_t duplicates_ignored{0};  ///< duplicate regular messages
    std::uint64_t retransmits_sent{0};    ///< rtr requests we satisfied
    std::uint64_t rtr_capped{0};          ///< holes deferred by max_rtr_entries
    std::uint64_t fcc_clamped{0};         ///< inbound fcc above the ring ceiling
    std::uint64_t gc_reclaimed{0};        ///< message bodies freed by GC
  };

  /// `metrics` receives the "ordering.*" instruments; pass the owning
  /// EvsNode's registry so counters accumulate across ring installs. When
  /// null the core keeps a private registry (standalone tests).
  OrderingCore(RingId ring, std::vector<ProcessId> members, ProcessId self)
      : OrderingCore(ring, std::move(members), self, Options{}) {}
  OrderingCore(RingId ring, std::vector<ProcessId> members, ProcessId self,
               Options options, obs::MetricsRegistry* metrics = nullptr);

  const RingId& ring() const { return ring_; }
  const std::vector<ProcessId>& members() const { return members_; }
  ProcessId self() const { return self_; }
  ProcessId next_in_ring() const;
  bool is_member(ProcessId p) const;

  /// Store a received (or self-broadcast) regular message for this ring.
  /// Duplicates are ignored. Returns true if the message was new. The view's
  /// payload is NOT copied: the store keeps the span plus a refcount on its
  /// owner, so the backing datagram stays pinned while any stored (or
  /// outstanding) view needs it.
  bool on_regular(RegularMsgView m);

  /// Owning compatibility overload (cold paths: recovery replay, tests).
  /// Wraps the message via make_view — payload moves, no byte copy for an
  /// rvalue; an lvalue pays one copy here instead of one per store slot.
  bool on_regular(RegularMsg m) { return on_regular(make_view(std::move(m))); }

  /// Process the token; stamps messages from `pending` (consumed front-first)
  /// and returns what to broadcast plus the token to forward. Returns
  /// nullopt-equivalent empty result if the token is stale (old rotation).
  TokenResult on_token(const TokenMsg& token, std::deque<PendingSend>& pending);

  /// True if the given token is a stale duplicate for this ring.
  bool token_is_stale(const TokenMsg& token) const;

  /// Messages that have become deliverable, in total order. Each call
  /// returns only newly deliverable messages. The returned views stay valid
  /// even after collect_garbage() erases their store entries: erasing drops
  /// the store's refcount on the datagram, not the datagram itself.
  std::vector<RegularMsgView> drain_deliverable();

  bool has(SeqNum seq) const { return store_.count(seq) > 0; }
  const RegularMsgView* get(SeqNum seq) const;

  /// Contiguous all-received-up-to prefix.
  SeqNum contig() const { return received_.contiguous_from(0); }
  SeqNum safe_upto() const { return safe_upto_; }
  SeqNum delivered_upto() const { return delivered_upto_; }
  SeqNum highest_assigned() const { return highest_assigned_; }
  const SeqSet& received() const { return received_; }

  /// Safety-horizon GC watermark: bodies for seqs <= gc_upto() were freed
  /// after min(safe_upto_, delivered_upto_) passed them — every member holds
  /// (and we delivered) them, so no retransmission or recovery rebroadcast
  /// can legitimately need them. `received_` keeps the interval summary.
  SeqNum gc_upto() const { return gc_upto_; }

  /// Resident message bodies / payload bytes (post-GC), for memory bounds.
  std::size_t store_size() const { return store_.size(); }
  std::uint64_t store_bytes() const { return store_bytes_; }

  /// Messages still held in body form for this ring (used by the recovery
  /// snapshot). After GC this is the suffix above gc_upto(), not the full
  /// backlog — recovery carries gc_upto alongside it.
  std::vector<RegularMsg> all_messages() const;

  std::uint64_t tokens_seen() const { return tokens_seen_; }
  Stats stats() const;

  /// Internal-invariant audit for the self-stabilization guards (see
  /// DESIGN.md "State-corruption fault model"): delivery never outruns the
  /// contiguous received prefix, GC never outruns min(safe, delivered), and
  /// every un-GC'd received seq still has its body. Cheap (no store walk);
  /// the owning EvsNode checks it before acting on a token or delivering,
  /// and fail-stops on violation instead of propagating corrupted counters
  /// into the shared token or the agreed order.
  bool state_consistent() const {
    if (delivered_upto_ > received_.contiguous_from(0)) return false;
    if (gc_upto_ > safe_upto_ || gc_upto_ > delivered_upto_) return false;
    // Spot-check the store/GC boundary: a regressed gc_upto_ claims the
    // body just above it is still resident when it was in fact reclaimed.
    if (received_.contains(gc_upto_ + 1) && store_.count(gc_upto_ + 1) == 0) {
      return false;
    }
    return true;
  }

 private:
  friend struct NodeIntrospect;  // test-only state perturbation (testkit/corrupt)
  struct Met {
    obs::Counter& duplicates_ignored;
    obs::Counter& retransmits_sent;
    obs::Counter& rtr_capped;
    obs::Counter& fcc_clamped;
    obs::Counter& tokens_seen;
    obs::Counter& gc_reclaimed;
    obs::Gauge& store_msgs;        ///< resident bodies (current)
    obs::Gauge& store_bytes;       ///< resident payload bytes (current)
    obs::Gauge& store_msgs_peak;   ///< high-water mark, monotone
    obs::Gauge& store_bytes_peak;  ///< high-water mark, monotone
    explicit Met(obs::MetricsRegistry& r);
  };

  void track_store_insert(const RegularMsgView& m);
  void collect_garbage();

  RingId ring_;
  std::vector<ProcessId> members_;  // sorted
  ProcessId self_;
  Options options_;
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;  ///< when none was shared
  Met met_;

  // received_ minus [1, gc_upto_]. Values are views: the map slot holds a
  // span plus a refcount pinning the backing datagram. One packed datagram
  // may back several slots (and stays resident until the last one is GC'd),
  // so store_bytes_ counts payload bytes, not pinned buffer bytes.
  std::unordered_map<SeqNum, RegularMsgView> store_;
  SeqSet received_;
  SeqNum delivered_upto_{0};
  SeqNum safe_upto_{0};
  SeqNum gc_upto_{0};            // bodies <= this were reclaimed
  std::uint64_t store_bytes_{0};  // resident payload bytes (platform-neutral)
  SeqNum highest_assigned_{0};   // highest token.seq observed
  SeqNum prev_visit_aru_{0};
  std::uint32_t prev_visit_broadcasts_{0};  // our fcc contribution last visit
  bool seen_token_{false};
  std::uint64_t last_rotation_{0};
  std::uint64_t tokens_seen_{0};  ///< this ring only (counter is cumulative)
};

}  // namespace evs
