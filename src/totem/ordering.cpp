#include "totem/ordering.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace evs {

OrderingCore::Met::Met(obs::MetricsRegistry& r)
    : duplicates_ignored(r.counter("ordering.duplicates_ignored")),
      retransmits_sent(r.counter("ordering.retransmits_sent")),
      rtr_capped(r.counter("ordering.rtr_capped")),
      fcc_clamped(r.counter("ordering.fcc_clamped")),
      tokens_seen(r.counter("ordering.tokens_seen")),
      gc_reclaimed(r.counter("ordering.gc_reclaimed")),
      store_msgs(r.gauge("ordering.store_msgs")),
      store_bytes(r.gauge("ordering.store_bytes")),
      store_msgs_peak(r.gauge("ordering.store_msgs_peak")),
      store_bytes_peak(r.gauge("ordering.store_bytes_peak")) {}

OrderingCore::OrderingCore(RingId ring, std::vector<ProcessId> members, ProcessId self,
                           Options options, obs::MetricsRegistry* metrics)
    : ring_(ring),
      members_(std::move(members)),
      self_(self),
      options_(options),
      own_metrics_(metrics == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                      : nullptr),
      met_(metrics == nullptr ? *own_metrics_ : *metrics) {
  EVS_ASSERT(std::is_sorted(members_.begin(), members_.end()));
  EVS_ASSERT_MSG(is_member(self_), "process must be a member of its own ring");
}

OrderingCore::Stats OrderingCore::stats() const {
  Stats s;
  s.duplicates_ignored = met_.duplicates_ignored.value();
  s.retransmits_sent = met_.retransmits_sent.value();
  s.rtr_capped = met_.rtr_capped.value();
  s.fcc_clamped = met_.fcc_clamped.value();
  s.gc_reclaimed = met_.gc_reclaimed.value();
  return s;
}

void OrderingCore::track_store_insert(const RegularMsgView& m) {
  // Payload bytes, not sizeof: the count must be platform-neutral so obs
  // snapshots stay byte-identical across builds.
  store_bytes_ += m.payload.size();
  const auto msgs = static_cast<std::int64_t>(store_.size());
  const auto bytes = static_cast<std::int64_t>(store_bytes_);
  met_.store_msgs.set(msgs);
  met_.store_bytes.set(bytes);
  if (met_.store_msgs_peak.value() < msgs) met_.store_msgs_peak.set(msgs);
  if (met_.store_bytes_peak.value() < bytes) met_.store_bytes_peak.set(bytes);
}

void OrderingCore::collect_garbage() {
  // Reclaim bodies at or below min(safe_upto_, delivered_upto_): the safety
  // horizon proves every member received them (no legitimate rtr can name
  // them, and recovery's transitional peers hold them too — see DESIGN.md),
  // and delivery means we will never read them again ourselves. received_
  // keeps the interval summary, so duplicates stay recognizable and the
  // Exchange received-set is unchanged.
  const SeqNum horizon = std::min(safe_upto_, delivered_upto_);
  if (horizon <= gc_upto_) return;
  std::uint64_t freed = 0;
  for (SeqNum s = gc_upto_ + 1; s <= horizon; ++s) {
    auto it = store_.find(s);
    EVS_ASSERT(it != store_.end());  // delivered contiguously => body present
    store_bytes_ -= it->second.payload.size();
    store_.erase(it);
    ++freed;
  }
  gc_upto_ = horizon;
  met_.gc_reclaimed.inc(freed);
  met_.store_msgs.set(static_cast<std::int64_t>(store_.size()));
  met_.store_bytes.set(static_cast<std::int64_t>(store_bytes_));
}

ProcessId OrderingCore::next_in_ring() const {
  auto it = std::lower_bound(members_.begin(), members_.end(), self_);
  EVS_ASSERT(it != members_.end() && *it == self_);
  ++it;
  return it == members_.end() ? members_.front() : *it;
}

bool OrderingCore::is_member(ProcessId p) const {
  return std::binary_search(members_.begin(), members_.end(), p);
}

bool OrderingCore::on_regular(RegularMsgView m) {
  EVS_ASSERT(m.ring == ring_);
  EVS_ASSERT(m.seq >= 1);
  if (received_.contains(m.seq)) {
    met_.duplicates_ignored.inc();
    return false;
  }
  received_.insert(m.seq);
  const auto it = store_.emplace(m.seq, std::move(m)).first;
  track_store_insert(it->second);
  return true;
}

bool OrderingCore::token_is_stale(const TokenMsg& token) const {
  // A legitimate token's seq is monotone over the ring's lifetime: members
  // only ever raise it. One that regresses below what we have observed is a
  // stale duplicate (or a forgery) even if its rotation looks fresh.
  return token.ring != ring_ ||
         (seen_token_ &&
          (token.rotation <= last_rotation_ || token.seq < highest_assigned_));
}

OrderingCore::TokenResult OrderingCore::on_token(const TokenMsg& token,
                                                 std::deque<PendingSend>& pending) {
  EVS_ASSERT(!token_is_stale(token));
  ++tokens_seen_;
  met_.tokens_seen.inc();
  TokenResult result;
  TokenMsg out = token;

  // 1. Service retransmission requests we can satisfy. Walk the request set
  // interval-wise against received_ above the GC horizon — exactly what
  // store_ holds — so a forged token carrying a huge rtr range costs work
  // proportional to intervals touched and messages actually rebroadcast,
  // never to the range width.
  int retransmitted = 0;
  std::vector<SeqNum> served;
  for (const auto& req : token.rtr.intervals()) {
    if (retransmitted >= options_.max_retransmit_per_token) break;
    if (req.hi <= gc_upto_) continue;
    const SeqNum lo = std::max(req.lo, gc_upto_ + 1);
    for (const auto& run : received_.intersection_intervals(lo, req.hi)) {
      if (retransmitted >= options_.max_retransmit_per_token) break;
      for (SeqNum s = run.lo;; ++s) {
        auto it = store_.find(s);
        EVS_ASSERT(it != store_.end());  // store_ == received_ above gc_upto_
        result.to_broadcast.push_back(it->second);
        served.push_back(s);
        ++retransmitted;
        met_.retransmits_sent.inc();
        if (s == run.hi || retransmitted >= options_.max_retransmit_per_token) break;
      }
    }
  }
  for (SeqNum s : served) out.rtr.erase(s);
  // Scrub requests at or below our GC horizon instead of leaving them to
  // circulate: the horizon proves every ring member received those seqs, so
  // such entries can only come from corruption or forgery, and left alone
  // they would permanently occupy max_rtr_entries capacity.
  if (!out.rtr.empty() && out.rtr.min() <= gc_upto_) {
    SeqSet scrubbed;
    for (const auto& iv : out.rtr.intervals()) {
      if (iv.hi <= gc_upto_) continue;
      scrubbed.insert_range(std::max(iv.lo, gc_upto_ + 1), iv.hi);
    }
    out.rtr = std::move(scrubbed);
  }

  // 2. Request what we are missing, hole-interval-wise, bounded so a
  // corrupted-but-plausible token (huge seq) cannot balloon the request set
  // or buy per-element work; deferred holes wait a rotation.
  for (const auto& hole : received_.missing_intervals(1, out.seq)) {
    const std::uint64_t have = out.rtr.size();
    const std::uint64_t room =
        options_.max_rtr_entries > have ? options_.max_rtr_entries - have : 0;
    if (room == 0) {
      met_.rtr_capped.inc();
      break;
    }
    if (hole.hi - hole.lo >= room) {  // hole wider than remaining room
      out.rtr.insert_range(hole.lo, hole.lo + room - 1);
      met_.rtr_capped.inc();
      break;
    }
    out.rtr.insert_range(hole.lo, hole.hi);
  }

  // 3. Stamp and broadcast pending application messages. The per-visit cap
  // is narrowed by the ring-wide flow-control window (Totem fcc): the token
  // carries the broadcast count of the last full rotation, and seq - aru is
  // the backlog not yet acknowledged by everyone. Budgeting against both
  // keeps every member's resident store O(window) no matter how fast the
  // application produces.
  //
  // The inbound count is clamped to the largest value a healthy ring can
  // legitimately accumulate: every member adds at most max_new + max_rtr
  // broadcasts per visit, so fcc > members * per_visit_max can only come
  // from corruption, a forged token, or stale state leaking across a
  // configuration change. Without the clamp such a value is sticky — the
  // only decay is subtracting prev_visit_broadcasts_, which is 0 exactly
  // when the budget pinned to 0 — so one bad token would silence the ring
  // forever. With it, the excess is discarded and the window recovers
  // within a single visit.
  const std::uint64_t per_visit_max =
      static_cast<std::uint64_t>(std::max(options_.max_new_per_token, 0)) +
      static_cast<std::uint64_t>(std::max(options_.max_retransmit_per_token, 0));
  const std::uint64_t fcc_headroom =
      per_visit_max < UINT32_MAX ? UINT32_MAX - per_visit_max : 0;
  const std::uint64_t fcc_ceiling =
      std::min<std::uint64_t>(members_.size() * per_visit_max, fcc_headroom);
  std::uint64_t fcc_in =
      out.fcc > prev_visit_broadcasts_ ? out.fcc - prev_visit_broadcasts_ : 0;
  if (fcc_in > fcc_ceiling) {
    fcc_in = fcc_ceiling;
    met_.fcc_clamped.inc();
  }
  const std::uint64_t window = options_.flow_control_window;
  const std::uint64_t unacked = out.seq >= out.aru ? out.seq - out.aru : 0;
  std::uint64_t budget = options_.max_new_per_token < 0
                             ? 0
                             : static_cast<std::uint64_t>(options_.max_new_per_token);
  budget = std::min(budget, window > fcc_in ? window - fcc_in : 0);
  budget = std::min(budget, window > unacked ? window - unacked : 0);
  std::uint64_t sent = 0;
  while (!pending.empty() && sent < budget) {
    PendingSend p = std::move(pending.front());
    pending.pop_front();
    RegularMsg m;
    m.ring = ring_;
    m.seq = ++out.seq;
    m.id = p.id;
    m.service = p.service;
    m.payload = std::move(p.payload);
    // make_view moves the payload into a shared buffer once; the store slot,
    // new_messages and to_broadcast all alias it from here on.
    RegularMsgView v = make_view(std::move(m));
    // We hold our own message immediately; the network loopback would also
    // deliver it, but recording it now keeps contig() honest even if the
    // loopback packet is still in flight when the token moves on.
    on_regular(v);
    result.new_messages.push_back(v);
    result.to_broadcast.push_back(std::move(v));
    ++sent;
  }
  const auto this_visit =
      static_cast<std::uint32_t>(retransmitted) + static_cast<std::uint32_t>(sent);
  // fcc_in <= fcc_ceiling and this_visit <= per_visit_max, both far below
  // u32 range for any validated option set — no saturation path (the old
  // UINT32_MAX saturation was itself a pin: subtraction decay could never
  // bring it back down).
  out.fcc = static_cast<std::uint32_t>(fcc_in + this_visit);
  prev_visit_broadcasts_ = this_visit;
  // token_is_stale rejected any seq regression, and stamping only raised
  // out.seq, so a single assignment here maintains the monotone invariant.
  EVS_ASSERT(out.seq >= highest_assigned_);
  highest_assigned_ = out.seq;

  // 4. Update aru.
  const SeqNum my_contig = contig();
  const ProcessId unset{};
  if (my_contig < out.aru) {
    out.aru = my_contig;
    out.aru_setter = self_;
  } else if (out.aru_setter == self_ || out.aru_setter == unset) {
    out.aru = my_contig;
    out.aru_setter = my_contig < out.seq ? self_ : unset;
  }

  // 5. Safety horizon: everything at or below the minimum of the aru we see
  // now and the aru we saw on our previous visit has completed a full
  // rotation acknowledged by every member.
  if (seen_token_) {
    safe_upto_ = std::max(safe_upto_, std::min(prev_visit_aru_, out.aru));
  }
  if (members_.size() == 1) {
    // Singleton ring: our own receipt is everyone's receipt.
    safe_upto_ = std::max(safe_upto_, my_contig);
  }
  prev_visit_aru_ = out.aru;
  seen_token_ = true;

  out.rotation = token.rotation + 1;
  last_rotation_ = token.rotation;
  result.token_out = out;
  collect_garbage();
  return result;
}

std::vector<RegularMsgView> OrderingCore::drain_deliverable() {
  std::vector<RegularMsgView> out;
  while (true) {
    const SeqNum next = delivered_upto_ + 1;
    auto it = store_.find(next);
    if (it == store_.end()) break;
    if (it->second.service == Service::Safe && next > safe_upto_ &&
        !options_.deliver_unsafe) {
      break;
    }
    out.push_back(it->second);
    delivered_upto_ = next;
  }
  collect_garbage();
  return out;
}

const RegularMsgView* OrderingCore::get(SeqNum seq) const {
  auto it = store_.find(seq);
  return it == store_.end() ? nullptr : &it->second;
}

std::vector<RegularMsg> OrderingCore::all_messages() const {
  std::vector<RegularMsg> out;
  out.reserve(store_.size());
  for (const auto& [seq, m] : store_) out.push_back(m.to_owned());
  std::sort(out.begin(), out.end(),
            [](const RegularMsg& a, const RegularMsg& b) { return a.seq < b.seq; });
  return out;
}

}  // namespace evs
