#include "totem/ordering.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace evs {

OrderingCore::Met::Met(obs::MetricsRegistry& r)
    : duplicates_ignored(r.counter("ordering.duplicates_ignored")),
      retransmits_sent(r.counter("ordering.retransmits_sent")),
      rtr_capped(r.counter("ordering.rtr_capped")),
      tokens_seen(r.counter("ordering.tokens_seen")) {}

OrderingCore::OrderingCore(RingId ring, std::vector<ProcessId> members, ProcessId self,
                           Options options, obs::MetricsRegistry* metrics)
    : ring_(ring),
      members_(std::move(members)),
      self_(self),
      options_(options),
      own_metrics_(metrics == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                      : nullptr),
      met_(metrics == nullptr ? *own_metrics_ : *metrics) {
  EVS_ASSERT(std::is_sorted(members_.begin(), members_.end()));
  EVS_ASSERT_MSG(is_member(self_), "process must be a member of its own ring");
}

OrderingCore::Stats OrderingCore::stats() const {
  Stats s;
  s.duplicates_ignored = met_.duplicates_ignored.value();
  s.retransmits_sent = met_.retransmits_sent.value();
  s.rtr_capped = met_.rtr_capped.value();
  return s;
}

ProcessId OrderingCore::next_in_ring() const {
  auto it = std::lower_bound(members_.begin(), members_.end(), self_);
  EVS_ASSERT(it != members_.end() && *it == self_);
  ++it;
  return it == members_.end() ? members_.front() : *it;
}

bool OrderingCore::is_member(ProcessId p) const {
  return std::binary_search(members_.begin(), members_.end(), p);
}

bool OrderingCore::on_regular(const RegularMsg& m) {
  EVS_ASSERT(m.ring == ring_);
  EVS_ASSERT(m.seq >= 1);
  if (received_.contains(m.seq)) {
    met_.duplicates_ignored.inc();
    return false;
  }
  received_.insert(m.seq);
  store_.emplace(m.seq, m);
  return true;
}

bool OrderingCore::token_is_stale(const TokenMsg& token) const {
  return token.ring != ring_ || (seen_token_ && token.rotation <= last_rotation_);
}

OrderingCore::TokenResult OrderingCore::on_token(const TokenMsg& token,
                                                 std::deque<PendingSend>& pending) {
  EVS_ASSERT(!token_is_stale(token));
  ++tokens_seen_;
  met_.tokens_seen.inc();
  TokenResult result;
  TokenMsg out = token;

  // 1. Service retransmission requests we can satisfy.
  int retransmitted = 0;
  for (SeqNum s : out.rtr.to_vector()) {
    if (retransmitted >= options_.max_retransmit_per_token) break;
    auto it = store_.find(s);
    if (it == store_.end()) continue;
    result.to_broadcast.push_back(it->second);
    out.rtr.erase(s);
    ++retransmitted;
    met_.retransmits_sent.inc();
  }

  // 2. Request what we are missing, bounded so a corrupted-but-plausible
  // token cannot balloon the request set; deferred holes wait a rotation.
  highest_assigned_ = std::max(highest_assigned_, out.seq);
  for (SeqNum hole : received_.missing_in(1, out.seq)) {
    if (out.rtr.size() >= options_.max_rtr_entries) {
      met_.rtr_capped.inc();
      break;
    }
    out.rtr.insert(hole);
  }

  // 3. Stamp and broadcast pending application messages (flow control cap).
  int sent = 0;
  while (!pending.empty() && sent < options_.max_new_per_token) {
    PendingSend p = std::move(pending.front());
    pending.pop_front();
    RegularMsg m;
    m.ring = ring_;
    m.seq = ++out.seq;
    m.id = p.id;
    m.service = p.service;
    m.payload = std::move(p.payload);
    // We hold our own message immediately; the network loopback would also
    // deliver it, but recording it now keeps contig() honest even if the
    // loopback packet is still in flight when the token moves on.
    on_regular(m);
    result.new_messages.push_back(m);
    result.to_broadcast.push_back(m);
    ++sent;
  }
  highest_assigned_ = out.seq;

  // 4. Update aru.
  const SeqNum my_contig = contig();
  const ProcessId unset{};
  if (my_contig < out.aru) {
    out.aru = my_contig;
    out.aru_setter = self_;
  } else if (out.aru_setter == self_ || out.aru_setter == unset) {
    out.aru = my_contig;
    out.aru_setter = my_contig < out.seq ? self_ : unset;
  }

  // 5. Safety horizon: everything at or below the minimum of the aru we see
  // now and the aru we saw on our previous visit has completed a full
  // rotation acknowledged by every member.
  if (seen_token_) {
    safe_upto_ = std::max(safe_upto_, std::min(prev_visit_aru_, out.aru));
  }
  if (members_.size() == 1) {
    // Singleton ring: our own receipt is everyone's receipt.
    safe_upto_ = std::max(safe_upto_, my_contig);
  }
  prev_visit_aru_ = out.aru;
  seen_token_ = true;

  out.rotation = token.rotation + 1;
  last_rotation_ = token.rotation;
  result.token_out = out;
  return result;
}

std::vector<RegularMsg> OrderingCore::drain_deliverable() {
  std::vector<RegularMsg> out;
  while (true) {
    const SeqNum next = delivered_upto_ + 1;
    auto it = store_.find(next);
    if (it == store_.end()) break;
    if (it->second.service == Service::Safe && next > safe_upto_ &&
        !options_.deliver_unsafe) {
      break;
    }
    out.push_back(it->second);
    delivered_upto_ = next;
  }
  return out;
}

const RegularMsg* OrderingCore::get(SeqNum seq) const {
  auto it = store_.find(seq);
  return it == store_.end() ? nullptr : &it->second;
}

std::vector<RegularMsg> OrderingCore::all_messages() const {
  std::vector<RegularMsg> out;
  out.reserve(store_.size());
  for (const auto& [seq, m] : store_) out.push_back(m);
  std::sort(out.begin(), out.end(),
            [](const RegularMsg& a, const RegularMsg& b) { return a.seq < b.seq; });
  return out;
}

}  // namespace evs
