// Codec implementations for all protocol wire messages.
#include "totem/messages.hpp"

#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

void encode_inner(wire::Writer& w, const RegularMsg& m) {
  encode(w, m.ring);
  w.u64(m.seq);
  encode(w, m.id);
  w.u8(static_cast<std::uint8_t>(m.service));
  w.bytes(m.payload);
}

RegularMsg decode_inner_regular(wire::Reader& r) {
  RegularMsg m;
  m.ring = decode_ring_id(r);
  m.seq = r.u64();
  m.id = decode_msg_id(r);
  m.service = static_cast<Service>(r.u8());
  m.payload = r.bytes();
  return m;
}

wire::Reader open(const std::vector<std::uint8_t>& buf, MsgType expected) {
  wire::Reader r(buf);
  const auto type = static_cast<MsgType>(r.u8());
  EVS_ASSERT_MSG(r.ok() && type == expected, "packet type mismatch");
  return r;
}

void finish(const wire::Reader& r) { EVS_ASSERT_MSG(r.done(), "trailing bytes in packet"); }

}  // namespace

std::optional<MsgType> peek_type(const std::vector<std::uint8_t>& buf) {
  if (buf.empty()) return std::nullopt;
  const auto type = static_cast<MsgType>(buf[0]);
  if (buf[0] < 1 || buf[0] > 8) return std::nullopt;
  return type;
}

std::vector<std::uint8_t> encode_msg(const RegularMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Regular));
  encode_inner(w, m);
  return w.take();
}

RegularMsg decode_regular(const std::vector<std::uint8_t>& buf) {
  wire::Reader r = open(buf, MsgType::Regular);
  RegularMsg m = decode_inner_regular(r);
  finish(r);
  return m;
}

std::vector<std::uint8_t> encode_msg(const TokenMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Token));
  encode(w, m.ring);
  w.u64(m.rotation);
  w.u64(m.seq);
  w.u64(m.aru);
  w.pid(m.aru_setter);
  w.seq_set(m.rtr);
  return w.take();
}

TokenMsg decode_token(const std::vector<std::uint8_t>& buf) {
  wire::Reader r = open(buf, MsgType::Token);
  TokenMsg m;
  m.ring = decode_ring_id(r);
  m.rotation = r.u64();
  m.seq = r.u64();
  m.aru = r.u64();
  m.aru_setter = r.pid();
  m.rtr = r.seq_set();
  finish(r);
  return m;
}

std::vector<std::uint8_t> encode_msg(const JoinMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Join));
  w.pid(m.sender);
  w.u64(m.episode);
  w.pid_vec(m.candidates);
  w.pid_vec(m.fail_set);
  w.u64(m.max_ring_seq);
  return w.take();
}

JoinMsg decode_join(const std::vector<std::uint8_t>& buf) {
  wire::Reader r = open(buf, MsgType::Join);
  JoinMsg m;
  m.sender = r.pid();
  m.episode = r.u64();
  m.candidates = r.pid_vec();
  m.fail_set = r.pid_vec();
  m.max_ring_seq = r.u64();
  finish(r);
  return m;
}

std::vector<std::uint8_t> encode_msg(const FormRingMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::FormRing));
  w.pid(m.sender);
  encode(w, m.ring);
  w.pid_vec(m.members);
  return w.take();
}

FormRingMsg decode_form_ring(const std::vector<std::uint8_t>& buf) {
  wire::Reader r = open(buf, MsgType::FormRing);
  FormRingMsg m;
  m.sender = r.pid();
  m.ring = decode_ring_id(r);
  m.members = r.pid_vec();
  finish(r);
  return m;
}

std::vector<std::uint8_t> encode_msg(const ExchangeMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Exchange));
  w.pid(m.sender);
  encode(w, m.proposed_ring);
  encode(w, m.old_ring);
  w.seq_set(m.received);
  w.u64(m.old_safe_upto);
  w.u64(m.delivered_upto);
  w.seq_set(m.delivered_extra);
  w.pid_vec(m.obligation_set);
  return w.take();
}

ExchangeMsg decode_exchange(const std::vector<std::uint8_t>& buf) {
  wire::Reader r = open(buf, MsgType::Exchange);
  ExchangeMsg m;
  m.sender = r.pid();
  m.proposed_ring = decode_ring_id(r);
  m.old_ring = decode_ring_id(r);
  m.received = r.seq_set();
  m.old_safe_upto = r.u64();
  m.delivered_upto = r.u64();
  m.delivered_extra = r.seq_set();
  m.obligation_set = r.pid_vec();
  finish(r);
  return m;
}

std::vector<std::uint8_t> encode_msg(const RecoveryMsgMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::RecoveryMsg));
  w.pid(m.sender);
  encode(w, m.proposed_ring);
  encode_inner(w, m.inner);
  return w.take();
}

RecoveryMsgMsg decode_recovery_msg(const std::vector<std::uint8_t>& buf) {
  wire::Reader r = open(buf, MsgType::RecoveryMsg);
  RecoveryMsgMsg m;
  m.sender = r.pid();
  m.proposed_ring = decode_ring_id(r);
  m.inner = decode_inner_regular(r);
  finish(r);
  return m;
}

std::vector<std::uint8_t> encode_msg(const RecoveryAckMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::RecoveryAck));
  w.pid(m.sender);
  encode(w, m.proposed_ring);
  encode(w, m.old_ring);
  w.seq_set(m.received);
  w.boolean(m.complete);
  return w.take();
}

std::vector<std::uint8_t> encode_msg(const BeaconMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Beacon));
  w.pid(m.sender);
  encode(w, m.ring);
  return w.take();
}

BeaconMsg decode_beacon(const std::vector<std::uint8_t>& buf) {
  wire::Reader r = open(buf, MsgType::Beacon);
  BeaconMsg m;
  m.sender = r.pid();
  m.ring = decode_ring_id(r);
  finish(r);
  return m;
}

RecoveryAckMsg decode_recovery_ack(const std::vector<std::uint8_t>& buf) {
  wire::Reader r = open(buf, MsgType::RecoveryAck);
  RecoveryAckMsg m;
  m.sender = r.pid();
  m.proposed_ring = decode_ring_id(r);
  m.old_ring = decode_ring_id(r);
  m.received = r.seq_set();
  m.complete = r.boolean();
  finish(r);
  return m;
}

}  // namespace evs
