// Codec implementations for all protocol wire messages.
//
// Decoding is written defensively: the network may hand us corrupted bytes
// (the fault-injection engine flips bytes deliberately; see src/sim/faults),
// and while the CRC frame layer catches essentially all of it, the message
// codec itself must also never crash, never over-allocate and never accept a
// structurally invalid message. Every field that downstream code treats as
// an invariant (sorted member lists, nonzero sequence numbers, enum ranges,
// aru <= seq) is checked here, once, at the boundary.
#include "totem/messages.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

bool sorted_strict(const std::vector<ProcessId>& v) {
  return std::adjacent_find(v.begin(), v.end(),
                            [](ProcessId a, ProcessId b) { return !(a < b); }) ==
         v.end();
}

void encode_inner(wire::Writer& w, const RegularMsg& m) {
  encode(w, m.ring);
  w.u64(m.seq);
  encode(w, m.id);
  w.u8(static_cast<std::uint8_t>(m.service));
  w.bytes(m.payload);
}

void encode_inner(wire::Writer& w, const RegularMsgView& m) {
  encode(w, m.ring);
  w.u64(m.seq);
  encode(w, m.id);
  w.u8(static_cast<std::uint8_t>(m.service));
  w.bytes(m.payload);
}

std::optional<RegularMsg> read_regular(wire::Reader& r) {
  RegularMsg m;
  m.ring = decode_ring_id(r);
  m.seq = r.u64();
  m.id = decode_msg_id(r);
  const std::uint8_t service = r.u8();
  m.payload = r.bytes();
  if (!r.ok()) return std::nullopt;
  if (!m.ring.valid() || m.seq < 1 || !m.id.valid()) return std::nullopt;
  if (service > static_cast<std::uint8_t>(Service::Safe)) return std::nullopt;
  m.service = static_cast<Service>(service);
  return m;
}

/// Zero-copy twin of read_regular: identical field order and validation, but
/// the payload is a view into the Reader's buffer (the caller attaches the
/// owner). Kept adjacent so the two cannot drift.
std::optional<RegularMsgView> read_regular_view(wire::Reader& r) {
  RegularMsgView m;
  m.ring = decode_ring_id(r);
  m.seq = r.u64();
  m.id = decode_msg_id(r);
  const std::uint8_t service = r.u8();
  m.payload = r.bytes_view();
  if (!r.ok()) return std::nullopt;
  if (!m.ring.valid() || m.seq < 1 || !m.id.valid()) return std::nullopt;
  if (service > static_cast<std::uint8_t>(Service::Safe)) return std::nullopt;
  m.service = static_cast<Service>(service);
  return m;
}

std::optional<TokenMsg> read_token(wire::Reader& r) {
  TokenMsg m;
  m.ring = decode_ring_id(r);
  m.rotation = r.u64();
  m.seq = r.u64();
  m.aru = r.u64();
  m.aru_setter = r.pid();
  m.rtr = r.seq_set();
  m.fcc = r.u32();
  if (!r.ok()) return std::nullopt;
  if (!m.ring.valid() || m.rotation < 1) return std::nullopt;
  // The all-received horizon and every retransmission request refer to
  // sequence numbers that have been assigned, i.e. are bounded by seq.
  if (m.aru > m.seq || m.rtr.max() > m.seq) return std::nullopt;
  // rtr.max() <= seq bounds each request but not how many a forged token can
  // carry: one interval {1..seq} is CRC-valid yet encodes seq elements. Cap
  // total cardinality so a single packet cannot buy unbounded downstream work.
  if (m.rtr.size() > kMaxTokenRtr) return std::nullopt;
  return m;
}

std::optional<JoinMsg> read_join(wire::Reader& r) {
  JoinMsg m;
  m.sender = r.pid();
  m.episode = r.u64();
  m.candidates = r.pid_vec();
  m.fail_set = r.pid_vec();
  m.max_ring_seq = r.u64();
  if (!r.ok()) return std::nullopt;
  if (m.sender == ProcessId{}) return std::nullopt;
  if (!sorted_strict(m.candidates) || !sorted_strict(m.fail_set)) return std::nullopt;
  // Joins propagate the max ring seq transitively (peers adopt max-seen + 1),
  // so an implausible value from one corrupted node would poison the whole
  // system's counter forever. Reject it at the boundary instead.
  if (m.max_ring_seq > kMaxRingSeq) return std::nullopt;
  return m;
}

std::optional<FormRingMsg> read_form_ring(wire::Reader& r) {
  FormRingMsg m;
  m.sender = r.pid();
  m.ring = decode_ring_id(r);
  m.members = r.pid_vec();
  if (!r.ok()) return std::nullopt;
  if (m.sender == ProcessId{} || !m.ring.valid()) return std::nullopt;
  if (m.members.empty() || !sorted_strict(m.members)) return std::nullopt;
  return m;
}

std::optional<ExchangeMsg> read_exchange(wire::Reader& r) {
  ExchangeMsg m;
  m.sender = r.pid();
  m.proposed_ring = decode_ring_id(r);
  m.old_ring = decode_ring_id(r);
  m.received = r.seq_set();
  m.old_safe_upto = r.u64();
  m.delivered_upto = r.u64();
  m.delivered_extra = r.seq_set();
  m.gc_upto = r.u64();
  m.obligation_set = r.pid_vec();
  if (!r.ok()) return std::nullopt;
  if (m.sender == ProcessId{} || !m.proposed_ring.valid()) return std::nullopt;
  if (!sorted_strict(m.obligation_set)) return std::nullopt;
  // A process with no prior ring has no backlog to report.
  if (!m.old_ring.valid() && !m.received.empty()) return std::nullopt;
  // The GC watermark only ever trails delivery, and a GC'd prefix must still
  // be accounted for in the received summary (recovery counts on both).
  if (m.gc_upto > m.delivered_upto) return std::nullopt;
  if (m.gc_upto > 0 && m.received.contiguous_from(0) < m.gc_upto) return std::nullopt;
  if (!m.old_ring.valid() && m.gc_upto != 0) return std::nullopt;
  return m;
}

std::optional<RecoveryMsgMsg> read_recovery_msg(wire::Reader& r) {
  RecoveryMsgMsg m;
  m.sender = r.pid();
  m.proposed_ring = decode_ring_id(r);
  auto inner = read_regular(r);
  if (!r.ok() || !inner.has_value()) return std::nullopt;
  if (m.sender == ProcessId{} || !m.proposed_ring.valid()) return std::nullopt;
  m.inner = std::move(*inner);
  return m;
}

std::optional<RecoveryAckMsg> read_recovery_ack(wire::Reader& r) {
  RecoveryAckMsg m;
  m.sender = r.pid();
  m.proposed_ring = decode_ring_id(r);
  m.old_ring = decode_ring_id(r);
  m.received = r.seq_set();
  const std::uint8_t complete = r.u8();
  if (!r.ok()) return std::nullopt;
  if (m.sender == ProcessId{} || !m.proposed_ring.valid()) return std::nullopt;
  if (complete > 1) return std::nullopt;
  m.complete = complete != 0;
  return m;
}

std::optional<BeaconMsg> read_beacon(wire::Reader& r) {
  BeaconMsg m;
  m.sender = r.pid();
  m.ring = decode_ring_id(r);
  if (!r.ok()) return std::nullopt;
  if (m.sender == ProcessId{} || !m.ring.valid()) return std::nullopt;
  return m;
}

/// Strict decode of one message of the `expected` kind, validating the type
/// byte, every field and the absence of trailing bytes.
template <typename T>
std::optional<T> strict_decode(std::span<const std::uint8_t> buf, MsgType expected,
                               std::optional<T> (*read)(wire::Reader&)) {
  wire::Reader r(buf);
  if (static_cast<MsgType>(r.u8()) != expected || !r.ok()) return std::nullopt;
  std::optional<T> m = read(r);
  if (!m.has_value() || !r.done()) return std::nullopt;
  return m;
}

template <typename T>
T checked_decode(std::span<const std::uint8_t> buf, MsgType expected,
                 std::optional<T> (*read)(wire::Reader&)) {
  std::optional<T> m = strict_decode<T>(buf, expected, read);
  EVS_ASSERT_MSG(m.has_value(), "malformed packet");
  return std::move(*m);
}

}  // namespace

std::optional<MsgType> peek_type(std::span<const std::uint8_t> buf) {
  if (buf.empty()) return std::nullopt;
  if (buf[0] < kMsgTypeMin || buf[0] > kMsgTypeMax) return std::nullopt;
  return static_cast<MsgType>(buf[0]);
}

std::optional<AnyMsg> try_decode(std::span<const std::uint8_t> buf) {
  if (buf.empty()) return std::nullopt;
  const auto wrap = [](auto&& m) -> std::optional<AnyMsg> {
    if (!m.has_value()) return std::nullopt;
    return AnyMsg{std::move(*m)};
  };
  switch (static_cast<MsgType>(buf[0])) {
    case MsgType::Regular: return wrap(strict_decode(buf, MsgType::Regular, read_regular));
    case MsgType::Token: return wrap(strict_decode(buf, MsgType::Token, read_token));
    case MsgType::Join: return wrap(strict_decode(buf, MsgType::Join, read_join));
    case MsgType::FormRing:
      return wrap(strict_decode(buf, MsgType::FormRing, read_form_ring));
    case MsgType::Exchange:
      return wrap(strict_decode(buf, MsgType::Exchange, read_exchange));
    case MsgType::RecoveryMsg:
      return wrap(strict_decode(buf, MsgType::RecoveryMsg, read_recovery_msg));
    case MsgType::RecoveryAck:
      return wrap(strict_decode(buf, MsgType::RecoveryAck, read_recovery_ack));
    case MsgType::Beacon: return wrap(strict_decode(buf, MsgType::Beacon, read_beacon));
  }
  return std::nullopt;
}

std::vector<std::uint8_t> encode_msg(const RegularMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Regular));
  encode_inner(w, m);
  return w.take();
}

RegularMsg decode_regular(std::span<const std::uint8_t> buf) {
  return checked_decode(buf, MsgType::Regular, read_regular);
}

std::vector<std::uint8_t> encode_msg(const RegularMsgView& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Regular));
  encode_inner(w, m);
  return w.take();
}

std::optional<RegularMsgView> try_decode_regular_view(
    std::span<const std::uint8_t> buf, BufferRef owner) {
  std::optional<RegularMsgView> m =
      strict_decode<RegularMsgView>(buf, MsgType::Regular, read_regular_view);
  if (m.has_value()) m->owner = std::move(owner);
  return m;
}

RegularMsgView make_view(RegularMsg m) {
  auto buf = std::make_shared<std::vector<std::uint8_t>>(std::move(m.payload));
  RegularMsgView v;
  v.ring = m.ring;
  v.seq = m.seq;
  v.id = m.id;
  v.service = m.service;
  v.payload = std::span<const std::uint8_t>(*buf);
  v.owner = std::move(buf);
  return v;
}

std::vector<std::uint8_t> encode_msg(const TokenMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Token));
  encode(w, m.ring);
  w.u64(m.rotation);
  w.u64(m.seq);
  w.u64(m.aru);
  w.pid(m.aru_setter);
  w.seq_set(m.rtr);
  w.u32(m.fcc);
  return w.take();
}

TokenMsg decode_token(std::span<const std::uint8_t> buf) {
  return checked_decode(buf, MsgType::Token, read_token);
}

std::vector<std::uint8_t> encode_msg(const JoinMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Join));
  w.pid(m.sender);
  w.u64(m.episode);
  w.pid_vec(m.candidates);
  w.pid_vec(m.fail_set);
  w.u64(m.max_ring_seq);
  return w.take();
}

JoinMsg decode_join(std::span<const std::uint8_t> buf) {
  return checked_decode(buf, MsgType::Join, read_join);
}

std::vector<std::uint8_t> encode_msg(const FormRingMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::FormRing));
  w.pid(m.sender);
  encode(w, m.ring);
  w.pid_vec(m.members);
  return w.take();
}

FormRingMsg decode_form_ring(std::span<const std::uint8_t> buf) {
  return checked_decode(buf, MsgType::FormRing, read_form_ring);
}

std::vector<std::uint8_t> encode_msg(const ExchangeMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Exchange));
  w.pid(m.sender);
  encode(w, m.proposed_ring);
  encode(w, m.old_ring);
  w.seq_set(m.received);
  w.u64(m.old_safe_upto);
  w.u64(m.delivered_upto);
  w.seq_set(m.delivered_extra);
  w.u64(m.gc_upto);
  w.pid_vec(m.obligation_set);
  return w.take();
}

ExchangeMsg decode_exchange(std::span<const std::uint8_t> buf) {
  return checked_decode(buf, MsgType::Exchange, read_exchange);
}

std::vector<std::uint8_t> encode_msg(const RecoveryMsgMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::RecoveryMsg));
  w.pid(m.sender);
  encode(w, m.proposed_ring);
  encode_inner(w, m.inner);
  return w.take();
}

RecoveryMsgMsg decode_recovery_msg(std::span<const std::uint8_t> buf) {
  return checked_decode(buf, MsgType::RecoveryMsg, read_recovery_msg);
}

std::vector<std::uint8_t> encode_msg(const RecoveryAckMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::RecoveryAck));
  w.pid(m.sender);
  encode(w, m.proposed_ring);
  encode(w, m.old_ring);
  w.seq_set(m.received);
  w.boolean(m.complete);
  return w.take();
}

RecoveryAckMsg decode_recovery_ack(std::span<const std::uint8_t> buf) {
  return checked_decode(buf, MsgType::RecoveryAck, read_recovery_ack);
}

std::vector<std::uint8_t> encode_msg(const BeaconMsg& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Beacon));
  w.pid(m.sender);
  encode(w, m.ring);
  return w.take();
}

BeaconMsg decode_beacon(std::span<const std::uint8_t> buf) {
  return checked_decode(buf, MsgType::Beacon, read_beacon);
}

}  // namespace evs
