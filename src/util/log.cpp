#include "util/log.hpp"

#include <cstdio>

namespace evs {
namespace {

LogLevel g_level = LogLevel::Warn;
std::function<std::uint64_t()> g_time_source;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }

LogLevel Log::level() { return g_level; }

void Log::set_time_source(std::function<std::uint64_t()> source) {
  g_time_source = std::move(source);
}

void Log::write(LogLevel level, const char* tag, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::uint64_t now = g_time_source ? g_time_source() : 0;
  std::fprintf(stderr, "[%10llu us] %s %-10s ", static_cast<unsigned long long>(now),
               level_name(level), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace evs
