// Fundamental identifier and value types shared across the EVS stack.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <string>

namespace evs {

/// Identifies a process in the distributed system. Stable across crash and
/// recovery (the paper's model: a recovered process keeps its identifier).
struct ProcessId {
  std::uint32_t value{0};

  constexpr auto operator<=>(const ProcessId&) const = default;
};

inline std::string to_string(ProcessId p) { return "P" + std::to_string(p.value); }

/// Virtual time of the discrete-event simulation, in microseconds.
using SimTime = std::uint64_t;

/// Sequence number assigned by the total ordering substrate. Sequence 0 is
/// never assigned to a message; it is the "nothing delivered yet" sentinel.
using SeqNum = std::uint64_t;

/// Monotone counter distinguishing successive rings/configurations.
using RingSeq = std::uint64_t;

/// The delivery guarantee requested for a message (Section 2 of the paper).
enum class Service : std::uint8_t {
  Causal = 0,  ///< delivered once all causal predecessors are delivered
  Agreed = 1,  ///< delivered in total order within each component
  Safe = 2,    ///< delivered only when every member has acknowledged receipt
};

inline const char* to_string(Service s) {
  switch (s) {
    case Service::Causal: return "causal";
    case Service::Agreed: return "agreed";
    case Service::Safe: return "safe";
  }
  return "?";
}

}  // namespace evs

template <>
struct std::hash<evs::ProcessId> {
  std::size_t operator()(const evs::ProcessId& p) const noexcept {
    return std::hash<std::uint32_t>{}(p.value);
  }
};
