// Machine-readable results for the public API.
//
// Library entry points that used to return bool or assert on misuse now
// return Status (or Expected<T> when there is a value to hand back), so an
// embedding application can distinguish "payload too large" from "not in a
// configuration" without parsing log text. Status is cheap: an enum plus an
// optional detail string that is only populated on error paths.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "util/assert.hpp"

namespace evs {

/// Error causes surfaced by the public API. Keep the list append-only: the
/// numeric values are part of the observable API (they appear in metrics
/// snapshots and in embedding applications' switch statements).
enum class Errc : std::uint8_t {
  ok = 0,
  not_running = 1,        ///< operation on a crashed/stopped node
  not_in_config = 2,      ///< sender is not a member of any configuration
  payload_too_large = 3,  ///< payload exceeds Options::max_payload_bytes
  truncated_frame = 4,    ///< frame shorter than its declared body length
  trailing_bytes = 5,     ///< frame longer than its declared body length
  crc_mismatch = 6,       ///< frame body fails the CRC-32 check
  decode_error = 7,       ///< frame body fails strict message validation
  invalid_options = 8,    ///< Options::validate() rejected a combination
  blocked_not_primary = 9,  ///< VS filter rule 2: not in the primary component
  backpressure = 10,        ///< pending send queue at Options::max_pending_sends
  storage_io = 11,          ///< stable-storage write failed (fault-injected I/O)
  invalid_argument = 12,    ///< harness API misuse (unknown pid, bad lifecycle)
  transport_io = 13,        ///< live transport socket operation failed
  bad_frame = 14,           ///< packed datagram with a truncated/garbled trailing frame
  catching_up = 15,         ///< replica is in primary but still state-transferring
};

const char* to_string(Errc e);

class Status {
 public:
  Status() = default;  // ok
  Status(Errc code, std::string detail) : code_(code), detail_(std::move(detail)) {}

  static Status ok_status() { return Status{}; }
  static Status error(Errc code, std::string detail = {}) {
    return Status{code, std::move(detail)};
  }

  bool ok() const { return code_ == Errc::ok; }
  explicit operator bool() const { return ok(); }
  Errc code() const { return code_; }
  const std::string& detail() const { return detail_; }

  /// "ok" or "<code>: <detail>".
  std::string message() const;

 private:
  Errc code_{Errc::ok};
  std::string detail_;
};

/// A value or the Status explaining why there is none. Intentionally tiny —
/// this is not std::expected, just the slice of it the EVS API needs.
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Status status) : status_(std::move(status)) {  // NOLINT
    EVS_ASSERT_MSG(!status_.ok(), "Expected constructed from an ok Status");
  }
  Expected(Errc code, std::string detail = {})
      : status_(Status::error(code, std::move(detail))) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The error (Errc::ok when a value is present).
  const Status& status() const { return status_; }
  Errc code() const { return status_.code(); }

  /// The value; asserts when called on an error (the legacy hard-fail
  /// behaviour, now opt-in at the call site instead of mandatory).
  T& value() {
    EVS_ASSERT_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  const T& value() const {
    EVS_ASSERT_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

inline const char* to_string(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_running: return "not_running";
    case Errc::not_in_config: return "not_in_config";
    case Errc::payload_too_large: return "payload_too_large";
    case Errc::truncated_frame: return "truncated_frame";
    case Errc::trailing_bytes: return "trailing_bytes";
    case Errc::crc_mismatch: return "crc_mismatch";
    case Errc::decode_error: return "decode_error";
    case Errc::invalid_options: return "invalid_options";
    case Errc::blocked_not_primary: return "blocked_not_primary";
    case Errc::backpressure: return "backpressure";
    case Errc::storage_io: return "storage_io";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::transport_io: return "transport_io";
    case Errc::bad_frame: return "bad_frame";
    case Errc::catching_up: return "catching_up";
  }
  return "?";
}

inline std::string Status::message() const {
  if (ok()) return "ok";
  std::string out = to_string(code_);
  if (!detail_.empty()) {
    out += ": ";
    out += detail_;
  }
  return out;
}

}  // namespace evs
