// Deterministic pseudo-random number generation for reproducible simulation.
//
// The simulator must be bit-for-bit reproducible from a seed so that every
// failing property test can be replayed. We use splitmix64 for seeding and
// xoshiro256** for the stream; both are tiny, fast and well distributed.
#pragma once

#include <cstdint>
#include <limits>

namespace evs {

/// splitmix64 step: used to expand a single seed into a full state vector.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic RNG (xoshiro256**). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0xC0FFEE) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream (for per-process RNGs).
  constexpr Rng split() {
    std::uint64_t seed = (*this)();
    return Rng(seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace evs
