// Internal invariant checking.
//
// EVS_ASSERT is always on (also in release builds): the protocol engines are
// state machines whose invariants, if broken, must abort the simulation run
// immediately rather than corrupt a trace that the spec checker then blames
// on the model.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace evs::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "EVS_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace evs::detail

#define EVS_ASSERT(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::evs::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define EVS_ASSERT_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) ::evs::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
