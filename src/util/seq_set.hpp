// SeqSet: an ordered set of sequence numbers stored as disjoint intervals.
//
// The protocol engines track "which sequence numbers have I received" and
// "which does the token still need retransmitted". Those sets are dense runs
// with occasional holes, so an interval representation is both compact and
// gives O(log n) membership with n = number of holes, not number of messages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace evs {

class SeqSet {
 public:
  /// Closed interval [lo, hi].
  struct Interval {
    SeqNum lo{0};
    SeqNum hi{0};
    bool operator==(const Interval&) const = default;
  };

  SeqSet() = default;

  bool empty() const { return intervals_.empty(); }
  std::size_t interval_count() const { return intervals_.size(); }

  /// Number of elements contained.
  std::uint64_t size() const;

  bool contains(SeqNum s) const;

  /// Insert a single sequence number; returns true if it was new.
  bool insert(SeqNum s);

  /// Insert the closed range [lo, hi].
  void insert_range(SeqNum lo, SeqNum hi);

  /// Remove a single sequence number.
  void erase(SeqNum s);

  /// Largest s such that every value in [from+1, s] is present; returns
  /// `from` when from+1 is absent. This is the "all received up to" scan.
  SeqNum contiguous_from(SeqNum from) const;

  /// Smallest element, or 0 if empty.
  SeqNum min() const { return empty() ? 0 : intervals_.front().lo; }

  /// Largest element, or 0 if empty.
  SeqNum max() const { return empty() ? 0 : intervals_.back().hi; }

  /// Elements of [lo, hi] that are NOT in this set (the holes). Computed
  /// interval-wise; the output is one element per hole, so callers that must
  /// bound allocation should use missing_intervals() instead.
  std::vector<SeqNum> missing_in(SeqNum lo, SeqNum hi) const;

  /// The holes of [lo, hi] as closed intervals. At most interval_count()+1
  /// entries regardless of the range width, so this is the safe form for
  /// untrusted or unbounded ranges.
  std::vector<Interval> missing_intervals(SeqNum lo, SeqNum hi) const;

  /// The contained runs intersected with [lo, hi], clipped to the range.
  /// At most interval_count() entries.
  std::vector<Interval> intersection_intervals(SeqNum lo, SeqNum hi) const;

  /// Set union, in place.
  void merge(const SeqSet& other);

  /// All contained elements in ascending order. Intended for small sets.
  std::vector<SeqNum> to_vector() const;

  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Rebuild from a raw interval list (used by the wire codec). Intervals
  /// must be sorted, disjoint and non-adjacent; this is checked.
  static SeqSet from_intervals(std::vector<Interval> intervals);

  std::string to_string() const;

  bool operator==(const SeqSet&) const = default;

 private:
  // Sorted, pairwise-disjoint, non-adjacent (gap >= 1 between intervals).
  std::vector<Interval> intervals_;
};

}  // namespace evs
