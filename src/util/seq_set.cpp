#include "util/seq_set.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace evs {

std::uint64_t SeqSet::size() const {
  std::uint64_t n = 0;
  for (const auto& iv : intervals_) {
    const std::uint64_t count = iv.hi - iv.lo + 1;  // wraps to 0 for {0..2^64-1}
    if (count == 0 || n + count < n) return UINT64_MAX;  // saturate
    n += count;
  }
  return n;
}

bool SeqSet::contains(SeqNum s) const {
  auto it = std::upper_bound(intervals_.begin(), intervals_.end(), s,
                             [](SeqNum v, const Interval& iv) { return v < iv.lo; });
  if (it == intervals_.begin()) return false;
  --it;
  return s <= it->hi;
}

bool SeqSet::insert(SeqNum s) {
  if (contains(s)) return false;
  insert_range(s, s);
  return true;
}

void SeqSet::insert_range(SeqNum lo, SeqNum hi) {
  EVS_ASSERT(lo <= hi);
  // Find the first interval that could touch [lo, hi] (overlap or adjacency).
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), lo,
      [](const Interval& iv, SeqNum v) { return v != 0 && iv.hi < v - 1; });
  SeqNum new_lo = lo;
  SeqNum new_hi = hi;
  auto last = first;
  while (last != intervals_.end() && last->lo <= (hi == UINT64_MAX ? hi : hi + 1)) {
    new_lo = std::min(new_lo, last->lo);
    new_hi = std::max(new_hi, last->hi);
    ++last;
  }
  auto pos = intervals_.erase(first, last);
  intervals_.insert(pos, Interval{new_lo, new_hi});
}

void SeqSet::erase(SeqNum s) {
  auto it = std::upper_bound(intervals_.begin(), intervals_.end(), s,
                             [](SeqNum v, const Interval& iv) { return v < iv.lo; });
  if (it == intervals_.begin()) return;
  --it;
  if (s > it->hi) return;
  Interval old = *it;
  if (old.lo == old.hi) {
    intervals_.erase(it);
  } else if (s == old.lo) {
    it->lo = s + 1;
  } else if (s == old.hi) {
    it->hi = s - 1;
  } else {
    it->hi = s - 1;
    intervals_.insert(it + 1, Interval{s + 1, old.hi});
  }
}

SeqNum SeqSet::contiguous_from(SeqNum from) const {
  if (from == UINT64_MAX) return from;  // from+1 would wrap
  auto it = std::upper_bound(intervals_.begin(), intervals_.end(), from + 1,
                             [](SeqNum v, const Interval& iv) { return v < iv.lo; });
  if (it == intervals_.begin()) return from;
  --it;
  if (from + 1 >= it->lo && from + 1 <= it->hi) return it->hi;
  return from;
}

std::vector<SeqSet::Interval> SeqSet::missing_intervals(SeqNum lo, SeqNum hi) const {
  std::vector<Interval> holes;
  if (lo > hi) return holes;
  SeqNum cursor = lo;
  for (const auto& iv : intervals_) {
    if (iv.hi < cursor) continue;
    if (iv.lo > hi) break;
    if (cursor < iv.lo) holes.push_back({cursor, iv.lo - 1});
    if (iv.hi == UINT64_MAX) return holes;  // nothing can follow
    cursor = std::max(cursor, iv.hi + 1);
    if (cursor > hi) return holes;
  }
  holes.push_back({cursor, hi});
  return holes;
}

std::vector<SeqSet::Interval> SeqSet::intersection_intervals(SeqNum lo,
                                                             SeqNum hi) const {
  std::vector<Interval> runs;
  if (lo > hi) return runs;
  // First interval that can reach lo (iv.hi >= lo).
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), lo,
      [](const Interval& iv, SeqNum v) { return iv.hi < v; });
  for (; it != intervals_.end() && it->lo <= hi; ++it) {
    runs.push_back({std::max(it->lo, lo), std::min(it->hi, hi)});
  }
  return runs;
}

std::vector<SeqNum> SeqSet::missing_in(SeqNum lo, SeqNum hi) const {
  std::vector<SeqNum> holes;
  for (const Interval& iv : missing_intervals(lo, hi)) {
    for (SeqNum s = iv.lo;; ++s) {
      holes.push_back(s);
      if (s == iv.hi) break;  // not a for-condition: hi+1 may wrap
    }
  }
  return holes;
}

void SeqSet::merge(const SeqSet& other) {
  for (const auto& iv : other.intervals_) insert_range(iv.lo, iv.hi);
}

std::vector<SeqNum> SeqSet::to_vector() const {
  std::vector<SeqNum> out;
  out.reserve(size());
  for (const auto& iv : intervals_) {
    for (SeqNum s = iv.lo;; ++s) {
      out.push_back(s);
      if (s == iv.hi) break;  // not a for-condition: hi+1 may wrap
    }
  }
  return out;
}

SeqSet SeqSet::from_intervals(std::vector<Interval> intervals) {
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    EVS_ASSERT(intervals[i].lo <= intervals[i].hi);
    // Strictly after the previous interval with a gap; an interval ending at
    // UINT64_MAX can have no successor (hi+1 would wrap and vacuously pass).
    if (i > 0) {
      EVS_ASSERT(intervals[i - 1].hi != UINT64_MAX &&
                 intervals[i - 1].hi + 1 < intervals[i].lo);
    }
  }
  SeqSet set;
  set.intervals_ = std::move(intervals);
  return set;
}

std::string SeqSet::to_string() const {
  std::string out = "{";
  for (const auto& iv : intervals_) {
    if (out.size() > 1) out += ",";
    out += std::to_string(iv.lo);
    if (iv.hi != iv.lo) out += "-" + std::to_string(iv.hi);
  }
  return out + "}";
}

}  // namespace evs
