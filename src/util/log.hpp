// Minimal leveled logger with a pluggable virtual-time source.
//
// The simulator installs a time source so every log line is stamped with the
// simulated time at which the logged protocol event occurred, which is what
// you want when debugging a partition schedule.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <functional>
#include <string>

namespace evs {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Install a function returning the current virtual time (microseconds).
  static void set_time_source(std::function<std::uint64_t()> source);

  static void write(LogLevel level, const char* tag, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));
};

}  // namespace evs

#define EVS_LOG(lvl, tag, ...)                                     \
  do {                                                             \
    if (static_cast<int>(lvl) >= static_cast<int>(::evs::Log::level())) \
      ::evs::Log::write(lvl, tag, __VA_ARGS__);                    \
  } while (0)

#define EVS_TRACE(tag, ...) EVS_LOG(::evs::LogLevel::Trace, tag, __VA_ARGS__)
#define EVS_DEBUG(tag, ...) EVS_LOG(::evs::LogLevel::Debug, tag, __VA_ARGS__)
#define EVS_INFO(tag, ...) EVS_LOG(::evs::LogLevel::Info, tag, __VA_ARGS__)
#define EVS_WARN(tag, ...) EVS_LOG(::evs::LogLevel::Warn, tag, __VA_ARGS__)
#define EVS_ERROR(tag, ...) EVS_LOG(::evs::LogLevel::Error, tag, __VA_ARGS__)
