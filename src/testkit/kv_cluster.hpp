// KvCluster: the simulated harness for the sharded KV service. S shards,
// each an independent EVS group — its own testkit::Cluster, with its own
// Scheduler, Network, stores and trace — advanced in lockstep time slices
// so the shard clocks stay equal and cross-shard throughput comparisons
// are meaningful.
//
// All N processes are members of every shard ring (the shard group tracks
// global membership); the ShardRouter designates which R of them replicate
// each shard's store. Only replicas attach the shard to their agent:
// writes for a shard must be submitted at one of its replicas, reads are
// served by in-primary replicas, and the other ring members just carry the
// token. A membership change re-derives every replica group from the
// surviving members (remap()).
//
// Note: attaching a shard overrides that node's batch delivery handler, so
// the underlying Cluster::Sink stops recording regular deliveries for
// replica nodes. Spec checking (check_report) reads the TraceLog and is
// unaffected; assert on KvStore contents / agent stats instead of sinks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/kv_sharded.hpp"
#include "shard/router.hpp"
#include "testkit/cluster.hpp"

namespace evs {

class KvCluster {
 public:
  struct Options {
    std::size_t num_processes{4};
    shard::ShardRouter::Options router{};
    Network::Options net{};
    EvsNode::Options node{};
    shard::TransferConfig transfer{};
    std::uint64_t seed{1};
    SimTime watchdog_window_us{0};
  };

  explicit KvCluster(Options options);
  KvCluster() : KvCluster(Options{}) {}

  std::size_t size() const { return agents_.size(); }
  std::size_t num_shards() const { return shards_.size(); }
  ProcessId pid(std::size_t index) const { return shards_[0]->pid(index); }

  const shard::ShardRouter& router() const { return router_; }
  apps::KvShardedNode& agent(std::size_t index) { return *agents_[index]; }
  apps::KvShardedNode& agent(ProcessId p) { return agent(p.value - 1); }

  /// The shard's underlying simulated cluster (its ring, network, trace).
  Cluster& shard_cluster(shard::ShardId s) { return *shards_[s]; }
  const Cluster& shard_cluster(shard::ShardId s) const { return *shards_[s]; }

  /// A replica of `shard` whose agent accepts writes for it right now, or
  /// nullptr when no replica is in primary (e.g. mid-partition).
  apps::KvShardedNode* writer(shard::ShardId shard);

  // --- time: every shard cluster advances by the same slice ---
  void run_for(SimTime us);
  SimTime now() const { return shards_[0]->now(); }

  /// Run until `predicate()` holds, advancing all shards in `step_us`
  /// slices; false if `max_wait_us` elapses first.
  bool await(const std::function<bool()>& predicate, SimTime max_wait_us,
             SimTime step_us = 500);
  /// Every shard cluster stable (see Cluster::stable).
  bool await_stable(SimTime max_wait_us = 2'000'000);
  /// Every shard stable, then run until deliveries and send queues settle
  /// on every shard AND every in-primary replica is serving (catch-up
  /// done) — post-quiesce reads must not bounce off Errc::catching_up.
  bool await_quiesce(SimTime max_wait_us = 4'000'000);
  /// Every alive in-primary replica of every shard reports serving().
  bool all_serving() const;
  /// Run until all_serving(); false if `max_wait_us` elapses first.
  bool await_serving(SimTime max_wait_us = 4'000'000);

  // --- scripting (indexes are process indexes, same in every shard) ---
  /// Partition ONE shard's network; the other shards are untouched — the
  /// isolation the sharded design exists to provide.
  void partition_shard(shard::ShardId s,
                       const std::vector<std::vector<std::size_t>>& groups);
  void heal_shard(shard::ShardId s);
  /// Partition every shard's network the same way (a real switch failure
  /// hits all groups at once).
  void partition_all(const std::vector<std::vector<std::size_t>>& groups);
  void heal_all();

  /// Crash / recover the process in EVERY shard ring, then re-derive the
  /// replica groups from the surviving membership and re-attach agents.
  Status crash(ProcessId p);
  Status recover(ProcessId p);

  /// Re-derive replica groups from `alive` and (re)attach each agent to the
  /// shards it now replicates. Returns true if any group changed.
  bool remap(const std::vector<ProcessId>& alive);

  // --- checking ---
  /// Concatenated per-shard spec-check reports, each line prefixed with the
  /// shard id; empty when every shard's trace is conformant.
  std::string check_report(bool quiescent = true) const;

  /// True when every pair of replicas of `shard` holds an identical map —
  /// store fingerprints first (O(1) per replica), contents as a backstop
  /// so an incremental-fingerprint bug cannot mask real divergence.
  bool replicas_agree(shard::ShardId shard) const;

  /// Empty when replicas agree; otherwise one line per divergent replica
  /// with its fingerprint/size and the first byte-level differing entry
  /// versus the lowest-id replica (the anti-entropy tests' debugging aid).
  std::string divergence(shard::ShardId shard) const;

  /// Every shard cluster's aggregate, plus every agent's kv.* registry,
  /// merged into one registry.
  obs::MetricsRegistry aggregate_metrics() const;

 private:
  Options options_;
  shard::ShardRouter router_;
  std::vector<std::unique_ptr<Cluster>> shards_;
  std::vector<std::unique_ptr<apps::KvShardedNode>> agents_;
  std::vector<ProcessId> alive_;
};

}  // namespace evs
