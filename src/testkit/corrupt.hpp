// State-corruption fuzzing: perturb a victim node's volatile protocol state
// and check that the system either ejects the victim (it fail-stops, or its
// peers reconfigure around it) or reconverges spec-clean.
//
// "Practically-Self-Stabilizing Virtual Synchrony" (see PAPERS.md) argues
// the interesting failure class for group communication is *arbitrary
// corrupted volatile state* — stale ring identifiers, counters near
// wraparound, poisoned bookkeeping sets — not just crash and partition.
// This header is the test-side half of that claim: NodeIntrospect is a
// narrow, friend-based hook into the private state of EvsNode /
// GatherState / OrderingCore (test-only; nothing in src/ outside testkit
// includes it), and apply_corruption() implements one mutation per
// corruption class. The defenses under test live in the protocol itself:
// decode-time plausibility bounds (kMaxRingSeq), ring-seq repair
// (evs.ring_seq_repairs), exchange normalization, and the
// state_consistent() fail-stop guards (evs.state_fail_stops). DESIGN.md
// "State-corruption fault model" maps each class to its defense.
#pragma once

#include <array>
#include <cstdint>

#include "evs/node.hpp"
#include "member/membership.hpp"
#include "totem/ordering.hpp"
#include "util/rng.hpp"

namespace evs {

/// Test-only access to private protocol state. Every accessor returns a
/// reference into the live object; mutating through it models bit rot / a
/// wild write, not any legal protocol transition.
struct NodeIntrospect {
  static RingSeq& ring_seq(EvsNode& n) { return n.ring_seq_; }
  static std::vector<ProcessId>& obligation_set(EvsNode& n) { return n.obligation_set_; }
  static SeqNum& old_gc_upto(EvsNode& n) { return n.old_gc_upto_; }
  static SeqNum old_delivered_upto(const EvsNode& n) { return n.old_delivered_upto_; }
  static GatherState* gather(EvsNode& n) {
    return n.gather_.has_value() ? &*n.gather_ : nullptr;
  }
  static OrderingCore* core(EvsNode& n) {
    return n.core_.has_value() ? &*n.core_ : nullptr;
  }

  static RingSeq& max_ring_seq_seen(GatherState& g) { return g.max_ring_seq_seen_; }

  static SeqNum& gc_upto(OrderingCore& c) { return c.gc_upto_; }
  static std::uint32_t& prev_visit_broadcasts(OrderingCore& c) {
    return c.prev_visit_broadcasts_;
  }
};

/// One corruption class per mutation the fuzzer knows how to make. Each maps
/// to a taxonomy entry in DESIGN.md "State-corruption fault model".
enum class CorruptionKind {
  RingSeqRegression,   ///< ring_seq_ drops below the installed ring's seq
  RingSeqWraparound,   ///< ring_seq_ jumps to ~UINT64_MAX (past kMaxRingSeq)
  StaleMaxRingSeq,     ///< gather's max_ring_seq_seen_ poisoned past the bound
  PoisonedObligations, ///< obligation_set_ duplicated / unsorted / bogus pids
  CorruptGcUpto,       ///< GC watermark regressed or pushed past delivery
  CorruptFcc,          ///< flow-control visit counter blown up
};

inline constexpr std::array<CorruptionKind, 6> kAllCorruptionKinds{
    CorruptionKind::RingSeqRegression,  CorruptionKind::RingSeqWraparound,
    CorruptionKind::StaleMaxRingSeq,    CorruptionKind::PoisonedObligations,
    CorruptionKind::CorruptGcUpto,      CorruptionKind::CorruptFcc,
};

const char* to_string(CorruptionKind k);

/// Mutate `victim`'s volatile state per `kind`, drawing magnitudes from
/// `rng`. Returns false when the victim's current state offers nothing to
/// corrupt for this class (e.g. StaleMaxRingSeq outside a gather, GC
/// watermark still zero) — the caller picks another class or skips the
/// trial. Never touches stable storage and never performs a legal protocol
/// action: a `true` return means the victim now holds state no correct
/// execution could have produced.
bool apply_corruption(EvsNode& victim, CorruptionKind kind, Rng& rng);

}  // namespace evs
