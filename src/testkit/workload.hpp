// Workload and fault-schedule generators shared by property tests, examples
// and benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "testkit/cluster.hpp"
#include "util/rng.hpp"

namespace evs {

/// Queue `count` messages at random running nodes. `safe_fraction` of them
/// request safe delivery, the rest split between agreed and causal.
/// Returns the queued message ids.
std::vector<MsgId> send_random_burst(Cluster& cluster, Rng& rng, int count,
                                     double safe_fraction = 0.3,
                                     std::size_t payload_bytes = 16);

/// Split the cluster's processes into 1..max_groups random components.
void random_partition(Cluster& cluster, Rng& rng, std::size_t max_groups = 3);

struct RandomScheduleOptions {
  int rounds{10};
  SimTime round_length_us{60'000};
  double partition_probability{0.35};
  double heal_probability{0.35};
  double crash_probability{0.15};
  double recover_probability{0.5};  ///< per crashed process per round
  int messages_per_round{12};
  double safe_fraction{0.4};
  std::size_t max_down{1};  ///< cap on simultaneously crashed processes
};

struct RandomScheduleStats {
  int partitions{0};
  int heals{0};
  int crashes{0};
  int recoveries{0};
  int messages_sent{0};
};

/// Drive the cluster through a random schedule of partitions, merges,
/// crashes, recoveries and traffic. Afterwards the network is healed, every
/// process is recovered, and the cluster is run to quiescence so the full
/// (quiescent) specification check applies. Returns what happened; asserts
/// (via EVS_ASSERT) that the system actually re-stabilized.
RandomScheduleStats run_random_schedule(Cluster& cluster, Rng& rng,
                                        const RandomScheduleOptions& options);

}  // namespace evs
