// ClusterSnapshot: one cluster's observable state at an instant of virtual
// time, captured by Cluster::snapshot().
//
// The same snapshot serves every consumer through one code path:
//   * to_json() emits the "evs.obs.snapshot" v1 document that
//     obs::validate_snapshot_json() enforces — used by the obs tests (two
//     runs with the same (seed, FaultPlan) must serialize byte-identically)
//     and by tooling that wants machine-readable cluster state.
//   * to_text() renders the human liveness report the watchdog attaches to
//     its failure messages.
// Both read the same captured registries, so the text report can never
// drift from what the JSON exporter (and therefore the tests) see.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/faults.hpp"
#include "util/types.hpp"

namespace evs {

struct ClusterSnapshot {
  struct Node {
    ProcessId pid;
    bool started{false};  ///< a node object exists (may have crashed since)
    bool running{false};
    std::string state;    ///< to_string(EvsNode::State), "" if never started
    std::string config;   ///< to_string(configuration id), "" if never started
    std::uint64_t pending_sends{0};
    obs::MetricsRegistry metrics;  ///< copy of the node's registry
  };

  SimTime time_us{0};
  std::vector<Node> nodes;
  obs::MetricsRegistry network;    ///< copy of the Network's registry
  obs::MetricsRegistry aggregate;  ///< merge of all node registries + network
  bool have_injector{false};
  FaultStats faults;       ///< zeroes when no injector installed
  std::string fault_log;   ///< recent injected faults, "" without injector

  /// "evs.obs.snapshot" v1 JSON document (deterministic byte-for-byte for a
  /// fixed (seed, FaultPlan) run; see obs/metrics.hpp).
  std::string to_json() const;

  /// Human-readable liveness report (per-process line, network line, fault
  /// stats and the recent fault log).
  std::string to_text() const;
};

}  // namespace evs
