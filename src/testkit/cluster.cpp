#include "testkit/cluster.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace evs {

std::vector<MsgId> Cluster::Sink::delivered_ids() const {
  std::vector<MsgId> out;
  out.reserve(deliveries.size());
  for (const auto& d : deliveries) out.push_back(d.id);
  return out;
}

bool Cluster::Sink::delivered(const MsgId& m) const { return find(m) != nullptr; }

const EvsNode::Delivery* Cluster::Sink::find(const MsgId& m) const {
  for (const auto& d : deliveries) {
    if (d.id == m) return &d;
  }
  return nullptr;
}

Cluster::Cluster(Options options)
    : options_(options), rng_(options.seed) {
  network_ = std::make_unique<Network>(scheduler_, rng_.split(), options_.net);
  if (!options_.faults.empty()) network_->set_fault_plan(options_.faults);
  if (options_.enable_spans) spans_ = std::make_unique<obs::SpanSink>();
  Log::set_time_source([this] { return scheduler_.now(); });
  procs_.reserve(options_.num_processes);
  for (std::size_t i = 0; i < options_.num_processes; ++i) {
    Proc proc;
    proc.pid = ProcessId{static_cast<std::uint32_t>(i + 1)};
    proc.store = std::make_unique<StableStore>();
    // Route every record append through the network's fault injector (when
    // a plan with storage rules is installed), so disk and network faults
    // draw from one deterministic seeded stream.
    proc.store->set_fault_hook(
        [this, pid = proc.pid](std::size_t record_bytes) {
          FaultInjector* inj = network_->faults_mutable();
          if (inj == nullptr) return StableStore::WriteFault{};
          return inj->apply_storage(pid, scheduler_.now(), record_bytes);
        });
    procs_.push_back(std::move(proc));
  }
  if (options_.auto_start) start_all();
}

ProcessId Cluster::pid(std::size_t index) const {
  EVS_ASSERT(index < procs_.size());
  return procs_[index].pid;
}

std::vector<ProcessId> Cluster::pids() const {
  std::vector<ProcessId> out;
  for (const auto& proc : procs_) out.push_back(proc.pid);
  return out;
}

EvsNode& Cluster::node(std::size_t index) {
  EVS_ASSERT(index < procs_.size() && procs_[index].node != nullptr);
  return *procs_[index].node;
}

EvsNode& Cluster::node(ProcessId p) { return node(p.value - 1); }

Cluster::Sink& Cluster::sink(std::size_t index) {
  EVS_ASSERT(index < procs_.size());
  return procs_[index].sink;
}

Cluster::Sink& Cluster::sink(ProcessId p) { return sink(p.value - 1); }

StableStore& Cluster::store(ProcessId p) {
  EVS_ASSERT(p.value >= 1 && p.value <= procs_.size());
  return *procs_[p.value - 1].store;
}

void Cluster::wire(Proc& proc) {
  Sink* sink = &proc.sink;
  // Transitional (recovery-time) deliveries arrive per message; regular ones
  // arrive through the zero-copy batch callback, which takes precedence for
  // that path. Materializing owned Delivery records here keeps the tests'
  // value-semantics assertions while every sim run exercises the hot path.
  proc.node->set_on_deliver(
      [sink](const EvsNode::Delivery& d) { sink->deliveries.push_back(d); });
  proc.node->set_on_deliver_batch(
      [sink](std::span<const EvsNode::DeliveryView> batch) {
        for (const EvsNode::DeliveryView& v : batch) {
          sink->deliveries.push_back(EvsNode::Delivery{
              v.id, v.service, v.seq,
              std::vector<std::uint8_t>(v.payload.begin(), v.payload.end()),
              *v.config, v.ord});
        }
      });
  proc.node->set_on_config_change(
      [sink](const Configuration& c) { sink->configs.push_back(c); });
  proc.node->set_span_sink(spans_.get());
}

void Cluster::start_all() {
  for (auto& proc : procs_) {
    if (proc.node == nullptr) {
      const Status st = start(proc.pid);
      // A fail-stopped boot (storage fault during the boot persist) is a
      // legitimate simulated outcome, not a harness bug: the process is left
      // crashed and recover() can retry it once the fault plan allows.
      EVS_ASSERT_MSG(st.ok() || st.code() == Errc::storage_io,
                     st.message().c_str());
    }
  }
}

Status Cluster::valid_pid(ProcessId p) const {
  if (p.value < 1 || p.value > procs_.size()) {
    return Status::error(Errc::invalid_argument, "unknown process id");
  }
  return Status{};
}

Status Cluster::start(ProcessId p) {
  if (Status st = valid_pid(p); !st.ok()) return st;
  Proc& proc = procs_[p.value - 1];
  if (proc.node != nullptr && proc.node->running()) {
    return Status::error(Errc::invalid_argument, "start() on a running process");
  }
  proc.node = std::make_unique<EvsNode>(p, *network_, *proc.store, &trace_,
                                        options_.node);
  wire(proc);
  proc.node->start();
  if (!proc.node->running()) {
    // The boot's own persistence failed and tore the partial start down.
    return Status::error(Errc::storage_io, "boot persistence failed; fail-stopped");
  }
  return Status{};
}

Status Cluster::crash(ProcessId p) {
  if (Status st = valid_pid(p); !st.ok()) return st;
  Proc& proc = procs_[p.value - 1];
  if (proc.node == nullptr || !proc.node->running()) {
    return Status::error(Errc::invalid_argument,
                         "crash() on a process that is not running");
  }
  proc.node->crash();
  // The machine died with the process: volatile store state is gone too.
  // An armed-but-untripped crash point dies with the incarnation.
  proc.store->disarm_write_budget();
  proc.store->crash();
  return Status{};
}

Status Cluster::recover(ProcessId p) {
  if (Status st = valid_pid(p); !st.ok()) return st;
  Proc& proc = procs_[p.value - 1];
  if (proc.node == nullptr) {
    return Status::error(Errc::invalid_argument, "recover() before any start()");
  }
  if (proc.node->running()) {
    return Status::error(Errc::invalid_argument, "recover() on a running process");
  }
  // Reboot order: replay and repair the durable log (truncate a torn tail,
  // quarantine corrupt records), then boot the fresh incarnation on it.
  const StableStore::OpenReport report = proc.store->open();
  if (report.repaired()) {
    EVS_INFO("testkit", "%s store repaired on recovery: %zu torn, %zu corrupt",
             to_string(p).c_str(), report.torn_truncated,
             report.corrupt_quarantined);
  }
  return start(p);
}

Status Cluster::arm_crash_point(ProcessId p, std::uint64_t nth_write,
                                StableStore::TailFault variant) {
  if (Status st = valid_pid(p); !st.ok()) return st;
  Proc& proc = procs_[p.value - 1];
  proc.store->arm_write_budget(nth_write, variant, [this, p] {
    // Crash *after* the event containing the write completes: +0 schedules
    // ahead of every packet delivery (Network::Options::min_delay_us > 0),
    // so nothing else of the protocol runs first. Re-entering the store
    // from this callback is forbidden; scheduling is all it does.
    scheduler_.schedule_after(0, [this, p] { (void)crash(p); });
  });
  return Status{};
}

std::uint64_t Cluster::store_writes(ProcessId p) const {
  EVS_ASSERT(p.value >= 1 && p.value <= procs_.size());
  return procs_[p.value - 1].store->appends_attempted();
}

void Cluster::partition(const std::vector<std::vector<std::size_t>>& groups) {
  std::vector<std::vector<ProcessId>> components;
  for (const auto& group : groups) {
    std::vector<ProcessId> component;
    for (std::size_t index : group) component.push_back(pid(index));
    components.push_back(std::move(component));
  }
  network_->set_components(components);
}

void Cluster::heal() { network_->merge_all(); }

void Cluster::watchdog_fire() {
  // Fail fast: no token handled, nothing delivered, no membership activity
  // at any running node for a whole watchdog window. Waiting out the
  // deadline would only hide where the cluster got stuck. One snapshot
  // feeds both outputs: the human report in the warning, and — when
  // EVS_OBS_OUT names a file — the machine-readable "evs.obs.snapshot"
  // document for postmortem tooling.
  watchdog_tripped_ = true;
  const ClusterSnapshot snap = snapshot();
  EVS_WARN("testkit", "liveness watchdog: no protocol progress for %llu us\n%s",
           static_cast<unsigned long long>(options_.watchdog_window_us),
           snap.to_text().c_str());
  if (const char* path = std::getenv("EVS_OBS_OUT");
      path != nullptr && *path != '\0') {
    if (std::FILE* f = std::fopen(path, "w")) {
      const std::string doc = snap.to_json();
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }
}

std::uint64_t Cluster::progress_signature() const {
  std::uint64_t sig = 0;
  for (const auto& proc : procs_) {
    if (proc.node == nullptr || !proc.node->running()) continue;
    const auto& s = proc.node->stats();
    sig += s.delivered + s.conf_changes + s.tokens_handled + s.gathers +
           s.recoveries + s.sent;
  }
  return sig;
}

const EvsNode* Cluster::node_ptr(std::size_t index) const {
  EVS_ASSERT(index < procs_.size());
  return procs_[index].node.get();
}

bool Cluster::await(const std::function<bool()>& predicate, SimTime max_wait_us,
                    SimTime step_us) {
  const SimTime deadline = scheduler_.now() + max_wait_us;
  std::uint64_t sig = progress_signature();
  SimTime last_progress = scheduler_.now();
  while (scheduler_.now() < deadline) {
    if (predicate()) return true;
    scheduler_.run_for(step_us);
    if (options_.watchdog_window_us > 0) {
      const std::uint64_t now_sig = progress_signature();
      if (now_sig != sig) {
        sig = now_sig;
        last_progress = scheduler_.now();
      } else if (scheduler_.now() - last_progress >= options_.watchdog_window_us) {
        watchdog_fire();
        return false;
      }
    }
  }
  return predicate();
}

bool Cluster::stable() const {
  for (const auto& proc : procs_) {
    if (proc.node == nullptr || !proc.node->running()) continue;
    if (proc.node->state() != EvsNode::State::Operational) return false;
    // The node's configuration must contain exactly the running processes
    // of its network component, and all of them must agree on it.
    const auto component = network_->component_of(proc.pid);
    std::vector<ProcessId> running;
    for (ProcessId q : component) {
      const auto& other = procs_[q.value - 1];
      if (other.node != nullptr && other.node->running()) running.push_back(q);
    }
    if (proc.node->config().members != running) return false;
    for (ProcessId q : running) {
      const auto& other = procs_[q.value - 1];
      if (other.node->state() != EvsNode::State::Operational) return false;
      if (!(other.node->config().id == proc.node->config().id)) return false;
    }
  }
  return true;
}

bool Cluster::await_stable(SimTime max_wait_us) {
  return await([this] { return stable(); }, max_wait_us, 1'000);
}

bool Cluster::await_quiesce(SimTime max_wait_us) {
  const SimTime deadline = scheduler_.now() + max_wait_us;
  if (!await_stable(max_wait_us)) return false;
  auto totals = [this] {
    std::uint64_t delivered = 0;
    std::uint64_t pending = 0;
    for (const auto& proc : procs_) {
      if (proc.node == nullptr) continue;
      delivered += proc.node->stats().delivered;
      pending += proc.node->pending_sends();
    }
    return std::pair{delivered, pending};
  };
  std::uint64_t sig = progress_signature();
  SimTime last_progress = scheduler_.now();
  while (scheduler_.now() < deadline) {
    const auto before = totals();
    scheduler_.run_for(20'000);
    const auto after = totals();
    if (stable() && after.second == 0 && after.first == before.first) return true;
    if (options_.watchdog_window_us > 0) {
      const std::uint64_t now_sig = progress_signature();
      if (now_sig != sig) {
        sig = now_sig;
        last_progress = scheduler_.now();
      } else if (scheduler_.now() - last_progress >= options_.watchdog_window_us) {
        watchdog_fire();
        return false;
      }
    }
  }
  return false;
}

ClusterSnapshot Cluster::snapshot() const {
  ClusterSnapshot snap;
  snap.time_us = scheduler_.now();
  snap.nodes.reserve(procs_.size());
  for (const auto& proc : procs_) {
    ClusterSnapshot::Node n;
    n.pid = proc.pid;
    if (proc.node != nullptr) {
      n.started = true;
      n.running = proc.node->running();
      n.state = to_string(proc.node->state());
      n.config = to_string(proc.node->config().id);
      n.pending_sends = proc.node->pending_sends();
      n.metrics = proc.node->metrics();
      n.metrics.merge_from(proc.store->metrics());
      n.metrics.gauge("evs.pending_sends")
          .set(static_cast<std::int64_t>(n.pending_sends));
    }
    snap.nodes.push_back(std::move(n));
  }
  snap.network = network_->metrics();
  for (const auto& n : snap.nodes) snap.aggregate.merge_from(n.metrics);
  for (const auto& proc : procs_) {
    // Stores of never-started processes still carry the storage.* counters
    // the snapshot schema requires in the aggregate.
    if (proc.node == nullptr) snap.aggregate.merge_from(proc.store->metrics());
  }
  snap.aggregate.merge_from(snap.network);
  if (const FaultInjector* inj = network_->faults()) {
    snap.have_injector = true;
    snap.faults = inj->stats();
    snap.fault_log = inj->format_log();
  }
  return snap;
}

obs::MetricsRegistry Cluster::aggregate_metrics() const {
  obs::MetricsRegistry agg;
  for (const auto& proc : procs_) {
    if (proc.node != nullptr) agg.merge_from(proc.node->metrics());
    agg.merge_from(proc.store->metrics());
  }
  agg.merge_from(network_->metrics());
  return agg;
}

std::vector<Violation> Cluster::check(bool quiescent) const {
  SpecChecker checker(trace_, SpecChecker::Options{quiescent});
  return checker.check_all();
}

std::string Cluster::check_report(bool quiescent) const {
  std::string out;
  for (const Violation& v : check(quiescent)) {
    out += "[spec " + v.spec + "] " + v.detail + "\n";
  }
  return out;
}

}  // namespace evs
