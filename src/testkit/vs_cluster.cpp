#include "testkit/vs_cluster.hpp"

#include "util/assert.hpp"
#include "util/log.hpp"

namespace evs {

bool VsCluster::Sink::delivered(const MsgId& m) const { return find(m) != nullptr; }

const VsDelivery* VsCluster::Sink::find(const MsgId& m) const {
  for (const auto& d : deliveries) {
    if (d.id == m) return &d;
  }
  return nullptr;
}

VsCluster::VsCluster(Options options) : options_(options), rng_(options.seed) {
  network_ = std::make_unique<Network>(scheduler_, rng_.split(), options_.net);
  Log::set_time_source([this] { return scheduler_.now(); });
  procs_.resize(options_.num_processes);
  for (auto& proc : procs_) proc.store = std::make_unique<StableStore>();
  if (options_.auto_start) start_all();
}

VsNode& VsCluster::node(std::size_t index) {
  EVS_ASSERT(index < procs_.size() && procs_[index].node != nullptr);
  return *procs_[index].node;
}

VsCluster::Sink& VsCluster::sink(std::size_t index) {
  EVS_ASSERT(index < procs_.size());
  return procs_[index].sink;
}

void VsCluster::start_all() {
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    if (procs_[i].node == nullptr) start(pid(i));
  }
}

void VsCluster::start(ProcessId p) {
  Proc& proc = procs_[p.value - 1];
  EVS_ASSERT(proc.node == nullptr || !proc.node->running());
  VsNode::Options vs_opts;
  vs_opts.policy = options_.policy;
  vs_opts.universe = options_.num_processes;
  vs_opts.rename_on_rejoin = options_.rename_on_rejoin;
  proc.node = std::make_unique<VsNode>(p, *network_, *proc.store, &evs_trace_,
                                       &vs_trace_, options_.node, vs_opts);
  Sink* sink = &proc.sink;
  proc.node->set_on_deliver(
      [sink](const VsDelivery& d) { sink->deliveries.push_back(d); });
  proc.node->set_on_view_change([sink](const VsView& v) { sink->views.push_back(v); });
  proc.node->start();
}

void VsCluster::crash(ProcessId p) {
  Proc& proc = procs_[p.value - 1];
  EVS_ASSERT(proc.node != nullptr);
  proc.node->crash();
}

void VsCluster::partition(const std::vector<std::vector<std::size_t>>& groups) {
  std::vector<std::vector<ProcessId>> components;
  for (const auto& group : groups) {
    std::vector<ProcessId> component;
    for (std::size_t index : group) component.push_back(pid(index));
    components.push_back(std::move(component));
  }
  network_->set_components(components);
}

void VsCluster::heal() { network_->merge_all(); }

bool VsCluster::await(const std::function<bool()>& predicate, SimTime max_wait_us,
                      SimTime step_us) {
  const SimTime deadline = scheduler_.now() + max_wait_us;
  while (scheduler_.now() < deadline) {
    if (predicate()) return true;
    scheduler_.run_for(step_us);
  }
  return predicate();
}

bool VsCluster::stable() const {
  for (const auto& proc : procs_) {
    if (proc.node == nullptr || !proc.node->running()) continue;
    const EvsNode& evs = proc.node->evs();
    if (evs.state() != EvsNode::State::Operational) return false;
    if (proc.node->mode() == VsNode::Mode::Exchanging) return false;
    const auto component = network_->component_of(evs.id());
    std::vector<ProcessId> running;
    for (ProcessId q : component) {
      const auto& other = procs_[q.value - 1];
      if (other.node != nullptr && other.node->running()) running.push_back(q);
    }
    if (evs.config().members != running) return false;
  }
  return true;
}

bool VsCluster::await_stable(SimTime max_wait_us) {
  return await([this] { return stable(); }, max_wait_us);
}

bool VsCluster::await_quiesce(SimTime max_wait_us) {
  const SimTime deadline = scheduler_.now() + max_wait_us;
  if (!await_stable(max_wait_us)) return false;
  auto totals = [this] {
    std::uint64_t delivered = 0;
    std::uint64_t pending = 0;
    for (const auto& proc : procs_) {
      if (proc.node == nullptr) continue;
      delivered += proc.node->evs().stats().delivered;
      pending += proc.node->evs().pending_sends();
    }
    return std::pair{delivered, pending};
  };
  while (scheduler_.now() < deadline) {
    const auto before = totals();
    scheduler_.run_for(20'000);
    const auto after = totals();
    if (stable() && after.second == 0 && after.first == before.first) return true;
  }
  return false;
}

std::string VsCluster::check_report(bool quiescent) const {
  std::string out;
  SpecChecker evs_checker(evs_trace_, SpecChecker::Options{quiescent});
  for (const Violation& v : evs_checker.check_all()) {
    out += "[evs spec " + v.spec + "] " + v.detail + "\n";
  }
  VsChecker vs_checker(vs_trace_, VsChecker::Options{quiescent});
  for (const Violation& v : vs_checker.check_all()) {
    out += "[vs " + v.spec + "] " + v.detail + "\n";
  }
  return out;
}

obs::MetricsRegistry VsCluster::aggregate_metrics() const {
  obs::MetricsRegistry agg;
  for (const auto& proc : procs_) {
    if (proc.node != nullptr) agg.merge_from(proc.node->evs().metrics());
  }
  agg.merge_from(network_->metrics());
  return agg;
}

}  // namespace evs
