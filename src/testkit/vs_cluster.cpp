#include "testkit/vs_cluster.hpp"

#include "util/assert.hpp"
#include "util/log.hpp"

namespace evs {

bool VsCluster::Sink::delivered(const MsgId& m) const { return find(m) != nullptr; }

const VsDelivery* VsCluster::Sink::find(const MsgId& m) const {
  for (const auto& d : deliveries) {
    if (d.id == m) return &d;
  }
  return nullptr;
}

VsCluster::VsCluster(Options options) : options_(options), rng_(options.seed) {
  network_ = std::make_unique<Network>(scheduler_, rng_.split(), options_.net);
  Log::set_time_source([this] { return scheduler_.now(); });
  procs_.resize(options_.num_processes);
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    auto& proc = procs_[i];
    proc.store = std::make_unique<StableStore>();
    proc.store->set_fault_hook(
        [this, p = pid(i)](std::size_t record_bytes) {
          FaultInjector* inj = network_->faults_mutable();
          if (inj == nullptr) return StableStore::WriteFault{};
          return inj->apply_storage(p, scheduler_.now(), record_bytes);
        });
  }
  if (options_.auto_start) start_all();
}

VsNode& VsCluster::node(std::size_t index) {
  EVS_ASSERT(index < procs_.size() && procs_[index].node != nullptr);
  return *procs_[index].node;
}

VsCluster::Sink& VsCluster::sink(std::size_t index) {
  EVS_ASSERT(index < procs_.size());
  return procs_[index].sink;
}

void VsCluster::start_all() {
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    if (procs_[i].node == nullptr) {
      const Status st = start(pid(i));
      // A fail-stopped boot (storage fault during the boot persist) is a
      // legitimate simulated outcome, not a harness bug: the process is left
      // crashed and recover() can retry it once the fault plan allows.
      EVS_ASSERT_MSG(st.ok() || st.code() == Errc::storage_io,
                     st.message().c_str());
    }
  }
}

Status VsCluster::valid_pid(ProcessId p) const {
  if (p.value < 1 || p.value > procs_.size()) {
    return Status::error(Errc::invalid_argument, "unknown process id");
  }
  return Status{};
}

Status VsCluster::start(ProcessId p) {
  if (Status st = valid_pid(p); !st.ok()) return st;
  Proc& proc = procs_[p.value - 1];
  if (proc.node != nullptr && proc.node->running()) {
    return Status::error(Errc::invalid_argument, "start() on a running process");
  }
  VsNode::Options vs_opts;
  vs_opts.policy = options_.policy;
  vs_opts.universe = options_.num_processes;
  vs_opts.rename_on_rejoin = options_.rename_on_rejoin;
  proc.node = std::make_unique<VsNode>(p, *network_, *proc.store, &evs_trace_,
                                       &vs_trace_, options_.node, vs_opts);
  Sink* sink = &proc.sink;
  proc.node->set_on_deliver(
      [sink](const VsDelivery& d) { sink->deliveries.push_back(d); });
  proc.node->set_on_view_change([sink](const VsView& v) { sink->views.push_back(v); });
  proc.node->start();
  if (!proc.node->running()) {
    return Status::error(Errc::storage_io, "boot persistence failed; fail-stopped");
  }
  return Status{};
}

Status VsCluster::crash(ProcessId p) {
  if (Status st = valid_pid(p); !st.ok()) return st;
  Proc& proc = procs_[p.value - 1];
  if (proc.node == nullptr || !proc.node->running()) {
    return Status::error(Errc::invalid_argument,
                         "crash() on a process that is not running");
  }
  proc.node->crash();
  proc.store->disarm_write_budget();
  proc.store->crash();
  return Status{};
}

Status VsCluster::recover(ProcessId p) {
  if (Status st = valid_pid(p); !st.ok()) return st;
  Proc& proc = procs_[p.value - 1];
  if (proc.node == nullptr) {
    return Status::error(Errc::invalid_argument, "recover() before any start()");
  }
  if (proc.node->running()) {
    return Status::error(Errc::invalid_argument, "recover() on a running process");
  }
  (void)proc.store->open();
  return start(p);
}

Status VsCluster::arm_crash_point(ProcessId p, std::uint64_t nth_write,
                                  StableStore::TailFault variant) {
  if (Status st = valid_pid(p); !st.ok()) return st;
  procs_[p.value - 1].store->arm_write_budget(nth_write, variant, [this, p] {
    scheduler_.schedule_after(0, [this, p] { (void)crash(p); });
  });
  return Status{};
}

std::uint64_t VsCluster::store_writes(ProcessId p) const {
  EVS_ASSERT(p.value >= 1 && p.value <= procs_.size());
  return procs_[p.value - 1].store->appends_attempted();
}

void VsCluster::partition(const std::vector<std::vector<std::size_t>>& groups) {
  std::vector<std::vector<ProcessId>> components;
  for (const auto& group : groups) {
    std::vector<ProcessId> component;
    for (std::size_t index : group) component.push_back(pid(index));
    components.push_back(std::move(component));
  }
  network_->set_components(components);
}

void VsCluster::heal() { network_->merge_all(); }

bool VsCluster::await(const std::function<bool()>& predicate, SimTime max_wait_us,
                      SimTime step_us) {
  const SimTime deadline = scheduler_.now() + max_wait_us;
  while (scheduler_.now() < deadline) {
    if (predicate()) return true;
    scheduler_.run_for(step_us);
  }
  return predicate();
}

bool VsCluster::stable() const {
  for (const auto& proc : procs_) {
    if (proc.node == nullptr || !proc.node->running()) continue;
    const EvsNode& evs = proc.node->evs();
    if (evs.state() != EvsNode::State::Operational) return false;
    if (proc.node->mode() == VsNode::Mode::Exchanging) return false;
    const auto component = network_->component_of(evs.id());
    std::vector<ProcessId> running;
    for (ProcessId q : component) {
      const auto& other = procs_[q.value - 1];
      if (other.node != nullptr && other.node->running()) running.push_back(q);
    }
    if (evs.config().members != running) return false;
  }
  return true;
}

bool VsCluster::await_stable(SimTime max_wait_us) {
  return await([this] { return stable(); }, max_wait_us);
}

bool VsCluster::await_quiesce(SimTime max_wait_us) {
  const SimTime deadline = scheduler_.now() + max_wait_us;
  if (!await_stable(max_wait_us)) return false;
  auto totals = [this] {
    std::uint64_t delivered = 0;
    std::uint64_t pending = 0;
    for (const auto& proc : procs_) {
      if (proc.node == nullptr) continue;
      delivered += proc.node->evs().stats().delivered;
      pending += proc.node->evs().pending_sends();
    }
    return std::pair{delivered, pending};
  };
  while (scheduler_.now() < deadline) {
    const auto before = totals();
    scheduler_.run_for(20'000);
    const auto after = totals();
    if (stable() && after.second == 0 && after.first == before.first) return true;
  }
  return false;
}

std::string VsCluster::check_report(bool quiescent) const {
  std::string out;
  SpecChecker evs_checker(evs_trace_, SpecChecker::Options{quiescent});
  for (const Violation& v : evs_checker.check_all()) {
    out += "[evs spec " + v.spec + "] " + v.detail + "\n";
  }
  VsChecker vs_checker(vs_trace_, VsChecker::Options{quiescent});
  for (const Violation& v : vs_checker.check_all()) {
    out += "[vs " + v.spec + "] " + v.detail + "\n";
  }
  return out;
}

obs::MetricsRegistry VsCluster::aggregate_metrics() const {
  obs::MetricsRegistry agg;
  for (const auto& proc : procs_) {
    if (proc.node != nullptr) agg.merge_from(proc.node->evs().metrics());
    agg.merge_from(proc.store->metrics());
  }
  agg.merge_from(network_->metrics());
  return agg;
}

}  // namespace evs
