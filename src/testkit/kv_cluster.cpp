#include "testkit/kv_cluster.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace evs {

KvCluster::KvCluster(Options options)
    : options_(options), router_(options.router) {
  EVS_ASSERT_MSG(options_.router.num_shards >= 1, "need at least one shard");
  shards_.reserve(options_.router.num_shards);
  for (shard::ShardId s = 0; s < options_.router.num_shards; ++s) {
    Cluster::Options co;
    co.num_processes = options_.num_processes;
    // Distinct seed per shard: independent groups should not see identical
    // network jitter, or "parallel" rings march in artificial unison.
    co.seed = options_.seed + s * 1000003ull;
    co.net = options_.net;
    co.node = options_.node;
    co.watchdog_window_us = options_.watchdog_window_us;
    shards_.push_back(std::make_unique<Cluster>(co));
  }
  agents_.reserve(options_.num_processes);
  alive_ = shards_[0]->pids();
  router_.update_members(alive_);
  for (std::size_t i = 0; i < options_.num_processes; ++i) {
    agents_.push_back(std::make_unique<apps::KvShardedNode>(
        pid(i), router_, options_.transfer));
  }
  remap(alive_);
}

apps::KvShardedNode* KvCluster::writer(shard::ShardId shard) {
  for (const ProcessId p : router_.replicas(shard)) {
    apps::KvShardedNode& a = agent(p);
    if (a.has_shard(shard) && a.in_primary(shard)) return &a;
  }
  return nullptr;
}

void KvCluster::run_for(SimTime us) {
  for (auto& c : shards_) c->run_for(us);
}

bool KvCluster::await(const std::function<bool()>& predicate,
                      SimTime max_wait_us, SimTime step_us) {
  const SimTime deadline = now() + max_wait_us;
  while (!predicate()) {
    if (now() >= deadline) return false;
    run_for(std::min(step_us, deadline - now()));
  }
  return true;
}

bool KvCluster::await_stable(SimTime max_wait_us) {
  return await(
      [this] {
        return std::all_of(shards_.begin(), shards_.end(),
                           [](const auto& c) { return c->stable(); });
      },
      max_wait_us);
}

bool KvCluster::await_quiesce(SimTime max_wait_us) {
  if (!await_stable(max_wait_us)) return false;
  auto totals = [this] {
    std::uint64_t delivered = 0;
    std::uint64_t pending = 0;
    for (const auto& c : shards_) {
      for (std::size_t i = 0; i < c->size(); ++i) {
        const EvsNode* n = c->node_ptr(i);
        if (n == nullptr) continue;
        delivered += n->stats().delivered;
        pending += n->pending_sends();
      }
    }
    return std::pair{delivered, pending};
  };
  const SimTime deadline = now() + max_wait_us;
  while (now() < deadline) {
    const auto before = totals();
    run_for(2'000);
    const auto after = totals();
    if (after == before && after.second == 0 && all_serving()) return true;
  }
  return false;
}

bool KvCluster::all_serving() const {
  for (shard::ShardId s = 0; s < router_.num_shards(); ++s) {
    const Cluster& c = *shards_[s];
    for (const ProcessId p : router_.replicas(s)) {
      if (c.node_ptr(p.value - 1) == nullptr) continue;  // crashed
      const apps::KvShardedNode& a = *agents_[p.value - 1];
      if (!a.has_shard(s)) continue;
      if (a.in_primary(s) && !a.serving(s)) return false;
    }
  }
  return true;
}

bool KvCluster::await_serving(SimTime max_wait_us) {
  return await([this] { return all_serving(); }, max_wait_us);
}

void KvCluster::partition_shard(
    shard::ShardId s, const std::vector<std::vector<std::size_t>>& groups) {
  shards_[s]->partition(groups);
}

void KvCluster::heal_shard(shard::ShardId s) { shards_[s]->heal(); }

void KvCluster::partition_all(
    const std::vector<std::vector<std::size_t>>& groups) {
  for (auto& c : shards_) c->partition(groups);
}

void KvCluster::heal_all() {
  for (auto& c : shards_) c->heal();
}

Status KvCluster::crash(ProcessId p) {
  for (auto& c : shards_) {
    Status st = c->crash(p);
    if (!st.ok()) return st;
  }
  // The EvsNode objects persist across crash/recover, so the agent cannot
  // detect the restart itself: wipe its volatile state (stores, transfer
  // engines) here, the way a real process loses memory.
  agent(p).on_process_crash();
  std::vector<ProcessId> alive;
  for (const ProcessId q : alive_) {
    if (!(q == p)) alive.push_back(q);
  }
  remap(alive);
  return Status::ok_status();
}

Status KvCluster::recover(ProcessId p) {
  for (auto& c : shards_) {
    Status st = c->recover(p);
    if (!st.ok()) return st;
  }
  std::vector<ProcessId> alive = alive_;
  alive.push_back(p);
  std::sort(alive.begin(), alive.end(),
            [](ProcessId a, ProcessId b) { return a.value < b.value; });
  remap(alive);
  return Status::ok_status();
}

bool KvCluster::remap(const std::vector<ProcessId>& alive) {
  alive_ = alive;
  const bool changed = router_.update_members(alive_);
  // (Re)attach every replica to its shards — also re-installs delivery
  // handlers on nodes that were rebuilt by recover(). Every process calls
  // update_members with the same member list, so every process derives the
  // same groups (asserted by the determinism tests).
  for (shard::ShardId s = 0; s < router_.num_shards(); ++s) {
    for (const ProcessId p : router_.replicas(s)) {
      Cluster& c = *shards_[s];
      const std::size_t index = p.value - 1;
      if (c.node_ptr(index) == nullptr) continue;
      agent(p).attach_shard(s, c.node(index));
    }
  }
  return changed;
}

std::string KvCluster::check_report(bool quiescent) const {
  std::ostringstream out;
  for (shard::ShardId s = 0; s < shards_.size(); ++s) {
    const std::string report = shards_[s]->check_report(quiescent);
    if (report.empty()) continue;
    std::istringstream lines(report);
    std::string line;
    while (std::getline(lines, line)) {
      out << "[shard " << s << "] " << line << '\n';
    }
  }
  return out.str();
}

bool KvCluster::replicas_agree(shard::ShardId shard) const {
  return divergence(shard).empty();
}

std::string KvCluster::divergence(shard::ShardId shard) const {
  std::ostringstream out;
  const shard::KvStore* first = nullptr;
  ProcessId first_pid{0};
  for (const ProcessId p : router_.replicas(shard)) {
    const shard::KvStore* store = agents_[p.value - 1]->store(shard);
    if (store == nullptr) {
      out << "replica p" << p.value << " has no store for shard " << shard
          << '\n';
      continue;
    }
    if (first == nullptr) {
      first = store;
      first_pid = p;
      continue;
    }
    // Fingerprints are maintained incrementally and order-independent:
    // equal contents MUST produce equal fingerprints, and we also refuse
    // to trust a matching fingerprint over differing contents (which
    // would mean the incremental maintenance itself broke).
    const bool fp_match = store->fingerprint() == first->fingerprint();
    const bool map_match = store->contents() == first->contents();
    if (fp_match && map_match) continue;
    out << "replica p" << p.value << " diverges from p" << first_pid.value
        << ": fingerprint " << store->fingerprint() << " vs "
        << first->fingerprint() << ", size " << store->size() << " vs "
        << first->size();
    // First byte-level differing entry, scanning both key sets.
    const auto& a = first->contents();
    const auto& b = store->contents();
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() || ib != b.end()) {
      if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
        out << "; first diff: key \"" << ia->first << "\" only at p"
            << first_pid.value;
        break;
      }
      if (ia == a.end() || ib->first < ia->first) {
        out << "; first diff: key \"" << ib->first << "\" only at p"
            << p.value;
        break;
      }
      if (ia->second != ib->second) {
        out << "; first diff: key \"" << ia->first << "\" value \""
            << ia->second << "\" vs \"" << ib->second << "\"";
        break;
      }
      ++ia;
      ++ib;
    }
    out << '\n';
  }
  if (first == nullptr) out << "shard " << shard << " has no stores\n";
  return out.str();
}

obs::MetricsRegistry KvCluster::aggregate_metrics() const {
  obs::MetricsRegistry out;
  for (const auto& c : shards_) out.merge_from(c->aggregate_metrics());
  for (const auto& a : agents_) out.merge_from(a->metrics());
  return out;
}

}  // namespace evs
