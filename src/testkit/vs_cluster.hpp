// VsCluster: simulation harness for virtually-synchronous nodes (the VS
// filter stacked on EVS), mirroring testkit/Cluster for the raw EVS layer.
#pragma once

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "spec/vs_checker.hpp"
#include "storage/stable_store.hpp"
#include "testkit/cluster.hpp"
#include "util/rng.hpp"
#include "vs/filter.hpp"

namespace evs {

class VsCluster {
 public:
  struct Options {
    std::size_t num_processes{3};
    std::uint64_t seed{1};
    Network::Options net{};
    EvsNode::Options node{};
    VsNode::Policy policy{VsNode::Policy::StaticMajority};
    bool rename_on_rejoin{true};
    bool auto_start{true};
  };

  struct Sink {
    std::vector<VsDelivery> deliveries;
    std::vector<VsView> views;

    bool delivered(const MsgId& m) const;
    const VsDelivery* find(const MsgId& m) const;
  };

  explicit VsCluster(Options options);

  Scheduler& scheduler() { return scheduler_; }
  Network& network() { return *network_; }
  VsTraceLog& vs_trace() { return vs_trace_; }
  TraceLog& evs_trace() { return evs_trace_; }

  std::size_t size() const { return procs_.size(); }
  ProcessId pid(std::size_t index) const { return ProcessId{static_cast<std::uint32_t>(index + 1)}; }

  VsNode& node(std::size_t index);
  VsNode& node(ProcessId p) { return node(p.value - 1); }
  Sink& sink(std::size_t index);
  Sink& sink(ProcessId p) { return sink(p.value - 1); }

  // Lifecycle mirrors Cluster: Status instead of asserts, so crash-point
  // scripts can race lifecycle steps without aborting the harness.
  void start_all();
  Status start(ProcessId p);
  Status crash(ProcessId p);
  /// Replay + repair the store's log, then boot a fresh incarnation on it.
  Status recover(ProcessId p);

  /// Arm p's store so its nth append lands per `variant` and the process
  /// then crashes before any further packet delivery (see Cluster).
  Status arm_crash_point(ProcessId p, std::uint64_t nth_write,
                         StableStore::TailFault variant);
  std::uint64_t store_writes(ProcessId p) const;

  void partition(const std::vector<std::vector<std::size_t>>& groups);
  void heal();

  void run_for(SimTime us) { scheduler_.run_for(us); }
  SimTime now() const { return scheduler_.now(); }
  bool await(const std::function<bool()>& predicate, SimTime max_wait_us,
             SimTime step_us = 1'000);

  /// EVS layer stable AND every running node has resolved its primary
  /// decision (no node still Exchanging).
  bool stable() const;
  bool await_stable(SimTime max_wait_us = 4'000'000);
  bool await_quiesce(SimTime max_wait_us = 8'000'000);

  /// Check both layers: the EVS trace against Specs 1-7 and the VS trace
  /// against the legality conditions. Returns a formatted report ("" = ok).
  std::string check_report(bool quiescent = true) const;

  /// Cluster-wide metrics: every node's registry (the VsNode "vs.*"
  /// instruments live in its underlying EvsNode's registry) plus the
  /// network's, merged.
  obs::MetricsRegistry aggregate_metrics() const;

 private:
  struct Proc {
    std::unique_ptr<StableStore> store;
    std::unique_ptr<VsNode> node;
    Sink sink;
  };

  Status valid_pid(ProcessId p) const;

  Options options_;
  Scheduler scheduler_;
  Rng rng_;
  std::unique_ptr<Network> network_;
  TraceLog evs_trace_;
  VsTraceLog vs_trace_;
  std::vector<Proc> procs_;
};

}  // namespace evs
