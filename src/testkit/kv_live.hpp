// KvLiveCluster: the sharded KV service over real loopback UDP — the live
// counterpart of testkit::KvCluster. One testkit::LiveCluster per shard
// (its own sockets, stores and trace), the same ShardRouter and
// apps::KvShardedNode agents the simulator uses — and ONE net::Executor
// shared across every shard, so shards x nodes transports run on
// min(cores, shards x nodes) worker threads instead of a thread apiece
// (the thread explosion that capped large-N live benches).
//
// Thread discipline: an EvsNode is only ever touched on the executor
// worker that drives its transport, so every agent operation that reaches
// a node (put/get — get reads the node's configuration for the in-primary
// check) is posted onto that worker via call() and awaited. Shard delivery
// callbacks run on their transports' workers; the agent's internal mutex
// keeps its stores coherent across workers.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/kv_sharded.hpp"
#include "shard/router.hpp"
#include "testkit/live_cluster.hpp"

namespace evs {

class KvLiveCluster {
 public:
  struct Options {
    std::size_t num_processes{3};
    /// Workers for the shared executor; 0 = min(cores, shards x processes).
    std::size_t num_workers{0};
    shard::ShardRouter::Options router{};
    EvsNode::Options node = live_node_defaults();
    UdpTransport::Options transport{};
    shard::TransferConfig transfer{};
  };

  explicit KvLiveCluster(Options options);
  KvLiveCluster() : KvLiveCluster(Options{}) {}
  ~KvLiveCluster();

  KvLiveCluster(const KvLiveCluster&) = delete;
  KvLiveCluster& operator=(const KvLiveCluster&) = delete;

  /// Open every shard cluster (Errc::transport_io = no usable sockets;
  /// callers GTEST_SKIP then). Attaches every replica agent on success.
  Status open();
  /// Stop every shard cluster's loops. Idempotent; inspection stays valid.
  void stop();

  std::size_t size() const { return agents_.size(); }
  std::size_t num_shards() const { return shards_.size(); }
  ProcessId pid(std::size_t index) const { return shards_[0]->pid(index); }

  const shard::ShardRouter& router() const { return router_; }
  apps::KvShardedNode& agent(std::size_t index) { return *agents_[index]; }
  LiveCluster& shard_cluster(shard::ShardId s) { return *shards_[s]; }

  /// Route the key and run the agent's write on the owning shard's loop
  /// thread for process `index`; synchronous.
  Status put(std::size_t index, std::string_view key, std::string_view value);
  /// Fire-and-forget write (benchmarks): posts the encoded op and returns.
  void put_async(std::size_t index, std::string_view key,
                 std::string_view value);
  /// In-primary read on the owning shard's loop thread; synchronous.
  Expected<std::optional<std::string>> get(std::size_t index,
                                           std::string_view key);

  // --- partition scripting (process indexes, per shard) ---
  void partition_shard(shard::ShardId s,
                       const std::vector<std::vector<std::size_t>>& groups);
  void heal_shard(shard::ShardId s);

  // --- waiting (wall-clock; all shards must satisfy the condition) ---
  bool await_stable(SimTime max_wait_us = 15'000'000);
  /// Quiesce every shard, then wait until every in-primary replica is
  /// serving (catch-up done). Serving checks read node state, so each one
  /// is posted to the owning shard's loop thread via call().
  bool await_quiesce(SimTime max_wait_us = 15'000'000);
  /// Every in-primary replica of every shard reports serving(); each check
  /// runs on the owning loop thread.
  bool all_serving();

  /// True when every pair of replicas of `shard` holds an identical map.
  /// Requires stop() (stores are loop-thread-written while running).
  bool replicas_agree(shard::ShardId shard) const;

  /// Per-shard spec-check reports, shard-prefixed. Requires stop().
  std::string check_report(bool quiescent = true) const;
  /// Every shard cluster's aggregate plus every agent's kv.* registry.
  /// Requires stop().
  obs::MetricsRegistry aggregate_metrics() const;

 private:
  Options options_;
  shard::ShardRouter router_;
  /// Declared before shards_: each shard's stop() references the shared
  /// executor, so it must outlive them in destruction order.
  std::unique_ptr<net::Executor> executor_;
  std::vector<std::unique_ptr<LiveCluster>> shards_;
  std::vector<std::unique_ptr<apps::KvShardedNode>> agents_;
};

}  // namespace evs
