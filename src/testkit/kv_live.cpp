#include "testkit/kv_live.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "util/assert.hpp"

namespace evs {

KvLiveCluster::KvLiveCluster(Options options)
    : options_(options), router_(options.router) {
  EVS_ASSERT_MSG(options_.router.num_shards >= 1, "need at least one shard");
  shards_.reserve(options_.router.num_shards);
  for (shard::ShardId s = 0; s < options_.router.num_shards; ++s) {
    LiveCluster::Options lo;
    lo.num_processes = options_.num_processes;
    lo.node = options_.node;
    lo.transport = options_.transport;
    shards_.push_back(std::make_unique<LiveCluster>(lo));
  }
  std::vector<ProcessId> members;
  for (std::size_t i = 0; i < options_.num_processes; ++i) {
    members.push_back(shards_[0]->pid(i));
  }
  router_.update_members(members);
  agents_.reserve(options_.num_processes);
  for (std::size_t i = 0; i < options_.num_processes; ++i) {
    agents_.push_back(std::make_unique<apps::KvShardedNode>(
        pid(i), router_, options_.transfer));
  }
}

KvLiveCluster::~KvLiveCluster() { stop(); }

Status KvLiveCluster::open() {
  // One executor for every shard's transports: prepare each shard onto it,
  // start the workers once, then launch every shard's nodes.
  net::Executor::Options ex_options;
  ex_options.num_workers = options_.num_workers;
  executor_ = std::make_unique<net::Executor>(ex_options);
  for (auto& c : shards_) {
    Status st = c->prepare(*executor_);
    if (!st.ok()) {
      stop();
      return st;
    }
  }
  if (Status st = executor_->start(); !st.ok()) {
    stop();
    return st;
  }
  for (auto& c : shards_) c->launch();
  // Attach every replica on its driving worker: set_on_deliver_batch must
  // not race the delivery path.
  for (shard::ShardId s = 0; s < router_.num_shards(); ++s) {
    for (const ProcessId p : router_.replicas(s)) {
      const std::size_t index = p.value - 1;
      LiveCluster& c = *shards_[s];
      apps::KvShardedNode* agent = agents_[index].get();
      c.call(index, [agent, s, &c, index] {
        agent->attach_shard(s, c.node(index));
      });
    }
  }
  return Status::ok_status();
}

void KvLiveCluster::stop() {
  // Every shard shares the executor, so the first shard's stop() joins the
  // workers for all of them; the rest just flip their running flags.
  for (auto& c : shards_) c->stop();
  if (executor_ != nullptr) executor_->stop();
}

Status KvLiveCluster::put(std::size_t index, std::string_view key,
                          std::string_view value) {
  const shard::ShardId s = router_.shard_of_key(key);
  Status st;
  shards_[s]->call(index, [&] { st = agents_[index]->put(key, value); });
  return st;
}

void KvLiveCluster::put_async(std::size_t index, std::string_view key,
                              std::string_view value) {
  const shard::ShardId s = router_.shard_of_key(key);
  apps::KvShardedNode* agent = agents_[index].get();
  // Copy the strings into the posted closure; rejections are visible in the
  // agent's own counters, as with LiveCluster::send_async.
  (void)shards_[s]->transport(index).post(
      [agent, k = std::string(key), v = std::string(value)] {
        (void)agent->put(k, v);
      });
}

Expected<std::optional<std::string>> KvLiveCluster::get(std::size_t index,
                                                        std::string_view key) {
  const shard::ShardId s = router_.shard_of_key(key);
  Expected<std::optional<std::string>> out{
      Status::error(Errc::not_running, "loop did not run the read")};
  shards_[s]->call(index, [&] { out = agents_[index]->get(key); });
  return out;
}

void KvLiveCluster::partition_shard(
    shard::ShardId s, const std::vector<std::vector<std::size_t>>& groups) {
  shards_[s]->partition(groups);
}

void KvLiveCluster::heal_shard(shard::ShardId s) { shards_[s]->heal(); }

bool KvLiveCluster::await_stable(SimTime max_wait_us) {
  return std::all_of(shards_.begin(), shards_.end(), [&](const auto& c) {
    return c->await_stable(max_wait_us);
  });
}

bool KvLiveCluster::await_quiesce(SimTime max_wait_us) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(max_wait_us);
  const bool quiet =
      std::all_of(shards_.begin(), shards_.end(), [&](const auto& c) {
        return c->await_quiesce(max_wait_us);
      });
  if (!quiet) return false;
  // Post-quiesce reads must not bounce off Errc::catching_up: wait until
  // every in-primary replica has finished state transfer too.
  while (!all_serving()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

bool KvLiveCluster::all_serving() {
  for (shard::ShardId s = 0; s < router_.num_shards(); ++s) {
    for (const ProcessId p : router_.replicas(s)) {
      const std::size_t index = p.value - 1;
      apps::KvShardedNode* agent = agents_[index].get();
      bool ok = false;
      // in_primary/serving read the node's configuration — loop thread only.
      shards_[s]->call(index, [agent, s, &ok] {
        ok = !agent->in_primary(s) || agent->serving(s);
      });
      if (!ok) return false;
    }
  }
  return true;
}

bool KvLiveCluster::replicas_agree(shard::ShardId shard) const {
  const shard::KvStore* first = nullptr;
  for (const ProcessId p : router_.replicas(shard)) {
    const shard::KvStore* store = agents_[p.value - 1]->store(shard);
    if (store == nullptr) return false;
    if (first == nullptr) {
      first = store;
    } else if (store->fingerprint() != first->fingerprint() ||
               store->contents() != first->contents()) {
      return false;
    }
  }
  return first != nullptr;
}

std::string KvLiveCluster::check_report(bool quiescent) const {
  std::ostringstream out;
  for (shard::ShardId s = 0; s < shards_.size(); ++s) {
    const std::string report = shards_[s]->check_report(quiescent);
    if (report.empty()) continue;
    std::istringstream lines(report);
    std::string line;
    while (std::getline(lines, line)) {
      out << "[shard " << s << "] " << line << '\n';
    }
  }
  return out.str();
}

obs::MetricsRegistry KvLiveCluster::aggregate_metrics() const {
  obs::MetricsRegistry out;
  for (const auto& c : shards_) out.merge_from(c->aggregate_metrics());
  for (const auto& a : agents_) out.merge_from(a->metrics());
  // The shards share one executor; its net.executor.* view merges once here
  // (shard clusters skip non-owned executors).
  if (executor_ != nullptr) out.merge_from(executor_->metrics());
  return out;
}

}  // namespace evs
