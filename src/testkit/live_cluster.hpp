// LiveCluster: N EvsNodes over real loopback UDP — the live counterpart of
// testkit::Cluster.
//
// Each process gets its own UdpTransport (one bound socket), its own
// StableStore, and its own TraceLog; a net::Executor drives all of them on
// min(cores, nodes) worker threads (one poller per core — the sharded
// executor model, see net/executor.hpp). The protocol stack is
// byte-for-byte the code the simulator runs; only the substrate changed.
// The harness talks to a node exclusively by posting closures onto its
// driving worker (call()), so EvsNode never sees concurrent access.
//
// Partitions are scripted with the transports' drop filters
// (UdpTransport::block_peer): no iptables, no privileges, yet datagrams die
// in flight exactly as on a cut wire — which is how the Fig. 6
// partition/re-merge scenario runs over real sockets (tests/live/).
//
// After stop(), the per-node traces merge into one TraceLog (per-process
// program order is preserved; the spec checker needs nothing else) and
// check() runs the full Specification 1-7 validator over what the live run
// actually delivered.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "evs/node.hpp"
#include "net/executor.hpp"
#include "net/udp_transport.hpp"
#include "obs/metrics.hpp"
#include "spec/checker.hpp"
#include "spec/trace.hpp"
#include "storage/stable_store.hpp"
#include "util/status.hpp"

namespace evs {

/// EvsNode timers retuned for wall-clock time. The EvsNode defaults are
/// sim-tuned (token loss 12 ms, recovery 40 ms) — fine in virtual time where
/// handling is instantaneous, but on a real machine a scheduling hiccup or a
/// sanitizer's slowdown exceeds them and the ring livelocks in regather
/// loops. This profile scales every timeout ~10x while preserving the
/// Options::validate() relations (retransmit limit x interval < token loss).
EvsNode::Options live_node_defaults();

/// live_node_defaults() dilated for an n-member ring, mirroring
/// EvsNode::Options::scaled_for: every periodic sender interval and flat
/// timeout base stretches by ceil(n / 8) so formation-time broadcast volume
/// stays O(n) cluster-wide and consensus rounds get room to complete on
/// large rings (bench_executor_scale's 64-node sweep needs this — with the
/// small-ring profile the join/consensus storm regathers forever).
EvsNode::Options live_node_defaults_scaled(std::size_t n);

class LiveCluster {
 public:
  struct Options {
    std::size_t num_processes{3};
    /// Executor worker threads; 0 = min(hardware cores, num_processes).
    std::size_t num_workers{0};
    EvsNode::Options node = live_node_defaults();
    UdpTransport::Options transport{};
  };

  /// Everything one process delivered (written by its driving worker; read
  /// it only through call() while running, or freely after stop()).
  struct Sink {
    std::vector<EvsNode::Delivery> deliveries;
    std::vector<Configuration> configs;
    bool delivered(const MsgId& m) const;
  };

  /// A cross-thread snapshot of one node, taken on its driving worker.
  struct NodeSample {
    EvsNode::State state{EvsNode::State::Down};
    Configuration config;
    std::uint64_t delivered{0};
    std::uint64_t sent{0};
    std::size_t pending_sends{0};
  };

  explicit LiveCluster(Options options);
  LiveCluster() : LiveCluster(Options{}) {}
  ~LiveCluster();

  LiveCluster(const LiveCluster&) = delete;
  LiveCluster& operator=(const LiveCluster&) = delete;

  /// Bind every socket, register the full peer mesh, start an executor over
  /// the transports, and start every node. Errc::transport_io means the
  /// environment has no usable sockets — callers skip live tests then.
  /// Errc::invalid_argument on a second open() (lifecycle misuse is a
  /// reportable error, not an abort — mirrors the EvsNode misuse suite).
  Status open();

  /// Two-phase variant for sharing one executor across clusters
  /// (KvLiveCluster runs shards x nodes transports on min(cores, total)
  /// workers instead of an executor per shard): prepare() binds sockets,
  /// registers the mesh and add()s the transports to `executor`; the caller
  /// then starts the executor once and calls launch() to start the nodes.
  /// stop() on any cluster sharing the executor stops them all (the loops
  /// are shared); KvLiveCluster owns that coordination.
  Status prepare(net::Executor& executor);
  void launch();

  /// Stop the executor (joining its workers). Nodes stay constructed (their
  /// sinks, traces and metrics remain readable). Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::size_t size() const { return procs_.size(); }
  ProcessId pid(std::size_t index) const;

  /// Run `fn` on node `index`'s driving worker and wait for it. After
  /// stop() — or when the post loses the race against a concurrent stop()
  /// — the closure runs inline on the caller: post() failing fast means the
  /// workers have joined, so there is nothing left to race with. This is
  /// the fix for the post-into-joined-thread deadlock (a closure posted
  /// into a mutex-guarded queue nobody drains would block waiter.wait()
  /// forever).
  void call(std::size_t index, std::function<void()> fn);

  /// Synchronous send on the node's driving worker.
  Expected<MsgId> send(std::size_t index, Service service,
                       std::vector<std::uint8_t> payload);
  /// Fire-and-forget send (benchmarks): posts and returns immediately.
  /// Rejected sends (backpressure) are counted in the node's own metrics.
  void send_async(std::size_t index, Service service,
                  std::vector<std::uint8_t> payload);

  /// Synchronous atomic burst on the node's driving worker (EvsNode::
  /// send_batch semantics: all queued or none, one bookkeeping pass).
  Expected<std::vector<MsgId>> send_batch(
      std::size_t index, Service service,
      std::vector<std::vector<std::uint8_t>> payloads);
  /// Fire-and-forget burst (benchmarks): one posted closure and one
  /// admission pass for the whole batch instead of one per message.
  void send_async_batch(std::size_t index, Service service,
                        std::vector<std::vector<std::uint8_t>> payloads);

  NodeSample sample(std::size_t index);

  // --- partition scripting (groups are process indexes) ---
  /// Install drop filters so only processes in the same group can exchange
  /// datagrams. Unlisted processes end up isolated, like Cluster::partition.
  void partition(const std::vector<std::vector<std::size_t>>& groups);
  void heal();

  // --- waiting (all wall-clock) ---
  bool await(const std::function<bool()>& predicate, SimTime max_wait_us,
             SimTime poll_interval_us = 2'000);
  /// Every node Operational and every partition group converged on a
  /// configuration holding exactly that group's members.
  bool stable();
  bool await_stable(SimTime max_wait_us = 10'000'000);
  /// await_stable, then wait for delivery counts and send queues to settle.
  bool await_quiesce(SimTime max_wait_us = 10'000'000);

  /// Total deliveries across all nodes (cheap: atomic counters updated by
  /// the delivery callbacks; no cross-thread call needed).
  std::uint64_t total_delivered() const;

  // --- post-stop inspection ---
  const Sink& sink(std::size_t index) const;
  UdpTransport& transport(std::size_t index);
  EvsNode& node(std::size_t index);

  /// Merge the per-node traces (per-process program order preserved).
  /// Requires stop().
  TraceLog merged_trace() const;
  /// Run the full specification checker over the merged trace. Requires
  /// stop().
  std::vector<Violation> check(bool quiescent = true) const;
  std::string check_report(bool quiescent = true) const;

  /// Every node's metrics plus every transport's, merged — and the
  /// executor's net.executor.* view when this cluster owns its executor (a
  /// shared executor is aggregated once by its owner, not per shard).
  /// Requires stop().
  obs::MetricsRegistry aggregate_metrics() const;

 private:
  struct Proc {
    ProcessId pid;
    std::unique_ptr<UdpTransport> transport;
    std::unique_ptr<StableStore> store;
    std::unique_ptr<TraceLog> trace;
    std::unique_ptr<EvsNode> node;
    Sink sink;
    std::atomic<std::uint64_t> delivered{0};
  };

  Options options_;
  std::vector<std::unique_ptr<Proc>> procs_;
  /// The executor driving the transports: own_executor_ in the open() path,
  /// a caller's in the prepare()/launch() path.
  std::unique_ptr<net::Executor> own_executor_;
  net::Executor* executor_{nullptr};
  /// Group index per process under the current partition script (all 0 when
  /// healed); read by stable() on the harness thread only.
  std::vector<std::size_t> group_of_;
  /// Atomic because call()/send paths may race a concurrent stop(); the
  /// post()-returns-false fallback makes a stale `true` read harmless.
  std::atomic<bool> running_{false};
  bool opened_{false};
};

}  // namespace evs
