#include "testkit/churn.hpp"

#include <algorithm>
#include <numeric>

namespace evs {

namespace {

/// Random partition of [0, n) into `groups` non-empty components, shuffled
/// by `rng` (deterministic per seed — this runs at schedule-build time).
std::vector<std::vector<std::size_t>> random_groups(std::size_t n, std::size_t groups,
                                                    Rng& rng) {
  groups = std::max<std::size_t>(1, std::min(groups, n));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  std::vector<std::vector<std::size_t>> out(groups);
  for (std::size_t i = 0; i < n; ++i) out[i % groups].push_back(order[i]);
  return out;
}

std::string groups_label(const std::vector<std::vector<std::size_t>>& groups) {
  std::string s = "partition into " + std::to_string(groups.size()) + " groups";
  return s;
}

}  // namespace

std::string ChurnReport::to_string() const {
  std::string s = "churn scenario '" + scenario + "': ";
  s += ok() ? "ok" : "FAILED";
  s += " (" + std::to_string(steps_run) + " steps, " +
       std::to_string(quiesce_checks) + " checkpoints)";
  if (!failure.empty()) s += "\n  " + failure;
  if (!spec_report.empty()) s += "\n  spec violations:\n" + spec_report;
  return s;
}

ChurnSchedule& ChurnSchedule::at(SimTime t, std::string what,
                                 std::function<void(Cluster&)> fn) {
  ChurnStep step;
  step.at_us = t;
  step.what = std::move(what);
  step.apply = std::move(fn);
  steps_.push_back(std::move(step));
  return *this;
}

ChurnSchedule& ChurnSchedule::quiesce_at(SimTime t, SimTime max_wait_us) {
  ChurnStep step;
  step.at_us = t;
  step.what = "quiesce";
  step.quiesce = true;
  step.max_wait_us = max_wait_us;
  steps_.push_back(std::move(step));
  return *this;
}

ChurnSchedule& ChurnSchedule::finish_at(SimTime t, SimTime max_wait_us) {
  ChurnStep step;
  step.at_us = t;
  step.what = "final quiesce";
  step.quiesce = true;
  step.max_wait_us = max_wait_us;
  step.final_check = true;
  steps_.push_back(std::move(step));
  return *this;
}

ChurnSchedule& ChurnSchedule::partition_at(SimTime t,
                                           std::vector<std::vector<std::size_t>> groups) {
  return at(t, groups_label(groups),
            [groups = std::move(groups)](Cluster& c) { c.partition(groups); });
}

ChurnSchedule& ChurnSchedule::heal_at(SimTime t) {
  return at(t, "heal", [](Cluster& c) { c.heal(); });
}

ChurnSchedule& ChurnSchedule::crash_at(SimTime t, std::size_t index) {
  return at(t, "crash #" + std::to_string(index),
            [index](Cluster& c) { (void)c.crash(c.pid(index)); });
}

ChurnSchedule& ChurnSchedule::recover_at(SimTime t, std::size_t index) {
  return at(t, "recover #" + std::to_string(index),
            [index](Cluster& c) { (void)c.recover(c.pid(index)); });
}

ChurnSchedule& ChurnSchedule::faults_at(SimTime t, std::string what, FaultPlan plan) {
  return at(t, std::move(what),
            [plan = std::move(plan)](Cluster& c) { c.inject_faults(plan); });
}

ChurnSchedule& ChurnSchedule::clear_faults_at(SimTime t) {
  return at(t, "clear faults", [](Cluster& c) { c.clear_faults(); });
}

SimTime ChurnSchedule::quiesce_budget(std::size_t n) {
  // Convergence after churn costs token-loss detection + gather + recovery,
  // each linear in n (and dilated further under Options::scaled_for). Idle
  // virtual time is nearly free in the sim, so the budget errs generous:
  // tripping it should mean livelock, not a slow-but-healthy ring.
  return 10'000'000 + 400'000 * static_cast<SimTime>(n);
}

ChurnSchedule ChurnSchedule::flapping_links(std::size_t n, std::uint64_t seed,
                                            int flaps) {
  ChurnSchedule s("flapping_links", seed);
  Rng rng(seed);
  const SimTime budget = quiesce_budget(n);
  const std::size_t a = rng.below(n);
  std::size_t b = rng.below(n);
  if (b == a) b = (a + 1) % n;
  SimTime t = 0;
  s.quiesce_at(t, budget);  // initial ring formation
  for (int i = 0; i < flaps; ++i) {
    // Asymmetric cut: a's packets to b vanish, b's to a still arrive — the
    // nastier half-open failure mode real links exhibit.
    s.at(t += 20'000, "cut link #" + std::to_string(a) + "->#" + std::to_string(b),
         [a, b](Cluster& c) {
           c.inject_faults(FaultPlan::asymmetric_cut(c.pid(a), c.pid(b), 0, ~0ull));
         });
    t += 60'000 + rng.between(0, 40'000);  // hold the cut across a few timeouts
    s.clear_faults_at(t);
    s.quiesce_at(t += 10'000, budget);
  }
  s.finish_at(t += 20'000, budget);
  return s;
}

ChurnSchedule ChurnSchedule::rolling_restart(std::size_t n, std::uint64_t seed) {
  ChurnSchedule s("rolling_restart", seed);
  Rng rng(seed);
  const SimTime budget = quiesce_budget(n);
  SimTime t = 0;
  s.quiesce_at(t, budget);
  for (std::size_t i = 0; i < n; ++i) {
    s.crash_at(t += 20'000, i);
    // Down long enough that the ring reconfigures around the hole before the
    // node returns (restart-into-same-membership is a separate, easier case).
    t += 40'000 + rng.between(0, 30'000);
    s.recover_at(t, i);
    s.quiesce_at(t += 10'000, budget);
  }
  s.finish_at(t += 20'000, budget);
  return s;
}

ChurnSchedule ChurnSchedule::cascading_partition(std::size_t n, std::uint64_t seed,
                                                 int waves) {
  ChurnSchedule s("cascading_partition", seed);
  Rng rng(seed);
  const SimTime budget = quiesce_budget(n);
  SimTime t = 0;
  s.quiesce_at(t, budget);
  std::size_t parts = 2;
  for (int w = 0; w < waves; ++w) {
    s.partition_at(t += 20'000, random_groups(n, parts, rng));
    s.quiesce_at(t += 10'000, budget);
    parts = std::min(parts * 2, n);
  }
  s.heal_at(t += 20'000);
  s.finish_at(t += 10'000, budget);
  return s;
}

ChurnSchedule ChurnSchedule::merge_wave(std::size_t n, std::uint64_t seed) {
  ChurnSchedule s("merge_wave", seed);
  Rng rng(seed);
  const SimTime budget = quiesce_budget(n);
  SimTime t = 0;
  s.quiesce_at(t, budget);
  // Shatter to singletons, then rebuild by powers of two. The group shuffle
  // is fixed once so each wave is a strict coarsening of the previous one —
  // every merge joins components that already converged separately.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.below(i)]);
  for (std::size_t width = 1; width < n; width *= 2) {
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < n; i += width) {
      groups.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(i),
                          order.begin() + static_cast<std::ptrdiff_t>(std::min(i + width, n)));
    }
    s.partition_at(t += 20'000, std::move(groups));
    s.quiesce_at(t += 10'000, budget);
  }
  s.heal_at(t += 20'000);
  s.finish_at(t += 10'000, budget);
  return s;
}

ChurnSchedule ChurnSchedule::random_storm(std::size_t n, std::uint64_t seed,
                                          int events) {
  ChurnSchedule s("random_storm", seed);
  Rng rng(seed);
  const SimTime budget = quiesce_budget(n);
  SimTime t = 0;
  s.quiesce_at(t, budget);
  std::vector<bool> down(n, false);
  const std::size_t max_down = std::max<std::size_t>(1, n / 3);
  std::size_t down_count = 0;
  bool faults_active = false;
  for (int e = 0; e < events; ++e) {
    t += 30'000 + rng.between(0, 50'000);
    switch (rng.below(6)) {
      case 0:
        s.partition_at(t, random_groups(n, 2 + rng.below(3), rng));
        break;
      case 1:
        s.heal_at(t);
        break;
      case 2: {
        if (down_count >= max_down) break;
        const std::size_t victim = rng.below(n);
        if (down[victim]) break;
        down[victim] = true;
        ++down_count;
        s.crash_at(t, victim);
        break;
      }
      case 3: {
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t v = (i + rng.below(n)) % n;
          if (down[v]) {
            down[v] = false;
            --down_count;
            s.recover_at(t, v);
            break;
          }
        }
        break;
      }
      case 4:
        s.faults_at(t, "packet storm",
                    FaultPlan::storm(/*duplicate=*/0.05, /*reorder=*/0.10,
                                     /*corrupt=*/0.02));
        faults_active = true;
        break;
      case 5: {
        // Checkpoint: clear the packet storm (convergence under sustained
        // corruption has its own dedicated tests) but keep partitions and
        // crashes in force — stable() understands components and downed
        // nodes, so the check still bites.
        if (faults_active) {
          s.clear_faults_at(t);
          faults_active = false;
        }
        s.quiesce_at(t += 10'000, budget);
        break;
      }
    }
  }
  // Converge everything: clear faults, heal, recover all, full check.
  t += 30'000;
  if (faults_active) s.clear_faults_at(t);
  s.heal_at(t += 5'000);
  for (std::size_t i = 0; i < n; ++i) {
    if (down[i]) s.recover_at(t += 5'000, i);
  }
  s.finish_at(t += 10'000, budget);
  return s;
}

ChurnReport run_churn(Cluster& cluster, const ChurnSchedule& schedule) {
  ChurnReport report;
  report.scenario = schedule.name();
  std::vector<ChurnStep> steps = schedule.steps();
  std::stable_sort(steps.begin(), steps.end(),
                   [](const ChurnStep& a, const ChurnStep& b) { return a.at_us < b.at_us; });
  const SimTime start = cluster.now();
  for (const ChurnStep& step : steps) {
    const SimTime target = start + step.at_us;
    if (target > cluster.now()) cluster.run_for(target - cluster.now());
    if (step.quiesce) {
      ++report.quiesce_checks;
      const bool settled = step.final_check ? cluster.await_quiesce(step.max_wait_us)
                                            : cluster.await_stable(step.max_wait_us);
      if (!settled) {
        report.converged = false;
        report.failure = "checkpoint " + std::to_string(report.quiesce_checks) +
                         " (" + step.what + ", t=" + std::to_string(step.at_us) +
                         "us) did not converge\n" + cluster.liveness_report();
        break;
      }
      const std::string spec = cluster.check_report(/*quiescent=*/step.final_check);
      if (!spec.empty()) {
        report.spec_report = "after checkpoint " + std::to_string(report.quiesce_checks) +
                             " (t=" + std::to_string(step.at_us) + "us):\n" + spec;
        break;
      }
    } else {
      step.apply(cluster);
      ++report.steps_run;
    }
  }
  return report;
}

}  // namespace evs
