// Trace-derived metrics for the benchmark harness: delivery latency,
// recovery timing and disruption windows, all in *simulated* time. Plus
// fault-injection counters aggregated across a Cluster: what the injector
// did to the wire and what the hardened layers above rejected.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/faults.hpp"
#include "spec/trace.hpp"
#include "util/types.hpp"

namespace evs {

class Cluster;

struct LatencySummary {
  std::uint64_t samples{0};
  double avg_us{0};
  SimTime min_us{0};
  SimTime p50_us{0};
  SimTime p99_us{0};
  SimTime max_us{0};
};

/// Latency from a message's send event to its delivery. `to_last_delivery`
/// selects the slowest receiver (the stabilization time) instead of the
/// first. Optionally filtered by service level.
LatencySummary delivery_latency(const TraceLog& trace, bool to_last_delivery,
                                const Service* service_filter = nullptr);

/// Duration of each configuration-change disruption at a process: the
/// window from the last event in one regular configuration to the
/// installation of the next regular configuration.
struct RecoveryWindow {
  ProcessId process;
  SimTime start_us{0};
  SimTime end_us{0};
  SimTime duration_us() const { return end_us - start_us; }
};

std::vector<RecoveryWindow> recovery_windows(const TraceLog& trace);

/// Summary over recovery windows.
LatencySummary summarize(const std::vector<SimTime>& durations);

/// What the fault injector did, paired with what the protocol stack caught.
/// Injected counts come from the network's FaultInjector; rejection counts
/// are summed over every node of the cluster.
struct FaultCounters {
  FaultStats injected;
  std::uint64_t rejected_frames{0};
  std::uint64_t rejected_decode{0};
  std::uint64_t stale_rejected{0};
  std::uint64_t duplicate_regulars{0};
  std::uint64_t stale_tokens{0};
  std::uint64_t token_retransmits{0};
};

FaultCounters collect_fault_counters(const Cluster& cluster);

std::string to_string(const FaultCounters& c);

}  // namespace evs
