// Trace-derived metrics for the benchmark harness: delivery latency,
// recovery timing and disruption windows, all in *simulated* time.
#pragma once

#include <cstdint>
#include <vector>

#include "spec/trace.hpp"
#include "util/types.hpp"

namespace evs {

struct LatencySummary {
  std::uint64_t samples{0};
  double avg_us{0};
  SimTime min_us{0};
  SimTime p50_us{0};
  SimTime p99_us{0};
  SimTime max_us{0};
};

/// Latency from a message's send event to its delivery. `to_last_delivery`
/// selects the slowest receiver (the stabilization time) instead of the
/// first. Optionally filtered by service level.
LatencySummary delivery_latency(const TraceLog& trace, bool to_last_delivery,
                                const Service* service_filter = nullptr);

/// Duration of each configuration-change disruption at a process: the
/// window from the last event in one regular configuration to the
/// installation of the next regular configuration.
struct RecoveryWindow {
  ProcessId process;
  SimTime start_us{0};
  SimTime end_us{0};
  SimTime duration_us() const { return end_us - start_us; }
};

std::vector<RecoveryWindow> recovery_windows(const TraceLog& trace);

/// Summary over recovery windows.
LatencySummary summarize(const std::vector<SimTime>& durations);

}  // namespace evs
