#include "testkit/metrics.hpp"

#include <algorithm>
#include <map>

#include "testkit/cluster.hpp"

namespace evs {

LatencySummary summarize(const std::vector<SimTime>& durations) {
  LatencySummary out;
  if (durations.empty()) return out;
  std::vector<SimTime> sorted = durations;
  std::sort(sorted.begin(), sorted.end());
  out.samples = sorted.size();
  out.min_us = sorted.front();
  out.max_us = sorted.back();
  out.p50_us = sorted[sorted.size() / 2];
  out.p99_us = sorted[std::min(sorted.size() - 1, sorted.size() * 99 / 100)];
  double sum = 0;
  for (SimTime d : sorted) sum += static_cast<double>(d);
  out.avg_us = sum / static_cast<double>(sorted.size());
  return out;
}

LatencySummary delivery_latency(const TraceLog& trace, bool to_last_delivery,
                                const Service* service_filter) {
  std::map<MsgId, SimTime> send_time;
  std::map<MsgId, SimTime> delivery_time;  // first or last per selection
  for (const TraceEvent& e : trace.events()) {
    if (service_filter != nullptr && e.service != *service_filter &&
        (e.type == EventType::Send || e.type == EventType::Deliver)) {
      continue;
    }
    if (e.type == EventType::Send) {
      send_time[e.msg] = e.time;
    } else if (e.type == EventType::Deliver) {
      auto [it, inserted] = delivery_time.try_emplace(e.msg, e.time);
      if (!inserted) {
        it->second = to_last_delivery ? std::max(it->second, e.time)
                                      : std::min(it->second, e.time);
      }
    }
  }
  std::vector<SimTime> latencies;
  for (const auto& [m, sent] : send_time) {
    auto it = delivery_time.find(m);
    if (it == delivery_time.end() || it->second < sent) continue;
    latencies.push_back(it->second - sent);
  }
  return summarize(latencies);
}

std::vector<RecoveryWindow> recovery_windows(const TraceLog& trace) {
  // Per process: the window from the last event of normal operation to the
  // installation of the next regular configuration. The install itself
  // emits a burst of events (step 6 is atomic) all carrying the install
  // time, so the window start is the most recent event at a *strictly
  // earlier* time.
  struct Cursor {
    SimTime cur_time{0};   // most recent event time
    SimTime prev_time{0};  // most recent event time < cur_time
    bool in_regular{false};
  };
  std::map<ProcessId, Cursor> cursors;
  std::vector<RecoveryWindow> windows;
  for (const TraceEvent& e : trace.events()) {
    Cursor& c = cursors[e.process];
    if (e.type == EventType::DeliverConf && !e.config.transitional) {
      const SimTime start = e.time > c.cur_time ? c.cur_time : c.prev_time;
      if (c.in_regular) {
        windows.push_back(RecoveryWindow{e.process, start, e.time});
      }
      c.in_regular = true;
    }
    if (e.type == EventType::Fail) c.in_regular = false;
    if (e.time > c.cur_time) {
      c.prev_time = c.cur_time;
      c.cur_time = e.time;
    }
  }
  return windows;
}

FaultCounters collect_fault_counters(const Cluster& cluster) {
  FaultCounters out;
  out.injected = cluster.fault_stats();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const EvsNode* node = cluster.node_ptr(i);
    if (node == nullptr) continue;
    const auto& s = node->stats();
    out.rejected_frames += s.rejected_frames;
    out.rejected_decode += s.rejected_decode;
    out.stale_rejected += s.stale_rejected;
    out.duplicate_regulars += s.duplicate_regulars;
    out.stale_tokens += s.stale_tokens;
    out.token_retransmits += s.token_retransmits;
  }
  return out;
}

std::string to_string(const FaultCounters& c) {
  return to_string(c.injected) +
         " | rejected_frames=" + std::to_string(c.rejected_frames) +
         " rejected_decode=" + std::to_string(c.rejected_decode) +
         " stale_rejected=" + std::to_string(c.stale_rejected) +
         " duplicate_regulars=" + std::to_string(c.duplicate_regulars) +
         " stale_tokens=" + std::to_string(c.stale_tokens) +
         " token_retransmits=" + std::to_string(c.token_retransmits);
}

}  // namespace evs
