#include "testkit/corrupt.hpp"

#include <algorithm>
#include <limits>

namespace evs {

const char* to_string(CorruptionKind k) {
  switch (k) {
    case CorruptionKind::RingSeqRegression: return "ring_seq_regression";
    case CorruptionKind::RingSeqWraparound: return "ring_seq_wraparound";
    case CorruptionKind::StaleMaxRingSeq: return "stale_max_ring_seq";
    case CorruptionKind::PoisonedObligations: return "poisoned_obligations";
    case CorruptionKind::CorruptGcUpto: return "corrupt_gc_upto";
    case CorruptionKind::CorruptFcc: return "corrupt_fcc";
  }
  return "?";
}

bool apply_corruption(EvsNode& victim, CorruptionKind kind, Rng& rng) {
  if (!victim.running()) return false;
  switch (kind) {
    case CorruptionKind::RingSeqRegression: {
      RingSeq& seq = NodeIntrospect::ring_seq(victim);
      if (seq < 2) return false;
      seq = rng.between(0, seq - 1);
      return true;
    }
    case CorruptionKind::RingSeqWraparound: {
      // Counter lands just below wraparound: any +1 arithmetic is about to
      // overflow, and the value is far past the kMaxRingSeq plausibility
      // ceiling. Models multi-bit rot in the high word.
      NodeIntrospect::ring_seq(victim) =
          std::numeric_limits<RingSeq>::max() - rng.between(0, 3);
      return true;
    }
    case CorruptionKind::StaleMaxRingSeq: {
      GatherState* gather = NodeIntrospect::gather(victim);
      if (gather == nullptr) return false;
      NodeIntrospect::max_ring_seq_seen(*gather) =
          kMaxRingSeq + 1 + rng.between(0, 1'000'000);
      return true;
    }
    case CorruptionKind::PoisonedObligations: {
      std::vector<ProcessId>& obl = NodeIntrospect::obligation_set(victim);
      // Three poisons, possibly stacked: duplicate an entry, shuffle the
      // order, splice in pids no process in the system has ever used.
      // Out-of-system pids are deliberate: the obligation set's *semantic*
      // content (which real members may deliver past holes) is not locally
      // checkable, so the fuzzer perturbs only its syntactic invariants and
      // its conservative closure — see DESIGN.md for the residual risk.
      bool poisoned = false;
      if (!obl.empty() && rng.chance(0.7)) {
        obl.push_back(obl[rng.below(obl.size())]);  // duplicate
        poisoned = true;
      }
      if (rng.chance(0.7)) {
        obl.push_back(ProcessId{static_cast<std::uint32_t>(
            1'000'000 + rng.between(0, 1'000))});  // bogus pid
        poisoned = true;
      }
      if (obl.size() >= 2 && rng.chance(0.5)) {
        std::swap(obl.front(), obl.back());  // break sortedness
        poisoned = true;
      }
      if (!poisoned && !obl.empty()) {
        obl.push_back(obl.front());
        poisoned = true;
      }
      return poisoned;
    }
    case CorruptionKind::CorruptGcUpto: {
      if (OrderingCore* core = NodeIntrospect::core(victim)) {
        SeqNum& gc = NodeIntrospect::gc_upto(*core);
        if (rng.chance(0.5) && gc > 0) {
          gc = rng.between(0, gc - 1);  // regress: bodies below are gone
        } else {
          gc = core->delivered_upto() + 1 + rng.between(0, 64);  // past delivery
        }
        return true;
      }
      // Gather/Recovery: the watermark lives in the old-ring snapshot.
      SeqNum& gc = NodeIntrospect::old_gc_upto(victim);
      if (rng.chance(0.5) && gc > 0) {
        gc = rng.between(0, gc - 1);
      } else {
        gc = NodeIntrospect::old_delivered_upto(victim) + 1 + rng.between(0, 64);
      }
      return true;
    }
    case CorruptionKind::CorruptFcc: {
      OrderingCore* core = NodeIntrospect::core(victim);
      if (core == nullptr) return false;
      NodeIntrospect::prev_visit_broadcasts(*core) =
          static_cast<std::uint32_t>(0x8000'0000u + rng.between(0, 0x7fff'ffffu));
      return true;
    }
  }
  return false;
}

}  // namespace evs
