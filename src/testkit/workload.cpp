#include "testkit/workload.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace evs {

std::vector<MsgId> send_random_burst(Cluster& cluster, Rng& rng, int count,
                                     double safe_fraction,
                                     std::size_t payload_bytes) {
  std::vector<std::size_t> running;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.node(i).running()) running.push_back(i);
  }
  std::vector<MsgId> ids;
  if (running.empty()) return ids;
  for (int i = 0; i < count; ++i) {
    const std::size_t who = running[rng.below(running.size())];
    Service service;
    if (rng.uniform() < safe_fraction) {
      service = Service::Safe;
    } else {
      service = rng.chance(0.5) ? Service::Agreed : Service::Causal;
    }
    std::vector<std::uint8_t> payload(payload_bytes);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    auto sent = cluster.node(who).send(service, std::move(payload));
    if (sent.ok()) {
      ids.push_back(*sent);
    } else {
      // Backpressure is an expected outcome under heavy bursts, not a
      // harness bug; the burst simply produces fewer messages. Anything
      // else (crashed node raced the running check, oversized payload)
      // still fails loudly.
      EVS_ASSERT_MSG(sent.code() == Errc::backpressure, sent.status().message().c_str());
    }
  }
  return ids;
}

void random_partition(Cluster& cluster, Rng& rng, std::size_t max_groups) {
  const std::size_t n = cluster.size();
  const std::size_t groups = 1 + rng.below(std::min(max_groups, n));
  std::vector<std::vector<std::size_t>> components(groups);
  // Random assignment, then drop empty groups (set_components isolates
  // unlisted processes, which is fine too).
  for (std::size_t i = 0; i < n; ++i) {
    components[rng.below(groups)].push_back(i);
  }
  components.erase(std::remove_if(components.begin(), components.end(),
                                  [](const auto& g) { return g.empty(); }),
                   components.end());
  cluster.partition(components);
}

RandomScheduleStats run_random_schedule(Cluster& cluster, Rng& rng,
                                        const RandomScheduleOptions& options) {
  RandomScheduleStats stats;
  std::vector<ProcessId> down;

  for (int round = 0; round < options.rounds; ++round) {
    if (rng.uniform() < options.partition_probability) {
      random_partition(cluster, rng);
      ++stats.partitions;
    } else if (rng.uniform() < options.heal_probability) {
      cluster.heal();
      ++stats.heals;
    }

    if (down.size() < options.max_down &&
        rng.uniform() < options.crash_probability) {
      const ProcessId victim = cluster.pid(rng.below(cluster.size()));
      if (cluster.node(victim).running()) {
        cluster.crash(victim);
        down.push_back(victim);
        ++stats.crashes;
      }
    }
    for (std::size_t i = 0; i < down.size();) {
      if (rng.uniform() < options.recover_probability) {
        cluster.recover(down[i]);
        ++stats.recoveries;
        down.erase(down.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    stats.messages_sent +=
        static_cast<int>(send_random_burst(cluster, rng, options.messages_per_round,
                                           options.safe_fraction)
                             .size());
    cluster.run_for(options.round_length_us);
  }

  // Wind down: one connected component, everyone alive, run to quiescence.
  cluster.heal();
  for (ProcessId p : down) cluster.recover(p);
  const bool quiesced = cluster.await_quiesce(20'000'000);
  EVS_ASSERT_MSG(quiesced, "random schedule failed to re-stabilize");
  return stats;
}

}  // namespace evs
