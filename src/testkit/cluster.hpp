// Cluster: a simulated distributed system of EvsNodes with scripting
// helpers for partitions, crashes and recovery, plus trace collection.
//
// This is the harness used by the integration tests, the property tests,
// the examples and the benchmarks. It owns the scheduler, the network, one
// StableStore per process (stores outlive crashes — that is the paper's
// "recover with stable storage intact") and the global TraceLog.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "evs/node.hpp"
#include "net/network.hpp"
#include "obs/span.hpp"
#include "sim/scheduler.hpp"
#include "spec/checker.hpp"
#include "spec/trace.hpp"
#include "storage/stable_store.hpp"
#include "testkit/report.hpp"
#include "util/rng.hpp"

namespace evs {

class Cluster {
 public:
  struct Options {
    std::size_t num_processes{3};
    std::uint64_t seed{1};
    Network::Options net{};
    EvsNode::Options node{};
    bool auto_start{true};  ///< start all nodes at construction
    /// Fault plan installed at construction (see sim/faults.hpp). Empty by
    /// default; scriptable later via inject_faults()/clear_faults().
    FaultPlan faults{};
    /// Liveness watchdog: if > 0, await()/await_quiesce() fail fast when no
    /// node makes protocol progress for this much virtual time, logging a
    /// liveness report with the fault log attached.
    SimTime watchdog_window_us{0};
    /// Own an obs::SpanSink and attach it to every node, so membership
    /// gathers, recoveries and configuration installs are recorded as spans
    /// (see obs/span.hpp). Off by default: with no sink attached the
    /// tracing hooks are a null-pointer test per episode.
    bool enable_spans{false};
  };

  /// Everything one process delivered, for test assertions.
  struct Sink {
    std::vector<EvsNode::Delivery> deliveries;
    std::vector<Configuration> configs;

    /// Message ids delivered, in order.
    std::vector<MsgId> delivered_ids() const;
    bool delivered(const MsgId& m) const;
    const EvsNode::Delivery* find(const MsgId& m) const;
  };

  explicit Cluster(Options options);
  Cluster() : Cluster(Options{}) {}

  Scheduler& scheduler() { return scheduler_; }
  Network& network() { return *network_; }
  TraceLog& trace() { return trace_; }

  std::size_t size() const { return procs_.size(); }
  ProcessId pid(std::size_t index) const;
  std::vector<ProcessId> pids() const;

  EvsNode& node(std::size_t index);
  EvsNode& node(ProcessId p);
  Sink& sink(std::size_t index);
  Sink& sink(ProcessId p);
  StableStore& store(ProcessId p);

  // --- lifecycle ---
  // All lifecycle steps return Status instead of asserting: the crash-point
  // sweep (and any scripted scenario) drives them from scheduled callbacks
  // where a lifecycle race is an expected outcome, not a harness bug.
  // Errc::invalid_argument reports an unknown pid or a misuse (double
  // crash, recover without a prior start, start while running);
  // Errc::storage_io reports a boot whose own persistence fail-stopped it.
  void start_all();
  Status start(ProcessId p);
  /// Fail the process: the node loses its volatile state, and so does the
  /// store (its durable log survives; recover() replays it).
  Status crash(ProcessId p);
  /// Construct a fresh incarnation on the same store and start it. Replays
  /// and repairs the store's log first (truncating a torn tail record,
  /// quarantining corrupt ones) exactly like a reboot would.
  Status recover(ProcessId p);

  // --- crash-point exploration (see tests/evs/crash_test.cpp) ---
  /// Arm process p's store so its nth append (1-based) lands per `variant`
  /// and then schedules crash(p) at the current simulation time — i.e. the
  /// event containing the write finishes, and the process dies before any
  /// further packet delivery. Clean leaves the write durable; Torn/Corrupt
  /// damage it exactly as a mid-write power cut would.
  Status arm_crash_point(ProcessId p, std::uint64_t nth_write,
                         StableStore::TailFault variant);
  /// Appends attempted against p's store so far (the crash-point domain).
  std::uint64_t store_writes(ProcessId p) const;

  // --- network scripting (groups are process indexes) ---
  void partition(const std::vector<std::vector<std::size_t>>& groups);
  void heal();

  // --- fault scripting (see sim/faults.hpp) ---
  void inject_faults(FaultPlan plan) { network_->set_fault_plan(std::move(plan)); }
  void clear_faults() { network_->clear_faults(); }
  FaultStats fault_stats() const { return network_->fault_stats(); }

  // --- time ---
  void run_for(SimTime us) { scheduler_.run_for(us); }
  SimTime now() const { return scheduler_.now(); }

  /// Run until `predicate()` holds, polling every `step_us` of virtual
  /// time; returns false if `max_wait_us` elapses first.
  bool await(const std::function<bool()>& predicate, SimTime max_wait_us,
             SimTime step_us = 500);

  /// All running nodes Operational, and every network component has
  /// converged on a single configuration containing exactly the running
  /// members of that component.
  bool stable() const;
  bool await_stable(SimTime max_wait_us = 2'000'000);

  /// await_stable, then run until delivery counts stop changing and all
  /// send queues drain.
  bool await_quiesce(SimTime max_wait_us = 4'000'000);

  // --- checking ---
  /// Run the full specification checker over the collected trace.
  std::vector<Violation> check(bool quiescent = true) const;

  /// gtest-friendly: empty string if conformant, else formatted violations.
  std::string check_report(bool quiescent = true) const;

  // --- liveness watchdog ---
  /// True if an await tripped the watchdog (no protocol progress for
  /// Options::watchdog_window_us of virtual time).
  bool watchdog_tripped() const { return watchdog_tripped_; }

  /// Capture the cluster's observable state: per-process protocol state and
  /// a copy of each node's metrics registry, the network registry, a
  /// cluster-wide aggregate, and fault-injector stats. One snapshot serves
  /// both exports — snapshot().to_json() is the machine-readable
  /// "evs.obs.snapshot" document, snapshot().to_text() the human report.
  ClusterSnapshot snapshot() const;

  /// Cluster-wide metrics: every node's registry plus the network's, merged.
  obs::MetricsRegistry aggregate_metrics() const;

  /// Human-readable snapshot (snapshot().to_text()): per-process state and
  /// stats, network stats, fault-injector stats and the recent fault log.
  /// Attached to watchdog failures; useful in any test failure message.
  std::string liveness_report() const { return snapshot().to_text(); }

  /// The span sink shared by all nodes, or nullptr unless
  /// Options::enable_spans was set.
  obs::SpanSink* spans() { return spans_.get(); }
  const obs::SpanSink* spans() const { return spans_.get(); }

  /// The node for a process index, or nullptr if never started. For metrics
  /// collection that must not assert on missing nodes.
  const EvsNode* node_ptr(std::size_t index) const;

 private:
  struct Proc {
    ProcessId pid;
    std::unique_ptr<StableStore> store;
    std::unique_ptr<EvsNode> node;
    Sink sink;
  };

  void wire(Proc& proc);
  Status valid_pid(ProcessId p) const;

  /// Watchdog trip: log the snapshot's text report and, when EVS_OBS_OUT is
  /// set, write its "evs.obs.snapshot" JSON there for postmortem tooling.
  void watchdog_fire();

  /// Monotone protocol-progress signature: any token handled, delivery,
  /// configuration change, gather, recovery or send at any running node
  /// changes it. Constant signature over a watchdog window = stuck cluster.
  std::uint64_t progress_signature() const;

  Options options_;
  Scheduler scheduler_;
  Rng rng_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<obs::SpanSink> spans_;
  TraceLog trace_;
  std::vector<Proc> procs_;
  bool watchdog_tripped_{false};
};

}  // namespace evs
