#include "testkit/live_cluster.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace evs {

namespace {

SimTime wall_us() {
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void sleep_us(SimTime us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

EvsNode::Options live_node_defaults() {
  EvsNode::Options o;
  o.token_loss_timeout_us = 120'000;
  o.token_retransmit_interval_us = 25'000;  // limit 3 -> 75 ms < 120 ms
  o.beacon_interval_us = 25'000;
  o.join_interval_us = 10'000;
  o.gather_fail_timeout_us = 80'000;
  o.consensus_wait_timeout_us = 120'000;
  o.exchange_interval_us = 10'000;
  o.recovery_timeout_us = 400'000;
  o.singleton_token_interval_us = 10'000;
  return o;
}

EvsNode::Options live_node_defaults_scaled(std::size_t n) {
  EvsNode::Options o = live_node_defaults();
  if (n <= 8) return o;
  // Same dilation and same fields as EvsNode::Options::scaled_for, applied
  // to the wall-clock profile; every validate() ratio is preserved because
  // all the bases stretch by one factor.
  const SimTime f = static_cast<SimTime>((n + 7) / 8);
  o.token_loss_timeout_us *= f;
  o.beacon_interval_us *= f;
  o.join_interval_us *= f;
  o.gather_fail_timeout_us *= f;
  o.consensus_wait_timeout_us *= f;
  o.exchange_interval_us *= f;
  o.recovery_timeout_us *= f;
  o.token_retransmit_interval_us *= f;
  return o;
}

bool LiveCluster::Sink::delivered(const MsgId& m) const {
  return std::any_of(deliveries.begin(), deliveries.end(),
                     [&](const EvsNode::Delivery& d) { return d.id == m; });
}

LiveCluster::LiveCluster(Options options) : options_(std::move(options)) {
  // One shared epoch for every member: trace timestamps from different
  // processes must sit on the same time base or the spec checker's
  // cross-process send-before-delivery comparison would see the per-node
  // start stagger as causality violations.
  if (options_.transport.epoch_ns == 0) {
    options_.transport.epoch_ns = UdpTransport::monotonic_now_ns();
  }
  procs_.reserve(options_.num_processes);
  for (std::size_t i = 0; i < options_.num_processes; ++i) {
    auto proc = std::make_unique<Proc>();
    proc->pid = ProcessId{static_cast<std::uint32_t>(i + 1)};
    proc->transport = std::make_unique<UdpTransport>(options_.transport);
    proc->store = std::make_unique<StableStore>();
    proc->trace = std::make_unique<TraceLog>();
    procs_.push_back(std::move(proc));
  }
  group_of_.assign(procs_.size(), 0);
}

LiveCluster::~LiveCluster() { stop(); }

ProcessId LiveCluster::pid(std::size_t index) const {
  EVS_ASSERT(index < procs_.size());
  return procs_[index]->pid;
}

Status LiveCluster::prepare(net::Executor& executor) {
  if (opened_) {
    // Lifecycle misuse is a reportable error, not an abort: a harness that
    // opens twice gets told so and keeps its first instance intact.
    return Status::error(Errc::invalid_argument,
                         "LiveCluster::open() called twice");
  }
  opened_ = true;
  executor_ = &executor;

  // 1. Bind every socket first so the full address mesh is known.
  for (auto& proc : procs_) {
    if (Status st = proc->transport->open(); !st.ok()) return st;
  }
  // 2. Register the mesh (every peer, including the process itself: that is
  // what loops broadcasts back through the kernel). Fresh ephemeral binds
  // cannot collide, so an alias error here is a real harness bug.
  for (auto& proc : procs_) {
    for (auto& other : procs_) {
      if (Status st = proc->transport->add_peer(other->pid,
                                                other->transport->local_addr());
          !st.ok()) {
        return st;
      }
    }
  }
  // 3. Construct and wire the nodes; every protocol action they ever take
  // happens on the executor worker that drives their transport.
  for (auto& proc : procs_) {
    proc->node = std::make_unique<EvsNode>(proc->pid, *proc->transport,
                                           *proc->store, proc->trace.get(),
                                           options_.node);
    Proc* p = proc.get();
    proc->node->set_on_deliver([p](const EvsNode::Delivery& d) {
      p->sink.deliveries.push_back(d);
      p->delivered.fetch_add(1, std::memory_order_relaxed);
    });
    proc->node->set_on_config_change(
        [p](const Configuration& c) { p->sink.configs.push_back(c); });
    executor.add(proc->transport.get());
  }
  return Status::ok_status();
}

void LiveCluster::launch() {
  EVS_ASSERT_MSG(executor_ != nullptr && executor_->running(),
                 "launch() before the executor started");
  running_ = true;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    call(i, [this, i] { procs_[i]->node->start(); });
  }
}

Status LiveCluster::open() {
  if (opened_) {
    // Check before constructing the executor: replacing own_executor_ on a
    // running cluster would tear down the live workers mid-misuse.
    return Status::error(Errc::invalid_argument,
                         "LiveCluster::open() called twice");
  }
  net::Executor::Options ex_options;
  ex_options.num_workers = options_.num_workers;
  own_executor_ = std::make_unique<net::Executor>(ex_options);
  if (Status st = prepare(*own_executor_); !st.ok()) return st;
  if (Status st = own_executor_->start(); !st.ok()) return st;
  launch();
  return Status::ok_status();
}

void LiveCluster::stop() {
  if (!running_) return;
  // Executor::stop joins the workers, then closes every member transport's
  // inbox (running what was already accepted) — so a stop racing posted
  // work does not strand it, and later post() calls fail fast.
  executor_->stop();
  running_ = false;
}

void LiveCluster::call(std::size_t index, std::function<void()> fn) {
  EVS_ASSERT(index < procs_.size());
  if (!running_) {
    // Loops are gone; nothing to race with.
    fn();
    return;
  }
  std::promise<void> done;
  std::future<void> waiter = done.get_future();
  const bool posted = procs_[index]->transport->post([&fn, &done] {
    fn();
    done.set_value();
  });
  if (!posted) {
    // Lost the race against a concurrent stop(): the inbox closed, which
    // means the workers have joined — running inline is as safe as the
    // !running_ path above, and waiting on the promise would deadlock.
    fn();
    return;
  }
  waiter.wait();
}

Expected<MsgId> LiveCluster::send(std::size_t index, Service service,
                                  std::vector<std::uint8_t> payload) {
  Expected<MsgId> result{Errc::not_running, "send before open()"};
  call(index, [&] {
    result = procs_[index]->node->send(service, std::move(payload));
  });
  return result;
}

void LiveCluster::send_async(std::size_t index, Service service,
                             std::vector<std::uint8_t> payload) {
  EVS_ASSERT(index < procs_.size());
  Proc* p = procs_[index].get();
  // Fire-and-forget: a post rejected by a closed inbox (stop race) is a
  // dropped send, counted by the transport — acceptable for async callers.
  (void)p->transport->post([p, service, payload = std::move(payload)]() mutable {
    (void)p->node->send(service, std::move(payload));
  });
}

Expected<std::vector<MsgId>> LiveCluster::send_batch(
    std::size_t index, Service service,
    std::vector<std::vector<std::uint8_t>> payloads) {
  Expected<std::vector<MsgId>> result{Errc::not_running, "send before open()"};
  call(index, [&] {
    result = procs_[index]->node->send_batch(service, std::move(payloads));
  });
  return result;
}

void LiveCluster::send_async_batch(std::size_t index, Service service,
                                   std::vector<std::vector<std::uint8_t>> payloads) {
  EVS_ASSERT(index < procs_.size());
  Proc* p = procs_[index].get();
  (void)p->transport->post([p, service, payloads = std::move(payloads)]() mutable {
    (void)p->node->send_batch(service, std::move(payloads));
  });
}

LiveCluster::NodeSample LiveCluster::sample(std::size_t index) {
  NodeSample s;
  call(index, [&] {
    const EvsNode& n = *procs_[index]->node;
    s.state = n.state();
    s.config = n.config();
    const EvsNode::Stats st = n.stats();
    s.delivered = st.delivered;
    s.sent = st.sent;
    s.pending_sends = n.pending_sends();
  });
  return s;
}

void LiveCluster::partition(const std::vector<std::vector<std::size_t>>& groups) {
  // Unlisted processes land in singleton groups after the listed ones.
  group_of_.assign(procs_.size(), SIZE_MAX);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t idx : groups[g]) {
      EVS_ASSERT(idx < procs_.size());
      group_of_[idx] = g;
    }
  }
  std::size_t next = groups.size();
  for (auto& g : group_of_) {
    if (g == SIZE_MAX) g = next++;
  }
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    call(i, [this, i] {
      for (std::size_t j = 0; j < procs_.size(); ++j) {
        if (group_of_[i] == group_of_[j]) {
          procs_[i]->transport->unblock_peer(procs_[j]->pid);
        } else {
          procs_[i]->transport->block_peer(procs_[j]->pid);
        }
      }
    });
  }
}

void LiveCluster::heal() {
  group_of_.assign(procs_.size(), 0);
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    call(i, [this, i] {
      for (auto& other : procs_) procs_[i]->transport->unblock_peer(other->pid);
    });
  }
}

bool LiveCluster::await(const std::function<bool()>& predicate,
                        SimTime max_wait_us, SimTime poll_interval_us) {
  const SimTime deadline = wall_us() + max_wait_us;
  while (true) {
    if (predicate()) return true;
    if (wall_us() >= deadline) return false;
    sleep_us(poll_interval_us);
  }
}

bool LiveCluster::stable() {
  std::vector<NodeSample> samples;
  samples.reserve(procs_.size());
  for (std::size_t i = 0; i < procs_.size(); ++i) samples.push_back(sample(i));
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    if (samples[i].state != EvsNode::State::Operational) return false;
    std::vector<ProcessId> expected;
    for (std::size_t j = 0; j < procs_.size(); ++j) {
      if (group_of_[j] == group_of_[i]) expected.push_back(procs_[j]->pid);
    }
    if (samples[i].config.members != expected) return false;
    for (std::size_t j = 0; j < procs_.size(); ++j) {
      if (group_of_[j] == group_of_[i] &&
          !(samples[j].config.id == samples[i].config.id)) {
        return false;
      }
    }
  }
  return true;
}

bool LiveCluster::await_stable(SimTime max_wait_us) {
  return await([this] { return stable(); }, max_wait_us);
}

bool LiveCluster::await_quiesce(SimTime max_wait_us) {
  const SimTime deadline = wall_us() + max_wait_us;
  if (!await_stable(max_wait_us)) return false;
  auto totals = [this] {
    std::uint64_t delivered = 0;
    std::uint64_t pending = 0;
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      const NodeSample s = sample(i);
      delivered += s.delivered;
      pending += s.pending_sends;
    }
    return std::pair{delivered, pending};
  };
  auto [prev_delivered, prev_pending] = totals();
  // Quiesce = no delivery progress across a settle window AND all send
  // queues empty. The window must outlast a token rotation.
  const SimTime settle_us = 100'000;
  SimTime settled_since = wall_us();
  while (wall_us() < deadline) {
    sleep_us(10'000);
    auto [delivered, pending] = totals();
    if (delivered != prev_delivered || pending != 0) {
      prev_delivered = delivered;
      settled_since = wall_us();
    } else if (wall_us() - settled_since >= settle_us) {
      return true;
    }
    prev_pending = pending;
  }
  return false;
}

std::uint64_t LiveCluster::total_delivered() const {
  std::uint64_t total = 0;
  for (const auto& proc : procs_) {
    total += proc->delivered.load(std::memory_order_relaxed);
  }
  return total;
}

const LiveCluster::Sink& LiveCluster::sink(std::size_t index) const {
  EVS_ASSERT(index < procs_.size());
  EVS_ASSERT_MSG(!running_, "read sinks after stop(), or via call()");
  return procs_[index]->sink;
}

UdpTransport& LiveCluster::transport(std::size_t index) {
  EVS_ASSERT(index < procs_.size());
  return *procs_[index]->transport;
}

EvsNode& LiveCluster::node(std::size_t index) {
  EVS_ASSERT(index < procs_.size());
  EVS_ASSERT(procs_[index]->node != nullptr);
  return *procs_[index]->node;
}

TraceLog LiveCluster::merged_trace() const {
  EVS_ASSERT_MSG(!running_, "merge traces after stop()");
  TraceLog merged;
  // Append node by node: each node records only its own process's events,
  // so per-process program order — all the checker relies on — survives any
  // interleaving across processes.
  for (const auto& proc : procs_) {
    for (const TraceEvent& e : proc->trace->events()) merged.record(e);
  }
  return merged;
}

std::vector<Violation> LiveCluster::check(bool quiescent) const {
  const TraceLog merged = merged_trace();
  SpecChecker checker(merged, SpecChecker::Options{quiescent});
  return checker.check_all();
}

std::string LiveCluster::check_report(bool quiescent) const {
  std::string out;
  for (const Violation& v : check(quiescent)) {
    out += "Spec " + v.spec + ": " + v.detail + "\n";
  }
  return out;
}

obs::MetricsRegistry LiveCluster::aggregate_metrics() const {
  EVS_ASSERT_MSG(!running_, "aggregate metrics after stop()");
  obs::MetricsRegistry agg;
  for (const auto& proc : procs_) {
    if (proc->node != nullptr) agg.merge_from(proc->node->metrics());
    agg.merge_from(proc->store->metrics());
    agg.merge_from(proc->transport->metrics());
  }
  // A shared executor (prepare()/launch() path) is aggregated once by
  // whoever owns it, not once per shard.
  if (own_executor_ != nullptr) agg.merge_from(own_executor_->metrics());
  return agg;
}

}  // namespace evs
