#include "testkit/report.hpp"

#include "obs/export.hpp"
#include "obs/json.hpp"

namespace evs {

namespace {

void write_fault_stats(obs::JsonWriter& w, const FaultStats& s) {
  w.begin_object();
  w.kv("packets_considered", s.packets_considered);
  w.kv("injected_total", s.injected_total);
  w.kv("dropped", s.dropped);
  w.kv("token_dropped", s.token_dropped);
  w.kv("duplicated", s.duplicated);
  w.kv("corrupted", s.corrupted);
  w.kv("reordered", s.reordered);
  w.kv("delay_spiked", s.delay_spiked);
  w.kv("writes_considered", s.writes_considered);
  w.kv("write_failed", s.write_failed);
  w.kv("write_torn", s.write_torn);
  w.kv("write_rotted", s.write_rotted);
  w.end_object();
}

}  // namespace

std::string ClusterSnapshot::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "evs.obs.snapshot");
  w.kv("version", 1);
  w.kv("time_us", time_us);
  w.key("nodes").begin_array();
  for (const Node& n : nodes) {
    w.begin_object();
    w.kv("pid", static_cast<std::uint64_t>(n.pid.value));
    w.kv("started", n.started);
    w.kv("running", n.running);
    w.kv("state", n.started ? std::string_view(n.state) : "(never started)");
    if (n.started) {
      w.kv("config", n.config);
      w.kv("pending_sends", n.pending_sends);
      w.key("metrics");
      obs::write_metrics(w, n.metrics);
    }
    w.end_object();
  }
  w.end_array();
  w.key("network");
  obs::write_metrics(w, network);
  w.key("aggregate");
  obs::write_metrics(w, aggregate);
  w.key("faults");
  write_fault_stats(w, faults);
  w.end_object();
  return w.take();
}

std::string ClusterSnapshot::to_text() const {
  std::string out = "cluster @" + std::to_string(time_us) + "us\n";
  for (const Node& n : nodes) {
    out += "  " + to_string(n.pid) + ": ";
    if (!n.started) {
      out += "(never started)\n";
      continue;
    }
    const auto c = [&n](const char* name) {
      return std::to_string(n.metrics.counter_value(name));
    };
    out += n.state + (n.running ? "" : " (crashed)") + " config=" + n.config +
           " sent=" + c("evs.sent") +
           " delivered=" + c("evs.delivered") +
           " tokens=" + c("evs.tokens_handled") +
           " gathers=" + c("evs.gathers") +
           " recoveries=" + c("evs.recoveries") +
           " rej_frames=" + c("evs.rejected_frames") +
           " rej_decode=" + c("evs.rejected_decode") +
           " stale=" + c("evs.stale_rejected") +
           " retransmits=" + c("evs.token_retransmits") +
           " pending=" + std::to_string(n.pending_sends) + "\n";
  }
  const auto nc = [this](const char* name) {
    return std::to_string(network.counter_value(name));
  };
  out += "  network: deliveries=" + nc("net.deliveries") +
         " dropped_loss=" + nc("net.dropped_loss") +
         " dropped_partition=" + nc("net.dropped_partition") +
         " dropped_fault=" + nc("net.dropped_fault") +
         " duplicated_fault=" + nc("net.duplicated_fault") + "\n";
  if (have_injector) {
    out += "  faults: " + to_string(faults) + "\n";
    out += "  recent fault log:\n" + fault_log;
  } else {
    out += "  faults: (no injector installed)\n";
  }
  return out;
}

}  // namespace evs
