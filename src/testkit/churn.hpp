// Churn-storm scenario engine: declarative, seeded schedules of membership
// churn — flapping links, rolling restarts, cascading partitions, merge
// waves — composed on top of Cluster/FaultPlan, with spec-conformance
// checked after every quiesce window.
//
// A ChurnSchedule is a pure value: a named list of timed steps produced
// deterministically from (cluster size, seed). Running it against a Cluster
// (run_churn) replays the same virtual-time event sequence every time, so a
// failing storm is replayed bit-for-bit from its seed and shrunk by trying
// nearby seeds or truncated schedules. The sim Network stays the substrate:
// nothing here introduces real time or real sockets.
//
// Scenario vocabulary:
//   * flapping_links      — a link cut that toggles on/off several times
//   * rolling_restart     — crash + recover each process in turn, staggered
//   * cascading_partition — split into progressively finer components
//   * merge_wave          — singletons merging pairwise up to the full ring
//   * random_storm        — a seeded mixture of all of the above
// Every generated scenario ends by healing the network, recovering every
// downed process, and a final quiesce + full (quiescent) spec check.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/faults.hpp"
#include "testkit/cluster.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evs {

/// One step of a churn schedule: either an action against the cluster or a
/// quiesce checkpoint (await convergence, then run the spec checker).
struct ChurnStep {
  SimTime at_us{0};  ///< virtual-time offset from the schedule's start
  std::string what;  ///< human-readable label, quoted in failure reports
  std::function<void(Cluster&)> apply;  ///< null for quiesce checkpoints

  bool quiesce{false};     ///< this step is a checkpoint, not an action
  SimTime max_wait_us{0};  ///< checkpoint convergence budget
  bool final_check{false};  ///< checkpoint uses await_quiesce + quiescent check
};

/// Outcome of one schedule run; empty ok() means the storm passed.
struct ChurnReport {
  std::string scenario;
  std::size_t steps_run{0};
  std::size_t quiesce_checks{0};
  bool converged{true};     ///< every checkpoint reached stability in budget
  std::string spec_report;  ///< first non-empty spec-checker report
  std::string failure;      ///< which checkpoint failed, and how

  bool ok() const { return converged && spec_report.empty() && failure.empty(); }
  std::string to_string() const;
};

class ChurnSchedule {
 public:
  ChurnSchedule(std::string name, std::uint64_t seed)
      : name_(std::move(name)), seed_(seed) {}

  // --- DSL -----------------------------------------------------------------

  /// Apply `fn` to the cluster at virtual-time offset `t`.
  ChurnSchedule& at(SimTime t, std::string what, std::function<void(Cluster&)> fn);

  /// Checkpoint at offset `t`: await stability (await_stable), then run the
  /// non-quiescent spec checker. Aborts the run on failure.
  ChurnSchedule& quiesce_at(SimTime t, SimTime max_wait_us);

  /// Terminal checkpoint: await_quiesce, then the full quiescent spec check.
  ChurnSchedule& finish_at(SimTime t, SimTime max_wait_us);

  // Convenience wrappers for the common actions.
  ChurnSchedule& partition_at(SimTime t, std::vector<std::vector<std::size_t>> groups);
  ChurnSchedule& heal_at(SimTime t);
  ChurnSchedule& crash_at(SimTime t, std::size_t index);
  ChurnSchedule& recover_at(SimTime t, std::size_t index);
  ChurnSchedule& faults_at(SimTime t, std::string what, FaultPlan plan);
  ChurnSchedule& clear_faults_at(SimTime t);

  // --- named scenario generators ------------------------------------------
  // All deterministic in (n, seed); all end healed + recovered + checked.

  /// A victim link flaps `flaps` times (asymmetric cut on, off, on, ...),
  /// with a stability checkpoint after each off phase.
  static ChurnSchedule flapping_links(std::size_t n, std::uint64_t seed, int flaps = 4);

  /// Crash + recover every process in turn, `up_gap_us` apart, so the ring
  /// reconfigures around each restart without ever losing a majority.
  static ChurnSchedule rolling_restart(std::size_t n, std::uint64_t seed);

  /// Split the ring into progressively finer random partitions (2, 4, ...
  /// components), checking each level, then heal.
  static ChurnSchedule cascading_partition(std::size_t n, std::uint64_t seed,
                                           int waves = 3);

  /// Shatter into singletons, then merge pairwise, then quads, ... up to the
  /// full ring, checking each merge level.
  static ChurnSchedule merge_wave(std::size_t n, std::uint64_t seed);

  /// A seeded mixture: random partitions, heals, crash/recover pairs and
  /// windowed packet storms, `events` of them, with periodic checkpoints.
  static ChurnSchedule random_storm(std::size_t n, std::uint64_t seed,
                                    int events = 12);

  // --- accessors -----------------------------------------------------------
  const std::string& name() const { return name_; }
  std::uint64_t seed() const { return seed_; }
  const std::vector<ChurnStep>& steps() const { return steps_; }

  /// Convergence budget per checkpoint, scaled for the ring size the
  /// generators were asked for (large rings legitimately take longer).
  static SimTime quiesce_budget(std::size_t n);

 private:
  std::string name_;
  std::uint64_t seed_;
  std::vector<ChurnStep> steps_;
};

/// Execute the schedule against the cluster: advance virtual time to each
/// step's offset (relative to the cluster's clock at entry), apply actions,
/// and evaluate checkpoints. Stops at the first failed checkpoint.
ChurnReport run_churn(Cluster& cluster, const ChurnSchedule& schedule);

}  // namespace evs
