// Deterministic discrete-event scheduler.
//
// All protocol activity in this repository — packet delivery, protocol
// timers, crash injection, partition scripting — runs as events on one of
// these schedulers. Events at equal virtual times fire in insertion order,
// which makes every run a pure function of (code, seed, scenario script).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/types.hpp"

namespace evs {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Identifies a scheduled event for cancellation. Default-constructed
  /// handles are inert.
  struct Handle {
    std::uint64_t id{0};
    bool valid() const { return id != 0; }
  };

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `t` (>= now).
  Handle schedule_at(SimTime t, Callback cb);

  /// Schedule `cb` after `delay` microseconds of virtual time.
  Handle schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a scheduled event. Cancelling an already-fired or invalid
  /// handle is a no-op.
  void cancel(Handle h);

  /// Execute the next event. Returns false when the queue is empty.
  bool step();

  /// Run events until virtual time exceeds `t` or the queue drains.
  /// Afterwards now() == max(now, t).
  void run_until(SimTime t);

  void run_for(SimTime delta) { run_until(now_ + delta); }

  /// Run until the queue is empty or `max_events` executed; returns the
  /// number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Fire time of the earliest live event, or nullopt when none is pending.
  /// Prunes cancelled tombstones off the top of the queue as a side effect
  /// (which is why it is not const). Live transports use this to bound
  /// their poll() timeout to the next protocol timer.
  std::optional<SimTime> next_time();

  /// Number of live (scheduled, not yet fired, not cancelled) events.
  /// Counted from the callback map, not from queue arithmetic: the queue
  /// may still hold tombstones for cancelled entries, and subtracting set
  /// sizes would underflow if the two ever disagreed.
  std::size_t pending() const { return callbacks_.size(); }

  /// Total events executed over the lifetime of this scheduler.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    std::uint64_t id;
    // Ordered as a max-heap by std::priority_queue, so invert.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  SimTime now_{0};
  std::uint64_t next_seq_{1};
  std::uint64_t next_id_{1};
  std::uint64_t executed_{0};
  std::priority_queue<Entry> queue_;
  std::unordered_map<std::uint64_t, Callback> callbacks_{};
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace evs
