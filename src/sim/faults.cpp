#include "sim/faults.hpp"

#include <algorithm>
#include <array>

namespace evs {
namespace {

/// True if the payload is a framed packet whose body starts with the
/// ordering-token type byte (MsgType::Token == 2; see totem/messages.hpp —
/// not included here to keep sim below totem in the layering). Only the
/// frame length field is checked: this peek runs before any corruption is
/// applied, so the header is honest.
bool payload_is_token(const std::vector<std::uint8_t>& payload) {
  constexpr std::size_t kHeader = 8;
  constexpr std::uint8_t kTokenType = 2;
  if (payload.size() < kHeader + 1) return false;
  const std::uint32_t length = static_cast<std::uint32_t>(payload[0]) |
                               (static_cast<std::uint32_t>(payload[1]) << 8) |
                               (static_cast<std::uint32_t>(payload[2]) << 16) |
                               (static_cast<std::uint32_t>(payload[3]) << 24);
  if (payload.size() - kHeader != length) return false;
  return payload[kHeader] == kTokenType;
}

/// True if ANY frame in the (possibly multi-frame) datagram is a token.
/// A piggyback datagram packs data frames in front of the token frame, so
/// its leading frame is Regular and payload_is_token reports false; walking
/// the frame chain catches it. A garbled length field ends the walk — the
/// remainder is untrustworthy, same policy as the receiver's FrameCursor.
bool payload_has_token(const std::vector<std::uint8_t>& payload) {
  constexpr std::size_t kHeader = 8;
  constexpr std::uint8_t kTokenType = 2;
  std::size_t off = 0;
  while (payload.size() > off && payload.size() - off >= kHeader + 1) {
    const std::uint32_t length =
        static_cast<std::uint32_t>(payload[off]) |
        (static_cast<std::uint32_t>(payload[off + 1]) << 8) |
        (static_cast<std::uint32_t>(payload[off + 2]) << 16) |
        (static_cast<std::uint32_t>(payload[off + 3]) << 24);
    if (length == 0 || length > payload.size() - off - kHeader) return false;
    if (payload[off + kHeader] == kTokenType) return true;
    off += kHeader + length;
  }
  return false;
}

/// Local CRC-32 (poly 0xEDB88320), bit-identical to wire::crc32 — this
/// file sits below the wire codec in the layering and cannot include it,
/// but re-sealing a frame requires producing the exact checksum the
/// receiver's frame validation will recompute.
std::uint32_t crc32_local(const std::uint8_t* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace

bool FaultRule::matches(ProcessId from, ProcessId to, SimTime now,
                        bool is_token, bool has_token) const {
  if (tokens_only && !is_token) return false;
  if (data_only && (is_token || has_token)) return false;
  if (src.has_value() && *src != from) return false;
  if (dst.has_value() && *dst != to) return false;
  return now >= from_us && now < until_us;
}

FaultPlan FaultPlan::storm(double duplicate, double reorder, double corrupt,
                           SimTime from_us, SimTime until_us) {
  FaultRule rule;
  rule.from_us = from_us;
  rule.until_us = until_us;
  rule.duplicate = duplicate;
  rule.reorder = reorder;
  rule.corrupt = corrupt;
  return FaultPlan{}.add(rule);
}

FaultPlan FaultPlan::asymmetric_cut(ProcessId src, ProcessId dst, SimTime from_us,
                                    SimTime until_us) {
  FaultRule rule;
  rule.src = src;
  rule.dst = dst;
  rule.from_us = from_us;
  rule.until_us = until_us;
  rule.drop = 1.0;
  return FaultPlan{}.add(rule);
}

FaultPlan FaultPlan::disk_faults(double write_fail, double torn, double rot,
                                 SimTime from_us, SimTime until_us) {
  StorageFaultRule rule;
  rule.from_us = from_us;
  rule.until_us = until_us;
  rule.write_fail = write_fail;
  rule.torn = torn;
  rule.rot = rot;
  return FaultPlan{}.add(rule);
}

FaultPlan FaultPlan::token_loss(double p, SimTime from_us, SimTime until_us) {
  FaultRule rule;
  rule.tokens_only = true;
  rule.from_us = from_us;
  rule.until_us = until_us;
  rule.drop = p;
  return FaultPlan{}.add(rule);
}

FaultPlan FaultPlan::data_cut(ProcessId src, ProcessId dst, SimTime from_us,
                              SimTime until_us) {
  FaultRule rule;
  rule.data_only = true;
  rule.src = src;
  rule.dst = dst;
  rule.from_us = from_us;
  rule.until_us = until_us;
  rule.drop = 1.0;
  return FaultPlan{}.add(rule);
}

FaultPlan FaultPlan::sealed_corruption(double p, SimTime from_us,
                                       SimTime until_us) {
  FaultRule rule;
  rule.data_only = true;
  rule.from_us = from_us;
  rule.until_us = until_us;
  rule.corrupt_sealed = p;
  return FaultPlan{}.add(rule);
}

void FaultInjector::note(SimTime time, const char* kind, ProcessId src,
                         ProcessId dst) {
  if (log_.size() >= kLogCapacity) log_.pop_front();
  log_.push_back(FaultEvent{time, kind, src, dst});
}

FaultInjector::Action FaultInjector::apply(ProcessId from, ProcessId to, SimTime now,
                                           std::vector<std::uint8_t>& payload) {
  ++stats_.packets_considered;
  const bool is_token = payload_is_token(payload);
  const bool has_token = is_token || payload_has_token(payload);
  Action action;
  for (const FaultRule& rule : plan_.rules()) {
    if (!rule.matches(from, to, now, is_token, has_token)) continue;
    if (rule.drop > 0 && rng_.chance(rule.drop)) {
      action.drop = true;
      ++stats_.dropped;
      if (is_token) ++stats_.token_dropped;
      ++stats_.injected_total;
      note(now, is_token ? "token-drop" : "drop", from, to);
      return action;  // a dropped packet suffers no further faults
    }
    if (rule.duplicate > 0 && rng_.chance(rule.duplicate)) {
      const int copies =
          rule.max_duplicates <= 1
              ? 1
              : 1 + static_cast<int>(rng_.below(
                        static_cast<std::uint64_t>(rule.max_duplicates)));
      for (int i = 0; i < copies; ++i) {
        action.duplicate_extra_delays.push_back(
            rng_.below(rule.reorder_window_us + 1));
      }
      stats_.duplicated += static_cast<std::uint64_t>(copies);
      ++stats_.injected_total;
      note(now, "duplicate", from, to);
    }
    if (rule.reorder > 0 && rng_.chance(rule.reorder)) {
      action.extra_delay_us += rng_.below(rule.reorder_window_us + 1);
      ++stats_.reordered;
      ++stats_.injected_total;
      note(now, "reorder", from, to);
    }
    if (rule.delay_spike > 0 && rng_.chance(rule.delay_spike)) {
      action.extra_delay_us += rule.spike_us;
      ++stats_.delay_spiked;
      ++stats_.injected_total;
      note(now, "delay-spike", from, to);
    }
    if (rule.corrupt > 0 && !payload.empty() && rng_.chance(rule.corrupt)) {
      const int flips =
          1 + static_cast<int>(rng_.below(static_cast<std::uint64_t>(
                  std::max(1, rule.max_corrupt_bytes))));
      for (int i = 0; i < flips; ++i) {
        const std::size_t pos = rng_.below(payload.size());
        payload[pos] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
      }
      action.corrupted = true;
      ++stats_.corrupted;
      ++stats_.injected_total;
      note(now, "corrupt", from, to);
    }
    if (rule.corrupt_sealed > 0 && rng_.chance(rule.corrupt_sealed)) {
      // Flip bytes in the final quarter of the FIRST frame's body, then
      // recompute that frame's CRC so the wire layer accepts the packet:
      // corruption only an application-level check can reject. Requires an
      // intact header and a body long enough to have a tail to hit.
      constexpr std::size_t kHeader = 8;
      std::uint32_t length = 0;
      if (payload.size() >= kHeader + 4) {
        length = static_cast<std::uint32_t>(payload[0]) |
                 (static_cast<std::uint32_t>(payload[1]) << 8) |
                 (static_cast<std::uint32_t>(payload[2]) << 16) |
                 (static_cast<std::uint32_t>(payload[3]) << 24);
      }
      // Only Regular (application-data) frames: re-sealed flips in a
      // protocol message (join, token) could decode into Byzantine
      // membership state, which is outside the paper's fault model. The
      // type byte is body[0]; MsgType::Regular == 1 (totem/messages.hpp,
      // not included here — sim sits below totem in the layering). The
      // Regular header is 38 bytes (type 1, RingId 12, seq 8, MsgId 12,
      // service 1, payload length 4); a body of >= 56 keeps the final
      // quarter strictly inside the application payload, so the flips can
      // never rewrite ordering metadata either.
      constexpr std::uint8_t kRegularType = 1;
      constexpr std::uint32_t kMinSealableBody = 56;
      if (length >= kMinSealableBody && payload.size() - kHeader >= length &&
          payload[kHeader] == kRegularType) {
        const std::size_t body_off = kHeader;
        const std::size_t tail_off = body_off + length - length / 4;
        const std::size_t tail_len = body_off + length - tail_off;
        const int flips =
            1 + static_cast<int>(rng_.below(static_cast<std::uint64_t>(
                    std::max(1, rule.max_sealed_bytes))));
        for (int i = 0; i < flips; ++i) {
          const std::size_t pos = tail_off + rng_.below(tail_len);
          payload[pos] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
        }
        const std::uint32_t crc =
            crc32_local(payload.data() + body_off, length);
        payload[4] = static_cast<std::uint8_t>(crc);
        payload[5] = static_cast<std::uint8_t>(crc >> 8);
        payload[6] = static_cast<std::uint8_t>(crc >> 16);
        payload[7] = static_cast<std::uint8_t>(crc >> 24);
        action.corrupted = true;
        ++stats_.sealed_corrupted;
        ++stats_.injected_total;
        note(now, "corrupt-sealed", from, to);
      }
    }
  }
  return action;
}

StableStore::WriteFault FaultInjector::apply_storage(ProcessId p, SimTime now,
                                                     std::size_t record_bytes) {
  StableStore::WriteFault fault;
  if (plan_.storage_rules().empty()) return fault;
  ++stats_.writes_considered;
  for (const StorageFaultRule& rule : plan_.storage_rules()) {
    if (!rule.matches(p, now)) continue;
    if (rule.write_fail > 0 && rng_.chance(rule.write_fail)) {
      fault.kind = StableStore::WriteFault::Kind::Fail;
      ++stats_.write_failed;
      ++stats_.injected_total;
      note(now, "write-fail", p, p);
      return fault;
    }
    if (rule.torn > 0 && rng_.chance(rule.torn)) {
      fault.kind = StableStore::WriteFault::Kind::Torn;
      // Keep a strict prefix: anywhere from the bare header down to one byte.
      fault.keep_bytes = record_bytes == 0 ? 0 : rng_.below(record_bytes);
      ++stats_.write_torn;
      ++stats_.injected_total;
      note(now, "write-torn", p, p);
      return fault;
    }
    if (rule.rot > 0 && rng_.chance(rule.rot)) {
      fault.kind = StableStore::WriteFault::Kind::Rot;
      fault.rot_offset = record_bytes == 0 ? 0 : rng_.below(record_bytes);
      fault.rot_xor = static_cast<std::uint8_t>(1 + rng_.below(255));
      ++stats_.write_rotted;
      ++stats_.injected_total;
      note(now, "write-rot", p, p);
      return fault;
    }
  }
  return fault;
}

std::string FaultInjector::format_log() const {
  std::string out;
  for (const FaultEvent& e : log_) {
    out += "  t=" + std::to_string(e.time) + "us " + e.kind + " " +
           to_string(e.src) + "->" + to_string(e.dst) + "\n";
  }
  if (out.empty()) out = "  (no faults injected)\n";
  return out;
}

FaultStats& operator+=(FaultStats& a, const FaultStats& b) {
  a.packets_considered += b.packets_considered;
  a.injected_total += b.injected_total;
  a.dropped += b.dropped;
  a.token_dropped += b.token_dropped;
  a.duplicated += b.duplicated;
  a.corrupted += b.corrupted;
  a.sealed_corrupted += b.sealed_corrupted;
  a.reordered += b.reordered;
  a.delay_spiked += b.delay_spiked;
  a.writes_considered += b.writes_considered;
  a.write_failed += b.write_failed;
  a.write_torn += b.write_torn;
  a.write_rotted += b.write_rotted;
  return a;
}

std::string to_string(const FaultStats& s) {
  return "considered=" + std::to_string(s.packets_considered) +
         " injected=" + std::to_string(s.injected_total) +
         " dropped=" + std::to_string(s.dropped) +
         " token_dropped=" + std::to_string(s.token_dropped) +
         " duplicated=" + std::to_string(s.duplicated) +
         " corrupted=" + std::to_string(s.corrupted) +
         " sealed_corrupted=" + std::to_string(s.sealed_corrupted) +
         " reordered=" + std::to_string(s.reordered) +
         " delay_spiked=" + std::to_string(s.delay_spiked) +
         " writes_considered=" + std::to_string(s.writes_considered) +
         " write_failed=" + std::to_string(s.write_failed) +
         " write_torn=" + std::to_string(s.write_torn) +
         " write_rotted=" + std::to_string(s.write_rotted);
}

}  // namespace evs
