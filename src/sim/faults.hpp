// Deterministic adversarial fault injection for the simulated network.
//
// The paper's model (Sections 1-2) promises extended virtual synchrony under
// *any* network behaviour: processor crash and recovery, network partition
// and remerge, and message loss. A real LAN additionally duplicates,
// reorders and corrupts packets, delays them in bursts, and fails in one
// direction only. A FaultPlan scripts exactly those behaviours — per link,
// per direction, per virtual-time window — and a FaultInjector executes the
// plan inside Network::deliver_later, drawing every random decision from its
// own seeded stream so a run remains a pure function of
// (code, seed, scenario, plan) and any failure replays bit-for-bit.
//
// The injector sits *below* the wire codec: it mutates raw packet bytes.
// Everything above it (frame checksums, strict decoding, duplicate and
// stale-token rejection, token retransmission, membership timeouts) is the
// machinery under test.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "storage/stable_store.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evs {

/// One adversarial rule. A rule applies to a packet when the (source,
/// destination, time, kind) tuple matches; all probabilities are evaluated
/// independently per matching packet. Rules are directional: a rule with
/// src=A, dst=B says nothing about B->A traffic, which is how asymmetric
/// link failures are expressed (drop=1.0 one way only).
struct FaultRule {
  std::optional<ProcessId> src;  ///< nullopt = any sender
  std::optional<ProcessId> dst;  ///< nullopt = any receiver
  SimTime from_us{0};            ///< active window [from_us, until_us)
  SimTime until_us{~0ull};
  bool tokens_only{false};  ///< apply only to ordering-token packets
  /// Apply only to packets carrying NO token frame: cuts data broadcasts
  /// while sparing token forwards — including piggyback datagrams, where
  /// data frames ride in front of the token frame. The selector that lets a
  /// test prove delivery survives on the piggyback path alone.
  bool data_only{false};

  double duplicate{0};     ///< P(extra copies of the packet are delivered)
  int max_duplicates{1};   ///< copies added when duplication fires (1..n)
  double reorder{0};       ///< P(extra delay in [0, reorder_window_us])
  SimTime reorder_window_us{2'000};
  double corrupt{0};       ///< P(1..max_corrupt_bytes random byte flips)
  int max_corrupt_bytes{3};
  /// P(byte flips in the tail of the first frame's body, frame CRC then
  /// RE-SEALED so the wire layer accepts the packet). Models corruption
  /// that slips past link-level checksums — NIC offload bugs, bad RAM on a
  /// middlebox — which only application-level integrity checks (the
  /// state-transfer chunk CRC trailer) can catch. Flips land in the final
  /// quarter of the body, i.e. the application-payload tail, so protocol
  /// headers are spared and the fault stays within the delivery model the
  /// spec checker assumes.
  double corrupt_sealed{0};
  int max_sealed_bytes{2};  ///< flips when corrupt_sealed fires (1..n)
  double delay_spike{0};   ///< P(a fixed spike_us stall is added)
  SimTime spike_us{10'000};
  double drop{0};          ///< P(packet silently vanishes); 1.0 = link cut

  /// is_token: the datagram's leading frame is an ordering token (a pure
  /// token forward). has_token: any frame is a token — also true for
  /// piggyback datagrams, whose data frames precede the token frame.
  bool matches(ProcessId from, ProcessId to, SimTime now, bool is_token,
               bool has_token = false) const;
};

/// One stable-storage fault rule: the disk analogue of FaultRule. Applies
/// to a record append at a process when the (process, time) pair matches;
/// the probabilities are evaluated in order and at most one fires per
/// append (a single write suffers a single fate).
struct StorageFaultRule {
  std::optional<ProcessId> process;  ///< nullopt = every process's store
  SimTime from_us{0};                ///< active window [from_us, until_us)
  SimTime until_us{~0ull};

  double write_fail{0};  ///< P(clean EIO: nothing persisted, store usable)
  double torn{0};        ///< P(prefix persisted, error returned, store wedged)
  double rot{0};         ///< P(byte-flipped record persisted, error, wedged)

  bool matches(ProcessId p, SimTime now) const {
    if (process.has_value() && *process != p) return false;
    return now >= from_us && now < until_us;
  }
};

/// An ordered list of FaultRules plus the injector seed. Scripted from
/// testkit::Cluster the same way partitions are.
class FaultPlan {
 public:
  FaultPlan& add(FaultRule rule) {
    rules_.push_back(std::move(rule));
    return *this;
  }

  FaultPlan& add(StorageFaultRule rule) {
    storage_rules_.push_back(std::move(rule));
    return *this;
  }

  /// Fallible-disk storm at every process: independent write-fail / torn /
  /// corrupted-write probabilities over [from_us, until_us).
  static FaultPlan disk_faults(double write_fail, double torn, double rot,
                               SimTime from_us = 0, SimTime until_us = ~0ull);

  /// Uniform storm on every link: duplication, bounded reordering and byte
  /// corruption at the given rates, over [from_us, until_us).
  static FaultPlan storm(double duplicate, double reorder, double corrupt,
                         SimTime from_us = 0, SimTime until_us = ~0ull);

  /// One-directional link cut src->dst over [from_us, until_us).
  static FaultPlan asymmetric_cut(ProcessId src, ProcessId dst, SimTime from_us,
                                  SimTime until_us);

  /// Drop every ordering token with probability p over [from_us, until_us).
  static FaultPlan token_loss(double p, SimTime from_us = 0,
                              SimTime until_us = ~0ull);

  /// One-directional cut of src->dst DATA datagrams only: token forwards —
  /// including piggyback datagrams — still pass. Delivery to dst then
  /// depends entirely on the token piggyback / retransmission paths.
  static FaultPlan data_cut(ProcessId src, ProcessId dst, SimTime from_us = 0,
                            SimTime until_us = ~0ull);

  /// Re-sealed payload-tail corruption on every DATA datagram at rate p
  /// over [from_us, until_us): the frame CRC is recomputed after the flip,
  /// so only application-level integrity checks can reject the bytes.
  static FaultPlan sealed_corruption(double p, SimTime from_us = 0,
                                     SimTime until_us = ~0ull);

  bool empty() const { return rules_.empty() && storage_rules_.empty(); }
  const std::vector<FaultRule>& rules() const { return rules_; }
  const std::vector<StorageFaultRule>& storage_rules() const {
    return storage_rules_;
  }

  /// Injector RNG seed. 0 means "derive from the network's seeded stream",
  /// which is still deterministic per (cluster seed, plan).
  std::uint64_t seed{0};

 private:
  std::vector<FaultRule> rules_;
  std::vector<StorageFaultRule> storage_rules_;
};

struct FaultStats {
  std::uint64_t packets_considered{0};
  std::uint64_t injected_total{0};  ///< individual fault activations
  std::uint64_t dropped{0};
  std::uint64_t token_dropped{0};  ///< subset of dropped that were tokens
  std::uint64_t duplicated{0};     ///< extra copies scheduled
  std::uint64_t corrupted{0};
  std::uint64_t sealed_corrupted{0};  ///< corrupt_sealed activations
  std::uint64_t reordered{0};
  std::uint64_t delay_spiked{0};
  // --- stable-storage faults (see StorageFaultRule) ---
  std::uint64_t writes_considered{0};
  std::uint64_t write_failed{0};
  std::uint64_t write_torn{0};
  std::uint64_t write_rotted{0};
};

/// One injected fault, for the bounded in-memory fault log that the testkit
/// liveness watchdog attaches to its failure reports.
struct FaultEvent {
  SimTime time{0};
  const char* kind{""};
  ProcessId src;
  ProcessId dst;
};

class FaultInjector {
 public:
  /// The injector's verdict for one packet about to be scheduled.
  struct Action {
    bool drop{false};
    SimTime extra_delay_us{0};  ///< added to the primary copy's base delay
    /// Extra delay of each additional duplicate copy (one entry per copy),
    /// on top of an independently drawn base network delay.
    std::vector<SimTime> duplicate_extra_delays;
    bool corrupted{false};
  };

  FaultInjector(FaultPlan plan, Rng rng) : plan_(std::move(plan)), rng_(rng) {}

  /// Decide the fate of one packet headed from `from` to `to`. May flip
  /// bytes of `payload` in place (corruption). Deterministic given the
  /// injector's seed and call sequence.
  Action apply(ProcessId from, ProcessId to, SimTime now,
               std::vector<std::uint8_t>& payload);

  /// Decide the fate of one stable-storage record append of `record_bytes`
  /// framed bytes at process `p`. Draws from the same seeded stream as
  /// apply(), so storage and network faults share one deterministic
  /// schedule. Returns the no-fault verdict when no storage rule matches
  /// (and draws nothing, so plans without storage rules leave network
  /// fault sequences untouched).
  StableStore::WriteFault apply_storage(ProcessId p, SimTime now,
                                        std::size_t record_bytes);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  /// Most recent injected faults (bounded ring; newest last).
  const std::deque<FaultEvent>& log() const { return log_; }
  std::string format_log() const;

 private:
  static constexpr std::size_t kLogCapacity = 64;

  void note(SimTime time, const char* kind, ProcessId src, ProcessId dst);

  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  std::deque<FaultEvent> log_;
};

std::string to_string(const FaultStats& s);
FaultStats& operator+=(FaultStats& a, const FaultStats& b);

}  // namespace evs
