#include "sim/scheduler.hpp"

#include "util/assert.hpp"

namespace evs {

Scheduler::Handle Scheduler::schedule_at(SimTime t, Callback cb) {
  EVS_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  EVS_ASSERT(cb != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return Handle{id};
}

void Scheduler::cancel(Handle h) {
  if (!h.valid()) return;
  if (callbacks_.erase(h.id) > 0) {
    cancelled_.insert(h.id);
    // Every live callback and every tombstone corresponds to exactly one
    // queue entry; a cancelled id must therefore still be queued.
    EVS_ASSERT_MSG(callbacks_.size() + cancelled_.size() == queue_.size(),
                   "cancelled id must still be queued");
  }
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    if (cancelled_.erase(top.id) > 0) continue;
    auto it = callbacks_.find(top.id);
    EVS_ASSERT(it != callbacks_.end());
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    EVS_ASSERT(top.time >= now_);
    now_ = top.time;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime t) {
  while (!queue_.empty()) {
    // Skip over cancelled entries to see the true next time.
    while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

std::optional<SimTime> Scheduler::next_time() {
  while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
    cancelled_.erase(queue_.top().id);
    queue_.pop();
  }
  if (queue_.empty()) return std::nullopt;
  return queue_.top().time;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace evs
