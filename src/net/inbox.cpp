#include "net/inbox.hpp"

#include <utility>

namespace evs::net {

TaskInbox::Node* TaskInbox::closed_sentinel() {
  static Node sentinel;
  return &sentinel;
}

TaskInbox::~TaskInbox() {
  // Discard without running: whoever owned the consumer side is gone, and
  // running protocol closures from a destructor would race nothing but also
  // mean nothing. close() first if the tasks must run.
  Node* n = head_.exchange(closed_sentinel(), std::memory_order_acquire);
  while (n != nullptr && n != closed_sentinel()) {
    Node* next = n->next;
    delete n;
    n = next;
  }
}

bool TaskInbox::push(Task task) {
  Node* node = new Node{std::move(task), nullptr};
  Node* head = head_.load(std::memory_order_relaxed);
  do {
    if (head == closed_sentinel()) {
      delete node;
      return false;
    }
    node->next = head;
    // Release so the consumer's acquire exchange sees the task body.
  } while (!head_.compare_exchange_weak(head, node, std::memory_order_release,
                                        std::memory_order_relaxed));
  depth_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

TaskInbox::Node* TaskInbox::take_chain() {
  Node* head = head_.load(std::memory_order_relaxed);
  do {
    if (head == nullptr || head == closed_sentinel()) return nullptr;
    // CAS (not exchange): swapping a closed head with nullptr would silently
    // reopen the inbox and let a racing push strand its task.
  } while (!head_.compare_exchange_weak(head, nullptr, std::memory_order_acquire,
                                        std::memory_order_relaxed));
  return head;
}

std::size_t TaskInbox::run_chain(Node* chain,
                                 const std::function<void(Task&&)>& run) {
  // The stack pops newest-first; reverse to run in post order.
  Node* fifo = nullptr;
  while (chain != nullptr) {
    Node* next = chain->next;
    chain->next = fifo;
    fifo = chain;
    chain = next;
  }
  std::size_t ran = 0;
  while (fifo != nullptr) {
    Node* next = fifo->next;
    depth_.fetch_sub(1, std::memory_order_relaxed);
    run(std::move(fifo->fn));
    delete fifo;
    fifo = next;
    ++ran;
  }
  return ran;
}

std::size_t TaskInbox::drain(const std::function<void(Task&&)>& run) {
  return run_chain(take_chain(), run);
}

std::size_t TaskInbox::close(const std::function<void(Task&&)>& run) {
  Node* chain = head_.exchange(closed_sentinel(), std::memory_order_acquire);
  if (chain == closed_sentinel()) return 0;  // already closed
  return run_chain(chain, run);
}

bool TaskInbox::closed() const {
  return head_.load(std::memory_order_acquire) == closed_sentinel();
}

}  // namespace evs::net
