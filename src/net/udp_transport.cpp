#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace evs {

namespace {

/// Parse "a.b.c.d":port into a sockaddr_in. nullopt on a malformed ip.
std::optional<sockaddr_in> parse_addr(const std::string& ip,
                                      std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    return std::nullopt;
  }
  return addr;
}

std::int64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

UdpTransport::Met::Met(obs::MetricsRegistry& r)
    : broadcasts(r.counter("net.broadcasts")),
      unicasts(r.counter("net.unicasts")),
      deliveries(r.counter("net.deliveries")),
      bytes_delivered(r.counter("net.bytes_delivered")),
      dropped_filter(r.counter("net.dropped_filter")),
      dropped_backpressure(r.counter("net.dropped_backpressure")),
      eagain_deferrals(r.counter("net.eagain_deferrals")),
      packet_bytes(r.histogram("net.packet_bytes")) {}

namespace {
/// Datagrams per sendmmsg/recvmmsg call. Bounds the stack arrays and the
/// out-batch memory; excess simply takes another syscall.
constexpr int kMmsgBatch = 64;
constexpr int kRecvBatch = 16;
}  // namespace

std::uint64_t UdpTransport::addr_key(const sockaddr_in& addr) {
  return (static_cast<std::uint64_t>(ntohl(addr.sin_addr.s_addr)) << 16) |
         ntohs(addr.sin_port);
}

UdpTransport::UdpTransport(Options options) : options_(std::move(options)) {
  out_batch_.reserve(kMmsgBatch);
}

UdpTransport::~UdpTransport() { close_fd(); }

void UdpTransport::close_fd() {
  if (fd_ >= 0) ::close(fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  fd_ = wake_fd_ = -1;
}

Status UdpTransport::wire_group_send_options() {
  if (!options_.multicast_group.empty() && options_.enable_broadcast) {
    return Status::error(
        Errc::invalid_argument,
        "multicast_group and enable_broadcast are mutually exclusive");
  }
  if (!options_.multicast_group.empty()) {
    const std::uint16_t dst_port =
        options_.multicast_port != 0 ? options_.multicast_port : port_;
    auto group = parse_addr(options_.multicast_group, dst_port);
    if (!group.has_value() ||
        !IN_MULTICAST(ntohl(group->sin_addr.s_addr))) {
      return Status::error(Errc::invalid_argument,
                           "multicast_group is not a multicast address: " +
                               options_.multicast_group);
    }
    auto iface = parse_addr(options_.multicast_if, 0);
    if (!iface.has_value()) {
      return Status::error(Errc::invalid_argument,
                           "multicast_if is not an IPv4 address: " +
                               options_.multicast_if);
    }
    ip_mreq mreq{};
    mreq.imr_multiaddr = group->sin_addr;
    mreq.imr_interface = iface->sin_addr;
    if (::setsockopt(fd_, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq,
                     sizeof(mreq)) != 0) {
      return Status::error(Errc::transport_io,
                           std::string("IP_ADD_MEMBERSHIP: ") +
                               strerror(errno));
    }
    if (::setsockopt(fd_, IPPROTO_IP, IP_MULTICAST_IF, &iface->sin_addr,
                     sizeof(iface->sin_addr)) != 0) {
      return Status::error(Errc::transport_io,
                           std::string("IP_MULTICAST_IF: ") + strerror(errno));
    }
    const unsigned char ttl =
        static_cast<unsigned char>(std::clamp(options_.multicast_ttl, 0, 255));
    ::setsockopt(fd_, IPPROTO_IP, IP_MULTICAST_TTL, &ttl, sizeof(ttl));
    const unsigned char loop = options_.multicast_loop ? 1 : 0;
    ::setsockopt(fd_, IPPROTO_IP, IP_MULTICAST_LOOP, &loop, sizeof(loop));
    group_dst_ = *group;
  } else if (options_.enable_broadcast) {
    const int on = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_BROADCAST, &on, sizeof(on)) != 0) {
      return Status::error(Errc::transport_io,
                           std::string("SO_BROADCAST: ") + strerror(errno));
    }
    const std::uint16_t dst_port =
        options_.multicast_port != 0 ? options_.multicast_port : port_;
    auto bcast = parse_addr(options_.broadcast_addr, dst_port);
    if (!bcast.has_value()) {
      return Status::error(Errc::invalid_argument,
                           "broadcast_addr is not an IPv4 address: " +
                               options_.broadcast_addr);
    }
    group_dst_ = *bcast;
  }
  return Status::ok_status();
}

Status UdpTransport::open() {
  if (is_open()) return Status::ok_status();
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::error(Errc::transport_io,
                         std::string("socket(): ") + strerror(errno));
  }
  if (options_.so_rcvbuf > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &options_.so_rcvbuf,
                 sizeof(options_.so_rcvbuf));
  }
  if (options_.so_sndbuf > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                 sizeof(options_.so_sndbuf));
  }
  sockaddr_in addr{};
  if (!options_.multicast_group.empty()) {
    // Group members must bind the wildcard (and share the port across
    // processes) to receive group traffic.
    const int on = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(options_.port);
  } else {
    auto parsed = parse_addr(options_.bind_ip, options_.port);
    if (!parsed.has_value()) {
      close_fd();
      return Status::error(Errc::invalid_argument,
                           "bind_ip is not an IPv4 address: " +
                               options_.bind_ip);
    }
    addr = *parsed;
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string detail = std::string("bind(") + options_.bind_ip + ":" +
                               std::to_string(options_.port) +
                               "): " + strerror(errno);
    close_fd();
    return Status::error(Errc::transport_io, detail);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string detail = std::string("getsockname(): ") + strerror(errno);
    close_fd();
    return Status::error(Errc::transport_io, detail);
  }
  port_ = ntohs(bound.sin_port);
  if (Status st = wire_group_send_options(); !st.ok()) {
    close_fd();
    return st;
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    const std::string detail = std::string("eventfd(): ") + strerror(errno);
    close_fd();
    return Status::error(Errc::transport_io, detail);
  }
  epoch_ns_ = options_.epoch_ns != 0 ? options_.epoch_ns : monotonic_ns();
  return Status::ok_status();
}

std::int64_t UdpTransport::monotonic_now_ns() { return monotonic_ns(); }

SimTime UdpTransport::wall_now_us() const {
  const std::int64_t delta = monotonic_ns() - epoch_ns_;
  return delta <= 0 ? 0 : static_cast<SimTime>(delta / 1'000);
}

Status UdpTransport::add_peer(ProcessId p, const PeerAddr& addr) {
  auto parsed = parse_addr(addr.ip, addr.port);
  if (!parsed.has_value()) {
    return Status::error(Errc::invalid_argument,
                         "add_peer: not an IPv4 address: " + addr.ip);
  }
  const std::uint64_t key = addr_key(*parsed);
  if (auto holder = addr_peer_.find(key);
      holder != addr_peer_.end() && holder->second != p) {
    // Refuse to alias two peers onto one source address: inbound resolution
    // is by address, so the second registration would make the first peer's
    // datagrams arrive as the second — and sail through the first's block
    // filter. The caller meant either a different address or a remap of the
    // SAME peer; make it say which.
    return Status::error(Errc::invalid_argument,
                         "add_peer: " + addr.ip + ":" +
                             std::to_string(addr.port) +
                             " already registered to another peer");
  }
  if (auto it = peers_.find(p); it != peers_.end()) {
    addr_peer_.erase(it->second.key);
  }
  peers_[p] = Peer{*parsed, key};
  addr_peer_[key] = p;
  // Deliberately NOT touching blocked_: a re-registered peer (restarted node
  // on a fresh ephemeral port) stays behind an existing partition filter.
  return Status::ok_status();
}

void UdpTransport::block_peer(ProcessId p) { blocked_.insert(p); }
void UdpTransport::unblock_peer(ProcessId p) { blocked_.erase(p); }

Status UdpTransport::block_peer(const PeerAddr& addr) {
  auto parsed = parse_addr(addr.ip, addr.port);
  if (!parsed.has_value()) {
    return Status::error(Errc::invalid_argument,
                         "block_peer: not an IPv4 address: " + addr.ip);
  }
  blocked_addrs_.insert(addr_key(*parsed));
  return Status::ok_status();
}

Status UdpTransport::unblock_peer(const PeerAddr& addr) {
  auto parsed = parse_addr(addr.ip, addr.port);
  if (!parsed.has_value()) {
    return Status::error(Errc::invalid_argument,
                         "unblock_peer: not an IPv4 address: " + addr.ip);
  }
  blocked_addrs_.erase(addr_key(*parsed));
  return Status::ok_status();
}

void UdpTransport::attach(ProcessId p, Endpoint* endpoint) {
  EVS_ASSERT(endpoint != nullptr);
  endpoints_[p] = endpoint;
}

void UdpTransport::detach(ProcessId p) { endpoints_.erase(p); }

bool UdpTransport::attached(ProcessId p) const { return endpoints_.count(p) > 0; }

void UdpTransport::note_backpressure() {
  // Hysteresis mirrors EvsNode's drain callback: flag on at capacity, off
  // once the backlog has drained to half, so the edge does not thrash.
  if (backlog_.size() >= options_.send_backlog_datagrams) {
    backpressured_.store(true, std::memory_order_relaxed);
  } else if (backlog_.size() <= options_.send_backlog_datagrams / 2) {
    backpressured_.store(false, std::memory_order_relaxed);
  }
}

void UdpTransport::park_or_drop(PendingDatagram d) {
  if (backlog_.size() >= options_.send_backlog_datagrams) {
    stats_.dropped_backpressure.fetch_add(1, std::memory_order_relaxed);
    met_.dropped_backpressure.inc();
    note_backpressure();
    return;
  }
  backlog_.push_back(std::move(d));
  note_backpressure();
}

void UdpTransport::send_datagram(const sockaddr_in& to,
                                 net::DatagramRef payload) {
  if (!payload || payload->size() > options_.max_datagram_bytes) {
    stats_.send_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (out_batch_.empty()) {
    out_batch_deadline_us_ = wall_now_us() + options_.batch_flush_us;
  }
  out_batch_.push_back(PendingDatagram{to, std::move(payload)});
  if (out_batch_.size() >= static_cast<std::size_t>(kMmsgBatch)) {
    flush_out_batch(/*force=*/true);
  }
}

void UdpTransport::flush_out_batch(bool force) {
  if (out_batch_.empty()) return;
  if (!force && options_.batch_flush_us > 0 &&
      out_batch_.size() < static_cast<std::size_t>(kMmsgBatch) &&
      wall_now_us() < out_batch_deadline_us_) {
    return;  // let the batch coalesce a little longer
  }
  // Preserve per-socket send ordering: while anything is parked, everything
  // queues behind it until the backlog flushes (flush_backlog runs first in
  // every loop iteration).
  std::size_t idx = 0;
  if (backlog_.empty()) {
    while (idx < out_batch_.size()) {
      const int want = static_cast<int>(std::min<std::size_t>(
          out_batch_.size() - idx, static_cast<std::size_t>(kMmsgBatch)));
      mmsghdr msgs[kMmsgBatch];
      iovec iovs[kMmsgBatch];
      memset(msgs, 0, sizeof(mmsghdr) * static_cast<std::size_t>(want));
      for (int i = 0; i < want; ++i) {
        PendingDatagram& d = out_batch_[idx + static_cast<std::size_t>(i)];
        iovs[i].iov_base = const_cast<std::uint8_t*>(d.payload->data());
        iovs[i].iov_len = d.payload->size();
        msgs[i].msg_hdr.msg_name = &d.to;
        msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
      }
      const int r = ::sendmmsg(fd_, msgs, static_cast<unsigned>(want), 0);
      if (r > 0) {
        std::uint64_t bytes = 0;
        for (int i = 0; i < r; ++i) {
          bytes += out_batch_[idx + static_cast<std::size_t>(i)].payload->size();
        }
        stats_.datagrams_sent.fetch_add(static_cast<std::uint64_t>(r),
                                        std::memory_order_relaxed);
        stats_.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
        idx += static_cast<std::size_t>(r);
        // A short count means datagram `idx` failed; the retry below hits
        // the same error with r == -1 and a meaningful errno.
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
        // Kernel pushback: park the rest; POLLOUT (or the next loop
        // iteration, for ENOBUFS on loopback) flushes it.
        stats_.eagain_deferrals.fetch_add(1, std::memory_order_relaxed);
        met_.eagain_deferrals.inc();
        break;
      }
      // Hard per-datagram error: drop the head, keep going.
      stats_.send_errors.fetch_add(1, std::memory_order_relaxed);
      EVS_WARN("udp", "sendmmsg to port %u failed: %s",
               ntohs(out_batch_[idx].to.sin_port), strerror(errno));
      ++idx;
    }
  }
  for (; idx < out_batch_.size(); ++idx) {
    park_or_drop(std::move(out_batch_[idx]));
  }
  out_batch_.clear();
}

void UdpTransport::flush_backlog() {
  while (!backlog_.empty()) {
    const PendingDatagram& d = backlog_.front();
    const ssize_t n =
        ::sendto(fd_, d.payload->data(), d.payload->size(), 0,
                 reinterpret_cast<const sockaddr*>(&d.to), sizeof(d.to));
    if (n >= 0) {
      stats_.datagrams_sent.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_sent.fetch_add(d.payload->size(), std::memory_order_relaxed);
      backlog_.pop_front();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) break;
    stats_.send_errors.fetch_add(1, std::memory_order_relaxed);
    backlog_.pop_front();  // unsendable; drop rather than wedge the queue
  }
  note_backpressure();
}

void UdpTransport::broadcast(ProcessId from, std::vector<std::uint8_t> payload) {
  EVS_ASSERT(is_open());
  met_.broadcasts.inc();
  net::DatagramRef shared = net::make_datagram(std::move(payload));
  if (group_dst_.has_value()) {
    // Real group send: one datagram on the wire; the kernel (or the LAN)
    // fans it out, and IP_MULTICAST_LOOP covers self-delivery. Per-peer
    // outbound filtering cannot apply to a single shared datagram —
    // partition scripting in group mode relies on inbound filters.
    send_datagram(*group_dst_, std::move(shared));
    return;
  }
  // Loopback/per-peer mode: one shared buffer; each receiver's queue entry
  // bumps a refcount.
  for (const auto& [peer, info] : peers_) {
    if ((blocked_.count(peer) > 0 || blocked_addrs_.count(info.key) > 0) &&
        peer != from) {
      stats_.dropped_filter.fetch_add(1, std::memory_order_relaxed);
      met_.dropped_filter.inc();
      continue;
    }
    send_datagram(info.addr, shared);
  }
}

void UdpTransport::unicast(ProcessId from, ProcessId to,
                           std::vector<std::uint8_t> payload) {
  EVS_ASSERT(is_open());
  (void)from;
  met_.unicasts.inc();
  auto it = peers_.find(to);
  if (it == peers_.end()) {
    stats_.dropped_unknown_peer.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if ((blocked_.count(to) > 0 || blocked_addrs_.count(it->second.key) > 0) &&
      to != from) {
    stats_.dropped_filter.fetch_add(1, std::memory_order_relaxed);
    met_.dropped_filter.inc();
    return;
  }
  send_datagram(it->second.addr, net::make_datagram(std::move(payload)));
}

void UdpTransport::drain_posted() {
  inbox_.drain([](net::TaskInbox::Task&& fn) { fn(); });
}

void UdpTransport::wake() {
  if (waker_) {
    waker_();
    return;
  }
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

bool UdpTransport::post(std::function<void()> fn) {
  if (!inbox_.push(std::move(fn))) {
    stats_.posts_rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  wake();
  return true;
}

void UdpTransport::advance_clock() { scheduler_.run_until(wall_now_us()); }

void UdpTransport::drain_socket(int budget) {
  int received = 0;
  while (received < budget) {
    const int want = std::min(budget - received, kRecvBatch);
    // Stage one arena buffer per slot; unused ones are recycled below, used
    // ones become the ref-counted datagram the decode path pins.
    std::vector<std::vector<std::uint8_t>> bufs;
    bufs.reserve(static_cast<std::size_t>(want));
    mmsghdr msgs[kRecvBatch];
    iovec iovs[kRecvBatch];
    sockaddr_in froms[kRecvBatch];
    memset(msgs, 0, sizeof(mmsghdr) * static_cast<std::size_t>(want));
    for (int i = 0; i < want; ++i) {
      bufs.push_back(arena_->acquire(options_.max_datagram_bytes));
      iovs[i].iov_base = bufs.back().data();
      iovs[i].iov_len = bufs.back().size();
      msgs[i].msg_hdr.msg_name = &froms[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int r = ::recvmmsg(fd_, msgs, static_cast<unsigned>(want), 0, nullptr);
    if (r <= 0) {
      for (auto& b : bufs) arena_->recycle(std::move(b));
      return;  // EAGAIN: drained
    }
    for (int i = r; i < want; ++i) arena_->recycle(std::move(bufs[static_cast<std::size_t>(i)]));
    received += r;
    for (int i = 0; i < r; ++i) {
      auto& buf = bufs[static_cast<std::size_t>(i)];
      const std::size_t n = msgs[i].msg_len;
      stats_.datagrams_received.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_received.fetch_add(n, std::memory_order_relaxed);
      const std::uint64_t src_key = addr_key(froms[i]);
      if (blocked_addrs_.count(src_key) > 0) {
        stats_.dropped_filter.fetch_add(1, std::memory_order_relaxed);
        met_.dropped_filter.inc();
        arena_->recycle(std::move(buf));
        continue;
      }
      auto src = addr_peer_.find(src_key);
      if (src == addr_peer_.end()) {
        stats_.dropped_unknown_peer.fetch_add(1, std::memory_order_relaxed);
        arena_->recycle(std::move(buf));
        continue;
      }
      if (blocked_.count(src->second) > 0) {
        // Inbound half of the partition filter: datagrams already in flight
        // when the filter went up die here, like packets on a cut wire.
        stats_.dropped_filter.fetch_add(1, std::memory_order_relaxed);
        met_.dropped_filter.inc();
        arena_->recycle(std::move(buf));
        continue;
      }
      if (endpoints_.empty()) {
        stats_.dropped_detached.fetch_add(1, std::memory_order_relaxed);
        arena_->recycle(std::move(buf));
        continue;
      }
      // Re-advance before every dispatch: processing a datagram can take real
      // time (token handling fans out sends and deliveries), and a peer's
      // clock keeps moving meanwhile. Stamping this dispatch with the
      // pre-drain now would let a delivery carry an earlier timestamp than
      // its sender's send — a causality inversion the spec checker rejects.
      advance_clock();
      // A live transport serves one process; dispatch to each attached
      // endpoint (normally exactly one). Snapshot first: a handler may
      // detach itself (fail-stop) mid-dispatch.
      std::vector<std::pair<ProcessId, Endpoint*>> targets(endpoints_.begin(),
                                                           endpoints_.end());
      buf.resize(n);
      Packet packet;
      packet.src = src->second;
      packet.broadcast = false;  // indistinguishable on the wire; unused by nodes
      packet.data = arena_->make(std::move(buf));
      for (auto& [pid, ep] : targets) {
        if (endpoints_.count(pid) == 0) continue;  // detached by an earlier target
        packet.dst = pid;
        met_.deliveries.inc();
        met_.bytes_delivered.inc(static_cast<std::uint64_t>(n));
        met_.packet_bytes.record(static_cast<std::int64_t>(n));
        ep->on_packet(packet);
      }
    }
    if (r < want) return;  // socket drained mid-batch
  }
}

int UdpTransport::service() {
  EVS_ASSERT_MSG(is_open(), "service on a transport that is not open");
  drain_posted();
  advance_clock();
  flush_backlog();
  flush_out_batch(/*force=*/false);
  const std::uint64_t before =
      stats_.datagrams_received.load(std::memory_order_relaxed);
  // The budget is the fairness contract: a flooded socket hands control back
  // after max_recv_per_poll dispatches so this transport's own timers (the
  // advance_clock below) and, under an executor, every co-scheduled
  // neighbor's timers keep up with the wall clock.
  drain_socket(options_.max_recv_per_poll);
  // Sends generated while dispatching received datagrams (token fan-out)
  // flush as one sendmmsg batch — this is where the syscall batching pays.
  flush_out_batch(/*force=*/false);
  advance_clock();
  return static_cast<int>(
      stats_.datagrams_received.load(std::memory_order_relaxed) - before);
}

std::optional<SimTime> UdpTransport::next_deadline_us() {
  std::optional<SimTime> deadline;
  if (auto next = scheduler_.next_time(); next.has_value()) deadline = *next;
  if (!backlog_.empty()) deadline = 0;  // flush wants another pass now
  if (!out_batch_.empty()) {
    // A coalescing batch bounds the wait by its flush deadline.
    if (!deadline.has_value() || out_batch_deadline_us_ < *deadline) {
      deadline = out_batch_deadline_us_;
    }
  }
  return deadline;
}

int UdpTransport::poll_once(SimTime max_wait_us) {
  EVS_ASSERT_MSG(is_open(), "poll_once on a transport that is not open");
  int dispatched = service();

  // Bound the wait by the next protocol timer so wall-clock timers fire
  // with ~1ms resolution (poll granularity), far inside every protocol
  // timeout.
  SimTime wait_us = max_wait_us;
  if (auto deadline = next_deadline_us(); deadline.has_value()) {
    const SimTime now = wall_now_us();
    wait_us = std::min(wait_us, *deadline > now ? *deadline - now : 0);
  }

  pollfd fds[2];
  fds[0].fd = fd_;
  fds[0].events = POLLIN;
  if (wants_pollout()) fds[0].events |= POLLOUT;
  fds[0].revents = 0;
  fds[1].fd = wake_fd_;
  fds[1].events = POLLIN;
  fds[1].revents = 0;

  // ppoll, not poll: a millisecond timeout cannot express a sub-millisecond
  // coalescing window. Rounding a 200us batch_flush_us deadline up to 1ms
  // made every quiet-loop batch outlive its deadline several times over
  // (nothing else wakes the loop when there is no inbound traffic), so the
  // flush-latency contract of Options::batch_flush_us was unmet exactly in
  // the no-load case it exists for.
  const SimTime capped_us = std::min<SimTime>(wait_us, 1'000'000);
  timespec ts;
  ts.tv_sec = static_cast<time_t>(capped_us / 1'000'000);
  ts.tv_nsec = static_cast<long>((capped_us % 1'000'000) * 1'000);
  ::ppoll(fds, 2, &ts, nullptr);

  if ((fds[1].revents & POLLIN) != 0) {
    std::uint64_t drained = 0;
    [[maybe_unused]] ssize_t n = ::read(wake_fd_, &drained, sizeof(drained));
  }
  dispatched += service();
  return dispatched;
}

void UdpTransport::run() {
  while (!stop_.load(std::memory_order_acquire)) poll_once(10'000);
  finish();
}

void UdpTransport::finish() {
  // Close the posting door; run what was already accepted so a stop posted
  // together with work does not strand it. Idempotent — the TaskInbox close
  // is, and a forced flush of an empty batch is a no-op.
  inbox_.close([](net::TaskInbox::Task&& fn) { fn(); });
  flush_out_batch(/*force=*/true);
}

void UdpTransport::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

UdpTransport::Stats UdpTransport::stats() const {
  Stats s;
  s.datagrams_sent = stats_.datagrams_sent.load(std::memory_order_relaxed);
  s.datagrams_received = stats_.datagrams_received.load(std::memory_order_relaxed);
  s.bytes_sent = stats_.bytes_sent.load(std::memory_order_relaxed);
  s.bytes_received = stats_.bytes_received.load(std::memory_order_relaxed);
  s.eagain_deferrals = stats_.eagain_deferrals.load(std::memory_order_relaxed);
  s.dropped_backpressure =
      stats_.dropped_backpressure.load(std::memory_order_relaxed);
  s.dropped_filter = stats_.dropped_filter.load(std::memory_order_relaxed);
  s.dropped_unknown_peer =
      stats_.dropped_unknown_peer.load(std::memory_order_relaxed);
  s.dropped_detached = stats_.dropped_detached.load(std::memory_order_relaxed);
  s.send_errors = stats_.send_errors.load(std::memory_order_relaxed);
  s.posts_rejected = stats_.posts_rejected.load(std::memory_order_relaxed);
  return s;
}

}  // namespace evs
